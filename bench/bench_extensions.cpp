// E11 -- Section 7 extensions (speeds, weights). Thin standalone wrapper;
// the body lives in src/scenario/builtin/e11_extensions.cpp and is shared
// with the unified driver (`rlslb run e11_extensions`).
#include "scenario/harness.hpp"

int main(int argc, char** argv) {
  return rlslb::scenario::runStandalone(argc, argv, "e11_extensions");
}
