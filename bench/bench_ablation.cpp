// Design ablations (engine choice, hybrid threshold, gap). Thin standalone
// wrapper; the body lives in src/scenario/builtin/ablation.cpp and is
// shared with the unified driver (`rlslb run ablation`).
#include "scenario/harness.hpp"

int main(int argc, char** argv) {
  return rlslb::scenario::runStandalone(argc, argv, "ablation");
}
