// E14 -- open-system RLS. Thin standalone wrapper; the body lives in
// src/scenario/builtin/e14_opensystem.cpp and is shared with the unified
// driver (`rlslb run e14_opensystem`).
#include "scenario/harness.hpp"

int main(int argc, char** argv) {
  return rlslb::scenario::runStandalone(argc, argv, "e14_opensystem");
}
