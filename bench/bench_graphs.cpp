// E12 -- RLS on network topologies. Thin standalone wrapper; the body lives
// in src/scenario/builtin/e12_graphs.cpp and is shared with the unified
// driver (`rlslb run e12_graphs`).
#include "scenario/harness.hpp"

int main(int argc, char** argv) {
  return rlslb::scenario::runStandalone(argc, argv, "e12_graphs");
}
