// E10 -- Section 2 baselines. Thin standalone wrapper; the body lives in
// src/scenario/builtin/e10_baselines.cpp and is shared with the unified
// driver (`rlslb run e10_baselines`).
#include "scenario/harness.hpp"

int main(int argc, char** argv) {
  return rlslb::scenario::runStandalone(argc, argv, "e10_baselines");
}
