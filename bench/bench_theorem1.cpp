// E1 -- Theorem 1 upper bound. Thin standalone wrapper: the experiment body
// lives in src/scenario/builtin/e1_theorem1.cpp and is shared with the
// unified driver (`rlslb run e1_theorem1`). Accepts the common knobs
// (--scale/--seed/--reps/--threads/--csv), --out=FILE for JSONL results,
// and key=value parameter overrides.
#include "scenario/harness.hpp"

int main(int argc, char** argv) {
  return rlslb::scenario::runStandalone(argc, argv, "e1_theorem1");
}
