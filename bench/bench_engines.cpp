// E13 -- engine and substrate micro-benchmarks (google-benchmark).
//
// Measures the per-event cost of both simulation engines, the Fenwick and
// LoadMultiset primitives they are built on, and the RNG samplers. These
// numbers justify the hybrid switch policy (see bench_ablation for the
// end-to-end ablation) and document the library's single-core throughput.
#include <benchmark/benchmark.h>

#include "config/generators.hpp"
#include "ds/fenwick.hpp"
#include "ds/load_multiset.hpp"
#include "rng/distributions.hpp"
#include "rng/pcg64.hpp"
#include "rng/xoshiro256pp.hpp"
#include "sim/hybrid_engine.hpp"
#include "sim/jump_engine.hpp"
#include "sim/naive_engine.hpp"

namespace {

using namespace rlslb;

void BM_Xoshiro(benchmark::State& state) {
  rng::Xoshiro256pp eng(1);
  for (auto _ : state) benchmark::DoNotOptimize(eng.next());
}
BENCHMARK(BM_Xoshiro);

void BM_Pcg64(benchmark::State& state) {
  rng::Pcg64 eng(1);
  for (auto _ : state) benchmark::DoNotOptimize(eng.next());
}
BENCHMARK(BM_Pcg64);

void BM_UniformIndex(benchmark::State& state) {
  rng::Xoshiro256pp eng(2);
  for (auto _ : state) benchmark::DoNotOptimize(rng::uniformIndex(eng, 1000003));
}
BENCHMARK(BM_UniformIndex);

void BM_Exponential(benchmark::State& state) {
  rng::Xoshiro256pp eng(3);
  for (auto _ : state) benchmark::DoNotOptimize(rng::exponential(eng, 2.0));
}
BENCHMARK(BM_Exponential);

void BM_BinomialSmall(benchmark::State& state) {
  rng::Xoshiro256pp eng(4);
  for (auto _ : state) benchmark::DoNotOptimize(rng::binomial(eng, 50, 0.1));
}
BENCHMARK(BM_BinomialSmall);

void BM_BinomialBtrs(benchmark::State& state) {
  rng::Xoshiro256pp eng(5);
  for (auto _ : state) benchmark::DoNotOptimize(rng::binomial(eng, 1'000'000, 0.3));
}
BENCHMARK(BM_BinomialBtrs);

void BM_FenwickAdd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ds::Fenwick<std::int64_t> f(std::vector<std::int64_t>(n, 4));
  rng::Xoshiro256pp eng(6);
  std::size_t i = 0;
  for (auto _ : state) {
    f.add(i, 1);
    f.add(i, -1);
    i = static_cast<std::size_t>(rng::uniformIndex(eng, n));
  }
}
BENCHMARK(BM_FenwickAdd)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_FenwickSample(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ds::Fenwick<std::int64_t> f(std::vector<std::int64_t>(n, 4));
  rng::Xoshiro256pp eng(7);
  const std::int64_t total = f.total();
  for (auto _ : state) {
    const auto ticket =
        static_cast<std::int64_t>(rng::uniformIndex(eng, static_cast<std::uint64_t>(total)));
    benchmark::DoNotOptimize(f.upperBound(ticket));
  }
}
BENCHMARK(BM_FenwickSample)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

// Before/after pair for the cached running total (ds/fenwick.hpp): the
// draw hot path consumes the total every activation, so total() must be a
// load, not a root prefix-sum walk. The "recompute" variant is the old
// implementation, kept callable through the public prefixSum(n).
// Sizes are deliberately not powers of two: prefixSum(n) touches one node
// per set bit of n, so 1<<k would collapse the recompute to a single read.
void BM_FenwickTotalCached(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ds::Fenwick<std::int64_t> f(std::vector<std::int64_t>(n, 4));
  for (auto _ : state) benchmark::DoNotOptimize(f.total());
}
BENCHMARK(BM_FenwickTotalCached)->Arg(1021)->Arg(100003)->Arg(1048573);

void BM_FenwickTotalRecompute(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ds::Fenwick<std::int64_t> f(std::vector<std::int64_t>(n, 4));
  for (auto _ : state) benchmark::DoNotOptimize(f.prefixSum(n));
}
BENCHMARK(BM_FenwickTotalRecompute)->Arg(1021)->Arg(100003)->Arg(1048573);

void BM_LoadMultisetMove(benchmark::State& state) {
  const auto fresh = [] {
    std::vector<std::int64_t> loads;
    for (std::int64_t i = 0; i < 64; ++i) loads.push_back(100 + i);
    return ds::LoadMultiset::fromLoads(loads);
  };
  auto ms = fresh();
  for (auto _ : state) {
    // Each move shrinks the spread; reset when no multiset-changing move
    // remains (the rebuild is amortized over ~60 moves).
    if (ms.maxLoad() - ms.minLoad() < 2) ms = fresh();
    ms.applyBallMove(ms.maxLoad(), ms.minLoad());
  }
}
BENCHMARK(BM_LoadMultisetMove);

void BM_NaiveStep(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  sim::NaiveEngine engine(config::balanced(n, 8 * n), 8);
  for (auto _ : state) benchmark::DoNotOptimize(engine.step());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NaiveStep)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_JumpStep(benchmark::State& state) {
  // Steady-state stepping is impossible (the chain absorbs), so measure
  // construction+drain amortized over the moves of a fresh halfHalf system.
  const std::int64_t n = state.range(0);
  std::uint64_t seed = 9;
  std::int64_t moves = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::JumpEngine engine(config::halfHalf(n, 32 * n, 8), seed++);
    state.ResumeTiming();
    while (engine.step()) {
    }
    moves += engine.moves();
  }
  state.SetItemsProcessed(moves);
}
BENCHMARK(BM_JumpStep)->Arg(1 << 10)->Arg(1 << 14)->Unit(benchmark::kMicrosecond);

void BM_FullRunHybridAllInOne(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  std::uint64_t seed = 10;
  for (auto _ : state) {
    sim::HybridEngine engine(config::allInOne(n, 8 * n), seed++);
    const auto r = sim::runUntil(engine, sim::Target::perfect());
    benchmark::DoNotOptimize(r.time);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullRunHybridAllInOne)->Arg(1 << 10)->Arg(1 << 14)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
