// E8 -- Destructive Majorization Lemma. Thin standalone wrapper; the body
// lives in src/scenario/builtin/e8_dml.cpp and is shared with the unified
// driver (`rlslb run e8_dml`).
#include "scenario/harness.hpp"

int main(int argc, char** argv) {
  return rlslb::scenario::runStandalone(argc, argv, "e8_dml");
}
