// E4 -- w.h.p. tail bound. Thin standalone wrapper; the body lives in
// src/scenario/builtin/e4_whp.cpp and is shared with the unified driver
// (`rlslb run e4_whp`).
#include "scenario/harness.hpp"

int main(int argc, char** argv) {
  return rlslb::scenario::runStandalone(argc, argv, "e4_whp");
}
