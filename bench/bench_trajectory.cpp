// E15 -- ensemble trajectories. Thin standalone wrapper; the body lives in
// src/scenario/builtin/e15_trajectory.cpp and is shared with the unified
// driver (`rlslb run e15_trajectory`).
#include "scenario/harness.hpp"

int main(int argc, char** argv) {
  return rlslb::scenario::runStandalone(argc, argv, "e15_trajectory");
}
