// E2/E3/E9 -- lower bounds and the m <= n regime. Thin standalone wrapper;
// the body lives in src/scenario/builtin/e2_lowerbound.cpp and is shared
// with the unified driver (`rlslb run e2_lowerbound`).
#include "scenario/harness.hpp"

int main(int argc, char** argv) {
  return rlslb::scenario::runStandalone(argc, argv, "e2_lowerbound");
}
