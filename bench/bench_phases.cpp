// E5/E6/E7 -- Section 6 phase decomposition. Thin standalone wrapper; the
// body lives in src/scenario/builtin/e5_phases.cpp and is shared with the
// unified driver (`rlslb run e5_phases`).
#include "scenario/harness.hpp"

int main(int argc, char** argv) {
  return rlslb::scenario::runStandalone(argc, argv, "e5_phases");
}
