// Shared scaffolding for the experiment harnesses (E1-E15; the roster and
// methodology live in docs/EXPERIMENTS.md).
//
// Every harness runs argument-free at the "default" scale (laptop-friendly,
// minutes for the whole suite) and accepts:
//   --scale=small|default|full   coarse knob multiplying sizes and reps
//   --seed=<u64>                 base seed (default 20170529, the IPDPS date)
//   --reps=<k>                   override replication count
//   --threads=<t>                replication fan-out (0 = hardware, 1 = serial)
//   --csv                        also emit CSV blocks for plotting
//
// Results are bit-identical for a given seed at any --threads value (the
// streamSeed contract; see src/runner/replication.hpp).
#pragma once

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "runner/thread_pool.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace rlslb::bench {

struct BenchContext {
  double scale = 1.0;       // size multiplier
  std::int64_t reps = 0;    // 0 = per-experiment default
  std::uint64_t seed = 20170529;
  int threads = 0;          // 0 = hardware concurrency
  bool csv = false;
  WallTimer timer;
  // One pool per harness, sized by --threads and shared by every
  // runReplications sweep so the knob governs the whole binary.
  std::shared_ptr<runner::ThreadPool> sharedPool;

  [[nodiscard]] runner::ThreadPool& pool() const { return *sharedPool; }

  /// Scaled replication count.
  [[nodiscard]] std::int64_t repsOr(std::int64_t dflt) const {
    if (reps > 0) return reps;
    const auto r = static_cast<std::int64_t>(static_cast<double>(dflt) * scale);
    return r < 2 ? 2 : r;
  }
  /// Scaled size (rounded to a multiple of `quantum` for n | m constraints).
  [[nodiscard]] std::int64_t sized(std::int64_t dflt, std::int64_t quantum = 1) const {
    auto v = static_cast<std::int64_t>(static_cast<double>(dflt) * scale);
    if (v < quantum) v = quantum;
    return v / quantum * quantum;
  }
};

inline BenchContext parseArgs(int argc, char** argv, const char* benchName,
                              const char* whatItReproduces) {
  CliArgs args(argc, argv);
  BenchContext ctx;
  const std::string scale = args.getString("scale", "default");
  if (scale == "small") {
    ctx.scale = 0.5;
  } else if (scale == "default") {
    ctx.scale = 1.0;
  } else if (scale == "full") {
    ctx.scale = 2.0;
  } else {
    std::fprintf(stderr, "unknown --scale=%s (small|default|full)\n", scale.c_str());
    std::exit(2);
  }
  ctx.reps = args.getInt("reps", 0);
  ctx.seed = static_cast<std::uint64_t>(args.getInt("seed", 20170529));
  ctx.threads = args.getThreads(0);
  ctx.sharedPool = std::make_shared<runner::ThreadPool>(ctx.threads);
  ctx.csv = args.getBool("csv", false);
  const auto unused = args.unusedKeys();
  if (!unused.empty()) {
    for (const auto& k : unused) std::fprintf(stderr, "unknown flag --%s\n", k.c_str());
    std::exit(2);
  }
  std::printf("==============================================================\n");
  std::printf("%s\n", benchName);
  std::printf("reproduces: %s\n", whatItReproduces);
  std::printf("scale=%s seed=%llu threads=%d%s\n", scale.c_str(),
              static_cast<unsigned long long>(ctx.seed), ctx.threads,
              ctx.threads == 0 ? " (hardware)" : "");
  std::printf("==============================================================\n\n");
  return ctx;
}

inline void emitTable(const BenchContext& ctx, const Table& table, const std::string& title) {
  table.print(std::cout, title);
  std::cout << '\n';
  if (ctx.csv) {
    std::cout << "CSV <<<\n" << table.toCsv() << ">>>\n\n";
  }
}

inline void footer(const BenchContext& ctx) {
  std::printf("[done in %.1f s]\n", ctx.timer.seconds());
}

}  // namespace rlslb::bench
