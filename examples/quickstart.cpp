// Quickstart: the smallest complete rlslb program.
//
// Builds the paper's worst-case configuration (all m balls in one bin),
// runs Randomized Local Search to perfect balance with the default hybrid
// engine, and prints the headline quantities next to Theorem 1's
// prediction.
//
//   $ ./example_quickstart [--n=1024] [--m=8192] [--seed=1]
#include <cmath>
#include <cstdio>

#include "config/generators.hpp"
#include "core/rls.hpp"
#include "sim/probes.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace rlslb;
  const CliArgs args(argc, argv);
  const std::int64_t n = args.getInt("n", 1024);
  const std::int64_t m = args.getInt("m", 8 * n);
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));

  // 1. An initial configuration: every ball in bin 0 (the worst case).
  const config::Configuration initial = config::allInOne(n, m);

  // 2. Simulation options: the hybrid engine is the right default; see
  //    core::SimOptions for the naive (ground-truth) and jump variants.
  core::SimOptions options;
  options.seed = seed;

  // 3. Run to perfect balance (discrepancy < 1), recording the trajectory.
  sim::TrajectoryRecorder trajectory(/*timeStep=*/1.0);
  const sim::RunResult result =
      core::balance(initial, options, sim::Target::perfect(), {}, &trajectory);

  const double lnN = std::log(static_cast<double>(n));
  const double n2m = static_cast<double>(n) * static_cast<double>(n) / static_cast<double>(m);
  std::printf("n = %lld bins, m = %lld balls, start: all balls in bin 0\n",
              static_cast<long long>(n), static_cast<long long>(m));
  std::printf("reached perfect balance at t = %.3f  (%lld ball moves)\n", result.time,
              static_cast<long long>(result.moves));
  std::printf("Theorem 1 scale ln(n) + n^2/m = %.3f   ->  T / scale = %.3f\n", lnN + n2m,
              result.time / (lnN + n2m));

  std::printf("\ndiscrepancy trajectory (1 time-unit grid):\n");
  std::printf("%8s  %12s  %10s\n", "time", "discrepancy", "overloaded");
  for (const auto& p : trajectory.points()) {
    std::printf("%8.2f  %12.2f  %10lld\n", p.time, p.discrepancy,
                static_cast<long long>(p.overloadedBalls));
    if (trajectory.points().size() > 20 && p.time > 15.0) {
      std::printf("     ... (%zu more points)\n", trajectory.points().size());
      break;
    }
  }
  return 0;
}
