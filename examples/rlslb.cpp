// rlslb -- the unified experiment driver over the scenario registry.
//
//   rlslb list                         enumerate registered scenarios
//   rlslb processes                    enumerate registered process kinds
//   rlslb describe <name...>           print a scenario's or process kind's
//                                      parameter spec (keys, types, defaults)
//   rlslb run <name...> [flags] [k=v]  run one or more scenarios by name
//   rlslb all [flags] [k=v]            run the whole roster, name order
//   rlslb serve <kind...> [flags] [k=v]  serving-subsystem sugar:
//                                      `serve poisson` == `run serve_poisson`
//                                      (kinds: poisson bursty diurnal
//                                      adversarial; see docs/EXPERIMENTS.md)
//   rlslb watch <name...> [flags] [k=v]  run with the conformance roster on
//                                      and a live snapshot line (gap vs the
//                                      paper envelope, sparkline, anomaly
//                                      tally) on stdout
//
// Flags (any subcommand that runs scenarios):
//   --scale=small|default|full   coarse size knob (default ~ minutes total)
//   --seed=<u64>                 base seed (default 20170529)
//   --reps=<k>                   override replication count
//   --threads=<t>                replication fan-out (0 = all cores)
//   --csv                        also print CSV blocks
//   --out=FILE                   stream JSONL records (manifest + tables +
//                                timings; schema in docs/EXPERIMENTS.md)
//   --conformance=on|off|strict  attach the conformance monitor roster to
//                                every scenario that supports it; strict
//                                exits 3 on any error-severity anomaly
//
// Bare key=value tokens are per-scenario parameter overrides, e.g.
//   rlslb run e15_trajectory n=4096 horizon=12 --out=r.jsonl
//
// One thread pool and one ResultSink are shared across every scenario in
// the run; for a fixed seed the "table" records are byte-identical across
// runs, thread counts, and machines (see report/result_sink.hpp).
#include <cstdio>
#include <exception>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "obs/watch.hpp"
#include "process/registry.hpp"
#include "scenario/harness.hpp"
#include "workload/compose.hpp"

using namespace rlslb;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s list\n"
               "       %s processes\n"
               "       %s traces\n"
               "              list the workload trace generators and the compose\n"
               "              algebra's factors/combinators (spec= grammar)\n"
               "       %s describe <scenario-process-or-trace-factor...>\n"
               "       %s run <scenario...> [--scale=..] [--seed=..] [--reps=..]\n"
               "             [--threads=..] [--csv] [--out=FILE] [key=value...]\n"
               "       %s all [flags] [key=value...]\n"
               "       %s serve <kind...> [flags] [key=value...]\n"
               "              kinds: poisson bursty diurnal adversarial composed\n"
               "              (shorthand for `run serve_<kind>`)\n"
               "       %s watch <scenario...> [flags] [key=value...]\n"
               "              run with conformance monitors on and a live\n"
               "              gap/anomaly snapshot on stdout\n",
               argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0);
  return 2;
}

void printParamSpec(const std::vector<process::ParamSpec>& params) {
  if (params.empty()) {
    std::cout << "  (no key=value parameters; the common knobs --scale/--seed/--reps/"
                 "--threads still apply)\n";
    return;
  }
  Table table({"param", "type", "default", "description"});
  for (const process::ParamSpec& p : params) {
    table.row().cell(p.name).cell(p.type).cell(p.defaultValue).cell(p.help);
  }
  table.print(std::cout, "parameters (pass as bare key=value tokens)");
}

/// `rlslb traces`: the generator roster plus the compose algebra.
void printTraceRoster() {
  Table generators({"generator", "scenario", "description"});
  generators.row().cell("poisson").cell("serve_poisson").cell(
      "constant-rate Poisson arrivals/departures (the [11] baseline)");
  generators.row().cell("bursty").cell("serve_bursty").cell(
      "2-state MMPP calm/burst modulated arrivals");
  generators.row().cell("diurnal").cell("serve_diurnal").cell(
      "sinusoid (day/night) modulated arrivals");
  generators.row().cell("adversarial").cell("serve_adversarial").cell(
      "synchronized heavy hot-spot bursts on background Poisson");
  generators.row().cell("composed:<spec>").cell("serve_composed / serve_capacity").cell(
      "trace algebra over the factors below (spec= / traces= params)");
  generators.row().cell("replay").cell("any serve_* (trace=FILE)").cell(
      "recorded trace: .jsonl / .csv / .bin chosen by extension");
  generators.print(std::cout, "workload trace generators (workload/generators.hpp)");

  Table algebra({"name", "signature", "role", "description"});
  for (const workload::TraceFactorSpec& f : workload::traceFactorRoster()) {
    algebra.row().cell(f.name).cell(f.signature).cell(f.role).cell(f.description);
  }
  algebra.print(std::cout, "\ncompose algebra (spec grammar: term ('+' term)*, "
                           "term = factor ('*' factor)*)");
  std::cout << "\nexample: rlslb serve composed "
               "'spec=diurnal(0.8,64)*bursty(8,0.05,0.5)+hotspot(16,32,8)'\n";
}

/// `rlslb describe <name>`: scenario first, process kind second, trace
/// factor/combinator third.
int describeOne(const std::string& name, const scenario::ScenarioRegistry& scenarios,
                const process::ProcessRegistry& processes) {
  if (const scenario::Scenario* s = scenarios.find(name)) {
    std::cout << "scenario " << s->name << "  [" << s->paperRef << "]\n"
              << "  " << s->description << "\n\n";
    printParamSpec(s->params);
    return 0;
  }
  if (const process::ProcessSpec* p = processes.find(name)) {
    std::cout << "process " << p->kind << "  (family: " << p->family << ")\n"
              << "  " << p->description << "\n\n";
    printParamSpec(p->params);
    std::cout << "\nrun it through a comparison scenario, e.g. `rlslb run "
                 "process_compare process="
              << p->kind << " [key=value...]`\n";
    return 0;
  }
  for (const workload::TraceFactorSpec& f : workload::traceFactorRoster()) {
    if (f.name == name) {
      std::cout << "trace " << f.role << " " << f.signature << "\n  " << f.description
                << "\n\nuse it in a compose spec: `rlslb serve composed spec=...` or "
                   "`rlslb run serve_capacity traces=...`; full roster: `rlslb traces`\n";
      return 0;
    }
  }
  std::fprintf(stderr,
               "unknown name '%s': not a scenario (`rlslb list`), process kind "
               "(`rlslb processes`), or trace factor (`rlslb traces`)\n",
               name.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // Split argv: --flags go to CliArgs; bare tokens are the subcommand,
  // scenario names, and key=value parameter overrides.
  std::vector<std::string> flagStrings;
  std::vector<std::string> words;
  std::vector<std::string> paramTokens;
  if (argc > 0) flagStrings.emplace_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      flagStrings.push_back(arg);
    } else if (arg.find('=') != std::string::npos) {
      paramTokens.push_back(arg);
    } else {
      words.push_back(arg);
    }
  }
  if (words.empty()) return usage(argv[0]);
  std::string command = words.front();
  std::vector<std::string> names(words.begin() + 1, words.end());
  if (command == "serve") {
    // Sugar for the serving roster: `serve poisson` -> `run serve_poisson`.
    // Unknown kinds fall through to the registry's unknown-name error,
    // which lists the roster.
    if (names.empty()) return usage(argv[0]);
    for (std::string& name : names) name = "serve_" + name;
    command = "run";
  }

  std::vector<const char*> flagPtrs;
  flagPtrs.reserve(flagStrings.size());
  for (const auto& s : flagStrings) flagPtrs.push_back(s.c_str());
  const CliArgs args(static_cast<int>(flagPtrs.size()), flagPtrs.data());

  scenario::registerBuiltinScenarios();
  process::registerBuiltinProcesses();
  const scenario::ScenarioRegistry& registry = scenario::ScenarioRegistry::global();
  const process::ProcessRegistry& processRegistry = process::ProcessRegistry::global();

  if (command == "list") {
    if (!names.empty() || !paramTokens.empty()) return usage(argv[0]);
    const auto unknownFlags = args.unusedKeys();
    if (!unknownFlags.empty()) {
      for (const auto& k : unknownFlags) std::fprintf(stderr, "unknown flag --%s\n", k.c_str());
      return 2;
    }
    Table table({"scenario", "paper ref", "description"});
    for (const scenario::Scenario* s : registry.list()) {
      table.row().cell(s->name).cell(s->paperRef).cell(s->description);
    }
    table.print(std::cout, "registered scenarios (" + std::to_string(registry.size()) + ")");
    std::cout << "\nrun one with: " << args.programName()
              << " run <scenario> [--scale=small] [--out=results.jsonl] [key=value...]\n"
              << "parameter specs: " << args.programName() << " describe <scenario>\n";
    return 0;
  }

  if (command == "processes") {
    if (!names.empty() || !paramTokens.empty()) return usage(argv[0]);
    const auto unknownFlags = args.unusedKeys();
    if (!unknownFlags.empty()) {
      for (const auto& k : unknownFlags) std::fprintf(stderr, "unknown flag --%s\n", k.c_str());
      return 2;
    }
    Table table({"process", "family", "description"});
    for (const process::ProcessSpec* p : processRegistry.list()) {
      table.row().cell(p->kind).cell(p->family).cell(p->description);
    }
    table.print(std::cout, "registered process kinds (" +
                               std::to_string(processRegistry.size()) + ")");
    std::cout << "\ncompare them with: " << args.programName()
              << " run process_compare process=<kind,...|all> [key=value...]\n"
              << "parameter specs: " << args.programName() << " describe <kind>\n";
    return 0;
  }

  if (command == "traces") {
    if (!names.empty() || !paramTokens.empty()) return usage(argv[0]);
    const auto unknownFlags = args.unusedKeys();
    if (!unknownFlags.empty()) {
      for (const auto& k : unknownFlags) std::fprintf(stderr, "unknown flag --%s\n", k.c_str());
      return 2;
    }
    printTraceRoster();
    return 0;
  }

  if (command == "describe") {
    if (names.empty() || !paramTokens.empty()) return usage(argv[0]);
    const auto unknownFlags = args.unusedKeys();
    if (!unknownFlags.empty()) {
      for (const auto& k : unknownFlags) std::fprintf(stderr, "unknown flag --%s\n", k.c_str());
      return 2;
    }
    int status = 0;
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i > 0) std::cout << '\n';
      status = describeOne(names[i], registry, processRegistry) != 0 ? 2 : status;
    }
    return status;
  }

  const bool watchMode = command == "watch";
  if (watchMode) command = "run";
  if (command != "run" && command != "all") return usage(argv[0]);
  if (command == "run" && names.empty()) {
    std::fprintf(stderr, "%s: no scenario names given (try `%s list`)\n",
                 watchMode ? "watch" : "run", argv[0]);
    return 2;
  }
  if (command == "all" && !names.empty()) return usage(argv[0]);

  scenario::ScenarioContext ctx = scenario::contextFromArgs(args);
  scenario::applyParamTokens(ctx, paramTokens);

  // watch = run with the conformance roster defaulted on and a live
  // renderer observing the monitor set (the observer survives the
  // per-scenario MonitorSet::clear()).
  std::unique_ptr<obs::WatchRenderer> watcher;
  if (watchMode) {
    ctx.conformanceDefault = true;
    obs::WatchRenderer::Options wo;
    wo.envelope.n = ctx.params.getInt("n", ctx.sized(256));
    wo.envelope.d = static_cast<int>(ctx.params.getInt("d", 2));
    wo.showBound = names.front().rfind("serve", 0) == 0;
    watcher = std::make_unique<obs::WatchRenderer>(std::cout, wo);
    watcher->attach(ctx.monitors);
  }

  const std::string outPath = args.getString("out", "");
  const std::string tracePath = args.getString("trace-out", "");
  const auto unusedFlags = args.unusedKeys();
  if (!unusedFlags.empty()) {
    for (const auto& k : unusedFlags) std::fprintf(stderr, "unknown flag --%s\n", k.c_str());
    return 2;
  }
  scenario::ResultOutput out;
  if (!out.attach(outPath, ctx)) return 2;
  scenario::TraceOutput traceOut;
  traceOut.attach(tracePath, ctx);

  std::vector<std::string> toRun = names;
  if (command == "all") {
    for (const scenario::Scenario* s : registry.list()) toRun.push_back(s->name);
  }

  for (const std::string& name : toRun) {
    try {
      registry.runOne(name, ctx);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }
  if (watcher) watcher->finish(ctx.monitors);
  if (!traceOut.finish(ctx)) return 2;

  // A parameter consumed by none of the scenarios that ran is a typo.
  const auto unusedParams = ctx.params.unusedKeys();
  if (!unusedParams.empty()) {
    for (const auto& k : unusedParams) {
      std::fprintf(stderr, "unknown parameter %s (not read by any scenario that ran)\n",
                   k.c_str());
    }
    return 2;
  }
  return scenario::conformanceExit(ctx);
}
