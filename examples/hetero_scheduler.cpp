// Task migration on a heterogeneous multicore -- Section 7's first future
// direction (bins with speeds) in its natural application.
//
// Cores (bins) have speeds; tasks (balls) experience load = tasks-on-core /
// core-speed (a completion-rate proxy). Each task occasionally probes a
// random core and migrates iff that strictly improves its experienced
// load. The demo runs a big.LITTLE-style machine (a few fast cores, many
// slow ones), prints the Nash allocation, and compares it against the
// proportional-share ideal m * s_i / sum(s).
//
//   $ ./example_hetero_scheduler [--big=4] [--little=12] [--tasks=640]
//                                [--big_speed=4] [--seed=5]
#include <cstdio>
#include <vector>

#include "config/generators.hpp"
#include "ext/speed_rls.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace rlslb;
  const CliArgs args(argc, argv);
  const std::int64_t big = args.getInt("big", 4);
  const std::int64_t little = args.getInt("little", 12);
  const std::int64_t tasks = args.getInt("tasks", 640);
  const std::int64_t bigSpeed = args.getInt("big_speed", 4);
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 5));

  const std::int64_t cores = big + little;
  std::vector<std::int64_t> speeds(static_cast<std::size_t>(cores), 1);
  for (std::int64_t i = 0; i < big; ++i) speeds[static_cast<std::size_t>(i)] = bigSpeed;
  std::int64_t speedSum = 0;
  for (auto s : speeds) speedSum += s;

  std::printf("heterogeneous scheduler: %lld big cores (speed %lld) + %lld little cores, "
              "%lld tasks\n",
              static_cast<long long>(big), static_cast<long long>(bigSpeed),
              static_cast<long long>(little), static_cast<long long>(tasks));
  std::printf("start: every task on little core %lld (worst case)\n\n",
              static_cast<long long>(cores - 1));

  ext::SpeedRlsEngine engine(config::allInOne(cores, tasks), speeds, seed);
  const auto run = engine.runUntilEquilibrium(/*maxActivations=*/500'000'000);

  std::printf("reached Nash equilibrium: %s  (t = %.2f, %lld migrations, %lld probes)\n",
              run.reachedEquilibrium ? "yes" : "no", run.time,
              static_cast<long long>(run.moves), static_cast<long long>(run.activations));

  std::printf("\n%6s  %6s  %6s  %14s  %12s\n", "core", "speed", "tasks", "ideal m*s/sum(s)",
              "load (t/s)");
  for (std::int64_t i = 0; i < cores; ++i) {
    const double ideal = static_cast<double>(tasks) * static_cast<double>(speeds[static_cast<std::size_t>(i)]) /
                         static_cast<double>(speedSum);
    std::printf("%6lld  %6lld  %6lld  %14.1f  %12.2f\n", static_cast<long long>(i),
                static_cast<long long>(speeds[static_cast<std::size_t>(i)]),
                static_cast<long long>(engine.loads()[static_cast<std::size_t>(i)]), ideal,
                static_cast<double>(engine.loads()[static_cast<std::size_t>(i)]) /
                    static_cast<double>(speeds[static_cast<std::size_t>(i)]));
    if (i == big + 2 && cores > big + 5) {
      std::printf("   ... (%lld more little cores)\n", static_cast<long long>(cores - i - 2));
      i = cores - 2;
    }
  }
  std::printf("\nweighted discrepancy at equilibrium: %.3f (every core within one task of "
              "proportional share)\n",
              engine.weightedDiscrepancy());
  return 0;
}
