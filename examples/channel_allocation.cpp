// Wireless channel allocation -- the second application from the paper's
// introduction ([19]: "balls and bins distributed load balancing algorithm
// for channel allocation").
//
// Clients (balls) attach to channels (bins); a client's interference is
// the number of clients sharing its channel. Each client occasionally
// probes a random channel and switches if the probed channel is no more
// crowded -- exactly RLS. Two regimes are compared:
//
//   * full scanning: a client can probe ANY channel (complete graph);
//   * neighbor scanning: hardware restricts probing to adjacent channels
//     (cycle topology over the spectrum), the Section-7 graph extension.
//
// The demo prints the discrepancy trajectory of both regimes from the same
// worst-case start (all clients piled on channel 0 after an outage) and
// the time each needs to reach perfect balance.
//
//   $ ./example_channel_allocation [--channels=64] [--clients=1024] [--seed=3]
#include <cstdio>

#include "config/generators.hpp"
#include "graph/graph_engine.hpp"
#include "graph/topology.hpp"
#include "sim/naive_engine.hpp"
#include "sim/probes.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace rlslb;
  const CliArgs args(argc, argv);
  const std::int64_t channels = args.getInt("channels", 64);
  const std::int64_t clients = args.getInt("clients", 1024);
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 3));

  const auto start = config::allInOne(channels, clients);
  std::printf("channel allocation: %lld channels, %lld clients, all on channel 0\n\n",
              static_cast<long long>(channels), static_cast<long long>(clients));

  // Regime 1: full scanning (the paper's protocol on the complete graph).
  sim::TrajectoryRecorder fullTraj(1.0);
  sim::NaiveEngine full(start, seed);
  const auto fullRun = sim::runUntil(full, sim::Target::perfect(), {}, &fullTraj);

  // Regime 2: neighbor scanning (cycle over the spectrum).
  const auto spectrum = graph::Topology::cycle(channels);
  sim::TrajectoryRecorder nbrTraj(1.0);
  graph::GraphRlsEngine neighbor(start, spectrum, seed + 1);
  const auto nbrRun = sim::runUntil(neighbor, sim::Target::perfect(),
                                    {.maxTime = 1e9, .maxEvents = 500'000'000}, &nbrTraj);

  std::printf("%8s  %22s  %22s\n", "time", "full-scan interference", "nbr-scan interference");
  const auto& fp = fullTraj.points();
  const auto& np = nbrTraj.points();
  for (std::size_t i = 0; i < 12; ++i) {
    const double t = static_cast<double>(i);
    const auto at = [&](const std::vector<sim::TrajectoryRecorder::Point>& pts) {
      double last = pts.front().discrepancy;
      for (const auto& p : pts) {
        if (p.time > t) break;
        last = p.discrepancy;
      }
      return last;
    };
    std::printf("%8.1f  %22.1f  %22.1f\n", t, at(fp), at(np));
  }

  std::printf("\nfull scanning reached perfect balance at t = %.2f\n", fullRun.time);
  std::printf("neighbor scanning reached perfect balance at t = %.2f (%.1fx slower)\n",
              nbrRun.time, nbrRun.time / fullRun.time);
  std::printf("\ntakeaway: RLS needs no coordination either way, but probing locality\n"
              "costs a mixing-time factor (see bench_graphs for the full sweep).\n");
  return 0;
}
