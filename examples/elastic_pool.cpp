// Elastic worker pool -- the open-system module in its natural habitat.
//
// A fixed fleet of workers (bins) serves jobs (balls) that arrive as a
// Poisson stream and complete at rate mu each. While a job waits it may
// probe a random worker and migrate if that lowers its queue -- RLS as a
// work-stealing substitute. The demo contrasts three regimes at the same
// offered load:
//
//   1. no balancing            (arrivals land uniformly, no migration)
//   2. smart placement          (join-lesser-of-2, no migration)
//   3. RLS migration            (uniform arrivals + migration clocks)
//
// and reports the stationary spread and the p99 queue length -- the
// operational quantity an operator cares about.
//
//   $ ./example_elastic_pool [--workers=64] [--rho=32] [--seed=11]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "dynamic/open_system.hpp"
#include "stats/summary.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace rlslb;
  const CliArgs args(argc, argv);
  const std::int64_t workers = args.getInt("workers", 64);
  const double rho = args.getDouble("rho", 32.0);  // mean jobs per worker
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 11));

  const double mu = 0.25;
  const double lambda = rho * mu;

  struct Regime {
    const char* name;
    int choices;
    bool rls;
  };
  const Regime regimes[] = {
      {"no balancing", 1, false},
      {"join-lesser-of-2", 2, false},
      {"RLS migration", 1, true},
  };

  std::printf("elastic pool: %lld workers, offered load %.0f jobs/worker (lambda=%.2f, "
              "mu=%.2f)\n\n",
              static_cast<long long>(workers), rho, lambda, mu);
  std::printf("%-18s  %10s  %10s  %10s  %12s\n", "regime", "mean jobs", "spread", "p99 queue",
              "migrations/s");

  for (const auto& regime : regimes) {
    dynamic::OpenSystemOptions opts;
    opts.arrivalRatePerBin = lambda;
    opts.departureRate = mu;
    opts.arrivalChoices = regime.choices;
    opts.gap = regime.rls ? 1 : (1 << 30);  // huge gap = migrations never fire
    dynamic::OpenSystem sys(workers, opts, seed);

    sys.runUntilTime(40.0 / mu);  // warm up to stationarity

    std::vector<double> spreads;
    std::vector<double> p99s;
    const double start = sys.time();
    for (int sample = 0; sample < 120; ++sample) {
      sys.runUntilTime(sys.time() + 0.5 / mu);
      spreads.push_back(static_cast<double>(sys.spread()));
      std::vector<double> queue(sys.loads().begin(), sys.loads().end());
      p99s.push_back(stats::quantile(queue, 0.99));
    }
    const double elapsed = sys.time() - start;
    std::printf("%-18s  %10.1f  %10.2f  %10.1f  %12.2f\n", regime.name,
                static_cast<double>(sys.numBalls()),
                stats::summarize(spreads).mean, stats::summarize(p99s).mean,
                static_cast<double>(sys.counters().migrations) / elapsed);
  }

  std::printf("\ntakeaway: placement policies narrow the band; per-job RLS migration\n"
              "flattens it regardless of how jobs arrive, at a modest probe cost.\n");
  return 0;
}
