// Peer-to-peer rebalancing under churn -- the load-balancing application
// from the paper's introduction ([20]: "load balancing in dynamic
// structured peer-to-peer systems").
//
// Peers (bins) hold data items (balls). The overlay experiences churn:
// peers join empty, or leave and dump their items onto a random survivor
// (the worst-case handoff). Between churn events the items run RLS. The
// demo shows that a constant churn rate keeps the system near-balanced:
// each disruption injects a Theta(avg)-size discrepancy spike and RLS
// flattens it within a few time units (Theorem 1's Phase-1 behaviour), so
// imbalance does not accumulate over the run.
//
//   $ ./example_p2p_rebalance [--peers=256] [--items_per_peer=64]
//                             [--churn_events=40] [--seed=7]
#include <cstdio>
#include <vector>

#include "config/configuration.hpp"
#include "config/metrics.hpp"
#include "rng/distributions.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256pp.hpp"
#include "sim/naive_engine.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace rlslb;
  const CliArgs args(argc, argv);
  const std::int64_t peers0 = args.getInt("peers", 256);
  const std::int64_t itemsPerPeer = args.getInt("items_per_peer", 64);
  const std::int64_t churnEvents = args.getInt("churn_events", 40);
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 7));
  rng::Xoshiro256pp eng(seed);

  // Initial overlay: items spread uniformly across the peers.
  std::vector<std::int64_t> loads(static_cast<std::size_t>(peers0), 0);
  rng::multinomialUniform(eng, peers0 * itemsPerPeer, loads);

  std::printf("P2P overlay: %lld peers, %lld items, RLS interval 4.0 between churn events\n\n",
              static_cast<long long>(peers0), static_cast<long long>(peers0 * itemsPerPeer));
  std::printf("%6s  %6s  %8s  %12s  %11s\n", "event", "peers", "items", "disc(spike)",
              "disc(after)");

  double discSumAfter = 0.0;
  for (std::int64_t event = 0; event < churnEvents; ++event) {
    // Churn: join (empty peer) or leave (items dumped on one survivor).
    if (rng::bernoulli(eng, 0.5) && loads.size() > 2) {
      const auto leaver = static_cast<std::size_t>(rng::uniformIndex(eng, loads.size()));
      auto survivor = static_cast<std::size_t>(rng::uniformIndex(eng, loads.size() - 1));
      if (survivor >= leaver) ++survivor;
      loads[survivor] += loads[leaver];
      loads.erase(loads.begin() + static_cast<std::ptrdiff_t>(leaver));
    } else {
      loads.push_back(0);
    }

    const config::Configuration spiked(loads);
    const double discSpike = config::computeMetrics(spiked).discrepancy;

    // One churn interval of RLS on the labeled overlay.
    sim::NaiveEngine engine(spiked, rng::streamSeed(seed, static_cast<std::uint64_t>(event)));
    sim::RunLimits limits;
    limits.maxTime = 4.0;
    sim::runUntil(engine, sim::Target::perfect(), limits);
    loads = engine.loads();

    const double discAfter = engine.state().discrepancy();
    discSumAfter += discAfter;
    std::printf("%6lld  %6zu  %8lld  %12.2f  %11.2f\n", static_cast<long long>(event),
                loads.size(), static_cast<long long>(engine.state().numBalls), discSpike,
                discAfter);
  }

  std::printf("\nmean post-interval discrepancy: %.2f (flat across the run: spikes do not "
              "accumulate)\n",
              discSumAfter / static_cast<double>(churnEvents));
  return 0;
}
