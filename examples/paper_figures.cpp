// ASCII reproductions of the paper's three illustrative figures, driven by
// the real library machinery (not hand-drawn data).
//
//  Figure 1: for a sample configuration, which moves are RLS moves, which
//            are destructive, and which are both (neutral).
//  Figure 2: one step of the Lemma 2 coupling -- the two close
//            configurations, the activated ball, the shared destination
//            rank, and the resulting configurations (run live through
//            core::DmlCoupling).
//  Figure 3: the Lemma 13 reshaping -- an arbitrary x-balanced
//            configuration destructively reshaped to the half/half form,
//            with the ignored move classes annotated.
//  Figure 4: the ensemble mean discrepancy trajectory E[disc(t)] from the
//            worst case (the E15 curve), replications fanned out on the
//            thread pool -- pass --threads=<t> (0 = hardware).
//
//   $ ./example_paper_figures [--threads=0]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "config/generators.hpp"
#include "core/coupling.hpp"
#include "core/rls.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro256pp.hpp"
#include "runner/thread_pool.hpp"
#include "sim/ensemble.hpp"
#include "sim/probes.hpp"
#include "util/cli.hpp"

namespace {

using namespace rlslb;

void drawBars(const std::vector<std::int64_t>& loads, const std::string& indent) {
  const std::int64_t maxLoad = *std::max_element(loads.begin(), loads.end());
  for (std::int64_t level = maxLoad; level >= 1; --level) {
    std::printf("%s%2lld |", indent.c_str(), static_cast<long long>(level));
    for (std::int64_t v : loads) std::printf("%s", v >= level ? " #" : "  ");
    std::printf("\n");
  }
  std::printf("%s   +", indent.c_str());
  for (std::size_t i = 0; i < loads.size(); ++i) std::printf("--");
  std::printf("\n%s    ", indent.c_str());
  for (std::size_t i = 0; i < loads.size(); ++i) std::printf("%2zu", i % 10);
  std::printf("  (bin)\n");
}

void figure1() {
  std::printf("Figure 1: RLS moves vs destructive moves\n");
  std::printf("========================================\n");
  const std::vector<std::int64_t> loads = {5, 4, 4, 3, 2, 2, 1};
  drawBars(loads, "  ");
  std::printf("\n  move i->j is an RLS move     iff load(i) >= load(j) + 1\n");
  std::printf("  move i->j is destructive     iff load(i) <= load(j) + 1\n");
  std::printf("  both (neutral)               iff load(i) == load(j) + 1\n\n");
  std::printf("  from bin 0 (load 5): ");
  for (std::size_t j = 1; j < loads.size(); ++j) {
    const bool rls = loads[0] >= loads[j] + 1;
    const bool destructive = loads[0] <= loads[j] + 1;
    std::printf("->%zu:%s ", j, rls && destructive ? "both" : (rls ? "RLS" : "dest"));
  }
  std::printf("\n  from bin 5 (load 2): ");
  for (std::size_t j = 0; j < loads.size(); ++j) {
    if (j == 5) continue;
    const bool rls = loads[5] >= loads[j] + 1;
    const bool destructive = loads[5] <= loads[j] + 1;
    std::printf("->%zu:%s ", j, rls && destructive ? "both" : (rls ? "RLS" : "dest"));
  }
  std::printf("\n\n");
}

void figure2() {
  std::printf("Figure 2: the Lemma 2 coupling, one live step\n");
  std::printf("=============================================\n");
  core::DmlCoupling coupling(config::Configuration({4, 3, 3, 2, 2, 1}), 2024);
  coupling.injectDestructiveMove(3, 0);  // a destructive move creates l'
  std::printf("  l  (process P(k)):      ");
  for (auto v : coupling.base()) std::printf("%lld ", static_cast<long long>(v));
  std::printf("\n  l' (process P(k+1)):    ");
  for (auto v : coupling.adversarial()) std::printf("%lld ", static_cast<long long>(v));
  std::printf("\n  close: %s   disc(l) <= disc(l'): %s\n", coupling.isClose() ? "yes" : "NO",
              coupling.discDominated() ? "yes" : "NO");

  std::printf("\n  coupled steps (same ball, same destination rank in both):\n");
  for (int step = 1; step <= 8; ++step) {
    coupling.stepCoupled();
    std::printf("  step %d:  l = ", step);
    for (auto v : coupling.base()) std::printf("%lld ", static_cast<long long>(v));
    std::printf("  l' = ");
    for (auto v : coupling.adversarial()) std::printf("%lld ", static_cast<long long>(v));
    std::printf("  close=%s dom=%s\n", coupling.isClose() ? "y" : "N",
                coupling.discDominated() ? "y" : "N");
  }
  std::printf("\n  the invariant (close=y, dom=y on every line) is Lemma 2's induction.\n\n");
}

void figure3() {
  std::printf("Figure 3: the Lemma 13 reshaping\n");
  std::printf("================================\n");
  rng::Xoshiro256pp eng(99);
  const std::int64_t n = 16;
  const std::int64_t avg = 6;
  const std::int64_t x = 2;
  // An arbitrary x-balanced configuration...
  std::vector<std::int64_t> loads(static_cast<std::size_t>(n), avg);
  for (std::size_t i = 0; i < loads.size(); ++i) {
    loads[i] += static_cast<std::int64_t>(rng::uniformIndex(eng, 2 * x + 1)) - x;
  }
  // ... mass-corrected to exactly n*avg:
  std::int64_t excess = 0;
  for (auto v : loads) excess += v - avg;
  for (std::size_t i = 0; excess != 0; i = (i + 1) % loads.size()) {
    if (excess > 0 && loads[i] > avg - x) {
      --loads[i];
      --excess;
    } else if (excess < 0 && loads[i] < avg + x) {
      ++loads[i];
      ++excess;
    }
  }
  std::printf("  an arbitrary %lld-balanced configuration (avg = %lld):\n",
              static_cast<long long>(x), static_cast<long long>(avg));
  drawBars(loads, "  ");

  const auto reshaped = config::halfHalf(n, n * avg, x);
  std::printf("\n  after the destructive reshaping (all destructive moves, so Lemma 2\n");
  std::printf("  says analyzing this shape upper-bounds the original):\n");
  drawBars(reshaped.loads(), "  ");
  std::printf("\n  during [0, t]: ignore light-bin activations, ignore heavy-to-heavy\n");
  std::printf("  moves, force heavy-to-light moves -- each simplification is justified\n");
  std::printf("  by reversing it with destructive moves (Lemma 2).\n\n");
}

void figure4(int threads) {
  std::printf("Figure 4: the mean discrepancy trajectory (E15 curve)\n");
  std::printf("=====================================================\n");
  const std::int64_t n = 256;
  const std::int64_t m = 8 * n;
  const std::int64_t reps = 48;
  const double dt = 1.0;
  const double horizon = 16.0;

  runner::ThreadPool pool(threads);
  const auto ensemble = sim::accumulateEnsemble(
      dt, horizon, reps, /*baseSeed=*/20170529,
      [&](std::int64_t, std::uint64_t seed) {
        sim::TrajectoryRecorder recorder(dt / 4.0);
        core::SimOptions o;
        o.seed = seed;
        sim::RunLimits limits;
        limits.maxTime = horizon + 1.0;
        core::balance(config::allInOne(n, m), o, sim::Target::perfect(), limits, &recorder);
        return recorder.points();
      },
      pool);

  // Log-scale bars: the Phase 1 exponential crash shows as a linear ramp.
  const double top = std::log1p(ensemble.meanDiscrepancy(0));
  std::printf("  n=%lld m=8n, %lld replications on %d thread(s); bar = log(1+E[disc])\n\n",
              static_cast<long long>(n), static_cast<long long>(reps), pool.size());
  for (std::size_t g = 0; g < ensemble.gridSize(); ++g) {
    const double value = ensemble.meanDiscrepancy(g);
    const int bar = static_cast<int>(std::round(std::log1p(value) / top * 48.0));
    std::printf("  t=%5.1f |%-48.*s| E[disc] = %.3f\n", ensemble.timeAt(g), bar,
                "################################################", value);
  }
  std::printf("\n  the ramp's three regimes are the paper's Phase 1/2/3 decomposition;\n");
  std::printf("  identical output for any --threads (the streamSeed contract).\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  const rlslb::CliArgs args(argc, argv);
  const int threads = args.getThreads(0);
  for (const auto& k : args.unusedKeys()) {
    std::fprintf(stderr, "unknown flag --%s\n", k.c_str());
    return 2;
  }
  figure1();
  figure2();
  figure3();
  figure4(threads);
  return 0;
}
