// Minimal external scenario: proves an installed rlslb package exposes the
// core facade AND the scenario/report subsystem to out-of-tree code.
// Headers install under <prefix>/include/rlslb/, which the exported target
// puts on the include path, so includes spell exactly as in-tree.
#include <cstdio>
#include <sstream>

#include "config/generators.hpp"
#include "core/rls.hpp"
#include "report/result_sink.hpp"
#include "scenario/scenario.hpp"

int main() {
  using namespace rlslb;

  // 1. The three-line quickstart against the installed library.
  core::SimOptions options;
  options.seed = 7;
  const auto r = core::balance(config::allInOne(128, 1024), options);
  std::printf("balanced 1024 balls on 128 bins in t=%.3f (%lld moves)\n", r.time,
              static_cast<long long>(r.moves));
  if (r.finalState.discrepancy() >= 1.0) {
    std::fprintf(stderr, "FAIL: not perfectly balanced\n");
    return 1;
  }

  // 2. The scenario registry is populated and a custom external scenario
  //    can register and emit JSONL through the report layer.
  scenario::registerBuiltinScenarios();
  const auto builtins = scenario::ScenarioRegistry::global().size();
  std::printf("built-in scenarios: %zu\n", builtins);
  if (builtins < 11) {
    std::fprintf(stderr, "FAIL: expected >= 11 built-in scenarios\n");
    return 1;
  }

  scenario::ScenarioRegistry mine;
  mine.add({"external_demo", "out-of-tree scenario", "consumer smoke test",
            [](scenario::ScenarioContext& ctx) {
              Table t({"n", "time"});
              core::SimOptions o;
              o.seed = ctx.seed;
              t.row().cell(std::int64_t{64}).cell(
                  core::balancingTime(config::allInOne(64, 512), o));
              ctx.emitTable(t, "external scenario table");
            }});
  std::ostringstream jsonl;
  report::ResultSink sink(&jsonl);
  scenario::ScenarioContext ctx;
  ctx.sink = &sink;
  ctx.console = nullptr;
  mine.runOne("external_demo", ctx);
  if (jsonl.str().find("\"type\":\"table\"") == std::string::npos) {
    std::fprintf(stderr, "FAIL: sink produced no table record\n");
    return 1;
  }
  std::printf("external scenario emitted %zu bytes of JSONL\nOK\n", jsonl.str().size());
  return 0;
}
