// rlslb command-line simulator: the library as a standalone tool.
//
// Composes every public knob: initial shape, engine, protocol gap, stopping
// target, trajectory output and replication statistics. Examples:
//
//   # 50 replications of the worst case on all cores, summary statistics
//   ./build/examples/simulate --n=4096 --m=32768 --init=allinone --reps=50 --threads=0
//
//   # one trajectory on a CSV grid, strict protocol, jump engine
//   ./build/examples/simulate --n=1024 --m=8192 --init=staircase --engine=jump --trajectory=0.5 --csv
//
//   # stop at an 8-balanced configuration instead of perfect balance
//   ./build/examples/simulate --n=1024 --m=8192 --target=8
#include <cstdio>
#include <string>

#include "config/generators.hpp"
#include "core/predictors.hpp"
#include "core/rls.hpp"
#include "runner/replication.hpp"
#include "sim/probes.hpp"
#include "stats/summary.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace rlslb;

namespace {

config::Configuration makeInit(const std::string& name, std::int64_t n, std::int64_t m,
                               std::uint64_t seed) {
  if (name == "allinone") return config::allInOne(n, m);
  if (name == "balanced") return config::balanced(n, m);
  if (name == "twopoint") return config::twoPoint(n, m);
  if (name == "halfhalf") return config::halfHalf(n, m, m / n / 2);
  if (name == "staircase") return config::staircase(n, m);
  if (name == "random") {
    rng::Xoshiro256pp eng(seed);
    return config::uniformRandom(n, m, eng);
  }
  if (name == "greedy2") {
    rng::Xoshiro256pp eng(seed);
    return config::greedyD(n, m, 2, eng);
  }
  std::fprintf(stderr,
               "unknown --init=%s (allinone|balanced|twopoint|halfhalf|staircase|random|greedy2)\n",
               name.c_str());
  std::exit(2);
}

core::SimOptions::EngineKind parseEngine(const std::string& name) {
  if (name == "naive") return core::SimOptions::EngineKind::Naive;
  if (name == "jump") return core::SimOptions::EngineKind::Jump;
  if (name == "hybrid") return core::SimOptions::EngineKind::Hybrid;
  std::fprintf(stderr, "unknown --engine=%s (naive|jump|hybrid)\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::int64_t n = args.getInt("n", 1024);
  const std::int64_t m = args.getInt("m", 8 * n);
  const std::string initName = args.getString("init", "allinone");
  const std::string engineName = args.getString("engine", "hybrid");
  const std::int64_t reps = args.getInt("reps", 1);
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
  const std::int64_t targetX = args.getInt("target", 0);  // 0 = perfect balance
  const double trajectoryStep = args.getDouble("trajectory", 0.0);
  const bool csv = args.getBool("csv", false);
  const int gap = static_cast<int>(args.getInt("gap", 1));
  const int threads = args.getThreads(0);
  for (const auto& k : args.unusedKeys()) {
    std::fprintf(stderr, "unknown flag --%s\n", k.c_str());
    return 2;
  }

  core::SimOptions options;
  options.engine = parseEngine(engineName);
  options.gap = gap;
  const sim::Target target =
      targetX == 0 ? sim::Target::perfect() : sim::Target::xBalanced(targetX);

  std::printf("rlslb simulate: n=%lld m=%lld init=%s engine=%s gap=%d target=%s reps=%lld\n",
              static_cast<long long>(n), static_cast<long long>(m), initName.c_str(),
              engineName.c_str(), gap,
              targetX == 0 ? "perfect" : ("disc<=" + std::to_string(targetX)).c_str(),
              static_cast<long long>(reps));
  std::printf("Theorem 1 scale ln(n)+n^2/m = %.4g\n\n", core::theorem1Scale(n, m));

  if (reps == 1) {
    const auto init = makeInit(initName, n, m, seed);
    sim::TrajectoryRecorder recorder(trajectoryStep > 0 ? trajectoryStep : 1.0);
    options.seed = seed;
    const auto r = core::balance(init, options, target, {}, &recorder);
    std::printf("T = %.6g   moves = %lld   activations = %lld   reached = %s\n", r.time,
                static_cast<long long>(r.moves), static_cast<long long>(r.activations),
                r.reachedTarget ? "yes" : "no");
    if (trajectoryStep > 0) {
      Table t({"time", "disc", "maxload", "minload", "overloaded"});
      for (const auto& p : recorder.points()) {
        t.row().cell(p.time, 6).cell(p.discrepancy, 4).cell(p.maxLoad).cell(p.minLoad).cell(
            p.overloadedBalls);
      }
      std::printf("\n%s", csv ? t.toCsv().c_str() : t.toString().c_str());
    }
    return 0;
  }

  const auto samples = runner::runReplicationsScalar(
      reps, seed,
      [&](std::int64_t rep, std::uint64_t repSeed) {
        const auto init = makeInit(initName, n, m, rng::streamSeed(repSeed, 0x9e37));
        core::SimOptions o = options;
        o.seed = repSeed;
        (void)rep;
        return core::balancingTime(init, o, target);
      },
      threads);
  const auto s = stats::summarize(samples);
  Table t({"reps", "mean", "ci95", "stddev", "min", "p50", "p90", "p99", "max"});
  t.row()
      .cell(s.count)
      .cell(s.mean)
      .cell(s.ci95Half)
      .cell(s.stddev)
      .cell(s.min)
      .cell(s.median)
      .cell(s.p90)
      .cell(s.p99)
      .cell(s.max);
  std::printf("%s", csv ? t.toCsv().c_str() : t.toString().c_str());
  std::printf("\nmean T / theorem-1 scale = %.4g\n", s.mean / core::theorem1Scale(n, m));
  return 0;
}
