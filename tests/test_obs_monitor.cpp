// Conformance-monitor coverage (src/obs/monitor.hpp):
//   - unit behavior of every monitor: LoadConservation flags broken
//     structural invariants as errors and stays silent on healthy
//     sequences; GapEnvelope debounces (sustained-violation streaks) and
//     escalates past 2x the bound; Convergence respects open populations,
//     Steps-clock rescaling, and escalates a never-converged run;
//   - serve-loop integration: a healthy Poisson run with the default
//     roster attached produces no structural/envelope anomalies, while
//     the inverted-acceptance broken dynamic (AllocatorOptions::
//     invertAcceptance) drives the gap through the envelope and triggers
//     error-severity anomalies;
//   - the determinism contract: gap-sketch snapshots and anomaly
//     sequences from simulated-state monitors are byte-identical across
//     shard and thread configurations;
//   - process-side integration through obs::ProcessProbe: the RLS
//     dynamic converges inside the envelope with no anomalies.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "obs/monitor.hpp"
#include "obs/probe.hpp"
#include "process/registry.hpp"
#include "config/generators.hpp"
#include "runner/thread_pool.hpp"
#include "serve/event_loop.hpp"
#include "serve/online_allocator.hpp"
#include "workload/generators.hpp"

namespace rlslb::obs {
namespace {

CheckSample healthyServeSample(std::int64_t step) {
  CheckSample s;
  s.origin = CheckSample::Origin::kServeEpoch;
  s.step = step;
  s.time = static_cast<double>(step);
  s.events = 100;
  s.gap = 2;
  s.liveBalls = 50;
  s.totalLoad = 50;
  s.maxWeight = 1;
  s.arrivals = 60 + step;
  s.departures = 10 + step;
  s.migrations = 5 + step;
  s.queuedOps = 80;
  s.crossShardOps = 20;
  s.queuePeak = 40;
  s.drainedOps = 80;
  return s;
}

// ------------------------------------------------------ LoadConservation

TEST(LoadConservationMonitor_, SilentOnHealthySequences) {
  MonitorSet set;
  set.add(std::make_unique<LoadConservationMonitor>());
  for (std::int64_t step = 0; step < 16; ++step) set.check(healthyServeSample(step));
  EXPECT_TRUE(set.log().empty());
  EXPECT_EQ(set.checks(), 16);
}

TEST(LoadConservationMonitor_, FlagsBrokenInvariantsAsErrors) {
  const auto errorsFor = [](CheckSample broken) {
    MonitorSet set;
    set.add(std::make_unique<LoadConservationMonitor>());
    set.check(healthyServeSample(0));
    broken.step = 1;
    set.check(broken);
    return set.log().errors();
  };

  CheckSample s = healthyServeSample(1);
  s.gap = -1;
  EXPECT_GE(errorsFor(s), 1) << "negative gap";

  s = healthyServeSample(1);
  s.liveBalls = 999;  // != arrivals - departures
  EXPECT_GE(errorsFor(s), 1) << "conservation";

  s = healthyServeSample(1);
  s.totalLoad = s.liveBalls - 1;
  EXPECT_GE(errorsFor(s), 1) << "load below live";

  s = healthyServeSample(1);
  s.drainedOps = s.queuedOps - 3;
  EXPECT_GE(errorsFor(s), 1) << "drained != queued";

  s = healthyServeSample(1);
  s.crossShardOps = s.queuedOps + 1;
  EXPECT_GE(errorsFor(s), 1) << "cross-shard > queued";

  // Monotonicity: a re-used step index must be flagged.
  MonitorSet set;
  set.add(std::make_unique<LoadConservationMonitor>());
  set.check(healthyServeSample(5));
  set.check(healthyServeSample(5));
  EXPECT_GE(set.log().errors(), 1) << "step did not advance";

  // ...unless beginRun() separated two sub-runs.
  MonitorSet runs;
  runs.add(std::make_unique<LoadConservationMonitor>());
  runs.beginRun();
  runs.check(healthyServeSample(5));
  runs.beginRun();
  runs.check(healthyServeSample(5));
  EXPECT_EQ(runs.log().errors(), 0) << "beginRun must reset the monotone-step state";
}

// ---------------------------------------------------------- GapEnvelope

TEST(GapEnvelopeMonitor_, DebouncesAndEscalates) {
  GapEnvelope envelope;
  envelope.n = 256;
  envelope.d = 2;
  envelope.warmupSteps = 4;
  envelope.consecutive = 3;
  const std::int64_t bound = envelope.bound(1);
  ASSERT_GT(bound, 0);

  MonitorSet set;
  set.add(std::make_unique<GapEnvelopeMonitor>(envelope));
  const auto gapSample = [](std::int64_t step, std::int64_t gap) {
    CheckSample s;
    s.step = step;
    s.gap = gap;
    s.maxWeight = 1;
    return s;
  };

  // Warmup steps and isolated spikes below `consecutive` never report.
  set.check(gapSample(0, 10 * bound));
  set.check(gapSample(10, bound + 1));
  set.check(gapSample(11, bound + 1));
  set.check(gapSample(12, 0));  // streak broken
  set.check(gapSample(13, bound + 1));
  set.check(gapSample(14, bound + 1));
  EXPECT_TRUE(set.log().empty());

  // The third consecutive violation reports a warning (gap <= 2x bound).
  set.check(gapSample(15, bound + 1));
  EXPECT_EQ(set.log().warnings(), 1);
  EXPECT_EQ(set.log().errors(), 0);

  // A sustained deep divergence escalates to an error on its own streak.
  MonitorSet deep;
  deep.add(std::make_unique<GapEnvelopeMonitor>(envelope));
  for (std::int64_t step = 10; step < 13; ++step) {
    deep.check(gapSample(step, 3 * bound));
  }
  EXPECT_EQ(deep.log().errors(), 1);
  EXPECT_EQ(deep.log().at(0).severity, Severity::kError);
  EXPECT_STREQ(deep.log().at(0).monitor, "gap_envelope");
}

TEST(GapEnvelope_, BoundScalesWithWeightAndSingleChoiceArrivals) {
  GapEnvelope envelope;
  envelope.n = 256;
  envelope.d = 2;
  EXPECT_EQ(envelope.bound(4), 4 * envelope.bound(1));
  GapEnvelope single = envelope;
  single.d = 1;
  EXPECT_GT(single.bound(1), envelope.bound(1))
      << "without d-choices arrivals the envelope must widen";
}

// ----------------------------------------------------------- Convergence

TEST(ConvergenceMonitor_, EscalatesANeverConvergedRun) {
  MonitorSet set;
  set.add(std::make_unique<ConvergenceMonitor>(64, 512, ConvergenceEnvelope{}));
  CheckSample s;
  s.origin = CheckSample::Origin::kProcessStride;
  s.gap = 1000;
  for (std::int64_t i = 1; i <= 8; ++i) {
    s.step = i * 100;
    s.time = static_cast<double>(i * 100);  // far past the ~50-unit deadline
    set.check(s);
  }
  set.finish();
  EXPECT_GE(set.log().errors(), 1);
}

TEST(ConvergenceMonitor_, OpenPopulationsAndHealthyRunsAreSilent) {
  // Open systems hold an equilibrium, not a convergence point: skipped.
  MonitorSet open;
  open.add(std::make_unique<ConvergenceMonitor>(64, 512, ConvergenceEnvelope{}));
  CheckSample s;
  s.origin = CheckSample::Origin::kProcessStride;
  s.openPopulation = true;
  s.gap = 1000;
  for (std::int64_t i = 1; i <= 8; ++i) {
    s.step = i * 100;
    s.time = static_cast<double>(i * 1000);
    open.check(s);
  }
  open.finish();
  EXPECT_TRUE(open.log().empty());

  // A run that converges before the deadline is silent even if it keeps
  // running long past it.
  MonitorSet good;
  good.add(std::make_unique<ConvergenceMonitor>(64, 512, ConvergenceEnvelope{}));
  CheckSample g;
  g.origin = CheckSample::Origin::kProcessStride;
  g.gap = 0;
  for (std::int64_t i = 1; i <= 8; ++i) {
    g.step = i * 100;
    g.time = static_cast<double>(i * 1000);
    good.check(g);
  }
  good.finish();
  EXPECT_TRUE(good.log().empty());
}

TEST(ConvergenceMonitor_, StepsClockDeadlineIsRescaledByM) {
  // A sequential Steps clock ticks per activation: time m is only one
  // round-equivalent unit, so a large gap at time m must NOT be past
  // the deadline yet.
  constexpr std::int64_t kM = 512;
  MonitorSet set;
  set.add(std::make_unique<ConvergenceMonitor>(64, kM, ConvergenceEnvelope{}));
  CheckSample s;
  s.origin = CheckSample::Origin::kProcessStride;
  s.clockKind = 2;  // process::Clock::Kind::Steps
  s.gap = 1000;
  for (std::int64_t i = 1; i <= 8; ++i) {
    s.step = i * kM;
    s.time = static_cast<double>(i * kM);  // 8 round-equivalents: inside deadline
    set.check(s);
  }
  EXPECT_TRUE(set.log().empty());
}

// ------------------------------------------------ serve-loop integration

struct ServeRun {
  std::vector<std::int64_t> loads;
  std::string gapSketchJson;
  std::vector<std::string> anomalies;  // rendered, deterministic monitors only
  std::int64_t errors = 0;
  std::int64_t warnings = 0;
  std::int64_t checks = 0;
};

/// Drive one Poisson serve run with a DETERMINISTIC roster (conservation +
/// gap envelope; no wall-clock drift monitor) under the given config.
ServeRun runServeWithMonitors(int shards, int threads, bool invert) {
  // Heavy load (~28 balls/bin at equilibrium): healthy RLS holds the gap
  // far inside the envelope, while the inverted dynamic has room to blow
  // it past 2x the bound.
  workload::OpenTraceOptions base;
  base.bins = 64;
  base.arrivalRatePerBin = 2.0;
  base.departureRate = 0.05;
  base.resampleRate = 1.0;
  base.maxEvents = 32768;
  workload::PoissonTrace trace(base, 99);

  serve::AllocatorOptions allocOptions;
  allocOptions.bins = 64;
  allocOptions.arrivalChoices = 2;
  allocOptions.invertAcceptance = invert;
  serve::OnlineAllocator allocator(allocOptions);

  runner::ThreadPool pool(threads);
  MonitorSet monitors;
  monitors.add(std::make_unique<LoadConservationMonitor>());
  GapEnvelope envelope;
  envelope.n = 64;
  envelope.d = 2;
  envelope.warmupSteps = 8;
  monitors.add(std::make_unique<GapEnvelopeMonitor>(envelope));
  monitors.beginRun();

  serve::LoopOptions options;
  options.shards = shards;
  options.epochEvents = 512;
  options.repairMovesPerEpoch = 4;
  options.seed = 13;
  options.applyMode =
      shards > 1 ? serve::ApplyMode::kPartitioned : serve::ApplyMode::kSequential;
  options.monitors = &monitors;
  serve::ShardedEventLoop loop(allocator, options, pool);
  (void)loop.run(trace);
  monitors.finish();

  ServeRun out;
  out.loads = allocator.loads();
  out.gapSketchJson = monitors.gapSketch().toJson().dump();
  for (std::size_t i = 0; i < monitors.log().size(); ++i) {
    out.anomalies.push_back(anomalyToJson(monitors.log().at(i)).dump());
  }
  out.errors = monitors.log().errors();
  out.warnings = monitors.log().warnings();
  out.checks = monitors.checks();
  return out;
}

TEST(ServeConformance, HealthyRunIsAnomalyFree) {
  const ServeRun run = runServeWithMonitors(8, 2, /*invert=*/false);
  EXPECT_GT(run.checks, 0);
  EXPECT_EQ(run.errors, 0);
  EXPECT_EQ(run.warnings, 0);
  EXPECT_TRUE(run.anomalies.empty());
}

TEST(ServeConformance, InvertedAcceptanceTriggersGapEnvelopeErrors) {
  // The broken dynamic: accepting exactly the moves strict RLS rejects
  // drives load onto the fullest bins; the gap envelope must catch it.
  const ServeRun run = runServeWithMonitors(8, 2, /*invert=*/true);
  EXPECT_GT(run.errors, 0);
  ASSERT_FALSE(run.anomalies.empty());
  EXPECT_NE(run.anomalies.front().find("gap_envelope"), std::string::npos);
}

TEST(ServeConformance, SnapshotsAreByteIdenticalAcrossShardsAndThreads) {
  const ServeRun ref = runServeWithMonitors(1, 1, /*invert=*/false);
  for (const int shards : {1, 4, 8}) {
    for (const int threads : {1, 2, 4}) {
      const ServeRun run = runServeWithMonitors(shards, threads, false);
      EXPECT_EQ(run.loads, ref.loads) << "shards=" << shards << " threads=" << threads;
      EXPECT_EQ(run.checks, ref.checks);
      EXPECT_EQ(run.gapSketchJson, ref.gapSketchJson)
          << "shards=" << shards << " threads=" << threads;
      EXPECT_EQ(run.anomalies, ref.anomalies)
          << "shards=" << shards << " threads=" << threads;
    }
  }
  // The broken dynamic's anomaly sequence is deterministic too.
  const ServeRun brokenRef = runServeWithMonitors(1, 1, true);
  const ServeRun broken = runServeWithMonitors(8, 4, true);
  EXPECT_EQ(broken.anomalies, brokenRef.anomalies);
  ASSERT_FALSE(brokenRef.anomalies.empty());
}

// --------------------------------------------- process-probe integration

TEST(ProcessConformance, RlsConvergesInsideTheEnvelope) {
  process::registerBuiltinProcesses();
  const process::ProcessRegistry& registry = process::ProcessRegistry::global();
  constexpr std::int64_t kN = 64;
  constexpr std::int64_t kM = 512;
  const config::Configuration start = config::allInOne(kN, kM);
  const auto proc = registry.make("rls", start, 4242);

  MonitorSet monitors;
  installProcessMonitors(monitors, kN, kM);
  monitors.beginRun();

  MetricsRegistry metrics;
  ProcessProbe::Options probeOptions;
  probeOptions.prefix = "process.rls";
  probeOptions.monitors = &monitors;
  ProcessProbe probe(&metrics, nullptr, probeOptions);

  process::RunLimits limits;
  limits.maxEvents = 10'000'000;
  const auto result = process::run(*proc, process::Target::perfect(), limits, &probe);
  probe.finish(*proc);
  monitors.finish();

  EXPECT_TRUE(result.reachedTarget);
  EXPECT_GT(monitors.checks(), 0);
  EXPECT_EQ(monitors.log().errors(), 0);
  EXPECT_EQ(monitors.log().warnings(), 0);
}

}  // namespace
}  // namespace rlslb::obs
