// Tests for src/config: Configuration, exact metrics, and every initial
// configuration generator used by the experiments.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <string>
#include <tuple>

#include "config/configuration.hpp"
#include "config/generators.hpp"
#include "config/metrics.hpp"
#include "stats/running_stat.hpp"

namespace rlslb::config {
namespace {

TEST(Configuration, BasicAccessors) {
  Configuration c({3, 0, 1});
  EXPECT_EQ(c.numBins(), 3);
  EXPECT_EQ(c.numBalls(), 4);
  EXPECT_DOUBLE_EQ(c.averageLoad(), 4.0 / 3.0);
  EXPECT_EQ(c.floorAverage(), 1);
  EXPECT_EQ(c.ceilAverage(), 2);
  EXPECT_EQ(c.load(0), 3);
}

TEST(Configuration, MoveBall) {
  Configuration c({2, 0});
  c.moveBall(0, 1);
  EXPECT_EQ(c.load(0), 1);
  EXPECT_EQ(c.load(1), 1);
  EXPECT_EQ(c.numBalls(), 2);
}

TEST(Configuration, ToMultisetMatches) {
  Configuration c({4, 4, 1});
  const auto ms = c.toMultiset();
  EXPECT_EQ(ms.countAt(4), 2);
  EXPECT_EQ(ms.countAt(1), 1);
}

TEST(Metrics, PerfectBalancePredicateExactDivisible) {
  // n | m: perfect means all loads equal.
  EXPECT_TRUE(isPerfectlyBalanced(2, 2, 4, 8));
  EXPECT_FALSE(isPerfectlyBalanced(1, 3, 4, 8));
  EXPECT_FALSE(isPerfectlyBalanced(1, 2, 4, 8));  // some bin at 1: disc = 1
}

TEST(Metrics, PerfectBalancePredicateNonDivisible) {
  // m = 9, n = 4: loads must be {2,2,2,3} -> min 2 max 3.
  EXPECT_TRUE(isPerfectlyBalanced(2, 3, 4, 9));
  EXPECT_FALSE(isPerfectlyBalanced(1, 3, 4, 9));
  EXPECT_FALSE(isPerfectlyBalanced(2, 4, 4, 9));
}

TEST(Metrics, XBalancedIntExactness) {
  // avg = 2.25; maxLoad 4 -> deviation 1.75 <= 2, minLoad 1 -> 1.25 <= 2.
  EXPECT_TRUE(isXBalancedInt(1, 4, 4, 9, 2));
  EXPECT_FALSE(isXBalancedInt(1, 5, 4, 9, 2));  // 5 - 2.25 = 2.75 > 2
  EXPECT_FALSE(isXBalancedInt(0, 4, 4, 9, 2));  // 2.25 - 0 = 2.25 > 2
}

TEST(Metrics, DiscrepancyValue) {
  EXPECT_DOUBLE_EQ(discrepancy(0, 8, 4, 8), 6.0);   // avg 2
  EXPECT_DOUBLE_EQ(discrepancy(2, 2, 4, 8), 0.0);
  EXPECT_NEAR(discrepancy(2, 3, 4, 9), 0.75, 1e-12);
}

TEST(Metrics, ComputeMetricsFullSweep) {
  Configuration c({5, 2, 2, 1, 0});  // m=10, n=5, avg=2
  const Metrics mm = computeMetrics(c);
  EXPECT_EQ(mm.minLoad, 0);
  EXPECT_EQ(mm.maxLoad, 5);
  EXPECT_DOUBLE_EQ(mm.discrepancy, 3.0);
  EXPECT_EQ(mm.overloadedBalls, 3);  // bin with 5: 5-2=3
  EXPECT_EQ(mm.overloadedBins, 1);
  EXPECT_EQ(mm.underloadedBins, 2);  // loads 1 and 0
  EXPECT_EQ(mm.binsAtFloor, 2);
  EXPECT_FALSE(mm.perfectlyBalanced);
}

TEST(Metrics, MultisetAgreesWithConfiguration) {
  Configuration c({7, 3, 3, 0, 2});
  const Metrics a = computeMetrics(c);
  const Metrics b = computeMetrics(c.toMultiset());
  EXPECT_EQ(a.minLoad, b.minLoad);
  EXPECT_EQ(a.maxLoad, b.maxLoad);
  EXPECT_EQ(a.overloadedBalls, b.overloadedBalls);
  EXPECT_EQ(a.overloadedBins, b.overloadedBins);
  EXPECT_EQ(a.underloadedBins, b.underloadedBins);
  EXPECT_EQ(a.binsAtFloor, b.binsAtFloor);
  EXPECT_DOUBLE_EQ(a.discrepancy, b.discrepancy);
}

TEST(Metrics, OverloadedBallsEqualsHoles) {
  // For n | m the number of overloaded balls equals the number of holes
  // (paper, Section 6.2).
  Configuration c({4, 3, 1, 0});  // m=8, n=4, avg=2
  const Metrics mm = computeMetrics(c);
  std::int64_t holes = 0;
  for (std::int64_t v : c.loads()) holes += std::max<std::int64_t>(0, 2 - v);
  EXPECT_EQ(mm.overloadedBalls, holes);
}

TEST(Metrics, Lemma16PotentialRange) {
  // Potential 3A - k - h is between 0 and 3n and zero at perfect balance.
  Configuration balancedC({2, 2, 2, 2});
  EXPECT_EQ(lemma16Potential(balancedC.toMultiset()), 0);
  Configuration c({4, 2, 1, 1});
  const std::int64_t pot = lemma16Potential(c.toMultiset());
  EXPECT_GE(pot, 0);
  EXPECT_LE(pot, 3 * 4);
}

TEST(Generators, AllInOne) {
  const auto c = allInOne(5, 12);
  EXPECT_EQ(c.load(0), 12);
  for (std::size_t i = 1; i < 5; ++i) EXPECT_EQ(c.load(i), 0);
  EXPECT_EQ(c.numBalls(), 12);
}

TEST(Generators, BalancedDivisible) {
  const auto c = balanced(4, 8);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(c.load(i), 2);
  EXPECT_TRUE(computeMetrics(c).perfectlyBalanced);
}

TEST(Generators, BalancedNonDivisible) {
  const auto c = balanced(4, 10);
  EXPECT_EQ(c.numBalls(), 10);
  const Metrics mm = computeMetrics(c);
  EXPECT_EQ(mm.maxLoad, 3);
  EXPECT_EQ(mm.minLoad, 2);
  EXPECT_TRUE(mm.perfectlyBalanced);
}

TEST(Generators, TwoPoint) {
  const auto c = twoPoint(4, 8);
  auto loads = c.loads();
  std::sort(loads.begin(), loads.end());
  EXPECT_EQ(loads, (std::vector<std::int64_t>{1, 2, 2, 3}));
}

TEST(Generators, HalfHalf) {
  const auto c = halfHalf(6, 18, 2);  // avg 3, x 2
  const Metrics mm = computeMetrics(c);
  EXPECT_EQ(mm.maxLoad, 5);
  EXPECT_EQ(mm.minLoad, 1);
  EXPECT_EQ(c.numBalls(), 18);
  EXPECT_EQ(c.toMultiset().countAt(5), 3);
  EXPECT_EQ(c.toMultiset().countAt(1), 3);
}

TEST(Generators, HalfHalfZeroX) {
  const auto c = halfHalf(6, 18, 0);
  EXPECT_TRUE(computeMetrics(c).perfectlyBalanced);
}

TEST(Generators, PlusMinusOne) {
  const auto c = plusMinusOne(10, 50, 3);  // avg 5
  const auto ms = c.toMultiset();
  EXPECT_EQ(ms.countAt(6), 3);
  EXPECT_EQ(ms.countAt(4), 3);
  EXPECT_EQ(ms.countAt(5), 4);
  EXPECT_EQ(c.numBalls(), 50);
}

TEST(Generators, PlusMinusOneZero) {
  const auto c = plusMinusOne(10, 50, 0);
  EXPECT_TRUE(computeMetrics(c).perfectlyBalanced);
}

TEST(Generators, UniformRandomConservesMass) {
  rng::Xoshiro256pp eng(5);
  const auto c = uniformRandom(16, 1 << 14, eng);
  EXPECT_EQ(c.numBalls(), 1 << 14);
  EXPECT_EQ(c.numBins(), 16);
  // Mean load 1024; all bins should be within a generous window.
  for (std::int64_t v : c.loads()) EXPECT_NEAR(static_cast<double>(v), 1024.0, 300.0);
}

TEST(Generators, UniformRandomMarginalMoments) {
  rng::Xoshiro256pp eng(6);
  stats::RunningStat rs;
  for (int rep = 0; rep < 20000; ++rep) {
    const auto c = uniformRandom(8, 64, eng);
    rs.add(static_cast<double>(c.load(3)));
  }
  EXPECT_NEAR(rs.mean(), 8.0, 0.1);                  // Binomial(64, 1/8)
  EXPECT_NEAR(rs.variance(), 64.0 * 0.125 * 0.875, 0.2);
}

TEST(Generators, GreedyDReducesDiscrepancy) {
  rng::Xoshiro256pp eng1(7);
  rng::Xoshiro256pp eng2(7);
  const auto one = uniformRandom(64, 64 * 64, eng1);
  const auto two = greedyD(64, 64 * 64, 2, eng2);
  // Power of two choices: discrepancy should typically be much smaller.
  EXPECT_LT(computeMetrics(two).discrepancy, computeMetrics(one).discrepancy + 1.0);
  EXPECT_EQ(two.numBalls(), 64 * 64);
}

TEST(Generators, GreedyDOneEqualsOneChoiceMoments) {
  rng::Xoshiro256pp eng(8);
  const auto c = greedyD(8, 800, 1, eng);
  EXPECT_EQ(c.numBalls(), 800);
}

TEST(Generators, PowerLawMassAndMonotonicity) {
  const auto c = powerLaw(10, 1000, 1.5);
  EXPECT_EQ(c.numBalls(), 1000);
  // Bin 0 gets the largest share.
  for (std::size_t i = 1; i < 10; ++i) EXPECT_GE(c.load(0), c.load(i) - 1);
}

TEST(Generators, PowerLawAlphaZeroIsFlat) {
  const auto c = powerLaw(10, 1000, 0.0);
  const Metrics mm = computeMetrics(c);
  EXPECT_LE(mm.maxLoad - mm.minLoad, 1);
}

TEST(Generators, StaircaseConservesMass) {
  const auto c = staircase(16, 4096);
  EXPECT_EQ(c.numBalls(), 4096);
  EXPECT_EQ(c.numBins(), 16);
}

TEST(Generators, StaircaseManyLevels) {
  const auto c = staircase(64, 1 << 16);
  EXPECT_GE(c.toMultiset().numLevels(), 16u);
}

// Every generator must conserve mass and produce non-negative loads across
// a size sweep (the contract the engines rely on).
struct GenCase {
  const char* name;
  std::function<Configuration(std::int64_t n, std::int64_t m)> make;
};

class GeneratorContract : public ::testing::TestWithParam<std::tuple<int, int>> {
 public:
  static std::vector<GenCase> cases() {
    return {
        {"allInOne", [](std::int64_t n, std::int64_t m) { return allInOne(n, m); }},
        {"balanced", [](std::int64_t n, std::int64_t m) { return balanced(n, m); }},
        {"staircase", [](std::int64_t n, std::int64_t m) { return staircase(n, m); }},
        {"powerLaw15", [](std::int64_t n, std::int64_t m) { return powerLaw(n, m, 1.5); }},
        {"uniformRandom",
         [](std::int64_t n, std::int64_t m) {
           rng::Xoshiro256pp eng(static_cast<std::uint64_t>(n * 31 + m));
           return uniformRandom(n, m, eng);
         }},
        {"greedy3",
         [](std::int64_t n, std::int64_t m) {
           rng::Xoshiro256pp eng(static_cast<std::uint64_t>(n * 37 + m));
           return greedyD(n, m, 3, eng);
         }},
    };
  }
  static std::vector<std::pair<std::int64_t, std::int64_t>> sizes() {
    return {{1, 0}, {1, 17}, {2, 1}, {7, 7}, {16, 256}, {33, 1000}, {100, 5}};
  }
};

TEST_P(GeneratorContract, MassAndNonNegativity) {
  const auto [genIdx, sizeIdx] = GetParam();
  const GenCase gen = cases()[static_cast<std::size_t>(genIdx)];
  const auto [n, m] = sizes()[static_cast<std::size_t>(sizeIdx)];
  const Configuration c = gen.make(n, m);
  EXPECT_EQ(c.numBins(), n) << gen.name;
  EXPECT_EQ(c.numBalls(), m) << gen.name;
  for (std::int64_t v : c.loads()) EXPECT_GE(v, 0) << gen.name;
}

// Note: no structured bindings inside the macro argument -- the comma in
// `auto [g, s]` would split the preprocessor arguments.
INSTANTIATE_TEST_SUITE_P(
    AllGenerators, GeneratorContract,
    ::testing::Combine(::testing::Range(0, 6), ::testing::Range(0, 7)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& paramInfo) {
      const int g = std::get<0>(paramInfo.param);
      const int s = std::get<1>(paramInfo.param);
      const auto sz = GeneratorContract::sizes()[static_cast<std::size_t>(s)];
      return std::string(GeneratorContract::cases()[static_cast<std::size_t>(g)].name) + "_n" +
             std::to_string(sz.first) + "_m" + std::to_string(sz.second);
    });

}  // namespace
}  // namespace rlslb::config
