// Tests for the sim run-loop plumbing that the engine-centric suites do
// not cover: probe call discipline, recorder decimation, limit edge cases,
// and target semantics.
#include <gtest/gtest.h>

#include <limits>

#include "config/generators.hpp"
#include "sim/engine.hpp"
#include "sim/naive_engine.hpp"
#include "sim/probes.hpp"

namespace rlslb::sim {
namespace {

class CountingProbe final : public Probe {
 public:
  void onEvent(const Engine&) override { ++calls_; }
  [[nodiscard]] std::int64_t calls() const { return calls_; }

 private:
  std::int64_t calls_ = 0;
};

TEST(RunUntil, ProbeSeesInitialStateAndEveryEvent) {
  NaiveEngine engine(config::allInOne(4, 8), 1);
  CountingProbe probe;
  RunLimits limits;
  limits.maxEvents = 25;
  runUntil(engine, Target::perfect(), limits, &probe);
  // One initial call plus one per executed step.
  EXPECT_EQ(probe.calls(), engine.activations() + 1);
}

TEST(RunUntil, AlreadyAtTargetTakesNoSteps) {
  NaiveEngine engine(config::balanced(4, 8), 2);
  CountingProbe probe;
  const auto r = runUntil(engine, Target::perfect(), {}, &probe);
  EXPECT_TRUE(r.reachedTarget);
  EXPECT_EQ(r.activations, 0);
  EXPECT_EQ(probe.calls(), 1);  // initial observation only
}

TEST(RunUntil, ZeroEventBudget) {
  NaiveEngine engine(config::allInOne(4, 8), 3);
  RunLimits limits;
  limits.maxEvents = 0;
  const auto r = runUntil(engine, Target::perfect(), limits);
  EXPECT_FALSE(r.reachedTarget);
  EXPECT_EQ(r.activations, 0);
}

TEST(RunUntil, TargetCheckedAfterEachStep) {
  // With a generous budget the run must stop exactly when the state first
  // satisfies the target, not later.
  NaiveEngine engine(config::allInOne(6, 12), 4);
  const auto r = runUntil(engine, Target::xBalanced(4), {});
  EXPECT_TRUE(r.reachedTarget);
  EXPECT_TRUE(engine.state().xBalanced(4));
}

TEST(RunUntil, ZeroBallsAbsorbsImmediately) {
  NaiveEngine engine(config::Configuration({0, 0, 0}), 5);
  const auto r = runUntil(engine, Target::perfect(), {});
  EXPECT_TRUE(r.reachedTarget);  // disc = 0
  EXPECT_DOUBLE_EQ(r.time, 0.0);
}

TEST(Target, PerfectVersusXBalancedZero) {
  // xBalanced(0) demands disc <= 0, strictly stronger than perfect (< 1)
  // when n does not divide m.
  NaiveEngine engine(config::balanced(4, 9), 6);
  EXPECT_TRUE(Target::perfect().reached(engine.state()));
  EXPECT_FALSE(Target::xBalanced(0).reached(engine.state()));
}

TEST(TrajectoryRecorder, DecimatesToGrid) {
  NaiveEngine engine(config::allInOne(8, 64), 7);
  TrajectoryRecorder recorder(2.0);
  runUntil(engine, Target::perfect(), {}, &recorder);
  const auto& pts = recorder.points();
  ASSERT_GE(pts.size(), 2u);
  // Consecutive recorded points are at least one grid step apart (except
  // possibly the final forced sample).
  for (std::size_t i = 2; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].time - pts[i - 2].time, 2.0 - 1e-9);
  }
}

TEST(TrajectoryRecorder, FirstPointIsInitialState) {
  NaiveEngine engine(config::allInOne(8, 64), 8);
  TrajectoryRecorder recorder(1.0);
  recorder.onEvent(engine);
  ASSERT_EQ(recorder.points().size(), 1u);
  EXPECT_DOUBLE_EQ(recorder.points()[0].time, 0.0);
  EXPECT_EQ(recorder.points()[0].maxLoad, 64);
}

TEST(PhaseTracker, UnreachedThresholdsStayInfinite) {
  NaiveEngine engine(config::allInOne(8, 64), 9);
  PhaseTracker tracker({16, 1});
  RunLimits limits;
  limits.maxEvents = 1;  // no time to reach anything
  runUntil(engine, Target::perfect(), limits, &tracker);
  EXPECT_EQ(tracker.hitTime(1), std::numeric_limits<double>::infinity());
}

TEST(PhaseTracker, MultipleThresholdsHitInOneEvent) {
  // A single move can satisfy several thresholds at once; all must record.
  NaiveEngine engine(config::Configuration({4, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 0}), 10);
  PhaseTracker tracker({8, 4, 1});
  runUntil(engine, Target::perfect(), {}, &tracker);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_LT(tracker.hitTime(i), std::numeric_limits<double>::infinity());
  }
  EXPECT_LE(tracker.hitTime(0), tracker.hitTime(2));
}

TEST(BalanceState, DiscrepancyMatchesPredicates) {
  NaiveEngine engine(config::Configuration({5, 3, 1}), 11);  // avg 3
  const auto& s = engine.state();
  EXPECT_DOUBLE_EQ(s.discrepancy(), 2.0);
  EXPECT_TRUE(s.xBalanced(2));
  EXPECT_FALSE(s.xBalanced(1));
  EXPECT_FALSE(s.perfectlyBalanced());
}

}  // namespace
}  // namespace rlslb::sim
