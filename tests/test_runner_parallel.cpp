// Tests for the parallel execution subsystem (runner/thread_pool.hpp and the
// pooled replication harness): output must be bit-identical for any thread
// count, exceptions must propagate exactly once without deadlock, and the
// degenerate shapes (no work, fewer replications than threads) must return
// well-formed results. This suite is the one the CI sanitizer matrix runs
// under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "config/generators.hpp"
#include "core/rls.hpp"
#include "runner/replication.hpp"
#include "runner/thread_pool.hpp"
#include "sim/ensemble.hpp"
#include "sim/probes.hpp"

namespace rlslb::runner {
namespace {

/// A replication body with real floating-point content: the balancing time
/// of a jump-engine run, so any cross-thread contamination of rng streams
/// or result slots shows up as a bit difference.
double simulateOne(std::uint64_t seed) {
  core::SimOptions o;
  o.engine = core::SimOptions::EngineKind::Jump;
  o.seed = seed;
  return core::balancingTime(config::allInOne(16, 96), o);
}

bool bitIdentical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

#if defined(__SANITIZE_THREAD__)
#define RLSLB_TEST_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RLSLB_TEST_UNDER_TSAN 1
#endif
#endif

#if !defined(RLSLB_TEST_UNDER_TSAN)
TEST(ThreadPoolDeathTest, NestedParallelForAbortsWithDiagnostic) {
  // The documented non-nestable contract: nesting on a pool with workers
  // would corrupt the single job slot and deadlock. RLSLB_ASSERT is active
  // in every build type, so this death test runs in Release too — the
  // guard used to live inside #ifndef NDEBUG, which left Release builds
  // with the silent deadlock this test exists to rule out. (Skipped under
  // TSan: fork-based death tests and the sanitizer runtime do not mix.)
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ThreadPool pool(3);
  EXPECT_DEATH(
      pool.parallelFor(4,
                       [&](std::int64_t) {
                         pool.parallelFor(2, [](std::int64_t) {});
                       }),
      "not reentrant");
}

TEST(ThreadPoolDeathTest, ConcurrentDispatchFromASecondThreadAborts) {
  // The other half of the single-job-slot contract: two threads
  // dispatching on the same pool concurrently. The body parks every
  // worker on a latch until the second dispatch has hit the guard, so
  // exactly one of the two calls must die — which one wins the exchange
  // is a race, so the whole scenario runs inside EXPECT_DEATH.
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool pool(3);
        std::atomic<bool> release{false};
        std::thread second;
        pool.parallelFor(4, [&](std::int64_t i) {
          if (i == 0) {
            second = std::thread([&] {
              pool.parallelFor(2, [](std::int64_t) {});
            });
            second.join();  // unreachable: the dispatch above aborts
            release.store(true);
          }
          while (!release.load()) std::this_thread::yield();
        });
      },
      "not reentrant");
}
#endif

TEST(ThreadPool, SerialPoolNestingRunsInline) {
  // A 1-thread pool has no job slot (parallelFor runs inline), so nesting
  // is harmless there and stays permitted.
  ThreadPool pool(1);
  std::int64_t total = 0;
  pool.parallelFor(3, [&](std::int64_t) {
    pool.parallelFor(2, [&](std::int64_t) { ++total; });
  });
  EXPECT_EQ(total, 6);
}

TEST(ThreadPool, SizeAccounting) {
  EXPECT_GE(ThreadPool(0).size(), 1);  // hardware concurrency, caller included
  EXPECT_EQ(ThreadPool(1).size(), 1);
  EXPECT_EQ(ThreadPool(5).size(), 5);
  EXPECT_EQ(ThreadPool::resolveThreadCount(7), 7);
  EXPECT_GE(ThreadPool::resolveThreadCount(0), 1);
  EXPECT_GE(ThreadPool::resolveThreadCount(-3), 1);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 7}) {
    ThreadPool pool(threads);
    const std::int64_t count = 10007;  // prime, so chunks never tile evenly
    std::vector<std::atomic<int>> hits(count);
    pool.parallelFor(count, [&](std::int64_t i) { ++hits[static_cast<std::size_t>(i)]; });
    for (std::int64_t i = 0; i < count; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(4);
  for (int job = 0; job < 50; ++job) {
    std::atomic<std::int64_t> sum{0};
    pool.parallelFor(100, [&](std::int64_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 4950);
  }
}

TEST(ThreadPool, ZeroCountIsANoop) {
  ThreadPool pool(3);
  pool.parallelFor(0, [](std::int64_t) { FAIL() << "body must not run"; });
}

TEST(ThreadPool, FirstExceptionPropagatesExactlyOnce) {
  ThreadPool pool(8);
  // Every body throws; the pool must surface exactly one exception on the
  // calling thread and quiesce without deadlock.
  int caught = 0;
  try {
    pool.parallelFor(64, [](std::int64_t i) {
      throw std::runtime_error("boom " + std::to_string(i));
    });
  } catch (const std::runtime_error& e) {
    ++caught;
    EXPECT_EQ(std::string(e.what()).rfind("boom ", 0), 0u);
  }
  EXPECT_EQ(caught, 1);

  // The pool stays usable after a throw.
  std::atomic<std::int64_t> sum{0};
  pool.parallelFor(10, [&](std::int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, ExceptionCancelsRemainingWork) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> executed{0};
  EXPECT_THROW(pool.parallelFor(1 << 20,
                                [&](std::int64_t i) {
                                  ++executed;
                                  if (i == 0) throw std::runtime_error("stop");
                                }),
               std::runtime_error);
  EXPECT_LT(executed.load(), (1 << 20) / 2);  // unclaimed chunks were dropped
}

TEST(ThreadPool, PreCancelledTokenRunsNothing) {
  ThreadPool pool(4);
  CancellationToken token;
  token.cancel();
  std::atomic<std::int64_t> executed{0};
  pool.parallelFor(1000, [&](std::int64_t) { ++executed; }, &token);
  EXPECT_EQ(executed.load(), 0);
  token.reset();
  pool.parallelFor(10, [&](std::int64_t) { ++executed; }, &token);
  EXPECT_EQ(executed.load(), 10);
}

TEST(ThreadPool, CancellationFromBodyStopsEarly) {
  ThreadPool pool(4);
  CancellationToken token;
  std::atomic<std::int64_t> executed{0};
  pool.parallelFor(
      1 << 20,
      [&](std::int64_t i) {
        ++executed;
        if (i == 0) token.cancel();
      },
      &token);
  EXPECT_TRUE(token.cancelled());
  EXPECT_GE(executed.load(), 1);
  EXPECT_LT(executed.load(), (1 << 20) / 2);
}

TEST(RunnerParallel, BitIdenticalForAnyThreadCount) {
  const auto body = [](std::int64_t, std::uint64_t seed) { return simulateOne(seed); };
  const std::int64_t reps = 64;
  const std::uint64_t baseSeed = 20170529;
  const auto reference = runReplicationsScalar(reps, baseSeed, body, 1);
  ASSERT_EQ(reference.size(), static_cast<std::size_t>(reps));
  const int hardware = ThreadPool::resolveThreadCount(0);
  for (const int threads : {2, 7, hardware}) {
    const auto parallel = runReplicationsScalar(reps, baseSeed, body, threads);
    EXPECT_TRUE(bitIdentical(reference, parallel)) << "threads = " << threads;
  }
}

TEST(RunnerParallel, MultiMetricColumnsBitIdentical) {
  const auto body = [](std::int64_t rep, std::uint64_t seed) {
    const double t = simulateOne(seed);
    return std::vector<double>{t, static_cast<double>(rep), t * t};
  };
  const auto reference = runReplications(33, 7, 3, body, 1);
  const auto parallel = runReplications(33, 7, 3, body, 7);
  ASSERT_EQ(reference.samples.size(), 3u);
  for (std::size_t metric = 0; metric < 3; ++metric) {
    EXPECT_TRUE(bitIdentical(reference.samples[metric], parallel.samples[metric]))
        << "metric " << metric;
  }
}

TEST(RunnerParallel, SharedPoolMatchesPerCallPool) {
  ThreadPool pool(5);
  const auto body = [](std::int64_t, std::uint64_t seed) { return simulateOne(seed); };
  const auto viaShared = runReplicationsScalar(20, 3, body, pool);
  const auto viaOwned = runReplicationsScalar(20, 3, body, 4);
  EXPECT_TRUE(bitIdentical(viaShared, viaOwned));
  // Reuse the same pool for a second, differently-seeded batch.
  const auto second = runReplicationsScalar(20, 4, body, pool);
  EXPECT_FALSE(bitIdentical(viaShared, second));
}

TEST(RunnerParallel, ZeroRepsIsWellFormed) {
  const auto result = runReplications(
      0, 1, 2, [](std::int64_t, std::uint64_t) { return std::vector<double>{0.0, 0.0}; }, 4);
  ASSERT_EQ(result.samples.size(), 2u);
  EXPECT_TRUE(result.samples[0].empty());
  EXPECT_TRUE(result.samples[1].empty());

  const auto scalar = runReplicationsScalar(
      0, 1, [](std::int64_t, std::uint64_t) { return 0.0; }, 4);
  EXPECT_TRUE(scalar.empty());
}

TEST(RunnerParallel, FewerRepsThanThreads) {
  const auto body = [](std::int64_t, std::uint64_t seed) { return simulateOne(seed); };
  const auto reference = runReplicationsScalar(3, 11, body, 1);
  const auto parallel = runReplicationsScalar(3, 11, body, 16);
  ASSERT_EQ(parallel.size(), 3u);
  EXPECT_TRUE(bitIdentical(reference, parallel));
}

TEST(RunnerParallel, ThrowingReplicationPropagatesOnce) {
  int caught = 0;
  try {
    runReplicationsScalar(
        64, 5,
        [](std::int64_t rep, std::uint64_t) -> double {
          if (rep % 3 == 1) throw std::runtime_error("replication failed");
          return 1.0;
        },
        8);
  } catch (const std::runtime_error& e) {
    ++caught;
    EXPECT_STREQ(e.what(), "replication failed");
  }
  EXPECT_EQ(caught, 1);
}

TEST(EnsembleParallel, MeansBitIdenticalForAnyThreadCount) {
  const auto body = [](std::int64_t, std::uint64_t seed) {
    sim::TrajectoryRecorder recorder(0.25);
    core::SimOptions o;
    o.seed = seed;
    core::balance(config::allInOne(32, 256), o, sim::Target::perfect(), {}, &recorder);
    return recorder.points();
  };
  ThreadPool serial(1);
  ThreadPool wide(6);
  const auto a = sim::accumulateEnsemble(0.5, 8.0, 24, 99, body, serial);
  const auto b = sim::accumulateEnsemble(0.5, 8.0, 24, 99, body, wide);
  ASSERT_EQ(a.gridSize(), b.gridSize());
  EXPECT_EQ(a.runs(), 24);
  EXPECT_EQ(b.runs(), 24);
  for (std::size_t g = 0; g < a.gridSize(); ++g) {
    // memcmp-strength equality, metric by metric.
    const double da = a.meanDiscrepancy(g);
    const double db = b.meanDiscrepancy(g);
    EXPECT_EQ(std::memcmp(&da, &db, sizeof(double)), 0) << "grid " << g;
    EXPECT_DOUBLE_EQ(a.meanLogDiscrepancy(g), b.meanLogDiscrepancy(g));
    EXPECT_DOUBLE_EQ(a.meanOverloaded(g), b.meanOverloaded(g));
  }
}

TEST(EnsembleParallel, MergeMatchesSequentialFold) {
  const auto run = [](std::uint64_t seed) {
    sim::TrajectoryRecorder recorder(0.25);
    core::SimOptions o;
    o.seed = seed;
    core::balance(config::allInOne(16, 64), o, sim::Target::perfect(), {}, &recorder);
    return recorder.points();
  };
  sim::EnsembleAccumulator whole(0.5, 4.0);
  sim::EnsembleAccumulator left(0.5, 4.0);
  sim::EnsembleAccumulator right(0.5, 4.0);
  for (int rep = 0; rep < 8; ++rep) {
    const auto points = run(1000 + static_cast<std::uint64_t>(rep));
    whole.addRun(points);
    (rep < 4 ? left : right).addRun(points);
  }
  left.merge(right);
  EXPECT_EQ(left.runs(), whole.runs());
  for (std::size_t g = 0; g < whole.gridSize(); ++g) {
    EXPECT_DOUBLE_EQ(left.meanDiscrepancy(g), whole.meanDiscrepancy(g));
    EXPECT_DOUBLE_EQ(left.meanOverloaded(g), whole.meanOverloaded(g));
  }
}

}  // namespace
}  // namespace rlslb::runner
