// Streaming-sketch coverage (src/obs/sketch.hpp):
//   - bucket geometry: sketchBucketOf/Lo/Hi are a consistent partition of
//     the non-negative int64 range, exact below 2^(kSubBits+1);
//   - differential quantile accuracy against exact order statistics for
//     uniform, exponential, and adversarial-burst inputs (the documented
//     ~3.1% relative-error bound plus the midpoint half-width);
//   - the merge-determinism contract: per-shard slabs written from
//     parallel workers render byte-identical snapshots for every
//     (shards, threads) config;
//   - CUSUM: detects a genuine level shift quickly, stays quiet on the
//     baseline process (no false positives), and rearms cleanly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "obs/sketch.hpp"
#include "rng/xoshiro256pp.hpp"
#include "runner/thread_pool.hpp"

namespace rlslb::obs {
namespace {

// ------------------------------------------------------------- geometry

TEST(SketchBuckets, ExactRegionAndPartitionConsistency) {
  // Values below the sub-bucket region map to themselves.
  for (std::int64_t v = 0; v < (1 << (kSketchSubBits + 1)); ++v) {
    EXPECT_EQ(sketchBucketOf(v), static_cast<int>(v));
    EXPECT_EQ(sketchBucketLo(static_cast<int>(v)), v);
  }
  // Every value lands inside its bucket's [lo, hi] range, and bucket
  // edges tile without gaps.
  for (std::int64_t v : {std::int64_t{64}, std::int64_t{65}, std::int64_t{100},
                         std::int64_t{1023}, std::int64_t{1024}, std::int64_t{1025},
                         std::int64_t{1} << 40, (std::int64_t{1} << 62) + 12345,
                         INT64_MAX}) {
    const int b = sketchBucketOf(v);
    EXPECT_GE(v, sketchBucketLo(b)) << "v=" << v;
    EXPECT_LE(v, sketchBucketHi(b)) << "v=" << v;
  }
  for (int b = 1; b + 1 < kSketchSlots; ++b) {
    EXPECT_EQ(sketchBucketHi(b) + 1, sketchBucketLo(b + 1)) << "bucket " << b;
    EXPECT_LE(sketchBucketLo(b), sketchBucketHi(b)) << "bucket " << b;
  }
  // Negatives collapse to bucket 0.
  EXPECT_EQ(sketchBucketOf(-5), 0);
  EXPECT_EQ(sketchBucketOf(0), 0);
}

TEST(SketchBuckets, RelativeWidthIsBounded) {
  // Above the exact region, (hi - lo) / lo <= 2^-kSubBits (~3.1%).
  for (int b = (1 << (kSketchSubBits + 1)); b + 1 < kSketchSlots; ++b) {
    const double lo = static_cast<double>(sketchBucketLo(b));
    const double hi = static_cast<double>(sketchBucketHi(b));
    EXPECT_LE((hi - lo) / lo, 1.0 / (1 << kSketchSubBits) + 1e-12) << "bucket " << b;
  }
}

// ------------------------------------------------- differential accuracy

/// Exact order statistic with the sketch's rank convention:
/// the ceil(q * N)-th smallest (1-based), clamped to [1, N].
std::int64_t exactQuantile(std::vector<std::int64_t> values, double q) {
  std::sort(values.begin(), values.end());
  const auto n = static_cast<double>(values.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  if (rank < 1) rank = 1;
  if (rank > values.size()) rank = values.size();
  return values[rank - 1];
}

void expectQuantilesClose(const std::vector<std::int64_t>& values, const char* label) {
  QuantileSketch sketch;
  for (const std::int64_t v : values) sketch.observe(v);
  ASSERT_EQ(sketch.count(), static_cast<std::int64_t>(values.size()));
  EXPECT_EQ(sketch.min(), *std::min_element(values.begin(), values.end()));
  EXPECT_EQ(sketch.max(), *std::max_element(values.begin(), values.end()));
  for (const double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    const std::int64_t exact = exactQuantile(values, q);
    const std::int64_t approx = sketch.quantile(q);
    // The exact answer lives in some bucket; the sketch returns that
    // bucket's midpoint, so the error is at most one bucket width:
    // <= max(1, exact / 2^kSubBits), doubled for slack at bucket edges.
    const double tol =
        std::max(1.0, static_cast<double>(exact) / (1 << kSketchSubBits)) * 2.0 + 1.0;
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact), tol)
        << label << " q=" << q;
  }
}

TEST(QuantileSketch_, UniformInputMatchesExactQuantiles) {
  rng::Xoshiro256pp eng(42);
  std::vector<std::int64_t> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    values.push_back(static_cast<std::int64_t>(eng.next() % 1'000'000));
  }
  expectQuantilesClose(values, "uniform");
}

TEST(QuantileSketch_, ExponentialInputMatchesExactQuantiles) {
  rng::Xoshiro256pp eng(7);
  std::vector<std::int64_t> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const double u =
        (static_cast<double>(eng.next() >> 11) + 0.5) * 0x1.0p-53;  // (0,1)
    values.push_back(static_cast<std::int64_t>(-50'000.0 * std::log(u)));
  }
  expectQuantilesClose(values, "exponential");
}

TEST(QuantileSketch_, AdversarialBurstsMatchExactQuantiles) {
  // Heavy duplicate mass at a handful of spikes with a huge dynamic
  // range -- the shape that breaks order-dependent sketches.
  std::vector<std::int64_t> values;
  for (int i = 0; i < 5000; ++i) values.push_back(3);
  for (int i = 0; i < 5000; ++i) values.push_back(1'000'000);
  for (int i = 0; i < 200; ++i) values.push_back(std::int64_t{1} << 50);
  for (int i = 0; i < 50; ++i) values.push_back(0);
  expectQuantilesClose(values, "bursts");
}

// ---------------------------------------------------- merge determinism

TEST(QuantileSketch_, MergedSnapshotIsByteIdenticalAcrossShardsAndThreads) {
  constexpr std::int64_t kOps = 8192;
  const auto valueAt = [](std::int64_t i) {
    return (i * 2654435761LL) % 1'000'003;  // fixed pseudo-random workload
  };

  QuantileSketch ref(1);
  for (std::int64_t i = 0; i < kOps; ++i) ref.observe(valueAt(i));
  const std::string refJson = ref.toJson().dump();

  for (const int shards : {1, 3, 8}) {
    for (const int threads : {1, 2, 4}) {
      QuantileSketch sketch(shards);
      runner::ThreadPool pool(threads);
      // Shard s owns ops i with i % shards == s (the partitioned-apply
      // ownership discipline: concurrent writers never share a slab).
      pool.parallelFor(shards, [&](std::int64_t s) {
        const int shard = static_cast<int>(s);
        for (std::int64_t i = shard; i < kOps; i += shards) {
          sketch.observeShard(shard, valueAt(i));
        }
      });
      EXPECT_EQ(sketch.count(), kOps);
      EXPECT_EQ(sketch.toJson().dump(), refJson)
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

TEST(QuantileSketch_, ClearKeepsLayoutAndEmptiesCounts) {
  QuantileSketch sketch(4);
  sketch.observeShard(2, 100);
  ASSERT_FALSE(sketch.empty());
  sketch.clear();
  EXPECT_TRUE(sketch.empty());
  EXPECT_EQ(sketch.shards(), 4);
  EXPECT_EQ(sketch.quantile(0.5), 0);
}

// -------------------------------------------------------------- drift

TEST(Ewma_, FirstSamplePrimesDirectly) {
  Ewma ewma(0.5);
  EXPECT_FALSE(ewma.primed());
  EXPECT_EQ(ewma.update(10.0), 10.0);
  EXPECT_TRUE(ewma.primed());
  EXPECT_EQ(ewma.update(20.0), 15.0);
}

/// Deterministic jittered baseline around `mean`: +/- jitter alternating
/// with a 4-phase pattern so the fitted sigma is positive.
double baselineSample(std::int64_t i, double mean, double jitter) {
  static constexpr double kPhase[4] = {1.0, -0.5, 0.25, -0.75};
  return mean + jitter * kPhase[i % 4];
}

TEST(CusumDetector_, DetectsALevelShiftQuickly) {
  CusumDetector detector;  // warmup 32, slack 0.5 sigma, threshold 8 sigma
  for (std::int64_t i = 0; i < 64; ++i) {
    ASSERT_FALSE(detector.update(baselineSample(i, 100.0, 4.0))) << "i=" << i;
  }
  ASSERT_TRUE(detector.baselineFrozen());
  EXPECT_NEAR(detector.baselineMean(), 100.0, 1.0);

  // Shift the level far above the fitted sigma: must trigger within a
  // handful of samples, and exactly once until rearmed.
  bool fired = false;
  std::int64_t firedAt = -1;
  for (std::int64_t i = 0; i < 32; ++i) {
    if (detector.update(baselineSample(i, 160.0, 4.0))) {
      ASSERT_FALSE(fired) << "update() must report the crossing only once";
      fired = true;
      firedAt = i;
    }
  }
  EXPECT_TRUE(fired);
  EXPECT_LE(firedAt, 16);
  EXPECT_TRUE(detector.triggered());

  // rearm() keeps the baseline and can detect a second shift.
  detector.rearm();
  EXPECT_FALSE(detector.triggered());
  bool refired = false;
  for (std::int64_t i = 0; i < 32; ++i) {
    refired = detector.update(baselineSample(i, 40.0, 4.0)) || refired;
  }
  EXPECT_TRUE(refired) << "downward shifts must trip the two-sided statistic";
}

TEST(CusumDetector_, NoFalsePositivesOnTheBaselineProcess) {
  CusumDetector detector;
  for (std::int64_t i = 0; i < 10'000; ++i) {
    EXPECT_FALSE(detector.update(baselineSample(i, 100.0, 4.0))) << "i=" << i;
  }
  EXPECT_FALSE(detector.triggered());
}

TEST(CusumDetector_, SigmaFloorTamesNearConstantBaselines) {
  // A baseline with zero variance would standardize any later change to
  // an infinite z; the minSigmaFraction floor keeps it finite but the
  // detector must still fire on a real (multi-percent) shift.
  CusumDetector detector;
  for (std::int64_t i = 0; i < 32; ++i) ASSERT_FALSE(detector.update(100.0));
  ASSERT_TRUE(detector.baselineFrozen());
  bool fired = false;
  for (std::int64_t i = 0; i < 64 && !fired; ++i) fired = detector.update(110.0);
  EXPECT_TRUE(fired);
}

}  // namespace
}  // namespace rlslb::obs
