// End-to-end integration tests: the workflows the examples and benches are
// built from, checked at reduced scale so the whole pipeline stays covered
// by ctest.
#include <gtest/gtest.h>

#include <cmath>

#include "config/generators.hpp"
#include "core/dml.hpp"
#include "core/rls.hpp"
#include "exact/rls_chain.hpp"
#include "runner/replication.hpp"
#include "sim/probes.hpp"
#include "stats/regression.hpp"
#include "stats/summary.hpp"
#include "util/table.hpp"

namespace rlslb {
namespace {

TEST(Integration, Theorem1ShapePilot) {
  // Miniature of bench_theorem1: mean balancing time from the all-in-one
  // worst case should grow like a*ln n + b*n^2/m with a decent fit.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (std::int64_t n : {16, 32, 64, 128}) {
    for (std::int64_t ratio : {2, 8}) {
      const std::int64_t m = n * ratio;
      const auto samples = runner::runReplicationsScalar(
          40, static_cast<std::uint64_t>(n * 1000 + ratio),
          [&](std::int64_t, std::uint64_t seed) {
            core::SimOptions o;
            o.engine = core::SimOptions::EngineKind::Hybrid;
            o.seed = seed;
            return core::balancingTime(config::allInOne(n, m), o);
          },
          1);
      const auto s = stats::summarize(samples);
      rows.push_back({std::log(static_cast<double>(n)),
                      static_cast<double>(n) * static_cast<double>(n) / static_cast<double>(m),
                      1.0});
      y.push_back(s.mean);
    }
  }
  const auto fit = stats::olsFit(rows, y);
  ASSERT_TRUE(fit.ok);
  EXPECT_GT(fit.r2, 0.9);
  EXPECT_GT(fit.coefficients[0], 0.0);  // ln n coefficient positive
}

TEST(Integration, LowerBoundLnN) {
  // E2: activations needed from all-in-one exceed m - ceil(avg), so time
  // exceeds roughly H_m - H_avg = Omega(ln n). Check at two sizes.
  for (std::int64_t n : {64, 256}) {
    const std::int64_t m = 4 * n;
    const auto samples = runner::runReplicationsScalar(
        30, static_cast<std::uint64_t>(n),
        [&](std::int64_t, std::uint64_t seed) {
          core::SimOptions o;
          o.seed = seed;
          return core::balancingTime(config::allInOne(n, m), o);
        },
        1);
    const auto s = stats::summarize(samples);
    // H_m - H_avg ~ ln(m/avg) = ln(n).
    EXPECT_GT(s.mean, 0.5 * std::log(static_cast<double>(n)));
  }
}

TEST(Integration, LowerBoundTwoPointScaling) {
  // E3: two-point E[T] = n/(avg+1); doubling n doubles the time.
  const std::int64_t avg = 4;
  std::vector<double> means;
  for (std::int64_t n : {32, 64}) {
    const auto samples = runner::runReplicationsScalar(
        600, static_cast<std::uint64_t>(n * 7),
        [&](std::int64_t, std::uint64_t seed) {
          core::SimOptions o;
          o.engine = core::SimOptions::EngineKind::Jump;
          o.seed = seed;
          return core::balancingTime(config::twoPoint(n, n * avg), o);
        },
        1);
    means.push_back(stats::summarize(samples).mean);
  }
  EXPECT_NEAR(means[1] / means[0], 2.0, 0.35);
  EXPECT_NEAR(means[0], 32.0 / 5.0, 1.0);
}

TEST(Integration, PhaseDecomposition) {
  // E5-E7 pilot: phases split a single trajectory; Phase-1 time is small
  // relative to the endgame for small avg.
  const std::int64_t n = 256;
  const std::int64_t m = 4 * n;
  const auto logN = static_cast<std::int64_t>(std::ceil(std::log(static_cast<double>(n))));
  sim::PhaseTracker tracker({8 * logN, 1});
  core::SimOptions o;
  o.engine = core::SimOptions::EngineKind::Hybrid;
  o.seed = 1234;
  const auto r = core::balance(config::allInOne(n, m), o, sim::Target::perfect(), {}, &tracker);
  ASSERT_TRUE(r.reachedTarget);
  EXPECT_LE(tracker.hitTime(0), tracker.hitTime(1));
  EXPECT_LE(tracker.hitTime(1), r.time);
}

TEST(Integration, WhpTailPilot) {
  // E4 pilot: the p99 of T stays within a moderate multiple of the mean
  // (w.h.p. bound has an extra ln n factor; this is a sanity ceiling).
  const auto samples = runner::runReplicationsScalar(
      300, 99,
      [](std::int64_t, std::uint64_t seed) {
        core::SimOptions o;
        o.engine = core::SimOptions::EngineKind::Jump;
        o.seed = seed;
        return core::balancingTime(config::allInOne(64, 256), o);
      },
      1);
  const auto s = stats::summarize(samples);
  EXPECT_LT(s.p99, 6.0 * s.mean);
}

TEST(Integration, DmlBenchPilot) {
  // E8 pilot: adversarial mean time dominates plain at matched seeds.
  const auto init = config::allInOne(8, 40);
  double plainSum = 0;
  double advSum = 0;
  for (int rep = 0; rep < 200; ++rep) {
    const auto seed = rng::streamSeed(5, rep);
    core::SimOptions o;
    o.engine = core::SimOptions::EngineKind::Naive;
    o.seed = seed;
    plainSum += core::balancingTime(init, o);
    core::ReverseLastMoveAdversary adv(0.25);
    advSum += core::runWithAdversary(init, seed, adv, sim::Target::perfect()).time;
  }
  EXPECT_GT(advSum, plainSum);
}

TEST(Integration, ExactChainAgreesAtScaleOfTests) {
  // Re-derive a row of the E3 table exactly.
  exact::RlsChain chain(6, 24);
  EXPECT_NEAR(chain.expectedTimeFrom(config::twoPoint(6, 24)), 6.0 / 5.0, 1e-9);
}

TEST(Integration, TablePipeline) {
  // The bench table pipeline: summarize -> Table -> CSV round trip.
  Table t({"n", "mean", "ci95"});
  const std::vector<double> sample = {1.0, 2.0, 3.0, 4.0};
  const auto s = stats::summarize(sample);
  t.row().cell(std::int64_t{8}).cell(s.mean).cell(s.ci95Half);
  EXPECT_EQ(t.numRows(), 1u);
  EXPECT_NE(t.toCsv().find("2.5"), std::string::npos);
}

}  // namespace
}  // namespace rlslb
