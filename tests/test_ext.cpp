// Tests for src/ext: the Section-7 extensions (bin speeds, weighted balls).
#include <gtest/gtest.h>

#include <numeric>

#include "config/generators.hpp"
#include "ext/speed_rls.hpp"
#include "ext/weighted_rls.hpp"
#include "rng/distributions.hpp"
#include "rng/splitmix64.hpp"
#include "stats/running_stat.hpp"

namespace rlslb::ext {
namespace {

std::vector<std::int64_t> unitSpeeds(std::int64_t n) {
  return std::vector<std::int64_t>(static_cast<std::size_t>(n), 1);
}

TEST(SpeedRls, UnitSpeedsReduceToClassicRls) {
  // With all speeds 1 the improvement rule (l_j+1)/1 < l_i/1 is the strict
  // protocol variant; equilibrium = spread <= 1 = perfect balance.
  SpeedRlsEngine engine(config::allInOne(8, 64), unitSpeeds(8), 1);
  const auto r = engine.runUntilEquilibrium(10'000'000);
  ASSERT_TRUE(r.reachedEquilibrium);
  const auto [mn, mx] = std::minmax_element(engine.loads().begin(), engine.loads().end());
  EXPECT_LE(*mx - *mn, 1);
}

TEST(SpeedRls, MassConserved) {
  SpeedRlsEngine engine(config::allInOne(6, 60), {1, 1, 2, 2, 4, 4}, 2);
  for (int i = 0; i < 20000; ++i) engine.step();
  EXPECT_EQ(std::accumulate(engine.loads().begin(), engine.loads().end(), std::int64_t{0}), 60);
}

TEST(SpeedRls, EquilibriumRespectsSpeeds) {
  // Faster bins should end with proportionally more balls: loads near
  // m * s_i / sum(s).
  const std::vector<std::int64_t> speeds = {1, 1, 2, 4};
  SpeedRlsEngine engine(config::allInOne(4, 160), speeds, 3);
  const auto r = engine.runUntilEquilibrium(20'000'000);
  ASSERT_TRUE(r.reachedEquilibrium);
  // sum s = 8, m = 160 -> per-unit-speed 20.
  EXPECT_NEAR(static_cast<double>(engine.loads()[0]), 20.0, 3.0);
  EXPECT_NEAR(static_cast<double>(engine.loads()[2]), 40.0, 5.0);
  EXPECT_NEAR(static_cast<double>(engine.loads()[3]), 80.0, 8.0);
}

TEST(SpeedRls, EquilibriumPredicateExact) {
  // Hand-built equilibrium: speeds (1,2), loads (2,4): experienced 2 and 2;
  // move 1->2: (4+1)/2 = 2.5 >= 2; move 2->1: (2+1)/1 = 3 >= 2. Stable.
  config::Configuration c({2, 4});
  SpeedRlsEngine engine(c, {1, 2}, 4);
  EXPECT_TRUE(engine.isEquilibrium());
  // Non-equilibrium: loads (6,0) with speeds (1,2).
  config::Configuration c2({6, 0});
  SpeedRlsEngine engine2(c2, {1, 2}, 5);
  EXPECT_FALSE(engine2.isEquilibrium());
}

TEST(SpeedRls, WeightedDiscrepancyShrinks) {
  SpeedRlsEngine engine(config::allInOne(8, 200), {1, 1, 1, 1, 2, 2, 2, 2}, 6);
  const double initial = engine.weightedDiscrepancy();
  engine.runUntilEquilibrium(20'000'000);
  EXPECT_LT(engine.weightedDiscrepancy(), initial);
}

TEST(SpeedRls, TimeAdvances) {
  SpeedRlsEngine engine(config::allInOne(4, 16), unitSpeeds(4), 7);
  engine.step();
  EXPECT_GT(engine.time(), 0.0);
  EXPECT_EQ(engine.activations(), 1);
}

// ---------------------------------------------------------------- weighted

WeightedRlsEngine makeWeighted(std::int64_t n, const std::vector<std::int64_t>& weights,
                               std::uint64_t seed, bool allInFirstBin = true) {
  std::vector<std::uint32_t> start(weights.size(), 0);
  if (!allInFirstBin) {
    rng::Xoshiro256pp eng(seed * 31 + 7);
    for (auto& s : start) {
      s = static_cast<std::uint32_t>(rng::uniformIndex(eng, static_cast<std::uint64_t>(n)));
    }
  }
  return WeightedRlsEngine(n, weights, start, seed);
}

TEST(WeightedRls, UnitWeightsReachPerfectBalance) {
  auto engine = makeWeighted(8, std::vector<std::int64_t>(64, 1), 8);
  const auto r = engine.runUntilEquilibrium(10'000'000);
  ASSERT_TRUE(r.reachedEquilibrium);
  // Unit weights: equilibrium means spread <= 1.
  EXPECT_LE(engine.weightedSpread(), 1);
}

TEST(WeightedRls, WeightConserved) {
  const std::vector<std::int64_t> weights = {5, 3, 3, 2, 2, 1, 1, 1};
  auto engine = makeWeighted(4, weights, 9);
  const std::int64_t total = engine.totalWeight();
  for (int i = 0; i < 20000; ++i) engine.step();
  EXPECT_EQ(std::accumulate(engine.loads().begin(), engine.loads().end(), std::int64_t{0}),
            total);
}

TEST(WeightedRls, EquilibriumSpreadBoundedByMaxWeight) {
  // At Nash equilibrium the spread is at most the maximum ball weight
  // (else the top bin's heaviest... any ball on the max bin improves by
  // moving to the min bin).
  rng::Xoshiro256pp weng(10);
  std::vector<std::int64_t> weights(100);
  std::int64_t maxW = 0;
  for (auto& w : weights) {
    w = 1 + static_cast<std::int64_t>(rng::uniformIndex(weng, 8));
    maxW = std::max(maxW, w);
  }
  auto engine = makeWeighted(10, weights, 11);
  const auto r = engine.runUntilEquilibrium(20'000'000);
  ASSERT_TRUE(r.reachedEquilibrium);
  EXPECT_LE(engine.weightedSpread(), maxW);
}

TEST(WeightedRls, BimodalWeightsEquilibrate) {
  std::vector<std::int64_t> weights;
  for (int i = 0; i < 20; ++i) weights.push_back(10);
  for (int i = 0; i < 200; ++i) weights.push_back(1);
  auto engine = makeWeighted(16, weights, 12, /*allInFirstBin=*/false);
  const auto r = engine.runUntilEquilibrium(30'000'000);
  EXPECT_TRUE(r.reachedEquilibrium);
  EXPECT_LE(engine.weightedSpread(), 10);
}

TEST(WeightedRls, EquilibriumPredicateExact) {
  // loads: bin0 = {w=3}, bin1 = {w=1,w=1}: loads (3,2). Ball w=3 moving to
  // bin1: 2+3=5 > 3 rejected and not improving; w=1 balls moving to bin0:
  // 3+1=4 > 2 not improving. Equilibrium.
  WeightedRlsEngine engine(2, {3, 1, 1}, {0, 1, 1}, 13);
  EXPECT_TRUE(engine.isEquilibrium());
  // loads (5,0): the w=1 ball improves by moving.
  WeightedRlsEngine engine2(2, {3, 1, 1}, {0, 0, 0}, 14);
  EXPECT_FALSE(engine2.isEquilibrium());
}

TEST(WeightedRls, MoveRuleAllowsNeutral) {
  // A ball may move when the new load equals the old (non-worsening),
  // matching the paper's >= rule under unit weights.
  WeightedRlsEngine engine(2, {1, 1, 1}, {0, 0, 1}, 15);  // loads (2,1)
  // Ball in bin0: dest load 1 + w 1 = 2 <= 2 -> allowed (neutral).
  int moved = 0;
  for (int i = 0; i < 2000 && moved == 0; ++i) moved += engine.step();
  EXPECT_GT(moved, 0);
}

TEST(WeightedRls, DeterministicForSeed) {
  auto a = makeWeighted(8, std::vector<std::int64_t>(32, 2), 16);
  auto b = makeWeighted(8, std::vector<std::int64_t>(32, 2), 16);
  for (int i = 0; i < 5000; ++i) {
    a.step();
    b.step();
  }
  EXPECT_EQ(a.loads(), b.loads());
}

TEST(WeightedRls, HeavierSystemsSlower) {
  // More total weight concentration -> longer to equilibrium (sanity shape).
  stats::RunningStat light;
  stats::RunningStat heavy;
  for (int rep = 0; rep < 30; ++rep) {
    auto a = makeWeighted(8, std::vector<std::int64_t>(32, 1), rng::streamSeed(17, rep));
    light.add(a.runUntilEquilibrium(10'000'000).time);
    auto b = makeWeighted(8, std::vector<std::int64_t>(64, 1), rng::streamSeed(18, rep));
    heavy.add(b.runUntilEquilibrium(10'000'000).time);
  }
  // Both should be modest; no strict ordering guaranteed, just finiteness.
  EXPECT_GT(light.count(), 0);
  EXPECT_GT(heavy.count(), 0);
}

}  // namespace
}  // namespace rlslb::ext
