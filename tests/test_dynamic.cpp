// Tests for src/dynamic: the open-system RLS of [11]'s setting.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "config/generators.hpp"
#include "dynamic/open_system.hpp"
#include "rng/splitmix64.hpp"
#include "stats/running_stat.hpp"

namespace rlslb::dynamic {
namespace {

TEST(OpenSystem, StartsEmptyByDefault) {
  OpenSystem sys(16, {}, 1);
  EXPECT_EQ(sys.numBalls(), 0);
  EXPECT_EQ(sys.numBins(), 16);
  EXPECT_DOUBLE_EQ(sys.time(), 0.0);
}

TEST(OpenSystem, AcceptsInitialConfiguration) {
  const auto init = config::balanced(8, 64);
  OpenSystem sys(8, {}, 2, &init);
  EXPECT_EQ(sys.numBalls(), 64);
}

TEST(OpenSystem, BallCountFollowsArrivalsMinusDepartures) {
  OpenSystemOptions opts;
  opts.arrivalRatePerBin = 1.0;
  opts.departureRate = 0.5;
  OpenSystem sys(8, opts, 3);
  sys.runUntilTime(50.0);
  const auto& c = sys.counters();
  EXPECT_EQ(sys.numBalls(), c.arrivals - c.departures);
  std::int64_t total = 0;
  for (auto v : sys.loads()) total += v;
  EXPECT_EQ(total, sys.numBalls());
}

TEST(OpenSystem, EmptyNoArrivalsIsAbsorbing) {
  OpenSystemOptions opts;
  opts.arrivalRatePerBin = 0.0;
  OpenSystem sys(4, opts, 4);
  EXPECT_FALSE(sys.step());
}

TEST(OpenSystem, PureDeathDrainsToEmpty) {
  OpenSystemOptions opts;
  opts.arrivalRatePerBin = 0.0;
  opts.departureRate = 1.0;
  const auto init = config::balanced(4, 40);
  OpenSystem sys(4, opts, 5, &init);
  sys.runUntilTime(200.0);
  EXPECT_EQ(sys.numBalls(), 0);
  EXPECT_EQ(sys.counters().departures, 40);
}

TEST(OpenSystem, StationaryMeanMatchesMMInfinity) {
  // Without migrations affecting counts, the total ball count is M/M/inf
  // with mean lambda*n/mu. Time-average after warmup should match.
  OpenSystemOptions opts;
  opts.arrivalRatePerBin = 2.0;
  opts.departureRate = 1.0;
  OpenSystem sys(16, opts, 6);
  sys.runUntilTime(50.0);  // warmup
  stats::RunningStat rs;
  for (int i = 0; i < 4000; ++i) {
    sys.runUntilTime(sys.time() + 0.25);
    rs.add(static_cast<double>(sys.numBalls()));
  }
  EXPECT_NEAR(rs.mean(), 32.0, 2.0);  // lambda*n/mu = 2*16/1
}

TEST(OpenSystem, MigrationKeepsSpreadSmall) {
  // With RLS migrations on, the stationary spread is far below the
  // arrivals-only spread at the same offered load.
  OpenSystemOptions withRls;
  withRls.arrivalRatePerBin = 4.0;
  withRls.departureRate = 0.05;  // mean load ~ 80 per bin
  OpenSystem sys(16, withRls, 7);
  sys.runUntilTime(150.0);  // warm up to stationarity-ish

  stats::RunningStat spread;
  for (int i = 0; i < 200; ++i) {
    sys.runUntilTime(sys.time() + 0.5);
    spread.add(static_cast<double>(sys.spread()));
  }
  // Poisson-only fluctuation at mean 80 would be ~ 4*sqrt(80) ~ 36 spread;
  // the migration clock is 20x the departure rate here, so RLS holds the
  // spread to a small band.
  EXPECT_LT(spread.mean(), 12.0);
  EXPECT_GT(sys.counters().migrations, 0);
}

TEST(OpenSystem, TwoChoiceArrivalsTightenSpread) {
  OpenSystemOptions oneChoice;
  oneChoice.arrivalRatePerBin = 4.0;
  oneChoice.departureRate = 1.0;
  oneChoice.arrivalChoices = 1;
  OpenSystemOptions twoChoice = oneChoice;
  twoChoice.arrivalChoices = 2;

  stats::RunningStat s1;
  stats::RunningStat s2;
  for (int rep = 0; rep < 8; ++rep) {
    OpenSystem a(32, oneChoice, rng::streamSeed(8, rep));
    a.runUntilTime(60.0);
    s1.add(static_cast<double>(a.spread()));
    OpenSystem b(32, twoChoice, rng::streamSeed(9, rep));
    b.runUntilTime(60.0);
    s2.add(static_cast<double>(b.spread()));
  }
  EXPECT_LE(s2.mean(), s1.mean() + 0.5);
}

TEST(OpenSystem, DeterministicForSeed) {
  OpenSystemOptions opts;
  opts.arrivalRatePerBin = 1.0;
  OpenSystem a(8, opts, 10);
  OpenSystem b(8, opts, 10);
  a.runUntilTime(20.0);
  b.runUntilTime(20.0);
  EXPECT_EQ(a.loads(), b.loads());
  EXPECT_DOUBLE_EQ(a.time(), b.time());
}

TEST(OpenSystem, CountersConsistent) {
  OpenSystemOptions opts;
  opts.arrivalRatePerBin = 1.0;
  opts.departureRate = 0.8;
  OpenSystem sys(8, opts, 11);
  const std::int64_t events = sys.runUntilTime(30.0);
  const auto& c = sys.counters();
  EXPECT_EQ(events, c.arrivals + c.departures + c.migrationAttempts);
  EXPECT_LE(c.migrations, c.migrationAttempts);
}

TEST(OpenSystem, GapTwoStillBalances) {
  OpenSystemOptions opts;
  opts.arrivalRatePerBin = 2.0;
  opts.departureRate = 0.1;
  opts.gap = 2;
  OpenSystem sys(8, opts, 12);
  sys.runUntilTime(100.0);
  EXPECT_GT(sys.counters().migrations, 0);
  EXPECT_LT(sys.spread(), 30);
}

}  // namespace
}  // namespace rlslb::dynamic
