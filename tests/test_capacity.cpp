// capacity/: the CompactAllocator + CapacityLoop equivalence contract --
// byte-identical loads, counters, and gap trajectories against the dense
// OnlineAllocator + ShardedEventLoop across the full (trace, seed, shards,
// threads, apply mode) differential matrix -- plus the compact layout's
// internal invariants, resident-byte accounting, and the budget-gate
// estimator.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "capacity/capacity_loop.hpp"
#include "capacity/compact_allocator.hpp"
#include "runner/thread_pool.hpp"
#include "serve/event_loop.hpp"
#include "serve/online_allocator.hpp"
#include "workload/compose.hpp"
#include "workload/generators.hpp"

namespace rlslb::capacity {
namespace {

constexpr std::int64_t kBins = 48;
constexpr std::int64_t kEvents = 6000;
constexpr std::int64_t kEpochEvents = 256;
constexpr int kRepair = 4;

workload::OpenTraceOptions traceOptions() {
  workload::OpenTraceOptions o;
  o.bins = kBins;
  o.arrivalRatePerBin = 1.0;
  o.departureRate = 0.25;
  o.resampleRate = 1.0;
  o.ballWeight = 1;  // the compact layout is unit-weight by design
  o.maxEvents = kEvents;
  return o;
}

struct Outcome {
  std::vector<std::int64_t> loads;
  serve::ServeCounters counters;
  std::int64_t liveBalls = 0;
  std::int64_t totalLoad = 0;
  std::int64_t flushedBins = 0;
  std::vector<std::int64_t> gapTrajectory;
  std::int64_t residentBytes = 0;
};

void expectEqualOutcomes(const Outcome& compact, const Outcome& dense,
                         const std::string& label) {
  EXPECT_EQ(compact.loads, dense.loads) << label;
  EXPECT_EQ(compact.liveBalls, dense.liveBalls) << label;
  EXPECT_EQ(compact.totalLoad, dense.totalLoad) << label;
  EXPECT_EQ(compact.flushedBins, dense.flushedBins) << label;
  EXPECT_EQ(compact.gapTrajectory, dense.gapTrajectory) << label;
  const serve::ServeCounters& a = compact.counters;
  const serve::ServeCounters& b = dense.counters;
  EXPECT_EQ(a.events, b.events) << label;
  EXPECT_EQ(a.arrivals, b.arrivals) << label;
  EXPECT_EQ(a.departures, b.departures) << label;
  EXPECT_EQ(a.resamples, b.resamples) << label;
  EXPECT_EQ(a.migrations, b.migrations) << label;
  EXPECT_EQ(a.rejectedMoves, b.rejectedMoves) << label;
  EXPECT_EQ(a.repairAttempts, b.repairAttempts) << label;
  EXPECT_EQ(a.repairMigrations, b.repairMigrations) << label;
}

Outcome runCompact(const std::string& spec, std::uint64_t seed) {
  workload::ComposedTrace trace(traceOptions(), spec, seed);
  CompactOptions options;
  options.bins = kBins;
  options.arrivalChoices = 2;
  CompactAllocator allocator(options);
  CapacityLoopOptions loopOptions;
  loopOptions.epochEvents = kEpochEvents;
  loopOptions.repairMovesPerEpoch = kRepair;
  loopOptions.seed = seed;
  CapacityLoop loop(allocator, loopOptions);
  Outcome out;
  const CapacityLoop::RunResult result = loop.run(trace, [&](const serve::EpochStats& s) {
    out.gapTrajectory.push_back(s.gap());
  });
  EXPECT_EQ(result.events, kEvents);
  EXPECT_TRUE(allocator.validate());
  out.loads = allocator.loadsCopy();
  out.counters = allocator.counters();
  out.liveBalls = allocator.liveBalls();
  out.totalLoad = allocator.totalLoad();
  out.flushedBins = allocator.flushedBins();
  out.residentBytes = allocator.residentBytes();
  return out;
}

Outcome runDense(const std::string& spec, std::uint64_t seed, int shards, int threads,
                 serve::ApplyMode applyMode) {
  workload::ComposedTrace trace(traceOptions(), spec, seed);
  serve::AllocatorOptions options;
  options.bins = kBins;
  options.arrivalChoices = 2;
  serve::OnlineAllocator allocator(options);
  serve::LoopOptions loopOptions;
  loopOptions.shards = shards;
  loopOptions.epochEvents = kEpochEvents;
  loopOptions.repairMovesPerEpoch = kRepair;
  loopOptions.seed = seed;
  loopOptions.applyMode = applyMode;
  runner::ThreadPool pool(threads);
  serve::ShardedEventLoop loop(allocator, loopOptions, pool);
  Outcome out;
  const serve::ShardedEventLoop::RunResult result =
      loop.run(trace, [&](const serve::EpochStats& s) {
        out.gapTrajectory.push_back(s.gap());
      });
  EXPECT_EQ(result.events, kEvents);
  EXPECT_TRUE(allocator.validate());
  out.loads = allocator.loads();
  out.counters = allocator.counters();
  out.liveBalls = allocator.liveBalls();
  out.totalLoad = allocator.totalLoad();
  out.flushedBins = allocator.flushedBins();
  out.residentBytes = allocator.residentBytes();
  return out;
}

// The tentpole contract: for every trace shape and seed, the compact
// backend equals the dense one run at ANY (shards, threads, apply mode).
TEST(CompactAllocator, MatchesDenseAcrossTheDifferentialMatrix) {
  const std::vector<std::string> specs = {
      "poisson",
      "diurnal(0.8,64)",
      "bursty(8,0.05,0.5)",
      "diurnal(0.8,64)*bursty(8,0.05,0.5)+hotspot(16,8,1)",
  };
  const std::vector<std::uint64_t> seeds = {1, 20170529};
  struct DenseConfig {
    int shards;
    int threads;
    serve::ApplyMode mode;
  };
  const std::vector<DenseConfig> configs = {
      {1, 1, serve::ApplyMode::kSequential},
      {4, 1, serve::ApplyMode::kSequential},
      {4, 2, serve::ApplyMode::kPartitioned},
      {8, 2, serve::ApplyMode::kPartitioned},
  };
  for (const std::string& spec : specs) {
    for (const std::uint64_t seed : seeds) {
      const Outcome compact = runCompact(spec, seed);
      EXPECT_GT(compact.counters.events, 0);
      for (const DenseConfig& cfg : configs) {
        const std::string label = spec + " seed=" + std::to_string(seed) +
                                  " shards=" + std::to_string(cfg.shards) +
                                  " threads=" + std::to_string(cfg.threads);
        const Outcome dense = runDense(spec, seed, cfg.shards, cfg.threads, cfg.mode);
        expectEqualOutcomes(compact, dense, label);
      }
    }
  }
}

TEST(CompactAllocator, RepairStreamMatchesDense) {
  // Heavier repair pressure: the repair draw sequence (ticket -> Fenwick
  // upperBound -> in-bin slot -> candidate bin) is where the chunked lists
  // and the global Fenwick must reproduce the dense order exactly.
  workload::ComposedTrace compactTrace(traceOptions(), "poisson", 11);
  CompactOptions copt;
  copt.bins = kBins;
  CompactAllocator compact(copt);
  CapacityLoopOptions clo;
  clo.epochEvents = 64;
  clo.repairMovesPerEpoch = 32;
  clo.seed = 11;
  CapacityLoop cloop(compact, clo);
  cloop.run(compactTrace);

  workload::ComposedTrace denseTrace(traceOptions(), "poisson", 11);
  serve::AllocatorOptions dopt;
  dopt.bins = kBins;
  serve::OnlineAllocator dense(dopt);
  serve::LoopOptions dlo;
  dlo.shards = 4;
  dlo.epochEvents = 64;
  dlo.repairMovesPerEpoch = 32;
  dlo.seed = 11;
  runner::ThreadPool pool(1);
  serve::ShardedEventLoop dloop(dense, dlo, pool);
  dloop.run(denseTrace);

  EXPECT_EQ(compact.loadsCopy(), dense.loads());
  EXPECT_EQ(compact.counters().repairAttempts, dense.counters().repairAttempts);
  EXPECT_EQ(compact.counters().repairMigrations, dense.counters().repairMigrations);
  EXPECT_TRUE(compact.validate());
}

TEST(CompactAllocator, InvertedAcceptanceStaysEquivalent) {
  const std::uint64_t seed = 5;
  workload::ComposedTrace compactTrace(traceOptions(), "poisson", seed);
  CompactOptions copt;
  copt.bins = kBins;
  copt.invertAcceptance = true;
  CompactAllocator compact(copt);
  CapacityLoopOptions clo;
  clo.epochEvents = kEpochEvents;
  clo.seed = seed;
  CapacityLoop cloop(compact, clo);
  cloop.run(compactTrace);

  workload::ComposedTrace denseTrace(traceOptions(), "poisson", seed);
  serve::AllocatorOptions dopt;
  dopt.bins = kBins;
  dopt.invertAcceptance = true;
  serve::OnlineAllocator dense(dopt);
  serve::LoopOptions dlo;
  dlo.shards = 1;
  dlo.epochEvents = kEpochEvents;
  dlo.seed = seed;
  runner::ThreadPool pool(1);
  serve::ShardedEventLoop dloop(dense, dlo, pool);
  dloop.run(denseTrace);

  EXPECT_EQ(compact.loadsCopy(), dense.loads());
  EXPECT_EQ(compact.counters().migrations, dense.counters().migrations);
}

TEST(CompactAllocator, ResidentBytesBeatDenseAndEstimateTracksActual) {
  const Outcome compact = runCompact("poisson", 2);
  const Outcome dense = runDense("poisson", 2, 1, 1, serve::ApplyMode::kSequential);
  // The whole point of the backend: materially fewer bytes for the same
  // observable state.
  EXPECT_LT(compact.residentBytes, dense.residentBytes);
  EXPECT_GT(compact.residentBytes, 0);

  // The budget-gate estimator should land within ~2x of a real run (it
  // sizes the gate, not the ledger).
  const std::int64_t ballsEver = compact.counters.arrivals;
  const std::int64_t estimate =
      CompactAllocator::estimateBytes(kBins, ballsEver, compact.liveBalls);
  EXPECT_GT(estimate, compact.residentBytes / 3);
  EXPECT_LT(estimate, compact.residentBytes * 3);
  // Monotone in every argument.
  EXPECT_LE(estimate, CompactAllocator::estimateBytes(kBins * 2, ballsEver, compact.liveBalls));
  EXPECT_LE(estimate, CompactAllocator::estimateBytes(kBins, ballsEver * 2, compact.liveBalls));
  EXPECT_LE(estimate,
            CompactAllocator::estimateBytes(kBins, ballsEver, compact.liveBalls * 2));
}

TEST(CompactAllocator, ValidateCatchesFreshAndRunStates) {
  CompactOptions options;
  options.bins = 8;
  CompactAllocator allocator(options);
  EXPECT_TRUE(allocator.validate());
  EXPECT_EQ(allocator.numBins(), 8);
  EXPECT_EQ(allocator.totalLoad(), 0);
  EXPECT_EQ(allocator.liveBalls(), 0);
  EXPECT_EQ(allocator.gap(), 0);

  // Drive a tiny hand-built batch: arrivals, a resample, a departure.
  rng::Xoshiro256pp eng(3);
  std::vector<workload::Event> events;
  std::vector<serve::Decision> decisions;
  for (std::int64_t ball = 0; ball < 6; ++ball) {
    events.push_back({static_cast<double>(ball), workload::EventKind::kArrive, ball, 1});
  }
  events.push_back({6.0, workload::EventKind::kResample, 2, 0});
  events.push_back({7.0, workload::EventKind::kDepart, 0, 0});
  decisions.resize(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    decisions[i] = allocator.decide(events[i], eng);
  }
  allocator.applyBatch(events.data(), decisions.data(), events.size());
  allocator.flush();
  EXPECT_TRUE(allocator.validate());
  EXPECT_EQ(allocator.totalLoad(), 5);
  EXPECT_EQ(allocator.liveBalls(), 5);
  EXPECT_EQ(allocator.counters().arrivals, 6);
  EXPECT_EQ(allocator.counters().departures, 1);
  EXPECT_EQ(allocator.maxWeightSeen(), 1);
}

}  // namespace
}  // namespace rlslb::capacity
