// Tests for src/protocols: the Section-2 baselines must conserve mass,
// respect their protocol rules, and show the qualitative behaviour the
// paper's related-work discussion describes.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "config/generators.hpp"
#include "config/metrics.hpp"
#include "protocols/crs.hpp"
#include "protocols/edm.hpp"
#include "protocols/repeated.hpp"
#include "protocols/selfish.hpp"
#include "protocols/threshold.hpp"
#include "rng/splitmix64.hpp"
#include "stats/running_stat.hpp"

namespace rlslb::protocols {
namespace {

std::int64_t totalLoad(const std::vector<std::int64_t>& loads) {
  return std::accumulate(loads.begin(), loads.end(), std::int64_t{0});
}

// ---------------------------------------------------------------- selfish

TEST(Selfish, ConservesMassPerRound) {
  SelfishRerouting p(config::allInOne(8, 256), 1);
  for (int r = 0; r < 20; ++r) {
    p.round();
    EXPECT_EQ(totalLoad(p.loads()), 256);
  }
}

TEST(Selfish, LoadsStayNonNegative) {
  SelfishRerouting p(config::allInOne(4, 100), 2);
  for (int r = 0; r < 50; ++r) {
    p.round();
    for (auto v : p.loads()) EXPECT_GE(v, 0);
  }
}

TEST(Selfish, ReachesNearBalanceQuickly) {
  // [4]-style protocols approach near-balance in very few rounds from the
  // worst case (the ln ln m part of their bound).
  SelfishRerouting p(config::allInOne(16, 1 << 14), 3);
  const std::int64_t rounds = p.runUntilBalanced(/*x=*/64, /*maxRounds=*/200);
  ASSERT_GE(rounds, 0);
  EXPECT_LE(rounds, 60);
}

TEST(Selfish, PerfectBalanceFromNearBalance) {
  SelfishRerouting p(config::plusMinusOne(8, 64, 2), 4);
  const std::int64_t rounds = p.runUntilBalanced(0, 100000);
  EXPECT_GE(rounds, 0);
  EXPECT_TRUE(p.metrics().perfectlyBalanced);
}

TEST(Selfish, RoundCounterAdvances) {
  SelfishRerouting p(config::allInOne(4, 16), 5);
  p.round();
  p.round();
  EXPECT_EQ(p.roundsTaken(), 0);  // runUntilBalanced owns the counter
  p.runUntilBalanced(0, 50);
  EXPECT_GE(p.roundsTaken(), 0);
}

// -------------------------------------------------------------------- edm

TEST(Edm, ConservesMass) {
  EdmGlobalRerouting p(config::allInOne(8, 512), 6);
  for (int r = 0; r < 20; ++r) {
    p.round();
    EXPECT_EQ(totalLoad(p.loads()), 512);
  }
}

TEST(Edm, BalancedIsFixedPoint) {
  EdmGlobalRerouting p(config::balanced(8, 64), 7);
  const auto before = p.loads();
  p.round();
  EXPECT_EQ(p.loads(), before);
}

TEST(Edm, ConvergesFasterThanSelfishFromWorstCase) {
  // Global knowledge of the average should not be slower to near-balance.
  const auto init = config::allInOne(16, 1 << 12);
  EdmGlobalRerouting edm(init, 8);
  SelfishRerouting selfish(init, 8);
  const std::int64_t re = edm.runUntilBalanced(16, 500);
  const std::int64_t rs = selfish.runUntilBalanced(16, 500);
  ASSERT_GE(re, 0);
  ASSERT_GE(rs, 0);
  EXPECT_LE(re, rs + 5);
}

TEST(Edm, NonNegativeLoads) {
  EdmGlobalRerouting p(config::powerLaw(10, 1000, 1.2), 9);
  for (int r = 0; r < 50; ++r) {
    p.round();
    for (auto v : p.loads()) EXPECT_GE(v, 0);
  }
}

// -------------------------------------------------------------- threshold

TEST(Threshold, ConservesMass) {
  ThresholdProtocol p(config::allInOne(8, 256), 10, /*threshold=*/32, 0.5);
  for (int r = 0; r < 30; ++r) {
    p.round();
    EXPECT_EQ(totalLoad(p.loads()), 256);
  }
}

TEST(Threshold, BelowThresholdBinsNeverSend) {
  // With threshold >= max initial load nothing ever moves.
  ThresholdProtocol p(config::balanced(8, 64), 11, /*threshold=*/100, 0.5);
  const auto before = p.loads();
  for (int r = 0; r < 10; ++r) p.round();
  EXPECT_EQ(p.loads(), before);
}

TEST(Threshold, ReachesBandAroundThreshold) {
  // With T = avg the protocol keeps shedding from above-threshold bins and
  // fluctuates in a band of order sqrt(avg)-ish around the threshold
  // (empirically disc ~ 60 at avg = 256); it reaches a generous band fast
  // and stays well below the initial disc.
  const auto init = config::allInOne(16, 1 << 12);  // avg = 256
  ThresholdProtocol p(init, 12, /*threshold=*/(1 << 12) / 16, 0.5);
  const std::int64_t rounds = p.runUntilBalanced(/*x=*/128, 3000);
  ASSERT_GE(rounds, 0);
  for (int r = 0; r < 500; ++r) p.round();
  EXPECT_LE(p.metrics().discrepancy, 128.0);  // stays in the band
}

TEST(Threshold, AccessorsAndValidation) {
  ThresholdProtocol p(config::balanced(4, 8), 13, 2, 0.25);
  EXPECT_EQ(p.threshold(), 2);
}

// -------------------------------------------------------------------- crs

// --------------------------------------------------------------- repeated

TEST(Repeated, ConservesMass) {
  RepeatedBallsIntoBins p(config::allInOne(16, 16), 30);
  for (int r = 0; r < 200; ++r) {
    p.round();
    EXPECT_EQ(totalLoad(p.loads()), 16);
  }
}

TEST(Repeated, SelfStabilizesMaxLoadForMEqualsN) {
  // [2]: from any start with m = n, the max load reaches O(log n) quickly
  // and stays there.
  const std::int64_t n = 256;
  RepeatedBallsIntoBins p(config::allInOne(n, n), 31);
  // A bin releases one ball per round, so draining the all-in-one start
  // alone needs ~n rounds; warm up past that.
  for (int r = 0; r < 3 * n; ++r) p.round();
  stats::RunningStat maxLoad;
  for (int r = 0; r < 300; ++r) {
    p.round();
    maxLoad.add(static_cast<double>(p.metrics().maxLoad));
  }
  EXPECT_LT(maxLoad.mean(), 3.0 * std::log(static_cast<double>(n)));
}

TEST(Repeated, KeepsChurning) {
  // Unlike RLS, the repeated process never freezes: released balls keep
  // moving even from a balanced state.
  RepeatedBallsIntoBins p(config::balanced(8, 8), 32);
  bool changed = false;
  const auto before = p.loads();
  for (int r = 0; r < 50 && !changed; ++r) {
    p.round();
    changed = p.loads() != before;
  }
  EXPECT_TRUE(changed);
}

TEST(Repeated, EmptyBinsReleaseNothing) {
  RepeatedBallsIntoBins p(config::allInOne(4, 2), 33);
  p.round();
  EXPECT_EQ(totalLoad(p.loads()), 2);
}

// -------------------------------------------------------------------- crs

TEST(Crs, InitialPlacementIsGreedyTwoChoice) {
  CrsProtocol p(64, 64 * 8, 14);
  EXPECT_EQ(totalLoad(p.loads()), 64 * 8);
  // Greedy[2] keeps the initial discrepancy small.
  EXPECT_LE(p.metrics().discrepancy, 8.0);
}

TEST(Crs, StepConservesMass) {
  CrsProtocol p(16, 64, 15);
  for (int s = 0; s < 2000; ++s) p.step();
  EXPECT_EQ(totalLoad(p.loads()), 64);
  EXPECT_EQ(p.steps(), 2000);
}

TEST(Crs, MovesOnlyDecreaseLoadGap) {
  // A CRS move always goes to the strictly lesser-loaded of the pair, so
  // max load never increases.
  CrsProtocol p(16, 160, 16);
  std::int64_t maxBefore = p.metrics().maxLoad;
  for (int s = 0; s < 5000; ++s) p.step();
  EXPECT_LE(p.metrics().maxLoad, maxBefore);
}

TEST(Crs, ReachesPerfectBalanceOnSmallSystems) {
  CrsProtocol p(8, 32, 17);
  const std::int64_t steps = p.runUntilPerfect(2'000'000);
  ASSERT_GE(steps, 0);
  EXPECT_TRUE(p.metrics().perfectlyBalanced);
}

TEST(Crs, ReachesLocalStabilityAndStepCountGrows) {
  // Perfect balance can be infeasible for a given candidate graph (each
  // ball is confined to two bins); local stability is CRS's reachable
  // fixed point. The pair-draw count to get there grows quickly with n
  // (Section 2: n^{O(1)} with a large exponent).
  stats::RunningStat steps16;
  stats::RunningStat steps32;
  for (int rep = 0; rep < 8; ++rep) {
    CrsProtocol a(16, 64, rng::streamSeed(18, rep));
    const std::int64_t sa = a.runUntilStable(50'000'000);
    ASSERT_GE(sa, 0);
    steps16.add(static_cast<double>(sa));
    CrsProtocol b(32, 128, rng::streamSeed(19, rep));
    const std::int64_t sb = b.runUntilStable(50'000'000);
    ASSERT_GE(sb, 0);
    steps32.add(static_cast<double>(sb));
  }
  EXPECT_GT(steps32.mean(), steps16.mean());
}

TEST(Crs, StableStateIsNearBalanced) {
  // At local stability the load spread is bounded by the candidate-graph
  // structure; empirically small for avg >= 4.
  CrsProtocol p(24, 96, 21);
  ASSERT_GE(p.runUntilStable(50'000'000), 0);
  EXPECT_TRUE(p.isLocallyStable());
  EXPECT_LE(p.metrics().discrepancy, 4.0);
}

TEST(Crs, DeterministicForSeed) {
  CrsProtocol a(16, 64, 19);
  CrsProtocol b(16, 64, 19);
  for (int s = 0; s < 1000; ++s) {
    a.step();
    b.step();
  }
  EXPECT_EQ(a.loads(), b.loads());
  EXPECT_EQ(a.moves(), b.moves());
}

TEST(Crs, ZeroBalls) {
  CrsProtocol p(8, 0, 20);
  EXPECT_TRUE(p.metrics().perfectlyBalanced);
  EXPECT_EQ(p.runUntilPerfect(10), 0);
}

}  // namespace
}  // namespace rlslb::protocols
