// Tests for src/sim and src/core: the three engines are exact samplers of
// the same CTMC. Verified via (a) structural invariants from Section 3 of
// the paper, (b) closed-form expected times, (c) the exact absorbing-chain
// solver, and (d) cross-engine distributional tests.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "config/generators.hpp"
#include "config/metrics.hpp"
#include "core/rls.hpp"
#include "exact/rls_chain.hpp"
#include "rng/distributions.hpp"
#include "rng/splitmix64.hpp"
#include "sim/hybrid_engine.hpp"
#include "sim/jump_engine.hpp"
#include "sim/naive_engine.hpp"
#include "sim/ensemble.hpp"
#include "sim/probes.hpp"
#include "stats/running_stat.hpp"
#include "stats/tests.hpp"

namespace rlslb {
namespace {

using config::Configuration;
using core::SimOptions;
using sim::RunLimits;
using sim::Target;

SimOptions opts(SimOptions::EngineKind kind, std::uint64_t seed, int gap = 1) {
  SimOptions o;
  o.engine = kind;
  o.seed = seed;
  o.gap = gap;
  return o;
}

// Probe asserting the paper's Section-3 monotonicity properties after every
// event: discrepancy never increases, min never decreases, max never
// increases, mass conserved.
class InvariantProbe final : public sim::Probe {
 public:
  void onEvent(const sim::Engine& engine) override {
    const auto& s = engine.state();
    if (seen_) {
      EXPECT_GE(s.minLoad, lastMin_);
      EXPECT_LE(s.maxLoad, lastMax_);
      EXPECT_LE(s.overloadedBalls, lastOverload_);
    }
    EXPECT_EQ(s.numBalls, balls_ == -1 ? s.numBalls : balls_);
    balls_ = s.numBalls;
    lastMin_ = s.minLoad;
    lastMax_ = s.maxLoad;
    lastOverload_ = s.overloadedBalls;
    seen_ = true;
  }

 private:
  bool seen_ = false;
  std::int64_t balls_ = -1;
  std::int64_t lastMin_ = 0;
  std::int64_t lastMax_ = 0;
  std::int64_t lastOverload_ = 0;
};

TEST(NaiveEngine, InvariantsFromAllInOne) {
  InvariantProbe probe;
  const auto r = core::balance(config::allInOne(8, 64), opts(SimOptions::EngineKind::Naive, 1),
                               Target::perfect(), {}, &probe);
  EXPECT_TRUE(r.reachedTarget);
  EXPECT_TRUE(r.finalState.perfectlyBalanced());
}

TEST(NaiveEngine, InvariantsFromRandom) {
  rng::Xoshiro256pp eng(2);
  for (int rep = 0; rep < 10; ++rep) {
    InvariantProbe probe;
    const auto init = config::uniformRandom(12, 60, eng);
    const auto r = core::balance(init, opts(SimOptions::EngineKind::Naive, 100 + rep),
                                 Target::perfect(), {}, &probe);
    EXPECT_TRUE(r.reachedTarget);
  }
}

TEST(JumpEngine, InvariantsFromAllInOne) {
  InvariantProbe probe;
  const auto r = core::balance(config::allInOne(8, 64), opts(SimOptions::EngineKind::Jump, 3),
                               Target::perfect(), {}, &probe);
  EXPECT_TRUE(r.reachedTarget);
}

TEST(NaiveEngine, MassConservedAndStateMatchesLoads) {
  sim::NaiveEngine engine(config::staircase(16, 256), 4);
  for (int i = 0; i < 2000; ++i) engine.step();
  const auto mm = config::computeMetrics(Configuration(engine.loads()));
  EXPECT_EQ(mm.minLoad, engine.state().minLoad);
  EXPECT_EQ(mm.maxLoad, engine.state().maxLoad);
  EXPECT_EQ(mm.overloadedBalls, engine.state().overloadedBalls);
  std::int64_t total = 0;
  for (auto v : engine.loads()) total += v;
  EXPECT_EQ(total, 256);
}

TEST(NaiveEngine, ActivationLowerBound) {
  // To empty the initial bin below ceil(avg), at least m - ceil(avg)
  // successful moves (hence activations) are needed (Theorem 1 lower-bound
  // argument).
  const std::int64_t n = 16;
  const std::int64_t m = 64;
  const auto r = core::balance(config::allInOne(n, m), opts(SimOptions::EngineKind::Naive, 5));
  EXPECT_TRUE(r.reachedTarget);
  EXPECT_GE(r.moves, m - (m + n - 1) / n);
  EXPECT_GE(r.activations, r.moves);
}

TEST(NaiveEngine, StrictGapAbsorbsWhenSpreadBelowGap) {
  // Strict protocol (gap 2) at spread 1: load(src) >= load(dst) + 2 can
  // never hold, so the labeled chain is absorbed. step() must say so in
  // O(1) instead of simulating failed activations forever (previously a
  // runUntil with an unreachable target spun until RunLimits).
  sim::NaiveEngine engine(Configuration({2, 1}), 31, /*gap=*/2);
  EXPECT_FALSE(engine.step());
  EXPECT_DOUBLE_EQ(engine.time(), 0.0);
  EXPECT_EQ(engine.activations(), 0);

  RunLimits limits;
  limits.maxEvents = 50000;
  // disc <= 0 needs n | m, impossible for n=2, m=3: unreachable target.
  const auto r = sim::runUntil(engine, Target::xBalanced(0), limits);
  EXPECT_FALSE(r.reachedTarget);
  EXPECT_EQ(r.activations, 0);  // terminated by absorption, not the limit
}

TEST(NaiveEngine, StrictGapRunTerminatesByAbsorptionLikeJump) {
  // gap = 2 from the worst case with an unreachable target: the run must
  // end by absorption once the spread drops below the gap, mirroring the
  // jump engine's absorption contract, instead of exhausting maxEvents.
  sim::NaiveEngine engine(config::allInOne(4, 6), 32, /*gap=*/2);
  RunLimits limits;
  limits.maxEvents = 2000000;
  const auto r = sim::runUntil(engine, Target::xBalanced(0), limits);
  EXPECT_FALSE(r.reachedTarget);
  EXPECT_LT(r.activations, limits.maxEvents);
  EXPECT_LE(engine.state().maxLoad - engine.state().minLoad, 1);
}

TEST(NaiveEngine, GapOneAbsorbsExactlyAtUniformLoads) {
  // With n | m the gap-1 chain absorbs exactly when every load equals the
  // average; a bare step() loop must terminate there (previously it would
  // keep consuming rng and advancing time on failed activations).
  sim::NaiveEngine engine(config::allInOne(6, 30), 33);
  while (engine.step()) {
  }
  EXPECT_EQ(engine.state().minLoad, engine.state().maxLoad);
  EXPECT_TRUE(engine.state().perfectlyBalanced());
  // Absorption is permanent: further steps change nothing.
  const double t = engine.time();
  EXPECT_FALSE(engine.step());
  EXPECT_DOUBLE_EQ(engine.time(), t);
}

TEST(NaiveEngine, ForcedMoveRevivesAbsorbedChain) {
  // The DML adversary can push an absorbed configuration apart again; the
  // absorption check must be state-based, not sticky.
  sim::NaiveEngine engine(Configuration({2, 2}), 34);
  EXPECT_FALSE(engine.step());
  engine.applyForcedMove(0, 1);  // now {1, 3}: spread 2, moves possible
  EXPECT_TRUE(engine.step());
}

TEST(JumpEngine, AbsorbsExactlyAtPerfectBalance) {
  sim::JumpEngine engine(config::allInOne(6, 30), 6);
  while (engine.step()) {
  }
  EXPECT_TRUE(engine.state().perfectlyBalanced());
  EXPECT_DOUBLE_EQ(engine.totalRate(), 0.0);
}

TEST(JumpEngine, TotalRateMatchesBruteForce) {
  // R = (1/n) sum over ordered pairs (i, j) with l_i >= l_j + 2 of l_i.
  const Configuration c({7, 4, 4, 2, 0});
  sim::JumpEngine engine(c, 7);
  double brute = 0.0;
  for (std::int64_t li : c.loads()) {
    for (std::int64_t lj : c.loads()) {
      if (li >= lj + 2) brute += static_cast<double>(li);
    }
  }
  brute /= static_cast<double>(c.numBins());
  EXPECT_NEAR(engine.totalRate(), brute, 1e-9);
}

TEST(Engines, DeterministicForSeed) {
  for (auto kind : {SimOptions::EngineKind::Naive, SimOptions::EngineKind::Jump,
                    SimOptions::EngineKind::Hybrid}) {
    const auto a = core::balance(config::allInOne(8, 32), opts(kind, 42));
    const auto b = core::balance(config::allInOne(8, 32), opts(kind, 42));
    EXPECT_DOUBLE_EQ(a.time, b.time);
    EXPECT_EQ(a.moves, b.moves);
  }
}

TEST(Engines, DifferentSeedsDiffer) {
  const auto a = core::balance(config::allInOne(8, 32), opts(SimOptions::EngineKind::Naive, 1));
  const auto b = core::balance(config::allInOne(8, 32), opts(SimOptions::EngineKind::Naive, 2));
  EXPECT_NE(a.time, b.time);
}

TEST(Engines, TwoPointExactExpectation) {
  // E[T] = n/(avg+1) exactly; check all three engines to ~4 SEM.
  const std::int64_t n = 16;
  const std::int64_t avg = 4;
  const auto init = config::twoPoint(n, n * avg);
  const double expected = static_cast<double>(n) / static_cast<double>(avg + 1);  // 3.2
  for (auto kind : {SimOptions::EngineKind::Naive, SimOptions::EngineKind::Jump,
                    SimOptions::EngineKind::Hybrid}) {
    stats::RunningStat rs;
    for (int rep = 0; rep < 3000; ++rep) {
      rs.add(core::balancingTime(init, opts(kind, rng::streamSeed(1000, rep))));
    }
    EXPECT_NEAR(rs.mean(), expected, 4.5 * expected / std::sqrt(3000.0))
        << "engine kind " << static_cast<int>(kind);
  }
}

TEST(Engines, TwoPointTimeIsExponential) {
  // The balancing time of the two-point configuration is Exp((avg+1)/n);
  // compare simulated sample against a synthetic exponential sample by KS.
  const std::int64_t n = 12;
  const std::int64_t avg = 3;
  const auto init = config::twoPoint(n, n * avg);
  std::vector<double> simulated;
  for (int rep = 0; rep < 1500; ++rep) {
    simulated.push_back(
        core::balancingTime(init, opts(SimOptions::EngineKind::Jump, rng::streamSeed(2000, rep))));
  }
  rng::Xoshiro256pp eng(77);
  std::vector<double> reference;
  const double rate = static_cast<double>(avg + 1) / static_cast<double>(n);
  for (int rep = 0; rep < 1500; ++rep) reference.push_back(rng::exponential(eng, rate));
  EXPECT_GT(stats::ksTwoSample(simulated, reference).pValue, 1e-4);
}

TEST(Engines, MatchExactChainExpectation) {
  // Strongest validation: simulated mean E[T] must match the absorbing-chain
  // solve for an asymmetric start, for every engine.
  const Configuration init({6, 3, 2, 1});  // n=4, m=12
  exact::RlsChain chain(4, 12);
  const double expected = chain.expectedTimeFrom(init);
  ASSERT_GT(expected, 0.0);
  for (auto kind : {SimOptions::EngineKind::Naive, SimOptions::EngineKind::Jump,
                    SimOptions::EngineKind::Hybrid}) {
    stats::RunningStat rs;
    for (int rep = 0; rep < 4000; ++rep) {
      rs.add(core::balancingTime(init, opts(kind, rng::streamSeed(3000, rep))));
    }
    EXPECT_NEAR(rs.mean(), expected, 5.0 * rs.sem())
        << "engine kind " << static_cast<int>(kind) << " expected " << expected;
  }
}

TEST(Engines, MatchExactChainVariance) {
  const Configuration init({8, 0, 0, 0});  // n=4, m=8 all-in-one
  exact::RlsChain chain(4, 8);
  const auto id = chain.stateId(init.loads());
  const double et = chain.expectedBalanceTimes()[id];
  const double var = chain.expectedSquaredTimes()[id] - et * et;
  stats::RunningStat rs;
  for (int rep = 0; rep < 6000; ++rep) {
    rs.add(core::balancingTime(init, opts(SimOptions::EngineKind::Jump, rng::streamSeed(4000, rep))));
  }
  EXPECT_NEAR(rs.mean(), et, 5.0 * rs.sem());
  EXPECT_NEAR(rs.variance(), var, 0.15 * var);
}

TEST(Engines, NaiveAndJumpDistributionsAgree) {
  const auto init = config::allInOne(8, 40);
  std::vector<double> naive;
  std::vector<double> jump;
  for (int rep = 0; rep < 1200; ++rep) {
    naive.push_back(
        core::balancingTime(init, opts(SimOptions::EngineKind::Naive, rng::streamSeed(5000, rep))));
    jump.push_back(
        core::balancingTime(init, opts(SimOptions::EngineKind::Jump, rng::streamSeed(6000, rep))));
  }
  EXPECT_GT(stats::ksTwoSample(naive, jump).pValue, 1e-4);
  EXPECT_GT(stats::mannWhitneyU(naive, jump).pValue, 1e-4);
}

TEST(Engines, GapInvarianceDistributional) {
  // Section 3 remark: the ">=" and strict ">" protocols have identical
  // balancing-time distributions (identical lumped chains).
  const auto init = config::allInOne(6, 36);
  std::vector<double> gap1;
  std::vector<double> gap2;
  for (int rep = 0; rep < 1200; ++rep) {
    gap1.push_back(core::balancingTime(
        init, opts(SimOptions::EngineKind::Naive, rng::streamSeed(7000, rep), 1)));
    gap2.push_back(core::balancingTime(
        init, opts(SimOptions::EngineKind::Naive, rng::streamSeed(8000, rep), 2)));
  }
  EXPECT_GT(stats::ksTwoSample(gap1, gap2).pValue, 1e-4);
  EXPECT_GT(stats::mannWhitneyU(gap1, gap2).pValue, 1e-4);
}

TEST(HybridEngine, SwitchesOnConcentratedStart) {
  sim::HybridEngine engine(config::allInOne(32, 1024), 9);
  // All-in-one has 2 distinct loads: the switch happens at construction.
  EXPECT_TRUE(engine.switched());
}

TEST(HybridEngine, StaysNaiveOnManyLevelStart) {
  // A staircase with more distinct loads than the threshold starts naive.
  std::vector<std::int64_t> loads(200);
  for (std::size_t i = 0; i < loads.size(); ++i) loads[i] = static_cast<std::int64_t>(2 * i);
  sim::HybridEngine engine(Configuration(loads), 10, /*levelThreshold=*/96);
  EXPECT_FALSE(engine.switched());
  sim::runUntil(engine, Target::perfect(), {});
  EXPECT_TRUE(engine.switched());  // levels must have merged on the way down
  EXPECT_TRUE(engine.state().perfectlyBalanced());
}

TEST(RunUntil, RespectsEventLimit) {
  sim::NaiveEngine engine(config::allInOne(64, 4096), 11);
  RunLimits limits;
  limits.maxEvents = 100;
  const auto r = sim::runUntil(engine, Target::perfect(), limits);
  EXPECT_FALSE(r.reachedTarget);
  EXPECT_EQ(r.activations, 100);
}

TEST(RunUntil, RespectsTimeLimit) {
  sim::NaiveEngine engine(config::allInOne(64, 4096), 12);
  RunLimits limits;
  limits.maxTime = 0.05;
  const auto r = sim::runUntil(engine, Target::perfect(), limits);
  EXPECT_FALSE(r.reachedTarget);
  EXPECT_GE(r.time, 0.05);
}

TEST(RunUntil, XBalancedTargetStopsEarly) {
  const auto full = core::balance(config::allInOne(16, 256),
                                  opts(SimOptions::EngineKind::Naive, 13), Target::perfect());
  const auto part = core::balance(config::allInOne(16, 256),
                                  opts(SimOptions::EngineKind::Naive, 13), Target::xBalanced(8));
  EXPECT_TRUE(part.reachedTarget);
  EXPECT_LE(part.time, full.time);
  EXPECT_LE(part.finalState.discrepancy(), 8.0);
}

TEST(Probes, TrajectoryRecorderGridAndMonotonicity) {
  sim::TrajectoryRecorder recorder(0.25);
  core::balance(config::allInOne(16, 128), opts(SimOptions::EngineKind::Naive, 14),
                Target::perfect(), {}, &recorder);
  const auto& pts = recorder.points();
  ASSERT_GE(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts.front().time, 0.0);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].time, pts[i - 1].time);
    EXPECT_LE(pts[i].discrepancy, pts[i - 1].discrepancy + 1e-12);
  }
}

TEST(Probes, PhaseTrackerOrderedHits) {
  sim::PhaseTracker tracker({16, 4, 1});
  core::balance(config::allInOne(16, 160), opts(SimOptions::EngineKind::Naive, 15),
                Target::perfect(), {}, &tracker);
  const auto& hits = tracker.hitTimes();
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_LE(hits[0], hits[1]);
  EXPECT_LE(hits[1], hits[2]);
  EXPECT_LT(hits[2], std::numeric_limits<double>::infinity());
}

TEST(Probes, OverloadDecayNeverIncreases) {
  sim::OverloadDecayRecorder recorder(1);
  core::balance(config::halfHalf(16, 160, 5), opts(SimOptions::EngineKind::Naive, 16),
                Target::perfect(), {}, &recorder);
  const auto& pts = recorder.points();
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LE(pts[i].overloadedBalls, pts[i - 1].overloadedBalls);
  }
}

TEST(JumpEngine, IndexAndScanPathsDistributionallyIdentical) {
  // The incremental LevelIndex path and the O(L) scan rebuild are two
  // exact samplers of the same lumped chain; their balancing-time
  // distributions must not separate.
  const auto init = config::staircase(24, 276);  // many levels in play
  std::vector<double> indexed;
  std::vector<double> scan;
  for (int rep = 0; rep < 800; ++rep) {
    {
      sim::JumpEngine engine(init, rng::streamSeed(9100, rep));
      engine.enableLevelIndex();  // below the cost heuristic's cutoff
      EXPECT_TRUE(engine.usesLevelIndex());
      while (engine.step()) {
      }
      indexed.push_back(engine.time());
    }
    {
      sim::JumpEngine engine(init, rng::streamSeed(9200, rep));
      engine.disableLevelIndex();
      EXPECT_FALSE(engine.usesLevelIndex());
      while (engine.step()) {
      }
      scan.push_back(engine.time());
    }
  }
  EXPECT_GT(stats::ksTwoSample(indexed, scan).pValue, 1e-4);
  EXPECT_GT(stats::mannWhitneyU(indexed, scan).pValue, 1e-4);
}

TEST(JumpEngine, IndexedStateMatchesMultisetRebuild) {
  sim::JumpEngine engine(config::staircase(32, 496), 77);
  engine.enableLevelIndex();
  ASSERT_TRUE(engine.usesLevelIndex());
  for (int step = 0; step < 400 && engine.step(); ++step) {
    const auto& state = engine.state();
    const ds::LoadMultiset& ms = engine.multiset();  // rebuilt from the index
    ASSERT_TRUE(ms.validate());
    ASSERT_EQ(state.minLoad, ms.minLoad());
    ASSERT_EQ(state.maxLoad, ms.maxLoad());
    ASSERT_EQ(state.numBalls, ms.numBalls());
    const auto metrics = config::computeMetrics(ms);
    ASSERT_EQ(state.overloadedBalls, metrics.overloadedBalls);
  }
  // The rate stays consistent between the index and the multiset scan.
  const double indexedRate = engine.totalRate();
  engine.disableLevelIndex();
  EXPECT_NEAR(engine.totalRate(), indexedRate, 1e-9 * (1.0 + indexedRate));
  // The scan path finishes the job from the handed-off multiset.
  while (engine.step()) {
  }
  EXPECT_LE(engine.state().maxLoad - engine.state().minLoad, 1);
}

TEST(JumpEngine, OffsetConstructorContinuesClock) {
  // The hybrid hand-off constructor must resume time and move accounting.
  auto ms = ds::LoadMultiset::fromLoads({6, 2, 2, 2});
  sim::JumpEngine engine(std::move(ms), 21, /*startTime=*/5.5, /*startMoves=*/7);
  EXPECT_DOUBLE_EQ(engine.time(), 5.5);
  EXPECT_EQ(engine.moves(), 7);
  ASSERT_TRUE(engine.step());
  EXPECT_GT(engine.time(), 5.5);
  EXPECT_EQ(engine.moves(), 8);
}

TEST(HybridEngine, SwitchTimeRecorded) {
  // Staircase start stays naive initially; after the switch the recorded
  // switch time must be between 0 and the final time.
  std::vector<std::int64_t> loads(150);
  for (std::size_t i = 0; i < loads.size(); ++i) loads[i] = static_cast<std::int64_t>(i);
  sim::HybridEngine engine(Configuration(loads), 22, /*levelThreshold=*/64);
  ASSERT_FALSE(engine.switched());
  EXPECT_DOUBLE_EQ(engine.switchTime(), -1.0);
  const auto r = sim::runUntil(engine, Target::perfect());
  ASSERT_TRUE(engine.switched());
  EXPECT_GE(engine.switchTime(), 0.0);
  EXPECT_LE(engine.switchTime(), r.time);
}

TEST(Engines, XBalancedBoundarySemantics) {
  // xBalanced(x) uses disc <= x with exact integer arithmetic: loads
  // {6,2} with n=2, m=8 (avg 4) has disc exactly 2.
  sim::NaiveEngine engine(Configuration({6, 2}), 23);
  EXPECT_TRUE(engine.state().xBalanced(2));
  EXPECT_FALSE(engine.state().xBalanced(1));
}

TEST(Engines, Lemma16PotentialNeverIncreases) {
  // The Lemma 16 proof asserts 3A - k - h is "always between 0 and 3n and
  // never increases over time" under protocol moves, in the lemma's setting
  // (n | m and at most n overloaded balls). Check it on a full trajectory
  // from a start satisfying the precondition (A = n/2 <= n).
  const std::int64_t n = 16;
  const std::int64_t m = 256;
  sim::NaiveEngine engine(config::halfHalf(n, m, 1), 24);
  std::int64_t lastPotential =
      config::lemma16Potential(ds::LoadMultiset::fromLoads(engine.loads()));
  EXPECT_GE(lastPotential, 0);
  EXPECT_LE(lastPotential, 3 * n);
  while (!engine.state().perfectlyBalanced()) {
    engine.step();
    if (!engine.lastEvent().moved) continue;
    const std::int64_t pot =
        config::lemma16Potential(ds::LoadMultiset::fromLoads(engine.loads()));
    ASSERT_LE(pot, lastPotential);
    ASSERT_GE(pot, 0);
    lastPotential = pot;
  }
}

TEST(Ensemble, SampleAndHoldMath) {
  sim::EnsembleAccumulator acc(1.0, 3.0);
  EXPECT_EQ(acc.gridSize(), 4u);
  EXPECT_DOUBLE_EQ(acc.timeAt(2), 2.0);
  // Synthetic run: disc 10 at t=0, 4 at t=1.5, 1 at t=2.5.
  std::vector<sim::TrajectoryRecorder::Point> run = {
      {0.0, 10.0, 10, 0, 9}, {1.5, 4.0, 5, 1, 3}, {2.5, 1.0, 3, 2, 0}};
  acc.addRun(run);
  EXPECT_DOUBLE_EQ(acc.meanDiscrepancy(0), 10.0);
  EXPECT_DOUBLE_EQ(acc.meanDiscrepancy(1), 10.0);  // hold until 1.5
  EXPECT_DOUBLE_EQ(acc.meanDiscrepancy(2), 4.0);
  EXPECT_DOUBLE_EQ(acc.meanDiscrepancy(3), 1.0);
  EXPECT_DOUBLE_EQ(acc.meanOverloaded(3), 0.0);
}

TEST(Ensemble, AveragesAcrossRuns) {
  sim::EnsembleAccumulator acc(1.0, 1.0);
  acc.addRun({{0.0, 8.0, 8, 0, 8}});
  acc.addRun({{0.0, 4.0, 4, 0, 4}});
  EXPECT_EQ(acc.runs(), 2);
  EXPECT_DOUBLE_EQ(acc.meanDiscrepancy(0), 6.0);
  EXPECT_DOUBLE_EQ(acc.meanOverloaded(1), 6.0);
}

TEST(Ensemble, RealTrajectoriesMonotone) {
  sim::EnsembleAccumulator acc(0.5, 10.0);
  for (int rep = 0; rep < 10; ++rep) {
    sim::TrajectoryRecorder recorder(0.125);
    core::SimOptions o;
    o.seed = rng::streamSeed(777, rep);
    core::balance(config::allInOne(64, 512), o, Target::perfect(), {}, &recorder);
    acc.addRun(recorder.points());
  }
  for (std::size_t g = 1; g < acc.gridSize(); ++g) {
    EXPECT_LE(acc.meanDiscrepancy(g), acc.meanDiscrepancy(g - 1) + 1e-12);
    EXPECT_LE(acc.meanOverloaded(g), acc.meanOverloaded(g - 1) + 1e-12);
  }
}

TEST(Engines, PerfectStartIsInstant) {
  const auto r =
      core::balance(config::balanced(8, 35), opts(SimOptions::EngineKind::Hybrid, 17));
  EXPECT_TRUE(r.reachedTarget);
  EXPECT_DOUBLE_EQ(r.time, 0.0);
  EXPECT_EQ(r.moves, 0);
}

TEST(Engines, SmallMLessThanN) {
  // Lemma 8 regime: m <= n balances to {0,1} loads.
  const auto r = core::balance(config::allInOne(32, 20), opts(SimOptions::EngineKind::Naive, 18));
  EXPECT_TRUE(r.reachedTarget);
  EXPECT_LE(r.finalState.maxLoad, 1);
}

TEST(Engines, MEqualsOne) {
  const auto r = core::balance(config::allInOne(4, 1), opts(SimOptions::EngineKind::Naive, 19));
  EXPECT_TRUE(r.reachedTarget);
  EXPECT_DOUBLE_EQ(r.time, 0.0);  // one ball anywhere is perfectly balanced
}

TEST(Engines, DistributionMatchesExactCdf) {
  // The definitive engine validation: one-sample KS of simulated balancing
  // times against the EXACT absorption CDF (uniformization) of the chain.
  const Configuration init({7, 3, 1, 1});  // n=4, m=12
  exact::RlsChain chain(4, 12);
  const auto id = chain.stateId(init.loads());
  const auto cdf = [&](double t) { return chain.absorptionCdf(id, t); };
  for (auto kind : {SimOptions::EngineKind::Naive, SimOptions::EngineKind::Jump}) {
    std::vector<double> samples;
    for (int rep = 0; rep < 800; ++rep) {
      samples.push_back(
          core::balancingTime(init, opts(kind, rng::streamSeed(12000 + static_cast<int>(kind), rep))));
    }
    const auto ks = stats::ksOneSample(samples, cdf);
    EXPECT_GT(ks.pValue, 1e-4) << "engine kind " << static_cast<int>(kind)
                               << " KS D = " << ks.statistic;
  }
}

TEST(Engines, HybridMatchesExactChain) {
  const Configuration init({5, 5, 2, 0});  // n=4, m=12
  exact::RlsChain chain(4, 12);
  const double expected = chain.expectedTimeFrom(init);
  stats::RunningStat rs;
  for (int rep = 0; rep < 4000; ++rep) {
    rs.add(core::balancingTime(init,
                               opts(SimOptions::EngineKind::Hybrid, rng::streamSeed(9000, rep))));
  }
  EXPECT_NEAR(rs.mean(), expected, 5.0 * rs.sem());
}

}  // namespace
}  // namespace rlslb
