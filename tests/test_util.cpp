// Unit tests for src/util: formatting, tables, CLI parsing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace rlslb {
namespace {

TEST(FormatSig, BasicRounding) {
  EXPECT_EQ(formatSig(3.14159, 3), "3.14");
  EXPECT_EQ(formatSig(3.14159, 4), "3.142");
  EXPECT_EQ(formatSig(12000.0, 4), "12000");
}

TEST(FormatSig, NegativeValues) { EXPECT_EQ(formatSig(-2.5, 2), "-2.5"); }

TEST(FormatSig, Zero) { EXPECT_EQ(formatSig(0.0, 3), "0"); }

TEST(FormatSig, SubUnitKeepsSignificantDigits) {
  EXPECT_EQ(formatSig(0.25, 2), "0.25");
  EXPECT_EQ(formatSig(0.034, 3), "0.034");
  EXPECT_EQ(formatSig(0.0345, 2), "0.035");
}

TEST(FormatSig, NanAndInf) {
  EXPECT_EQ(formatSig(std::nan(""), 3), "nan");
  EXPECT_EQ(formatSig(std::numeric_limits<double>::infinity(), 3), "inf");
  EXPECT_EQ(formatSig(-std::numeric_limits<double>::infinity(), 3), "-inf");
}

TEST(FormatFixed, Basic) {
  EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(formatFixed(1.0, 3), "1.000");
}

TEST(FormatCount, GroupsThousands) {
  EXPECT_EQ(formatCount(0), "0");
  EXPECT_EQ(formatCount(999), "999");
  EXPECT_EQ(formatCount(1000), "1,000");
  EXPECT_EQ(formatCount(1234567), "1,234,567");
}

TEST(FormatCount, Negative) { EXPECT_EQ(formatCount(-1234567), "-1,234,567"); }

TEST(FormatHuman, Magnitudes) {
  EXPECT_EQ(formatHuman(1500.0), "1.5k");
  EXPECT_EQ(formatHuman(2500000.0), "2.5M");
  EXPECT_EQ(formatHuman(3200000000.0), "3.2G");
  EXPECT_EQ(formatHuman(42.0), "42");
}

TEST(Pad, LeftAndRight) {
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("abcd", 2), "abcd");  // no truncation
}

TEST(Table, AlignsColumns) {
  Table t({"n", "time"});
  t.row().cell(std::int64_t{100}).cell(1.5);
  t.row().cell(std::int64_t{100000}).cell(12.25);
  const std::string s = t.toString();
  EXPECT_NE(s.find("n"), std::string::npos);
  EXPECT_NE(s.find("100,000"), std::string::npos);
  // Every line has equal... at least check row count: header + underline + 2.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(Table, MarkdownShape) {
  Table t({"a", "b"});
  t.row().cell("x").cell("y");
  const std::string md = t.toMarkdown();
  EXPECT_EQ(md.front(), '|');
  EXPECT_EQ(std::count(md.begin(), md.end(), '\n'), 3);
}

TEST(Table, CsvEscaping) {
  Table t({"name", "value"});
  t.row().cell("has,comma").cell("has\"quote");
  const std::string csv = t.toCsv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, AtAccessor) {
  Table t({"a"});
  t.row().cell(std::int64_t{7});
  EXPECT_EQ(t.at(0, 0), "7");
  EXPECT_EQ(t.numRows(), 1u);
  EXPECT_EQ(t.numCols(), 1u);
}

TEST(Table, PrintWithTitle) {
  Table t({"a"});
  t.row().cell("v");
  std::ostringstream os;
  t.print(os, "TITLE");
  EXPECT_EQ(os.str().rfind("TITLE\n", 0), 0u);
}

TEST(Cli, ParsesKeyValue) {
  const char* argv[] = {"prog", "--n=100", "--label=abc"};
  CliArgs args(3, argv);
  EXPECT_EQ(args.getInt("n", 0), 100);
  EXPECT_EQ(args.getString("label", ""), "abc");
}

TEST(Cli, DefaultsWhenMissing) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  EXPECT_EQ(args.getInt("n", 42), 42);
  EXPECT_DOUBLE_EQ(args.getDouble("x", 2.5), 2.5);
  EXPECT_EQ(args.getString("s", "d"), "d");
  EXPECT_FALSE(args.getBool("flag", false));
}

TEST(Cli, BareFlagIsTrue) {
  const char* argv[] = {"prog", "--verbose"};
  CliArgs args(2, argv);
  EXPECT_TRUE(args.getBool("verbose", false));
  EXPECT_TRUE(args.has("verbose"));
}

TEST(Cli, BoolSpellings) {
  const char* argv[] = {"prog", "--a=yes", "--b=off", "--c=1", "--d=false"};
  CliArgs args(5, argv);
  EXPECT_TRUE(args.getBool("a", false));
  EXPECT_FALSE(args.getBool("b", true));
  EXPECT_TRUE(args.getBool("c", false));
  EXPECT_FALSE(args.getBool("d", true));
}

TEST(Cli, TracksUnusedKeys) {
  const char* argv[] = {"prog", "--used=1", "--typo=2"};
  CliArgs args(3, argv);
  (void)args.getInt("used", 0);
  const auto unused = args.unusedKeys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Cli, NegativeNumbers) {
  const char* argv[] = {"prog", "--x=-5", "--y=-2.5"};
  CliArgs args(3, argv);
  EXPECT_EQ(args.getInt("x", 0), -5);
  EXPECT_DOUBLE_EQ(args.getDouble("y", 0.0), -2.5);
}

TEST(Timer, MeasuresNonNegative) {
  WallTimer t;
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_GE(t.millis(), 0.0);
}

using UtilDeathTest = ::testing::Test;

TEST(UtilDeathTest, TableRejectsOverfullRow) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Table t({"only"});
  t.row().cell("a");
  EXPECT_DEATH(t.cell("b"), "too many cells");
}

TEST(UtilDeathTest, TableRejectsIncompleteRowOnNewRow) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Table t({"a", "b"});
  t.row().cell("x");
  EXPECT_DEATH(t.row(), "incomplete");
}

TEST(UtilDeathTest, TableCellBeforeRow) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Table t({"a"});
  EXPECT_DEATH(t.cell("x"), "call row");
}

TEST(UtilDeathTest, CliRejectsMalformedInteger) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const char* argv[] = {"prog", "--n=abc"};
  CliArgs args(2, argv);
  EXPECT_DEATH((void)args.getInt("n", 0), "malformed integer");
}

TEST(UtilDeathTest, CliRejectsPositionalArguments) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const char* argv[] = {"prog", "positional"};
  EXPECT_DEATH(CliArgs(2, argv), "--key");
}

}  // namespace
}  // namespace rlslb
