// Hot-path regression coverage for the batched serving pipeline:
//   - the multi-run contract (each ShardedEventLoop::run() resets its
//     ordinal/epoch counters, so a reused loop draws exactly the streams a
//     fresh loop would);
//   - the zero-allocation claim (steady-state epochs — balanced system,
//     resample-only traffic — perform no heap allocation at all, pinned by
//     a global operator new counting hook);
//   - the deferred-accounting lazy flush (merged-view accessors agree with
//     eager bookkeeping without an explicit flush call).
// The byte-identity of the snapshot-free decision phase and the deferred
// Fenwick/histogram flush against the pre-change behavior is pinned
// separately by the differentials in tests/test_serve_partitioned.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "runner/thread_pool.hpp"
#include "serve/event_loop.hpp"
#include "serve/online_allocator.hpp"
#include "workload/generators.hpp"

// ------------------------------------------------------------------------
// Allocation-counting hook: replaces the replaceable global allocation
// functions for this test binary. Counting is off by default so gtest's
// own bookkeeping never trips it; tests toggle it around the region under
// scrutiny. (Aligned-new overloads fall through to the default library
// implementations; nothing on the serving hot path uses them.)
namespace {
std::atomic<bool> g_countAllocs{false};
std::atomic<std::int64_t> g_allocCount{0};

std::int64_t allocCount() { return g_allocCount.load(std::memory_order_relaxed); }
}  // namespace

void* operator new(std::size_t size) {
  if (size == 0) size = 1;
  if (g_countAllocs.load(std::memory_order_relaxed)) {
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rlslb::serve {
namespace {

// ------------------------------------------------------------------------
// A deterministic steady-state trace: `resamples` resample events cycling
// over a pre-placed universe of `balls` live balls. Fed to a perfectly
// balanced allocator, the strict RLS rule rejects every event from the
// first one on, so every epoch is pure steady state: no load change, no
// structure work, no allocation.
class ResampleOnlyTrace final : public workload::TraceGenerator {
 public:
  ResampleOnlyTrace(std::int64_t balls, std::int64_t resamples)
      : balls_(balls), resamples_(resamples) {}

  bool next(workload::Event* out) override {
    if (emitted_ >= resamples_) return false;
    out->time = static_cast<double>(emitted_);
    out->kind = workload::EventKind::kResample;
    out->ball = emitted_ % balls_;
    out->weight = 0;
    ++emitted_;
    return true;
  }

  [[nodiscard]] std::string name() const override { return "resample-only"; }

 private:
  std::int64_t balls_;
  std::int64_t resamples_;
  std::int64_t emitted_ = 0;
};

// Shifts ball ids by a fixed offset so a second trace consumed by the same
// allocator cannot collide with balls the first trace left live (trace
// generators assign ids from 0).
class OffsetBalls final : public workload::TraceGenerator {
 public:
  OffsetBalls(std::unique_ptr<workload::TraceGenerator> inner, std::int64_t offset)
      : inner_(std::move(inner)), offset_(offset) {}

  bool next(workload::Event* out) override {
    if (!inner_->next(out)) return false;
    out->ball += offset_;
    return true;
  }

  [[nodiscard]] std::string name() const override { return inner_->name(); }

 private:
  std::unique_ptr<workload::TraceGenerator> inner_;
  std::int64_t offset_;
};

std::unique_ptr<workload::TraceGenerator> makePoisson(std::int64_t bins,
                                                      std::int64_t events,
                                                      std::uint64_t seed) {
  workload::OpenTraceOptions base;
  base.bins = bins;
  base.arrivalRatePerBin = 1.0;
  base.departureRate = 0.25;
  base.resampleRate = 1.0;
  base.maxEvents = events;
  return std::make_unique<workload::PoissonTrace>(base, seed);
}

bool countersEqual(const ServeCounters& a, const ServeCounters& b) {
  return a.events == b.events && a.arrivals == b.arrivals &&
         a.departures == b.departures && a.resamples == b.resamples &&
         a.migrations == b.migrations && a.rejectedMoves == b.rejectedMoves &&
         a.repairAttempts == b.repairAttempts &&
         a.repairMigrations == b.repairMigrations;
}

LoopOptions hotpathOptions(ApplyMode mode) {
  LoopOptions options;
  options.shards = 4;
  options.epochEvents = 256;
  options.repairMovesPerEpoch = 4;
  options.seed = 11;
  options.applyMode = mode;
  return options;
}

// ------------------------------------------------------------ multi-run

// A reused loop must behave exactly like a fresh one on the same trace:
// run() resets the event-ordinal and epoch counters that key the decision
// and repair rng streams. Before the reset contract this diverged — the
// second run of a reused loop continued the ordinal sequence and drew
// different streams than a fresh loop.
TEST(MultiRunContract, ReusedLoopMatchesFreshLoopOnTheSecondTrace) {
  for (const ApplyMode mode : {ApplyMode::kSequential, ApplyMode::kPartitioned}) {
    const AllocatorOptions allocOpts{.bins = 24, .arrivalChoices = 2};
    const LoopOptions options = hotpathOptions(mode);
    runner::ThreadPool pool(2);

    // Universe A: one loop reused across both traces.
    OnlineAllocator reusedAlloc(allocOpts);
    ShardedEventLoop reusedLoop(reusedAlloc, options, pool);
    auto traceA1 = makePoisson(24, 2048, 3);
    reusedLoop.run(*traceA1);
    OffsetBalls traceA2(makePoisson(24, 1536, 7), 1'000'000);
    const auto reusedResult = reusedLoop.run(traceA2);

    // Universe B: same allocator lifetime, but a fresh loop per trace.
    OnlineAllocator freshAlloc(allocOpts);
    {
      ShardedEventLoop first(freshAlloc, options, pool);
      auto traceB1 = makePoisson(24, 2048, 3);
      first.run(*traceB1);
    }
    ShardedEventLoop second(freshAlloc, options, pool);
    OffsetBalls traceB2(makePoisson(24, 1536, 7), 1'000'000);
    const auto freshResult = second.run(traceB2);

    const auto m = static_cast<int>(mode);
    EXPECT_EQ(reusedAlloc.loads(), freshAlloc.loads()) << "mode=" << m;
    EXPECT_TRUE(countersEqual(reusedAlloc.counters(), freshAlloc.counters()))
        << "mode=" << m;
    EXPECT_EQ(reusedAlloc.liveBalls(), freshAlloc.liveBalls()) << "mode=" << m;
    EXPECT_EQ(reusedResult.events, freshResult.events) << "mode=" << m;
    EXPECT_EQ(reusedResult.epochs, freshResult.epochs) << "mode=" << m;
    EXPECT_EQ(reusedResult.queue.queuedOps, freshResult.queue.queuedOps) << "mode=" << m;
    EXPECT_EQ(reusedResult.queue.crossShardOps, freshResult.queue.crossShardOps)
        << "mode=" << m;
    EXPECT_TRUE(reusedAlloc.validate()) << "mode=" << m;
  }
}

// ------------------------------------------------------- zero allocation

// Steady-state epochs allocate nothing: against a perfectly balanced
// allocator (built below with explicit placement decisions, so the balance
// is by construction, not by stochastic convergence), a resample-only
// trace is rejected by the strict rule from the first event on. The
// deferred accounting never marks a bin dirty, and all epoch-scoped
// storage (batch, decisions, buckets, queues, parallelFor closures) is
// reused at its first-epoch capacity — so every epoch after the first must
// perform zero heap allocations.
void expectSteadyStateAllocFree(ApplyMode mode, int threads) {
  constexpr std::int64_t kBins = 64;
  constexpr std::int64_t kBalls = 256;  // exactly 4 per bin: gap 0
  constexpr std::int64_t kEpochEvents = 256;
  constexpr std::int64_t kResampleEpochs = 16;

  OnlineAllocator allocator(AllocatorOptions{.bins = kBins, .arrivalChoices = 2});
  for (std::int64_t ball = 0; ball < kBalls; ++ball) {
    workload::Event e;
    e.kind = workload::EventKind::kArrive;
    e.ball = ball;
    e.weight = 1;
    allocator.apply(e, Decision{static_cast<std::int32_t>(ball % kBins)});
  }
  ASSERT_EQ(allocator.gap(), 0);

  runner::ThreadPool pool(threads);
  LoopOptions options = hotpathOptions(mode);
  options.epochEvents = kEpochEvents;
  ShardedEventLoop loop(allocator, options, pool);

  ResampleOnlyTrace trace(kBalls, kEpochEvents * kResampleEpochs);

  // Per-epoch allocation counts, recorded inside the callback. Reserved up
  // front so the recording itself never allocates while counting is live.
  std::vector<std::int64_t> perEpoch;
  perEpoch.reserve(64);
  std::int64_t last = 0;
  g_allocCount.store(0);
  g_countAllocs.store(true);
  const auto result = loop.run(trace, [&](const EpochStats&) {
    const std::int64_t now = allocCount();
    perEpoch.push_back(now - last);
    last = now;
  });
  g_countAllocs.store(false);

  ASSERT_EQ(result.epochs, kResampleEpochs);
  // Steady state by construction: nothing moved, gap stayed 0.
  EXPECT_EQ(allocator.gap(), 0);
  EXPECT_EQ(allocator.counters().migrations, 0);
  EXPECT_EQ(allocator.counters().repairMigrations, 0);
  // Epoch 0 may allocate (buffers grow to capacity, closures are built);
  // every later epoch must be allocation-free.
  ASSERT_EQ(perEpoch.size(), static_cast<std::size_t>(kResampleEpochs));
  for (std::size_t i = 1; i < perEpoch.size(); ++i) {
    EXPECT_EQ(perEpoch[i], 0) << "epoch " << i << " allocated (mode="
                              << static_cast<int>(mode) << ", threads=" << threads
                              << ")";
  }
  EXPECT_TRUE(allocator.validate());
}

TEST(SteadyStateAllocations, FusedPathIsAllocationFree) {
  expectSteadyStateAllocFree(ApplyMode::kSequential, 1);
}

TEST(SteadyStateAllocations, PartitionedPathIsAllocationFree) {
  expectSteadyStateAllocFree(ApplyMode::kPartitioned, 1);
}

TEST(SteadyStateAllocations, PartitionedParallelDrainIsAllocationFree) {
  expectSteadyStateAllocFree(ApplyMode::kPartitioned, 2);
}

// ---------------------------------------------------------- lazy flush

// The deferred accounting must be invisible through the public API: after
// raw apply() calls with no event loop (and therefore no explicit flush),
// the merged views reconcile lazily and agree with first-principles
// bookkeeping.
TEST(DeferredAccounting, AccessorsReconcileWithoutAnExplicitFlush) {
  OnlineAllocator allocator(AllocatorOptions{.bins = 8, .arrivalChoices = 1});
  rng::Xoshiro256pp eng(5);
  const std::vector<std::int64_t>& live = allocator.loads();
  for (std::int64_t ball = 0; ball < 40; ++ball) {
    workload::Event e;
    e.kind = workload::EventKind::kArrive;
    e.ball = ball;
    e.weight = 1 + (ball % 3);
    allocator.apply(e, allocator.decide(e, live, eng));
  }
  std::int64_t lo = live[0];
  std::int64_t hi = live[0];
  std::int64_t total = 0;
  for (const std::int64_t v : live) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    total += v;
  }
  EXPECT_EQ(allocator.minLoad(), lo);
  EXPECT_EQ(allocator.maxLoad(), hi);
  EXPECT_EQ(allocator.gap(), hi - lo);
  EXPECT_EQ(allocator.totalLoad(), total);
  EXPECT_TRUE(allocator.validate());

  // Repartitioning with deltas still pending must not strand them either.
  workload::Event depart;
  depart.kind = workload::EventKind::kDepart;
  depart.ball = 0;
  allocator.apply(depart, Decision{});
  allocator.configurePartitions(4, /*enableRouter=*/true);
  EXPECT_TRUE(allocator.validate());
  EXPECT_EQ(allocator.totalLoad(), total - 1);
}

}  // namespace
}  // namespace rlslb::serve
