// Telemetry-layer coverage (src/obs/):
//   - MetricsRegistry: handle semantics, histogram bucketing, and the
//     merge-determinism contract — per-shard slabs written from parallel
//     workers sum to the same merged values for every shard count and
//     thread count;
//   - the zero-allocation contract with metrics ATTACHED: steady-state
//     serving epochs stay heap-silent while exporting counters, gauges,
//     histograms, and phase timings (registration, the one allocating
//     step, is confined to the first epoch);
//   - semantic transparency: a loop with telemetry attached lands in the
//     byte-identical allocator state as an unobserved loop, and the
//     exported counters agree with the allocator's own ServeCounters;
//   - TraceWriter: Chrome trace-event JSON well-formedness (parsed with
//     report::Json), span containment, per-track worker events, and the
//     compiled-out stub contract (no events, writeTo fails so drivers
//     warn).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "obs/trace.hpp"
#include "report/json.hpp"
#include "runner/thread_pool.hpp"
#include "serve/event_loop.hpp"
#include "serve/online_allocator.hpp"
#include "workload/generators.hpp"

// ------------------------------------------------------------------------
// Allocation-counting hook (same pattern as tests/test_serve_hotpath.cpp):
// replaces the replaceable global allocation functions for this binary;
// counting is toggled around the region under scrutiny only.
namespace {
std::atomic<bool> g_countAllocs{false};
std::atomic<std::int64_t> g_allocCount{0};

std::int64_t allocCount() { return g_allocCount.load(std::memory_order_relaxed); }
}  // namespace

void* operator new(std::size_t size) {
  if (size == 0) size = 1;
  if (g_countAllocs.load(std::memory_order_relaxed)) {
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rlslb::obs {
namespace {

// ------------------------------------------------------------- registry

TEST(MetricsRegistry_, RegistrationIsIdempotentByName) {
  MetricsRegistry m;
  const CounterId a = m.counter("x.events");
  const CounterId b = m.counter("x.events");
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a.index, b.index);
  const GaugeId g1 = m.gauge("x.gap");
  const GaugeId g2 = m.gauge("x.gap");
  EXPECT_EQ(g1.index, g2.index);
  const HistId h1 = m.histogram("x.hist", {1, 2, 4});
  const HistId h2 = m.histogram("x.hist", {1, 2, 4});
  EXPECT_EQ(h1.index, h2.index);
  // Distinct names get distinct handles even across kinds.
  EXPECT_NE(m.counter("x.other").index, a.index);
  EXPECT_FALSE(m.empty());
}

TEST(MetricsRegistry_, HistogramBucketBoundariesAreInclusiveUpperBounds) {
  MetricsRegistry m;
  const HistId h = m.histogram("h", {0, 1, 4});
  // bounds[0] <= v <= bounds[i] lands in bucket i; outside that range the
  // value is counted explicitly instead of clamped into an edge bucket.
  m.observe(h, -3);  // underflow (< bounds[0])
  m.observe(h, 0);   // bucket 0
  m.observe(h, 1);   // bucket 1
  m.observe(h, 2);   // bucket 2 (<= 4)
  m.observe(h, 4);   // bucket 2
  m.observe(h, 5);   // overflow
  m.observe(h, 999); // overflow
  const std::vector<std::int64_t> counts = m.histCounts(h);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 2);
  EXPECT_EQ(m.histUnderflow(h), 1);
  EXPECT_EQ(m.histOverflow(h), 2);
  EXPECT_EQ(m.histTotal(h), 7);
}

TEST(MetricsRegistry_, ClearKeepsRegistrationsResetDropsThem) {
  MetricsRegistry m;
  const CounterId c = m.counter("c");
  const GaugeId g = m.gauge("g");
  const HistId h = m.histogram("h", {8});
  m.add(c, 5);
  m.set(g, 3.5);
  m.observe(h, 2);
  m.configureShards(4);
  m.addShard(3, c, 7);

  m.clear();
  EXPECT_FALSE(m.empty()) << "clear() keeps the registrations";
  EXPECT_EQ(m.shards(), 4) << "clear() keeps the shard layout";
  EXPECT_EQ(m.counterValue(c), 0);
  EXPECT_EQ(m.gaugeValue(g), 0.0);
  EXPECT_EQ(m.histTotal(h), 0);

  m.reset();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.shards(), 1);
}

TEST(MetricsRegistry_, ConfigureShardsGrowthKeepsExistingValues) {
  MetricsRegistry m;
  const CounterId c = m.counter("c");
  m.configureShards(2);
  m.addShard(0, c, 10);
  m.addShard(1, c, 20);
  m.configureShards(8);  // growth: old slabs survive, new ones are zero
  m.addShard(7, c, 3);
  EXPECT_EQ(m.counterValue(c), 33);
}

// The merge-determinism contract: distributing a fixed logical workload
// of increments/observations across S owner shards, written concurrently
// by a pool of T threads, merges to the same totals for every (S, T).
TEST(MetricsRegistry_, MergeIsDeterministicAcrossShardAndThreadCounts) {
  constexpr std::int64_t kOps = 4096;

  // Reference: everything through shard 0, sequentially.
  std::int64_t refCounter = 0;
  MetricsRegistry ref;
  const CounterId refC = ref.counter("c");
  const HistId refH = ref.histogram("h", {4, 16, 64});
  for (std::int64_t i = 0; i < kOps; ++i) {
    ref.add(refC, i % 7);
    ref.observe(refH, i % 100);
    refCounter += i % 7;
  }
  ASSERT_EQ(ref.counterValue(refC), refCounter);

  for (const int shards : {1, 3, 8}) {
    for (const int threads : {1, 2, 4}) {
      MetricsRegistry m;
      const CounterId c = m.counter("c");
      const HistId h = m.histogram("h", {4, 16, 64});
      m.configureShards(shards);
      runner::ThreadPool pool(threads);
      // Shard s owns ops i with i % shards == s -- the same ownership
      // discipline the partitioned apply uses, so concurrent addShard
      // calls never touch the same slab.
      pool.parallelFor(shards, [&](std::int64_t s) {
        const int shard = static_cast<int>(s);
        for (std::int64_t i = shard; i < kOps; i += shards) {
          m.addShard(shard, c, i % 7);
          m.observeShard(shard, h, i % 100);
        }
      });
      EXPECT_EQ(m.counterValue(c), refCounter) << "shards=" << shards
                                               << " threads=" << threads;
      EXPECT_EQ(m.histCounts(h), ref.histCounts(refH))
          << "shards=" << shards << " threads=" << threads;
      EXPECT_EQ(m.histTotal(h), kOps);
      // The snapshot is deterministic too (names in registration order,
      // merged integer values).
      EXPECT_EQ(m.toJson().dump(), ref.toJson().dump())
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

// --------------------------------------------- serving-loop integration

/// Steady-state trace: resample events cycling over pre-placed balls on a
/// perfectly balanced allocator -- the strict RLS rule rejects every move,
/// so epochs after the first do no structural work (the same construction
/// tests/test_serve_hotpath.cpp pins WITHOUT metrics).
class ResampleOnlyTrace final : public workload::TraceGenerator {
 public:
  ResampleOnlyTrace(std::int64_t balls, std::int64_t resamples)
      : balls_(balls), resamples_(resamples) {}

  bool next(workload::Event* out) override {
    if (emitted_ >= resamples_) return false;
    out->time = static_cast<double>(emitted_);
    out->kind = workload::EventKind::kResample;
    out->ball = emitted_ % balls_;
    out->weight = 0;
    ++emitted_;
    return true;
  }

  [[nodiscard]] std::string name() const override { return "resample-only"; }

 private:
  std::int64_t balls_;
  std::int64_t resamples_;
  std::int64_t emitted_ = 0;
};

serve::OnlineAllocator makeBalancedAllocator(std::int64_t bins, std::int64_t balls) {
  serve::OnlineAllocator allocator(
      serve::AllocatorOptions{.bins = bins, .arrivalChoices = 2});
  for (std::int64_t ball = 0; ball < balls; ++ball) {
    workload::Event e;
    e.kind = workload::EventKind::kArrive;
    e.ball = ball;
    e.weight = 1;
    allocator.apply(e, serve::Decision{static_cast<std::int32_t>(ball % bins)});
  }
  return allocator;
}

// Metrics attached, steady state: epochs after the first allocate nothing.
// Registration (name -> handle, slab layout) is the only allocating step
// and must be folded into epoch 0 / setup.
TEST(MetricsHotPath, SteadyStateEpochsAreAllocationFreeWithMetricsAttached) {
  for (const int threads : {1, 2}) {
    constexpr std::int64_t kEpochEvents = 256;
    constexpr std::int64_t kEpochs = 16;
    serve::OnlineAllocator allocator = makeBalancedAllocator(64, 256);
    ASSERT_EQ(allocator.gap(), 0);

    runner::ThreadPool pool(threads);
    MetricsRegistry metrics;
    serve::LoopOptions options;
    options.shards = 4;
    options.epochEvents = kEpochEvents;
    options.repairMovesPerEpoch = 4;
    options.seed = 11;
    options.applyMode = serve::ApplyMode::kPartitioned;
    options.metrics = &metrics;
    serve::ShardedEventLoop loop(allocator, options, pool);

    ResampleOnlyTrace trace(256, kEpochEvents * kEpochs);
    std::vector<std::int64_t> perEpoch;
    perEpoch.reserve(64);
    std::int64_t last = 0;
    g_allocCount.store(0);
    g_countAllocs.store(true);
    const auto result = loop.run(trace, [&](const serve::EpochStats&) {
      const std::int64_t now = allocCount();
      perEpoch.push_back(now - last);
      last = now;
    });
    g_countAllocs.store(false);

    ASSERT_EQ(result.epochs, kEpochs);
    ASSERT_EQ(perEpoch.size(), static_cast<std::size_t>(kEpochs));
    for (std::size_t i = 1; i < perEpoch.size(); ++i) {
      EXPECT_EQ(perEpoch[i], 0)
          << "epoch " << i << " allocated with metrics attached (threads=" << threads
          << ")";
    }
    // The export is live: every event and epoch was counted.
    EXPECT_EQ(metrics.counterValue(metrics.counter("serve.events")),
              kEpochEvents * kEpochs);
    EXPECT_EQ(metrics.counterValue(metrics.counter("serve.epochs")), kEpochs);
    EXPECT_EQ(metrics.histTotal(metrics.histogram(
                  "serve.epoch_gap", {0, 1, 2, 4, 8, 16, 32, 64, 128})),
              kEpochs);
  }
}

// The full observability stack live -- metrics (including the epoch-ns
// quantile sketch) AND the conformance roster (conservation, gap envelope,
// drift with its CUSUM) -- must keep steady-state epochs heap-silent.
TEST(MetricsHotPath, SteadyStateEpochsAreAllocationFreeWithMonitorsAttached) {
  constexpr std::int64_t kEpochEvents = 256;
  constexpr std::int64_t kEpochs = 16;
  serve::OnlineAllocator allocator = makeBalancedAllocator(64, 256);
  ASSERT_EQ(allocator.gap(), 0);

  runner::ThreadPool pool(2);
  MetricsRegistry metrics;
  MonitorSet monitors;
  ServeConformanceParams conformance;
  conformance.n = 64;
  conformance.expectedBalls = 256;
  conformance.d = 2;
  conformance.totalEpochs = kEpochs;
  installServeMonitors(monitors, conformance);
  monitors.beginRun();

  serve::LoopOptions options;
  options.shards = 4;
  options.epochEvents = kEpochEvents;
  options.repairMovesPerEpoch = 4;
  options.seed = 11;
  options.applyMode = serve::ApplyMode::kPartitioned;
  options.metrics = &metrics;
  options.monitors = &monitors;
  serve::ShardedEventLoop loop(allocator, options, pool);

  ResampleOnlyTrace trace(256, kEpochEvents * kEpochs);
  std::vector<std::int64_t> perEpoch;
  perEpoch.reserve(64);
  std::int64_t last = 0;
  g_allocCount.store(0);
  g_countAllocs.store(true);
  const auto result = loop.run(trace, [&](const serve::EpochStats&) {
    const std::int64_t now = allocCount();
    perEpoch.push_back(now - last);
    last = now;
  });
  g_countAllocs.store(false);

  ASSERT_EQ(result.epochs, kEpochs);
  for (std::size_t i = 1; i < perEpoch.size(); ++i) {
    EXPECT_EQ(perEpoch[i], 0)
        << "epoch " << i << " allocated with monitors + sketches attached";
  }
  // The roster was live (every epoch checked, the sketch fed) and the
  // balanced steady state is healthy: no anomalies.
  EXPECT_EQ(monitors.checks(), kEpochs);
  EXPECT_EQ(monitors.gapSketch().count(), kEpochs);
  EXPECT_EQ(monitors.log().total(), 0);
}

// Telemetry must be semantically invisible: the observed loop lands in the
// byte-identical allocator state, and the exported counters agree with the
// allocator's own ServeCounters.
TEST(MetricsHotPath, AttachedMetricsDoNotPerturbTheRunAndAgreeWithCounters) {
  const auto runOnce = [](MetricsRegistry* metrics) {
    workload::OpenTraceOptions base;
    base.bins = 32;
    base.arrivalRatePerBin = 1.0;
    base.departureRate = 0.25;
    base.resampleRate = 1.0;
    base.maxEvents = 4096;
    workload::PoissonTrace trace(base, 17);
    serve::OnlineAllocator allocator(
        serve::AllocatorOptions{.bins = 32, .arrivalChoices = 2});
    runner::ThreadPool pool(2);
    serve::LoopOptions options;
    options.shards = 8;
    options.epochEvents = 512;
    options.repairMovesPerEpoch = 4;
    options.seed = 5;
    options.applyMode = serve::ApplyMode::kPartitioned;
    options.metrics = metrics;
    serve::ShardedEventLoop loop(allocator, options, pool);
    const auto result = loop.run(trace);
    return std::make_pair(allocator.loads(),
                          std::make_pair(allocator.counters(), result.queue));
  };

  MetricsRegistry metrics;
  const auto observed = runOnce(&metrics);
  const auto plain = runOnce(nullptr);
  EXPECT_EQ(observed.first, plain.first) << "metrics changed the run's outcome";

  const serve::ServeCounters& c = observed.second.first;
  EXPECT_EQ(metrics.counterValue(metrics.counter("serve.events")), c.events);
  EXPECT_EQ(metrics.counterValue(metrics.counter("serve.arrivals")), c.arrivals);
  EXPECT_EQ(metrics.counterValue(metrics.counter("serve.departures")), c.departures);
  EXPECT_EQ(metrics.counterValue(metrics.counter("serve.migrations")), c.migrations);
  EXPECT_EQ(metrics.counterValue(metrics.counter("serve.rejected_moves")),
            c.rejectedMoves);
  EXPECT_EQ(metrics.counterValue(metrics.counter("serve.repair_migrations")),
            c.repairMigrations);
  const serve::QueueStats& q = observed.second.second;
  EXPECT_EQ(metrics.counterValue(metrics.counter("serve.queued_ops")), q.queuedOps);
  EXPECT_EQ(metrics.counterValue(metrics.counter("serve.cross_shard_ops")),
            q.crossShardOps);
  // Every queued op is drained exactly once across the shard drains.
  EXPECT_EQ(metrics.counterValue(metrics.counter("serve.drained_ops")), q.queuedOps);
}

// ---------------------------------------------------------------- trace

TEST(Trace, NowUsIsMonotonicEvenWhenTracingIsCompiledOut) {
  const double a = nowUs();
  const double b = nowUs();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(Trace, CompiledOutStubIsInertSoDriversCanWarn) {
  if (kTracingCompiledIn) GTEST_SKIP() << "tracing compiled in";
  TraceWriter w;
  {
    const Span s(&w, "outer");
    w.counter("c", "v", 0.0, 1.0);
  }
  EXPECT_EQ(w.eventCount(), 0u);
  std::ostringstream out;
  EXPECT_FALSE(w.writeTo(out)) << "stub writeTo must fail so --trace-out warns";
  EXPECT_TRUE(out.str().empty());
}

TEST(Trace, JsonIsWellFormedWithContainedSpansAndWorkerTracks) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  TraceWriter w(8);
  {
    const Span outer(&w, "outer", "epoch");
    {
      const Span inner(&w, "inner");  // default category "phase"
    }
    w.counter("lane", "value", nowUs(), 42.0);
  }
  // A worker-track event, as ThreadPool records per-job spans.
  runner::ThreadPool pool(2);
  pool.setTraceWriter(&w);
  pool.setTraceLabel("job_span");
  pool.parallelFor(64, [](std::int64_t) {});
  pool.setTraceWriter(nullptr);

  std::ostringstream out;
  ASSERT_TRUE(w.writeTo(out));
  std::string error;
  const report::Json doc = report::Json::parse(out.str(), &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_TRUE(doc.isObject());
  const report::Json& events = doc.at("traceEvents");
  ASSERT_TRUE(events.isArray());
  // Every recorded event plus the process_name meta and one thread_name
  // meta per non-empty track.
  ASSERT_GE(events.size(), w.eventCount() + 2u);

  double outerTs = -1.0, outerEnd = -1.0, innerTs = -1.0, innerEnd = -1.0;
  bool sawCounter = false;
  bool sawJobSpan = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const report::Json& e = events.at(i);
    ASSERT_TRUE(e.isObject());
    const std::string& ph = e.at("ph").asString();
    ASSERT_TRUE(e.find("name") != nullptr);
    if (ph == "M") continue;
    ASSERT_TRUE(e.find("ts") != nullptr);
    ASSERT_TRUE(e.find("tid") != nullptr);
    const std::string& name = e.at("name").asString();
    if (ph == "X") {
      ASSERT_TRUE(e.find("dur") != nullptr);
      if (name == "outer") {
        outerTs = e.at("ts").asDouble();
        outerEnd = outerTs + e.at("dur").asDouble();
        EXPECT_EQ(e.at("cat").asString(), "epoch");
        EXPECT_EQ(e.at("tid").asInt(), 0);
      } else if (name == "inner") {
        innerTs = e.at("ts").asDouble();
        innerEnd = innerTs + e.at("dur").asDouble();
        EXPECT_EQ(e.at("cat").asString(), "phase");
      } else if (name == "job_span") {
        sawJobSpan = true;
      }
    } else if (ph == "C") {
      EXPECT_EQ(e.at("args").at("value").asDouble(), 42.0);
      sawCounter = true;
    }
  }
  ASSERT_GE(outerTs, 0.0);
  ASSERT_GE(innerTs, 0.0);
  // Span nesting: the inner phase lies inside the outer epoch span.
  EXPECT_GE(innerTs, outerTs);
  EXPECT_LE(innerEnd, outerEnd);
  EXPECT_TRUE(sawCounter);
  EXPECT_TRUE(sawJobSpan);
}

// Runtime-off contract: a loop with tracing compiled in but no writer
// attached emits nothing (the writer stays empty), while the attached
// writer captures the per-phase spans the acceptance criteria name.
TEST(Trace, ServingLoopEmitsPhaseSpansOnlyWhenAttached) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  const auto runOnce = [](TraceWriter* trace) {
    workload::OpenTraceOptions base;
    base.bins = 32;
    base.arrivalRatePerBin = 1.0;
    base.departureRate = 0.25;
    base.resampleRate = 1.0;
    base.maxEvents = 2048;
    workload::PoissonTrace traceGen(base, 23);
    serve::OnlineAllocator allocator(
        serve::AllocatorOptions{.bins = 32, .arrivalChoices = 2});
    runner::ThreadPool pool(2);
    serve::LoopOptions options;
    options.shards = 8;
    options.epochEvents = 512;
    options.seed = 5;
    options.applyMode = serve::ApplyMode::kPartitioned;
    options.trace = trace;
    serve::ShardedEventLoop loop(allocator, options, pool);
    loop.run(traceGen);
    return allocator.loads();
  };

  TraceWriter attached;
  const auto tracedLoads = runOnce(&attached);
  const auto plainLoads = runOnce(nullptr);
  EXPECT_EQ(tracedLoads, plainLoads) << "tracing changed the run's outcome";
  EXPECT_GT(attached.eventCount(), 0u);

  std::ostringstream out;
  ASSERT_TRUE(attached.writeTo(out));
  const std::string doc = out.str();
  for (const char* phase : {"\"epoch\"", "\"decide\"", "\"resolve\"", "\"drain\"",
                            "\"repair\"", "\"flush\""}) {
    EXPECT_NE(doc.find(phase), std::string::npos) << "missing span " << phase;
  }
}

}  // namespace
}  // namespace rlslb::obs
