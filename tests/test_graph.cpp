// Tests for src/graph: topology constructors, neighbor sampling, spectral
// gap, and RLS on graphs (Section 7 extension).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "config/generators.hpp"
#include "config/metrics.hpp"
#include "graph/graph_engine.hpp"
#include "graph/topology.hpp"
#include "rng/splitmix64.hpp"
#include "sim/engine.hpp"
#include "sim/naive_engine.hpp"
#include "stats/running_stat.hpp"
#include "stats/tests.hpp"

#ifndef M_PI
#define M_PI 3.14159265358979323846
#endif

namespace rlslb::graph {
namespace {

TEST(Topology, CompleteImplicit) {
  const auto g = Topology::complete(10);
  EXPECT_EQ(g.numVertices(), 10);
  EXPECT_EQ(g.numEdges(), 45);
  EXPECT_EQ(g.degree(3), 9);
  EXPECT_TRUE(g.isComplete());
  EXPECT_TRUE(g.isConnected());
  EXPECT_TRUE(g.isRegular());
}

TEST(Topology, CompleteNeighborEnumeration) {
  const auto g = Topology::complete(5);
  std::set<std::int64_t> nbrs;
  for (std::int64_t k = 0; k < g.degree(2); ++k) nbrs.insert(g.neighbor(2, k));
  EXPECT_EQ(nbrs, (std::set<std::int64_t>{0, 1, 3, 4}));
}

TEST(Topology, CycleStructure) {
  const auto g = Topology::cycle(6);
  EXPECT_EQ(g.numEdges(), 6);
  EXPECT_TRUE(g.isRegular());
  EXPECT_EQ(g.degree(0), 2);
  std::set<std::int64_t> nbrs = {g.neighbor(0, 0), g.neighbor(0, 1)};
  EXPECT_EQ(nbrs, (std::set<std::int64_t>{1, 5}));
  EXPECT_TRUE(g.isConnected());
}

TEST(Topology, PathEndpoints) {
  const auto g = Topology::path(5);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(4), 1);
  EXPECT_EQ(g.degree(2), 2);
  EXPECT_FALSE(g.isRegular());
  EXPECT_TRUE(g.isConnected());
}

TEST(Topology, TorusIsFourRegular) {
  const auto g = Topology::torus(4, 5);
  EXPECT_EQ(g.numVertices(), 20);
  EXPECT_TRUE(g.isRegular());
  EXPECT_EQ(g.degree(7), 4);
  EXPECT_EQ(g.numEdges(), 40);
  EXPECT_TRUE(g.isConnected());
}

TEST(Topology, HypercubeStructure) {
  const auto g = Topology::hypercube(4);
  EXPECT_EQ(g.numVertices(), 16);
  EXPECT_TRUE(g.isRegular());
  EXPECT_EQ(g.degree(0), 4);
  EXPECT_EQ(g.numEdges(), 32);
  EXPECT_TRUE(g.isConnected());
  // Neighbors differ in exactly one bit.
  for (std::int64_t k = 0; k < 4; ++k) {
    const std::int64_t u = g.neighbor(5, k);
    const std::int64_t diff = u ^ 5;
    EXPECT_EQ(diff & (diff - 1), 0);
  }
}

TEST(Topology, StarHub) {
  const auto g = Topology::star(8);
  EXPECT_EQ(g.degree(0), 7);
  for (std::int64_t v = 1; v < 8; ++v) EXPECT_EQ(g.degree(v), 1);
  EXPECT_TRUE(g.isConnected());
  EXPECT_FALSE(g.isRegular());
}

TEST(Topology, CompleteBipartite) {
  const auto g = Topology::completeBipartite(3, 4);
  EXPECT_EQ(g.numVertices(), 7);
  EXPECT_EQ(g.numEdges(), 12);
  EXPECT_EQ(g.degree(0), 4);
  EXPECT_EQ(g.degree(5), 3);
  EXPECT_TRUE(g.isConnected());
}

TEST(Topology, RandomRegularIsSimpleAndRegular) {
  rng::Xoshiro256pp eng(1);
  const auto g = Topology::randomRegular(30, 4, eng);
  EXPECT_TRUE(g.isRegular());
  EXPECT_EQ(g.degree(0), 4);
  EXPECT_EQ(g.numEdges(), 60);
  // Simple: no vertex lists a neighbor twice (fromEdges dedups, so degree
  // would drop below 4 if the model produced duplicates).
  for (std::int64_t v = 0; v < 30; ++v) {
    std::set<std::int64_t> nbrs;
    for (std::int64_t k = 0; k < g.degree(v); ++k) {
      const auto u = g.neighbor(v, k);
      EXPECT_NE(u, v);
      EXPECT_TRUE(nbrs.insert(u).second);
    }
  }
}

TEST(Topology, ErdosRenyiEdgeCountConcentration) {
  rng::Xoshiro256pp eng(2);
  const std::int64_t n = 200;
  const double p = 0.1;
  stats::RunningStat rs;
  for (int rep = 0; rep < 30; ++rep) {
    rs.add(static_cast<double>(Topology::erdosRenyi(n, p, eng).numEdges()));
  }
  const double expected = p * static_cast<double>(n * (n - 1) / 2);
  EXPECT_NEAR(rs.mean(), expected, 0.05 * expected);
}

TEST(Topology, ErdosRenyiExtremes) {
  rng::Xoshiro256pp eng(3);
  EXPECT_EQ(Topology::erdosRenyi(20, 0.0, eng).numEdges(), 0);
  EXPECT_EQ(Topology::erdosRenyi(20, 1.0, eng).numEdges(), 190);
}

TEST(Topology, FromEdgesDedupsAndDropsSelfLoops) {
  const auto g = Topology::fromEdges(4, {{0, 1}, {1, 0}, {2, 2}, {1, 2}});
  EXPECT_EQ(g.numEdges(), 2);
  EXPECT_EQ(g.degree(2), 1);
}

TEST(Topology, SampleNeighborUniform) {
  rng::Xoshiro256pp eng(4);
  const auto g = Topology::cycle(5);
  std::vector<std::int64_t> counts(5, 0);
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) ++counts[static_cast<std::size_t>(g.sampleNeighbor(0, eng))];
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[2], 0);
  EXPECT_EQ(counts[3], 0);
  const std::vector<std::int64_t> obs = {counts[1], counts[4]};
  const std::vector<double> expected(2, kDraws / 2.0);
  EXPECT_GT(stats::chiSquareGof(obs, expected).pValue, 1e-4);
}

TEST(Topology, SampleNeighborCompleteExcludesSelf) {
  rng::Xoshiro256pp eng(5);
  const auto g = Topology::complete(6);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(g.sampleNeighbor(3, eng), 3);
}

TEST(Topology, DisconnectedDetected) {
  const auto g = Topology::fromEdges(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(g.isConnected());
}

TEST(Topology, DiameterClosedForms) {
  EXPECT_EQ(Topology::complete(10).diameter(), 1);
  EXPECT_EQ(Topology::cycle(10).diameter(), 5);
  EXPECT_EQ(Topology::cycle(11).diameter(), 5);
  EXPECT_EQ(Topology::path(7).diameter(), 6);
  EXPECT_EQ(Topology::hypercube(5).diameter(), 5);
  EXPECT_EQ(Topology::star(9).diameter(), 2);
  EXPECT_EQ(Topology::torus(4, 6).diameter(), 2 + 3);
  EXPECT_EQ(Topology::completeBipartite(3, 4).diameter(), 2);
}

TEST(Topology, DiameterDisconnectedIsMinusOne) {
  const auto g = Topology::fromEdges(4, {{0, 1}, {2, 3}});
  EXPECT_EQ(g.diameter(), -1);
}

TEST(SpectralGap, OrderingMatchesMixing) {
  // Complete graph mixes best, hypercube next, cycle worst.
  rng::Xoshiro256pp eng(6);
  const auto cyc = Topology::cycle(64);
  const auto hyp = Topology::hypercube(6);
  const double gCyc = cyc.spectralGapRegular(3000, eng);
  const double gHyp = hyp.spectralGapRegular(3000, eng);
  EXPECT_GT(gHyp, gCyc);
  EXPECT_GT(gCyc, 0.0);
}

TEST(SpectralGap, CycleMatchesClosedForm) {
  // Lazy-walk second eigenvalue of C_n: (1 + cos(2 pi / n)) / 2.
  rng::Xoshiro256pp eng(7);
  const std::int64_t n = 32;
  const auto g = Topology::cycle(n);
  const double expected = 1.0 - (1.0 + std::cos(2.0 * M_PI / static_cast<double>(n))) / 2.0;
  EXPECT_NEAR(g.spectralGapRegular(20000, eng), expected, 0.002);
}

// -------------------------------------------------------------- RLS on G

TEST(GraphRls, CompleteGraphMatchesClassicRlsDistribution) {
  // On K_n the graph protocol samples a uniform *other* bin; the classic
  // protocol samples uniform including self (a no-op). The configuration
  // chains are identical up to activation thinning, so balancing *times*
  // differ only by the n/(n-1) clock factor -- negligible at n=16; compare
  // distributions with a tolerant KS test.
  const auto init = config::allInOne(16, 64);
  const auto topo = Topology::complete(16);
  std::vector<double> graphTimes;
  std::vector<double> classicTimes;
  for (int rep = 0; rep < 600; ++rep) {
    GraphRlsEngine ge(init, topo, rng::streamSeed(30, rep));
    graphTimes.push_back(sim::runUntil(ge, sim::Target::perfect()).time);
    sim::NaiveEngine ne(init, rng::streamSeed(31, rep));
    classicTimes.push_back(sim::runUntil(ne, sim::Target::perfect()).time);
  }
  // The graph protocol never wastes an activation on a self-sample, so it
  // runs faster by exactly n/(n-1); rescale to compare.
  for (auto& t : graphTimes) t *= 16.0 / 15.0;
  EXPECT_GT(stats::ksTwoSample(graphTimes, classicTimes).pValue, 1e-4);
}

TEST(GraphRls, InvariantsOnCycle) {
  const auto topo = Topology::cycle(12);
  GraphRlsEngine engine(config::allInOne(12, 60), topo, 8);
  std::int64_t lastMax = engine.state().maxLoad;
  std::int64_t lastMin = engine.state().minLoad;
  for (int i = 0; i < 20000; ++i) {
    engine.step();
    EXPECT_LE(engine.state().maxLoad, lastMax);
    EXPECT_GE(engine.state().minLoad, lastMin);
    lastMax = engine.state().maxLoad;
    lastMin = engine.state().minLoad;
  }
  std::int64_t total = 0;
  for (auto v : engine.loads()) total += v;
  EXPECT_EQ(total, 60);
}

TEST(GraphRls, ReachesPerfectBalanceOnConnectedGraphs) {
  for (int which = 0; which < 4; ++which) {
    rng::Xoshiro256pp topoEng(static_cast<std::uint64_t>(40 + which));
    const Topology topo = [&]() -> Topology {
      switch (which) {
        case 0:
          return Topology::cycle(16);
        case 1:
          return Topology::torus(4, 4);
        case 2:
          return Topology::hypercube(4);
        default:
          return Topology::randomRegular(16, 3, topoEng);
      }
    }();
    GraphRlsEngine engine(config::allInOne(16, 80), topo, 50 + which);
    const auto r = sim::runUntil(engine, sim::Target::perfect(),
                                 {.maxTime = 1e9, .maxEvents = 50'000'000});
    EXPECT_TRUE(r.reachedTarget) << "topology " << which;
  }
}

TEST(GraphRls, CycleSlowerThanComplete) {
  const auto init = config::allInOne(32, 160);
  stats::RunningStat cycleT;
  stats::RunningStat completeT;
  const auto cyc = Topology::cycle(32);
  const auto kn = Topology::complete(32);
  for (int rep = 0; rep < 60; ++rep) {
    GraphRlsEngine a(init, cyc, rng::streamSeed(60, rep));
    cycleT.add(sim::runUntil(a, sim::Target::perfect()).time);
    GraphRlsEngine b(init, kn, rng::streamSeed(61, rep));
    completeT.add(sim::runUntil(b, sim::Target::perfect()).time);
  }
  EXPECT_GT(cycleT.mean(), completeT.mean());
}

TEST(GraphRls, StarBalances) {
  // The star's hub is a bottleneck but m <= n settles into {0,1} loads.
  const auto topo = Topology::star(16);
  GraphRlsEngine engine(config::allInOne(16, 10), topo, 70);
  const auto r = sim::runUntil(engine, sim::Target::perfect(),
                               {.maxTime = 1e9, .maxEvents = 10'000'000});
  EXPECT_TRUE(r.reachedTarget);
  EXPECT_LE(engine.state().maxLoad, 1);
}

// Property sweep: every topology keeps the RLS monotonicity invariants and
// conserves mass; connected ones reach perfect balance.
class TopologyInvariants : public ::testing::TestWithParam<int> {
 public:
  static Topology make(int which) {
    rng::Xoshiro256pp eng(static_cast<std::uint64_t>(which) + 900);
    switch (which) {
      case 0:
        return Topology::complete(20);
      case 1:
        return Topology::cycle(20);
      case 2:
        return Topology::path(20);
      case 3:
        return Topology::torus(4, 5);
      case 4:
        return Topology::hypercube(4) /* n=16 */;
      case 5:
        return Topology::star(20);
      case 6:
        return Topology::completeBipartite(10, 10);
      default:
        return Topology::randomRegular(20, 3, eng);
    }
  }
};

TEST_P(TopologyInvariants, RlsInvariantsAndConvergence) {
  const Topology topo = make(GetParam());
  const std::int64_t n = topo.numVertices();
  const std::int64_t m = 5 * n;
  GraphRlsEngine engine(config::allInOne(n, m), topo, 777 + static_cast<std::uint64_t>(GetParam()));
  std::int64_t lastMax = engine.state().maxLoad;
  std::int64_t lastMin = engine.state().minLoad;
  std::int64_t steps = 0;
  while (!engine.state().perfectlyBalanced() && steps < 30'000'000) {
    engine.step();
    ++steps;
    ASSERT_LE(engine.state().maxLoad, lastMax);
    ASSERT_GE(engine.state().minLoad, lastMin);
    lastMax = engine.state().maxLoad;
    lastMin = engine.state().minLoad;
  }
  EXPECT_TRUE(engine.state().perfectlyBalanced()) << topo.name();
  std::int64_t total = 0;
  for (auto v : engine.loads()) total += v;
  EXPECT_EQ(total, m);
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, TopologyInvariants, ::testing::Range(0, 8));

TEST(GraphRls, ActivationAccounting) {
  const auto topo = Topology::torus(3, 3);
  GraphRlsEngine engine(config::allInOne(9, 27), topo, 71);
  for (int i = 0; i < 500; ++i) engine.step();
  EXPECT_EQ(engine.activations(), 500);
  EXPECT_LE(engine.moves(), engine.activations());
}

}  // namespace
}  // namespace rlslb::graph
