// Unit tests for ds::FlatMap64, the open-addressing map under the serving
// hot path. The interesting failure modes of a linear-probing table with
// backward-shift deletion are all about displaced entries — a key that did
// not get its home slot must stay reachable across arbitrary interleaved
// erases — so the core test is a randomized differential against
// std::unordered_map under heavy churn, plus targeted shapes (sequential
// id windows, wrap-around clusters) that mirror how ball ids actually
// arrive and depart.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ds/flat_map.hpp"
#include "rng/xoshiro256pp.hpp"

namespace rlslb {
namespace {

struct Rec {
  std::int32_t bin = 0;
  std::int64_t weight = 0;
  bool operator==(const Rec& o) const { return bin == o.bin && weight == o.weight; }
};

// Pull every entry out through forEach and compare against the reference
// map, both directions.
void expectSameContents(const ds::FlatMap64<Rec>& map,
                        const std::unordered_map<std::int64_t, Rec>& ref) {
  ASSERT_EQ(map.size(), ref.size());
  std::size_t seen = 0;
  map.forEach([&](std::int64_t key, const Rec& value) {
    ++seen;
    const auto it = ref.find(key);
    ASSERT_NE(it, ref.end()) << "key " << key << " not in reference";
    EXPECT_EQ(value, it->second);
  });
  EXPECT_EQ(seen, ref.size());
}

TEST(FlatMap64, EmplaceFindEraseBasics) {
  ds::FlatMap64<Rec> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(7), nullptr);

  auto [v, inserted] = map.emplace(7, Rec{3, 10});
  EXPECT_TRUE(inserted);
  EXPECT_EQ(v->bin, 3);
  EXPECT_EQ(map.size(), 1u);

  // Duplicate emplace keeps the existing value.
  auto [v2, again] = map.emplace(7, Rec{9, 99});
  EXPECT_FALSE(again);
  EXPECT_EQ(v2->bin, 3);
  EXPECT_EQ(map.size(), 1u);

  // Mutation through the returned pointer sticks.
  v2->bin = 5;
  EXPECT_EQ(map.at(7).bin, 5);

  map.erase(map.find(7));
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(7), nullptr);
}

TEST(FlatMap64, GrowthKeepsEveryEntry) {
  ds::FlatMap64<Rec> map;
  constexpr std::int64_t kCount = 10'000;  // forces many rehashes from cap 16
  for (std::int64_t k = 0; k < kCount; ++k) {
    ASSERT_TRUE(map.emplace(k, Rec{static_cast<std::int32_t>(k % 97), k}).second);
  }
  ASSERT_EQ(map.size(), static_cast<std::size_t>(kCount));
  for (std::int64_t k = 0; k < kCount; ++k) {
    const Rec* r = map.find(k);
    ASSERT_NE(r, nullptr) << "key " << k << " lost across growth";
    EXPECT_EQ(r->weight, k);
  }
  EXPECT_EQ(map.find(kCount), nullptr);
  EXPECT_EQ(map.find(-1), nullptr);
}

// The serving id pattern: a sliding window of sequential ball ids — new
// ids arrive at the top, old ids depart from the bottom. Erasing the
// oldest key repeatedly is exactly the shape that punishes tombstone
// schemes and stresses backward shift.
TEST(FlatMap64, SlidingSequentialWindow) {
  ds::FlatMap64<Rec> map;
  std::unordered_map<std::int64_t, Rec> ref;
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  for (; hi < 512; ++hi) {
    map.emplace(hi, Rec{0, hi});
    ref.emplace(hi, Rec{0, hi});
  }
  // Slide the window far enough that home slots wrap the table repeatedly.
  for (int step = 0; step < 20'000; ++step) {
    map.emplace(hi, Rec{0, hi});
    ref.emplace(hi, Rec{0, hi});
    ++hi;
    Rec* oldest = map.find(lo);
    ASSERT_NE(oldest, nullptr);
    map.erase(oldest);
    ref.erase(lo);
    ++lo;
  }
  expectSameContents(map, ref);
}

TEST(FlatMap64, RandomizedDifferentialChurn) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    ds::FlatMap64<Rec> map;
    std::unordered_map<std::int64_t, Rec> ref;
    rng::Xoshiro256pp eng(seed);
    for (int op = 0; op < 200'000; ++op) {
      const std::uint64_t r = eng.next();
      // Small key universe so inserts collide with live keys and erases
      // hit displaced entries often.
      const auto key = static_cast<std::int64_t>(r % 4096);
      switch ((r >> 32) % 3) {
        case 0: {  // insert
          const Rec rec{static_cast<std::int32_t>(r % 100), static_cast<std::int64_t>(op)};
          EXPECT_EQ(map.emplace(key, rec).second, ref.emplace(key, rec).second);
          break;
        }
        case 1: {  // erase if present
          Rec* found = map.find(key);
          const auto it = ref.find(key);
          ASSERT_EQ(found == nullptr, it == ref.end());
          if (found != nullptr) {
            map.erase(found);
            ref.erase(it);
          }
          break;
        }
        default: {  // lookup
          const Rec* found = map.find(key);
          const auto it = ref.find(key);
          ASSERT_EQ(found == nullptr, it == ref.end());
          if (found != nullptr) {
            EXPECT_EQ(*found, it->second);
          }
          break;
        }
      }
    }
    expectSameContents(map, ref);
  }
}

TEST(FlatMap64, ClearRetainsCapacityAndDropsEntries) {
  ds::FlatMap64<Rec> map;
  for (std::int64_t k = 0; k < 100; ++k) map.emplace(k, Rec{1, k});
  map.clear();
  EXPECT_TRUE(map.empty());
  for (std::int64_t k = 0; k < 100; ++k) EXPECT_EQ(map.find(k), nullptr);
  // Reusable after clear.
  map.emplace(42, Rec{7, 7});
  EXPECT_EQ(map.at(42).bin, 7);
}

TEST(FlatMap64, ReserveAvoidsRehashDuringFill) {
  ds::FlatMap64<Rec> map;
  map.reserve(5000);
  // Pointers stay stable while size stays under the reserved headroom and
  // nothing is erased (no growth, no backward shift).
  auto [first, inserted] = map.emplace(1, Rec{1, 1});
  ASSERT_TRUE(inserted);
  for (std::int64_t k = 2; k <= 5000; ++k) map.emplace(k, Rec{0, k});
  EXPECT_EQ(first->weight, 1);
  EXPECT_EQ(map.size(), 5000u);
}

TEST(FlatMap64, NegativeAndHugeKeys) {
  ds::FlatMap64<Rec> map;
  const std::vector<std::int64_t> keys = {-1, -4096, INT64_MAX, INT64_MIN + 1, 0,
                                          1'000'000'000'000LL};
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(map.emplace(keys[i], Rec{static_cast<std::int32_t>(i), 0}).second);
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const Rec* r = map.find(keys[i]);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->bin, static_cast<std::int32_t>(i));
  }
}

}  // namespace
}  // namespace rlslb
