// report/: JSON value/writer/parser and the JSONL ResultSink.
//
// The report layer is the substrate CI diffs run-over-run, so these tests
// pin the exact serialization: escaping, shortest-round-trip doubles,
// insertion-ordered objects, manifest fields, and one-record-per-line
// framing.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "report/json.hpp"
#include "report/result_sink.hpp"
#include "util/table.hpp"

namespace rlslb::report {
namespace {

// ------------------------------------------------------------- Json dump

TEST(Json, ScalarDump) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(0).dump(), "0");
  EXPECT_EQ(Json(std::int64_t{-42}).dump(), "-42");
  EXPECT_EQ(Json(INT64_MAX).dump(), "9223372036854775807");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
  EXPECT_EQ(Json(std::string("hi")).dump(), "\"hi\"");
}

TEST(Json, Uint64AboveInt64BecomesDecimalString) {
  EXPECT_EQ(Json(std::uint64_t{5}).dump(), "5");
  EXPECT_EQ(Json(UINT64_MAX).dump(), "\"18446744073709551615\"");
}

TEST(Json, DoubleDumpShortestRoundTrip) {
  EXPECT_EQ(Json(0.5).dump(), "0.5");
  EXPECT_EQ(Json(0.1).dump(), "0.1");
  EXPECT_EQ(Json(-3.25).dump(), "-3.25");
  // Non-finite values have no JSON spelling; they degrade to null.
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b").dump(), "\"a\\\"b\"");
  EXPECT_EQ(Json("back\\slash").dump(), "\"back\\\\slash\"");
  EXPECT_EQ(Json("tab\tnl\ncr\r").dump(), "\"tab\\tnl\\ncr\\r\"");
  EXPECT_EQ(Json(std::string("\x01\x1f")).dump(), "\"\\u0001\\u001f\"");
  // UTF-8 passes through unescaped.
  EXPECT_EQ(Json("μ=n/2").dump(), "\"μ=n/2\"");
}

TEST(Json, ContainersPreserveInsertionOrder) {
  Json obj = Json::object();
  obj.set("zebra", 1);
  obj.set("alpha", 2);
  obj.set("zebra", 3);  // overwrite keeps first position
  Json arr = Json::array();
  arr.push(1).push("two").push(Json::object());
  obj.set("list", arr);
  EXPECT_EQ(obj.dump(), "{\"zebra\":3,\"alpha\":2,\"list\":[1,\"two\",{}]}");
  EXPECT_EQ(obj.at("alpha").asInt(), 2);
  EXPECT_EQ(obj.at("list").at(1).asString(), "two");
  EXPECT_EQ(obj.find("missing"), nullptr);
}

// ------------------------------------------------------------ round trip

void expectRoundTrip(const Json& v) {
  std::string error;
  const Json reparsed = Json::parse(v.dump(), &error);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_EQ(reparsed, v) << v.dump();
  EXPECT_EQ(reparsed.dump(), v.dump());
}

TEST(Json, RoundTripEveryValueType) {
  expectRoundTrip(Json());
  expectRoundTrip(Json(true));
  expectRoundTrip(Json(false));
  expectRoundTrip(Json(std::int64_t{-123456789012345}));
  expectRoundTrip(Json(0.5));
  expectRoundTrip(Json(1e-9));
  expectRoundTrip(Json(6.02214076e23));
  expectRoundTrip(Json("plain"));
  expectRoundTrip(Json("esc \" \\ \n \t \x01 μ"));

  Json nested = Json::object();
  nested.set("ints", Json::array().push(1).push(-2).push(3));
  nested.set("mix", Json::array().push(Json()).push(true).push(1.25).push("s"));
  Json inner = Json::object();
  inner.set("k", "v");
  nested.set("obj", inner);
  expectRoundTrip(nested);
}

TEST(Json, ParseStandardJson) {
  std::string error;
  const Json v = Json::parse(" { \"a\" : [ 1 , 2.5 , null ] , \"b\" : \"x\\u0041y\" } ", &error);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_EQ(v.at("a").at(0).asInt(), 1);
  EXPECT_DOUBLE_EQ(v.at("a").at(1).asDouble(), 2.5);
  EXPECT_TRUE(v.at("a").at(2).isNull());
  EXPECT_EQ(v.at("b").asString(), "xAy");
}

TEST(Json, ParseErrors) {
  std::string error;
  Json::parse("{\"a\":1", &error);
  EXPECT_FALSE(error.empty());
  error.clear();
  Json::parse("[1,2] trailing", &error);
  EXPECT_FALSE(error.empty());
  error.clear();
  Json::parse("nope", &error);
  EXPECT_FALSE(error.empty());
  error.clear();
  Json::parse("\"unterminated", &error);
  EXPECT_FALSE(error.empty());
}

// ------------------------------------------------------- Table bridge

TEST(TableJson, BridgePreservesCellsVerbatim) {
  Table t({"name", "value"});
  t.row().cell("pi, ish").cell(3.14159, 3);
  t.row().cell("n").cell(std::int64_t{1024});
  const Json j = tableToJson(t, "demo");
  EXPECT_EQ(j.at("title").asString(), "demo");
  EXPECT_EQ(j.at("headers").size(), 2u);
  EXPECT_EQ(j.at("headers").at(0).asString(), "name");
  EXPECT_EQ(j.at("rows").size(), 2u);
  // Cells are the formatted strings the ASCII table prints.
  EXPECT_EQ(j.at("rows").at(0).at(0).asString(), "pi, ish");
  EXPECT_EQ(j.at("rows").at(0).at(1).asString(), t.at(0, 1));
  // Integer cells keep the table's thousands grouping: the JSON mirrors
  // the printed table cell-for-cell.
  EXPECT_EQ(j.at("rows").at(1).at(1).asString(), t.at(1, 1));
  EXPECT_EQ(t.at(1, 1), "1,024");
}

// ------------------------------------------------------------- manifest

TEST(Manifest, EnvironmentFieldsFilled) {
  const RunManifest m = makeManifest();
  EXPECT_FALSE(m.version.empty());
  EXPECT_FALSE(m.gitSha.empty());
  EXPECT_FALSE(m.compiler.empty());
  EXPECT_FALSE(m.host.empty());
  EXPECT_GT(m.startedUnixMs, 0);

  const Json j = m.toJson();
  EXPECT_EQ(j.at("type").asString(), "manifest");
  for (const char* key : {"tool", "version", "seed", "scale", "scale_factor", "reps",
                          "threads_requested", "threads_resolved", "git_sha", "compiler",
                          "build_type", "host", "started_unix_ms"}) {
    EXPECT_NE(j.find(key), nullptr) << "manifest missing " << key;
  }
}

// ------------------------------------------------------------- ResultSink

TEST(ResultSink, DisabledSinkIsNoop) {
  ResultSink sink;  // no stream
  EXPECT_FALSE(sink.enabled());
  Table t({"a"});
  t.row().cell(1);
  sink.writeManifest(makeManifest());
  sink.writeTable("s", "title", t);
  sink.endScenario("s", 0.1);  // must not crash
}

TEST(ResultSink, JsonlFramingOneParseableRecordPerLine) {
  std::ostringstream out;
  ResultSink sink(&out);
  EXPECT_TRUE(sink.enabled());

  RunManifest m = makeManifest();
  m.seed = 7;
  sink.writeManifest(m);
  Json params = Json::object();
  params.set("n", "64");
  sink.beginScenario("demo", "Theorem 1", params);
  Table t({"x", "note"});
  t.row().cell(std::int64_t{1}).cell("multi\nline \"quoted\"");
  sink.writeTable("demo", "t1", t);
  sink.writeTimingTable("demo", "wall", t);
  sink.endScenario("demo", 1.5);

  std::istringstream in(out.str());
  std::string line;
  std::vector<std::string> types;
  while (std::getline(in, line)) {
    std::string error;
    const Json rec = Json::parse(line, &error);
    ASSERT_TRUE(error.empty()) << error << " in line: " << line;
    ASSERT_TRUE(rec.isObject());
    types.push_back(rec.at("type").asString());
  }
  const std::vector<std::string> expected = {"manifest", "scenario_start", "table", "timing",
                                             "scenario_end"};
  EXPECT_EQ(types, expected);
}

TEST(ResultSink, RecordContents) {
  std::ostringstream out;
  ResultSink sink(&out);
  Table t({"h"});
  t.row().cell("v");
  sink.writeTable("scn", "the title", t);
  sink.endScenario("scn", 2.25);

  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);
  const Json table = Json::parse(line);
  EXPECT_EQ(table.at("scenario").asString(), "scn");
  EXPECT_EQ(table.at("title").asString(), "the title");
  EXPECT_EQ(table.at("headers").at(0).asString(), "h");
  EXPECT_EQ(table.at("rows").at(0).at(0).asString(), "v");
  std::getline(in, line);
  const Json end = Json::parse(line);
  EXPECT_EQ(end.at("scenario").asString(), "scn");
  EXPECT_DOUBLE_EQ(end.at("wall_s").asDouble(), 2.25);
}

}  // namespace
}  // namespace rlslb::report
