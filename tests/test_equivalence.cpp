// Cross-engine equivalence matrix: the three engines must sample the same
// balancing-time distribution from every initial shape. Parameterized over
// workload scenarios; each scenario compares naive vs jump by
// Mann-Whitney + KS and (where the state space is tiny) anchors all three
// engines on the exact chain expectation.
//
// Also contains the API-misuse death tests (failure injection): the
// library aborts loudly on contract violations instead of corrupting
// simulations.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "config/generators.hpp"
#include "core/rls.hpp"
#include "ds/fenwick.hpp"
#include "ds/load_multiset.hpp"
#include "exact/rls_chain.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256pp.hpp"
#include "sim/naive_engine.hpp"
#include "stats/running_stat.hpp"
#include "stats/tests.hpp"

namespace rlslb {
namespace {

struct Scenario {
  std::string name;
  std::int64_t n;
  std::int64_t m;
  std::function<config::Configuration()> make;
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  out.push_back({"allinone_8x40", 8, 40, [] { return config::allInOne(8, 40); }});
  out.push_back({"allinone_16x16", 16, 16, [] { return config::allInOne(16, 16); }});
  out.push_back({"twopoint_12x36", 12, 36, [] { return config::twoPoint(12, 36); }});
  out.push_back({"halfhalf_10x60", 10, 60, [] { return config::halfHalf(10, 60, 3); }});
  out.push_back({"staircase_12x48", 12, 48, [] { return config::staircase(12, 48); }});
  out.push_back({"plusminus_8x48", 8, 48, [] { return config::plusMinusOne(8, 48, 3); }});
  out.push_back({"random_9x45", 9, 45, [] {
                   rng::Xoshiro256pp eng(505);
                   return config::uniformRandom(9, 45, eng);
                 }});
  out.push_back({"powerlaw_10x50", 10, 50, [] { return config::powerLaw(10, 50, 1.0); }});
  return out;
}

class EngineEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(EngineEquivalence, NaiveAndJumpSameDistribution) {
  const Scenario sc = scenarios()[static_cast<std::size_t>(GetParam())];
  const auto init = sc.make();
  constexpr int kReps = 700;
  std::vector<double> naive;
  std::vector<double> jump;
  naive.reserve(kReps);
  jump.reserve(kReps);
  for (int rep = 0; rep < kReps; ++rep) {
    core::SimOptions o;
    o.engine = core::SimOptions::EngineKind::Naive;
    o.seed = rng::streamSeed(0xabc0 + static_cast<std::uint64_t>(GetParam()), rep);
    naive.push_back(core::balancingTime(init, o));
    o.engine = core::SimOptions::EngineKind::Jump;
    o.seed = rng::streamSeed(0xdef0 + static_cast<std::uint64_t>(GetParam()), rep);
    jump.push_back(core::balancingTime(init, o));
  }
  EXPECT_GT(stats::mannWhitneyU(naive, jump).pValue, 1e-4) << sc.name;
  EXPECT_GT(stats::ksTwoSample(naive, jump).pValue, 1e-4) << sc.name;
}

TEST_P(EngineEquivalence, HybridTracksJumpMean) {
  const Scenario sc = scenarios()[static_cast<std::size_t>(GetParam())];
  const auto init = sc.make();
  constexpr int kReps = 700;
  stats::RunningStat hybrid;
  stats::RunningStat jump;
  for (int rep = 0; rep < kReps; ++rep) {
    core::SimOptions o;
    o.engine = core::SimOptions::EngineKind::Hybrid;
    o.seed = rng::streamSeed(0x1110 + static_cast<std::uint64_t>(GetParam()), rep);
    hybrid.add(core::balancingTime(init, o));
    o.engine = core::SimOptions::EngineKind::Jump;
    o.seed = rng::streamSeed(0x2220 + static_cast<std::uint64_t>(GetParam()), rep);
    jump.add(core::balancingTime(init, o));
  }
  const double pooledSem = std::sqrt(hybrid.sem() * hybrid.sem() + jump.sem() * jump.sem());
  EXPECT_NEAR(hybrid.mean(), jump.mean(), 5.0 * pooledSem) << sc.name;
}

INSTANTIATE_TEST_SUITE_P(Workloads, EngineEquivalence, ::testing::Range(0, 8),
                         [](const ::testing::TestParamInfo<int>& paramInfo) {
                           return scenarios()[static_cast<std::size_t>(paramInfo.param)].name;
                         });

TEST(EngineEquivalence, AllEnginesAnchoredOnExactChain) {
  // Tiny asymmetric state with a known exact expectation; every engine must
  // agree with it (this triangulates the pairwise tests above).
  const config::Configuration init({5, 4, 2, 1, 0});  // n=5, m=12
  exact::RlsChain chain(5, 12);
  const double expected = chain.expectedTimeFrom(init);
  for (auto kind : {core::SimOptions::EngineKind::Naive, core::SimOptions::EngineKind::Jump,
                    core::SimOptions::EngineKind::Hybrid}) {
    stats::RunningStat rs;
    for (int rep = 0; rep < 3000; ++rep) {
      core::SimOptions o;
      o.engine = kind;
      o.seed = rng::streamSeed(0x3330 + static_cast<std::uint64_t>(kind), rep);
      rs.add(core::balancingTime(init, o));
    }
    EXPECT_NEAR(rs.mean(), expected, 5.0 * rs.sem()) << static_cast<int>(kind);
  }
}

// ----------------------------------------------------- failure injection

using EquivalenceDeathTest = ::testing::Test;

TEST(EquivalenceDeathTest, FenwickRejectsOutOfRangeTicket) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ds::Fenwick<std::int64_t> f(std::vector<std::int64_t>{1, 2});
  EXPECT_DEATH((void)f.upperBound(3), "upperBound target");
}

TEST(EquivalenceDeathTest, FenwickRejectsOutOfRangeAdd) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ds::Fenwick<std::int64_t> f(4);
  EXPECT_DEATH(f.add(4, 1), "assertion");
}

TEST(EquivalenceDeathTest, TwoPointRequiresDivisibility) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH((void)config::twoPoint(4, 9), "n | m");
}

TEST(EquivalenceDeathTest, HalfHalfRequiresXBelowAvg) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH((void)config::halfHalf(4, 8, 5), "0 <= x <= avg");
}

TEST(EquivalenceDeathTest, LoadMultisetRejectsNeutralMove) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto ms = ds::LoadMultiset::fromLoads({3, 2});
  EXPECT_DEATH(ms.applyBallMove(3, 2), "multiset-changing");
}

TEST(EquivalenceDeathTest, LoadMultisetRejectsMissingLevel) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto ms = ds::LoadMultiset::fromLoads({5, 1});
  EXPECT_DEATH(ms.shiftBin(4, -1), "no bin at this level");
}

TEST(EquivalenceDeathTest, NegativeLoadRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(config::Configuration({1, -1}), "negative load");
}

TEST(EquivalenceDeathTest, ForcedMoveFromEmptyBinRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  sim::NaiveEngine engine(config::allInOne(4, 4), 1);
  EXPECT_DEATH(engine.applyForcedMove(1, 2), "empty bin");
}

}  // namespace
}  // namespace rlslb
