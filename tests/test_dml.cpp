// Tests for the Destructive Majorization Lemma machinery (Lemma 2):
// the coupling harness must maintain the proof's closeness invariant across
// random trajectories, and adversarial runs must be slower on average.
#include <gtest/gtest.h>

#include <cmath>

#include "config/generators.hpp"
#include "core/coupling.hpp"
#include "core/dml.hpp"
#include "core/rls.hpp"
#include "rng/splitmix64.hpp"
#include "stats/running_stat.hpp"
#include "stats/tests.hpp"

namespace rlslb::core {
namespace {

TEST(RunWithAdversary, StrictGapCompositeNotFrozenByProtocolAbsorption) {
  // With gap = 2 the protocol chain alone absorbs at spread <= 1, but the
  // composite process does not: clocks keep ringing and the adversary's
  // destructive moves can push the spread back above the gap. The run must
  // keep consuming its event budget (here against an unreachable target)
  // instead of silently freezing at the protocol's absorption point.
  MinToMaxAdversary adversary(1.0);
  sim::RunLimits limits;
  limits.maxEvents = 500;
  // disc <= 0 needs n | m, impossible for n=2, m=3: unreachable target.
  const auto r = runWithAdversary(config::Configuration({2, 1}), 5, adversary,
                                  sim::Target::xBalanced(0), limits, nullptr, /*gap=*/2);
  EXPECT_FALSE(r.reachedTarget);
  EXPECT_EQ(r.activations, 500);  // every clock ring happened
  EXPECT_GT(r.time, 0.0);
}

TEST(DmlCoupling, StartsEqualAndClose) {
  rng::Xoshiro256pp eng(1);
  DmlCoupling c(config::uniformRandom(8, 40, eng), 2);
  EXPECT_TRUE(c.equal());
  EXPECT_TRUE(c.isClose());
  EXPECT_TRUE(c.discDominated());
}

TEST(DmlCoupling, InjectDestructiveMoveCreatesWitness) {
  DmlCoupling c(config::Configuration({3, 3, 2}), 3);
  // Move between the two equal-load bins (sorted positions 0 -> 1).
  ASSERT_TRUE(c.injectDestructiveMove(1, 0));
  EXPECT_FALSE(c.equal());
  EXPECT_TRUE(c.isClose());
  EXPECT_TRUE(c.discDominated());
}

TEST(DmlCoupling, RejectsNonDestructiveMove) {
  DmlCoupling c(config::Configuration({5, 1}), 4);
  // 5 -> 1 is a *valid* protocol move (5 >= 1+1), not destructive.
  EXPECT_FALSE(c.injectDestructiveMove(0, 1));
  EXPECT_TRUE(c.equal());
}

TEST(DmlCoupling, AcceptsNeutralReversal) {
  DmlCoupling c(config::Configuration({3, 2}), 5);
  // 2 -> 3 bin: load(src)=2 <= load(dst)+1=4: destructive.
  EXPECT_TRUE(c.injectDestructiveMove(1, 0));
  EXPECT_TRUE(c.isClose());
}

TEST(DmlCoupling, AllInOneHasNoDestructiveMove) {
  DmlCoupling c(config::allInOne(4, 10), 6);
  EXPECT_FALSE(c.injectRandomDestructiveMove());
  EXPECT_TRUE(c.equal());
}

TEST(DmlCoupling, SingleBallAlwaysHasDestructiveMove) {
  DmlCoupling c(config::allInOne(4, 1), 7);
  EXPECT_TRUE(c.injectRandomDestructiveMove());
  EXPECT_TRUE(c.isClose());
}

// The core property test: the Lemma 2 coupling preserves closeness and
// discrepancy dominance along entire trajectories, from varied starts.
class CouplingInvariant : public ::testing::TestWithParam<int> {};

TEST_P(CouplingInvariant, HoldsAlongTrajectory) {
  const int scenario = GetParam();
  rng::Xoshiro256pp eng(static_cast<std::uint64_t>(scenario) * 17 + 1);
  config::Configuration init = [&] {
    switch (scenario % 4) {
      case 0:
        return config::uniformRandom(10, 60, eng);
      case 1:
        return config::halfHalf(10, 60, 3);
      case 2:
        return config::staircase(10, 60);
      default:
        return config::plusMinusOne(10, 60, 3);
    }
  }();

  DmlCoupling coupling(init, static_cast<std::uint64_t>(1000 + scenario));
  ASSERT_TRUE(coupling.injectRandomDestructiveMove());
  for (int step = 0; step < 4000; ++step) {
    coupling.stepCoupled();
    ASSERT_TRUE(coupling.isClose()) << "scenario " << scenario << " step " << step;
    ASSERT_TRUE(coupling.discDominated()) << "scenario " << scenario << " step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, CouplingInvariant, ::testing::Range(0, 16));

TEST(DmlCoupling, EqualProcessesStayEqual) {
  DmlCoupling c(config::Configuration({4, 3, 2, 1}), 8);
  for (int step = 0; step < 2000; ++step) {
    c.stepCoupled();
    ASSERT_TRUE(c.equal());
  }
}

// ------------------------------------------------------------- adversaries

TEST(Adversary, ReverseLastMoveSlowsConvergence) {
  const auto init = config::allInOne(8, 48);
  stats::RunningStat plain;
  stats::RunningStat adversarial;
  for (int rep = 0; rep < 400; ++rep) {
    const std::uint64_t seed = rng::streamSeed(10, rep);
    core::SimOptions o;
    o.engine = core::SimOptions::EngineKind::Naive;
    o.seed = seed;
    plain.add(core::balancingTime(init, o));

    ReverseLastMoveAdversary adv(0.4);
    const auto r = runWithAdversary(init, seed, adv, sim::Target::perfect());
    ASSERT_TRUE(r.reachedTarget);
    adversarial.add(r.time);
  }
  // Lemma 2: adversarial expectation dominates. With p=0.4 reversal the
  // slowdown is large; require clear separation.
  EXPECT_GT(adversarial.mean(), plain.mean() * 1.2);
}

TEST(Adversary, RandomPairDominatesDiscrepancyAtFixedHorizon) {
  // Lemma 2 is a statement about disc(l(t)) at a fixed time t: the
  // adversarial process stochastically dominates. A per-activation random
  // destructive pair is strong enough that perfect balance may never be
  // reached -- exactly why the lemma is phrased as dominance. Compare mean
  // discrepancy at a fixed horizon instead.
  const auto init = config::halfHalf(8, 64, 3);
  const double horizon = 5.0;
  stats::RunningStat plain;
  stats::RunningStat adversarial;
  sim::RunLimits limits;
  limits.maxTime = horizon;
  for (int rep = 0; rep < 300; ++rep) {
    const std::uint64_t seed = rng::streamSeed(11, rep);
    core::SimOptions o;
    o.engine = core::SimOptions::EngineKind::Naive;
    o.seed = seed;
    const auto rp = core::balance(init, o, sim::Target::perfect(), limits);
    plain.add(rp.finalState.discrepancy());

    RandomPairAdversary adv(1);
    const auto ra = runWithAdversary(init, seed, adv, sim::Target::perfect(), limits);
    adversarial.add(ra.finalState.discrepancy());
  }
  EXPECT_GE(adversarial.mean(), plain.mean());
}

TEST(Adversary, MinToMaxDominatesReverseLastAtFixedHorizon) {
  const auto init = config::plusMinusOne(8, 40, 2);
  const double horizon = 4.0;
  stats::RunningStat weak;
  stats::RunningStat strong;
  sim::RunLimits limits;
  limits.maxTime = horizon;
  for (int rep = 0; rep < 300; ++rep) {
    const std::uint64_t seed = rng::streamSeed(12, rep);
    ReverseLastMoveAdversary weakAdv(0.1);
    const auto rw = runWithAdversary(init, seed, weakAdv, sim::Target::perfect(), limits);
    weak.add(rw.finalState.discrepancy());

    MinToMaxAdversary strongAdv(0.1);
    const auto rs = runWithAdversary(init, seed, strongAdv, sim::Target::perfect(), limits);
    strong.add(rs.finalState.discrepancy());
  }
  // The targeted adversary at equal injection rate does at least as much
  // damage as bouncing back random recent moves.
  EXPECT_GE(strong.mean(), weak.mean() * 0.9);
}

TEST(Adversary, ZeroProbabilityMatchesPlain) {
  const auto init = config::allInOne(8, 32);
  for (int rep = 0; rep < 20; ++rep) {
    const std::uint64_t seed = rng::streamSeed(13, rep);
    core::SimOptions o;
    o.engine = core::SimOptions::EngineKind::Naive;
    o.seed = seed;
    const double plainTime = core::balancingTime(init, o);
    ReverseLastMoveAdversary adv(0.0);
    const auto r = runWithAdversary(init, seed, adv, sim::Target::perfect());
    EXPECT_DOUBLE_EQ(r.time, plainTime);
  }
}

TEST(Adversary, StillConvergesUnderHeavyNoise) {
  // Even at reversal probability 0.8 the process reaches perfect balance
  // (reversals happen only after successful moves; progress leaks through).
  const auto init = config::allInOne(6, 24);
  ReverseLastMoveAdversary adv(0.8);
  sim::RunLimits limits;
  limits.maxEvents = 40'000'000;
  const auto r = runWithAdversary(init, rng::streamSeed(14, 0), adv, sim::Target::perfect(), limits);
  EXPECT_TRUE(r.reachedTarget);
}

TEST(Adversary, ForcedMovesCountedInMoves) {
  const auto init = config::allInOne(6, 24);
  ReverseLastMoveAdversary adv(0.5);
  const auto r = runWithAdversary(init, 99, adv, sim::Target::perfect());
  // Moves include injected reversals, so moves > protocol-only minimum m-avg.
  EXPECT_GT(r.moves, 24 - 4);
}

}  // namespace
}  // namespace rlslb::core
