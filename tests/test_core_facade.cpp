// Tests for the public facade in src/core/rls.hpp: makeEngine's engine-kind
// dispatch and option plumbing, and balance()'s target/limit handling. The
// engines themselves are exercised exhaustively in test_engines.cpp; here we
// only pin down the facade's contract.
#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "config/generators.hpp"
#include "core/rls.hpp"
#include "sim/hybrid_engine.hpp"
#include "sim/jump_engine.hpp"
#include "sim/naive_engine.hpp"

namespace rlslb {
namespace {

using core::SimOptions;
using sim::RunLimits;
using sim::Target;

SimOptions opts(SimOptions::EngineKind kind, std::uint64_t seed = 1) {
  SimOptions o;
  o.engine = kind;
  o.seed = seed;
  return o;
}

TEST(MakeEngine, SelectsConcreteEngineByKind) {
  const auto init = config::allInOne(8, 64);
  auto naive = core::makeEngine(init, opts(SimOptions::EngineKind::Naive));
  auto jump = core::makeEngine(init, opts(SimOptions::EngineKind::Jump));
  auto hybrid = core::makeEngine(init, opts(SimOptions::EngineKind::Hybrid));
  EXPECT_NE(dynamic_cast<sim::NaiveEngine*>(naive.get()), nullptr);
  EXPECT_NE(dynamic_cast<sim::JumpEngine*>(jump.get()), nullptr);
  EXPECT_NE(dynamic_cast<sim::HybridEngine*>(hybrid.get()), nullptr);
}

TEST(MakeEngine, EngineStartsOnACopyOfTheInitialConfiguration) {
  const auto init = config::allInOne(4, 12);
  auto engine = core::makeEngine(init, opts(SimOptions::EngineKind::Naive));
  EXPECT_EQ(engine->state().numBins, 4);
  EXPECT_EQ(engine->state().numBalls, 12);
  EXPECT_EQ(engine->state().maxLoad, 12);
  EXPECT_EQ(engine->state().minLoad, 0);
  EXPECT_DOUBLE_EQ(engine->time(), 0.0);
  EXPECT_EQ(engine->moves(), 0);
  // Stepping the engine must not mutate the caller's configuration.
  while (engine->step() && !engine->state().perfectlyBalanced()) {
  }
  EXPECT_EQ(init.load(0), 12);
}

TEST(MakeEngine, GapReachesTheNaiveEngine) {
  // With gap = 3 no move is ever legal from the start [2, 0] (a move
  // requires load(src) >= load(dst) + 3), so the engine detects absorption
  // immediately -- which can only happen if the facade forwarded the gap:
  // with the default gap = 1 the same start has legal moves and steps.
  SimOptions o = opts(SimOptions::EngineKind::Naive);
  o.gap = 3;
  auto engine = core::makeEngine(config::allInOne(2, 2), o);
  EXPECT_FALSE(engine->step());
  EXPECT_EQ(engine->moves(), 0);
  EXPECT_EQ(engine->state().maxLoad, 2);
  EXPECT_EQ(engine->state().minLoad, 0);

  auto dflt = core::makeEngine(config::allInOne(2, 2), opts(SimOptions::EngineKind::Naive));
  EXPECT_TRUE(dflt->step());
}

TEST(MakeEngine, ActivationsVisibilityMatchesEngineKind) {
  const auto init = config::allInOne(8, 64);
  auto naive = core::makeEngine(init, opts(SimOptions::EngineKind::Naive));
  auto jump = core::makeEngine(init, opts(SimOptions::EngineKind::Jump));
  naive->step();
  jump->step();
  EXPECT_GE(naive->activations(), 1);
  EXPECT_EQ(jump->activations(), -1);
}

TEST(Balance, ReachesPerfectBalanceByDefault) {
  const auto r = core::balance(config::allInOne(8, 64), opts(SimOptions::EngineKind::Hybrid, 7));
  EXPECT_TRUE(r.reachedTarget);
  EXPECT_TRUE(r.finalState.perfectlyBalanced());
  EXPECT_EQ(r.finalState.maxLoad, 8);
  EXPECT_EQ(r.finalState.minLoad, 8);
  EXPECT_GT(r.time, 0.0);
  EXPECT_GE(r.moves, 56);  // at least 64 - 8 balls must leave bin 0
}

TEST(Balance, XBalancedTargetStopsBeforePerfectBalance) {
  // Stop at max <= ceil(avg) + 4: strictly weaker than perfect balance from
  // the all-in-one start, so the run should stop with spread still positive
  // in at least some runs; in all runs the target predicate must hold.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto r = core::balance(config::allInOne(16, 64), opts(SimOptions::EngineKind::Naive, seed),
                                 Target::xBalanced(4));
    EXPECT_TRUE(r.reachedTarget);
    EXPECT_TRUE(r.finalState.xBalanced(4));
    EXPECT_LE(r.finalState.maxLoad, 4 + 4);  // ceil(64/16) + x
  }
}

TEST(Balance, MaxEventsLimitStopsTheRun) {
  RunLimits limits;
  limits.maxEvents = 3;
  const auto r = core::balance(config::allInOne(64, 4096),
                               opts(SimOptions::EngineKind::Naive, 11), Target::perfect(), limits);
  EXPECT_FALSE(r.reachedTarget);
  // Activations count engine steps for the naive engine; at most 3 ran.
  EXPECT_LE(r.activations, 3);
  EXPECT_LE(r.moves, 3);
}

TEST(Balance, MaxTimeLimitStopsTheRun) {
  RunLimits limits;
  limits.maxTime = 1e-12;  // essentially immediately after the first event
  const auto r = core::balance(config::allInOne(64, 4096),
                               opts(SimOptions::EngineKind::Jump, 13), Target::perfect(), limits);
  EXPECT_FALSE(r.reachedTarget);
  EXPECT_FALSE(r.finalState.perfectlyBalanced());
}

TEST(Balance, ProbeSeesEveryEventPlusThePreRunCall) {
  class CountingProbe final : public sim::Probe {
   public:
    std::int64_t calls = 0;
    void onEvent(const sim::Engine&) override { ++calls; }
  };
  CountingProbe probe;
  RunLimits limits;
  limits.maxEvents = 5;
  const auto r = core::balance(config::allInOne(32, 1024),
                               opts(SimOptions::EngineKind::Naive, 17), Target::perfect(), limits,
                               &probe);
  EXPECT_FALSE(r.reachedTarget);
  EXPECT_EQ(probe.calls, 5 + 1);  // one call before the run, one per event
}

TEST(Balance, AlreadyBalancedStartReturnsImmediately) {
  const auto r = core::balance(config::balanced(8, 64), opts(SimOptions::EngineKind::Hybrid, 3));
  EXPECT_TRUE(r.reachedTarget);
  EXPECT_EQ(r.moves, 0);
  EXPECT_DOUBLE_EQ(r.time, 0.0);
}

TEST(BalancingTime, MatchesBalanceAndIsSeedDeterministic) {
  const auto init = config::allInOne(8, 64);
  const SimOptions o = opts(SimOptions::EngineKind::Hybrid, 99);
  const double t1 = core::balancingTime(init, o);
  const double t2 = core::balancingTime(init, o);
  EXPECT_GT(t1, 0.0);
  EXPECT_DOUBLE_EQ(t1, t2);
  EXPECT_DOUBLE_EQ(t1, core::balance(init, o).time);
}

}  // namespace
}  // namespace rlslb
