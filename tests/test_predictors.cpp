// Tests for core/predictors: the paper's closed forms as code. These are
// the single source of truth used by benches; verify them against
// independent computations and the exact chain.
#include <gtest/gtest.h>

#include <cmath>

#include "config/generators.hpp"
#include "core/predictors.hpp"
#include "exact/rls_chain.hpp"

namespace rlslb::core {
namespace {

TEST(Predictors, HarmonicExactSmall) {
  EXPECT_DOUBLE_EQ(harmonicNumber(0), 0.0);
  EXPECT_DOUBLE_EQ(harmonicNumber(1), 1.0);
  EXPECT_DOUBLE_EQ(harmonicNumber(2), 1.5);
  EXPECT_NEAR(harmonicNumber(10), 2.9289682539682538, 1e-14);
}

TEST(Predictors, HarmonicAsymptoticContinuity) {
  // The asymptotic branch (k >= 1000) must agree with direct summation.
  double direct = 0.0;
  for (int i = 1; i <= 5000; ++i) direct += 1.0 / i;
  EXPECT_NEAR(harmonicNumber(5000), direct, 1e-10);
}

TEST(Predictors, HarmonicMonotone) {
  double prev = 0.0;
  for (std::int64_t k : {1, 10, 100, 999, 1000, 1001, 10000}) {
    const double h = harmonicNumber(k);
    EXPECT_GT(h, prev);
    prev = h;
  }
}

TEST(Predictors, Theorem1ScaleComposition) {
  EXPECT_NEAR(theorem1Scale(1024, 1024), std::log(1024.0) + 1024.0, 1e-12);
  EXPECT_NEAR(theorem1Scale(64, 64 * 64), std::log(64.0) + 1.0, 1e-12);
}

TEST(Predictors, WhpBudgetDominatesScaleForLargeN) {
  // ln(n)*(1 + n^2/m) >= ln n + n^2/m whenever ln n >= 1.
  for (std::int64_t n : {8, 64, 1024}) {
    for (std::int64_t ratio : {1, 8, 64}) {
      EXPECT_GE(whpBudget(n, n * ratio), theorem1Scale(n, n * ratio) - 1e-9);
    }
  }
}

TEST(Predictors, LowerBoundAllInOneIsLogarithmic) {
  // H_m - H_avg ~ ln(m/avg) = ln(n).
  const double v = lowerBoundAllInOne(1024, 8 * 1024);
  EXPECT_NEAR(v, std::log(1024.0), 0.1);
}

TEST(Predictors, TwoPointMatchesExactChain) {
  for (std::int64_t n : {3, 4, 5}) {
    for (std::int64_t avg : {2, 3}) {
      const std::int64_t m = n * avg;
      if (m > 16) continue;
      exact::RlsChain chain(n, m);
      EXPECT_NEAR(twoPointExactTime(n, m), chain.expectedTimeFrom(config::twoPoint(n, m)), 1e-9);
    }
  }
}

TEST(Predictors, Lemma8BoundFormula) {
  // sum_{r=2..m} n/(r(r-1)) telescopes to n*(1 - 1/m).
  const std::int64_t n = 100;
  const std::int64_t m = 60;
  double direct = 0.0;
  for (std::int64_t r = 2; r <= m; ++r) {
    direct += static_cast<double>(n) / (static_cast<double>(r) * static_cast<double>(r - 1));
  }
  EXPECT_NEAR(lemma8Bound(n, m), direct, 1e-9);
}

TEST(Predictors, Lemma13TargetAndTime) {
  EXPECT_NEAR(lemma13Target(1024, 64), 2.0 * std::sqrt(64.0 * std::log(1024.0)), 1e-12);
  EXPECT_NEAR(lemma13StepTime(256, 128), std::log(384.0 / 128.0), 1e-12);
  EXPECT_DOUBLE_EQ(lemma13StepTime(256, 0), 0.0);
}

TEST(Predictors, EndgameScale) {
  EXPECT_DOUBLE_EQ(endgameScale(1024, 8 * 1024), 128.0);
  // n/avg == n^2/m.
  EXPECT_DOUBLE_EQ(endgameScale(100, 400), 100.0 / 4.0);
}

}  // namespace
}  // namespace rlslb::core
