// serve/: OnlineAllocator state invariants, the sharded event loop's
// invariance contract (final load vector identical across shard counts AND
// thread counts), RLS's balance benefit over placement-only serving, and
// the serve_* scenarios' byte-determinism through the JSONL sink.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "report/json.hpp"
#include "scenario/scenario.hpp"
#include "serve/event_loop.hpp"
#include "serve/online_allocator.hpp"
#include "workload/generators.hpp"

namespace rlslb::serve {
namespace {

workload::OpenTraceOptions traceOptions(std::int64_t events) {
  workload::OpenTraceOptions o;
  o.bins = 32;
  o.arrivalRatePerBin = 1.0;
  o.departureRate = 0.25;
  o.resampleRate = 1.0;
  o.maxEvents = events;
  return o;
}

struct LoopOutcome {
  std::vector<std::int64_t> loads;
  ServeCounters counters;
  std::int64_t liveBalls = 0;
  std::int64_t totalLoad = 0;
  std::int64_t gap = 0;
};

LoopOutcome runLoop(int shards, int threads, std::int64_t events,
                    std::uint64_t seed = 99) {
  workload::PoissonTrace trace(traceOptions(events), seed);
  AllocatorOptions allocOptions;
  allocOptions.bins = 32;
  allocOptions.arrivalChoices = 2;
  OnlineAllocator allocator(allocOptions);
  LoopOptions loopOptions;
  loopOptions.shards = shards;
  loopOptions.epochEvents = 256;
  loopOptions.repairMovesPerEpoch = 4;
  loopOptions.seed = seed;
  runner::ThreadPool pool(threads);
  ShardedEventLoop loop(allocator, loopOptions, pool);
  const auto result = loop.run(trace);
  EXPECT_EQ(result.events, events);
  EXPECT_TRUE(allocator.validate());
  return {allocator.loads(), allocator.counters(), allocator.liveBalls(),
          allocator.totalLoad(), allocator.gap()};
}

bool countersEqual(const ServeCounters& a, const ServeCounters& b) {
  return a.events == b.events && a.arrivals == b.arrivals &&
         a.departures == b.departures && a.resamples == b.resamples &&
         a.migrations == b.migrations && a.rejectedMoves == b.rejectedMoves &&
         a.repairAttempts == b.repairAttempts &&
         a.repairMigrations == b.repairMigrations;
}

TEST(OnlineAllocator, ConservesMassAndTracksLevels) {
  const LoopOutcome out = runLoop(/*shards=*/4, /*threads=*/1, /*events=*/8000);
  EXPECT_EQ(out.counters.events, 8000);
  EXPECT_EQ(out.liveBalls, out.counters.arrivals - out.counters.departures);
  std::int64_t total = 0;
  std::int64_t lo = out.loads[0];
  std::int64_t hi = out.loads[0];
  for (const std::int64_t v : out.loads) {
    total += v;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_EQ(total, out.totalLoad);
  EXPECT_EQ(out.gap, hi - lo);
  EXPECT_EQ(out.counters.resamples,
            out.counters.migrations + out.counters.rejectedMoves);
}

TEST(ShardedEventLoop, FinalStateInvariantAcrossShardCounts) {
  const LoopOutcome one = runLoop(/*shards=*/1, /*threads=*/1, /*events=*/6000);
  for (const int shards : {2, 5, 16}) {
    const LoopOutcome other = runLoop(shards, /*threads=*/1, /*events=*/6000);
    EXPECT_EQ(one.loads, other.loads) << "shards=" << shards;
    EXPECT_TRUE(countersEqual(one.counters, other.counters)) << "shards=" << shards;
  }
}

TEST(ShardedEventLoop, FinalStateInvariantAcrossThreadCounts) {
  const LoopOutcome serial = runLoop(/*shards=*/8, /*threads=*/1, /*events=*/6000);
  for (const int threads : {2, 4}) {
    const LoopOutcome parallel = runLoop(/*shards=*/8, threads, /*events=*/6000);
    EXPECT_EQ(serial.loads, parallel.loads) << "threads=" << threads;
    EXPECT_TRUE(countersEqual(serial.counters, parallel.counters))
        << "threads=" << threads;
  }
}

TEST(ShardedEventLoop, EpochObserverSeesEveryEvent) {
  workload::PoissonTrace trace(traceOptions(1000), 7);
  OnlineAllocator allocator(AllocatorOptions{.bins = 16, .arrivalChoices = 1});
  runner::ThreadPool pool(1);
  ShardedEventLoop loop(allocator, LoopOptions{.shards = 2, .epochEvents = 128}, pool);
  std::int64_t observed = 0;
  std::int64_t epochs = 0;
  std::int64_t lastEpoch = -1;
  const auto result = loop.run(trace, [&](const EpochStats& s) {
    observed += s.events;
    EXPECT_EQ(s.epoch, lastEpoch + 1);
    lastEpoch = s.epoch;
    ++epochs;
    EXPECT_EQ(s.totalLoad, allocator.totalLoad());
  });
  EXPECT_EQ(observed, 1000);
  EXPECT_EQ(result.epochs, epochs);
  EXPECT_EQ(result.epochs, (1000 + 127) / 128);
}

TEST(ShardedEventLoop, RlsMigrationShrinksTheGapVersusPlacementOnly) {
  // Same arrivals/departures rates; with the RLS clocks off the gap is the
  // raw d-choice band, with them on the allocator must hold a tighter one.
  const auto gapWith = [](double resampleRate, std::uint64_t seed) {
    workload::OpenTraceOptions o = traceOptions(40000);
    o.arrivalRatePerBin = 4.0;  // mean load/bin ~ 16: room for imbalance
    o.departureRate = 0.25;
    o.resampleRate = resampleRate;
    workload::PoissonTrace trace(o, seed);
    OnlineAllocator allocator(AllocatorOptions{.bins = 32, .arrivalChoices = 1});
    runner::ThreadPool pool(1);
    LoopOptions loopOptions;
    loopOptions.repairMovesPerEpoch = 0;  // isolate the per-event rule
    loopOptions.seed = seed;
    ShardedEventLoop loop(allocator, loopOptions, pool);
    double gapSum = 0.0;
    std::int64_t samples = 0;
    loop.run(trace, [&](const EpochStats& s) {
      gapSum += static_cast<double>(s.gap());
      ++samples;
    });
    return gapSum / static_cast<double>(samples);
  };
  double off = 0.0;
  double on = 0.0;
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    off += gapWith(0.0, seed);
    on += gapWith(1.0, seed);
  }
  EXPECT_LT(on, 0.6 * off) << "RLS on: " << on / 3 << " off: " << off / 3;
}

// ------------------------------------------------- scenario determinism

/// The deterministic record types of one serve_* run ("table" and
/// "scenario_start"; wall-clock lives in timing/throughput/scenario_end).
std::string deterministicRecords(const std::string& jsonl) {
  std::istringstream in(jsonl);
  std::string line;
  std::string out;
  while (std::getline(in, line)) {
    const report::Json rec = report::Json::parse(line);
    const std::string& type = rec.at("type").asString();
    if (type == "table" || type == "scenario_start") {
      out += line;
      out.push_back('\n');
    }
  }
  return out;
}

std::string runServeScenario(const std::string& name, std::uint64_t seed, int threads,
                             const std::vector<std::string>& params) {
  scenario::ScenarioRegistry registry;
  scenario::registerBuiltinScenarios(registry);
  std::ostringstream out;
  report::ResultSink sink(&out);
  scenario::ScenarioContext ctx;
  ctx.seed = seed;
  ctx.threads = threads;
  ctx.sink = &sink;
  ctx.console = nullptr;
  std::string error;
  EXPECT_TRUE(scenario::ScenarioParams::fromTokens(params, &ctx.params, &error)) << error;
  registry.runOne(name, ctx);
  EXPECT_TRUE(ctx.params.unusedKeys().empty());
  return out.str();
}

TEST(ServeScenarios, ByteIdenticalAcrossRunsThreadsAndShards) {
  const std::vector<std::string> params = {"n=32", "events=20000", "epoch=256"};
  for (const std::string name : {"serve_poisson", "serve_adversarial"}) {
    const std::string a = deterministicRecords(runServeScenario(name, 5, 1, params));
    const std::string b = deterministicRecords(runServeScenario(name, 5, 1, params));
    const std::string c = deterministicRecords(runServeScenario(name, 5, 3, params));
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b) << name << ": same seed, same threads";
    EXPECT_EQ(a, c) << name << ": same seed, different threads";
    // Different shard count: the tables themselves must not move (the
    // param shows up only in scenario_start, which embeds the overrides).
    std::vector<std::string> sharded = params;
    sharded.push_back("shards=3");
    const std::string d = runServeScenario(name, 5, 1, sharded);
    std::istringstream in(deterministicRecords(d));
    std::string line;
    std::string tablesOnly;
    std::string tablesA;
    while (std::getline(in, line)) {
      if (line.find("\"type\":\"table\"") != std::string::npos) tablesOnly += line + "\n";
    }
    std::istringstream inA(a);
    while (std::getline(inA, line)) {
      if (line.find("\"type\":\"table\"") != std::string::npos) tablesA += line + "\n";
    }
    EXPECT_EQ(tablesA, tablesOnly) << name << ": same seed, different shard count";
    const std::string e = deterministicRecords(runServeScenario(name, 6, 1, params));
    EXPECT_NE(a, e) << name << ": a different seed must change the tables";
  }
}

TEST(ServeScenarios, PartitionedKnobPreservesTheDeterministicRecords) {
  // partitioned= flips the apply execution strategy only; the scenario's
  // deterministic records must not move. threads=3 gives the auto and
  // forced-partitioned paths real workers.
  const std::vector<std::string> base = {"n=32", "events=20000", "epoch=256"};
  const auto with = [&](const std::string& mode) {
    std::vector<std::string> params = base;
    params.push_back("partitioned=" + mode);
    return deterministicRecords(runServeScenario("serve_poisson", 5, 3, params));
  };
  const std::string sequential = with("0");
  EXPECT_FALSE(sequential.empty());
  // scenario_start embeds the overrides, so compare the tables only.
  const auto tables = [](const std::string& records) {
    std::istringstream in(records);
    std::string line;
    std::string out;
    while (std::getline(in, line)) {
      if (line.find("\"type\":\"table\"") != std::string::npos) out += line + "\n";
    }
    return out;
  };
  EXPECT_EQ(tables(sequential), tables(with("1")));
  EXPECT_EQ(tables(sequential), tables(with("auto")));
  EXPECT_EQ(tables(sequential), tables(with("seq")));
  EXPECT_EQ(tables(sequential), tables(with("part")));
}

TEST(ServeScenarios, ScalingSweepEmitsPerRowThroughput) {
  const std::string jsonl = runServeScenario(
      "serve_scaling", 4, 1,
      {"n=16", "events=4000", "epoch=128", "thread_list=1", "shard_list=1,2"});
  std::vector<std::string> names;
  std::istringstream in(jsonl);
  std::string line;
  while (std::getline(in, line)) {
    const report::Json rec = report::Json::parse(line);
    if (rec.at("type").asString() != "throughput") continue;
    names.push_back(rec.at("scenario").asString());
    EXPECT_EQ(rec.at("events").asInt(), 4000);
    EXPECT_GT(rec.at("events_per_sec").asDouble(), 0.0);
  }
  EXPECT_EQ(names,
            (std::vector<std::string>{"serve_scaling/s1t1", "serve_scaling/s2t1"}));
}

TEST(ServeScenarios, ThroughputRecordEmitted) {
  const std::string jsonl =
      runServeScenario("serve_bursty", 3, 1, {"n=16", "events=4000"});
  bool sawThroughput = false;
  std::istringstream in(jsonl);
  std::string line;
  while (std::getline(in, line)) {
    const report::Json rec = report::Json::parse(line);
    if (rec.at("type").asString() != "throughput") continue;
    sawThroughput = true;
    EXPECT_EQ(rec.at("scenario").asString(), "serve_bursty");
    EXPECT_EQ(rec.at("events").asInt(), 4000);
    EXPECT_GT(rec.at("events_per_sec").asDouble(), 0.0);
  }
  EXPECT_TRUE(sawThroughput);
}

}  // namespace
}  // namespace rlslb::serve
