// Tests for src/stats: streaming moments, summaries, special functions,
// hypothesis tests, OLS regression, bootstrap, and the dense solver.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/xoshiro256pp.hpp"
#include "stats/bootstrap.hpp"
#include "stats/linalg.hpp"
#include "stats/regression.hpp"
#include "stats/running_stat.hpp"
#include "stats/special.hpp"
#include "stats/summary.hpp"
#include "stats/tests.hpp"

namespace rlslb::stats {
namespace {

TEST(RunningStat, MeanVarianceExact) {
  RunningStat rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_EQ(rs.count(), 8);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat rs;
  rs.add(3.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.sem(), 0.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  rng::Xoshiro256pp eng(1);
  RunningStat whole;
  RunningStat partA;
  RunningStat partB;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng::standardNormal(eng) * 3.0 + 1.0;
    whole.add(x);
    (i % 2 == 0 ? partA : partB).add(x);
  }
  partA.merge(partB);
  EXPECT_EQ(partA.count(), whole.count());
  EXPECT_NEAR(partA.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(partA.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(partA.min(), whole.min());
  EXPECT_DOUBLE_EQ(partA.max(), whole.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a;
  RunningStat b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1);
  b.merge(a);
  EXPECT_EQ(b.count(), 1);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Quantile, LinearInterpolation) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 1.75);
}

TEST(Summary, FullFieldCheck) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 100);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.median, 50.5);
  EXPECT_NEAR(s.p90, 90.1, 1e-9);
  EXPECT_GT(s.ci95Half, 0.0);
  // CI should contain the mean of the generating uniform: 50.5 trivially.
  EXPECT_NEAR(s.stddev, 29.011, 0.01);
}

TEST(Pearson, PerfectAndAnticorrelation) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearsonCorrelation(x, y), 1.0, 1e-12);
  const std::vector<double> z = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearsonCorrelation(x, z), -1.0, 1e-12);
}

TEST(Pearson, IndependentNearZero) {
  rng::Xoshiro256pp eng(54);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 20000; ++i) {
    x.push_back(rng::standardNormal(eng));
    y.push_back(rng::standardNormal(eng));
  }
  EXPECT_NEAR(pearsonCorrelation(x, y), 0.0, 0.03);
}

TEST(Pearson, ConstantInputIsZero) {
  const std::vector<double> x = {1, 1, 1};
  const std::vector<double> y = {2, 3, 4};
  EXPECT_DOUBLE_EQ(pearsonCorrelation(x, y), 0.0);
}

TEST(Special, NormalCdfKnownValues) {
  EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normalCdf(1.959963985), 0.975, 1e-9);
  EXPECT_NEAR(normalCdf(-1.0), 0.15865525393145707, 1e-10);
}

TEST(Special, NormalQuantileRoundTrip) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(normalCdf(normalQuantile(p)), p, 1e-10) << p;
  }
}

TEST(Special, GammaPAgainstChiSquare) {
  // Chi-square(2) CDF at x is 1 - exp(-x/2).
  for (double x : {0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(gammaP(1.0, x / 2.0), 1.0 - std::exp(-x / 2.0), 1e-12);
  }
}

TEST(Special, GammaPQComplementary) {
  for (double a : {0.5, 1.0, 3.0, 10.0}) {
    for (double x : {0.1, 1.0, 5.0, 20.0}) {
      EXPECT_NEAR(gammaP(a, x) + gammaQ(a, x), 1.0, 1e-12);
    }
  }
}

TEST(Special, KolmogorovSurvivalKnown) {
  EXPECT_NEAR(kolmogorovSurvival(1.36), 0.0505, 0.002);  // classic 5% point
  EXPECT_DOUBLE_EQ(kolmogorovSurvival(0.0), 1.0);
  EXPECT_NEAR(kolmogorovSurvival(2.0), 0.00067, 2e-4);
}

TEST(Special, ChiSquareSurvivalKnown) {
  // 95th percentile of chi2 with 5 dof is about 11.07.
  EXPECT_NEAR(chiSquareSurvival(11.0705, 5), 0.05, 1e-3);
}

TEST(Special, TQuantileMonotone) {
  EXPECT_NEAR(tQuantile975(1), 12.706, 1e-3);
  EXPECT_GT(tQuantile975(5), tQuantile975(30));
  EXPECT_NEAR(tQuantile975(1000), 1.96, 1e-2);
}

TEST(MannWhitney, SameDistributionHighP) {
  rng::Xoshiro256pp eng(2);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 500; ++i) {
    a.push_back(rng::exponential(eng, 1.0));
    b.push_back(rng::exponential(eng, 1.0));
  }
  EXPECT_GT(mannWhitneyU(a, b).pValue, 0.001);
}

TEST(MannWhitney, ShiftedDistributionLowP) {
  rng::Xoshiro256pp eng(3);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 500; ++i) {
    a.push_back(rng::standardNormal(eng));
    b.push_back(rng::standardNormal(eng) + 0.5);
  }
  EXPECT_LT(mannWhitneyU(a, b).pValue, 1e-4);
}

TEST(MannWhitney, AllTied) {
  const std::vector<double> a(10, 1.0);
  const std::vector<double> b(10, 1.0);
  EXPECT_DOUBLE_EQ(mannWhitneyU(a, b).pValue, 1.0);
}

TEST(KsTwoSample, SameDistributionHighP) {
  rng::Xoshiro256pp eng(4);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 800; ++i) {
    a.push_back(rng::uniformDouble(eng));
    b.push_back(rng::uniformDouble(eng));
  }
  EXPECT_GT(ksTwoSample(a, b).pValue, 0.001);
}

TEST(KsTwoSample, DifferentShapeLowP) {
  rng::Xoshiro256pp eng(5);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 800; ++i) {
    a.push_back(rng::uniformDouble(eng));
    b.push_back(rng::exponential(eng, 2.0));
  }
  EXPECT_LT(ksTwoSample(a, b).pValue, 1e-6);
}

TEST(KsOneSample, UniformAgainstIdentityCdf) {
  rng::Xoshiro256pp eng(51);
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) samples.push_back(rng::uniformDouble(eng));
  const auto res = ksOneSample(samples, [](double x) {
    if (x < 0) return 0.0;
    if (x > 1) return 1.0;
    return x;
  });
  EXPECT_GT(res.pValue, 0.001);
}

TEST(KsOneSample, ExponentialAgainstItsCdf) {
  rng::Xoshiro256pp eng(52);
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) samples.push_back(rng::exponential(eng, 2.0));
  const auto res = ksOneSample(samples, [](double x) { return 1.0 - std::exp(-2.0 * x); });
  EXPECT_GT(res.pValue, 0.001);
}

TEST(KsOneSample, WrongCdfRejected) {
  rng::Xoshiro256pp eng(53);
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) samples.push_back(rng::exponential(eng, 2.0));
  // Claim it is Exp(1): should be decisively rejected.
  const auto res = ksOneSample(samples, [](double x) { return 1.0 - std::exp(-x); });
  EXPECT_LT(res.pValue, 1e-6);
}

TEST(KsTwoSample, StatisticBounds) {
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {10, 11, 12};
  const auto r = ksTwoSample(a, b);
  EXPECT_DOUBLE_EQ(r.statistic, 1.0);  // fully separated
  EXPECT_LT(r.pValue, 0.1);
}

TEST(ChiSquareGof, UniformCountsPass) {
  const std::vector<std::int64_t> obs = {100, 95, 105, 98, 102};
  const std::vector<double> expected(5, 100.0);
  EXPECT_GT(chiSquareGof(obs, expected).pValue, 0.5);
}

TEST(ChiSquareGof, SkewedCountsFail) {
  const std::vector<std::int64_t> obs = {200, 50, 100, 100, 50};
  const std::vector<double> expected(5, 100.0);
  EXPECT_LT(chiSquareGof(obs, expected).pValue, 1e-6);
}

TEST(Linalg, SolvesKnownSystem) {
  Matrix a(2, 2);
  a.at(0, 0) = 2;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 3;
  std::vector<double> x;
  ASSERT_TRUE(solveLinearSystem(a, {5, 10}, x));
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Linalg, DetectsSingular) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 4;
  std::vector<double> x;
  EXPECT_FALSE(solveLinearSystem(a, {1, 2}, x));
}

TEST(Linalg, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a.at(0, 0) = 0;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 0;
  std::vector<double> x;
  ASSERT_TRUE(solveLinearSystem(a, {3, 7}, x));
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Linalg, RandomSystemsRoundTrip) {
  rng::Xoshiro256pp eng(6);
  for (int rep = 0; rep < 20; ++rep) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng::uniformIndex(eng, 8));
    Matrix a(n, n);
    std::vector<double> xTrue(n);
    for (std::size_t i = 0; i < n; ++i) {
      xTrue[i] = rng::standardNormal(eng);
      for (std::size_t j = 0; j < n; ++j) a.at(i, j) = rng::standardNormal(eng);
      a.at(i, i) += static_cast<double>(n);  // diagonally dominant: well-posed
    }
    std::vector<double> b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) b[i] += a.at(i, j) * xTrue[j];
    }
    std::vector<double> x;
    ASSERT_TRUE(solveLinearSystem(a, b, x));
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xTrue[i], 1e-8);
  }
}

TEST(Ols, RecoversLinearModel) {
  rng::Xoshiro256pp eng(7);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double x1 = rng::uniformDouble(eng) * 10;
    const double x2 = rng::uniformDouble(eng) * 5;
    rows.push_back({x1, x2, 1.0});
    y.push_back(2.0 * x1 - 3.0 * x2 + 7.0 + 0.01 * rng::standardNormal(eng));
  }
  const OlsFit fit = olsFit(rows, y);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.coefficients[0], 2.0, 0.01);
  EXPECT_NEAR(fit.coefficients[1], -3.0, 0.01);
  EXPECT_NEAR(fit.coefficients[2], 7.0, 0.05);
  EXPECT_GT(fit.r2, 0.999);
}

TEST(Ols, PerfectFitR2One) {
  std::vector<std::vector<double>> rows = {{1, 1}, {2, 1}, {3, 1}};
  std::vector<double> y = {3, 5, 7};  // y = 2x + 1
  const OlsFit fit = olsFit(rows, y);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
  EXPECT_NEAR(fit.residualRms, 0.0, 1e-9);
}

TEST(Ols, SingularFeaturesReported) {
  std::vector<std::vector<double>> rows = {{1, 2}, {2, 4}, {3, 6}};  // collinear
  std::vector<double> y = {1, 2, 3};
  EXPECT_FALSE(olsFit(rows, y).ok);
}

TEST(Bootstrap, MeanCiCoversTruth) {
  rng::Xoshiro256pp eng(8);
  std::vector<double> samples;
  for (int i = 0; i < 400; ++i) samples.push_back(rng::exponential(eng, 0.5));  // mean 2
  const auto meanFn = [](const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x;
    return s / static_cast<double>(v.size());
  };
  const BootstrapCi ci = bootstrapCi(samples, meanFn, 500, 0.95, eng);
  EXPECT_LT(ci.lo, ci.estimate);
  EXPECT_GT(ci.hi, ci.estimate);
  EXPECT_LT(ci.lo, 2.0);
  EXPECT_GT(ci.hi, 1.8);  // generous: CI should sit near the truth
}

TEST(Bootstrap, DegenerateSample) {
  rng::Xoshiro256pp eng(9);
  const std::vector<double> samples(50, 3.0);
  const auto meanFn = [](const std::vector<double>& v) { return v[0]; };
  const BootstrapCi ci = bootstrapCi(samples, meanFn, 100, 0.9, eng);
  EXPECT_DOUBLE_EQ(ci.lo, 3.0);
  EXPECT_DOUBLE_EQ(ci.hi, 3.0);
}

}  // namespace
}  // namespace rlslb::stats
