// scenario/: registry semantics, parameter spec layer, and the JSONL
// determinism contract (fixed seed => byte-identical deterministic records
// across repeated runs and thread counts).
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "config/generators.hpp"
#include "core/rls.hpp"
#include "report/json.hpp"
#include "scenario/harness.hpp"
#include "scenario/scenario.hpp"

namespace rlslb::scenario {
namespace {

ScenarioParams paramsOf(const std::vector<std::string>& tokens) {
  ScenarioParams p;
  std::string error;
  EXPECT_TRUE(ScenarioParams::fromTokens(tokens, &p, &error)) << error;
  return p;
}

// ------------------------------------------------------------- params

TEST(ScenarioParams, TypedGetters) {
  const ScenarioParams p =
      paramsOf({"n=1024", "big=1e6", "rate=0.25", "label=hello", "flag=true"});
  EXPECT_EQ(p.getInt("n", 0), 1024);
  EXPECT_EQ(p.getInt("big", 0), 1'000'000);  // scientific shorthand
  EXPECT_DOUBLE_EQ(p.getDouble("rate", 0.0), 0.25);
  EXPECT_EQ(p.getString("label", ""), "hello");
  EXPECT_TRUE(p.getBool("flag", false));
  // Defaults for absent keys.
  EXPECT_EQ(p.getInt("absent", 7), 7);
  EXPECT_DOUBLE_EQ(p.getDouble("absent", 1.5), 1.5);
  EXPECT_FALSE(p.has("absent"));
}

TEST(ScenarioParams, MalformedTokensRejected) {
  ScenarioParams p;
  std::string error;
  EXPECT_FALSE(ScenarioParams::fromTokens({"novalue"}, &p, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ScenarioParams::fromTokens({"=5"}, &p, &error));
}

TEST(ScenarioParams, UnusedKeySweep) {
  const ScenarioParams p = paramsOf({"used=1", "typo=2"});
  EXPECT_EQ(p.getInt("used", 0), 1);
  const auto unused = p.unusedKeys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(ScenarioParams, ToJsonIsSortedAndRaw) {
  const ScenarioParams p = paramsOf({"b=2", "a=1e6"});
  EXPECT_EQ(p.toJson().dump(), "{\"a\":\"1e6\",\"b\":\"2\"}");
}

// ------------------------------------------------------------- registry

Scenario trivialScenario(const std::string& name) {
  return {name, "desc", "ref", [](ScenarioContext&) {}};
}

TEST(ScenarioRegistry, AddFindList) {
  ScenarioRegistry r;
  r.add(trivialScenario("beta"));
  r.add(trivialScenario("alpha"));
  ASSERT_NE(r.find("alpha"), nullptr);
  EXPECT_EQ(r.find("alpha")->description, "desc");
  EXPECT_EQ(r.find("nope"), nullptr);
  const auto all = r.list();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0]->name, "alpha");  // name-sorted
  EXPECT_EQ(all[1]->name, "beta");
}

TEST(ScenarioRegistry, DuplicateNameThrows) {
  ScenarioRegistry r;
  r.add(trivialScenario("x"));
  EXPECT_THROW(r.add(trivialScenario("x")), std::invalid_argument);
}

TEST(ScenarioRegistry, RunOneUnknownNameThrowsWithRoster) {
  ScenarioRegistry r;
  r.add(trivialScenario("known"));
  ScenarioContext ctx;
  ctx.console = nullptr;
  try {
    r.runOne("unknown", ctx);
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown scenario 'unknown'"), std::string::npos);
    EXPECT_NE(what.find("known"), std::string::npos);  // lists the roster
  }
}

TEST(ScenarioRegistry, BuiltinRosterAtLeastElevenAndIdempotent) {
  ScenarioRegistry r;
  registerBuiltinScenarios(r);
  EXPECT_GE(r.size(), 11u);
  EXPECT_NE(r.find("e1_theorem1"), nullptr);
  const std::size_t before = r.size();
  registerBuiltinScenarios(r);  // second call must be a no-op
  EXPECT_EQ(r.size(), before);
  for (const Scenario* s : r.list()) {
    EXPECT_FALSE(s->description.empty()) << s->name;
    EXPECT_FALSE(s->paperRef.empty()) << s->name;
  }
}

// ------------------------------------------------------------- context

TEST(ScenarioContext, ScalingHelpers) {
  ScenarioContext ctx;
  ctx.scale = 0.5;
  EXPECT_EQ(ctx.repsOr(30), 15);
  ctx.reps = 4;
  EXPECT_EQ(ctx.repsOr(30), 4);
  EXPECT_EQ(ctx.sized(1024, 2), 512);
  EXPECT_EQ(ctx.sized(1, 2), 2);  // quantum floor
}

// --------------------------------------------------- determinism contract

/// JSONL minus the wall-clock record types ("manifest", "timing",
/// "throughput", "metrics", "scenario_end"): the part of the stream the
/// contract says is byte-identical.
std::string deterministicRecords(const std::string& jsonl) {
  std::istringstream in(jsonl);
  std::string line;
  std::string out;
  while (std::getline(in, line)) {
    std::string error;
    const report::Json rec = report::Json::parse(line, &error);
    EXPECT_TRUE(error.empty()) << error;
    const std::string& type = rec.at("type").asString();
    if (type == "manifest" || type == "timing" || type == "throughput" ||
        type == "metrics" || type == "scenario_end") {
      continue;
    }
    out += line;
    out.push_back('\n');
  }
  return out;
}

std::string runToJsonl(const ScenarioRegistry& r, const std::string& name, std::uint64_t seed,
                       int threads, const std::vector<std::string>& paramTokens) {
  std::ostringstream out;
  report::ResultSink sink(&out);
  ScenarioContext ctx;
  ctx.seed = seed;
  ctx.threads = threads;
  ctx.reps = 4;
  ctx.sink = &sink;
  ctx.console = nullptr;
  std::string error;
  EXPECT_TRUE(ScenarioParams::fromTokens(paramTokens, &ctx.params, &error)) << error;
  r.runOne(name, ctx);
  EXPECT_TRUE(ctx.params.unusedKeys().empty());
  return out.str();
}

TEST(ScenarioDeterminism, RealScenarioByteIdenticalAcrossRunsAndThreads) {
  ScenarioRegistry r;
  registerBuiltinScenarios(r);
  // Tiny e15 run: params shrink it to milliseconds and double as the
  // param-override test (n and horizon must be honored).
  const std::vector<std::string> params = {"n=32", "ratio=8", "horizon=3", "dt=0.5"};
  const std::string a = deterministicRecords(runToJsonl(r, "e15_trajectory", 99, 1, params));
  const std::string b = deterministicRecords(runToJsonl(r, "e15_trajectory", 99, 1, params));
  const std::string c = deterministicRecords(runToJsonl(r, "e15_trajectory", 99, 3, params));
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "same seed, same thread count";
  EXPECT_EQ(a, c) << "same seed, different thread count";

  // The overrides really took: the table title embeds n=32, and a
  // different seed changes the records.
  EXPECT_NE(a.find("n=32"), std::string::npos);
  const std::string d = deterministicRecords(runToJsonl(r, "e15_trajectory", 100, 1, params));
  EXPECT_NE(a, d) << "different seed must change the sampled tables";
}

TEST(ScenarioDeterminism, SinkRecordsTaggedWithScenarioName) {
  ScenarioRegistry r;
  r.add({"tagcheck", "d", "p", [](ScenarioContext& ctx) {
           Table t({"v"});
           t.row().cell(core::balancingTime(config::allInOne(16, 64), {.seed = ctx.seed}));
           ctx.emitTable(t, "tbl");
         }});
  const std::string jsonl = runToJsonl(r, "tagcheck", 1, 1, {});
  std::istringstream in(jsonl);
  std::string line;
  bool sawStart = false;
  bool sawTable = false;
  bool sawEnd = false;
  while (std::getline(in, line)) {
    const report::Json rec = report::Json::parse(line);
    const std::string& type = rec.at("type").asString();
    if (type == "scenario_start") sawStart = true;
    if (type == "table") {
      sawTable = true;
      EXPECT_EQ(rec.at("scenario").asString(), "tagcheck");
    }
    if (type == "scenario_end") {
      sawEnd = true;
      EXPECT_GE(rec.at("wall_s").asDouble(), 0.0);
    }
  }
  EXPECT_TRUE(sawStart && sawTable && sawEnd);
}

}  // namespace
}  // namespace rlslb::scenario
