// workload/compose.hpp + trace_io.hpp formats: the trace algebra's
// degenerate cases reproduce the standalone generators bit-for-bit, a
// composed trace is a pure function of (options, spec, seed), the spec
// parser reports errors without aborting, and every trace format (JSONL /
// CSV / binary) round-trips the event stream bit-exactly.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "workload/compose.hpp"
#include "workload/generators.hpp"
#include "workload/trace_io.hpp"

namespace rlslb::workload {
namespace {

OpenTraceOptions baseOptions(std::int64_t events) {
  OpenTraceOptions o;
  o.bins = 32;
  o.arrivalRatePerBin = 1.0;
  o.departureRate = 0.25;
  o.resampleRate = 1.0;
  o.maxEvents = events;
  return o;
}

std::vector<Event> drain(TraceGenerator& trace) {
  std::vector<Event> events;
  Event e;
  while (trace.next(&e)) events.push_back(e);
  return events;
}

/// Bit-level equality: operator== on doubles would conflate -0.0 with 0.0
/// and the byte-determinism contract is about bits, not values.
bool bitEqual(const std::vector<Event>& a, const std::vector<Event>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a[i].time) != std::bit_cast<std::uint64_t>(b[i].time) ||
        a[i].kind != b[i].kind || a[i].ball != b[i].ball || a[i].weight != b[i].weight) {
      return false;
    }
  }
  return true;
}

TEST(ComposeSpec, ParsesAndNormalizes) {
  ComposeSpec spec;
  ASSERT_TRUE(parseComposeSpec("poisson", &spec));
  EXPECT_EQ(spec.canonical(), "poisson(1)");
  ASSERT_TRUE(parseComposeSpec(" diurnal( 0.8 , 64 ) * bursty + hotspot(16,32,8) ", &spec));
  EXPECT_EQ(spec.canonical(), "diurnal(0.8,64)*bursty(8,0.05,0.5)+hotspot(16,32,8)");
  ASSERT_EQ(spec.terms.size(), 2u);
  EXPECT_EQ(spec.terms[0].size(), 2u);
  // Partial args fill left to right, the rest stay at the defaults.
  ASSERT_TRUE(parseComposeSpec("bursty(4)", &spec));
  EXPECT_EQ(spec.canonical(), "bursty(4,0.05,0.5)");
  ASSERT_TRUE(parseComposeSpec("poisson()", &spec));
  EXPECT_EQ(spec.canonical(), "poisson(1)");
}

TEST(ComposeSpec, RejectsMalformedSpecs) {
  ComposeSpec spec;
  std::string error;
  EXPECT_FALSE(parseComposeSpec("", &spec, &error));
  EXPECT_FALSE(parseComposeSpec("mystery(1)", &spec, &error));
  EXPECT_NE(error.find("unknown factor"), std::string::npos);
  EXPECT_FALSE(parseComposeSpec("poisson(1,2)", &spec, &error));
  EXPECT_NE(error.find("at most"), std::string::npos);
  EXPECT_FALSE(parseComposeSpec("poisson garbage", &spec, &error));
  EXPECT_NE(error.find("trailing"), std::string::npos);
  EXPECT_FALSE(parseComposeSpec("poisson+", &spec, &error));
  EXPECT_FALSE(parseComposeSpec("diurnal(1.5,64)", &spec, &error));  // amp >= 1
  EXPECT_FALSE(parseComposeSpec("bursty(0.5)", &spec, &error));      // factor < 1
  EXPECT_FALSE(parseComposeSpec("hotspot(16,32.5,8)", &spec, &error));  // frac size
  EXPECT_FALSE(parseComposeSpec("diurnal(0.8,", &spec, &error));
}

TEST(ComposedTrace, DegenerateSpecsMatchStandaloneGeneratorsBitForBit) {
  const std::int64_t events = 4000;
  const std::uint64_t seed = 20170529;
  {
    PoissonTrace reference(baseOptions(events), seed);
    ComposedTrace composed(baseOptions(events), "poisson", seed);
    EXPECT_TRUE(bitEqual(drain(reference), drain(composed)));
  }
  {
    DiurnalTraceOptions o;
    o.base = baseOptions(events);
    o.amplitude = 0.8;
    o.period = 64.0;
    DiurnalTrace reference(o, seed);
    ComposedTrace composed(baseOptions(events), "diurnal(0.8,64)", seed);
    EXPECT_TRUE(bitEqual(drain(reference), drain(composed)));
  }
  {
    BurstyTraceOptions o;
    o.base = baseOptions(events);
    o.burstRateFactor = 8.0;
    o.calmToBurstRate = 0.05;
    o.burstToCalmRate = 0.5;
    BurstyTrace reference(o, seed);
    ComposedTrace composed(baseOptions(events), "bursty(8,0.05,0.5)", seed);
    EXPECT_TRUE(bitEqual(drain(reference), drain(composed)));
  }
  {
    HotspotTraceOptions o;
    o.base = baseOptions(events);
    o.burstPeriod = 16.0;
    o.burstSize = 32;
    o.hotWeight = 8;
    HotspotTrace reference(o, seed);
    ComposedTrace composed(baseOptions(events), "hotspot(16,32,8)", seed);
    EXPECT_TRUE(bitEqual(drain(reference), drain(composed)));
  }
}

TEST(ComposedTrace, PureFunctionOfOptionsSpecAndSeed) {
  const std::string spec = "diurnal(0.8,64)*bursty(8,0.05,0.5)+poisson(0.5)+hotspot(8,4,2)";
  ComposedTrace a(baseOptions(3000), spec, 7);
  ComposedTrace b(baseOptions(3000), spec, 7);
  const std::vector<Event> streamA = drain(a);
  EXPECT_TRUE(bitEqual(streamA, drain(b)));
  EXPECT_FALSE(streamA.empty());
  // A different seed moves every stochastic draw.
  ComposedTrace c(baseOptions(3000), spec, 8);
  EXPECT_FALSE(bitEqual(streamA, drain(c)));
  EXPECT_EQ(a.canonicalSpec(),
            "diurnal(0.8,64)*bursty(8,0.05,0.5)+poisson(0.5)+hotspot(8,4,2)");
  EXPECT_EQ(a.name(), "composed:" + a.canonicalSpec());
}

TEST(ComposedTrace, CoincidentOverlaysMergeInSpecOrder) {
  // Two overlays with nested periods: at t=16 both fire, the 8-period one
  // first in spec order; at t=8 and t=24 only the 8-period one fires.
  OpenTraceOptions o = baseOptions(400);
  o.arrivalRatePerBin = 0.0;  // burst arrivals only
  o.departureRate = 0.0;
  o.resampleRate = 0.0;
  ComposedTrace trace(o, "hotspot(8,2,1)+hotspot(16,3,1)", 1);
  const std::vector<Event> events = drain(trace);
  ASSERT_GE(events.size(), 7u);
  EXPECT_DOUBLE_EQ(events[0].time, 8.0);
  EXPECT_DOUBLE_EQ(events[1].time, 8.0);
  // t=16: 2 arrivals from the 8-period overlay, then 3 from the 16-period.
  for (int i = 2; i < 7; ++i) EXPECT_DOUBLE_EQ(events[static_cast<std::size_t>(i)].time, 16.0);
  EXPECT_EQ(events[2].ball + 1, events[3].ball);  // sequential ids across the merge
  EXPECT_EQ(events[6].ball, events[2].ball + 4);
}

TEST(TraceFactorRoster, ListsTheAlgebra) {
  const std::vector<TraceFactorSpec>& roster = traceFactorRoster();
  ASSERT_EQ(roster.size(), 6u);
  int factors = 0;
  int combinators = 0;
  for (const TraceFactorSpec& f : roster) {
    EXPECT_FALSE(f.name.empty());
    EXPECT_FALSE(f.description.empty());
    if (f.role == "factor") ++factors;
    if (f.role == "combinator") ++combinators;
  }
  EXPECT_EQ(factors, 4);
  EXPECT_EQ(combinators, 2);
}

TEST(TraceIo, FormatFromPath) {
  EXPECT_EQ(traceFormatFromPath("a/b/trace.jsonl"), TraceFormat::kJsonl);
  EXPECT_EQ(traceFormatFromPath("trace.csv"), TraceFormat::kCsv);
  EXPECT_EQ(traceFormatFromPath("trace.bin"), TraceFormat::kBinary);
  EXPECT_EQ(traceFormatFromPath("no_extension"), TraceFormat::kJsonl);
}

class TraceRoundTrip : public ::testing::TestWithParam<TraceFormat> {};

TEST_P(TraceRoundTrip, RecordThenReplayIsBitExact) {
  const TraceFormat format = GetParam();
  // A composed trace exercises every event kind, weighted burst arrivals,
  // and non-trivial timestamps.
  ComposedTrace source(baseOptions(2500), "diurnal(0.8,64)*bursty(8,0.05,0.5)+hotspot(16,4,8)",
                       42);
  std::stringstream storage(std::ios::in | std::ios::out | std::ios::binary);
  RecordingTrace recorder(source, storage, format);
  const std::vector<Event> original = drain(recorder);
  ASSERT_FALSE(original.empty());

  const std::unique_ptr<TraceGenerator> reader = makeTraceReader(storage, format);
  std::vector<Event> replayed;
  Event e;
  while (reader->next(&e)) replayed.push_back(e);
  EXPECT_TRUE(bitEqual(original, replayed));
}

INSTANTIATE_TEST_SUITE_P(AllFormats, TraceRoundTrip,
                         ::testing::Values(TraceFormat::kJsonl, TraceFormat::kCsv,
                                           TraceFormat::kBinary),
                         [](const ::testing::TestParamInfo<TraceFormat>& info) {
                           return std::string(traceFormatName(info.param));
                         });

TEST(TraceIo, FormatConversionComposesWithoutLoss) {
  // JSONL -> events -> binary -> events -> CSV -> events: every hop equal.
  ComposedTrace source(baseOptions(1200), "bursty(8,0.05,0.5)+hotspot(8,2,3)", 9);
  std::stringstream jsonl;
  RecordingTrace jsonlRec(source, jsonl, TraceFormat::kJsonl);
  const std::vector<Event> original = drain(jsonlRec);

  JsonlTraceReader jsonlReader(jsonl);
  std::stringstream binary(std::ios::in | std::ios::out | std::ios::binary);
  RecordingTrace binaryRec(jsonlReader, binary, TraceFormat::kBinary);
  const std::vector<Event> viaBinary = drain(binaryRec);
  EXPECT_TRUE(bitEqual(original, viaBinary));

  BinaryTraceReader binaryReader(binary);
  std::stringstream csv;
  RecordingTrace csvRec(binaryReader, csv, TraceFormat::kCsv);
  const std::vector<Event> viaCsv = drain(csvRec);
  EXPECT_TRUE(bitEqual(original, viaCsv));

  CsvTraceReader csvReader(csv);
  std::vector<Event> last;
  Event e;
  while (csvReader.next(&e)) last.push_back(e);
  EXPECT_TRUE(bitEqual(original, last));
}

TEST(TraceIo, CountTraceEventsMatchesEveryFormat) {
  for (const TraceFormat format :
       {TraceFormat::kJsonl, TraceFormat::kCsv, TraceFormat::kBinary}) {
    PoissonTrace source(baseOptions(600), 3);
    std::stringstream storage(std::ios::in | std::ios::out | std::ios::binary);
    RecordingTrace recorder(source, storage, format);
    const std::vector<Event> original = drain(recorder);
    EXPECT_EQ(countTraceEvents(storage, format),
              static_cast<std::int64_t>(original.size()))
        << traceFormatName(format);
  }
}

TEST(TraceIo, CsvRowFormatting) {
  const Event event{1.25, EventKind::kArrive, 7, 3};
  EXPECT_EQ(formatTraceEventCsv(event), "1.25,arrive,7,3");
  Event parsed;
  ASSERT_TRUE(parseTraceEventCsv("1.25,arrive,7,3", &parsed));
  EXPECT_EQ(parsed, event);
  std::string error;
  EXPECT_FALSE(parseTraceEventCsv("1.25,arrive,7", &parsed, &error));
  EXPECT_FALSE(parseTraceEventCsv("1.25,arrive,7,3,9", &parsed, &error));
  EXPECT_FALSE(parseTraceEventCsv("x,arrive,7,3", &parsed, &error));
  EXPECT_FALSE(parseTraceEventCsv("1.25,levitate,7,3", &parsed, &error));
}

}  // namespace
}  // namespace rlslb::workload
