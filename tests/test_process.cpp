// Tests for src/process: the unified Process API, the registry, and --
// most importantly -- the equivalence suite pinning process::run
// byte-identical to the *historical* per-family run loops. Each reference
// loop below is a verbatim copy of the pre-refactor code, so if the generic
// loop ever drifts (an extra rng draw, an off-by-one stop, a different
// final check), these tests catch it against frozen behaviour rather than
// against the refactored wrappers themselves.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "config/generators.hpp"
#include "config/metrics.hpp"
#include "core/rls.hpp"
#include "dynamic/open_system.hpp"
#include "ext/speed_rls.hpp"
#include "ext/weighted_rls.hpp"
#include "graph/graph_engine.hpp"
#include "graph/topology.hpp"
#include "process/adapters.hpp"
#include "process/params.hpp"
#include "process/process.hpp"
#include "process/registry.hpp"
#include "process/replicate.hpp"
#include "protocols/crs.hpp"
#include "protocols/edm.hpp"
#include "protocols/repeated.hpp"
#include "protocols/selfish.hpp"
#include "protocols/threshold.hpp"
#include "rng/distributions.hpp"
#include "runner/thread_pool.hpp"
#include "serve/online_allocator.hpp"
#include "sim/balance_tracker.hpp"
#include "sim/naive_engine.hpp"

namespace rlslb::process {
namespace {

// ------------------------------------------------------- reference loops
// Verbatim copies of the pre-refactor per-family run loops.

sim::RunResult referenceSimRunUntil(sim::Engine& engine, sim::Target target,
                                    const sim::RunLimits& limits) {
  sim::RunResult result;
  bool reached = target.reached(engine.state());
  std::int64_t steps = 0;
  while (!reached && engine.time() < limits.maxTime && steps < limits.maxEvents) {
    if (!engine.step()) break;  // absorbed
    ++steps;
    reached = target.reached(engine.state());
  }
  result.time = engine.time();
  result.moves = engine.moves();
  result.activations = engine.activations();
  result.finalState = engine.state();
  result.reachedTarget = reached || target.reached(engine.state());
  return result;
}

std::int64_t referenceRoundRunUntilBalanced(protocols::RoundProtocol& p, std::int64_t x,
                                            std::int64_t maxRounds) {
  std::int64_t rounds = 0;
  const auto balancedWithin = [&] {
    const auto& loads = p.loads();
    const auto [mn, mx] = std::minmax_element(loads.begin(), loads.end());
    const std::int64_t n = p.numBins();
    if (x == 0) return config::isPerfectlyBalanced(*mn, *mx, n, p.numBalls());
    return config::isXBalancedInt(*mn, *mx, n, p.numBalls(), x);
  };
  for (std::int64_t r = 0; r < maxRounds; ++r) {
    if (balancedWithin()) return rounds;
    p.round();
    ++rounds;
  }
  return balancedWithin() ? rounds : -1;
}

std::int64_t referenceCrsRunUntilStable(protocols::CrsProtocol& p, std::int64_t maxSteps) {
  const std::int64_t checkEvery = std::max<std::int64_t>(1, p.numBins() / 8);
  std::int64_t sinceCheck = checkEvery;
  for (std::int64_t s = 0; s < maxSteps; ++s) {
    if (sinceCheck >= checkEvery) {
      sinceCheck = 0;
      if (p.isLocallyStable()) return p.steps();
    }
    p.step();
    ++sinceCheck;
  }
  return p.isLocallyStable() ? p.steps() : -1;
}

template <typename Engine>
struct ReferenceEquilibriumResult {
  double time = 0.0;
  std::int64_t activations = 0;
  std::int64_t moves = 0;
  bool reached = false;
};

template <typename Engine>
ReferenceEquilibriumResult<Engine> referenceRunUntilEquilibrium(Engine& engine,
                                                                std::int64_t maxActivations,
                                                                std::int64_t checkEvery) {
  ReferenceEquilibriumResult<Engine> r;
  std::int64_t sinceCheck = checkEvery;  // check before the first step
  while (engine.activations() < maxActivations) {
    if (sinceCheck >= checkEvery) {
      sinceCheck = 0;
      if (engine.isEquilibrium()) {
        r.reached = true;
        break;
      }
    }
    engine.step();
    ++sinceCheck;
  }
  if (!r.reached) r.reached = engine.isEquilibrium();
  r.time = engine.time();
  r.activations = engine.activations();
  r.moves = engine.moves();
  return r;
}

std::int64_t referenceOpenRunUntilTime(dynamic::OpenSystem& sys, double time) {
  std::int64_t events = 0;
  while (sys.time() < time) {
    if (!sys.step()) break;
    ++events;
  }
  return events;
}

void expectStatesEqual(const sim::BalanceState& a, const sim::BalanceState& b) {
  EXPECT_EQ(a.numBins, b.numBins);
  EXPECT_EQ(a.numBalls, b.numBalls);
  EXPECT_EQ(a.minLoad, b.minLoad);
  EXPECT_EQ(a.maxLoad, b.maxLoad);
  EXPECT_EQ(a.overloadedBalls, b.overloadedBalls);
}

void expectStateMatchesLoads(const sim::BalanceState& state,
                             const std::vector<std::int64_t>& loads) {
  const config::Metrics mm = config::computeMetrics(loads);
  EXPECT_EQ(state.numBins, static_cast<std::int64_t>(loads.size()));
  EXPECT_EQ(state.minLoad, mm.minLoad);
  EXPECT_EQ(state.maxLoad, mm.maxLoad);
  EXPECT_EQ(state.overloadedBalls, mm.overloadedBalls);
  std::int64_t total = 0;
  for (const std::int64_t v : loads) total += v;
  EXPECT_EQ(state.numBalls, total);
}

// --------------------------------------------- equivalence: sim engines

TEST(ProcessEquivalence, SimEnginesMatchReferenceLoop) {
  struct Case {
    core::SimOptions::EngineKind kind;
    int gap;
  };
  const Case cases[] = {
      {core::SimOptions::EngineKind::Naive, 1},
      {core::SimOptions::EngineKind::Naive, 2},
      {core::SimOptions::EngineKind::Jump, 1},
      {core::SimOptions::EngineKind::Hybrid, 1},
  };
  for (const Case& c : cases) {
    for (const auto start : {0, 1}) {
      const auto init =
          start == 0 ? config::allInOne(48, 48 * 6) : config::staircase(48, 48 * 6);
      core::SimOptions o;
      o.engine = c.kind;
      o.gap = c.gap;
      o.seed = 12345;
      auto a = core::makeEngine(init, o);
      auto b = core::makeEngine(init, o);

      const auto ra = referenceSimRunUntil(*a, sim::Target::perfect(), {});
      EngineProcess pb(*b);
      const RunResult rb = run(pb, Target::perfect(), {});

      // Bit-identical time pins the entire rng stream, not just the count.
      EXPECT_EQ(ra.time, rb.time);
      EXPECT_EQ(ra.moves, rb.moves);
      EXPECT_EQ(ra.activations, rb.activations);
      EXPECT_EQ(ra.reachedTarget, rb.reachedTarget);
      expectStatesEqual(ra.finalState, rb.finalState);
    }
  }
}

TEST(ProcessEquivalence, LimitsMatchReferenceLoop) {
  const auto init = config::allInOne(32, 512);
  for (const auto& limits :
       {sim::RunLimits{.maxTime = 2.5, .maxEvents = std::numeric_limits<std::int64_t>::max()},
        sim::RunLimits{.maxTime = std::numeric_limits<double>::infinity(), .maxEvents = 100}}) {
    core::SimOptions o;
    o.engine = core::SimOptions::EngineKind::Naive;
    o.seed = 7;
    auto a = core::makeEngine(init, o);
    auto b = core::makeEngine(init, o);
    const auto ra = referenceSimRunUntil(*a, sim::Target::perfect(), limits);
    EngineProcess pb(*b);
    const RunResult rb = run(pb, Target::perfect(), limits);
    EXPECT_EQ(ra.time, rb.time);
    EXPECT_EQ(ra.moves, rb.moves);
    EXPECT_EQ(ra.activations, rb.activations);
    EXPECT_EQ(ra.reachedTarget, rb.reachedTarget);
    expectStatesEqual(ra.finalState, rb.finalState);
  }
}

TEST(ProcessEquivalence, RegistryRlsKindsMatchCoreBalance) {
  const auto init = config::allInOne(40, 40 * 5);
  struct Case {
    const char* kind;
    core::SimOptions options;
  };
  std::vector<Case> cases;
  {
    core::SimOptions o;
    o.engine = core::SimOptions::EngineKind::Hybrid;
    o.seed = 99;
    cases.push_back({"rls", o});
    o.engine = core::SimOptions::EngineKind::Naive;
    cases.push_back({"rls_naive", o});
    o.engine = core::SimOptions::EngineKind::Jump;
    cases.push_back({"rls_jump", o});
  }
  for (const Case& c : cases) {
    const sim::RunResult legacy = core::balance(init, c.options);
    auto p = makeProcess(c.kind, init, c.options.seed);
    const RunResult viaRegistry = run(*p, Target::perfect(), {});
    EXPECT_EQ(legacy.time, viaRegistry.time) << c.kind;
    EXPECT_EQ(legacy.moves, viaRegistry.moves) << c.kind;
    EXPECT_EQ(legacy.activations, viaRegistry.activations) << c.kind;
    EXPECT_EQ(legacy.reachedTarget, viaRegistry.reachedTarget) << c.kind;
    expectStatesEqual(legacy.finalState, viaRegistry.finalState);
  }
}

// ----------------------------------------- equivalence: round protocols

TEST(ProcessEquivalence, RoundProtocolsMatchReferenceLoop) {
  const auto init = config::allInOne(24, 24 * 32);
  const std::int64_t band = 8;
  const char* kinds[] = {"selfish", "edm", "threshold", "repeated"};
  for (const char* kind : kinds) {
    auto pa = makeProcess(kind, init, 4242);
    auto pb = makeProcess(kind, init, 4242);
    auto& protoA = dynamic_cast<RoundProcess&>(*pa).underlying();

    // `repeated` churns forever near m >> n; cap the budget so both paths
    // exercise the budget-exhausted branch too.
    const std::int64_t maxRounds = 400;
    const std::int64_t legacy = referenceRoundRunUntilBalanced(protoA, band, maxRounds);

    RunLimits limits;
    limits.maxEvents = maxRounds;
    const RunResult r = run(*pb, Target::xBalanced(band), limits);
    const std::int64_t viaProcess =
        r.reachedTarget ? static_cast<std::int64_t>(r.clock.value) : -1;

    EXPECT_EQ(legacy, viaProcess) << kind;
    auto& protoB = dynamic_cast<RoundProcess&>(*pb).underlying();
    EXPECT_EQ(protoA.loads(), protoB.loads()) << kind;
  }
}

TEST(ProcessEquivalence, RunUntilBalancedWrapperMatchesReference) {
  // The retained legacy entry point itself (now a wrapper over
  // process::run) against the frozen reference loop.
  const auto init = config::allInOne(16, 1 << 12);
  protocols::SelfishRerouting a(init, 31);
  protocols::SelfishRerouting b(init, 31);
  const std::int64_t viaWrapper = a.runUntilBalanced(64, 200);
  const std::int64_t viaReference = referenceRoundRunUntilBalanced(b, 64, 200);
  EXPECT_EQ(viaWrapper, viaReference);
  EXPECT_EQ(a.loads(), b.loads());
}

// ----------------------------------------------------- equivalence: CRS

TEST(ProcessEquivalence, CrsMatchesReferenceStableLoop) {
  protocols::CrsProtocol a(32, 128, 77);
  protocols::CrsProtocol b(32, 128, 77);
  const std::int64_t legacy = referenceCrsRunUntilStable(a, 50'000'000);
  ASSERT_GE(legacy, 0);

  CrsProcess pb(b);
  RunLimits limits;
  limits.maxEvents = 50'000'000;
  const RunResult r = run(pb, Target::equilibrium(), limits);
  const std::int64_t viaProcess = r.reachedTarget ? b.steps() : -1;
  EXPECT_EQ(legacy, viaProcess);
  EXPECT_EQ(a.loads(), b.loads());
  EXPECT_EQ(a.moves(), b.moves());
}

// ----------------------------------------------------- equivalence: ext

TEST(ProcessEquivalence, SpeedRlsMatchesReferenceLoop) {
  const auto init = config::allInOne(32, 32 * 8);
  std::vector<std::int64_t> speeds(32, 1);
  for (std::size_t i = 16; i < 32; ++i) speeds[i] = 2;

  ext::SpeedRlsEngine a(init, speeds, 555);
  ext::SpeedRlsEngine b(init, speeds, 555);
  const std::int64_t checkEvery = std::max<std::int64_t>(1, 32 / 4);
  const auto legacy = referenceRunUntilEquilibrium(a, 10'000'000, checkEvery);

  const auto viaWrapper = b.runUntilEquilibrium(10'000'000);
  EXPECT_EQ(legacy.time, viaWrapper.time);
  EXPECT_EQ(legacy.activations, viaWrapper.activations);
  EXPECT_EQ(legacy.moves, viaWrapper.moves);
  EXPECT_EQ(legacy.reached, viaWrapper.reachedEquilibrium);
  EXPECT_EQ(a.loads(), b.loads());
}

TEST(ProcessEquivalence, WeightedRlsMatchesReferenceLoop) {
  const std::int64_t n = 24;
  std::vector<std::int64_t> weights(96, 1);
  for (std::size_t i = 0; i < weights.size(); i += 7) weights[i] = 5;
  std::vector<std::uint32_t> start(weights.size(), 0);

  ext::WeightedRlsEngine a(n, weights, start, 888);
  ext::WeightedRlsEngine b(n, weights, start, 888);
  const std::int64_t checkEvery =
      std::max<std::int64_t>(1, (n + static_cast<std::int64_t>(weights.size())) / 4);
  const auto legacy = referenceRunUntilEquilibrium(a, 20'000'000, checkEvery);

  const auto viaWrapper = b.runUntilEquilibrium(20'000'000);
  EXPECT_EQ(legacy.time, viaWrapper.time);
  EXPECT_EQ(legacy.activations, viaWrapper.activations);
  EXPECT_EQ(legacy.moves, viaWrapper.moves);
  EXPECT_EQ(legacy.reached, viaWrapper.reachedEquilibrium);
  EXPECT_EQ(a.loads(), b.loads());
}

// --------------------------------------------------- equivalence: graph

TEST(ProcessEquivalence, GraphEngineMatchesReferenceAndRegistry) {
  const std::int64_t n = 32;
  const auto init = config::allInOne(n, 4 * n);
  const auto topo = graph::Topology::cycle(n);

  graph::GraphRlsEngine a(init, topo, 1717);
  const auto legacy = referenceSimRunUntil(a, sim::Target::perfect(),
                                           {.maxTime = 1e9, .maxEvents = 2'000'000'000});

  ProcessParams params;
  params.set("topology", "cycle");
  auto p = makeProcess("graph_rls", init, 1717, params);
  EXPECT_TRUE(p->capabilities().topology);
  const RunResult r = run(*p, Target::perfect(), {.maxTime = 1e9, .maxEvents = 2'000'000'000});

  EXPECT_EQ(legacy.time, r.time);
  EXPECT_EQ(legacy.moves, r.moves);
  EXPECT_EQ(legacy.activations, r.activations);
  expectStatesEqual(legacy.finalState, r.finalState);
}

// ----------------------------------------------- equivalence: open system

TEST(ProcessEquivalence, OpenSystemMatchesReferenceTimeLoop) {
  dynamic::OpenSystemOptions options;
  options.arrivalRatePerBin = 2.0;
  options.departureRate = 0.5;
  dynamic::OpenSystem a(16, options, 2024);
  dynamic::OpenSystem b(16, options, 2024);

  const std::int64_t legacyEvents = referenceOpenRunUntilTime(a, 40.0);
  const std::int64_t wrapperEvents = b.runUntilTime(40.0);

  EXPECT_EQ(legacyEvents, wrapperEvents);
  EXPECT_EQ(a.time(), b.time());
  EXPECT_EQ(a.loads(), b.loads());
  EXPECT_EQ(a.counters().arrivals, b.counters().arrivals);
  EXPECT_EQ(a.counters().departures, b.counters().departures);
  EXPECT_EQ(a.counters().migrations, b.counters().migrations);
}

// --------------------------------------------- incremental balance state

TEST(ProcessState, BalanceTrackerMatchesRecompute) {
  sim::BalanceTracker tracker;
  std::vector<std::int64_t> loads = {3, 0, 7, 1, 1};
  tracker.reset(loads);
  expectStateMatchesLoads(tracker.state(), loads);

  rng::Xoshiro256pp eng(5);
  for (int step = 0; step < 2000; ++step) {
    const auto bin = static_cast<std::size_t>(rng::uniformIndex(eng, loads.size()));
    std::int64_t delta =
        static_cast<std::int64_t>(rng::uniformIndex(eng, 7)) - 3;  // -3..+3, open system
    if (loads[bin] + delta < 0) delta = -loads[bin];
    tracker.onLoadChange(loads[bin], loads[bin] + delta);
    loads[bin] += delta;
    expectStateMatchesLoads(tracker.state(), loads);
  }
}

TEST(ProcessState, RoundProtocolStateIsIncremental) {
  protocols::ThresholdProtocol p(config::allInOne(16, 512), 3, 32, 0.5);
  for (int r = 0; r < 30; ++r) {
    p.runRound();
    expectStateMatchesLoads(p.state(), p.loads());
  }
  EXPECT_EQ(p.roundsTaken(), 30);
  EXPECT_GT(p.moves(), 0);
}

TEST(ProcessState, OpenSystemStateIsIncremental) {
  dynamic::OpenSystemOptions options;
  options.arrivalRatePerBin = 4.0;
  options.departureRate = 1.0;
  dynamic::OpenSystem sys(8, options, 11);
  for (int e = 0; e < 3000; ++e) {
    sys.step();
    expectStateMatchesLoads(sys.state(), sys.loads());
    EXPECT_EQ(sys.state().numBalls, sys.numBalls());
  }
}

TEST(ProcessState, WeightedStateIsInWeightUnits) {
  std::vector<std::int64_t> weights = {4, 4, 1, 1, 1, 1};
  std::vector<std::uint32_t> start(weights.size(), 0);
  ext::WeightedRlsEngine engine(4, weights, start, 2);
  EXPECT_EQ(engine.state().numBalls, engine.totalWeight());
  for (int e = 0; e < 5000; ++e) {
    engine.step();
    expectStateMatchesLoads(engine.state(), engine.loads());
  }
}

TEST(ProcessState, ServeAllocatorSharesTheVocabulary) {
  serve::AllocatorOptions options;
  options.bins = 8;
  serve::OnlineAllocator allocator(options);
  rng::Xoshiro256pp eng(9);
  std::int64_t nextBall = 0;
  for (int e = 0; e < 500; ++e) {
    workload::Event event;
    event.kind = workload::EventKind::kArrive;
    event.ball = nextBall++;
    event.weight = 1 + static_cast<std::int64_t>(rng::uniformIndex(eng, 3));
    const serve::Decision d = allocator.decide(event, allocator.loads(), eng);
    allocator.apply(event, d);
  }
  const sim::BalanceState state = allocator.balanceState();
  expectStateMatchesLoads(state, allocator.loads());
  EXPECT_EQ(state.maxLoad - state.minLoad, allocator.gap());
}

// -------------------------------------------------------------- registry

TEST(ProcessRegistry, RosterCoversAllFiveFamilies) {
  registerBuiltinProcesses();
  const ProcessRegistry& registry = ProcessRegistry::global();
  EXPECT_EQ(registry.size(), 12u);
  const char* families[] = {"sim", "protocols", "ext", "graph", "dynamic"};
  for (const char* family : families) {
    bool found = false;
    for (const ProcessSpec* spec : registry.list()) {
      if (spec->family == family) found = true;
    }
    EXPECT_TRUE(found) << family;
  }
}

TEST(ProcessRegistry, EveryKindConstructsAndAdvances) {
  registerBuiltinProcesses();
  const auto init = config::allInOne(16, 64);
  for (const ProcessSpec* spec : ProcessRegistry::global().list()) {
    auto p = makeProcess(spec->kind, init, 42);
    ASSERT_NE(p, nullptr) << spec->kind;
    const std::int64_t ballsBefore = p->state().numBalls;
    EXPECT_GT(ballsBefore, 0) << spec->kind;
    for (int e = 0; e < 50; ++e) p->advance();
    EXPECT_GT(p->now().value, 0.0) << spec->kind;
    if (!p->capabilities().openSystem) {
      EXPECT_EQ(p->state().numBalls, ballsBefore) << spec->kind;  // closed systems conserve
    }
  }
}

TEST(ProcessRegistry, UnknownKindThrowsWithRoster) {
  const auto init = config::allInOne(4, 8);
  try {
    (void)makeProcess("bogus", init, 1);
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("rls_jump"), std::string::npos);
  }
}

TEST(ProcessRegistry, UnusedParameterThrows) {
  const auto init = config::allInOne(4, 8);
  ProcessParams params;
  params.set("threshold", "3");  // a threshold knob handed to selfish
  EXPECT_THROW((void)makeProcess("selfish", init, 1, params), std::invalid_argument);
}

TEST(ProcessRegistry, ParamsReachTheDynamic) {
  const auto init = config::allInOne(8, 64);
  ProcessParams params;
  params.set("threshold", "3");
  params.set("p", "0.25");
  auto p = makeProcess("threshold", init, 1, params);
  auto& proto = dynamic_cast<RoundProcess&>(*p).underlying();
  EXPECT_EQ(dynamic_cast<protocols::ThresholdProtocol&>(proto).threshold(), 3);
}

TEST(ProcessRegistry, SpecsDeclareTheirParams) {
  registerBuiltinProcesses();
  const ProcessSpec* threshold = ProcessRegistry::global().find("threshold");
  ASSERT_NE(threshold, nullptr);
  EXPECT_EQ(threshold->params.size(), 2u);
  EXPECT_EQ(threshold->params[0].name, "threshold");
  const ProcessSpec* open = ProcessRegistry::global().find("open");
  ASSERT_NE(open, nullptr);
  EXPECT_EQ(open->params.size(), 4u);
}

TEST(ProcessRegistry, CapabilitiesDescribeTheDynamics) {
  const auto init = config::allInOne(16, 64);
  EXPECT_TRUE(makeProcess("open", init, 1)->capabilities().openSystem);
  EXPECT_TRUE(makeProcess("graph_rls", init, 1)->capabilities().topology);
  EXPECT_TRUE(makeProcess("weighted_rls", init, 1)->capabilities().weights);
  EXPECT_TRUE(makeProcess("crs", init, 1)->capabilities().equilibrium);
  EXPECT_FALSE(makeProcess("rls", init, 1)->capabilities().openSystem);
  EXPECT_FALSE(makeProcess("selfish", init, 1)->capabilities().continuousTime);
  EXPECT_TRUE(makeProcess("rls_naive", init, 1)->capabilities().continuousTime);
}

TEST(ProcessRegistry, ClockKindsSpanTheGranularities) {
  const auto init = config::allInOne(16, 64);
  EXPECT_EQ(makeProcess("rls", init, 1)->now().kind, Clock::Kind::Continuous);
  EXPECT_EQ(makeProcess("selfish", init, 1)->now().kind, Clock::Kind::Rounds);
  EXPECT_EQ(makeProcess("crs", init, 1)->now().kind, Clock::Kind::Steps);
  EXPECT_STREQ(makeProcess("crs", init, 1)->now().unit(), "steps");
}

// ------------------------------------------------------------- run loop

class CountingProbe final : public Probe {
 public:
  void onEvent(const Process&) override { ++calls; }
  std::int64_t calls = 0;
};

TEST(ProcessRun, ProbeSeesEveryEventPlusTheStart) {
  const auto init = config::allInOne(8, 32);
  auto p = makeProcess("rls_naive", init, 5);
  CountingProbe probe;
  RunLimits limits;
  limits.maxEvents = 25;
  const RunResult r = run(*p, Target::perfect(), limits, &probe);
  EXPECT_EQ(probe.calls, r.events + 1);
}

TEST(ProcessRun, AlreadyAtTargetDoesNotAdvance) {
  const auto init = config::balanced(8, 32);
  auto p = makeProcess("rls", init, 5);
  const RunResult r = run(*p, Target::perfect(), {});
  EXPECT_TRUE(r.reachedTarget);
  EXPECT_EQ(r.events, 0);
  EXPECT_EQ(r.time, 0.0);
}

TEST(ProcessRun, ReplicatedRunsAreThreadCountInvariant) {
  const auto init = config::allInOne(24, 24 * 4);
  registerBuiltinProcesses();
  ProcessParams params;
  const Target target = Target::perfect();
  runner::ThreadPool serial(1);
  runner::ThreadPool wide(4);
  const auto a = runReplicated("rls", init, params, target, {}, 12, 99, serial);
  const auto b = runReplicated("rls", init, params, target, {}, 12, 99, wide);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].moves, b[i].moves);
    EXPECT_EQ(a[i].events, b[i].events);
  }
}

}  // namespace
}  // namespace rlslb::process
