// Tests for src/ds: Fenwick tree (including randomized differential tests
// against a brute-force reference), the LoadMultiset lumped state, and the
// LevelIndex incremental jump-chain sampler (differential against the
// multiset scan it replaces, plus exhaustive-ticket sampling checks).
#include <gtest/gtest.h>

#include <numeric>
#include <utility>
#include <vector>

#include "ds/fenwick.hpp"
#include "ds/level_index.hpp"
#include "ds/load_multiset.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro256pp.hpp"

namespace rlslb::ds {
namespace {

TEST(Fenwick, EmptyInitZeroTotal) {
  Fenwick<std::int64_t> f(8);
  EXPECT_EQ(f.total(), 0);
  EXPECT_EQ(f.prefixSum(8), 0);
}

TEST(Fenwick, BuildFromVector) {
  Fenwick<std::int64_t> f(std::vector<std::int64_t>{3, 1, 4, 1, 5});
  EXPECT_EQ(f.total(), 14);
  EXPECT_EQ(f.prefixSum(0), 0);
  EXPECT_EQ(f.prefixSum(1), 3);
  EXPECT_EQ(f.prefixSum(3), 8);
  EXPECT_EQ(f.prefixSum(5), 14);
}

TEST(Fenwick, PointGet) {
  const std::vector<std::int64_t> vals = {3, 1, 4, 1, 5, 9, 2, 6};
  Fenwick<std::int64_t> f(vals);
  for (std::size_t i = 0; i < vals.size(); ++i) EXPECT_EQ(f.get(i), vals[i]);
}

TEST(Fenwick, AddUpdatesSums) {
  Fenwick<std::int64_t> f(4);
  f.add(0, 2);
  f.add(3, 5);
  EXPECT_EQ(f.total(), 7);
  EXPECT_EQ(f.prefixSum(3), 2);
  f.add(0, -2);
  EXPECT_EQ(f.prefixSum(3), 0);
}

TEST(Fenwick, UpperBoundSelectsByWeight) {
  Fenwick<std::int64_t> f(std::vector<std::int64_t>{2, 0, 3});
  // Cumulative: [2, 2, 5]. Tickets 0,1 -> idx 0; 2,3,4 -> idx 2.
  EXPECT_EQ(f.upperBound(0), 0u);
  EXPECT_EQ(f.upperBound(1), 0u);
  EXPECT_EQ(f.upperBound(2), 2u);
  EXPECT_EQ(f.upperBound(4), 2u);
}

TEST(Fenwick, UpperBoundSkipsZeroWeightTail) {
  Fenwick<std::int64_t> f(std::vector<std::int64_t>{0, 7, 0, 0});
  for (std::int64_t t = 0; t < 7; ++t) EXPECT_EQ(f.upperBound(t), 1u);
}

TEST(Fenwick, DifferentialRandomOps) {
  rng::Xoshiro256pp eng(99);
  constexpr std::size_t n = 37;
  std::vector<std::int64_t> ref(n, 0);
  Fenwick<std::int64_t> f(n);
  for (int op = 0; op < 5000; ++op) {
    const auto i = static_cast<std::size_t>(rng::uniformIndex(eng, n));
    const std::int64_t delta = rng::uniformInt(eng, 0, 5) - ref[i] % 3;
    if (ref[i] + delta >= 0) {
      ref[i] += delta;
      f.add(i, delta);
    }
    const auto q = static_cast<std::size_t>(rng::uniformIndex(eng, n + 1));
    EXPECT_EQ(f.prefixSum(q), std::accumulate(ref.begin(), ref.begin() + static_cast<std::ptrdiff_t>(q), std::int64_t{0}));
  }
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(f.get(i), ref[i]);
}

TEST(Fenwick, DifferentialUpperBound) {
  rng::Xoshiro256pp eng(100);
  constexpr std::size_t n = 21;
  std::vector<std::int64_t> ref(n);
  for (auto& v : ref) v = rng::uniformInt(eng, 0, 4);
  Fenwick<std::int64_t> f(ref);
  const std::int64_t total = f.total();
  ASSERT_GT(total, 0);
  for (std::int64_t t = 0; t < total; ++t) {
    // Brute-force: first index whose cumulative exceeds t.
    std::int64_t acc = 0;
    std::size_t expect = 0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += ref[i];
      if (acc > t) {
        expect = i;
        break;
      }
    }
    EXPECT_EQ(f.upperBound(t), expect) << "ticket " << t;
  }
}

TEST(Fenwick, WeightedSamplingFrequencies) {
  rng::Xoshiro256pp eng(101);
  Fenwick<std::int64_t> f(std::vector<std::int64_t>{1, 2, 3, 4});
  std::vector<int> hits(4, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const auto ticket = static_cast<std::int64_t>(rng::uniformIndex(eng, 10));
    ++hits[f.upperBound(ticket)];
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(hits[i] / static_cast<double>(kDraws), (i + 1) / 10.0, 0.01);
  }
}

TEST(Fenwick, DoubleWeights) {
  Fenwick<double> f(std::vector<double>{0.5, 1.5, 2.0});
  EXPECT_DOUBLE_EQ(f.total(), 4.0);
  EXPECT_EQ(f.upperBound(0.4), 0u);
  EXPECT_EQ(f.upperBound(0.6), 1u);
  EXPECT_EQ(f.upperBound(3.9), 2u);
}

TEST(Fenwick, SingleElement) {
  Fenwick<std::int64_t> f(std::vector<std::int64_t>{5});
  EXPECT_EQ(f.upperBound(0), 0u);
  EXPECT_EQ(f.upperBound(4), 0u);
  EXPECT_EQ(f.get(0), 5);
}

// ---------------------------------------------------------------- multiset

TEST(LoadMultiset, FromLoadsGroupsLevels) {
  const auto ms = LoadMultiset::fromLoads({3, 1, 3, 0, 1, 1});
  EXPECT_EQ(ms.numBins(), 6);
  EXPECT_EQ(ms.numBalls(), 9);
  EXPECT_EQ(ms.numLevels(), 3u);
  EXPECT_EQ(ms.countAt(0), 1);
  EXPECT_EQ(ms.countAt(1), 3);
  EXPECT_EQ(ms.countAt(3), 2);
  EXPECT_EQ(ms.countAt(2), 0);
}

TEST(LoadMultiset, MinMax) {
  const auto ms = LoadMultiset::fromLoads({5, 2, 9});
  EXPECT_EQ(ms.minLoad(), 2);
  EXPECT_EQ(ms.maxLoad(), 9);
}

TEST(LoadMultiset, CountAtMost) {
  const auto ms = LoadMultiset::fromLoads({0, 0, 2, 5, 5, 7});
  EXPECT_EQ(ms.countAtMost(-1), 0);
  EXPECT_EQ(ms.countAtMost(0), 2);
  EXPECT_EQ(ms.countAtMost(2), 3);
  EXPECT_EQ(ms.countAtMost(4), 3);
  EXPECT_EQ(ms.countAtMost(5), 5);
  EXPECT_EQ(ms.countAtMost(100), 6);
}

TEST(LoadMultiset, FromLevels) {
  const auto ms = LoadMultiset::fromLevels({{7, 2}, {1, 3}});
  EXPECT_EQ(ms.numBins(), 5);
  EXPECT_EQ(ms.numBalls(), 17);
  EXPECT_EQ(ms.level(0).load, 1);
  EXPECT_EQ(ms.level(1).load, 7);
}

TEST(LoadMultiset, ShiftBinMergesAndSplits) {
  auto ms = LoadMultiset::fromLoads({2, 2, 4});
  ms.shiftBin(4, -1);  // one bin 4 -> 3
  EXPECT_EQ(ms.countAt(4), 0);
  EXPECT_EQ(ms.countAt(3), 1);
  EXPECT_EQ(ms.numBalls(), 7);
  ms.shiftBin(2, +1);  // one bin 2 -> 3, merging with the existing level
  EXPECT_EQ(ms.countAt(3), 2);
  EXPECT_EQ(ms.countAt(2), 1);
  EXPECT_EQ(ms.numBalls(), 8);
  EXPECT_TRUE(ms.validate());
}

TEST(LoadMultiset, ApplyBallMoveConservesBalls) {
  auto ms = LoadMultiset::fromLoads({5, 1, 3});
  ms.applyBallMove(5, 1);
  EXPECT_EQ(ms.numBalls(), 9);
  EXPECT_EQ(ms.numBins(), 3);
  EXPECT_EQ(ms.countAt(4), 1);
  EXPECT_EQ(ms.countAt(2), 1);
  EXPECT_EQ(ms.countAt(3), 1);
  EXPECT_TRUE(ms.validate());
}

TEST(LoadMultiset, ApplyBallMoveGapTwoCreatesMiddleLevel) {
  auto ms = LoadMultiset::fromLoads({3, 1});
  ms.applyBallMove(3, 1);  // -> both at 2
  EXPECT_EQ(ms.numLevels(), 1u);
  EXPECT_EQ(ms.countAt(2), 2);
  EXPECT_TRUE(ms.validate());
}

TEST(LoadMultiset, ToSortedLoadsRoundTrip) {
  const std::vector<std::int64_t> loads = {4, 0, 2, 2, 7, 0};
  auto sorted = loads;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(LoadMultiset::fromLoads(loads).toSortedLoads(), sorted);
}

TEST(LoadMultiset, RandomDifferentialAgainstVector) {
  rng::Xoshiro256pp eng(102);
  std::vector<std::int64_t> loads(12);
  for (auto& v : loads) v = rng::uniformInt(eng, 0, 20);
  auto ms = LoadMultiset::fromLoads(loads);

  for (int op = 0; op < 4000; ++op) {
    // Pick a random multiset-changing move from the reference vector.
    std::vector<std::pair<std::size_t, std::size_t>> eligible;
    for (std::size_t i = 0; i < loads.size(); ++i) {
      for (std::size_t j = 0; j < loads.size(); ++j) {
        if (loads[i] >= loads[j] + 2) eligible.emplace_back(i, j);
      }
    }
    if (eligible.empty()) break;
    const auto [src, dst] =
        eligible[static_cast<std::size_t>(rng::uniformIndex(eng, eligible.size()))];
    ms.applyBallMove(loads[src], loads[dst]);
    --loads[src];
    ++loads[dst];

    auto sorted = loads;
    std::sort(sorted.begin(), sorted.end());
    ASSERT_EQ(ms.toSortedLoads(), sorted) << "after op " << op;
    ASSERT_TRUE(ms.validate());
  }
}

TEST(LoadMultiset, ValidateCatchesCorruption) {
  auto ms = LoadMultiset::fromLoads({1, 2, 3});
  EXPECT_TRUE(ms.validate());
}

TEST(LoadMultiset, AllEqualSingleLevel) {
  const auto ms = LoadMultiset::fromLoads(std::vector<std::int64_t>(100, 7));
  EXPECT_EQ(ms.numLevels(), 1u);
  EXPECT_EQ(ms.countAt(7), 100);
}

// ------------------------------------------------------------ LevelIndex

/// Brute-force sum over levels of v*cnt(v)*C(v-2) (the scan the index
/// replaces).
std::int64_t bruteTotalWeight(const LoadMultiset& ms) {
  std::int64_t total = 0;
  for (const LoadMultiset::Level& lv : ms.levels()) {
    total += lv.load * lv.count * ms.countAtMost(lv.load - 2);
  }
  return total;
}

TEST(LevelIndex, TotalWeightMatchesBruteForce) {
  rng::Xoshiro256pp eng(11);
  for (int rep = 0; rep < 50; ++rep) {
    std::vector<std::int64_t> loads;
    const auto n = 2 + static_cast<std::int64_t>(rng::uniformIndex(eng, 40));
    for (std::int64_t i = 0; i < n; ++i) {
      loads.push_back(static_cast<std::int64_t>(rng::uniformIndex(eng, 30)));
    }
    const auto ms = LoadMultiset::fromLoads(loads);
    ASSERT_TRUE(LevelIndex::fits(ms));
    LevelIndex index(ms);
    EXPECT_EQ(index.totalWeight(), bruteTotalWeight(ms));
    EXPECT_EQ(index.numBins(), ms.numBins());
    EXPECT_EQ(index.minLoad(), ms.minLoad());
    EXPECT_EQ(index.maxLoad(), ms.maxLoad());
  }
}

TEST(LevelIndex, DifferentialAgainstMultisetUnderBallMoves) {
  rng::Xoshiro256pp eng(12);
  std::vector<std::int64_t> loads;
  for (std::int64_t i = 0; i < 48; ++i) {
    loads.push_back(static_cast<std::int64_t>(rng::uniformIndex(eng, 64)));
  }
  auto ms = LoadMultiset::fromLoads(loads);
  LevelIndex index(ms);
  for (int step = 0; step < 2000; ++step) {
    if (ms.maxLoad() - ms.minLoad() <= 1) break;
    // A uniformly random multiset-changing move (any v with an eligible u).
    std::vector<std::pair<std::int64_t, std::int64_t>> moves;
    for (const auto& src : ms.levels()) {
      for (const auto& dst : ms.levels()) {
        if (src.load >= dst.load + 2) moves.emplace_back(src.load, dst.load);
      }
    }
    ASSERT_FALSE(moves.empty());
    const auto [v, u] =
        moves[static_cast<std::size_t>(rng::uniformIndex(eng, moves.size()))];
    ms.applyBallMove(v, u);
    index.applyBallMove(v, u);
    ASSERT_EQ(index.totalWeight(), bruteTotalWeight(ms)) << "step " << step;
    ASSERT_EQ(index.minLoad(), ms.minLoad());
    ASSERT_EQ(index.maxLoad(), ms.maxLoad());
    ASSERT_EQ(index.countAtMost(v - 2), ms.countAtMost(v - 2));
    ASSERT_EQ(index.countAt(u + 1), ms.countAt(u + 1));
  }
  // The index's view expands back to the same multiset.
  EXPECT_EQ(index.toMultiset().toSortedLoads(), ms.toSortedLoads());
}

TEST(LevelIndex, SampleSourceAndDestMatchExactProbabilities) {
  // Levels: load 0 x3, load 2 x2, load 5 x1. Source weights:
  //   w(2) = 2*2*C(0) = 2*2*3 = 12, w(5) = 5*1*C(3) = 5*1*5 = 25; total 37.
  const auto ms = LoadMultiset::fromLevels({{0, 3}, {2, 2}, {5, 1}});
  LevelIndex index(ms);
  ASSERT_EQ(index.totalWeight(), 37);
  // Exhaustive tickets: inverse-CDF sampling partitions [0, total) exactly.
  std::int64_t sourceAt2 = 0;
  std::int64_t sourceAt5 = 0;
  for (std::int64_t ticket = 0; ticket < 37; ++ticket) {
    const std::int64_t v = index.sampleSource(ticket);
    if (v == 2) ++sourceAt2;
    if (v == 5) ++sourceAt5;
  }
  EXPECT_EQ(sourceAt2, 12);
  EXPECT_EQ(sourceAt5, 25);
  // Destinations for v=5: u <= 3, so 3 bins at 0 and 2 bins at 2.
  ASSERT_EQ(index.countAtMost(3), 5);
  std::int64_t destAt0 = 0;
  std::int64_t destAt2 = 0;
  for (std::int64_t ticket = 0; ticket < 5; ++ticket) {
    const std::int64_t u = index.sampleDest(ticket);
    ASSERT_LE(u, 3);
    if (u == 0) ++destAt0;
    if (u == 2) ++destAt2;
  }
  EXPECT_EQ(destAt0, 3);
  EXPECT_EQ(destAt2, 2);
}

TEST(LevelIndex, AbsorbedStatesHaveZeroWeight) {
  EXPECT_EQ(LevelIndex(LoadMultiset::fromLoads({4, 4, 4})).totalWeight(), 0);
  EXPECT_EQ(LevelIndex(LoadMultiset::fromLoads({4, 5, 5})).totalWeight(), 0);
  EXPECT_GT(LevelIndex(LoadMultiset::fromLoads({4, 6})).totalWeight(), 0);
}

TEST(LevelIndex, FitsGuardsDomainAndOverflow) {
  EXPECT_TRUE(LevelIndex::fits(LoadMultiset::fromLoads({0, 100})));
  // Domain cap: spread larger than the cap must be rejected.
  EXPECT_FALSE(
      LevelIndex::fits(LoadMultiset::fromLoads({0, 100}), /*domainCap=*/50));
}

}  // namespace
}  // namespace rlslb::ds
