// workload/: generator determinism, ball-lifecycle structure, inter-arrival
// distribution sanity (KS against the exact exponential law), modulation
// shape checks for the bursty/diurnal/hot-spot traces, and the JSONL
// record -> replay round trip.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "stats/tests.hpp"
#include "workload/generators.hpp"
#include "workload/trace_io.hpp"

namespace rlslb::workload {
namespace {

std::vector<Event> drain(TraceGenerator& trace, std::int64_t cap = 1 << 20) {
  std::vector<Event> out;
  Event e;
  while (static_cast<std::int64_t>(out.size()) < cap && trace.next(&e)) out.push_back(e);
  return out;
}

OpenTraceOptions smallOptions() {
  OpenTraceOptions o;
  o.bins = 16;
  o.arrivalRatePerBin = 1.0;
  o.departureRate = 0.25;
  o.resampleRate = 1.0;
  o.maxEvents = 4000;
  return o;
}

TEST(Workload, KindNamesRoundTrip) {
  for (const EventKind kind :
       {EventKind::kArrive, EventKind::kDepart, EventKind::kResample}) {
    EventKind back{};
    ASSERT_TRUE(kindFromName(kindName(kind), &back));
    EXPECT_EQ(back, kind);
  }
  EventKind ignored{};
  EXPECT_FALSE(kindFromName("nonsense", &ignored));
}

TEST(Workload, GeneratorsAreDeterministicForSeed) {
  const auto run = [](std::uint64_t seed) {
    PoissonTrace trace(smallOptions(), seed);
    return drain(trace);
  };
  const auto a = run(7);
  EXPECT_EQ(a, run(7));
  EXPECT_NE(a, run(8));
  EXPECT_EQ(a.size(), 4000u);  // arrivals keep the trace alive to maxEvents
}

TEST(Workload, EventStreamIsStructurallyValid) {
  BurstyTraceOptions options;
  options.base = smallOptions();
  BurstyTrace trace(options, 3);
  double lastTime = 0.0;
  std::set<std::int64_t> live;
  std::set<std::int64_t> seen;
  Event e;
  while (trace.next(&e)) {
    EXPECT_GE(e.time, lastTime);
    lastTime = e.time;
    switch (e.kind) {
      case EventKind::kArrive:
        EXPECT_GE(e.weight, 1);
        EXPECT_TRUE(seen.insert(e.ball).second) << "ball ids are never reused";
        live.insert(e.ball);
        break;
      case EventKind::kDepart:
        EXPECT_EQ(e.weight, 0);
        EXPECT_EQ(live.erase(e.ball), 1u) << "departures pick live balls";
        break;
      case EventKind::kResample:
        EXPECT_EQ(e.weight, 0);
        EXPECT_TRUE(live.count(e.ball) == 1) << "resamples pick live balls";
        break;
    }
  }
  EXPECT_EQ(trace.liveBalls(), static_cast<std::int64_t>(live.size()));
}

TEST(Workload, PoissonInterArrivalsAreExponential) {
  // Arrivals only (mu = resample = 0): inter-arrival times must be exactly
  // Exp(lambda * n).
  OpenTraceOptions o;
  o.bins = 8;
  o.arrivalRatePerBin = 0.5;
  o.departureRate = 0.0;
  o.resampleRate = 0.0;
  o.maxEvents = 4000;
  PoissonTrace trace(o, 19);
  const auto events = drain(trace);
  ASSERT_EQ(events.size(), 4000u);
  const double rate = o.arrivalRatePerBin * static_cast<double>(o.bins);
  std::vector<double> gaps;
  for (std::size_t i = 1; i < events.size(); ++i) {
    gaps.push_back(events[i].time - events[i - 1].time);
  }
  const auto ks = stats::ksOneSample(
      gaps, [rate](double t) { return t <= 0.0 ? 0.0 : 1.0 - std::exp(-rate * t); });
  EXPECT_GT(ks.pValue, 1e-3) << "KS statistic " << ks.statistic;
}

TEST(Workload, DiurnalPeakCarriesMoreArrivalsThanTrough) {
  DiurnalTraceOptions options;
  options.base.bins = 32;
  options.base.arrivalRatePerBin = 1.0;
  options.base.departureRate = 1.0;  // keep the population (and event mix) bounded
  options.base.resampleRate = 0.0;
  options.base.maxEvents = 60000;
  options.amplitude = 0.9;
  options.period = 8.0;
  DiurnalTrace trace(options, 5);
  // Peak phase: sin > 0 (first half of each period); trough: sin < 0.
  std::int64_t peak = 0;
  std::int64_t trough = 0;
  Event e;
  while (trace.next(&e)) {
    if (e.kind != EventKind::kArrive) continue;
    const double phase = std::fmod(e.time, options.period) / options.period;
    (phase < 0.5 ? peak : trough) += 1;
  }
  ASSERT_GT(trough, 0);
  EXPECT_GT(static_cast<double>(peak) / static_cast<double>(trough), 2.0)
      << "peak " << peak << " trough " << trough;
}

TEST(Workload, BurstyIsOverdispersedVersusPoisson) {
  // Arrival counts per fixed window: an MMPP has variance/mean well above
  // the Poisson value 1.
  BurstyTraceOptions options;
  options.base.bins = 16;
  options.base.arrivalRatePerBin = 0.5;
  options.base.departureRate = 1.0;
  options.base.resampleRate = 0.0;
  options.base.maxEvents = 60000;
  options.burstRateFactor = 16.0;
  options.calmToBurstRate = 0.2;
  options.burstToCalmRate = 0.2;
  BurstyTrace trace(options, 23);
  std::vector<double> window;
  double windowEnd = 1.0;
  double count = 0.0;
  Event e;
  while (trace.next(&e)) {
    if (e.kind != EventKind::kArrive) continue;
    while (e.time >= windowEnd) {
      window.push_back(count);
      count = 0.0;
      windowEnd += 1.0;
    }
    count += 1.0;
  }
  ASSERT_GT(window.size(), 50u);
  double mean = 0.0;
  for (const double v : window) mean += v;
  mean /= static_cast<double>(window.size());
  double var = 0.0;
  for (const double v : window) var += (v - mean) * (v - mean);
  var /= static_cast<double>(window.size() - 1);
  EXPECT_GT(var / mean, 1.5) << "variance/mean " << var / mean;
}

TEST(Workload, HotspotBurstsAreSynchronizedAndHeavy) {
  HotspotTraceOptions options;
  options.base = smallOptions();
  options.base.maxEvents = 20000;
  options.burstPeriod = 4.0;
  options.burstSize = 8;
  options.hotWeight = 5;
  HotspotTrace trace(options, 31);
  const auto events = drain(trace);
  // Every burst: burstSize consecutive arrivals with identical timestamp
  // (a multiple of the period) and the hot weight.
  std::int64_t bursts = 0;
  for (std::size_t i = 0; i + 1 < events.size(); ++i) {
    if (events[i].kind != EventKind::kArrive || events[i].weight != options.hotWeight) {
      continue;
    }
    const double t = events[i].time;
    if (i > 0 && events[i - 1].time == t && events[i - 1].weight == options.hotWeight) {
      continue;  // interior of a burst already counted
    }
    std::int64_t runLength = 0;
    for (std::size_t j = i; j < events.size() && events[j].time == t; ++j) {
      ASSERT_EQ(events[j].kind, EventKind::kArrive);
      ASSERT_EQ(events[j].weight, options.hotWeight);
      ++runLength;
    }
    EXPECT_EQ(runLength, options.burstSize);
    EXPECT_NEAR(std::fmod(t, options.burstPeriod), 0.0, 1e-9);
    ++bursts;
  }
  EXPECT_GT(bursts, 10);
}

TEST(Workload, NonDyadicBurstPeriodAdvancesTime) {
  // Regression: floor(t/p)+1 times p can round back to exactly t for
  // non-dyadic periods, freezing trace time and re-emitting one burst
  // forever. Bursts must stay strictly increasing in time.
  HotspotTraceOptions options;
  options.base = smallOptions();
  options.base.maxEvents = 20000;
  options.burstPeriod = 0.7;
  options.burstSize = 4;
  options.hotWeight = 2;
  HotspotTrace trace(options, 57);
  double lastBurstTime = -1.0;
  std::int64_t distinctBursts = 0;
  Event e;
  while (trace.next(&e)) {
    if (e.kind != EventKind::kArrive || e.weight != options.hotWeight) continue;
    if (e.time != lastBurstTime) {
      EXPECT_GT(e.time, lastBurstTime);
      lastBurstTime = e.time;
      ++distinctBursts;
    }
  }
  EXPECT_GT(distinctBursts, 100);  // ~maxEvents worth of trace, period 0.7
}

TEST(Workload, PureBurstTraceStillEmits) {
  // lambda = 0 with an empty system leaves no running clocks; scheduled
  // bursts must still fire (regression: the zero-rate path used to end
  // the trace before consulting the burst schedule).
  HotspotTraceOptions options;
  options.base.bins = 8;
  options.base.arrivalRatePerBin = 0.0;
  options.base.departureRate = 1.0;
  options.base.resampleRate = 0.0;
  options.base.maxEvents = 1000;
  options.burstPeriod = 2.0;
  options.burstSize = 4;
  options.hotWeight = 3;
  HotspotTrace trace(options, 13);
  const auto events = drain(trace);
  ASSERT_EQ(events.size(), 1000u);
  std::int64_t bursts = 0;
  for (const Event& e : events) {
    if (e.kind == EventKind::kArrive) {
      EXPECT_EQ(e.weight, options.hotWeight);  // no background traffic
      ++bursts;
    }
  }
  EXPECT_GT(bursts, 0);
}

TEST(Workload, JsonlRoundTripIsExact) {
  HotspotTraceOptions options;
  options.base = smallOptions();
  options.base.maxEvents = 2000;
  HotspotTrace trace(options, 41);
  std::ostringstream recorded;
  RecordingTrace tee(trace, recorded);
  const auto original = drain(tee);
  ASSERT_EQ(original.size(), 2000u);

  std::istringstream in(recorded.str());
  JsonlTraceReader reader(in);
  const auto replayed = drain(reader);
  // Bit-exact, including the double timestamps (shortest round-trip form).
  EXPECT_EQ(original, replayed);
}

TEST(Workload, ParseRejectsMalformedLines) {
  Event e;
  std::string error;
  EXPECT_FALSE(parseTraceEvent("not json", &e, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(parseTraceEvent("{\"t\":1.0}", &e, &error));
  EXPECT_FALSE(parseTraceEvent(
      "{\"t\":1.0,\"kind\":\"explode\",\"ball\":1,\"w\":1}", &e, &error));
  EXPECT_TRUE(parseTraceEvent("{\"t\":1.5,\"kind\":\"depart\",\"ball\":3,\"w\":0}", &e));
  EXPECT_EQ(e.kind, EventKind::kDepart);
  EXPECT_EQ(e.ball, 3);
}

}  // namespace
}  // namespace rlslb::workload
