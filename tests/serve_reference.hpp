// Frozen pre-partitioning serving loop: the differential reference for
// tests/test_serve_partitioned.cpp.
//
// This is a verbatim test-only copy (PR 5 style) of serve::OnlineAllocator
// and serve::ShardedEventLoop as they stood BEFORE the partitioned apply
// landed: a parallel decision phase against the epoch-start snapshot, then
// a single-threaded apply pass in trace order that re-validates the strict
// local-search rule against live loads, then the per-epoch repair budget.
// The partitioned loop's contract is byte-identity with THIS code — final
// load vector, every semantic counter, and the per-epoch gap trajectory —
// for every (shards, threads, epochEvents, trace, seed) combination, so do
// not "fix" or modernize it; it only changes if the serving semantics are
// deliberately re-specified.
//
// The decision phase is shared with production on purpose: decisions are
// pure per-event functions of (snapshot, ordinal rng stream) computed by
// OnlineAllocator::decide, so freezing a second copy of decide() would
// only hide a regression in it from this differential.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ds/fenwick.hpp"
#include "rng/splitmix64.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro256pp.hpp"
#include "runner/thread_pool.hpp"
#include "serve/online_allocator.hpp"
#include "sim/engine.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"
#include "workload/event.hpp"
#include "workload/generators.hpp"

namespace rlslb::serve::reference {

/// Frozen copy of the pre-partitioning OnlineAllocator (single global
/// Fenwick + level histogram + ball map, sequential apply only). Reuses
/// the production serve::Decision / serve::ServeCounters / decide() so the
/// differential compares apply semantics, not decision streams.
class ReferenceAllocator {
 public:
  explicit ReferenceAllocator(const AllocatorOptions& options)
      : options_(options),
        loads_(static_cast<std::size_t>(options.bins), 0),
        mass_(static_cast<std::size_t>(options.bins)),
        binBalls_(static_cast<std::size_t>(options.bins)) {
    RLSLB_ASSERT(options_.bins >= 1);
    RLSLB_ASSERT(options_.arrivalChoices >= 1);
    levels_[0] = options_.bins;
    decider_ = std::make_unique<OnlineAllocator>(options);
  }

  [[nodiscard]] Decision decide(const workload::Event& event,
                                const std::vector<std::int64_t>& snapshotLoads,
                                rng::Xoshiro256pp& eng) const {
    return decider_->decide(event, snapshotLoads, eng);
  }

  void apply(const workload::Event& event, const Decision& decision) {
    ++counters_.events;
    switch (event.kind) {
      case workload::EventKind::kArrive: {
        RLSLB_ASSERT(decision.bin >= 0 && decision.bin < options_.bins);
        ++counters_.arrivals;
        placeBall(event.ball, event.weight, decision.bin);
        break;
      }
      case workload::EventKind::kDepart: {
        ++counters_.departures;
        const auto it = balls_.find(event.ball);
        RLSLB_ASSERT_MSG(it != balls_.end(), "depart event for a ball that is not live");
        const BallRec rec = it->second;
        balls_.erase(it);
        eraseBall(event.ball, rec);
        changeLoad(rec.bin, -rec.weight);
        break;
      }
      case workload::EventKind::kResample: {
        ++counters_.resamples;
        RLSLB_ASSERT(decision.bin >= 0 && decision.bin < options_.bins);
        const auto it = balls_.find(event.ball);
        RLSLB_ASSERT_MSG(it != balls_.end(), "resample event for a ball that is not live");
        BallRec& rec = it->second;
        const std::int32_t src = rec.bin;
        const std::int32_t dst = decision.bin;
        if (dst != src && loads_[static_cast<std::size_t>(dst)] + rec.weight <
                              loads_[static_cast<std::size_t>(src)]) {
          ++counters_.migrations;
          moveBall(event.ball, rec, dst);
        } else {
          ++counters_.rejectedMoves;
        }
        break;
      }
    }
  }

  bool repairMove(rng::Xoshiro256pp& eng) {
    const std::int64_t total = mass_.total();
    if (total == 0) return false;
    ++counters_.repairAttempts;
    const auto ticket = static_cast<std::int64_t>(
        rng::uniformIndex(eng, static_cast<std::uint64_t>(total)));
    const auto src = static_cast<std::int32_t>(mass_.upperBound(ticket));
    auto& srcBalls = binBalls_[static_cast<std::size_t>(src)];
    RLSLB_ASSERT(!srcBalls.empty());
    const auto pick = static_cast<std::size_t>(
        rng::uniformIndex(eng, static_cast<std::uint64_t>(srcBalls.size())));
    const std::int64_t ball = srcBalls[pick];
    const auto dst = static_cast<std::int32_t>(
        rng::uniformIndex(eng, static_cast<std::uint64_t>(loads_.size())));
    BallRec& rec = balls_.at(ball);
    if (dst == src || loads_[static_cast<std::size_t>(dst)] + rec.weight >=
                          loads_[static_cast<std::size_t>(src)]) {
      return false;
    }
    ++counters_.repairMigrations;
    moveBall(ball, rec, dst);
    return true;
  }

  [[nodiscard]] const std::vector<std::int64_t>& loads() const { return loads_; }
  [[nodiscard]] std::int64_t totalLoad() const { return mass_.total(); }
  [[nodiscard]] std::int64_t liveBalls() const {
    return static_cast<std::int64_t>(balls_.size());
  }
  [[nodiscard]] std::int64_t minLoad() const { return levels_.begin()->first; }
  [[nodiscard]] std::int64_t maxLoad() const { return levels_.rbegin()->first; }
  [[nodiscard]] std::int64_t gap() const { return maxLoad() - minLoad(); }
  [[nodiscard]] sim::BalanceState balanceState() const {
    sim::BalanceState state;
    state.numBins = static_cast<std::int64_t>(loads_.size());
    state.numBalls = mass_.total();
    state.minLoad = minLoad();
    state.maxLoad = maxLoad();
    const std::int64_t ceilAvg =
        (state.numBalls + state.numBins - 1) / state.numBins;
    for (auto it = levels_.upper_bound(ceilAvg); it != levels_.end(); ++it) {
      state.overloadedBalls += (it->first - ceilAvg) * it->second;
    }
    return state;
  }
  [[nodiscard]] std::int64_t maxWeightSeen() const { return maxWeightSeen_; }
  [[nodiscard]] const ServeCounters& counters() const { return counters_; }

 private:
  struct BallRec {
    std::int32_t bin = 0;
    std::int64_t weight = 0;
    std::int32_t slot = 0;
  };

  void changeLoad(std::int32_t bin, std::int64_t delta) {
    const auto i = static_cast<std::size_t>(bin);
    const std::int64_t before = loads_[i];
    const std::int64_t after = before + delta;
    RLSLB_ASSERT(after >= 0);
    loads_[i] = after;
    mass_.add(i, delta);
    const auto it = levels_.find(before);
    if (--(it->second) == 0) levels_.erase(it);
    ++levels_[after];
  }

  void placeBall(std::int64_t ball, std::int64_t weight, std::int32_t bin) {
    RLSLB_ASSERT(weight >= 1);
    if (weight > maxWeightSeen_) maxWeightSeen_ = weight;
    auto& slot = binBalls_[static_cast<std::size_t>(bin)];
    const auto [it, inserted] =
        balls_.emplace(ball, BallRec{bin, weight, static_cast<std::int32_t>(slot.size())});
    RLSLB_ASSERT_MSG(inserted, "arrive event for a ball id that is already live");
    (void)it;
    slot.push_back(ball);
    changeLoad(bin, weight);
  }

  void eraseBall(std::int64_t ball, const BallRec& rec) {
    auto& slot = binBalls_[static_cast<std::size_t>(rec.bin)];
    RLSLB_ASSERT(slot[static_cast<std::size_t>(rec.slot)] == ball);
    const std::int64_t moved = slot.back();
    slot[static_cast<std::size_t>(rec.slot)] = moved;
    slot.pop_back();
    if (moved != ball) balls_.at(moved).slot = rec.slot;
  }

  void moveBall(std::int64_t ball, BallRec& rec, std::int32_t toBin) {
    const BallRec old = rec;
    eraseBall(ball, old);
    auto& dstSlot = binBalls_[static_cast<std::size_t>(toBin)];
    rec.bin = toBin;
    rec.slot = static_cast<std::int32_t>(dstSlot.size());
    dstSlot.push_back(ball);
    changeLoad(old.bin, -old.weight);
    changeLoad(toBin, old.weight);
  }

  AllocatorOptions options_;
  std::unique_ptr<OnlineAllocator> decider_;  // production decide(), frozen apply
  std::vector<std::int64_t> loads_;
  ds::Fenwick<std::int64_t> mass_;
  std::map<std::int64_t, std::int64_t> levels_;
  std::unordered_map<std::int64_t, BallRec> balls_;
  std::vector<std::vector<std::int64_t>> binBalls_;
  ServeCounters counters_;
  std::int64_t maxWeightSeen_ = 0;
};

/// Per-epoch observation of the reference loop: the semantic fields of the
/// production EpochStats (the differential compares exactly these).
struct ReferenceEpochStats {
  std::int64_t epoch = 0;
  double traceTime = 0.0;
  std::int64_t events = 0;
  std::int64_t liveBalls = 0;
  std::int64_t totalLoad = 0;
  sim::BalanceState balance;
  std::int64_t migrations = 0;

  [[nodiscard]] std::int64_t gap() const { return balance.maxLoad - balance.minLoad; }
};

/// Frozen copy of the pre-partitioning ShardedEventLoop: bulk-synchronous
/// epochs with a sequential trace-order apply.
class ReferenceEventLoop {
 public:
  struct Options {
    int shards = 8;
    std::int64_t epochEvents = 1024;
    int repairMovesPerEpoch = 4;
    std::uint64_t seed = 1;
  };

  ReferenceEventLoop(ReferenceAllocator& allocator, const Options& options,
                     runner::ThreadPool& pool)
      : allocator_(&allocator), options_(options), pool_(&pool) {
    RLSLB_ASSERT(options_.shards >= 1);
    RLSLB_ASSERT(options_.epochEvents >= 1);
    RLSLB_ASSERT(options_.repairMovesPerEpoch >= 0);
  }

  struct RunResult {
    std::int64_t events = 0;
    std::int64_t epochs = 0;
    double wallSeconds = 0.0;
  };

  RunResult run(workload::TraceGenerator& trace,
                const std::function<void(const ReferenceEpochStats&)>& onEpoch = {}) {
    constexpr std::uint64_t kDecisionSalt = 0x64656373ULL;  // "decs"
    constexpr std::uint64_t kRepairSalt = 0x72657061ULL;    // "repa"
    const std::uint64_t decisionSeed = rng::streamSeed(options_.seed, kDecisionSalt);
    const std::uint64_t repairSeed = rng::streamSeed(options_.seed, kRepairSalt);
    const auto shards = static_cast<std::size_t>(options_.shards);

    RunResult result;
    std::vector<workload::Event> batch;
    std::vector<Decision> decisions;
    std::vector<std::vector<std::size_t>> shardEvents(shards);
    std::vector<std::int64_t> snapshot;
    batch.reserve(static_cast<std::size_t>(options_.epochEvents));

    for (;;) {
      batch.clear();
      workload::Event event;
      while (static_cast<std::int64_t>(batch.size()) < options_.epochEvents &&
             trace.next(&event)) {
        batch.push_back(event);
      }
      if (batch.empty()) break;

      WallTimer wall;
      const std::int64_t baseOrdinal = nextOrdinal_;
      nextOrdinal_ += static_cast<std::int64_t>(batch.size());

      for (auto& list : shardEvents) list.clear();
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const std::size_t shard =
            static_cast<std::size_t>(
                rng::mix64(static_cast<std::uint64_t>(batch[i].ball))) %
            shards;
        shardEvents[shard].push_back(i);
      }

      snapshot = allocator_->loads();
      decisions.assign(batch.size(), Decision{});
      pool_->parallelFor(static_cast<std::int64_t>(shards), [&](std::int64_t shard) {
        for (const std::size_t i : shardEvents[static_cast<std::size_t>(shard)]) {
          const workload::Event& e = batch[i];
          if (e.kind == workload::EventKind::kDepart) continue;
          rng::Xoshiro256pp eng(rng::streamSeed(
              decisionSeed,
              static_cast<std::uint64_t>(baseOrdinal + static_cast<std::int64_t>(i))));
          decisions[i] = allocator_->decide(e, snapshot, eng);
        }
      });

      for (std::size_t i = 0; i < batch.size(); ++i) {
        allocator_->apply(batch[i], decisions[i]);
      }
      rng::Xoshiro256pp repairEng(
          rng::streamSeed(repairSeed, static_cast<std::uint64_t>(nextEpoch_)));
      for (int k = 0; k < options_.repairMovesPerEpoch; ++k) {
        allocator_->repairMove(repairEng);
      }

      const double epochWall = wall.seconds();
      result.wallSeconds += epochWall;
      result.events += static_cast<std::int64_t>(batch.size());
      ++result.epochs;

      if (onEpoch) {
        ReferenceEpochStats stats;
        stats.epoch = nextEpoch_;
        stats.traceTime = batch.back().time;
        stats.events = static_cast<std::int64_t>(batch.size());
        stats.liveBalls = allocator_->liveBalls();
        stats.totalLoad = allocator_->totalLoad();
        stats.balance = allocator_->balanceState();
        stats.migrations =
            allocator_->counters().migrations + allocator_->counters().repairMigrations;
        onEpoch(stats);
      }
      ++nextEpoch_;
    }
    return result;
  }

 private:
  ReferenceAllocator* allocator_;
  Options options_;
  runner::ThreadPool* pool_;
  std::int64_t nextOrdinal_ = 0;
  std::int64_t nextEpoch_ = 0;
};

}  // namespace rlslb::serve::reference
