// Tests for src/rng: generator determinism and exactness of the
// distribution samplers (moment checks and chi-square goodness of fit).
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/pcg64.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256pp.hpp"
#include "stats/running_stat.hpp"
#include "stats/tests.hpp"

namespace rlslb::rng {
namespace {

TEST(SplitMix64, KnownSequence) {
  // Reference values for seed 0 from the public-domain reference code.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(SplitMix64, MixIsStateless) {
  EXPECT_EQ(mix64(12345), mix64(12345));
  EXPECT_NE(mix64(12345), mix64(12346));
}

TEST(StreamSeed, DistinctAcrossReps) {
  std::map<std::uint64_t, int> seen;
  for (std::uint64_t rep = 0; rep < 10000; ++rep) {
    ++seen[streamSeed(42, rep)];
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(StreamSeed, DistinctAcrossBases) {
  EXPECT_NE(streamSeed(1, 0), streamSeed(2, 0));
}

TEST(StreamSeed, AdjacentStreamsUncorrelated) {
  // The parallel replication harness hands stream r to one thread and
  // stream r+1 to another; this pins the independence the pool relies on.
  // Pearson correlation of paired uniforms from adjacent streams must be
  // within the +-4/sqrt(N) sampling band.
  for (const std::uint64_t rep : {0ULL, 1ULL, 999ULL}) {
    Xoshiro256pp a(streamSeed(20170529, rep));
    Xoshiro256pp b(streamSeed(20170529, rep + 1));
    constexpr int kDraws = 200000;
    double sumX = 0.0;
    double sumY = 0.0;
    double sumXY = 0.0;
    double sumX2 = 0.0;
    double sumY2 = 0.0;
    for (int i = 0; i < kDraws; ++i) {
      const double x = uniformDouble(a);
      const double y = uniformDouble(b);
      sumX += x;
      sumY += y;
      sumXY += x * y;
      sumX2 += x * x;
      sumY2 += y * y;
    }
    const double meanX = sumX / kDraws;
    const double meanY = sumY / kDraws;
    const double cov = sumXY / kDraws - meanX * meanY;
    const double varX = sumX2 / kDraws - meanX * meanX;
    const double varY = sumY2 / kDraws - meanY * meanY;
    const double corr = cov / std::sqrt(varX * varY);
    EXPECT_NEAR(corr, 0.0, 4.0 / std::sqrt(static_cast<double>(kDraws))) << "rep " << rep;
  }
}

TEST(StreamSeed, AdjacentStreamsJointlyUniform) {
  // Chi-square independence check on the 8x8 joint histogram of paired
  // uniforms from streams (r, r+1): with known-uniform marginals the
  // expected count per cell is N/64.
  Xoshiro256pp a(streamSeed(7, 100));
  Xoshiro256pp b(streamSeed(7, 101));
  constexpr int kSide = 8;
  constexpr int kDraws = 256000;
  std::vector<std::int64_t> counts(kSide * kSide, 0);
  for (int i = 0; i < kDraws; ++i) {
    const auto cx = static_cast<std::size_t>(uniformIndex(a, kSide));
    const auto cy = static_cast<std::size_t>(uniformIndex(b, kSide));
    ++counts[cx * kSide + cy];
  }
  const std::vector<double> expected(kSide * kSide,
                                     static_cast<double>(kDraws) / (kSide * kSide));
  EXPECT_GT(stats::chiSquareGof(counts, expected).pValue, 1e-4);
}

TEST(StreamSeed, StreamsDifferFromBaseStream) {
  // streamSeed(base, r) must not collide with the base seed itself or with
  // reseeded variants the engines derive internally.
  for (std::uint64_t rep = 0; rep < 100; ++rep) {
    EXPECT_NE(streamSeed(42, rep), 42ULL);
  }
}

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256pp a(7);
  Xoshiro256pp b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiffer) {
  Xoshiro256pp a(7);
  Xoshiro256pp b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro, JumpChangesStream) {
  Xoshiro256pp a(7);
  Xoshiro256pp b(7);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro, ReseedResets) {
  Xoshiro256pp a(7);
  const std::uint64_t first = a.next();
  a.reseed(7);
  EXPECT_EQ(a.next(), first);
}

TEST(Pcg64, DeterministicForSeed) {
  Pcg64 a(123, 5);
  Pcg64 b(123, 5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg64, StreamsDiffer) {
  Pcg64 a(123, 5);
  Pcg64 b(123, 6);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LE(equal, 1);
}

TEST(UniformDouble, RangeAndMean) {
  Xoshiro256pp eng(11);
  stats::RunningStat rs;
  for (int i = 0; i < 200000; ++i) {
    const double u = uniformDouble(eng);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    rs.add(u);
  }
  EXPECT_NEAR(rs.mean(), 0.5, 0.005);
  EXPECT_NEAR(rs.variance(), 1.0 / 12.0, 0.003);
}

TEST(UniformDoublePositive, NeverZero) {
  Xoshiro256pp eng(12);
  for (int i = 0; i < 100000; ++i) {
    const double u = uniformDoublePositive(eng);
    ASSERT_GT(u, 0.0);
    ASSERT_LE(u, 1.0);
  }
}

TEST(UniformIndex, ChiSquareUniform) {
  Xoshiro256pp eng(13);
  constexpr int kBuckets = 17;
  constexpr int kDraws = 170000;
  std::vector<std::int64_t> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[uniformIndex(eng, kBuckets)];
  const std::vector<double> expected(kBuckets, static_cast<double>(kDraws) / kBuckets);
  const auto res = stats::chiSquareGof(counts, expected);
  EXPECT_GT(res.pValue, 1e-4);
}

TEST(UniformIndex, BoundOne) {
  Xoshiro256pp eng(14);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(uniformIndex(eng, 1), 0u);
}

TEST(UniformIndex, NonPowerOfTwoBoundCovered) {
  Xoshiro256pp eng(15);
  std::vector<bool> seen(7, false);
  for (int i = 0; i < 1000; ++i) seen[uniformIndex(eng, 7)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(UniformInt, InclusiveRange) {
  Xoshiro256pp eng(16);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = uniformInt(eng, -3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
  }
}

TEST(Exponential, MeanAndVariance) {
  Xoshiro256pp eng(17);
  stats::RunningStat rs;
  const double lambda = 2.5;
  for (int i = 0; i < 300000; ++i) rs.add(exponential(eng, lambda));
  EXPECT_NEAR(rs.mean(), 1.0 / lambda, 0.005);
  EXPECT_NEAR(rs.variance(), 1.0 / (lambda * lambda), 0.01);
}

TEST(Bernoulli, Frequency) {
  Xoshiro256pp eng(18);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += bernoulli(eng, 0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(GeometricTrials, MeanMatches) {
  Xoshiro256pp eng(19);
  const double p = 0.25;
  stats::RunningStat rs;
  for (int i = 0; i < 200000; ++i) {
    const std::int64_t g = geometricTrials(eng, p);
    ASSERT_GE(g, 1);
    rs.add(static_cast<double>(g));
  }
  EXPECT_NEAR(rs.mean(), 1.0 / p, 0.05);
}

TEST(GeometricTrials, PEqualOneIsAlwaysOne) {
  Xoshiro256pp eng(20);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(geometricTrials(eng, 1.0), 1);
}

TEST(GeometricTrials, DistributionHead) {
  Xoshiro256pp eng(21);
  const double p = 0.5;
  constexpr int kDraws = 200000;
  std::vector<std::int64_t> counts(6, 0);  // 1..5 and tail
  for (int i = 0; i < kDraws; ++i) {
    const std::int64_t g = geometricTrials(eng, p);
    ++counts[static_cast<std::size_t>(std::min<std::int64_t>(g, 6) - 1)];
  }
  std::vector<double> expected;
  double tail = 1.0;
  for (int k = 1; k <= 5; ++k) {
    const double pk = std::pow(1 - p, k - 1) * p;
    expected.push_back(pk * kDraws);
    tail -= pk;
  }
  expected.push_back(tail * kDraws);
  const auto res = stats::chiSquareGof(counts, expected);
  EXPECT_GT(res.pValue, 1e-4);
}

TEST(StandardNormal, Moments) {
  Xoshiro256pp eng(22);
  stats::RunningStat rs;
  for (int i = 0; i < 300000; ++i) rs.add(standardNormal(eng));
  EXPECT_NEAR(rs.mean(), 0.0, 0.01);
  EXPECT_NEAR(rs.variance(), 1.0, 0.015);
}

struct BinomialCase {
  std::int64_t n;
  double p;
};

class BinomialMoments : public ::testing::TestWithParam<BinomialCase> {};

TEST_P(BinomialMoments, MeanAndVariance) {
  const auto [n, p] = GetParam();
  Xoshiro256pp eng(23 + static_cast<std::uint64_t>(n));
  stats::RunningStat rs;
  const int draws = 150000;
  for (int i = 0; i < draws; ++i) {
    const std::int64_t x = binomial(eng, n, p);
    ASSERT_GE(x, 0);
    ASSERT_LE(x, n);
    rs.add(static_cast<double>(x));
  }
  const double mean = static_cast<double>(n) * p;
  const double var = mean * (1 - p);
  EXPECT_NEAR(rs.mean(), mean, 5.0 * std::sqrt(var / draws) + 1e-9);
  EXPECT_NEAR(rs.variance(), var, 0.05 * var + 0.01);
}

INSTANTIATE_TEST_SUITE_P(SmallAndLarge, BinomialMoments,
                         ::testing::Values(BinomialCase{5, 0.3}, BinomialCase{20, 0.5},
                                           BinomialCase{100, 0.05}, BinomialCase{1000, 0.4},
                                           BinomialCase{100000, 0.17}, BinomialCase{50, 0.9},
                                           BinomialCase{1000000, 0.003}));

TEST(Binomial, EdgeCases) {
  Xoshiro256pp eng(24);
  EXPECT_EQ(binomial(eng, 0, 0.5), 0);
  EXPECT_EQ(binomial(eng, 100, 0.0), 0);
  EXPECT_EQ(binomial(eng, 100, 1.0), 100);
}

TEST(Binomial, ExactPmfChiSquare) {
  // Small case where we can compare against the exact pmf.
  Xoshiro256pp eng(25);
  const std::int64_t n = 8;
  const double p = 0.4;
  constexpr int kDraws = 200000;
  std::vector<std::int64_t> counts(static_cast<std::size_t>(n + 1), 0);
  for (int i = 0; i < kDraws; ++i) ++counts[static_cast<std::size_t>(binomial(eng, n, p))];
  std::vector<double> expected;
  for (std::int64_t k = 0; k <= n; ++k) {
    double logPmf = std::lgamma(n + 1.0) - std::lgamma(k + 1.0) - std::lgamma(n - k + 1.0) +
                    k * std::log(p) + (n - k) * std::log1p(-p);
    expected.push_back(std::exp(logPmf) * kDraws);
  }
  const auto res = stats::chiSquareGof(counts, expected);
  EXPECT_GT(res.pValue, 1e-4);
}

TEST(Binomial, BtrsRegionPmfChiSquare) {
  // n*p large enough to exercise the BTRS path; bucketized comparison.
  Xoshiro256pp eng(26);
  const std::int64_t n = 400;
  const double p = 0.25;  // np = 100 -> BTRS
  constexpr int kDraws = 200000;
  // Buckets of width 5 covering mean +- 4 sd, tails merged.
  const double mean = n * p;
  const double sd = std::sqrt(n * p * (1 - p));
  const std::int64_t lo = static_cast<std::int64_t>(mean - 4 * sd);
  const std::int64_t hi = static_cast<std::int64_t>(mean + 4 * sd);
  const std::int64_t width = 5;
  const std::size_t buckets = static_cast<std::size_t>((hi - lo) / width) + 3;
  std::vector<std::int64_t> counts(buckets, 0);
  auto bucketOf = [&](std::int64_t x) -> std::size_t {
    if (x < lo) return 0;
    if (x >= hi) return buckets - 1;
    return static_cast<std::size_t>((x - lo) / width) + 1;
  };
  for (int i = 0; i < kDraws; ++i) ++counts[bucketOf(binomial(eng, n, p))];
  // Exact pmf accumulated into the same buckets.
  std::vector<double> expected(buckets, 0.0);
  for (std::int64_t k = 0; k <= n; ++k) {
    const double logPmf = std::lgamma(n + 1.0) - std::lgamma(k + 1.0) -
                          std::lgamma(n - k + 1.0) + k * std::log(p) + (n - k) * std::log1p(-p);
    expected[bucketOf(k)] += std::exp(logPmf) * kDraws;
  }
  // Drop empty-expectation buckets (none expected, but be safe).
  std::vector<std::int64_t> obs2;
  std::vector<double> exp2;
  for (std::size_t i = 0; i < buckets; ++i) {
    if (expected[i] > 1.0) {
      obs2.push_back(counts[i]);
      exp2.push_back(expected[i]);
    }
  }
  const auto res = stats::chiSquareGof(obs2, exp2);
  EXPECT_GT(res.pValue, 1e-4);
}

TEST(Poisson, SmallMeanMoments) {
  Xoshiro256pp eng(27);
  stats::RunningStat rs;
  for (int i = 0; i < 200000; ++i) rs.add(static_cast<double>(poisson(eng, 3.5)));
  EXPECT_NEAR(rs.mean(), 3.5, 0.03);
  EXPECT_NEAR(rs.variance(), 3.5, 0.08);
}

TEST(Poisson, LargeMeanMoments) {
  Xoshiro256pp eng(28);
  stats::RunningStat rs;
  for (int i = 0; i < 200000; ++i) rs.add(static_cast<double>(poisson(eng, 120.0)));
  EXPECT_NEAR(rs.mean(), 120.0, 0.3);
  EXPECT_NEAR(rs.variance(), 120.0, 3.0);
}

TEST(Poisson, ZeroMean) {
  Xoshiro256pp eng(29);
  EXPECT_EQ(poisson(eng, 0.0), 0);
}

TEST(MultinomialUniform, ConservesTotalAndIsUniform) {
  Xoshiro256pp eng(30);
  constexpr std::int64_t balls = 100000;
  std::vector<std::int64_t> counts(10, 0);
  multinomialUniform(eng, balls, counts);
  std::int64_t total = 0;
  for (std::int64_t c : counts) {
    EXPECT_GE(c, 0);
    total += c;
  }
  EXPECT_EQ(total, balls);
  for (std::int64_t c : counts) EXPECT_NEAR(static_cast<double>(c), 10000.0, 500.0);
}

TEST(MultinomialUniform, MarginalIsBinomial) {
  // Bin 0's count across repetitions should match Binomial(m, 1/k) moments.
  Xoshiro256pp eng(31);
  stats::RunningStat rs;
  std::vector<std::int64_t> counts(4, 0);
  for (int rep = 0; rep < 30000; ++rep) {
    multinomialUniform(eng, 100, counts);
    rs.add(static_cast<double>(counts[0]));
  }
  EXPECT_NEAR(rs.mean(), 25.0, 0.2);
  EXPECT_NEAR(rs.variance(), 100 * 0.25 * 0.75, 0.6);
}

TEST(MultinomialUniform, SingleBin) {
  Xoshiro256pp eng(32);
  std::vector<std::int64_t> counts(1, 0);
  multinomialUniform(eng, 77, counts);
  EXPECT_EQ(counts[0], 77);
}

TEST(Shuffle, PreservesMultiset) {
  Xoshiro256pp eng(33);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  shuffle(eng, w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Shuffle, AllPermutationsReachable) {
  // 3 elements: each of the 6 permutations should appear with ~1/6 freq.
  Xoshiro256pp eng(34);
  std::map<std::vector<int>, int> freq;
  for (int i = 0; i < 60000; ++i) {
    std::vector<int> v = {0, 1, 2};
    shuffle(eng, v);
    ++freq[v];
  }
  ASSERT_EQ(freq.size(), 6u);
  for (const auto& [perm, count] : freq) EXPECT_NEAR(count, 10000, 500);
}

TEST(EngineConcept, BothEnginesUsableWithDistributions) {
  Pcg64 p(5);
  Xoshiro256pp x(5);
  EXPECT_GE(exponential(p, 1.0), 0.0);
  EXPECT_GE(exponential(x, 1.0), 0.0);
}

TEST(Pcg64, UniformityChiSquare) {
  Pcg64 eng(77, 3);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 160000;
  std::vector<std::int64_t> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[uniformIndex(eng, kBuckets)];
  const std::vector<double> expected(kBuckets, static_cast<double>(kDraws) / kBuckets);
  EXPECT_GT(stats::chiSquareGof(counts, expected).pValue, 1e-4);
}

TEST(Pcg64, BitBalance) {
  // Each of the 64 output bits should be set about half the time.
  Pcg64 eng(123, 9);
  constexpr int kDraws = 40000;
  std::vector<int> ones(64, 0);
  for (int i = 0; i < kDraws; ++i) {
    std::uint64_t v = eng.next();
    for (int b = 0; b < 64; ++b) ones[b] += static_cast<int>((v >> b) & 1);
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_NEAR(ones[b] / static_cast<double>(kDraws), 0.5, 0.02) << "bit " << b;
  }
}

TEST(Xoshiro, SuccessiveValuesUncorrelated) {
  // Lag-1 serial correlation of uniform doubles should be ~0.
  Xoshiro256pp eng(35);
  double prev = uniformDouble(eng);
  double sumXY = 0.0;
  double sumX = 0.0;
  double sumX2 = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double cur = uniformDouble(eng);
    sumXY += prev * cur;
    sumX += prev;
    sumX2 += prev * prev;
    prev = cur;
  }
  const double meanX = sumX / kDraws;
  const double cov = sumXY / kDraws - meanX * meanX;
  const double var = sumX2 / kDraws - meanX * meanX;
  EXPECT_NEAR(cov / var, 0.0, 0.01);
}

}  // namespace
}  // namespace rlslb::rng
