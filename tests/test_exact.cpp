// Tests for src/exact: the absorbing-chain solver is itself validated
// against hand-computable cases and closed forms, so it can serve as ground
// truth for the simulation engines (test_engines.cpp).
#include <gtest/gtest.h>

#include <cmath>

#include "config/generators.hpp"
#include "exact/rls_chain.hpp"

namespace rlslb::exact {
namespace {

TEST(RlsChain, EnumeratesPartitions) {
  // Partitions of 4 into at most 2 parts: (4), (3,1), (2,2).
  RlsChain chain(2, 4);
  EXPECT_EQ(chain.numStates(), 3u);
  // Of 6 into at most 3: (6),(5,1),(4,2),(3,3),(4,1,1),(3,2,1),(2,2,2) = 7.
  RlsChain chain2(3, 6);
  EXPECT_EQ(chain2.numStates(), 7u);
}

TEST(RlsChain, AbsorbingStatesAreSpreadAtMostOne) {
  RlsChain chain(3, 7);
  const auto& times = chain.expectedBalanceTimes();
  for (std::size_t s = 0; s < chain.numStates(); ++s) {
    const auto& loads = chain.state(s);
    const std::int64_t spread = loads.front() - loads.back();
    if (spread <= 1) {
      EXPECT_DOUBLE_EQ(times[s], 0.0);
    } else {
      EXPECT_GT(times[s], 0.0);
    }
  }
}

TEST(RlsChain, TwoBinsTwoBallsHandComputed) {
  // State (2,0): one transition at rate 2 * (1/2) = 1 to (1,1). E[T] = 1.
  RlsChain chain(2, 2);
  const auto id = chain.stateId({2, 0});
  EXPECT_DOUBLE_EQ(chain.expectedBalanceTimes()[id], 1.0);
  // T ~ Exp(1): E[T^2] = 2.
  EXPECT_NEAR(chain.expectedSquaredTimes()[id], 2.0, 1e-9);
}

TEST(RlsChain, TwoBinsFourBallsHandComputed) {
  // (4,0): rate 4*(1/2) = 2 -> (3,1); (3,1): rate 3*(1/2) = 1.5 -> (2,2).
  // E[T] = 1/2 + 2/3 = 7/6.
  RlsChain chain(2, 4);
  EXPECT_NEAR(chain.expectedBalanceTimes()[chain.stateId({4, 0})], 7.0 / 6.0, 1e-12);
  EXPECT_NEAR(chain.expectedBalanceTimes()[chain.stateId({3, 1})], 2.0 / 3.0, 1e-12);
}

TEST(RlsChain, TwoPointClosedForm) {
  // Two-point configuration: E[T] = n / (avg + 1) exactly, because every
  // non-terminal permitted move preserves the load multiset (the relabeling
  // argument in docs/EXPERIMENTS.md, E3).
  for (std::int64_t n : {2, 3, 4, 5}) {
    for (std::int64_t avg : {1, 2, 3}) {
      const std::int64_t m = n * avg;
      if (m > 16) continue;  // keep the state space tiny
      RlsChain chain(n, m);
      const auto cfg = config::twoPoint(n, m);
      EXPECT_NEAR(chain.expectedTimeFrom(cfg),
                  static_cast<double>(n) / static_cast<double>(avg + 1), 1e-9)
          << "n=" << n << " avg=" << avg;
    }
  }
}

TEST(RlsChain, AllInOneIsWorstCase) {
  // From the maximally concentrated state the expected time dominates every
  // other state's (it majorizes everything; Lemma 2 intuition).
  RlsChain chain(3, 9);
  const auto& times = chain.expectedBalanceTimes();
  const double worst = times[chain.stateId({9, 0, 0})];
  for (std::size_t s = 0; s < chain.numStates(); ++s) EXPECT_LE(times[s], worst + 1e-12);
}

TEST(RlsChain, MoreBinsSlowerEndgame) {
  // With avg fixed, the two-point E[T] = n/(avg+1) grows linearly in n.
  RlsChain c4(4, 8);
  RlsChain c6(6, 12);
  const double t4 = c4.expectedTimeFrom(config::twoPoint(4, 8));
  const double t6 = c6.expectedTimeFrom(config::twoPoint(6, 12));
  EXPECT_NEAR(t6 / t4, 6.0 / 4.0, 1e-9);
}

TEST(RlsChain, VarianceNonNegative) {
  RlsChain chain(3, 8);
  const auto& et = chain.expectedBalanceTimes();
  const auto& et2 = chain.expectedSquaredTimes();
  for (std::size_t s = 0; s < chain.numStates(); ++s) {
    EXPECT_GE(et2[s] - et[s] * et[s], -1e-9) << "state " << s;
  }
}

TEST(RlsChain, StateIdSortsAndPads) {
  RlsChain chain(3, 5);
  EXPECT_EQ(chain.stateId({1, 4, 0}), chain.stateId({4, 1}));
  EXPECT_EQ(chain.stateId({0, 5, 0}), chain.stateId({5}));
}

TEST(RlsChain, ZeroBalls) {
  RlsChain chain(3, 0);
  EXPECT_EQ(chain.numStates(), 1u);
  EXPECT_DOUBLE_EQ(chain.expectedBalanceTimes()[0], 0.0);
}

TEST(RlsChain, SingleBinAlwaysBalanced) {
  RlsChain chain(1, 5);
  EXPECT_EQ(chain.numStates(), 1u);
  EXPECT_DOUBLE_EQ(chain.expectedBalanceTimes()[0], 0.0);
}

TEST(RlsChain, ExpectedTimeFromConfiguration) {
  RlsChain chain(3, 6);
  const config::Configuration c({6, 0, 0});
  EXPECT_GT(chain.expectedTimeFrom(c), 0.0);
  const config::Configuration bal({2, 2, 2});
  EXPECT_DOUBLE_EQ(chain.expectedTimeFrom(bal), 0.0);
}

TEST(RlsChain, AbsorptionCdfMatchesExponentialClosedForm) {
  // Two-point configuration: T ~ Exp((avg+1)/n) exactly, so the
  // uniformization CDF must equal 1 - exp(-rate * t).
  RlsChain chain(4, 8);  // avg = 2, rate = 3/4
  const auto id = chain.stateId({3, 2, 2, 1});
  const double rate = 3.0 / 4.0;
  for (double t : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    EXPECT_NEAR(chain.absorptionCdf(id, t), 1.0 - std::exp(-rate * t), 1e-8) << t;
  }
}

TEST(RlsChain, AbsorptionCdfProperties) {
  RlsChain chain(3, 9);
  const auto id = chain.stateId({9, 0, 0});
  EXPECT_DOUBLE_EQ(chain.absorptionCdf(id, 0.0), 0.0);
  double prev = 0.0;
  for (double t : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    const double c = chain.absorptionCdf(id, t);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_GT(chain.absorptionCdf(id, 60.0), 0.999);
}

TEST(RlsChain, AbsorptionCdfFromAbsorbingStateIsOne) {
  RlsChain chain(3, 6);
  const auto id = chain.stateId({2, 2, 2});
  EXPECT_DOUBLE_EQ(chain.absorptionCdf(id, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(chain.absorptionCdf(id, 3.0), 1.0);
}

TEST(RlsChain, AbsorptionCdfMeanMatchesExpectedTime) {
  // E[T] = integral of (1 - CDF); trapezoid-integrate and compare.
  RlsChain chain(3, 9);
  const auto id = chain.stateId({6, 3, 0});
  const double expected = chain.expectedBalanceTimes()[id];
  double integral = 0.0;
  const double dt = 0.05;
  for (double t = 0.0; t < 80.0; t += dt) {
    integral +=
        dt * 0.5 * ((1.0 - chain.absorptionCdf(id, t)) + (1.0 - chain.absorptionCdf(id, t + dt)));
  }
  EXPECT_NEAR(integral, expected, 0.01 * expected);
}

TEST(RlsChain, AbsorbingStateCountMatchesSpreadCriterion) {
  // Absorbing states are exactly the partitions with spread <= 1: for
  // n = 4, m = 10 that is only (3,3,2,2).
  RlsChain chain(4, 10);
  EXPECT_EQ(chain.numAbsorbing(), 1u);
  // For n = 4, m = 8: only (2,2,2,2).
  RlsChain chain2(4, 8);
  EXPECT_EQ(chain2.numAbsorbing(), 1u);
  // For n = 4, m = 3: (1,1,1,0) is the only spread-<=1 partition.
  RlsChain chain3(4, 3);
  EXPECT_EQ(chain3.numAbsorbing(), 1u);
}

TEST(RlsChain, ExpectedTimesDecreaseAlongGreedyPath) {
  // Moving a ball from the fullest to the emptiest bin cannot increase the
  // exact expected remaining time (a majorization sanity check).
  RlsChain chain(4, 12);
  const auto& times = chain.expectedBalanceTimes();
  std::vector<std::int64_t> loads = {12, 0, 0, 0};
  double last = times[chain.stateId(loads)];
  while (loads.front() - loads.back() > 1) {
    --loads.front();
    ++loads.back();
    std::sort(loads.begin(), loads.end(), std::greater<>());
    const double now = times[chain.stateId(loads)];
    EXPECT_LE(now, last + 1e-12);
    last = now;
  }
}

TEST(RlsChain, MediumSystemSolves) {
  // p(16, <=4 parts) = 64 states; exercises the dense solver path.
  RlsChain chain(4, 16);
  EXPECT_GT(chain.numStates(), 50u);
  const double t = chain.expectedTimeFrom(config::allInOne(4, 16));
  EXPECT_GT(t, 1.0);
  EXPECT_LT(t, 50.0);
}

}  // namespace
}  // namespace rlslb::exact
