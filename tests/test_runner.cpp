// Tests for src/runner: the replication harness must be deterministic for a
// base seed regardless of thread count.
#include <gtest/gtest.h>

#include "config/generators.hpp"
#include "core/rls.hpp"
#include "rng/distributions.hpp"
#include "rng/splitmix64.hpp"
#include "runner/replication.hpp"

namespace rlslb::runner {
namespace {

TEST(Runner, ScalarShapeAndOrder) {
  const auto samples = runReplicationsScalar(
      10, 1, [](std::int64_t rep, std::uint64_t) { return static_cast<double>(rep); }, 1);
  ASSERT_EQ(samples.size(), 10u);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(samples[i], static_cast<double>(i));
  }
}

TEST(Runner, SeedsFollowStreamSeedContract) {
  std::vector<std::uint64_t> seen;
  runReplicationsScalar(
      5, 42,
      [&](std::int64_t, std::uint64_t seed) {
        seen.push_back(seed);
        return 0.0;
      },
      1);
  for (std::size_t rep = 0; rep < 5; ++rep) {
    EXPECT_EQ(seen[rep], rng::streamSeed(42, rep));
  }
}

TEST(Runner, ThreadCountInvariance) {
  const auto body = [](std::int64_t, std::uint64_t seed) {
    core::SimOptions o;
    o.engine = core::SimOptions::EngineKind::Jump;
    o.seed = seed;
    return core::balancingTime(config::allInOne(8, 32), o);
  };
  const auto oneThread = runReplicationsScalar(32, 7, body, 1);
  const auto fourThreads = runReplicationsScalar(32, 7, body, 4);
  ASSERT_EQ(oneThread.size(), fourThreads.size());
  for (std::size_t i = 0; i < oneThread.size(); ++i) {
    EXPECT_DOUBLE_EQ(oneThread[i], fourThreads[i]) << i;
  }
}

TEST(Runner, MultiMetric) {
  const auto result = runReplications(6, 3, 2, [](std::int64_t rep, std::uint64_t) {
    return std::vector<double>{static_cast<double>(rep), static_cast<double>(rep * rep)};
  });
  ASSERT_EQ(result.samples.size(), 2u);
  EXPECT_DOUBLE_EQ(result.samples[1][3], 9.0);
  const auto s = result.summary(0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
}

TEST(Runner, SummaryIntegration) {
  const auto result = runReplications(100, 11, 1, [](std::int64_t, std::uint64_t seed) {
    rng::Xoshiro256pp eng(seed);
    return std::vector<double>{rng::exponential(eng, 1.0)};
  });
  const auto s = result.summary(0);
  EXPECT_EQ(s.count, 100);
  EXPECT_NEAR(s.mean, 1.0, 0.5);
  EXPECT_GT(s.ci95Half, 0.0);
}

TEST(Runner, BaseSeedChangesResults) {
  const auto body = [](std::int64_t, std::uint64_t seed) {
    rng::Xoshiro256pp eng(seed);
    return rng::uniformDouble(eng);
  };
  const auto a = runReplicationsScalar(8, 1, body, 1);
  const auto b = runReplicationsScalar(8, 2, body, 1);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace rlslb::runner
