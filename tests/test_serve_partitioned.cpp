// The partitioned-apply differential layer: the production event loop in
// ApplyMode::kPartitioned must be byte-identical — final load vector, every
// semantic counter, and the per-epoch gap trajectory — to the frozen
// pre-partitioning reference loop (tests/serve_reference.hpp) across shard
// counts, thread counts, epoch granularities, trace kinds, and seeds. Plus
// the CrossShardQueues drain-contract property tests, LoopOptions
// validation death tests, the EpochStats/RunResult timing contract, and a
// high-contention stress case sized for the TSan CI job.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/xoshiro256pp.hpp"
#include "runner/thread_pool.hpp"
#include "serve/event_loop.hpp"
#include "serve/migration_queue.hpp"
#include "serve/online_allocator.hpp"
#include "serve_reference.hpp"
#include "workload/generators.hpp"

namespace rlslb::serve {
namespace {

enum class TraceKind { kPoisson, kBursty, kDiurnal, kAdversarial };
constexpr TraceKind kAllKinds[] = {TraceKind::kPoisson, TraceKind::kBursty,
                                   TraceKind::kDiurnal, TraceKind::kAdversarial};

std::unique_ptr<workload::TraceGenerator> makeTrace(TraceKind kind, std::int64_t bins,
                                                    std::int64_t events,
                                                    std::uint64_t seed) {
  workload::OpenTraceOptions base;
  base.bins = bins;
  base.arrivalRatePerBin = 1.0;
  base.departureRate = 0.25;
  base.resampleRate = 1.0;
  base.maxEvents = events;
  switch (kind) {
    case TraceKind::kPoisson:
      return std::make_unique<workload::PoissonTrace>(base, seed);
    case TraceKind::kBursty:
      return std::make_unique<workload::BurstyTrace>(
          workload::BurstyTraceOptions{.base = base}, seed);
    case TraceKind::kDiurnal:
      return std::make_unique<workload::DiurnalTrace>(
          workload::DiurnalTraceOptions{.base = base}, seed);
    case TraceKind::kAdversarial:
      return std::make_unique<workload::HotspotTrace>(
          workload::HotspotTraceOptions{.base = base}, seed);
  }
  return nullptr;
}

/// Everything the differential compares: the semantic outcome of a run.
struct Outcome {
  std::vector<std::int64_t> loads;
  ServeCounters counters;
  std::int64_t liveBalls = 0;
  std::int64_t totalLoad = 0;
  std::vector<std::int64_t> gapTrajectory;
};

bool countersEqual(const ServeCounters& a, const ServeCounters& b) {
  return a.events == b.events && a.arrivals == b.arrivals &&
         a.departures == b.departures && a.resamples == b.resamples &&
         a.migrations == b.migrations && a.rejectedMoves == b.rejectedMoves &&
         a.repairAttempts == b.repairAttempts &&
         a.repairMigrations == b.repairMigrations;
}

struct Config {
  TraceKind kind = TraceKind::kPoisson;
  std::int64_t bins = 24;
  std::int64_t events = 2048;
  std::int64_t epochEvents = 256;
  std::uint64_t seed = 1;
};

Outcome runReference(const Config& c) {
  auto trace = makeTrace(c.kind, c.bins, c.events, c.seed);
  reference::ReferenceAllocator allocator(
      AllocatorOptions{.bins = c.bins, .arrivalChoices = 2});
  runner::ThreadPool pool(1);
  reference::ReferenceEventLoop loop(
      allocator,
      reference::ReferenceEventLoop::Options{
          .shards = 4, .epochEvents = c.epochEvents, .repairMovesPerEpoch = 4,
          .seed = c.seed},
      pool);
  Outcome out;
  const auto result =
      loop.run(*trace, [&](const reference::ReferenceEpochStats& s) {
        out.gapTrajectory.push_back(s.gap());
      });
  EXPECT_EQ(result.events, c.events);
  out.loads = allocator.loads();
  out.counters = allocator.counters();
  out.liveBalls = allocator.liveBalls();
  out.totalLoad = allocator.totalLoad();
  return out;
}

Outcome runPartitioned(const Config& c, int shards, int threads) {
  auto trace = makeTrace(c.kind, c.bins, c.events, c.seed);
  OnlineAllocator allocator(AllocatorOptions{.bins = c.bins, .arrivalChoices = 2});
  runner::ThreadPool pool(threads);
  LoopOptions options;
  options.shards = shards;
  options.epochEvents = c.epochEvents;
  options.repairMovesPerEpoch = 4;
  options.seed = c.seed;
  options.applyMode = ApplyMode::kPartitioned;
  ShardedEventLoop loop(allocator, options, pool);
  Outcome out;
  const auto result = loop.run(*trace, [&](const EpochStats& s) {
    out.gapTrajectory.push_back(s.gap());
  });
  EXPECT_EQ(result.events, c.events);
  EXPECT_TRUE(allocator.validate());
  out.loads = allocator.loads();
  out.counters = allocator.counters();
  out.liveBalls = allocator.liveBalls();
  out.totalLoad = allocator.totalLoad();
  return out;
}

Outcome runFused(const Config& c) {
  auto trace = makeTrace(c.kind, c.bins, c.events, c.seed);
  OnlineAllocator allocator(AllocatorOptions{.bins = c.bins, .arrivalChoices = 2});
  runner::ThreadPool pool(1);
  LoopOptions options;
  options.shards = 4;
  options.epochEvents = c.epochEvents;
  options.repairMovesPerEpoch = 4;
  options.seed = c.seed;
  options.applyMode = ApplyMode::kSequential;
  ShardedEventLoop loop(allocator, options, pool);
  Outcome out;
  const auto result = loop.run(*trace, [&](const EpochStats& s) {
    out.gapTrajectory.push_back(s.gap());
  });
  EXPECT_EQ(result.events, c.events);
  EXPECT_TRUE(allocator.validate());
  out.loads = allocator.loads();
  out.counters = allocator.counters();
  out.liveBalls = allocator.liveBalls();
  out.totalLoad = allocator.totalLoad();
  return out;
}

void expectIdentical(const Outcome& ref, const Outcome& got, const char* axis,
                     std::int64_t a, std::int64_t b) {
  EXPECT_EQ(ref.loads, got.loads) << axis << "=(" << a << "," << b << ")";
  EXPECT_TRUE(countersEqual(ref.counters, got.counters))
      << axis << "=(" << a << "," << b << ")";
  EXPECT_EQ(ref.liveBalls, got.liveBalls) << axis << "=(" << a << "," << b << ")";
  EXPECT_EQ(ref.totalLoad, got.totalLoad) << axis << "=(" << a << "," << b << ")";
  EXPECT_EQ(ref.gapTrajectory, got.gapTrajectory)
      << axis << "=(" << a << "," << b << ")";
}

// ------------------------------------------------ differential matrix

TEST(PartitionedDifferential, ShardAndThreadMatrix) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Config c;
    c.seed = seed;
    const Outcome ref = runReference(c);
    for (const int shards : {1, 2, 3, 8, 16}) {
      for (const int threads : {1, 2, 4}) {
        expectIdentical(ref, runPartitioned(c, shards, threads), "shards,threads",
                        shards, threads);
      }
    }
  }
}

// The fused (kSequential) execution of the batched hot path — snapshot-free
// decision phase, per-event engine reseed, deferred Fenwick/histogram
// flush, batched apply — against the frozen pre-change reference loop:
// the equivalence pin for the hot-path rework. Every semantic observable,
// including the per-epoch gap trajectory, must be byte-identical.
TEST(FusedDifferential, MatchesReferenceAcrossKindsAndSeeds) {
  for (const TraceKind kind : kAllKinds) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      Config c;
      c.kind = kind;
      c.seed = seed;
      expectIdentical(runReference(c), runFused(c), "kind,seed",
                      static_cast<std::int64_t>(kind),
                      static_cast<std::int64_t>(seed));
    }
  }
}

TEST(PartitionedDifferential, EpochGranularities) {
  // epochEvents is a semantic knob, so each granularity gets its own
  // reference; the partitioned loop must track every one, including the
  // degenerate one-event epoch (every event sees a fresh snapshot) and an
  // epoch larger than the whole trace.
  const struct {
    std::int64_t epochEvents;
    std::int64_t events;
  } grid[] = {{1, 300}, {7, 700}, {1024, 2048}};
  for (const TraceKind kind : {TraceKind::kPoisson, TraceKind::kAdversarial}) {
    for (const auto& g : grid) {
      for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        Config c;
        c.kind = kind;
        c.epochEvents = g.epochEvents;
        c.events = g.events;
        c.seed = seed;
        const Outcome ref = runReference(c);
        expectIdentical(ref, runPartitioned(c, 2, 2), "epoch,shards", g.epochEvents, 2);
        expectIdentical(ref, runPartitioned(c, 16, 4), "epoch,shards", g.epochEvents,
                        16);
      }
    }
  }
}

TEST(PartitionedDifferential, AllTraceKinds) {
  for (const TraceKind kind : kAllKinds) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      Config c;
      c.kind = kind;
      c.events = 1500;
      c.epochEvents = 128;
      c.seed = seed;
      const Outcome ref = runReference(c);
      expectIdentical(ref, runPartitioned(c, 3, 2), "kind,shards",
                      static_cast<std::int64_t>(kind), 3);
      expectIdentical(ref, runPartitioned(c, 8, 4), "kind,shards",
                      static_cast<std::int64_t>(kind), 8);
    }
  }
}

TEST(PartitionedDifferential, ShardCountClampsToBins) {
  // More shards than bins: ownership clamps to one bin per shard and the
  // loop reports the clamped count, still byte-identical to the reference.
  Config c;
  c.bins = 4;
  c.events = 600;
  c.epochEvents = 64;
  const Outcome ref = runReference(c);

  auto trace = makeTrace(c.kind, c.bins, c.events, c.seed);
  OnlineAllocator allocator(AllocatorOptions{.bins = c.bins, .arrivalChoices = 2});
  runner::ThreadPool pool(2);
  LoopOptions options;
  options.shards = 16;
  options.epochEvents = c.epochEvents;
  options.seed = c.seed;
  options.applyMode = ApplyMode::kPartitioned;
  ShardedEventLoop loop(allocator, options, pool);
  Outcome got;
  loop.run(*trace, [&](const EpochStats& s) {
    EXPECT_EQ(s.queue.applyShards, 4);
    got.gapTrajectory.push_back(s.gap());
  });
  got.loads = allocator.loads();
  got.counters = allocator.counters();
  got.liveBalls = allocator.liveBalls();
  got.totalLoad = allocator.totalLoad();
  expectIdentical(ref, got, "clamped shards", 16, 4);
}

TEST(PartitionedDifferential, QueueStatsAccountForEveryStructuralOp) {
  // Each arrival and departure queues one op; each accepted resample
  // queues two (Remove + Place); rejections and repair moves queue none.
  Config c;
  c.events = 4096;
  c.epochEvents = 512;
  auto trace = makeTrace(c.kind, c.bins, c.events, c.seed);
  OnlineAllocator allocator(AllocatorOptions{.bins = c.bins, .arrivalChoices = 2});
  runner::ThreadPool pool(2);
  LoopOptions options;
  options.shards = 8;
  options.epochEvents = c.epochEvents;
  options.seed = c.seed;
  options.applyMode = ApplyMode::kPartitioned;
  ShardedEventLoop loop(allocator, options, pool);
  std::int64_t queuedSum = 0;
  std::int64_t crossSum = 0;
  const auto result = loop.run(*trace, [&](const EpochStats& s) {
    EXPECT_LE(s.queue.crossShardOps, s.queue.queuedOps);
    EXPECT_LE(s.queue.queuePeak, s.queue.queuedOps);
    queuedSum += s.queue.queuedOps;
    crossSum += s.queue.crossShardOps;
  });
  const ServeCounters& k = allocator.counters();
  EXPECT_EQ(result.queue.queuedOps, queuedSum);
  EXPECT_EQ(result.queue.crossShardOps, crossSum);
  EXPECT_EQ(result.queue.queuedOps, k.arrivals + k.departures + 2 * k.migrations);
  EXPECT_GT(result.queue.crossShardOps, 0) << "an 8-shard run must cross boundaries";
}

TEST(PartitionedDifferential, MidStreamRepartitionPreservesState) {
  Config c;
  const Outcome before = runReference(c);
  auto trace = makeTrace(c.kind, c.bins, c.events, c.seed);
  OnlineAllocator allocator(AllocatorOptions{.bins = c.bins, .arrivalChoices = 2});
  runner::ThreadPool pool(1);
  LoopOptions options;
  options.epochEvents = c.epochEvents;
  options.seed = c.seed;
  options.applyMode = ApplyMode::kSequential;
  ShardedEventLoop loop(allocator, options, pool);
  loop.run(*trace);
  EXPECT_EQ(allocator.loads(), before.loads);

  // Re-splitting live state is an execution-layout change only.
  for (const int shards : {5, 16, 2, 1}) {
    allocator.configurePartitions(shards, /*enableRouter=*/true);
    EXPECT_TRUE(allocator.validate()) << "shards=" << shards;
    EXPECT_EQ(allocator.loads(), before.loads) << "shards=" << shards;
    EXPECT_EQ(allocator.liveBalls(), before.liveBalls) << "shards=" << shards;
    EXPECT_EQ(allocator.totalLoad(), before.totalLoad) << "shards=" << shards;
  }
  allocator.configurePartitions(1, /*enableRouter=*/false);
  EXPECT_TRUE(allocator.validate());
  EXPECT_EQ(allocator.loads(), before.loads);
}

// ------------------------------------------------ apply-mode resolution

TEST(ApplyModeResolution, AutoNeedsWorkersAndShards) {
  OnlineAllocator allocator(AllocatorOptions{.bins = 16, .arrivalChoices = 2});
  runner::ThreadPool serial(1);
  runner::ThreadPool parallel(2);
  const auto uses = [&](int shards, ApplyMode mode, runner::ThreadPool& pool) {
    LoopOptions o;
    o.shards = shards;
    o.applyMode = mode;
    return ShardedEventLoop(allocator, o, pool).usesPartitionedApply();
  };
  EXPECT_FALSE(uses(8, ApplyMode::kAuto, serial));
  EXPECT_FALSE(uses(1, ApplyMode::kAuto, parallel));
  EXPECT_TRUE(uses(8, ApplyMode::kAuto, parallel));
  EXPECT_FALSE(uses(8, ApplyMode::kSequential, parallel));
  EXPECT_TRUE(uses(8, ApplyMode::kPartitioned, serial));
}

// ------------------------------------------------ queue property tests

TEST(CrossShardQueues, ConservationEveryOpDrainedExactlyOnce) {
  constexpr int kShards = 4;
  constexpr int kOps = 500;
  CrossShardQueues queues(kShards);
  rng::Xoshiro256pp eng(42);
  std::vector<std::vector<BinOp>> expected(kShards);  // per owner, push order
  for (std::int64_t ordinal = 0; ordinal < kOps; ++ordinal) {
    const int from = static_cast<int>(rng::uniformIndex(eng, kShards));
    const int to = static_cast<int>(rng::uniformIndex(eng, kShards));
    const BinOp op{ordinal, /*ball=*/ordinal,
                   /*weight=*/1 + static_cast<std::int64_t>(rng::uniformIndex(eng, 3)),
                   /*bin=*/static_cast<std::int32_t>(rng::uniformIndex(eng, 24)),
                   ordinal % 2 == 0 ? BinOp::Kind::kPlace : BinOp::Kind::kRemove};
    queues.push(from, to, op);
    expected[static_cast<std::size_t>(to)].push_back(op);
  }
  EXPECT_EQ(queues.totalPending(), kOps);
  std::int64_t drained = 0;
  for (int to = 0; to < kShards; ++to) {
    std::vector<BinOp> got;
    queues.drainTo(to, [&](const BinOp& op) { got.push_back(op); });
    // Unique ascending ordinals here, so canonical order == push order.
    EXPECT_EQ(got, expected[static_cast<std::size_t>(to)]) << "owner " << to;
    EXPECT_EQ(static_cast<std::int64_t>(got.size()), queues.pendingFor(to));
    drained += static_cast<std::int64_t>(got.size());
  }
  EXPECT_EQ(drained, kOps);
}

TEST(CrossShardQueues, DrainOrderIndependentOfSourceInterleaving) {
  // The same per-(from, to) queue contents pushed under three different
  // global interleavings (source-major, reverse source-major, round-robin)
  // must drain in the same canonical sequence: the merge depends on queue
  // contents only, never on completion order — the determinism anchor of
  // the parallel apply phase.
  constexpr int kShards = 3;
  std::vector<std::vector<BinOp>> perSource(kShards);  // ops from shard f -> owner 1
  for (int from = 0; from < kShards; ++from) {
    for (std::int64_t i = 0; i < 40; ++i) {
      perSource[static_cast<std::size_t>(from)].push_back(
          BinOp{/*ordinal=*/from + 3 * i, /*ball=*/from * 1000 + i, /*weight=*/1,
                /*bin=*/static_cast<std::int32_t>(from), BinOp::Kind::kPlace});
    }
  }
  const auto drainUnder = [&](const std::vector<std::pair<int, std::size_t>>& order) {
    CrossShardQueues queues(kShards);
    for (const auto& [from, index] : order) {
      queues.push(from, 1, perSource[static_cast<std::size_t>(from)][index]);
    }
    std::vector<BinOp> got;
    queues.drainTo(1, [&](const BinOp& op) { got.push_back(op); });
    return got;
  };
  std::vector<std::pair<int, std::size_t>> sourceMajor;
  std::vector<std::pair<int, std::size_t>> reverseMajor;
  std::vector<std::pair<int, std::size_t>> roundRobin;
  for (int from = 0; from < kShards; ++from) {
    for (std::size_t i = 0; i < 40; ++i) sourceMajor.emplace_back(from, i);
  }
  for (int from = kShards - 1; from >= 0; --from) {
    for (std::size_t i = 0; i < 40; ++i) reverseMajor.emplace_back(from, i);
  }
  for (std::size_t i = 0; i < 40; ++i) {
    for (int from = 0; from < kShards; ++from) roundRobin.emplace_back(from, i);
  }
  const std::vector<BinOp> a = drainUnder(sourceMajor);
  const std::vector<BinOp> b = drainUnder(reverseMajor);
  const std::vector<BinOp> c = drainUnder(roundRobin);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_LT(a[i - 1].ordinal, a[i].ordinal);  // unique ordinals: strictly ascending
  }
}

TEST(CrossShardQueues, EqualOrdinalsDrainInSourceOrder) {
  CrossShardQueues queues(4);
  // One event can emit ops from a single source only, but the contract is
  // broader: equal ordinals break ties by ascending source shard.
  for (const int from : {3, 1, 2, 0}) {
    queues.push(from, 2,
                BinOp{/*ordinal=*/5, /*ball=*/from, /*weight=*/1, /*bin=*/6,
                      BinOp::Kind::kPlace});
  }
  std::vector<std::int64_t> balls;
  queues.drainTo(2, [&](const BinOp& op) { balls.push_back(op.ball); });
  EXPECT_EQ(balls, (std::vector<std::int64_t>{0, 1, 2, 3}));
}

TEST(CrossShardQueues, EmptyDrainVisitsNothing) {
  CrossShardQueues queues(3);
  EXPECT_TRUE(queues.empty());
  for (int to = 0; to < 3; ++to) {
    queues.drainTo(to, [&](const BinOp&) { FAIL() << "visitor on empty queues"; });
    EXPECT_EQ(queues.pendingFor(to), 0);
  }
  EXPECT_EQ(queues.totalPending(), 0);
  EXPECT_EQ(queues.crossPending(), 0);
  EXPECT_EQ(queues.peakDepth(), 0);
}

TEST(CrossShardQueues, GrowthPastAnyReserveAndReuseAfterClear) {
  constexpr std::int64_t kDeep = 5000;
  CrossShardQueues queues(2);
  for (std::int64_t i = 0; i < kDeep; ++i) {
    queues.push(0, 1, BinOp{i, i, 1, 0, BinOp::Kind::kPlace});
  }
  EXPECT_EQ(queues.peakDepth(), kDeep);
  EXPECT_EQ(queues.crossPending(), kDeep);
  std::int64_t seen = 0;
  queues.drainTo(1, [&](const BinOp&) { ++seen; });
  EXPECT_EQ(seen, kDeep);

  queues.clear();
  EXPECT_TRUE(queues.empty());
  EXPECT_EQ(queues.peakDepth(), 0);
  queues.push(1, 0, BinOp{0, 7, 1, 0, BinOp::Kind::kRemove});
  std::int64_t reuse = 0;
  queues.drainTo(0, [&](const BinOp& op) {
    ++reuse;
    EXPECT_EQ(op.ball, 7);
  });
  EXPECT_EQ(reuse, 1);

  queues.reset(5);
  EXPECT_EQ(queues.shards(), 5);
  EXPECT_TRUE(queues.empty());
}

// ------------------------------------------------ option validation

TEST(ServePartitionedDeathTest, RejectsInvalidLoopOptions) {
  OnlineAllocator allocator(AllocatorOptions{.bins = 8, .arrivalChoices = 1});
  runner::ThreadPool pool(1);
  const auto makeLoop = [&](int shards, std::int64_t epochEvents, int repair) {
    LoopOptions o;
    o.shards = shards;
    o.epochEvents = epochEvents;
    o.repairMovesPerEpoch = repair;
    ShardedEventLoop loop(allocator, o, pool);
  };
  EXPECT_DEATH(makeLoop(0, 1024, 4), "LoopOptions.shards must be >= 1");
  EXPECT_DEATH(makeLoop(-3, 1024, 4), "LoopOptions.shards must be >= 1");
  EXPECT_DEATH(makeLoop(8, 0, 4), "LoopOptions.epochEvents must be >= 1");
  EXPECT_DEATH(makeLoop(8, -1, 4), "LoopOptions.epochEvents must be >= 1");
  EXPECT_DEATH(makeLoop(8, 1024, -1), "LoopOptions.repairMovesPerEpoch must be >= 0");
}

TEST(ServePartitionedDeathTest, QueuesRejectZeroShardsAndDescendingOrdinals) {
  EXPECT_DEATH(CrossShardQueues queues(0), "at least one shard");
  CrossShardQueues queues(2);
  queues.push(0, 1, BinOp{5, 1, 1, 0, BinOp::Kind::kPlace});
  EXPECT_DEATH(queues.push(0, 1, BinOp{4, 2, 1, 0, BinOp::Kind::kPlace}),
               "ordinal-ascending");
}

// ------------------------------------------------ timing contract

TEST(TimingContract, RunResultIsTheExactSumOfEpochWallSeconds) {
  Config c;
  c.events = 2048;
  c.epochEvents = 128;
  auto trace = makeTrace(c.kind, c.bins, c.events, c.seed);
  OnlineAllocator allocator(AllocatorOptions{.bins = c.bins, .arrivalChoices = 2});
  runner::ThreadPool pool(2);
  LoopOptions options;
  options.epochEvents = c.epochEvents;
  options.seed = c.seed;
  options.applyMode = ApplyMode::kPartitioned;
  ShardedEventLoop loop(allocator, options, pool);
  double sum = 0.0;
  std::int64_t epochs = 0;
  const auto result = loop.run(*trace, [&](const EpochStats& s) {
    EXPECT_GE(s.wallSeconds, 0.0);
    sum += s.wallSeconds;
    ++epochs;
  });
  EXPECT_EQ(epochs, result.epochs);
  // Exact: both sides accumulate the identical per-epoch doubles in the
  // identical order, so this is bitwise equality, not a tolerance check.
  EXPECT_EQ(sum, result.wallSeconds);
}

TEST(TimingContract, OnEpochCallbackTimeIsExcluded) {
  Config c;
  c.events = 256;
  c.epochEvents = 64;
  auto trace = makeTrace(c.kind, c.bins, c.events, c.seed);
  OnlineAllocator allocator(AllocatorOptions{.bins = c.bins, .arrivalChoices = 2});
  runner::ThreadPool pool(1);
  LoopOptions options;
  options.epochEvents = c.epochEvents;
  options.seed = c.seed;
  ShardedEventLoop loop(allocator, options, pool);
  const auto result = loop.run(*trace, [&](const EpochStats&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  });
  EXPECT_EQ(result.epochs, 4);
  // 4 x 10ms of callback sleep; the measured epochs do ~256 events of real
  // work (microseconds). Half the sleep budget is an ocean of margin.
  EXPECT_LT(result.wallSeconds, 0.020);
}

/// Wraps a trace and sleeps inside next(): trace *generation* cost, which
/// the timing contract says is not the serving loop's to report.
class SlowTrace final : public workload::TraceGenerator {
 public:
  SlowTrace(workload::TraceGenerator& inner, std::chrono::microseconds delay)
      : inner_(&inner), delay_(delay) {}
  bool next(workload::Event* out) override {
    if (!inner_->next(out)) return false;
    std::this_thread::sleep_for(delay_);
    return true;
  }
  [[nodiscard]] std::string name() const override { return "slow"; }

 private:
  workload::TraceGenerator* inner_;
  std::chrono::microseconds delay_;
};

TEST(TimingContract, TraceGenerationTimeIsExcluded) {
  Config c;
  c.events = 64;
  c.epochEvents = 16;
  auto inner = makeTrace(c.kind, c.bins, c.events, c.seed);
  SlowTrace trace(*inner, std::chrono::microseconds(500));
  OnlineAllocator allocator(AllocatorOptions{.bins = c.bins, .arrivalChoices = 2});
  runner::ThreadPool pool(1);
  LoopOptions options;
  options.epochEvents = c.epochEvents;
  options.seed = c.seed;
  ShardedEventLoop loop(allocator, options, pool);
  const auto result = loop.run(trace);
  EXPECT_EQ(result.events, 64);
  // 64 x 0.5ms = 32ms of generation sleep; the 4 epochs of real work are
  // microseconds.
  EXPECT_LT(result.wallSeconds, 0.016);
}

// ------------------------------------------------ TSan-sized stress

TEST(PartitionedStress, HighContentionLongEpochs) {
  // Long epochs + a hot resample clock maximize queue depth and cross-
  // shard traffic while four threads drain eight owners; the TSan CI job
  // (-R "runner|serve|process") runs this suite under the race detector.
  Config c;
  c.bins = 64;
  c.events = 3 * 8192;
  c.epochEvents = 8192;
  c.seed = 2017;
  workload::OpenTraceOptions base;
  base.bins = c.bins;
  base.arrivalRatePerBin = 2.0;
  base.departureRate = 0.25;
  base.resampleRate = 4.0;  // high contention: most events are migrations
  base.maxEvents = c.events;

  Outcome ref;
  {
    workload::PoissonTrace trace(base, c.seed);
    reference::ReferenceAllocator allocator(
        AllocatorOptions{.bins = c.bins, .arrivalChoices = 2});
    runner::ThreadPool pool(1);
    reference::ReferenceEventLoop loop(
        allocator,
        reference::ReferenceEventLoop::Options{
            .shards = 4, .epochEvents = c.epochEvents, .repairMovesPerEpoch = 4,
            .seed = c.seed},
        pool);
    loop.run(trace, [&](const reference::ReferenceEpochStats& s) {
      ref.gapTrajectory.push_back(s.gap());
    });
    ref.loads = allocator.loads();
    ref.counters = allocator.counters();
    ref.liveBalls = allocator.liveBalls();
    ref.totalLoad = allocator.totalLoad();
  }
  {
    workload::PoissonTrace trace(base, c.seed);
    OnlineAllocator allocator(AllocatorOptions{.bins = c.bins, .arrivalChoices = 2});
    runner::ThreadPool pool(4);
    LoopOptions options;
    options.shards = 8;
    options.epochEvents = c.epochEvents;
    options.seed = c.seed;
    options.applyMode = ApplyMode::kPartitioned;
    ShardedEventLoop loop(allocator, options, pool);
    Outcome got;
    loop.run(trace, [&](const EpochStats& s) { got.gapTrajectory.push_back(s.gap()); });
    EXPECT_TRUE(allocator.validate());
    got.loads = allocator.loads();
    got.counters = allocator.counters();
    got.liveBalls = allocator.liveBalls();
    got.totalLoad = allocator.totalLoad();
    expectIdentical(ref, got, "stress shards,threads", 8, 4);
  }
}

}  // namespace
}  // namespace rlslb::serve
