// Distributed selfish load balancing, Berenbrink-Friedetzky-Goldberg-
// Goldberg-Hu-Martin (SICOMP 2007) -- reference [4] of the paper.
//
// Synchronous rounds: every ball (in parallel, using the loads at the start
// of the round) samples a uniformly random bin j; if load(j) < load(i) it
// migrates with probability 1 - load(j)/load(i). The probability damping is
// what prevents overshooting when many balls act at once; the paper's
// Section 2 contrasts its O(ln ln m + n^4) bound with RLS's m-independent
// local-search behaviour.
#pragma once

#include "protocols/round_protocol.hpp"

namespace rlslb::protocols {

class SelfishRerouting final : public RoundProtocol {
 public:
  using RoundProtocol::RoundProtocol;
  void round() override;
};

}  // namespace rlslb::protocols
