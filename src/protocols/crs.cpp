#include "protocols/crs.hpp"

#include "process/adapters.hpp"
#include "process/process.hpp"
#include "rng/distributions.hpp"
#include "util/assert.hpp"

namespace rlslb::protocols {

CrsProtocol::CrsProtocol(std::int64_t n, std::int64_t m, std::uint64_t seed)
    : n_(n), m_(m), eng_(seed) {
  RLSLB_ASSERT(n >= 2 && m >= 0);
  balls_.resize(static_cast<std::size_t>(m));
  binBalls_.resize(static_cast<std::size_t>(n));
  loads_.assign(static_cast<std::size_t>(n), 0);
  tracker_.reset(loads_);

  for (std::uint32_t b = 0; b < static_cast<std::uint32_t>(m); ++b) {
    const auto c0 = static_cast<std::uint32_t>(rng::uniformIndex(eng_, static_cast<std::uint64_t>(n)));
    auto c1 = static_cast<std::uint32_t>(rng::uniformIndex(eng_, static_cast<std::uint64_t>(n - 1)));
    if (c1 >= c0) ++c1;  // distinct candidates, uniform over ordered pairs
    balls_[b].candidate[0] = c0;
    balls_[b].candidate[1] = c1;
    // Greedy[2] prefix placement: lesser loaded candidate at insertion time.
    const std::uint32_t which = loads_[c1] < loads_[c0] ? 1u : 0u;
    place(b, which);
  }
}

void CrsProtocol::place(std::uint32_t ballId, std::uint32_t whichCandidate) {
  Ball& ball = balls_[ballId];
  ball.at = whichCandidate;
  const std::uint32_t bin = ball.candidate[whichCandidate];
  binBalls_[bin].push_back(ballId);
  tracker_.onLoadChange(loads_[bin], loads_[bin] + 1);
  ++loads_[bin];
}

void CrsProtocol::remove(std::uint32_t ballId) {
  const Ball& ball = balls_[ballId];
  const std::uint32_t bin = ball.candidate[ball.at];
  auto& bucket = binBalls_[bin];
  // Swap-remove; buckets are small (O(average load)).
  for (std::size_t i = 0; i < bucket.size(); ++i) {
    if (bucket[i] == ballId) {
      bucket[i] = bucket.back();
      bucket.pop_back();
      tracker_.onLoadChange(loads_[bin], loads_[bin] - 1);
      --loads_[bin];
      return;
    }
  }
  RLSLB_ASSERT_MSG(false, "ball not found in its bin");
}

bool CrsProtocol::step() {
  ++steps_;
  const auto b1 = static_cast<std::uint32_t>(rng::uniformIndex(eng_, static_cast<std::uint64_t>(n_)));
  const auto b2 = static_cast<std::uint32_t>(rng::uniformIndex(eng_, static_cast<std::uint64_t>(n_)));
  if (b1 == b2) return false;

  // Find a ball in b1 whose other candidate is b2 (uniformly among them, to
  // avoid positional bias in the bucket).
  std::uint32_t found = UINT32_MAX;
  int matches = 0;
  for (const std::uint32_t id : binBalls_[b1]) {
    const Ball& ball = balls_[id];
    if (ball.candidate[1 - ball.at] == b2) {
      ++matches;
      // Reservoir sample of size 1.
      if (rng::uniformIndex(eng_, static_cast<std::uint64_t>(matches)) == 0) found = id;
    }
  }
  if (found == UINT32_MAX) return false;

  // Place into the lesser loaded of {b1, b2}; ties keep it where it is.
  if (loads_[b2] < loads_[b1]) {
    const std::uint32_t otherIdx = 1 - balls_[found].at;
    remove(found);
    place(found, otherIdx);
    ++moves_;
    return true;
  }
  return false;
}

config::Metrics CrsProtocol::metrics() const {
  return config::computeMetrics(loads_);
}

std::int64_t CrsProtocol::runUntilBalanced(std::int64_t x, std::int64_t maxSteps) {
  // Balance predicates are O(1) on the incremental state, so the loop stops
  // at the exact step the target is reached (the historical n/8 check
  // cadence only remains for the O(m) local-stability target below).
  process::CrsProcess self(*this);
  const process::Target target =
      x == 0 ? process::Target::perfect() : process::Target::xBalanced(x);
  process::RunLimits limits;
  limits.maxEvents = maxSteps;
  const process::RunResult r = process::run(self, target, limits);
  return r.reachedTarget ? steps_ : -1;
}

std::int64_t CrsProtocol::runUntilPerfect(std::int64_t maxSteps) {
  return runUntilBalanced(0, maxSteps);
}

bool CrsProtocol::isLocallyStable() const {
  for (const Ball& ball : balls_) {
    const std::int64_t cur = loads_[ball.candidate[ball.at]];
    const std::int64_t other = loads_[ball.candidate[1 - ball.at]];
    if (other < cur - 1) return false;
  }
  return true;
}

std::int64_t CrsProtocol::runUntilStable(std::int64_t maxSteps) {
  process::CrsProcess self(*this);
  process::RunLimits limits;
  limits.maxEvents = maxSteps;
  const process::RunResult r = process::run(self, process::Target::equilibrium(), limits);
  return r.reachedTarget ? steps_ : -1;
}

}  // namespace rlslb::protocols
