#include "protocols/repeated.hpp"

#include "rng/distributions.hpp"

namespace rlslb::protocols {

void RepeatedBallsIntoBins::round() {
  const auto n = static_cast<std::uint64_t>(loads().size());
  // Release one ball from every non-empty bin...
  std::int64_t released = 0;
  for (std::size_t i = 0; i < loads().size(); ++i) {
    if (loads()[i] > 0) {
      removeBall(i);
      ++released;
    }
  }
  // ... and re-throw them independently and uniformly. Every re-throw is a
  // relocation of its ball, so it counts as a move.
  for (std::int64_t k = 0; k < released; ++k) {
    addBall(static_cast<std::size_t>(rng::uniformIndex(eng_, n)), /*countMove=*/true);
  }
}

}  // namespace rlslb::protocols
