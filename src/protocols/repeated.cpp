#include "protocols/repeated.hpp"

#include "rng/distributions.hpp"

namespace rlslb::protocols {

void RepeatedBallsIntoBins::round() {
  const auto n = static_cast<std::uint64_t>(loads_.size());
  // Release one ball from every non-empty bin...
  std::int64_t released = 0;
  for (auto& v : loads_) {
    if (v > 0) {
      --v;
      ++released;
    }
  }
  // ... and re-throw them independently and uniformly.
  for (std::int64_t k = 0; k < released; ++k) {
    ++loads_[static_cast<std::size_t>(rng::uniformIndex(eng_, n))];
  }
}

}  // namespace rlslb::protocols
