#include "protocols/threshold.hpp"

#include "rng/distributions.hpp"
#include "util/assert.hpp"

namespace rlslb::protocols {

ThresholdProtocol::ThresholdProtocol(const config::Configuration& initial, std::uint64_t seed,
                                     std::int64_t threshold, double moveProbability)
    : RoundProtocol(initial, seed), threshold_(threshold), moveProbability_(moveProbability) {
  RLSLB_ASSERT(threshold >= 0);
  RLSLB_ASSERT(moveProbability > 0.0 && moveProbability <= 1.0);
}

void ThresholdProtocol::round() {
  const auto n = static_cast<std::uint64_t>(loads().size());
  const std::vector<std::int64_t> before = loads();
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (before[i] <= threshold_) continue;
    // Every ball on an above-threshold bin flips the same coin; the number
    // of migrants is binomial, destinations uniform.
    const std::int64_t migrants = rng::binomial(eng_, before[i], moveProbability_);
    for (std::int64_t k = 0; k < migrants; ++k) {
      const auto j = static_cast<std::size_t>(rng::uniformIndex(eng_, n));
      transferBall(i, j);  // no-op when j == i, matching the sampled-self skip
    }
  }
}

}  // namespace rlslb::protocols
