#include "protocols/selfish.hpp"

#include "rng/distributions.hpp"

namespace rlslb::protocols {

void SelfishRerouting::round() {
  const auto n = static_cast<std::uint64_t>(loads().size());
  const std::vector<std::int64_t> before = loads();  // decisions use round-start loads
  for (std::size_t i = 0; i < before.size(); ++i) {
    const std::int64_t li = before[i];
    for (std::int64_t ball = 0; ball < li; ++ball) {
      const auto j = static_cast<std::size_t>(rng::uniformIndex(eng_, n));
      const std::int64_t lj = before[j];
      if (lj >= li) continue;
      const double p = 1.0 - static_cast<double>(lj) / static_cast<double>(li);
      if (rng::bernoulli(eng_, p)) transferBall(i, j);
    }
  }
}

}  // namespace rlslb::protocols
