#include "protocols/round_protocol.hpp"

#include <algorithm>

namespace rlslb::protocols {

bool RoundProtocol::balancedWithin(std::int64_t x) const {
  const auto [mn, mx] = std::minmax_element(loads_.begin(), loads_.end());
  const std::int64_t n = numBins();
  if (x == 0) return config::isPerfectlyBalanced(*mn, *mx, n, balls_);
  return config::isXBalancedInt(*mn, *mx, n, balls_, x);
}

std::int64_t RoundProtocol::runUntilBalanced(std::int64_t x, std::int64_t maxRounds) {
  for (std::int64_t r = 0; r < maxRounds; ++r) {
    if (balancedWithin(x)) return rounds_;
    round();
    ++rounds_;
  }
  return balancedWithin(x) ? rounds_ : -1;
}

}  // namespace rlslb::protocols
