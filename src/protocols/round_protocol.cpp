#include "protocols/round_protocol.hpp"

#include <algorithm>

#include "process/adapters.hpp"
#include "process/process.hpp"

namespace rlslb::protocols {

void RoundProtocol::refreshState() const {
  state_.numBins = numBins();
  state_.numBalls = balls_;
  const auto [mn, mx] = std::minmax_element(loads_.begin(), loads_.end());
  state_.minLoad = *mn;
  state_.maxLoad = *mx;
  const std::int64_t ceilAvg = (balls_ + numBins() - 1) / numBins();
  state_.overloadedBalls = 0;
  for (const std::int64_t v : loads_) {
    if (v > ceilAvg) state_.overloadedBalls += v - ceilAvg;
  }
  stateDirty_ = false;
}

std::int64_t RoundProtocol::runUntilBalanced(std::int64_t x, std::int64_t maxRounds) {
  process::RoundProcess self(*this);
  const process::Target target =
      x == 0 ? process::Target::perfect() : process::Target::xBalanced(x);
  process::RunLimits limits;
  limits.maxEvents = maxRounds;
  const process::RunResult r = process::run(self, target, limits);
  return r.reachedTarget ? rounds_ : -1;
}

}  // namespace rlslb::protocols
