// Repeated balls-into-bins, Becchetti-Clementi-Natale-Pasquale-Posta
// (SPAA 2015) -- reference [2] of the paper, from its "self-stabilizing"
// related-work class.
//
// In each synchronous round, every NON-EMPTY bin releases exactly one ball,
// and every released ball is re-thrown into a uniformly random bin. [2]
// show this self-stabilizes to O(log n) maximum load (for m = n) from any
// configuration and keeps it there for poly(n) rounds. Included as the
// self-stabilization baseline in E10: unlike RLS it never converges to a
// static perfectly balanced state (it keeps churning), but its stationary
// max load is small.
#pragma once

#include "protocols/round_protocol.hpp"

namespace rlslb::protocols {

class RepeatedBallsIntoBins final : public RoundProtocol {
 public:
  using RoundProtocol::RoundProtocol;
  void round() override;
};

}  // namespace rlslb::protocols
