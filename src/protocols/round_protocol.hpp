// Shared scaffolding for the *synchronous* baselines of Section 2 (selfish
// and threshold load balancing). Unlike RLS these activate all balls
// simultaneously in rounds; the paper compares one synchronous round to one
// unit of continuous RLS time (m activations in expectation).
//
// Balance bookkeeping: subclasses mutate loads only through the
// transferBall / removeBall / addBall primitives, which count moves and
// mark the cached sim::BalanceState dirty; state() recomputes it in one
// allocation-free O(n) sweep on first access after a round. Per-move
// incremental tracking would be the wrong trade here -- a round rewrites
// Theta(m) loads (the threshold protocol migrates thousands of balls per
// round), while the stopping predicate is consulted once per round, so one
// O(n) sweep per round beats m histogram updates by orders of magnitude.
// The sweep replaces the old per-check O(n) Configuration copy +
// computeMetrics allocation in runUntilBalanced; repeated state() calls
// between rounds are O(1) on the cache.
//
// Run loop: runUntilBalanced is a thin wrapper over the generic
// process::run via process::RoundProcess; rlslb's process registry exposes
// every subclass as a process kind (selfish / edm / threshold / repeated).
#pragma once

#include <cstdint>
#include <vector>

#include "config/configuration.hpp"
#include "config/metrics.hpp"
#include "rng/xoshiro256pp.hpp"
#include "sim/engine.hpp"

namespace rlslb::protocols {

class RoundProtocol {
 public:
  explicit RoundProtocol(const config::Configuration& initial, std::uint64_t seed)
      : eng_(seed), loads_(initial.loads()), balls_(initial.numBalls()) {}
  virtual ~RoundProtocol() = default;

  /// Execute one synchronous round (does not advance the round counter;
  /// runUntilBalanced / runRound own it).
  virtual void round() = 0;

  /// One process-level event: execute a round and advance the counter.
  void runRound() {
    round();
    ++rounds_;
  }

  [[nodiscard]] std::int64_t numBins() const { return static_cast<std::int64_t>(loads_.size()); }
  [[nodiscard]] std::int64_t numBalls() const { return balls_; }
  [[nodiscard]] const std::vector<std::int64_t>& loads() const { return loads_; }
  [[nodiscard]] std::int64_t roundsTaken() const { return rounds_; }
  /// Individual ball relocations across all rounds so far.
  [[nodiscard]] std::int64_t moves() const { return moves_; }

  /// The shared balance view. Cached; recomputed in one O(n) sweep when
  /// loads changed since the last call (amortized against the Omega(n)
  /// round that dirtied it).
  [[nodiscard]] const sim::BalanceState& state() const {
    if (stateDirty_) refreshState();
    return state_;
  }

  /// Full metric sweep (reporting; stopping checks use state()).
  [[nodiscard]] config::Metrics metrics() const { return config::computeMetrics(loads_); }

  /// Run until x-balanced (x = 0 means perfectly balanced, disc < 1) or the
  /// round budget is exhausted. Returns rounds taken; -1 if not reached.
  /// Thin wrapper over process::run (process/process.hpp).
  std::int64_t runUntilBalanced(std::int64_t x, std::int64_t maxRounds);

 protected:
  /// Move one ball src -> dst. No-op when src == dst.
  void transferBall(std::size_t src, std::size_t dst) {
    if (src == dst) return;
    RLSLB_ASSERT(loads_[src] >= 1);
    --loads_[src];
    ++loads_[dst];
    ++moves_;
    stateDirty_ = true;
  }

  /// Bulk primitives for protocols that release and re-throw (repeated
  /// balls-into-bins). removeBall does not count as a move; the re-throw
  /// (addBall) does, since that is the relocation.
  void removeBall(std::size_t bin) {
    RLSLB_ASSERT(loads_[bin] >= 1);
    --loads_[bin];
    stateDirty_ = true;
  }
  void addBall(std::size_t bin, bool countMove = false) {
    ++loads_[bin];
    if (countMove) ++moves_;
    stateDirty_ = true;
  }

  rng::Xoshiro256pp eng_;

 private:
  void refreshState() const;

  std::vector<std::int64_t> loads_;
  std::int64_t balls_;
  std::int64_t rounds_ = 0;
  std::int64_t moves_ = 0;
  mutable sim::BalanceState state_;
  mutable bool stateDirty_ = true;
};

}  // namespace rlslb::protocols
