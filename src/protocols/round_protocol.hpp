// Shared scaffolding for the *synchronous* baselines of Section 2 (selfish
// and threshold load balancing). Unlike RLS these activate all balls
// simultaneously in rounds; the paper compares one synchronous round to one
// unit of continuous RLS time (m activations in expectation).
#pragma once

#include <cstdint>
#include <vector>

#include "config/configuration.hpp"
#include "config/metrics.hpp"
#include "rng/xoshiro256pp.hpp"

namespace rlslb::protocols {

class RoundProtocol {
 public:
  explicit RoundProtocol(const config::Configuration& initial, std::uint64_t seed)
      : loads_(initial.loads()), balls_(initial.numBalls()), eng_(seed) {}
  virtual ~RoundProtocol() = default;

  /// Execute one synchronous round.
  virtual void round() = 0;

  [[nodiscard]] std::int64_t numBins() const { return static_cast<std::int64_t>(loads_.size()); }
  [[nodiscard]] std::int64_t numBalls() const { return balls_; }
  [[nodiscard]] const std::vector<std::int64_t>& loads() const { return loads_; }
  [[nodiscard]] std::int64_t roundsTaken() const { return rounds_; }

  [[nodiscard]] config::Metrics metrics() const {
    return config::computeMetrics(config::Configuration(loads_));
  }

  /// Run until x-balanced (x = 0 means perfectly balanced, disc < 1) or the
  /// round budget is exhausted. Returns rounds taken; -1 if not reached.
  std::int64_t runUntilBalanced(std::int64_t x, std::int64_t maxRounds);

 protected:
  std::vector<std::int64_t> loads_;
  std::int64_t balls_;
  rng::Xoshiro256pp eng_;
  std::int64_t rounds_ = 0;

  [[nodiscard]] bool balancedWithin(std::int64_t x) const;
};

}  // namespace rlslb::protocols
