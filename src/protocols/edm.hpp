// Global-knowledge selfish rerouting in the style of Even-Dar & Mansour
// (SODA 2005) -- reference [10] of the paper.
//
// Every ball knows the global average load avg = m/n. In each synchronous
// round, a ball on an overloaded bin i (load(i) > avg) migrates with
// probability (load(i) - avg)/load(i); its destination is drawn uniformly
// among the *underloaded* bins (global knowledge again).
//
// Substitution note (docs/EXPERIMENTS.md, E10): [10] proves O(ln ln m + ln n)
// convergence for a family of such average-aware protocols; we implement
// the canonical member as described above. Only the scaling shape (fast,
// m-dependent, knowledge-assisted) is compared against RLS, mirroring the
// qualitative comparison in the paper's Section 2.
#pragma once

#include "protocols/round_protocol.hpp"

namespace rlslb::protocols {

class EdmGlobalRerouting final : public RoundProtocol {
 public:
  using RoundProtocol::RoundProtocol;
  void round() override;
};

}  // namespace rlslb::protocols
