// "Perfectly Balanced Allocation", Czumaj-Riley-Scheideler (RANDOM 2003) --
// reference [9] of the paper, the other *local search* baseline.
//
// Setup: each ball independently picks two distinct candidate bins and is
// initially placed in one of them (here: the lesser loaded at insertion
// time, i.e. a Greedy[2] prefix, the setting for [9]'s headline result).
// One protocol step draws an ordered bin pair (b1, b2) uniformly at random;
// if some ball currently in b1 has b2 as its other candidate, one such ball
// is placed into the lesser loaded of {b1, b2} (ties keep it in b1).
//
// [9] prove an n^O(1) bound on the number of steps to perfect balance (the
// hidden exponent >= 4); the paper's Section 2 contrasts this with RLS's
// O(n^2) activations from the same start, and notes RLS needs no candidate
// restriction. Bench E10 measures both. Balls must be tracked individually
// here (candidates are per-ball state), so memory is O(m + n).
#pragma once

#include <cstdint>
#include <vector>

#include "config/metrics.hpp"
#include "rng/xoshiro256pp.hpp"
#include "sim/balance_tracker.hpp"

namespace rlslb::protocols {

class CrsProtocol {
 public:
  /// Creates n bins and m balls with random distinct candidate pairs,
  /// Greedy[2]-placed in candidate order.
  CrsProtocol(std::int64_t n, std::int64_t m, std::uint64_t seed);

  /// One pair-draw step. Returns true if a ball was (re)placed -- note a
  /// "placement" into the bin it already occupies counts as no move.
  bool step();

  [[nodiscard]] std::int64_t numBins() const { return n_; }
  [[nodiscard]] std::int64_t numBalls() const { return m_; }
  [[nodiscard]] std::int64_t steps() const { return steps_; }
  [[nodiscard]] std::int64_t moves() const { return moves_; }
  [[nodiscard]] const std::vector<std::int64_t>& loads() const { return loads_; }

  [[nodiscard]] config::Metrics metrics() const;

  /// O(1) balance view, maintained incrementally by place()/remove().
  [[nodiscard]] const sim::BalanceState& state() const { return tracker_.state(); }

  /// Run until perfectly balanced or the step budget is exhausted; returns
  /// steps taken, or -1 if the budget ran out first.
  ///
  /// Caveat (also measured by bench_baselines): each ball is confined to its
  /// two candidate bins, so perfect balance requires an orientation of the
  /// random two-choice multigraph with every bin at exactly ceil/floor(m/n)
  /// -- which does not always exist. Use runUntilBalanced(x, ...) with
  /// x >= 1 when feasibility is not guaranteed.
  std::int64_t runUntilPerfect(std::int64_t maxSteps);

  /// Run until disc <= x (integer x >= 1) or the budget is exhausted;
  /// returns steps taken, or -1.
  std::int64_t runUntilBalanced(std::int64_t x, std::int64_t maxSteps);

  /// Locally stable: no ball has a *strictly improving* switch, i.e. every
  /// ball's other candidate carries load >= load(current) - 1. (Moves into
  /// a bin exactly one lighter are neutral -- they swap loads and can
  /// ping-pong forever, mirroring RLS's neutral moves -- so stability is
  /// defined up to them.) This is CRS's analogue of perfect balance and is
  /// always reachable, unlike disc < 1, because balls are confined to their
  /// candidate pairs.
  [[nodiscard]] bool isLocallyStable() const;

  /// Run until locally stable (checked every ~n/8 steps); returns steps
  /// taken, or -1 if the budget ran out.
  std::int64_t runUntilStable(std::int64_t maxSteps);

 private:
  struct Ball {
    std::uint32_t candidate[2];
    std::uint32_t at;  // index into candidate[]: which of the two it occupies
  };

  std::int64_t n_;
  std::int64_t m_;
  rng::Xoshiro256pp eng_;
  std::vector<Ball> balls_;
  std::vector<std::vector<std::uint32_t>> binBalls_;  // ball ids per bin
  std::vector<std::int64_t> loads_;
  sim::BalanceTracker tracker_;
  std::int64_t steps_ = 0;
  std::int64_t moves_ = 0;

  void place(std::uint32_t ballId, std::uint32_t whichCandidate);
  void remove(std::uint32_t ballId);
};

}  // namespace rlslb::protocols
