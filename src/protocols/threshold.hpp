// Threshold load balancing in the style of Ackermann-Fischer-Hoefer-
// Schoengens (Distributed Computing 2011) -- reference [1] of the paper.
//
// Each ball carries a threshold T; in each synchronous round every ball
// whose experienced load exceeds T migrates with probability p to a
// uniformly random bin. The paper's Section 2 observes that RLS is exactly
// a *sequential* threshold protocol with an adaptive local threshold (the
// sampled bin's load); this class provides the fixed-threshold synchronous
// counterpart for comparison (E10). With T = ceil(m/n) and p = 1/2 the
// protocol balances to an additive constant; the bench sweeps both knobs.
#pragma once

#include "protocols/round_protocol.hpp"

namespace rlslb::protocols {

class ThresholdProtocol final : public RoundProtocol {
 public:
  ThresholdProtocol(const config::Configuration& initial, std::uint64_t seed,
                    std::int64_t threshold, double moveProbability);
  void round() override;

  [[nodiscard]] std::int64_t threshold() const { return threshold_; }

 private:
  std::int64_t threshold_;
  double moveProbability_;
};

}  // namespace rlslb::protocols
