#include "protocols/edm.hpp"

#include "rng/distributions.hpp"

namespace rlslb::protocols {

void EdmGlobalRerouting::round() {
  const std::int64_t n = numBins();
  const double avg = static_cast<double>(numBalls()) / static_cast<double>(n);
  const std::vector<std::int64_t> before = loads();

  std::vector<std::size_t> underloaded;
  for (std::size_t j = 0; j < before.size(); ++j) {
    if (static_cast<double>(before[j]) < avg) underloaded.push_back(j);
  }
  if (underloaded.empty()) return;

  for (std::size_t i = 0; i < before.size(); ++i) {
    const std::int64_t li = before[i];
    if (static_cast<double>(li) <= avg) continue;
    const double pMove = (static_cast<double>(li) - avg) / static_cast<double>(li);
    // Binomial number of migrants from bin i (balls are identical).
    const std::int64_t migrants = rng::binomial(eng_, li, pMove);
    for (std::int64_t k = 0; k < migrants; ++k) {
      const std::size_t j =
          underloaded[static_cast<std::size_t>(rng::uniformIndex(eng_, underloaded.size()))];
      transferBall(i, j);
    }
  }
}

}  // namespace rlslb::protocols
