// Distribution samplers over any 64-bit engine (concept Uint64Engine).
// Everything here is an *exact* sampler (up to floating-point rounding):
// the simulators' correctness arguments rely on the activation process being
// exactly Poisson and destination choices exactly uniform.
#pragma once

#include <cmath>
#include <concepts>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace rlslb::rng {

template <typename E>
concept Uint64Engine = requires(E e) {
  { e.next() } -> std::convertible_to<std::uint64_t>;
};

/// Uniform double in [0, 1) with 53 random bits.
template <Uint64Engine E>
double uniformDouble(E& eng) {
  return static_cast<double>(eng.next() >> 11) * 0x1.0p-53;
}

/// Uniform double in (0, 1]; safe as an argument to log().
template <Uint64Engine E>
double uniformDoublePositive(E& eng) {
  return static_cast<double>((eng.next() >> 11) + 1) * 0x1.0p-53;
}

/// Uniform integer in [0, bound) by Lemire's multiply-shift with rejection.
/// Exactly uniform for any bound >= 1.
template <Uint64Engine E>
std::uint64_t uniformIndex(E& eng, std::uint64_t bound) {
  RLSLB_ASSERT(bound >= 1);
  __extension__ typedef unsigned __int128 u128;
  u128 m = static_cast<u128>(eng.next()) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0ULL - bound) % bound;
    while (lo < threshold) {
      m = static_cast<u128>(eng.next()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

/// Uniform integer in [lo, hi] inclusive.
template <Uint64Engine E>
std::int64_t uniformInt(E& eng, std::int64_t lo, std::int64_t hi) {
  RLSLB_ASSERT(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniformIndex(eng, span));
}

/// Exponential with rate `lambda` (mean 1/lambda).
template <Uint64Engine E>
double exponential(E& eng, double lambda) {
  RLSLB_ASSERT(lambda > 0);
  return -std::log(uniformDoublePositive(eng)) / lambda;
}

/// Bernoulli(p).
template <Uint64Engine E>
bool bernoulli(E& eng, double p) {
  return uniformDouble(eng) < p;
}

/// Geometric number of trials until first success, support {1, 2, ...},
/// mean 1/p. Matches the convention of Lemmas 7/13 in the paper.
template <Uint64Engine E>
std::int64_t geometricTrials(E& eng, double p) {
  RLSLB_ASSERT(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 1;
  const double u = uniformDoublePositive(eng);
  const double v = std::ceil(std::log(u) / std::log1p(-p));
  return v < 1.0 ? 1 : static_cast<std::int64_t>(v);
}

/// Standard normal via Marsaglia's polar method (no cached spare: keeps the
/// sampler stateless so replications stay reproducible under refactoring).
template <Uint64Engine E>
double standardNormal(E& eng) {
  for (;;) {
    const double x = 2.0 * uniformDouble(eng) - 1.0;
    const double y = 2.0 * uniformDouble(eng) - 1.0;
    const double s = x * x + y * y;
    if (s > 0.0 && s < 1.0) return x * std::sqrt(-2.0 * std::log(s) / s);
  }
}

namespace detail {
/// Binomial by inversion (BINV); efficient for n*min(p,1-p) <~ 10.
template <Uint64Engine E>
std::int64_t binomialInversion(E& eng, std::int64_t n, double p) {
  const double q = 1.0 - p;
  const double s = p / q;
  const double a = static_cast<double>(n + 1) * s;
  double r = std::pow(q, static_cast<double>(n));
  double u = uniformDouble(eng);
  std::int64_t x = 0;
  // The loop terminates with probability 1; the x > n guard handles the
  // vanishing-probability tail where floating-point r underflows.
  while (u > r) {
    u -= r;
    ++x;
    if (x > n) return n;
    r *= (a / static_cast<double>(x)) - s;
  }
  return x;
}

/// Binomial via the BTRS transformed-rejection sampler (Hoermann 1993);
/// requires n*p >= 10 and p <= 0.5.
template <Uint64Engine E>
std::int64_t binomialBtrs(E& eng, std::int64_t n, double p) {
  const double nd = static_cast<double>(n);
  const double spq = std::sqrt(nd * p * (1.0 - p));
  const double b = 1.15 + 2.53 * spq;
  const double a = -0.0873 + 0.0248 * b + 0.01 * p;
  const double c = nd * p + 0.5;
  const double vr = 0.92 - 4.2 / b;
  const double r = p / (1.0 - p);
  const double alpha = (2.83 + 5.1 / b) * spq;
  const double lpq = std::log(r);
  const auto mode = static_cast<std::int64_t>(std::floor((nd + 1.0) * p));
  const double h = std::lgamma(static_cast<double>(mode) + 1.0) +
                   std::lgamma(static_cast<double>(n - mode) + 1.0);
  for (;;) {
    const double u = uniformDouble(eng) - 0.5;
    double v = uniformDouble(eng);
    const double us = 0.5 - std::fabs(u);
    const auto k = static_cast<std::int64_t>(std::floor((2.0 * a / us + b) * u + c));
    if (k < 0 || k > n) continue;
    // Squeeze: the box region where acceptance is certain.
    if (us >= 0.07 && v <= vr) return k;
    v = v * alpha / (a / (us * us) + b);
    const double kd = static_cast<double>(k);
    if (std::log(v) <= h - std::lgamma(kd + 1.0) - std::lgamma(static_cast<double>(n - k) + 1.0) +
                           (kd - static_cast<double>(mode)) * lpq) {
      return k;
    }
  }
}
}  // namespace detail

/// Exact Binomial(n, p) sample. Handles the full parameter range; O(1)
/// expected time for large n*p via BTRS, inversion otherwise.
template <Uint64Engine E>
std::int64_t binomial(E& eng, std::int64_t n, double p) {
  RLSLB_ASSERT(n >= 0 && p >= 0.0 && p <= 1.0);
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  const bool flipped = p > 0.5;
  const double q = flipped ? 1.0 - p : p;
  const double nq = static_cast<double>(n) * q;
  std::int64_t x;
  if (nq < 10.0) {
    x = detail::binomialInversion(eng, n, q);
  } else {
    x = detail::binomialBtrs(eng, n, q);
  }
  return flipped ? n - x : x;
}

/// Exact Poisson(mu) via Knuth product (mu < 10) or Hoermann's PTRS
/// transformed rejection.
template <Uint64Engine E>
std::int64_t poisson(E& eng, double mu) {
  RLSLB_ASSERT(mu >= 0.0);
  if (mu == 0.0) return 0;
  if (mu < 10.0) {
    const double limit = std::exp(-mu);
    double prod = uniformDouble(eng);
    std::int64_t k = 0;
    while (prod > limit) {
      prod *= uniformDouble(eng);
      ++k;
    }
    return k;
  }
  const double b = 0.931 + 2.53 * std::sqrt(mu);
  const double a = -0.059 + 0.02483 * b;
  const double invAlpha = 1.1239 + 1.1328 / (b - 3.4);
  const double vr = 0.9277 - 3.6224 / (b - 2.0);
  const double logMu = std::log(mu);
  for (;;) {
    const double u = uniformDouble(eng) - 0.5;
    double v = uniformDouble(eng);
    const double us = 0.5 - std::fabs(u);
    const auto k = static_cast<std::int64_t>(std::floor((2.0 * a / us + b) * u + mu + 0.43));
    if (us >= 0.07 && v <= vr) return k;
    if (k < 0 || (us < 0.013 && v > us)) continue;
    const double kd = static_cast<double>(k);
    if (std::log(v * invAlpha / (a / (us * us) + b)) <= kd * logMu - mu - std::lgamma(kd + 1.0)) {
      return k;
    }
  }
}

/// Throw `balls` balls into `bins` bins independently and uniformly: an exact
/// multinomial sample by recursive binomial splitting, O(bins) time
/// independent of `balls`.
template <Uint64Engine E>
void multinomialUniform(E& eng, std::int64_t balls, std::vector<std::int64_t>& countsOut) {
  const std::size_t bins = countsOut.size();
  RLSLB_ASSERT(bins >= 1);
  std::int64_t remaining = balls;
  for (std::size_t i = 0; i + 1 < bins; ++i) {
    const double p = 1.0 / static_cast<double>(bins - i);
    const std::int64_t c = binomial(eng, remaining, p);
    countsOut[i] = c;
    remaining -= c;
  }
  countsOut[bins - 1] = remaining;
}

/// In-place Fisher-Yates shuffle.
template <Uint64Engine E, typename T>
void shuffle(E& eng, std::vector<T>& v) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(uniformIndex(eng, i));
    std::swap(v[i - 1], v[j]);
  }
}

}  // namespace rlslb::rng
