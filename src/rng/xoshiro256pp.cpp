#include "rng/xoshiro256pp.hpp"

namespace rlslb::rng {

void Xoshiro256pp::jump() {
  static constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                            0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      next();
    }
  }
  s_ = {s0, s1, s2, s3};
}

}  // namespace rlslb::rng
