// SplitMix64 (Steele, Lea, Flood 2014): the canonical 64-bit mixer. We use it
// (a) to expand a single user seed into full generator state and (b) to derive
// statistically independent per-replication seeds so experiment results are
// deterministic for a given base seed regardless of scheduling.
#pragma once

#include <cstdint>

namespace rlslb::rng {

class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless avalanche mix of a single value (same finalizer as SplitMix64).
constexpr std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic seed for replication `rep` of an experiment seeded with
/// `base`. Replications are independent streams; collisions across (base,rep)
/// pairs are as unlikely as 64-bit hash collisions.
constexpr std::uint64_t streamSeed(std::uint64_t base, std::uint64_t rep) {
  return mix64(base ^ mix64(rep + 0x51ed2701a33cf9a1ULL));
}

}  // namespace rlslb::rng
