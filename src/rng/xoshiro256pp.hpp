// xoshiro256++ 1.0 (Blackman & Vigna 2019): the library's default engine.
// 256-bit state, ~0.8 ns/word, passes BigCrush; jump() provides 2^128-spaced
// subsequences for long parallel runs.
#pragma once

#include <array>
#include <cstdint>

#include "rng/splitmix64.hpp"

namespace rlslb::rng {

class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256pp(std::uint64_t seed = 0x6a09e667f3bcc908ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
    // All-zero state is a fixed point; SplitMix64 cannot produce four zero
    // words from any seed, but keep the guard for explicit state setters.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Advance 2^128 steps: partitions the period into non-overlapping streams.
  void jump();

  [[nodiscard]] std::array<std::uint64_t, 4> state() const { return s_; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace rlslb::rng
