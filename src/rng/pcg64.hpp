// PCG-XSL-RR 128/64 (O'Neill 2014). Second engine for cross-checking that no
// statistical artifact in an experiment is generator-specific; also the engine
// of choice when reproducibility across compilers matters (no UB, pure
// integer arithmetic on unsigned 128-bit).
#pragma once

#include <cstdint>

namespace rlslb::rng {

class Pcg64 {
 public:
  using result_type = std::uint64_t;

  explicit Pcg64(std::uint64_t seed = 0x853c49e6748fea9bULL, std::uint64_t streamId = 0x2b47) {
    state_ = 0;
    inc_ = (static_cast<u128>(streamId) << 1u) | 1u;
    next();
    state_ += (static_cast<u128>(seed) << 64) | (seed * 0x9e3779b97f4a7c15ULL);
    next();
  }

  std::uint64_t next() {
    const u128 old = state_;
    state_ = old * kMultiplier + inc_;
    const auto xored = static_cast<std::uint64_t>(old >> 64) ^ static_cast<std::uint64_t>(old);
    const auto rot = static_cast<int>(old >> 122);
    return (xored >> rot) | (xored << ((-rot) & 63));
  }

  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

 private:
  __extension__ typedef unsigned __int128 u128;
  static constexpr u128 kMultiplier =
      (static_cast<u128>(2549297995355413924ULL) << 64) | 4865540595714422341ULL;
  u128 state_{};
  u128 inc_{};
};

}  // namespace rlslb::rng
