// Open-system RLS: the companion setting of Ganesh-Lilienthal-Manjunath-
// Proutiere-Simatos [11], the work whose closed-system bound the paper
// tightens.
//
// In the open system, balls are not permanent: new balls arrive as a
// Poisson process of rate lambda * n (each arrival lands in a uniformly
// random bin, or the lesser of d sampled bins), every ball departs at rate
// mu (service), and while resident each ball carries the usual rate-1 RLS
// migration clock. The offered load is rho = lambda / mu; for rho < 1 the
// total ball count is an M/M/inf-style birth-death process with mean
// rho * n / ... (mean lambda*n/mu), and the interesting question -- studied
// by [11] -- is how far RLS keeps the *spread* below what arrivals alone
// would cause.
//
// The implementation is an exact event-driven simulation of the combined
// CTMC: the three event classes (arrival, departure, migration clock) are
// superposed; total rate lambda*n + (mu+1)*B with B = current ball count,
// and the event class is chosen proportionally. Departures and migrations
// pick a uniformly random *ball* (a load-weighted bin via Fenwick).
#pragma once

#include <cstdint>
#include <vector>

#include "config/configuration.hpp"
#include "ds/fenwick.hpp"
#include "rng/xoshiro256pp.hpp"
#include "sim/balance_tracker.hpp"
#include "sim/engine.hpp"

namespace rlslb::dynamic {

struct OpenSystemOptions {
  double arrivalRatePerBin = 0.5;  // lambda: arrivals per bin per time unit
  double departureRate = 1.0;      // mu: per-ball service rate
  int arrivalChoices = 1;          // d: arrival samples d bins, joins least loaded
  int gap = 1;                     // RLS acceptance gap (1 = paper's protocol)
};

class OpenSystem {
 public:
  OpenSystem(std::int64_t numBins, const OpenSystemOptions& options, std::uint64_t seed,
             const config::Configuration* initial = nullptr);

  /// Advance one event (arrival, departure, or migration attempt).
  /// Returns false only if the system is empty AND arrivals are disabled.
  bool step();

  /// Run until `time`; returns the number of events processed. Thin
  /// wrapper over process::run via process::OpenProcess.
  std::int64_t runUntilTime(double time);

  [[nodiscard]] double time() const { return time_; }
  [[nodiscard]] std::int64_t numBins() const { return static_cast<std::int64_t>(loads_.size()); }
  [[nodiscard]] std::int64_t numBalls() const { return balls_; }
  [[nodiscard]] const std::vector<std::int64_t>& loads() const { return loads_; }

  /// O(1) balance view; numBalls tracks the live population.
  [[nodiscard]] const sim::BalanceState& state() const { return tracker_.state(); }

  [[nodiscard]] std::int64_t maxLoad() const { return tracker_.state().maxLoad; }
  [[nodiscard]] std::int64_t minLoad() const { return tracker_.state().minLoad; }
  /// max - min; the open-system analogue of the discrepancy (the average
  /// itself fluctuates with the ball count). O(1) via the tracker (it used
  /// to be two O(n) scans, which dominated spread-sampling loops).
  [[nodiscard]] std::int64_t spread() const { return maxLoad() - minLoad(); }

  struct Counters {
    std::int64_t arrivals = 0;
    std::int64_t departures = 0;
    std::int64_t migrationAttempts = 0;
    std::int64_t migrations = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  std::vector<std::int64_t> loads_;
  sim::BalanceTracker tracker_;
  ds::Fenwick<std::int64_t> ballMass_;
  OpenSystemOptions options_;
  rng::Xoshiro256pp eng_;
  std::int64_t balls_ = 0;
  double time_ = 0.0;
  Counters counters_;

  void addBall(std::size_t bin);
  void removeBall(std::size_t bin);
};

}  // namespace rlslb::dynamic
