#include "dynamic/open_system.hpp"

#include "process/adapters.hpp"
#include "process/process.hpp"
#include "rng/distributions.hpp"
#include "util/assert.hpp"

namespace rlslb::dynamic {

OpenSystem::OpenSystem(std::int64_t numBins, const OpenSystemOptions& options, std::uint64_t seed,
                       const config::Configuration* initial)
    : loads_(initial != nullptr ? initial->loads()
                                : std::vector<std::int64_t>(static_cast<std::size_t>(numBins), 0)),
      tracker_(loads_),
      ballMass_(loads_),
      options_(options),
      eng_(seed) {
  RLSLB_ASSERT(numBins >= 1);
  RLSLB_ASSERT(initial == nullptr || initial->numBins() == numBins);
  RLSLB_ASSERT(options_.arrivalRatePerBin >= 0.0);
  RLSLB_ASSERT(options_.departureRate >= 0.0);
  RLSLB_ASSERT(options_.arrivalChoices >= 1);
  RLSLB_ASSERT(options_.gap >= 1);
  for (std::int64_t v : loads_) balls_ += v;
}

void OpenSystem::addBall(std::size_t bin) {
  tracker_.onLoadChange(loads_[bin], loads_[bin] + 1);
  ++loads_[bin];
  ballMass_.add(bin, +1);
  ++balls_;
}

void OpenSystem::removeBall(std::size_t bin) {
  RLSLB_ASSERT(loads_[bin] >= 1);
  tracker_.onLoadChange(loads_[bin], loads_[bin] - 1);
  --loads_[bin];
  ballMass_.add(bin, -1);
  --balls_;
}

bool OpenSystem::step() {
  const auto n = static_cast<std::uint64_t>(loads_.size());
  const double arrivalRate = options_.arrivalRatePerBin * static_cast<double>(n);
  const double perBallRate = options_.departureRate + 1.0;  // service + RLS clock
  const double totalRate = arrivalRate + perBallRate * static_cast<double>(balls_);
  if (totalRate <= 0.0) return false;

  time_ += rng::exponential(eng_, totalRate);
  const double which = rng::uniformDouble(eng_) * totalRate;

  if (which < arrivalRate) {
    // Arrival: least loaded of d uniform samples (d = 1 is uniform).
    std::size_t best = static_cast<std::size_t>(rng::uniformIndex(eng_, n));
    for (int k = 1; k < options_.arrivalChoices; ++k) {
      const auto cand = static_cast<std::size_t>(rng::uniformIndex(eng_, n));
      if (loads_[cand] < loads_[best]) best = cand;
    }
    addBall(best);
    ++counters_.arrivals;
    return true;
  }

  // Pick a uniform resident ball (load-weighted bin).
  const auto ticket =
      static_cast<std::int64_t>(rng::uniformIndex(eng_, static_cast<std::uint64_t>(balls_)));
  const std::size_t bin = ballMass_.upperBound(ticket);

  const double departShare = options_.departureRate / perBallRate;
  if (rng::uniformDouble(eng_) < departShare) {
    removeBall(bin);
    ++counters_.departures;
    return true;
  }

  // RLS migration attempt.
  ++counters_.migrationAttempts;
  const auto dst = static_cast<std::size_t>(rng::uniformIndex(eng_, n));
  if (dst != bin && loads_[bin] >= loads_[dst] + options_.gap) {
    removeBall(bin);
    addBall(dst);
    ++counters_.migrations;
  }
  return true;
}

std::int64_t OpenSystem::runUntilTime(double time) {
  process::OpenProcess self(*this);
  process::RunLimits limits;
  limits.maxTime = time;
  return process::run(self, process::Target::none(), limits).events;
}

}  // namespace rlslb::dynamic
