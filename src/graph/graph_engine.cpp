#include "graph/graph_engine.hpp"

#include <algorithm>

#include "rng/distributions.hpp"
#include "util/assert.hpp"

namespace rlslb::graph {

GraphRlsEngine::GraphRlsEngine(const config::Configuration& initial, const Topology& topology,
                               std::uint64_t seed, int gap)
    : topology_(topology), loads_(initial.loads()), ballMass_(initial.loads()), eng_(seed),
      gap_(gap) {
  RLSLB_ASSERT(gap_ >= 1);
  RLSLB_ASSERT(initial.numBins() == topology.numVertices());
  state_.numBins = initial.numBins();
  state_.numBalls = initial.numBalls();
  const std::int64_t ceilAvg = initial.ceilAverage();
  state_.minLoad = loads_.empty() ? 0 : loads_[0];
  state_.maxLoad = state_.minLoad;
  for (std::int64_t v : loads_) {
    ++histogram_[v];
    state_.minLoad = std::min(state_.minLoad, v);
    state_.maxLoad = std::max(state_.maxLoad, v);
    if (v > ceilAvg) state_.overloadedBalls += v - ceilAvg;
  }
}

bool GraphRlsEngine::step() {
  if (state_.numBalls == 0) return false;
  time_ += rng::exponential(eng_, static_cast<double>(state_.numBalls));
  ++activations_;

  const auto ticket = static_cast<std::int64_t>(
      rng::uniformIndex(eng_, static_cast<std::uint64_t>(state_.numBalls)));
  const std::size_t src = ballMass_.upperBound(ticket);
  if (topology_.degree(static_cast<std::int64_t>(src)) == 0) return true;  // isolated bin
  const auto dst = static_cast<std::size_t>(
      topology_.sampleNeighbor(static_cast<std::int64_t>(src), eng_));

  if (loads_[src] < loads_[dst] + gap_) return true;  // move rejected

  const std::int64_t v = loads_[src];
  const std::int64_t u = loads_[dst];
  loads_[src] = v - 1;
  loads_[dst] = u + 1;
  ballMass_.add(src, -1);
  ballMass_.add(dst, +1);

  auto dropLevel = [&](std::int64_t level) {
    auto it = histogram_.find(level);
    RLSLB_ASSERT(it != histogram_.end() && it->second >= 1);
    if (--it->second == 0) histogram_.erase(it);
  };
  dropLevel(v);
  ++histogram_[v - 1];
  dropLevel(u);
  ++histogram_[u + 1];
  while (histogram_.find(state_.minLoad) == histogram_.end()) ++state_.minLoad;
  while (histogram_.find(state_.maxLoad) == histogram_.end()) --state_.maxLoad;

  const std::int64_t ceilAvg = (state_.numBalls + state_.numBins - 1) / state_.numBins;
  if (v > ceilAvg) --state_.overloadedBalls;
  if (u + 1 > ceilAvg) ++state_.overloadedBalls;

  ++moves_;
  return true;
}

}  // namespace rlslb::graph
