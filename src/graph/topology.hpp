// Network topologies for the Section-7 extension "analyze the protocol in
// network topologies other than the complete graph": a ball activated on
// bin i samples a uniform *neighbor* of i instead of a uniform bin.
//
// The complete graph is special-cased without materializing O(n^2) edges;
// all other topologies are CSR adjacency lists. Random regular graphs use
// the configuration model with resampling until simple; spectral gap (for
// regular graphs) comes from power iteration with deflation, so the graph
// bench (E12) can correlate balancing time with mixing properties, echoing
// the tau_mix * ln m bound of [6] cited in Section 2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rng/xoshiro256pp.hpp"

namespace rlslb::graph {

class Topology {
 public:
  /// Complete graph K_n (implicit edges).
  static Topology complete(std::int64_t n);
  /// Cycle C_n (n >= 3).
  static Topology cycle(std::int64_t n);
  /// Path P_n.
  static Topology path(std::int64_t n);
  /// rows x cols torus (wrap-around grid); 4-regular for rows, cols >= 3.
  static Topology torus(std::int64_t rows, std::int64_t cols);
  /// Hypercube Q_d with 2^d vertices.
  static Topology hypercube(int dim);
  /// Star K_{1,n-1} (vertex 0 is the hub).
  static Topology star(std::int64_t n);
  /// Complete bipartite K_{a,b}.
  static Topology completeBipartite(std::int64_t a, std::int64_t b);
  /// Random d-regular simple graph via the configuration model (resampled
  /// until simple; requires n*d even, d < n).
  static Topology randomRegular(std::int64_t n, int d, rng::Xoshiro256pp& eng);
  /// Erdos-Renyi G(n, p). Not necessarily connected; see isConnected().
  static Topology erdosRenyi(std::int64_t n, double p, rng::Xoshiro256pp& eng);
  /// Build from explicit undirected edge list (deduplicated; no self-loops).
  static Topology fromEdges(std::int64_t n, const std::vector<std::pair<std::int64_t, std::int64_t>>& edges);

  [[nodiscard]] std::int64_t numVertices() const { return n_; }
  [[nodiscard]] std::int64_t numEdges() const;
  [[nodiscard]] std::int64_t degree(std::int64_t v) const;
  [[nodiscard]] std::int64_t neighbor(std::int64_t v, std::int64_t k) const;
  [[nodiscard]] bool isComplete() const { return complete_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Uniform random neighbor of v (v must have degree >= 1).
  [[nodiscard]] std::int64_t sampleNeighbor(std::int64_t v, rng::Xoshiro256pp& eng) const;

  [[nodiscard]] bool isConnected() const;
  [[nodiscard]] bool isRegular() const;

  /// Graph diameter by BFS from every vertex (O(n * (n + e)); intended for
  /// experiment-scale graphs). Returns -1 for disconnected graphs.
  [[nodiscard]] std::int64_t diameter() const;

  /// 1 - |lambda_2| of the lazy random-walk matrix (I + A/d)/2 for regular
  /// graphs, by power iteration with deflation of the uniform vector.
  /// The laziness makes the spectrum non-negative so |lambda_2| is the
  /// second-largest eigenvalue.
  [[nodiscard]] double spectralGapRegular(int iterations, rng::Xoshiro256pp& eng) const;

 private:
  Topology() = default;
  std::int64_t n_ = 0;
  bool complete_ = false;
  std::string name_;
  std::vector<std::int64_t> offsets_;    // CSR, size n+1 (empty when complete_)
  std::vector<std::int64_t> neighbors_;  // CSR payload
};

}  // namespace rlslb::graph
