// RLS on an arbitrary topology (Section 7, third future direction).
//
// Identical to NaiveEngine except the destination is a uniform random
// *neighbor* of the ball's current bin. Note the lumped-multiset reduction
// of JumpEngine does not apply here: transition rates depend on which bins
// are adjacent, so bin identities matter and neutral moves genuinely change
// the state. The engine therefore simulates every activation.
//
// On a connected graph the discrepancy is still non-increasing, the minimum
// load non-decreasing, and the maximum non-increasing (the protocol's local
// test is unchanged); perfect balance remains reachable, just slower on
// poorly-mixing topologies -- exactly what experiment E12 measures.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "config/configuration.hpp"
#include "ds/fenwick.hpp"
#include "graph/topology.hpp"
#include "rng/xoshiro256pp.hpp"
#include "sim/engine.hpp"

namespace rlslb::graph {

class GraphRlsEngine final : public sim::Engine {
 public:
  /// `topology` must outlive the engine; bins are its vertices.
  GraphRlsEngine(const config::Configuration& initial, const Topology& topology,
                 std::uint64_t seed, int gap = 1);

  bool step() override;
  [[nodiscard]] double time() const override { return time_; }
  [[nodiscard]] std::int64_t moves() const override { return moves_; }
  [[nodiscard]] std::int64_t activations() const override { return activations_; }
  [[nodiscard]] const sim::BalanceState& state() const override { return state_; }

  [[nodiscard]] const std::vector<std::int64_t>& loads() const { return loads_; }

 private:
  const Topology& topology_;
  std::vector<std::int64_t> loads_;
  ds::Fenwick<std::int64_t> ballMass_;
  std::unordered_map<std::int64_t, std::int64_t> histogram_;
  rng::Xoshiro256pp eng_;
  sim::BalanceState state_;
  double time_ = 0.0;
  std::int64_t moves_ = 0;
  std::int64_t activations_ = 0;
  int gap_;
};

}  // namespace rlslb::graph
