#include "graph/topology.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "rng/distributions.hpp"
#include "util/assert.hpp"

namespace rlslb::graph {

Topology Topology::fromEdges(std::int64_t n,
                             const std::vector<std::pair<std::int64_t, std::int64_t>>& edges) {
  RLSLB_ASSERT(n >= 1);
  std::set<std::pair<std::int64_t, std::int64_t>> unique;
  for (auto [a, b] : edges) {
    RLSLB_ASSERT(a >= 0 && a < n && b >= 0 && b < n);
    if (a == b) continue;
    unique.emplace(std::min(a, b), std::max(a, b));
  }
  Topology t;
  t.n_ = n;
  t.name_ = "explicit";
  std::vector<std::int64_t> deg(static_cast<std::size_t>(n), 0);
  for (auto [a, b] : unique) {
    ++deg[static_cast<std::size_t>(a)];
    ++deg[static_cast<std::size_t>(b)];
  }
  t.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (std::int64_t v = 0; v < n; ++v) {
    t.offsets_[static_cast<std::size_t>(v) + 1] =
        t.offsets_[static_cast<std::size_t>(v)] + deg[static_cast<std::size_t>(v)];
  }
  t.neighbors_.resize(static_cast<std::size_t>(t.offsets_.back()));
  std::vector<std::int64_t> fill = t.offsets_;
  for (auto [a, b] : unique) {
    t.neighbors_[static_cast<std::size_t>(fill[static_cast<std::size_t>(a)]++)] = b;
    t.neighbors_[static_cast<std::size_t>(fill[static_cast<std::size_t>(b)]++)] = a;
  }
  return t;
}

Topology Topology::complete(std::int64_t n) {
  RLSLB_ASSERT(n >= 2);
  Topology t;
  t.n_ = n;
  t.complete_ = true;
  t.name_ = "complete";
  return t;
}

Topology Topology::cycle(std::int64_t n) {
  RLSLB_ASSERT(n >= 3);
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  edges.reserve(static_cast<std::size_t>(n));
  for (std::int64_t v = 0; v < n; ++v) edges.emplace_back(v, (v + 1) % n);
  Topology t = fromEdges(n, edges);
  t.name_ = "cycle";
  return t;
}

Topology Topology::path(std::int64_t n) {
  RLSLB_ASSERT(n >= 2);
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  for (std::int64_t v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  Topology t = fromEdges(n, edges);
  t.name_ = "path";
  return t;
}

Topology Topology::torus(std::int64_t rows, std::int64_t cols) {
  RLSLB_ASSERT(rows >= 3 && cols >= 3);
  const std::int64_t n = rows * cols;
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  edges.reserve(static_cast<std::size_t>(2 * n));
  const auto id = [cols](std::int64_t r, std::int64_t c) { return r * cols + c; };
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      edges.emplace_back(id(r, c), id(r, (c + 1) % cols));
      edges.emplace_back(id(r, c), id((r + 1) % rows, c));
    }
  }
  Topology t = fromEdges(n, edges);
  t.name_ = "torus";
  return t;
}

Topology Topology::hypercube(int dim) {
  RLSLB_ASSERT(dim >= 1 && dim <= 30);
  const std::int64_t n = std::int64_t{1} << dim;
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  edges.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(dim) / 2);
  for (std::int64_t v = 0; v < n; ++v) {
    for (int b = 0; b < dim; ++b) {
      const std::int64_t u = v ^ (std::int64_t{1} << b);
      if (u > v) edges.emplace_back(v, u);
    }
  }
  Topology t = fromEdges(n, edges);
  t.name_ = "hypercube";
  return t;
}

Topology Topology::star(std::int64_t n) {
  RLSLB_ASSERT(n >= 2);
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  for (std::int64_t v = 1; v < n; ++v) edges.emplace_back(0, v);
  Topology t = fromEdges(n, edges);
  t.name_ = "star";
  return t;
}

Topology Topology::completeBipartite(std::int64_t a, std::int64_t b) {
  RLSLB_ASSERT(a >= 1 && b >= 1);
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  edges.reserve(static_cast<std::size_t>(a * b));
  for (std::int64_t u = 0; u < a; ++u) {
    for (std::int64_t v = 0; v < b; ++v) edges.emplace_back(u, a + v);
  }
  Topology t = fromEdges(a + b, edges);
  t.name_ = "complete_bipartite";
  return t;
}

Topology Topology::randomRegular(std::int64_t n, int d, rng::Xoshiro256pp& eng) {
  RLSLB_ASSERT(n >= 2 && d >= 1 && d < n);
  RLSLB_ASSERT_MSG((n * d) % 2 == 0, "n*d must be even");
  // Configuration model: pair up n*d half-edges uniformly; resample on
  // self-loops or multi-edges. Acceptance probability is bounded away from
  // zero for fixed d, so this terminates quickly in expectation.
  for (int attempt = 0; attempt < 2000; ++attempt) {
    std::vector<std::int64_t> stubs(static_cast<std::size_t>(n * d));
    for (std::int64_t i = 0; i < n * d; ++i) stubs[static_cast<std::size_t>(i)] = i / d;
    rng::shuffle(eng, stubs);
    std::set<std::pair<std::int64_t, std::int64_t>> seen;
    bool simple = true;
    std::vector<std::pair<std::int64_t, std::int64_t>> edges;
    edges.reserve(stubs.size() / 2);
    for (std::size_t i = 0; i < stubs.size(); i += 2) {
      const std::int64_t a = stubs[i];
      const std::int64_t b = stubs[i + 1];
      if (a == b || !seen.emplace(std::min(a, b), std::max(a, b)).second) {
        simple = false;
        break;
      }
      edges.emplace_back(a, b);
    }
    if (!simple) continue;
    Topology t = fromEdges(n, edges);
    t.name_ = "random_regular";
    return t;
  }
  RLSLB_ASSERT_MSG(false, "configuration model failed to produce a simple graph");
  return complete(n);
}

Topology Topology::erdosRenyi(std::int64_t n, double p, rng::Xoshiro256pp& eng) {
  RLSLB_ASSERT(n >= 2 && p >= 0.0 && p <= 1.0);
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  // Geometric edge skipping: O(#edges) expected instead of O(n^2).
  if (p > 0.0) {
    const double logq = std::log1p(-p);
    std::int64_t v = 1;
    std::int64_t w = -1;
    while (v < n) {
      const double r = rng::uniformDoublePositive(eng);
      w += 1 + (p >= 1.0 ? 0 : static_cast<std::int64_t>(std::floor(std::log(r) / logq)));
      while (w >= v && v < n) {
        w -= v;
        ++v;
      }
      if (v < n) edges.emplace_back(v, w);
    }
  }
  Topology t = fromEdges(n, edges);
  t.name_ = "erdos_renyi";
  return t;
}

std::int64_t Topology::numEdges() const {
  if (complete_) return n_ * (n_ - 1) / 2;
  return static_cast<std::int64_t>(neighbors_.size()) / 2;
}

std::int64_t Topology::degree(std::int64_t v) const {
  RLSLB_ASSERT(v >= 0 && v < n_);
  if (complete_) return n_ - 1;
  return offsets_[static_cast<std::size_t>(v) + 1] - offsets_[static_cast<std::size_t>(v)];
}

std::int64_t Topology::neighbor(std::int64_t v, std::int64_t k) const {
  RLSLB_ASSERT(v >= 0 && v < n_ && k >= 0 && k < degree(v));
  if (complete_) return k < v ? k : k + 1;
  return neighbors_[static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v)] + k)];
}

std::int64_t Topology::sampleNeighbor(std::int64_t v, rng::Xoshiro256pp& eng) const {
  const std::int64_t d = degree(v);
  RLSLB_ASSERT_MSG(d >= 1, "isolated vertex has no neighbor to sample");
  const auto k = static_cast<std::int64_t>(rng::uniformIndex(eng, static_cast<std::uint64_t>(d)));
  return neighbor(v, k);
}

bool Topology::isConnected() const {
  if (complete_) return true;
  if (n_ == 0) return true;
  std::vector<char> seen(static_cast<std::size_t>(n_), 0);
  std::vector<std::int64_t> stack = {0};
  seen[0] = 1;
  std::int64_t visited = 1;
  while (!stack.empty()) {
    const std::int64_t v = stack.back();
    stack.pop_back();
    for (std::int64_t k = 0; k < degree(v); ++k) {
      const std::int64_t u = neighbor(v, k);
      if (!seen[static_cast<std::size_t>(u)]) {
        seen[static_cast<std::size_t>(u)] = 1;
        ++visited;
        stack.push_back(u);
      }
    }
  }
  return visited == n_;
}

std::int64_t Topology::diameter() const {
  if (complete_) return n_ >= 2 ? 1 : 0;
  if (n_ == 0) return 0;
  std::int64_t best = 0;
  std::vector<std::int64_t> dist(static_cast<std::size_t>(n_));
  std::vector<std::int64_t> queue(static_cast<std::size_t>(n_));
  for (std::int64_t src = 0; src < n_; ++src) {
    std::fill(dist.begin(), dist.end(), -1);
    std::size_t head = 0;
    std::size_t tail = 0;
    dist[static_cast<std::size_t>(src)] = 0;
    queue[tail++] = src;
    while (head < tail) {
      const std::int64_t v = queue[head++];
      for (std::int64_t k = 0; k < degree(v); ++k) {
        const std::int64_t u = neighbor(v, k);
        if (dist[static_cast<std::size_t>(u)] < 0) {
          dist[static_cast<std::size_t>(u)] = dist[static_cast<std::size_t>(v)] + 1;
          queue[tail++] = u;
        }
      }
    }
    for (std::int64_t v = 0; v < n_; ++v) {
      if (dist[static_cast<std::size_t>(v)] < 0) return -1;  // disconnected
      best = std::max(best, dist[static_cast<std::size_t>(v)]);
    }
  }
  return best;
}

bool Topology::isRegular() const {
  if (complete_ || n_ == 0) return true;
  const std::int64_t d0 = degree(0);
  for (std::int64_t v = 1; v < n_; ++v) {
    if (degree(v) != d0) return false;
  }
  return true;
}

double Topology::spectralGapRegular(int iterations, rng::Xoshiro256pp& eng) const {
  RLSLB_ASSERT_MSG(isRegular(), "spectral gap helper requires a regular graph");
  RLSLB_ASSERT(n_ >= 2);
  const double d = static_cast<double>(degree(0));
  std::vector<double> v(static_cast<std::size_t>(n_));
  for (auto& x : v) x = rng::uniformDouble(eng) - 0.5;

  std::vector<double> next(static_cast<std::size_t>(n_));
  double lambda = 0.0;
  for (int it = 0; it < iterations; ++it) {
    // Deflate the top eigenvector (uniform) of the walk matrix.
    double mean = 0.0;
    for (double x : v) mean += x;
    mean /= static_cast<double>(n_);
    for (auto& x : v) x -= mean;
    // Lazy walk: next = (v + A v / d) / 2.
    for (std::int64_t i = 0; i < n_; ++i) {
      double acc = 0.0;
      for (std::int64_t k = 0; k < degree(i); ++k) {
        acc += v[static_cast<std::size_t>(neighbor(i, k))];
      }
      next[static_cast<std::size_t>(i)] = 0.5 * (v[static_cast<std::size_t>(i)] + acc / d);
    }
    double norm = 0.0;
    for (double x : next) norm += x * x;
    norm = std::sqrt(norm);
    if (norm < 1e-280) return 1.0;  // deflated to zero: gap is maximal
    lambda = norm;  // after normalization of v on the previous iteration
    for (std::size_t idx = 0; idx < next.size(); ++idx) v[idx] = next[idx] / norm;
  }
  // lambda approximates |lambda_2| of the lazy walk; gap = 1 - lambda_2.
  return 1.0 - std::min(1.0, lambda);
}

}  // namespace rlslb::graph
