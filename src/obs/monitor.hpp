// Conformance monitors: declarative invariant / bound checks evaluated
// on the live telemetry at epoch (serve) or probe-stride (process)
// boundaries.
//
// The producing layers (ShardedEventLoop, obs::ProcessProbe) fill a
// CheckSample -- a stack POD snapshot of the run's observable state --
// and hand it to a MonitorSet. The set feeds its streaming sketches,
// runs every attached ConformanceMonitor, and collects violations as
// severity-tagged Anomaly records (obs/anomaly.hpp). Everything past
// construction is allocation-free: monitors are preallocated, the
// anomaly log is capacity-bounded, and the sketches write into fixed
// slabs -- so a monitor set can ride the serve loop's steady-state
// contract (tests/test_obs.cpp).
//
// Determinism: monitors that read only simulated state (gap envelope,
// convergence, load conservation) and the gap sketch produce identical
// anomaly sequences and snapshot bytes across shard/thread configs.
// Wall-clock-fed parts (DriftMonitor, the latency sketch) are excluded
// from that contract, mirroring the metrics record's timing carve-out.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "obs/anomaly.hpp"
#include "obs/sketch.hpp"
#include "report/json.hpp"

namespace rlslb::obs {

/// Snapshot of one boundary. Producers fill what they know and leave
/// the rest at the defaults; monitors must tolerate missing fields
/// (e.g. process strides carry no queue accounting).
struct CheckSample {
  enum class Origin : std::uint8_t { kServeEpoch, kProcessStride };
  Origin origin = Origin::kServeEpoch;

  std::int64_t step = 0;      ///< epoch index / event ordinal
  double time = 0.0;          ///< simulated clock
  std::int64_t events = 0;    ///< events in this epoch (serve) or stride
  double wallSeconds = 0.0;   ///< wall time of this epoch (0 = unknown)

  // Balance state.
  std::int64_t gap = 0;
  std::int64_t liveBalls = 0;
  std::int64_t totalLoad = 0;
  std::int64_t maxWeight = 1;  ///< max item weight seen so far (>= 1)

  // Cumulative allocator counters (serve origin).
  std::int64_t arrivals = 0;
  std::int64_t departures = 0;
  std::int64_t migrations = 0;

  // Per-epoch queue accounting (serve origin, partitioned apply).
  std::int64_t queuedOps = 0;
  std::int64_t crossShardOps = 0;
  std::int64_t queuePeak = 0;
  std::int64_t drainedOps = 0;

  // Process-origin context (filled by obs::ProcessProbe).
  std::uint8_t clockKind = 0;   ///< process::Clock::Kind as an int
  bool openPopulation = false;  ///< ball population churns (open system)
};

class ConformanceMonitor {
 public:
  virtual ~ConformanceMonitor() = default;
  /// Static-storage name, used as Anomaly::monitor.
  [[nodiscard]] virtual const char* name() const = 0;
  /// Evaluate one boundary sample; must not allocate.
  virtual void check(const CheckSample& sample, AnomalyLog& log) = 0;
  /// End of run: emit summary anomalies (e.g. "never converged").
  virtual void finish(AnomalyLog& log) { (void)log; }
  /// Start of a (sub-)run: reset per-run state, keep configuration.
  virtual void onRunStart() {}
};

/// The roster a run carries: monitors + the shared sketches + the log.
/// check() is called from sequential sections only (epoch boundaries);
/// the sketches use a single shard accordingly.
class MonitorSet {
 public:
  MonitorSet() = default;

  void add(std::unique_ptr<ConformanceMonitor> monitor);
  [[nodiscard]] bool empty() const { return monitors_.empty(); }
  [[nodiscard]] std::size_t size() const { return monitors_.size(); }

  /// Reset per-run monitor state and advance the anomaly run tag.
  /// Call before each sub-run when one scenario drives several.
  void beginRun();

  /// Feed one boundary sample: sketches, then every monitor, then the
  /// observer (if any). Allocation-free.
  void check(const CheckSample& sample);
  /// Give every monitor its end-of-run hook. Idempotent per run.
  void finish();

  [[nodiscard]] const AnomalyLog& log() const { return log_; }
  [[nodiscard]] std::int64_t checks() const { return checks_; }
  /// Per-check gap distribution (simulated state: deterministic).
  [[nodiscard]] const QuantileSketch& gapSketch() const { return gapSketch_; }
  /// Per-check wall nanoseconds per event (wall clock: not deterministic).
  [[nodiscard]] const QuantileSketch& latencySketch() const { return latencySketch_; }

  /// Live observer (e.g. the `rlslb watch` renderer), called after the
  /// monitors on every check. Kept across clear().
  using Observer = std::function<void(const CheckSample&, const MonitorSet&)>;
  void setObserver(Observer observer) { observer_ = std::move(observer); }

  /// Drop monitors, log, sketch contents, and counters -- back to an
  /// empty roster (the observer survives).
  void clear();

  /// Summary for the {"type":"conformance"} record: check/anomaly counts
  /// plus both sketch snapshots. Carries wall-derived values, so it is
  /// excluded from the byte-determinism contract (gapSketch().toJson()
  /// and the anomaly list are the deterministic parts).
  [[nodiscard]] report::Json summaryJson() const;

 private:
  std::vector<std::unique_ptr<ConformanceMonitor>> monitors_;
  AnomalyLog log_;
  QuantileSketch gapSketch_{1};
  QuantileSketch latencySketch_{1};
  std::int64_t checks_ = 0;
  std::int32_t runTag_ = 0;
  bool finished_ = false;
  Observer observer_;
};

// ----------------------------------------------------------- monitors

/// Gap envelope derived from the paper's bounds: after warmup the gap
/// should stay within maxWeight * (slackAbs + ceil(logFactor * ln n)).
/// Uniform arrivals (d = 1) double the log factor -- without the
/// power-of-d-choices arrival rule the equilibrium gap envelope is the
/// single-choice one.
struct GapEnvelope {
  std::int64_t n = 256;        ///< bins
  std::int64_t expectedBalls = 0;  ///< 0 = unknown (informational)
  int d = 2;                   ///< arrival choices
  std::int64_t warmupSteps = 16;
  double logFactor = 2.0;
  std::int64_t slackAbs = 8;
  int consecutive = 3;         ///< sustained checks before reporting

  [[nodiscard]] std::int64_t bound(std::int64_t maxWeight) const;
};

class GapEnvelopeMonitor final : public ConformanceMonitor {
 public:
  explicit GapEnvelopeMonitor(GapEnvelope envelope) : envelope_(envelope) {}
  [[nodiscard]] const char* name() const override { return "gap_envelope"; }
  void check(const CheckSample& sample, AnomalyLog& log) override;
  void onRunStart() override { streak_ = 0; }

 private:
  GapEnvelope envelope_;
  std::int64_t streak_ = 0;
};

/// Process-side convergence envelope: once the simulated clock passes
/// convergeBy, the gap must be at or below gapBound; finish() escalates
/// to an error if the run ran past the deadline and never got there.
/// The deadline is in round-equivalent units (one unit ~ m expected
/// activations, the paper's convention); sequential Steps clocks are
/// rescaled by m, and open-population samples are skipped entirely (a
/// churning system holds an equilibrium, not a convergence point).
struct ConvergenceEnvelope {
  double convergeBy = 0.0;     ///< clock deadline (0 = derive from n)
  std::int64_t gapBound = 0;   ///< 0 = derive from n
  int consecutive = 3;
};

class ConvergenceMonitor final : public ConformanceMonitor {
 public:
  ConvergenceMonitor(std::int64_t n, std::int64_t m, ConvergenceEnvelope envelope);
  [[nodiscard]] const char* name() const override { return "convergence"; }
  void check(const CheckSample& sample, AnomalyLog& log) override;
  void finish(AnomalyLog& log) override;
  void onRunStart() override;

 private:
  ConvergenceEnvelope envelope_;
  std::int64_t m_ = 0;
  std::int64_t streak_ = 0;
  bool pastDeadline_ = false;
  bool converged_ = false;
  CheckSample last_{};
};

/// Structural invariants every healthy run satisfies exactly: load
/// conservation (serve: live balls == arrivals - departures), monotone
/// clock/step/counters, non-negative gap, and queue-op accounting
/// (drained == queued, cross-shard <= queued, peak <= queued). All
/// violations are errors.
class LoadConservationMonitor final : public ConformanceMonitor {
 public:
  [[nodiscard]] const char* name() const override { return "load_conservation"; }
  void check(const CheckSample& sample, AnomalyLog& log) override;
  void onRunStart() override { primed_ = false; }

 private:
  bool primed_ = false;
  CheckSample last_{};
};

/// Wall-clock drift: CUSUM on per-epoch nanoseconds per event, with an
/// EWMA for the error escalation (sustained > factorError x baseline).
/// Only upward drift (slowdowns) is reported -- a run settling faster
/// than its warmup baseline is the normal cache-warming shape, not an
/// anomaly -- and the error severity needs `errorStreak` consecutive
/// elevated checks so a single scheduler hiccup stays a warning.
struct DriftOptions {
  CusumDetector::Options cusum{};
  double ewmaAlpha = 0.2;
  double factorError = 3.0;
  int errorStreak = 3;               ///< elevated checks before kError
  std::int64_t skipChecks = 8;       ///< cold-start checks ignored entirely
  std::int64_t cooldownChecks = 64;  ///< min checks between reports
};

class DriftMonitor final : public ConformanceMonitor {
 public:
  explicit DriftMonitor(DriftOptions options = {})
      : options_(options),
        cusum_(options.cusum),
        ewma_(options.ewmaAlpha),
        sinceReport_(options.cooldownChecks) {}
  [[nodiscard]] const char* name() const override { return "latency_drift"; }
  void check(const CheckSample& sample, AnomalyLog& log) override;
  void onRunStart() override;

 private:
  DriftOptions options_;
  CusumDetector cusum_;
  Ewma ewma_;
  std::int64_t seen_ = 0;
  std::int64_t elevated_ = 0;
  std::int64_t sinceReport_ = 0;
};

// ------------------------------------------------------------ rosters

/// Parameters the default serve roster derives its bounds from.
struct ServeConformanceParams {
  std::int64_t n = 256;            ///< bins
  std::int64_t expectedBalls = 0;  ///< lambda * n / mu, 0 if unknown
  int d = 2;                       ///< arrival choices
  std::int64_t totalEpochs = 0;    ///< for warmup sizing (0 = default)
};

/// LoadConservation + GapEnvelope + Drift.
void installServeMonitors(MonitorSet& set, const ServeConformanceParams& params);

/// LoadConservation + Convergence.
void installProcessMonitors(MonitorSet& set, std::int64_t n, std::int64_t m);

}  // namespace rlslb::obs
