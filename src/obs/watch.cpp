#include "obs/watch.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace rlslb::obs {

namespace {

/// 10-level ASCII intensity ramp for the sparkline.
constexpr char kRamp[] = " .:-=+*#%@";
constexpr int kRampLevels = 9;  // index range [0, 9]

}  // namespace

WatchRenderer::WatchRenderer(std::ostream& out, Options options)
    : out_(out), options_(options), lastRender_(std::chrono::steady_clock::now()) {
  options_.sparkWidth = std::clamp(options_.sparkWidth, 8, static_cast<int>(kRing));
  line_.reserve(512);
}

void WatchRenderer::attach(MonitorSet& set) {
  set.setObserver(
      [this](const CheckSample& sample, const MonitorSet& s) { onCheck(sample, s); });
}

void WatchRenderer::onCheck(const CheckSample& sample, const MonitorSet& set) {
  ring_[ringNext_] = sample.gap;
  ringNext_ = (ringNext_ + 1) % kRing;
  if (ringSize_ < kRing) ++ringSize_;
  ++checksSeen_;
  last_ = sample;
  haveLast_ = true;

  const auto now = std::chrono::steady_clock::now();
  const double elapsed = std::chrono::duration<double>(now - lastRender_).count();
  if (rendered_ && elapsed < options_.throttleSeconds) return;
  lastRender_ = now;
  rendered_ = true;
  render(sample, set);
}

void WatchRenderer::finish(const MonitorSet& set) {
  if (haveLast_) render(last_, set);
}

void WatchRenderer::render(const CheckSample& sample, const MonitorSet& set) {
  char buf[192];
  line_.clear();

  const QuantileSketch& gaps = set.gapSketch();
  std::snprintf(buf, sizeof(buf), "[watch] chk %lld  step %lld  t=%.2f | gap %lld",
                static_cast<long long>(set.checks()),
                static_cast<long long>(sample.step), sample.time,
                static_cast<long long>(sample.gap));
  line_ += buf;
  if (options_.showBound) {
    std::snprintf(buf, sizeof(buf), " / bound %lld",
                  static_cast<long long>(options_.envelope.bound(sample.maxWeight)));
    line_ += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "  p50 %lld  p99 %lld | live %lld  load %lld | %lld warn  %lld err\n",
                static_cast<long long>(gaps.quantile(0.5)),
                static_cast<long long>(gaps.quantile(0.99)),
                static_cast<long long>(sample.liveBalls),
                static_cast<long long>(sample.totalLoad),
                static_cast<long long>(set.log().warnings()),
                static_cast<long long>(set.log().errors()));
  line_ += buf;

  // Sparkline over the newest `width` ring entries, oldest first,
  // normalized against the window maximum.
  const int width = std::min<int>(options_.sparkWidth, static_cast<int>(ringSize_));
  std::int64_t windowMax = 1;
  for (int i = 0; i < width; ++i) {
    const std::size_t idx = (ringNext_ + kRing - static_cast<std::size_t>(width - i)) % kRing;
    if (ring_[idx] > windowMax) windowMax = ring_[idx];
  }
  line_ += "        gap ";
  for (int i = 0; i < width; ++i) {
    const std::size_t idx = (ringNext_ + kRing - static_cast<std::size_t>(width - i)) % kRing;
    const std::int64_t v = std::max<std::int64_t>(0, ring_[idx]);
    line_ += kRamp[static_cast<std::size_t>((v * kRampLevels) / windowMax)];
  }
  std::snprintf(buf, sizeof(buf), "  (last %d checks, window max %lld)", width,
                static_cast<long long>(windowMax));
  line_ += buf;

  const AnomalyLog& log = set.log();
  if (log.size() > 0) {
    const Anomaly& a = log.at(log.size() - 1);
    std::snprintf(buf, sizeof(buf), "\n        last anomaly: [%s] %s/%s step %lld: ",
                  severityName(a.severity), a.monitor, a.metric,
                  static_cast<long long>(a.step));
    line_ += buf;
    line_ += a.detail;  // static storage, append without formatting
  }
  line_ += '\n';
  out_ << line_;
  out_.flush();
}

}  // namespace rlslb::obs
