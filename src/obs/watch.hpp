// WatchRenderer: the `rlslb watch` live view over a MonitorSet.
//
// Rides the MonitorSet observer hook: every conformance check lands a
// CheckSample here, the renderer keeps a fixed ring of recent gaps, and
// at a wall-clock throttle (default twice a second) prints a two-line
// snapshot -- current gap vs the paper envelope, gap p50/p99 from the
// set's streaming sketch, an ASCII sparkline of the recent trajectory,
// and the anomaly tally with the latest violation.
//
// The renderer allocates only at construction (the ring is a fixed
// array; lines are built into a reused buffer), so attaching it keeps
// the serve loop's steady-state allocation contract intact.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "obs/monitor.hpp"

namespace rlslb::obs {

class WatchRenderer {
 public:
  struct Options {
    double throttleSeconds = 0.5;  ///< min wall time between printed lines
    int sparkWidth = 48;           ///< sparkline columns (<= ring capacity)
    /// Envelope for the "bound" column; only meaningful for serve-side
    /// watches (showBound=false hides it, e.g. for process scenarios).
    GapEnvelope envelope{};
    bool showBound = true;
  };

  WatchRenderer(std::ostream& out, Options options);

  /// Record one check and maybe print (throttled). Matches
  /// MonitorSet::Observer, so attach with:
  ///   set.setObserver([&w](const CheckSample& s, const MonitorSet& m)
  ///                   { w.onCheck(s, m); });
  void onCheck(const CheckSample& sample, const MonitorSet& set);

  /// Install this renderer as `set`'s observer.
  void attach(MonitorSet& set);

  /// Print one final unthrottled snapshot (end of run).
  void finish(const MonitorSet& set);

  [[nodiscard]] std::int64_t checksSeen() const { return checksSeen_; }

 private:
  static constexpr std::size_t kRing = 256;

  void render(const CheckSample& sample, const MonitorSet& set);

  std::ostream& out_;
  Options options_;
  std::array<std::int64_t, kRing> ring_{};
  std::size_t ringSize_ = 0;
  std::size_t ringNext_ = 0;
  std::int64_t checksSeen_ = 0;
  bool haveLast_ = false;
  CheckSample last_{};
  std::string line_;  // reused render buffer
  std::chrono::steady_clock::time_point lastRender_;
  bool rendered_ = false;
};

}  // namespace rlslb::obs
