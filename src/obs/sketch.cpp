#include "obs/sketch.hpp"

#include <algorithm>
#include <cmath>

namespace rlslb::obs {

void QuantileSketch::configureShards(int shards) {
  RLSLB_ASSERT_MSG(shards >= 1, "QuantileSketch needs at least one shard");
  slabs_.resize(static_cast<std::size_t>(shards));
  for (Slab& slab : slabs_) {
    slab.buckets.resize(static_cast<std::size_t>(kSketchSlots), 0);
  }
}

std::int64_t QuantileSketch::count() const {
  std::int64_t total = 0;
  for (const Slab& slab : slabs_) total += slab.count;
  return total;
}

std::int64_t QuantileSketch::min() const {
  std::int64_t lo = INT64_MAX;
  for (const Slab& slab : slabs_) lo = std::min(lo, slab.minValue);
  return lo == INT64_MAX ? 0 : lo;
}

std::int64_t QuantileSketch::max() const {
  std::int64_t hi = INT64_MIN;
  for (const Slab& slab : slabs_) hi = std::max(hi, slab.maxValue);
  return hi == INT64_MIN ? 0 : hi;
}

std::int64_t QuantileSketch::quantile(double q) const {
  const std::int64_t total = count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation, 1-based; q=0 is the 1st (min side).
  const auto target =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(std::ceil(q * static_cast<double>(total))));
  std::int64_t cum = 0;
  for (int b = 0; b < kSketchSlots; ++b) {
    std::int64_t bucketCount = 0;
    for (const Slab& slab : slabs_) {
      bucketCount += slab.buckets[static_cast<std::size_t>(b)];
    }
    cum += bucketCount;
    if (cum >= target) {
      const std::int64_t lo = sketchBucketLo(b);
      const std::int64_t hi = sketchBucketHi(b);
      return lo + (hi - lo) / 2;
    }
  }
  return max();  // unreachable: cum == total covers every target
}

void QuantileSketch::clear() {
  for (Slab& slab : slabs_) {
    std::fill(slab.buckets.begin(), slab.buckets.end(), 0);
    slab.count = 0;
    slab.minValue = INT64_MAX;
    slab.maxValue = INT64_MIN;
  }
}

report::Json QuantileSketch::toJson() const {
  report::Json j = report::Json::object();
  j.set("count", count());
  j.set("min", min());
  j.set("max", max());
  j.set("p50", quantile(0.50));
  j.set("p90", quantile(0.90));
  j.set("p99", quantile(0.99));
  j.set("p999", quantile(0.999));
  return j;
}

bool CusumDetector::update(double x) {
  if (samples_ < options_.warmup) {
    // Welford accumulation while the baseline is still being fitted.
    ++samples_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(samples_);
    m2_ += delta * (x - mean_);
    if (samples_ == options_.warmup) {
      const double variance =
          samples_ > 1 ? m2_ / static_cast<double>(samples_ - 1) : 0.0;
      sigma_ = std::sqrt(std::max(variance, 0.0));
      const double floor = options_.minSigmaFraction * std::abs(mean_);
      sigma_ = std::max({sigma_, floor, 1e-12});
    }
    return false;
  }
  ++samples_;
  const double z = (x - mean_) / sigma_;
  gPos_ = std::max(0.0, gPos_ + z - options_.slack);
  gNeg_ = std::max(0.0, gNeg_ - z - options_.slack);
  const bool crossed =
      !triggered_ && (gPos_ > options_.threshold || gNeg_ > options_.threshold);
  if (crossed) triggered_ = true;
  return crossed;
}

}  // namespace rlslb::obs
