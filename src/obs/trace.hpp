// Scoped tracing spans emitting Chrome trace-event JSON.
//
// A TraceWriter buffers "X" (complete) span events and "C" (counter)
// trajectory events on per-thread *tracks* and serializes them as the
// {"traceEvents":[...]} document chrome://tracing and Perfetto
// (ui.perfetto.dev) load directly. The serving loop wraps its phases
// (decide / resolve / drain / apply / repair / flush) in Spans on the
// main track; runner::ThreadPool records one "job" span per worker
// participation on that worker's track, so a trace shows exactly which
// worker ran which slice of which phase.
//
// Cost model:
//   - Compile-time off (RLSLB_TRACING=0, the CMake option): every class
//     below collapses to an empty inline stub -- no events, no clock
//     reads, no output; writeTo()/writeFile() report failure so drivers
//     can warn that --trace-out was ignored.
//   - Compiled in but not attached (writer pointer null): a Span is one
//     pointer test; the pool's per-job hook is one pointer test per job.
//     This is the default state of every run, so tracing support costs
//     nothing when unused (pinned by tests/test_obs.cpp).
//   - Attached: ~two steady_clock reads + one vector push per span.
//     Recording may allocate (track buffers grow); the zero-allocation
//     contract applies to the *untraced* hot path only.
//
// Threading: track t's buffer is written only by the thread whose
// thread-local current track is t (workers are assigned tracks 1..N at
// pool construction; the calling thread is track 0). One pool at a time
// per writer -- the scenario layer attaches the writer to the shared
// context pool only.
//
// All name/category/key strings passed to the writer must have static
// storage duration (string literals): events store the pointers.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#ifndef RLSLB_TRACING
#define RLSLB_TRACING 1
#endif

namespace rlslb::obs {

inline constexpr bool kTracingCompiledIn = RLSLB_TRACING != 0;

/// Microseconds since a process-wide steady epoch (first use). Always
/// compiled -- the metrics layer's phase timers share this clock, so
/// phase attribution works with tracing compiled out.
[[nodiscard]] double nowUs() noexcept;

#if RLSLB_TRACING

/// Track of the calling thread (0 = main/caller; workers get 1..N).
[[nodiscard]] int currentTrack() noexcept;
void setCurrentTrack(int track) noexcept;

class TraceWriter {
 public:
  /// `maxTracks` bounds the per-thread buffers; track ids clamp into
  /// [0, maxTracks).
  explicit TraceWriter(int maxTracks = 64);

  /// obs::nowUs() -- kept on the class so call sites read naturally.
  [[nodiscard]] static double now() noexcept { return nowUs(); }

  /// Record a complete ("X") span on the calling thread's track.
  void complete(const char* name, const char* cat, double beginUs, double endUs);
  /// Record a counter ("C") sample on the calling thread's track --
  /// renders as a trajectory lane in Perfetto.
  void counter(const char* name, const char* key, double tsUs, double value);

  /// Optional display name for a track ("main", "worker 3", ...); unnamed
  /// tracks get a generated one at write time.
  void setTrackName(int track, std::string name);

  [[nodiscard]] std::size_t eventCount() const;

  /// Serialize the full trace document. Returns false when the stream is
  /// bad. Call only after all recording threads have quiesced.
  bool writeTo(std::ostream& out) const;
  /// writeTo() into `path`; false on open/IO failure.
  bool writeFile(const std::string& path) const;

  /// Drop all buffered events (registered track names survive).
  void clear();

 private:
  struct Event {
    const char* name = nullptr;
    const char* cat = nullptr;  // doubles as the counter key for 'C'
    double ts = 0.0;
    double dur = 0.0;    // 'X' only
    double value = 0.0;  // 'C' only
    char ph = 'X';
  };
  struct Track {
    std::vector<Event> events;
    std::string name;
  };
  std::vector<Track> tracks_;

  Track& trackForCurrentThread();
};

/// RAII span: records a complete event on destruction. Null writer = two
/// pointer tests and nothing else.
class Span {
 public:
  Span(TraceWriter* writer, const char* name, const char* cat = "phase") noexcept
      : writer_(writer), name_(name), cat_(cat),
        begin_(writer != nullptr ? nowUs() : 0.0) {}
  ~Span() {
    if (writer_ != nullptr) writer_->complete(name_, cat_, begin_, nowUs());
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceWriter* writer_;
  const char* name_;
  const char* cat_;
  double begin_;
};

#else  // RLSLB_TRACING == 0: inline no-op stubs with the identical API.

inline int currentTrack() noexcept { return 0; }
inline void setCurrentTrack(int) noexcept {}

class TraceWriter {
 public:
  explicit TraceWriter(int = 64) {}
  [[nodiscard]] static double now() noexcept { return 0.0; }
  void complete(const char*, const char*, double, double) {}
  void counter(const char*, const char*, double, double) {}
  void setTrackName(int, std::string) {}
  [[nodiscard]] std::size_t eventCount() const { return 0; }
  bool writeTo(std::ostream&) const { return false; }
  bool writeFile(const std::string&) const { return false; }
  void clear() {}
};

class Span {
 public:
  Span(TraceWriter*, const char*, const char* = "phase") noexcept {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

#endif  // RLSLB_TRACING

}  // namespace rlslb::obs
