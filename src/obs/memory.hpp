// Process-memory observations for the capacity-planning layer.
//
// peakRssBytes() is the OS's high-water mark for this process (getrusage
// ru_maxrss on unix; 0 where unsupported) — the honest "peak bytes" a
// frontier cell reports next to the allocator's own residentBytes()
// accounting. Both are wall-clock-class observations: they feed "timing"
// and "frontier" records and the serve.mem.* gauges, never deterministic
// "table" records (allocator growth policy and allocator reuse across
// cells make them machine- and stdlib-dependent).
#pragma once

#include <cstdint>

namespace rlslb::obs {

/// Peak resident set size of this process in bytes (0 if the platform
/// offers no getrusage). Monotone over the process lifetime: a frontier
/// sweep's later cells report the max over every cell so far, so per-cell
/// attribution comes from residentBytes(), not from deltas of this.
[[nodiscard]] std::int64_t peakRssBytes();

}  // namespace rlslb::obs
