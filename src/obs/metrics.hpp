// MetricsRegistry: the telemetry layer's low-overhead counter store.
//
// Design constraints, in order:
//   - The hot path (ShardedEventLoop epochs, allocator drains) must stay
//     allocation-free and byte-deterministic with metrics attached: every
//     mutation is a plain indexed write into a preallocated flat slab --
//     no maps, no strings, no locks. Registration (name -> small integer
//     handle) is the only allocating step and happens at setup / epoch 0,
//     which the steady-state contract explicitly exempts (see
//     tests/test_serve_hotpath.cpp and tests/test_obs.cpp).
//   - Parallel phases write *per-shard*: shard s's slab is owned by
//     whichever thread runs shard s's work, exactly the ownership
//     discipline the partitioned apply already enforces, so concurrent
//     adds need no atomics. Merged values are read only at epoch/round
//     boundaries (or at report time) by summing slabs in shard-index
//     order -- a deterministic reduction.
//   - Four instrument kinds cover the repo's needs: monotonic counters
//     (events, migrations, queue ops, per-phase nanoseconds), gauges
//     (last-observed values: gap, live balls -- written from sequential
//     sections only), fixed-bucket histograms (per-epoch gap
//     distribution; bounds are chosen at registration, out-of-range
//     samples land in explicit underflow/overflow buckets rather than
//     being clamped into the edge buckets), and quantile sketches
//     (obs/sketch.hpp: HDR-style log-bucketed distributions for values
//     with no natural fixed bounds, e.g. per-epoch nanoseconds).
//
// One registry is owned by ScenarioContext and survives for a whole
// driver run; ScenarioRegistry::runOne resets it per scenario and emits
// the merged snapshot as a {"type":"metrics"} JSONL record (see
// report/result_sink.hpp -- the record carries wall-clock-derived values
// and is therefore excluded from the byte-determinism contract).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/sketch.hpp"
#include "report/json.hpp"
#include "util/assert.hpp"

namespace rlslb::obs {

/// Small typed handles; invalid (default) handles make writes a no-op in
/// debug-assert terms -- callers are expected to register first.
struct CounterId {
  std::int32_t index = -1;
  [[nodiscard]] bool valid() const { return index >= 0; }
};
struct GaugeId {
  std::int32_t index = -1;
  [[nodiscard]] bool valid() const { return index >= 0; }
};
struct HistId {
  std::int32_t index = -1;
  [[nodiscard]] bool valid() const { return index >= 0; }
};
struct SketchId {
  std::int32_t index = -1;
  [[nodiscard]] bool valid() const { return index >= 0; }
};

class MetricsRegistry {
 public:
  MetricsRegistry() { configureShards(1); }

  // ------------------------------------------------------- registration
  // Idempotent by name: re-registering returns the existing handle, so a
  // loop that registers at every run() start allocates only on the first.
  // Registration may allocate (slab growth); mutation never does.

  CounterId counter(const std::string& name);
  GaugeId gauge(const std::string& name);
  /// `bounds` must be strictly increasing; value v lands in the first
  /// bucket with v <= bounds[i]. Out-of-range values are counted in
  /// explicit underflow (v < bounds.front()) / overflow (v >
  /// bounds.back()) buckets -- see histUnderflow()/histOverflow() -- so
  /// no sample is silently clamped into an edge bucket. A
  /// re-registration must repeat the same bounds (asserted).
  HistId histogram(const std::string& name, const std::vector<std::int64_t>& bounds);
  /// Log-bucketed quantile sketch (obs/sketch.hpp), merged and rendered
  /// with the rest of the registry snapshot.
  SketchId sketch(const std::string& name);

  /// Size the per-shard slab array (>= 1). Existing shard values are kept
  /// where indices overlap; new shards start at zero. Called by the
  /// parallel layers (e.g. the event loop) with their resolved shard
  /// count before the first parallel write.
  void configureShards(int shards);
  [[nodiscard]] int shards() const { return static_cast<int>(slabs_.size()); }

  // ---------------------------------------------------------- mutation
  // All three are plain array writes. `shard` must be the index of the
  // slab the calling thread owns for the duration of the parallel phase;
  // the sequential sections use the shard-0 convenience forms.

  void addShard(int shard, CounterId id, std::int64_t delta) {
    RLSLB_HEAVY_ASSERT(id.valid() && shard >= 0 && shard < shards());
    slabs_[static_cast<std::size_t>(shard)]
        .counters[static_cast<std::size_t>(id.index)] += delta;
  }
  void add(CounterId id, std::int64_t delta) { addShard(0, id, delta); }

  void observeShard(int shard, HistId id, std::int64_t value) {
    RLSLB_HEAVY_ASSERT(id.valid() && shard >= 0 && shard < shards());
    const HistDef& def = hists_[static_cast<std::size_t>(id.index)];
    // Slab layout per histogram: [underflow][bounds.size() buckets][overflow].
    std::size_t slot = 0;
    if (value >= def.bounds.front()) {
      std::size_t bucket = 0;
      while (bucket < def.bounds.size() && value > def.bounds[bucket]) ++bucket;
      slot = 1 + bucket;  // bucket == size() -> the overflow slot
    }
    slabs_[static_cast<std::size_t>(shard)].histBuckets[def.offset + slot] += 1;
  }
  void observe(HistId id, std::int64_t value) { observeShard(0, id, value); }

  void observeSketchShard(int shard, SketchId id, std::int64_t value) {
    RLSLB_HEAVY_ASSERT(id.valid());
    sketches_[static_cast<std::size_t>(id.index)].observeShard(shard, value);
  }
  void observeSketch(SketchId id, std::int64_t value) {
    observeSketchShard(0, id, value);
  }

  /// Gauges are not sharded: set from sequential sections only.
  void set(GaugeId id, double value) {
    RLSLB_HEAVY_ASSERT(id.valid());
    gauges_[static_cast<std::size_t>(id.index)] = value;
  }
  /// set(max(current, value)) -- for peak-style gauges.
  void setMax(GaugeId id, double value) {
    RLSLB_HEAVY_ASSERT(id.valid());
    double& g = gauges_[static_cast<std::size_t>(id.index)];
    if (value > g) g = value;
  }

  // ------------------------------------------------------ merged reads
  // Sum over slabs in shard-index order: deterministic for integer
  // counters regardless of which threads ran which shards.

  [[nodiscard]] std::int64_t counterValue(CounterId id) const;
  [[nodiscard]] double gaugeValue(GaugeId id) const {
    RLSLB_HEAVY_ASSERT(id.valid());
    return gauges_[static_cast<std::size_t>(id.index)];
  }
  /// Merged in-range bucket counts (bounds.size() entries).
  [[nodiscard]] std::vector<std::int64_t> histCounts(HistId id) const;
  /// Out-of-range sample counts.
  [[nodiscard]] std::int64_t histUnderflow(HistId id) const;
  [[nodiscard]] std::int64_t histOverflow(HistId id) const;
  /// Every sample, in-range or not.
  [[nodiscard]] std::int64_t histTotal(HistId id) const;
  /// Merged sketch view (quantiles, min/max, count).
  [[nodiscard]] const QuantileSketch& sketchView(SketchId id) const {
    RLSLB_ASSERT(id.valid());
    return sketches_[static_cast<std::size_t>(id.index)];
  }

  /// True when nothing has been registered (a scenario that never touched
  /// the registry emits no metrics record).
  [[nodiscard]] bool empty() const {
    return counterNames_.empty() && gaugeNames_.empty() && hists_.empty() &&
           sketchNames_.empty();
  }

  /// Zero every value, keep registrations and shard layout.
  void clear();
  /// Drop registrations and values; back to a fresh single-shard registry.
  void reset();

  /// Merged snapshot: {"counters":{name:value,...},"gauges":{...},
  /// "histograms":{name:{"bounds":[...],"counts":[...],"underflow":U,
  /// "overflow":O,"total":N}},"sketches":{name:{...}}} -- names in
  /// registration order (deterministic for a fixed code path).
  [[nodiscard]] report::Json toJson() const;

 private:
  struct HistDef {
    std::string name;
    std::vector<std::int64_t> bounds;
    std::size_t offset = 0;  // first bucket slot in every slab
  };
  /// One shard's flat value arrays; indices are the handle indices
  /// (counters) / HistDef offsets (histogram buckets).
  struct Slab {
    std::vector<std::int64_t> counters;
    std::vector<std::int64_t> histBuckets;
  };

  void layoutSlabs();

  std::vector<std::string> counterNames_;
  std::vector<std::string> gaugeNames_;
  std::vector<HistDef> hists_;
  std::size_t histSlots_ = 0;  // total bucket slots across histograms
  std::vector<double> gauges_;
  std::vector<Slab> slabs_;
  std::vector<std::string> sketchNames_;
  std::vector<QuantileSketch> sketches_;  // each carries its own shard slabs
};

}  // namespace rlslb::obs
