// Structured anomaly records produced by conformance monitors.
//
// Anomaly is a POD whose string fields are `const char*` pointing at
// static storage (monitor names, fixed detail sentences), so recording
// one is a struct copy into a preallocated ring -- no allocation on the
// hot path. AnomalyLog caps its backing vector at construction; records
// past the cap are counted (dropped()) rather than stored, keeping the
// steady-state allocation contract intact even for a pathologically
// noisy run. JSON rendering happens only at report time.
#pragma once

#include <cstdint>
#include <vector>

#include "report/json.hpp"

namespace rlslb::obs {

enum class Severity : std::uint8_t { kInfo = 0, kWarn = 1, kError = 2 };

[[nodiscard]] const char* severityName(Severity severity);

/// One violation. `monitor`, `metric` and `detail` must point at static
/// storage (string literals / static constants) -- the log stores the
/// pointers verbatim.
struct Anomaly {
  const char* monitor = "";
  const char* metric = "";
  const char* detail = "";
  Severity severity = Severity::kWarn;
  std::int32_t run = 0;       ///< sub-run tag (MonitorSet::beginRun counter)
  std::int64_t step = 0;      ///< epoch (serve) or event ordinal (process)
  double time = 0.0;          ///< simulated clock at the violating sample
  double value = 0.0;         ///< observed value
  double bound = 0.0;         ///< violated bound (0 when not applicable)
};

/// Render one anomaly as the payload half of a {"type":"anomaly"} record.
[[nodiscard]] report::Json anomalyToJson(const Anomaly& anomaly);

class AnomalyLog {
 public:
  explicit AnomalyLog(std::size_t capacity = 256) { reserve(capacity); }

  /// Allocation-free below capacity; beyond it the anomaly is dropped
  /// (still counted per severity and in dropped()).
  void record(const Anomaly& anomaly);

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] const Anomaly& at(std::size_t i) const { return records_[i]; }
  [[nodiscard]] bool empty() const { return total() == 0; }

  /// Totals include dropped records.
  [[nodiscard]] std::int64_t infos() const { return counts_[0]; }
  [[nodiscard]] std::int64_t warnings() const { return counts_[1]; }
  [[nodiscard]] std::int64_t errors() const { return counts_[2]; }
  [[nodiscard]] std::int64_t dropped() const { return dropped_; }
  [[nodiscard]] std::int64_t total() const {
    return counts_[0] + counts_[1] + counts_[2];
  }

  /// Tag subsequent records (multi-run scenarios stamp which sub-run a
  /// violation came from).
  void setRunTag(std::int32_t run) { runTag_ = run; }

  /// Forget records and counts; capacity (and thus the no-alloc
  /// guarantee) is preserved.
  void clear();

 private:
  void reserve(std::size_t capacity);

  std::vector<Anomaly> records_;
  std::size_t capacity_ = 0;
  std::int64_t counts_[3] = {0, 0, 0};
  std::int64_t dropped_ = 0;
  std::int32_t runTag_ = 0;
};

}  // namespace rlslb::obs
