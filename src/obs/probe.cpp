#include "obs/probe.hpp"

#include "util/assert.hpp"

namespace rlslb::obs {

ProcessProbe::ProcessProbe(MetricsRegistry* metrics, TraceWriter* trace, Options options)
    : metrics_(metrics), trace_(trace), options_(std::move(options)) {
  RLSLB_ASSERT_MSG(metrics_ != nullptr, "ProcessProbe needs a MetricsRegistry");
  RLSLB_ASSERT_MSG(options_.stride >= 1, "ProcessProbe stride must be >= 1");
  const std::string& p = options_.prefix;
  eventsId_ = metrics_->counter(p + ".events");
  samplesId_ = metrics_->counter(p + ".samples");
  gapId_ = metrics_->gauge(p + ".gap");
  overloadId_ = metrics_->gauge(p + ".overloaded_balls");
  movesId_ = metrics_->gauge(p + ".moves");
  clockId_ = metrics_->gauge(p + ".clock");
  gapHistId_ = metrics_->histogram(p + ".gap_hist", {0, 1, 2, 4, 8, 16, 32, 64, 128});
}

void ProcessProbe::onEvent(const process::Process& process) {
  ++events_;
  if (events_ % options_.stride != 0) return;
  sample(process);
}

void ProcessProbe::sample(const process::Process& process) {
  const sim::BalanceState& s = process.state();
  const std::int64_t gap = s.maxLoad - s.minLoad;
  metrics_->add(samplesId_, 1);
  metrics_->observe(gapHistId_, gap);
  metrics_->set(gapId_, static_cast<double>(gap));
  metrics_->set(overloadId_, static_cast<double>(s.overloadedBalls));
  metrics_->set(movesId_, static_cast<double>(process.moves()));
  metrics_->set(clockId_, process.now().value);
  if (trace_ != nullptr) {
    const double ts = nowUs();
    trace_->counter("process.gap", "gap", ts, static_cast<double>(gap));
    trace_->counter("process.overloaded_balls", "overloaded", ts,
                    static_cast<double>(s.overloadedBalls));
    trace_->counter("process.moves", "moves", ts, static_cast<double>(process.moves()));
  }
  // finish() re-samples regardless of stride alignment; don't feed the
  // monitors the same ordinal twice (the monotone-step invariant).
  if (options_.monitors != nullptr && events_ != lastCheckStep_) {
    lastCheckStep_ = events_;
    const process::Clock clock = process.now();
    CheckSample check;
    check.origin = CheckSample::Origin::kProcessStride;
    check.step = events_;
    check.time = clock.value;
    check.events = options_.stride;
    check.gap = gap;
    check.liveBalls = s.numBalls;
    check.totalLoad = s.numBalls;  // process loads are already weight units
    check.clockKind = static_cast<std::uint8_t>(clock.kind);
    check.openPopulation = process.capabilities().openSystem;
    options_.monitors->check(check);
  }
}

void ProcessProbe::finish(const process::Process& process) {
  metrics_->add(eventsId_, events_);
  sample(process);
}

}  // namespace rlslb::obs
