// Streaming sketches for the telemetry layer: a mergeable quantile
// sketch plus EWMA / CUSUM drift detectors.
//
// QuantileSketch follows the MetricsRegistry discipline exactly:
//   - The hot-path write is an index computation plus one slab
//     increment (plus two branch-predictable min/max compares) into a
//     preallocated per-shard array -- no maps, no strings, no locks,
//     no allocation after configureShards().
//   - Parallel phases write per-shard; merged reads sum the slabs in
//     shard-index order, so quantile answers (and toJson() bytes) are
//     identical regardless of which threads ran which shards.
//   - Buckets are HDR-histogram style: values 0..63 are exact, larger
//     values share an exponent block subdivided into 32 sub-buckets,
//     bounding the relative quantile error at ~3.1% while keeping the
//     whole table at a fixed 1888 slots per shard. (A P^2 sketch was
//     considered and rejected: its state depends on arrival order, so
//     per-shard instances cannot merge deterministically.)
//
// Ewma and CusumDetector are tiny sequential-state detectors meant to
// run at epoch/stride boundaries (see obs/monitor.hpp); they are cheap
// enough for per-epoch use but are not sharded.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "report/json.hpp"
#include "util/assert.hpp"

namespace rlslb::obs {

/// Bucket geometry: 2^kSketchSubBits sub-buckets per exponent block.
inline constexpr int kSketchSubBits = 5;
/// Total slots: exact region [0, 2^(kSubBits+1)) plus 57 log blocks of
/// 32 sub-buckets covering the rest of the non-negative int64 range.
inline constexpr int kSketchSlots =
    ((62 - kSketchSubBits) << kSketchSubBits) + (1 << (kSketchSubBits + 1));

/// Bucket index for a value. <= 0 collapses to bucket 0 (the sketch
/// tracks non-negative magnitudes: gaps, nanoseconds, queue depths).
[[nodiscard]] constexpr int sketchBucketOf(std::int64_t value) {
  if (value <= 0) return 0;
  const auto u = static_cast<std::uint64_t>(value);
  const int e = std::bit_width(u) - 1;  // floor(log2(u))
  if (e <= kSketchSubBits) return static_cast<int>(u);
  const int shift = e - kSketchSubBits;
  return ((e - kSketchSubBits) << kSketchSubBits) + static_cast<int>(u >> shift);
}

/// Inclusive lower edge of a bucket (inverse of sketchBucketOf).
[[nodiscard]] constexpr std::int64_t sketchBucketLo(int bucket) {
  if (bucket < (1 << (kSketchSubBits + 1))) return bucket;
  const int shift = (bucket >> kSketchSubBits) - 1;
  const std::int64_t sub =
      (bucket & ((1 << kSketchSubBits) - 1)) | (1 << kSketchSubBits);
  return sub << shift;
}

/// Inclusive upper edge of a bucket.
[[nodiscard]] constexpr std::int64_t sketchBucketHi(int bucket) {
  if (bucket + 1 >= kSketchSlots) return INT64_MAX;
  return sketchBucketLo(bucket + 1) - 1;
}

class QuantileSketch {
 public:
  explicit QuantileSketch(int shards = 1) { configureShards(shards); }

  /// Size the per-shard slab array (>= 1), keeping existing counts where
  /// shard indices overlap. Allocates; call before the first parallel
  /// write, never from the hot path.
  void configureShards(int shards);
  [[nodiscard]] int shards() const { return static_cast<int>(slabs_.size()); }

  /// Hot-path write: bucket index + one increment, plus exact min/max
  /// maintenance. `shard` must be the slab the calling thread owns.
  void observeShard(int shard, std::int64_t value) {
    RLSLB_HEAVY_ASSERT(shard >= 0 && shard < shards());
    Slab& slab = slabs_[static_cast<std::size_t>(shard)];
    slab.buckets[static_cast<std::size_t>(sketchBucketOf(value))] += 1;
    slab.count += 1;
    if (value < slab.minValue) slab.minValue = value;
    if (value > slab.maxValue) slab.maxValue = value;
  }
  void observe(std::int64_t value) { observeShard(0, value); }

  // ------------------------------------------------------ merged reads
  // Deterministic reductions over the shard slabs.

  [[nodiscard]] std::int64_t count() const;
  /// Exact extremes over every observed value (0 when empty).
  [[nodiscard]] std::int64_t min() const;
  [[nodiscard]] std::int64_t max() const;
  /// Bucket-representative value at quantile q in [0,1]: the midpoint of
  /// the bucket containing the ceil(q * count)-th smallest observation.
  /// Relative error is bounded by the bucket width (~3.1%). 0 when empty.
  [[nodiscard]] std::int64_t quantile(double q) const;

  [[nodiscard]] bool empty() const { return count() == 0; }
  /// Zero every bucket, keep the shard layout. Allocation-free.
  void clear();

  /// {"count":N,"min":..,"max":..,"p50":..,"p90":..,"p99":..,"p999":..}
  /// -- all integers, so equal sketches render byte-identically.
  [[nodiscard]] report::Json toJson() const;

 private:
  struct Slab {
    std::vector<std::int64_t> buckets;
    std::int64_t count = 0;
    std::int64_t minValue = INT64_MAX;
    std::int64_t maxValue = INT64_MIN;
  };
  std::vector<Slab> slabs_;
};

/// Exponentially-weighted moving average. The first sample primes the
/// average directly so there is no zero-bias warmup.
class Ewma {
 public:
  explicit Ewma(double alpha = 0.2) : alpha_(alpha) {}

  double update(double x) {
    value_ = primed_ ? value_ + alpha_ * (x - value_) : x;
    primed_ = true;
    return value_;
  }
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] bool primed() const { return primed_; }
  void reset() {
    value_ = 0.0;
    primed_ = false;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool primed_ = false;
};

/// Two-sided CUSUM change detector. The first `warmup` samples fit a
/// baseline (Welford mean/sigma, then frozen); afterwards each sample is
/// standardized against that baseline and accumulated into the classic
/// g+/g- statistics. update() returns true on the sample that pushes
/// either statistic across `threshold`; the detector then stays
/// triggered until rearm() (new drift from the same baseline) or
/// reset() (refit the baseline too).
class CusumDetector {
 public:
  struct Options {
    std::int64_t warmup = 32;  ///< samples used to fit the frozen baseline
    double slack = 0.5;        ///< k: per-sample drift allowance, in sigmas
    double threshold = 8.0;    ///< h: trigger level, in sigmas
    /// Sigma floor as a fraction of |baseline mean|, so near-constant
    /// baselines with tiny jitter don't make every later sample an
    /// infinite-z outlier.
    double minSigmaFraction = 0.01;
  };

  // Two constructors instead of one defaulted argument: a `= Options()`
  // default would need the nested struct's member initializers inside the
  // enclosing class's complete-class context, which GCC rejects.
  CusumDetector();
  explicit CusumDetector(Options options) : options_(options) {}

  /// Feed one sample; true exactly when this sample crosses threshold.
  bool update(double x);

  [[nodiscard]] bool triggered() const { return triggered_; }
  /// Current max(g+, g-), in sigmas.
  [[nodiscard]] double statistic() const { return gPos_ > gNeg_ ? gPos_ : gNeg_; }
  [[nodiscard]] std::int64_t samples() const { return samples_; }
  [[nodiscard]] bool baselineFrozen() const { return samples_ >= options_.warmup; }
  [[nodiscard]] double baselineMean() const { return mean_; }
  [[nodiscard]] double baselineSigma() const { return sigma_; }

  /// Clear the drift statistics but keep the fitted baseline.
  void rearm() {
    gPos_ = gNeg_ = 0.0;
    triggered_ = false;
  }
  /// Back to an unfitted detector.
  void reset() {
    samples_ = 0;
    mean_ = m2_ = sigma_ = 0.0;
    rearm();
  }

 private:
  Options options_;
  std::int64_t samples_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sigma_ = 0.0;
  double gPos_ = 0.0;
  double gNeg_ = 0.0;
  bool triggered_ = false;
};

inline CusumDetector::CusumDetector() : CusumDetector(Options()) {}

}  // namespace rlslb::obs
