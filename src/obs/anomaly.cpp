#include "obs/anomaly.hpp"

namespace rlslb::obs {

const char* severityName(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarn:
      return "warn";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

report::Json anomalyToJson(const Anomaly& anomaly) {
  report::Json j = report::Json::object();
  j.set("monitor", std::string(anomaly.monitor));
  j.set("metric", std::string(anomaly.metric));
  j.set("severity", std::string(severityName(anomaly.severity)));
  j.set("run", static_cast<std::int64_t>(anomaly.run));
  j.set("step", anomaly.step);
  j.set("time", anomaly.time);
  j.set("value", anomaly.value);
  j.set("bound", anomaly.bound);
  j.set("detail", std::string(anomaly.detail));
  return j;
}

void AnomalyLog::record(const Anomaly& anomaly) {
  counts_[static_cast<std::size_t>(anomaly.severity)] += 1;
  if (records_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  records_.push_back(anomaly);
  records_.back().run = runTag_;
}

void AnomalyLog::clear() {
  records_.clear();
  counts_[0] = counts_[1] = counts_[2] = 0;
  dropped_ = 0;
  runTag_ = 0;
}

void AnomalyLog::reserve(std::size_t capacity) {
  capacity_ = capacity;
  records_.reserve(capacity);
}

}  // namespace rlslb::obs
