#include "obs/trace.hpp"

#include <chrono>
#include <fstream>
#include <ostream>

#include "report/json.hpp"
#include "util/assert.hpp"

namespace rlslb::obs {

double nowUs() noexcept {
  // Process-wide steady epoch: all writers (and the metrics phase timers)
  // share one time origin, so timestamps from different writers in one
  // process line up on the same Perfetto timeline.
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                   epoch)
      .count();
}

#if RLSLB_TRACING

namespace {
thread_local int tCurrentTrack = 0;
}  // namespace

int currentTrack() noexcept { return tCurrentTrack; }
void setCurrentTrack(int track) noexcept { tCurrentTrack = track < 0 ? 0 : track; }

TraceWriter::TraceWriter(int maxTracks) {
  RLSLB_ASSERT_MSG(maxTracks >= 1, "TraceWriter needs at least one track");
  tracks_.resize(static_cast<std::size_t>(maxTracks));
}

TraceWriter::Track& TraceWriter::trackForCurrentThread() {
  // Clamp rather than assert: a pool larger than maxTracks folds its
  // overflow workers onto the last track instead of crashing a run that
  // only wanted a trace.
  auto t = static_cast<std::size_t>(tCurrentTrack);
  if (t >= tracks_.size()) t = tracks_.size() - 1;
  return tracks_[t];
}

void TraceWriter::complete(const char* name, const char* cat, double beginUs,
                           double endUs) {
  Track& track = trackForCurrentThread();
  Event e;
  e.name = name;
  e.cat = cat;
  e.ts = beginUs;
  e.dur = endUs >= beginUs ? endUs - beginUs : 0.0;
  e.ph = 'X';
  track.events.push_back(e);
}

void TraceWriter::counter(const char* name, const char* key, double tsUs, double value) {
  Track& track = trackForCurrentThread();
  Event e;
  e.name = name;
  e.cat = key;
  e.ts = tsUs;
  e.value = value;
  e.ph = 'C';
  track.events.push_back(e);
}

void TraceWriter::setTrackName(int track, std::string name) {
  if (track < 0 || static_cast<std::size_t>(track) >= tracks_.size()) return;
  tracks_[static_cast<std::size_t>(track)].name = std::move(name);
}

std::size_t TraceWriter::eventCount() const {
  std::size_t total = 0;
  for (const Track& t : tracks_) total += t.events.size();
  return total;
}

bool TraceWriter::writeTo(std::ostream& out) const {
  // One process ("rlslb"), one thread track per recording thread. Events
  // serialize track-by-track; Perfetto orders by timestamp itself.
  out << "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const report::Json& j) {
    if (!first) out << ',';
    first = false;
    out << '\n' << j.dump();
  };
  {
    report::Json meta = report::Json::object();
    meta.set("ph", "M");
    meta.set("name", "process_name");
    meta.set("pid", 1);
    report::Json args = report::Json::object();
    args.set("name", "rlslb");
    meta.set("args", std::move(args));
    emit(meta);
  }
  for (std::size_t t = 0; t < tracks_.size(); ++t) {
    const Track& track = tracks_[t];
    if (track.events.empty() && track.name.empty()) continue;
    report::Json meta = report::Json::object();
    meta.set("ph", "M");
    meta.set("name", "thread_name");
    meta.set("pid", 1);
    meta.set("tid", static_cast<std::int64_t>(t));
    report::Json args = report::Json::object();
    args.set("name", !track.name.empty()
                         ? track.name
                         : (t == 0 ? std::string("main")
                                   : "worker " + std::to_string(t)));
    meta.set("args", std::move(args));
    emit(meta);
    for (const Event& e : track.events) {
      report::Json j = report::Json::object();
      j.set("ph", std::string(1, e.ph));
      j.set("name", e.name);
      j.set("pid", 1);
      j.set("tid", static_cast<std::int64_t>(t));
      j.set("ts", e.ts);
      if (e.ph == 'X') {
        j.set("cat", e.cat);
        j.set("dur", e.dur);
      } else {  // 'C'
        report::Json args = report::Json::object();
        args.set(e.cat, e.value);
        j.set("args", std::move(args));
      }
      emit(j);
    }
  }
  out << "\n]}\n";
  return static_cast<bool>(out);
}

bool TraceWriter::writeFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  return writeTo(out);
}

void TraceWriter::clear() {
  for (Track& t : tracks_) t.events.clear();
}

#endif  // RLSLB_TRACING

}  // namespace rlslb::obs
