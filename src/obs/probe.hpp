// ProcessProbe: the standard process::Probe of the telemetry layer.
//
// Attach one to process::run to export the trajectory quantities the
// paper's analysis reasons about -- moves, overload mass, and the gap --
// into a MetricsRegistry (counters + a gap histogram + final gauges) and,
// when a TraceWriter is attached, as "C" counter events that render as
// trajectory lanes in Perfetto.
//
// Sampling: onEvent fires after *every* advance() (the Probe contract),
// so the per-event work is one increment; the O(1)-but-not-free state
// reads happen every `stride` events only. finish() records the final
// sample regardless of stride alignment.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "obs/trace.hpp"
#include "process/process.hpp"

namespace rlslb::obs {

class ProcessProbe final : public process::Probe {
 public:
  struct Options {
    std::int64_t stride = 256;  // events between samples (>= 1)
    /// Metric name prefix, e.g. "process.rls" -> "process.rls.gap".
    std::string prefix = "process";
    /// Optional conformance roster (obs/monitor.hpp): fed one
    /// CheckSample per stride sample (process-stride origin).
    MonitorSet* monitors = nullptr;
  };

  /// `metrics` may not be null; `trace` may be (metrics-only probing).
  ProcessProbe(MetricsRegistry* metrics, TraceWriter* trace, Options options);

  void onEvent(const process::Process& process) override;

  /// Record the final state (gauges + one last trace sample). Call once
  /// after process::run returns.
  void finish(const process::Process& process);

  [[nodiscard]] std::int64_t eventsSeen() const { return events_; }

 private:
  void sample(const process::Process& process);

  MetricsRegistry* metrics_;
  TraceWriter* trace_;
  Options options_;
  std::int64_t events_ = 0;
  std::int64_t lastCheckStep_ = -1;  // last ordinal fed to the monitors

  CounterId eventsId_;
  CounterId samplesId_;
  GaugeId gapId_;
  GaugeId overloadId_;
  GaugeId movesId_;
  GaugeId clockId_;
  HistId gapHistId_;
};

}  // namespace rlslb::obs
