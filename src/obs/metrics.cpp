#include "obs/metrics.hpp"

#include <algorithm>

namespace rlslb::obs {

namespace {

/// Linear name lookup: registries hold a few dozen instruments and
/// registration runs at setup time, so a map would be pure overhead.
std::int32_t indexOf(const std::vector<std::string>& names, const std::string& name) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<std::int32_t>(i);
  }
  return -1;
}

}  // namespace

CounterId MetricsRegistry::counter(const std::string& name) {
  std::int32_t idx = indexOf(counterNames_, name);
  if (idx < 0) {
    idx = static_cast<std::int32_t>(counterNames_.size());
    counterNames_.push_back(name);
    layoutSlabs();
  }
  return CounterId{idx};
}

GaugeId MetricsRegistry::gauge(const std::string& name) {
  std::int32_t idx = indexOf(gaugeNames_, name);
  if (idx < 0) {
    idx = static_cast<std::int32_t>(gaugeNames_.size());
    gaugeNames_.push_back(name);
    gauges_.push_back(0.0);
  }
  return GaugeId{idx};
}

HistId MetricsRegistry::histogram(const std::string& name,
                                  const std::vector<std::int64_t>& bounds) {
  RLSLB_ASSERT_MSG(!bounds.empty(), "histogram needs at least one bucket bound");
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    RLSLB_ASSERT_MSG(bounds[i - 1] < bounds[i],
                     "histogram bounds must be strictly increasing");
  }
  for (std::size_t i = 0; i < hists_.size(); ++i) {
    if (hists_[i].name == name) {
      RLSLB_ASSERT_MSG(hists_[i].bounds == bounds,
                       "histogram re-registered with different bounds");
      return HistId{static_cast<std::int32_t>(i)};
    }
  }
  HistDef def;
  def.name = name;
  def.bounds = bounds;
  def.offset = histSlots_;
  histSlots_ += bounds.size() + 2;  // + underflow and overflow buckets
  hists_.push_back(std::move(def));
  layoutSlabs();
  return HistId{static_cast<std::int32_t>(hists_.size() - 1)};
}

SketchId MetricsRegistry::sketch(const std::string& name) {
  std::int32_t idx = indexOf(sketchNames_, name);
  if (idx < 0) {
    idx = static_cast<std::int32_t>(sketchNames_.size());
    sketchNames_.push_back(name);
    sketches_.emplace_back(shards());
  }
  return SketchId{idx};
}

void MetricsRegistry::configureShards(int shards) {
  RLSLB_ASSERT_MSG(shards >= 1, "MetricsRegistry needs at least one shard");
  slabs_.resize(static_cast<std::size_t>(shards));
  layoutSlabs();
  for (QuantileSketch& sketch : sketches_) sketch.configureShards(shards);
}

void MetricsRegistry::layoutSlabs() {
  for (Slab& slab : slabs_) {
    slab.counters.resize(counterNames_.size(), 0);
    slab.histBuckets.resize(histSlots_, 0);
  }
}

std::int64_t MetricsRegistry::counterValue(CounterId id) const {
  RLSLB_ASSERT(id.valid());
  std::int64_t total = 0;
  for (const Slab& slab : slabs_) total += slab.counters[static_cast<std::size_t>(id.index)];
  return total;
}

std::vector<std::int64_t> MetricsRegistry::histCounts(HistId id) const {
  RLSLB_ASSERT(id.valid());
  const HistDef& def = hists_[static_cast<std::size_t>(id.index)];
  std::vector<std::int64_t> counts(def.bounds.size(), 0);
  for (const Slab& slab : slabs_) {
    for (std::size_t b = 0; b < counts.size(); ++b) {
      counts[b] += slab.histBuckets[def.offset + 1 + b];  // skip underflow
    }
  }
  return counts;
}

std::int64_t MetricsRegistry::histUnderflow(HistId id) const {
  RLSLB_ASSERT(id.valid());
  const HistDef& def = hists_[static_cast<std::size_t>(id.index)];
  std::int64_t total = 0;
  for (const Slab& slab : slabs_) total += slab.histBuckets[def.offset];
  return total;
}

std::int64_t MetricsRegistry::histOverflow(HistId id) const {
  RLSLB_ASSERT(id.valid());
  const HistDef& def = hists_[static_cast<std::size_t>(id.index)];
  const std::size_t slot = def.offset + def.bounds.size() + 1;
  std::int64_t total = 0;
  for (const Slab& slab : slabs_) total += slab.histBuckets[slot];
  return total;
}

std::int64_t MetricsRegistry::histTotal(HistId id) const {
  std::int64_t total = histUnderflow(id) + histOverflow(id);
  for (const std::int64_t c : histCounts(id)) total += c;
  return total;
}

void MetricsRegistry::clear() {
  for (Slab& slab : slabs_) {
    std::fill(slab.counters.begin(), slab.counters.end(), 0);
    std::fill(slab.histBuckets.begin(), slab.histBuckets.end(), 0);
  }
  std::fill(gauges_.begin(), gauges_.end(), 0.0);
  for (QuantileSketch& sketch : sketches_) sketch.clear();
}

void MetricsRegistry::reset() {
  counterNames_.clear();
  gaugeNames_.clear();
  hists_.clear();
  histSlots_ = 0;
  gauges_.clear();
  slabs_.clear();
  sketchNames_.clear();
  sketches_.clear();
  configureShards(1);
}

report::Json MetricsRegistry::toJson() const {
  report::Json counters = report::Json::object();
  for (std::size_t i = 0; i < counterNames_.size(); ++i) {
    counters.set(counterNames_[i], counterValue(CounterId{static_cast<std::int32_t>(i)}));
  }
  report::Json gauges = report::Json::object();
  for (std::size_t i = 0; i < gaugeNames_.size(); ++i) {
    gauges.set(gaugeNames_[i], gauges_[i]);
  }
  report::Json hists = report::Json::object();
  for (std::size_t i = 0; i < hists_.size(); ++i) {
    const HistDef& def = hists_[i];
    report::Json bounds = report::Json::array();
    for (const std::int64_t b : def.bounds) bounds.push(b);
    const auto id = HistId{static_cast<std::int32_t>(i)};
    report::Json counts = report::Json::array();
    for (const std::int64_t c : histCounts(id)) counts.push(c);
    report::Json h = report::Json::object();
    h.set("bounds", std::move(bounds));
    h.set("counts", std::move(counts));
    h.set("underflow", histUnderflow(id));
    h.set("overflow", histOverflow(id));
    h.set("total", histTotal(id));
    hists.set(def.name, std::move(h));
  }
  report::Json sketches = report::Json::object();
  for (std::size_t i = 0; i < sketchNames_.size(); ++i) {
    sketches.set(sketchNames_[i], sketches_[i].toJson());
  }
  report::Json j = report::Json::object();
  j.set("counters", std::move(counters));
  j.set("gauges", std::move(gauges));
  j.set("histograms", std::move(hists));
  j.set("sketches", std::move(sketches));
  return j;
}

}  // namespace rlslb::obs
