#include "obs/monitor.hpp"

#include <algorithm>
#include <cmath>

namespace rlslb::obs {

// ----------------------------------------------------------- MonitorSet

void MonitorSet::add(std::unique_ptr<ConformanceMonitor> monitor) {
  RLSLB_ASSERT(monitor != nullptr);
  monitors_.push_back(std::move(monitor));
}

void MonitorSet::beginRun() {
  ++runTag_;
  log_.setRunTag(runTag_);
  finished_ = false;
  for (const auto& monitor : monitors_) monitor->onRunStart();
}

void MonitorSet::check(const CheckSample& sample) {
  ++checks_;
  gapSketch_.observe(sample.gap);
  if (sample.events > 0 && sample.wallSeconds > 0.0) {
    latencySketch_.observe(static_cast<std::int64_t>(
        sample.wallSeconds * 1e9 / static_cast<double>(sample.events)));
  }
  for (const auto& monitor : monitors_) monitor->check(sample, log_);
  if (observer_) observer_(sample, *this);
}

void MonitorSet::finish() {
  if (finished_) return;
  finished_ = true;
  for (const auto& monitor : monitors_) monitor->finish(log_);
}

void MonitorSet::clear() {
  monitors_.clear();
  log_.clear();
  gapSketch_.clear();
  latencySketch_.clear();
  checks_ = 0;
  runTag_ = 0;
  finished_ = false;
}

report::Json MonitorSet::summaryJson() const {
  report::Json anomalies = report::Json::object();
  anomalies.set("info", log_.infos());
  anomalies.set("warn", log_.warnings());
  anomalies.set("error", log_.errors());
  anomalies.set("dropped", log_.dropped());
  report::Json j = report::Json::object();
  j.set("checks", checks_);
  j.set("monitors", static_cast<std::int64_t>(monitors_.size()));
  j.set("anomalies", std::move(anomalies));
  j.set("gap", gapSketch_.toJson());
  j.set("latency_ns_per_event", latencySketch_.toJson());
  return j;
}

// ----------------------------------------------------- GapEnvelopeMonitor

std::int64_t GapEnvelope::bound(std::int64_t maxWeight) const {
  const double logN = std::log(static_cast<double>(std::max<std::int64_t>(n, 2)));
  // Without a power-of-d-choices arrival rule the equilibrium envelope
  // is the single-choice one: twice the log factor.
  const double factor = logFactor * (d <= 1 ? 2.0 : 1.0);
  const std::int64_t envelope =
      slackAbs + static_cast<std::int64_t>(std::ceil(factor * logN));
  return std::max<std::int64_t>(maxWeight, 1) * envelope;
}

void GapEnvelopeMonitor::check(const CheckSample& sample, AnomalyLog& log) {
  if (sample.step < envelope_.warmupSteps) return;
  const std::int64_t bound = envelope_.bound(sample.maxWeight);
  if (sample.gap <= bound) {
    streak_ = 0;
    return;
  }
  ++streak_;
  // Report when the violation has been sustained `consecutive` checks,
  // then re-report every 256 sustained checks so a long divergence is
  // visible without flooding the log.
  const std::int64_t since = streak_ - envelope_.consecutive;
  if (since != 0 && (since < 0 || since % 256 != 0)) return;
  Anomaly anomaly;
  anomaly.monitor = name();
  anomaly.metric = "gap";
  anomaly.severity = sample.gap > 2 * bound ? Severity::kError : Severity::kWarn;
  anomaly.step = sample.step;
  anomaly.time = sample.time;
  anomaly.value = static_cast<double>(sample.gap);
  anomaly.bound = static_cast<double>(bound);
  anomaly.detail = "gap sustained above the predicted envelope";
  log.record(anomaly);
}

// ----------------------------------------------------- ConvergenceMonitor

ConvergenceMonitor::ConvergenceMonitor(std::int64_t n, std::int64_t m,
                                       ConvergenceEnvelope envelope)
    : envelope_(envelope), m_(std::max<std::int64_t>(m, 1)) {
  const double logN = std::log(static_cast<double>(std::max<std::int64_t>(n, 2)));
  if (envelope_.convergeBy <= 0.0) envelope_.convergeBy = 8.0 * (logN + 2.0);
  if (envelope_.gapBound <= 0) {
    envelope_.gapBound = static_cast<std::int64_t>(std::ceil(2.0 * logN)) + 2;
  }
}

void ConvergenceMonitor::check(const CheckSample& sample, AnomalyLog& log) {
  if (sample.openPopulation) return;
  last_ = sample;
  // Sequential Steps clocks tick once per activation; one
  // round-equivalent unit is m expected activations.
  const double deadline =
      envelope_.convergeBy *
      (sample.clockKind == 2 ? static_cast<double>(m_) : 1.0);
  if (sample.gap <= envelope_.gapBound) {
    converged_ = true;
    streak_ = 0;
    return;
  }
  if (sample.time < deadline) return;
  pastDeadline_ = true;
  ++streak_;
  const std::int64_t since = streak_ - envelope_.consecutive;
  if (since != 0 && (since < 0 || since % 256 != 0)) return;
  Anomaly anomaly;
  anomaly.monitor = name();
  anomaly.metric = "gap";
  anomaly.severity =
      sample.gap > 2 * envelope_.gapBound ? Severity::kError : Severity::kWarn;
  anomaly.step = sample.step;
  anomaly.time = sample.time;
  anomaly.value = static_cast<double>(sample.gap);
  anomaly.bound = static_cast<double>(envelope_.gapBound);
  anomaly.detail = "gap still above the convergence envelope past the deadline";
  log.record(anomaly);
}

void ConvergenceMonitor::finish(AnomalyLog& log) {
  if (!pastDeadline_ || converged_) return;
  Anomaly anomaly;
  anomaly.monitor = name();
  anomaly.metric = "gap";
  anomaly.severity = Severity::kError;
  anomaly.step = last_.step;
  anomaly.time = last_.time;
  anomaly.value = static_cast<double>(last_.gap);
  anomaly.bound = static_cast<double>(envelope_.gapBound);
  anomaly.detail = "run ended without ever entering the convergence envelope";
  log.record(anomaly);
}

void ConvergenceMonitor::onRunStart() {
  streak_ = 0;
  pastDeadline_ = false;
  converged_ = false;
  last_ = CheckSample{};
}

// ------------------------------------------------ LoadConservationMonitor

void LoadConservationMonitor::check(const CheckSample& sample, AnomalyLog& log) {
  const auto fail = [&](const char* metric, const char* detail, double value,
                        double bound) {
    Anomaly anomaly;
    anomaly.monitor = name();
    anomaly.metric = metric;
    anomaly.detail = detail;
    anomaly.severity = Severity::kError;
    anomaly.step = sample.step;
    anomaly.time = sample.time;
    anomaly.value = value;
    anomaly.bound = bound;
    log.record(anomaly);
  };

  if (sample.gap < 0) {
    fail("gap", "gap is negative", static_cast<double>(sample.gap), 0.0);
  }
  if (sample.liveBalls < 0) {
    fail("live_balls", "live ball count is negative",
         static_cast<double>(sample.liveBalls), 0.0);
  }
  if (sample.origin == CheckSample::Origin::kServeEpoch) {
    const std::int64_t expected = sample.arrivals - sample.departures;
    if (sample.liveBalls != expected) {
      fail("live_balls", "load conservation broken: live != arrivals - departures",
           static_cast<double>(sample.liveBalls), static_cast<double>(expected));
    }
    if (sample.totalLoad < sample.liveBalls) {
      fail("total_load", "total load below live ball count (weights are >= 1)",
           static_cast<double>(sample.totalLoad),
           static_cast<double>(sample.liveBalls));
    }
    const std::int64_t maxLoad =
        sample.liveBalls * std::max<std::int64_t>(sample.maxWeight, 1);
    if (sample.totalLoad > maxLoad) {
      fail("total_load", "total load above live balls x max weight",
           static_cast<double>(sample.totalLoad), static_cast<double>(maxLoad));
    }
    if (sample.crossShardOps > sample.queuedOps) {
      fail("queue_ops", "cross-shard ops exceed queued ops",
           static_cast<double>(sample.crossShardOps),
           static_cast<double>(sample.queuedOps));
    }
    if (sample.queuePeak > sample.queuedOps) {
      fail("queue_ops", "queue peak depth exceeds queued ops",
           static_cast<double>(sample.queuePeak),
           static_cast<double>(sample.queuedOps));
    }
    if (sample.drainedOps != sample.queuedOps) {
      fail("queue_ops", "drained ops != queued ops",
           static_cast<double>(sample.drainedOps),
           static_cast<double>(sample.queuedOps));
    }
  }
  if (primed_) {
    if (sample.step <= last_.step) {
      fail("step", "step did not advance", static_cast<double>(sample.step),
           static_cast<double>(last_.step));
    }
    if (sample.time + 1e-9 < last_.time) {
      fail("clock", "clock went backwards", sample.time, last_.time);
    }
    if (sample.arrivals < last_.arrivals || sample.departures < last_.departures ||
        sample.migrations < last_.migrations) {
      fail("counters", "cumulative counter decreased", 0.0, 0.0);
    }
  }
  last_ = sample;
  primed_ = true;
}

// ----------------------------------------------------------- DriftMonitor

void DriftMonitor::check(const CheckSample& sample, AnomalyLog& log) {
  if (sample.events <= 0 || sample.wallSeconds <= 0.0) return;
  if (seen_ < options_.skipChecks) {
    ++seen_;  // cold start: caches and the branch predictor still warming
    return;
  }
  const double nsPerEvent =
      sample.wallSeconds * 1e9 / static_cast<double>(sample.events);
  const double smoothed = ewma_.update(nsPerEvent);
  const bool crossed = cusum_.update(nsPerEvent);
  const bool elevatedNow =
      cusum_.baselineFrozen() &&
      smoothed > options_.factorError * cusum_.baselineMean();
  elevated_ = elevatedNow ? elevated_ + 1 : 0;
  ++sinceReport_;
  if (!crossed) return;
  // Downward drift (the run got faster than its baseline) is the normal
  // post-warmup shape; track it in the CUSUM but never report it.
  if (smoothed <= cusum_.baselineMean() || sinceReport_ < options_.cooldownChecks) {
    cusum_.rearm();  // stay quiet, keep watching from the same baseline
    return;
  }
  Anomaly anomaly;
  anomaly.monitor = name();
  anomaly.metric = "ns_per_event";
  anomaly.severity =
      elevated_ >= options_.errorStreak ? Severity::kError : Severity::kWarn;
  anomaly.step = sample.step;
  anomaly.time = sample.time;
  anomaly.value = nsPerEvent;
  anomaly.bound = cusum_.baselineMean();
  anomaly.detail = "wall latency drifted above the run baseline";
  log.record(anomaly);
  sinceReport_ = 0;
  cusum_.rearm();
}

void DriftMonitor::onRunStart() {
  cusum_.reset();
  ewma_.reset();
  seen_ = 0;
  elevated_ = 0;
  sinceReport_ = options_.cooldownChecks;  // first report is never muted
}

// --------------------------------------------------------------- rosters

void installServeMonitors(MonitorSet& set, const ServeConformanceParams& params) {
  set.add(std::make_unique<LoadConservationMonitor>());
  GapEnvelope envelope;
  envelope.n = std::max<std::int64_t>(params.n, 1);
  envelope.expectedBalls = params.expectedBalls;
  envelope.d = params.d;
  if (params.totalEpochs > 0) {
    envelope.warmupSteps = std::max<std::int64_t>(8, params.totalEpochs / 4);
  }
  set.add(std::make_unique<GapEnvelopeMonitor>(envelope));
  set.add(std::make_unique<DriftMonitor>());
}

void installProcessMonitors(MonitorSet& set, std::int64_t n, std::int64_t m) {
  set.add(std::make_unique<LoadConservationMonitor>());
  set.add(std::make_unique<ConvergenceMonitor>(n, m, ConvergenceEnvelope{}));
}

}  // namespace rlslb::obs
