#include "report/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/assert.hpp"

namespace rlslb::report {

Json::Json(bool v) : kind_(Kind::Bool), bool_(v) {}
Json::Json(int v) : kind_(Kind::Int), int_(v) {}
Json::Json(std::int64_t v) : kind_(Kind::Int), int_(v) {}
Json::Json(std::uint64_t v) {
  if (v <= static_cast<std::uint64_t>(INT64_MAX)) {
    kind_ = Kind::Int;
    int_ = static_cast<std::int64_t>(v);
  } else {
    kind_ = Kind::String;
    string_ = std::to_string(v);
  }
}
Json::Json(double v) : kind_(Kind::Double), double_(v) {}
Json::Json(const char* v) : kind_(Kind::String), string_(v) {}
Json::Json(std::string v) : kind_(Kind::String), string_(std::move(v)) {}

Json Json::array() {
  Json j;
  j.kind_ = Kind::Array;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::Object;
  return j;
}

bool Json::asBool() const {
  RLSLB_ASSERT(kind_ == Kind::Bool);
  return bool_;
}

std::int64_t Json::asInt() const {
  RLSLB_ASSERT(kind_ == Kind::Int);
  return int_;
}

double Json::asDouble() const {
  RLSLB_ASSERT(kind_ == Kind::Int || kind_ == Kind::Double);
  return kind_ == Kind::Int ? static_cast<double>(int_) : double_;
}

const std::string& Json::asString() const {
  RLSLB_ASSERT(kind_ == Kind::String);
  return string_;
}

Json& Json::push(Json v) {
  RLSLB_ASSERT(kind_ == Kind::Array);
  items_.push_back(std::move(v));
  return *this;
}

Json& Json::set(const std::string& key, Json v) {
  RLSLB_ASSERT(kind_ == Kind::Object);
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (keys_[i] == key) {
      items_[i] = std::move(v);
      return *this;
    }
  }
  keys_.push_back(key);
  items_.push_back(std::move(v));
  return *this;
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (keys_[i] == key) return &items_[i];
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = find(key);
  RLSLB_ASSERT_MSG(v != nullptr, "Json::at: missing object key");
  return *v;
}

const Json& Json::at(std::size_t i) const {
  RLSLB_ASSERT(kind_ == Kind::Array && i < items_.size());
  return items_[i];
}

void appendJsonString(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out.push_back(c);  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out.push_back('"');
}

std::string formatJsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  RLSLB_ASSERT(res.ec == std::errc{});
  return std::string(buf, res.ptr);
}

void Json::dumpTo(std::string& out) const {
  switch (kind_) {
    case Kind::Null:
      out += "null";
      break;
    case Kind::Bool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::Int:
      out += std::to_string(int_);
      break;
    case Kind::Double:
      out += formatJsonNumber(double_);
      break;
    case Kind::String:
      appendJsonString(out, string_);
      break;
    case Kind::Array:
      out.push_back('[');
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i != 0) out.push_back(',');
        items_[i].dumpTo(out);
      }
      out.push_back(']');
      break;
    case Kind::Object:
      out.push_back('{');
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i != 0) out.push_back(',');
        appendJsonString(out, keys_[i]);
        out.push_back(':');
        items_[i].dumpTo(out);
      }
      out.push_back('}');
      break;
  }
}

std::string Json::dump() const {
  std::string out;
  dumpTo(out);
  return out;
}

bool operator==(const Json& a, const Json& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Json::Kind::Null: return true;
    case Json::Kind::Bool: return a.bool_ == b.bool_;
    case Json::Kind::Int: return a.int_ == b.int_;
    case Json::Kind::Double: return a.double_ == b.double_;
    case Json::Kind::String: return a.string_ == b.string_;
    case Json::Kind::Array: return a.items_ == b.items_;
    case Json::Kind::Object: return a.keys_ == b.keys_ && a.items_ == b.items_;
  }
  return false;
}

namespace {

// Recursive-descent parser. Depth is bounded to keep malformed input from
// exhausting the stack; report files nest three or four levels deep.
class Parser {
 public:
  Parser(const std::string& text, std::string* error) : text_(text), error_(error) {}

  Json run() {
    Json v = parseValue(0);
    if (failed_) return Json();
    skipWs();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      return Json();
    }
    return v;
  }

  [[nodiscard]] bool failed() const { return failed_; }

 private:
  static constexpr int kMaxDepth = 64;

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
  bool failed_ = false;

  void fail(const std::string& what) {
    if (!failed_ && error_ != nullptr) {
      *error_ = what + " at offset " + std::to_string(pos_);
    }
    failed_ = true;
  }

  void skipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consumeWord(const char* w) {
    std::size_t len = 0;
    while (w[len] != '\0') ++len;
    if (text_.compare(pos_, len, w) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Json parseValue(int depth) {
    if (depth > kMaxDepth) {
      fail("nesting too deep");
      return Json();
    }
    skipWs();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return Json();
    }
    const char c = text_[pos_];
    if (c == '{') return parseObject(depth);
    if (c == '[') return parseArray(depth);
    if (c == '"') return parseString();
    if (c == 't') {
      if (consumeWord("true")) return Json(true);
      fail("bad literal");
      return Json();
    }
    if (c == 'f') {
      if (consumeWord("false")) return Json(false);
      fail("bad literal");
      return Json();
    }
    if (c == 'n') {
      if (consumeWord("null")) return Json(nullptr);
      fail("bad literal");
      return Json();
    }
    return parseNumber();
  }

  Json parseObject(int depth) {
    consume('{');
    Json obj = Json::object();
    skipWs();
    if (consume('}')) return obj;
    while (true) {
      skipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        fail("expected object key");
        return Json();
      }
      Json key = parseString();
      if (failed_) return Json();
      skipWs();
      if (!consume(':')) {
        fail("expected ':'");
        return Json();
      }
      Json value = parseValue(depth + 1);
      if (failed_) return Json();
      obj.set(key.asString(), std::move(value));
      skipWs();
      if (consume(',')) continue;
      if (consume('}')) return obj;
      fail("expected ',' or '}'");
      return Json();
    }
  }

  Json parseArray(int depth) {
    consume('[');
    Json arr = Json::array();
    skipWs();
    if (consume(']')) return arr;
    while (true) {
      Json value = parseValue(depth + 1);
      if (failed_) return Json();
      arr.push(std::move(value));
      skipWs();
      if (consume(',')) continue;
      if (consume(']')) return arr;
      fail("expected ',' or ']'");
      return Json();
    }
  }

  Json parseString() {
    consume('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Json(std::move(out));
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return Json();
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
              return Json();
            }
          }
          // Encode the code point as UTF-8. Surrogate pairs are not
          // recombined (the writer never emits them; lone surrogates
          // round-trip as their raw 3-byte encoding).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("bad escape character");
          return Json();
      }
    }
    fail("unterminated string");
    return Json();
  }

  Json parseNumber() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    bool isDouble = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        isDouble = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("expected a value");
      return Json();
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (!isDouble) {
      std::int64_t iv = 0;
      const auto res = std::from_chars(token.data(), token.data() + token.size(), iv);
      if (res.ec == std::errc{} && res.ptr == token.data() + token.size()) return Json(iv);
      isDouble = true;  // overflow: fall through to double
    }
    char* end = nullptr;
    const double dv = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      fail("malformed number");
      return Json();
    }
    return Json(dv);
  }
};

}  // namespace

Json Json::parse(const std::string& text, std::string* error) {
  Parser p(text, error);
  Json v = p.run();
  if (p.failed()) return Json();
  return v;
}

}  // namespace rlslb::report
