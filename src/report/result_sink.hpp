// ResultSink: machine-readable experiment output as JSON-lines.
//
// One run of the `rlslb` driver (or a standalone bench harness with
// --out=FILE) produces one JSONL stream: a run manifest first, then a
// small fixed vocabulary of record types per scenario. Every record is one
// line, one JSON object, with a "type" field:
//
//   {"type":"manifest", ...}           run provenance: seed, scale, threads,
//                                      git sha, compiler, host, start time
//   {"type":"scenario_start", ...}     scenario name, paper ref, parameters
//   {"type":"table", ...}              one experiment table (headers + rows)
//   {"type":"timing", ...}             wall-clock measurements (machine-
//                                      dependent by nature)
//   {"type":"throughput", ...}         scenario events/sec (the serving
//                                      scenarios' CI-gated rate metric)
//   {"type":"metrics", ...}            merged obs::MetricsRegistry snapshot
//                                      (counters/gauges/histograms/sketches;
//                                      the phase-timing source for
//                                      scripts/perf_report.py)
//   {"type":"anomaly", ...}            one conformance-monitor violation
//                                      (obs/monitor.hpp): monitor, metric,
//                                      severity, step/time, value vs bound
//   {"type":"conformance", ...}        per-scenario monitor summary: check
//                                      and anomaly counts + gap/latency
//                                      sketch snapshots
//   {"type":"frontier", ...}           one capacity-sweep cell (serve_capacity):
//                                      n, load factor, trace shape, backend,
//                                      gap stats + events/sec, p99 ns/event,
//                                      state bytes, bytes/ball, peak RSS
//   {"type":"scenario_end", ...}       scenario wall-clock seconds
//
// Determinism contract (asserted by tests/test_scenario.cpp and relied on
// by CI's results diff): for a fixed seed, every "scenario_start" and
// "table" record is byte-identical across runs, thread counts, and
// machines; all wall-clock and host-dependent data is confined to
// "manifest", "timing", "throughput", "metrics", "conformance",
// "frontier", and "scenario_end" records ("metrics" carries phase nanoseconds, so the
// whole record type is excluded even though its semantic counters are
// deterministic; "conformance" likewise via its latency sketch).
// "anomaly" records from simulated-state monitors are deterministic;
// wall-clock monitors (latency_drift) may differ run to run.
//
// The sink is not thread-safe; scenarios run sequentially and emit tables
// from the calling thread (replication fan-out stays below this layer).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "report/json.hpp"

namespace rlslb {
class Table;  // util/table.hpp
}

namespace rlslb::report {

/// Provenance header for one driver run.
struct RunManifest {
  std::string tool = "rlslb";
  std::string version;      // project version (x.y.z)
  std::uint64_t seed = 0;
  std::string scaleName;    // small | default | full
  double scale = 1.0;
  std::int64_t reps = 0;    // 0 = per-experiment default
  int threadsRequested = 0; // the --threads knob (0 = hardware)
  int threadsResolved = 1;  // actual pool concurrency
  std::string gitSha;       // build-time git revision, "unknown" outside git
  std::string compiler;     // e.g. "gcc 12.2.0"
  std::string buildType;    // e.g. "Release"
  std::string host;         // gethostname(), "unknown" on failure
  std::int64_t startedUnixMs = 0;

  [[nodiscard]] Json toJson() const;
};

/// Fill the environment-derived fields (version, git sha, compiler, host,
/// start timestamp); the caller sets the run knobs.
RunManifest makeManifest();

/// The Table -> Json bridge: {"title":..., "headers":[...], "rows":[[...]]}.
/// Cells stay the formatted strings the ASCII table prints, so the JSON is
/// exactly as deterministic as the table itself.
Json tableToJson(const Table& table, const std::string& title);

class ResultSink {
 public:
  /// `out == nullptr` disables the sink: every emit is a cheap no-op, so
  /// scenario code calls the sink unconditionally.
  explicit ResultSink(std::ostream* out = nullptr) : out_(out) {}

  [[nodiscard]] bool enabled() const { return out_ != nullptr; }

  void writeManifest(const RunManifest& manifest);
  void beginScenario(const std::string& name, const std::string& paperRef,
                     const Json& params);
  /// Deterministic experiment table (type "table").
  void writeTable(const std::string& scenario, const std::string& title, const Table& table);
  /// Wall-clock table (type "timing"): same payload shape, excluded from
  /// the determinism contract.
  void writeTimingTable(const std::string& scenario, const std::string& title,
                        const Table& table);
  /// Rate metric (type "throughput"): the serving scenarios' events/sec,
  /// gated by scripts/compare_results.py next to the scenario wall-clocks.
  /// Wall-clock derived, hence excluded from the determinism contract.
  void writeThroughput(const std::string& scenario, std::int64_t events,
                       double eventsPerSec);
  /// Telemetry snapshot (type "metrics"): `snapshot` is
  /// obs::MetricsRegistry::toJson() -- its counters/gauges/histograms keys
  /// are spliced into the record. Wall-clock-bearing (phase ns counters),
  /// hence excluded from the determinism contract.
  void writeMetrics(const std::string& scenario, const Json& snapshot);
  /// One monitor violation (type "anomaly"): `anomaly` is
  /// obs::anomalyToJson() -- its fields are spliced into the record.
  void writeAnomaly(const std::string& scenario, const Json& anomaly);
  /// Per-scenario monitor summary (type "conformance"): `summary` is
  /// obs::MonitorSet::summaryJson(), fields spliced like writeMetrics.
  void writeConformance(const std::string& scenario, const Json& summary);
  /// One capacity-sweep cell (type "frontier"): `cell` carries the sweep
  /// coordinates and measurements (see serve_capacity). Wall-clock and
  /// allocator-capacity bearing, hence excluded from the determinism
  /// contract; the deterministic part of a sweep goes out as "table"
  /// records.
  void writeFrontier(const std::string& scenario, const Json& cell);
  void endScenario(const std::string& name, double wallSeconds);

  /// Escape hatch: write an arbitrary record (must be an object; a "type"
  /// field is required so downstream tools can dispatch).
  void writeRecord(const Json& record);

 private:
  std::ostream* out_;

  void writeLine(const Json& record);
};

}  // namespace rlslb::report
