// Dependency-free JSON value, writer, and parser for the report layer.
//
// The scenario subsystem serializes every experiment table, timing, and
// parameter set as JSON-lines (see result_sink.hpp), and CI diffs those
// files run-over-run, so the representation is built for determinism:
//   - objects preserve insertion order (no hash-map reordering between
//     runs or standard-library versions);
//   - doubles print via std::to_chars shortest round-trip form, so a
//     value written on one machine parses back bit-identical on another;
//   - non-finite doubles serialize as null (JSON has no NaN/Inf).
// The parser accepts exactly what the writer emits plus standard JSON
// (whitespace, nested containers, \u escapes); it exists so tests can
// assert write -> parse -> write stability and so tools can consume the
// output without a third-party library.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rlslb::report {

class Json {
 public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Json() = default;                       // null
  Json(std::nullptr_t) {}                 // NOLINT(google-explicit-constructor)
  Json(bool v);                           // NOLINT(google-explicit-constructor)
  Json(int v);                            // NOLINT(google-explicit-constructor)
  Json(std::int64_t v);                   // NOLINT(google-explicit-constructor)
  /// Values above INT64_MAX (e.g. xor-scrambled seeds) become decimal
  /// strings rather than silently re-signing.
  Json(std::uint64_t v);                  // NOLINT(google-explicit-constructor)
  Json(double v);                         // NOLINT(google-explicit-constructor)
  Json(const char* v);                    // NOLINT(google-explicit-constructor)
  Json(std::string v);                    // NOLINT(google-explicit-constructor)

  static Json array();
  static Json object();

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool isNull() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool isObject() const { return kind_ == Kind::Object; }
  [[nodiscard]] bool isArray() const { return kind_ == Kind::Array; }

  [[nodiscard]] bool asBool() const;
  [[nodiscard]] std::int64_t asInt() const;
  /// Int or Double, widened to double.
  [[nodiscard]] double asDouble() const;
  [[nodiscard]] const std::string& asString() const;

  /// Array/object element count; 0 for scalars.
  [[nodiscard]] std::size_t size() const { return items_.size(); }

  /// Array append. Returns *this for chaining.
  Json& push(Json v);
  /// Object insert-or-assign, preserving first-insertion order.
  Json& set(const std::string& key, Json v);

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Json* find(const std::string& key) const;
  /// Object member access; aborts when absent.
  [[nodiscard]] const Json& at(const std::string& key) const;
  /// Array element access; aborts when out of range.
  [[nodiscard]] const Json& at(std::size_t i) const;
  /// Object keys in insertion order (empty for non-objects).
  [[nodiscard]] const std::vector<std::string>& keys() const { return keys_; }

  /// Compact single-line serialization (the JSONL row format).
  [[nodiscard]] std::string dump() const;

  /// Parse a complete JSON document. On failure returns null and, when
  /// `error` is non-null, stores a position-annotated message.
  static Json parse(const std::string& text, std::string* error = nullptr);

  friend bool operator==(const Json& a, const Json& b);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> items_;        // array elements, or object values
  std::vector<std::string> keys_;  // parallel to items_ when Object

  void dumpTo(std::string& out) const;
};

/// Append `s` to `out` as a quoted JSON string with RFC 8259 escaping
/// (UTF-8 bytes pass through; control characters become \u00XX).
void appendJsonString(std::string& out, const std::string& s);

/// Shortest round-trip decimal form of `v` (to_chars); "null" if non-finite.
std::string formatJsonNumber(double v);

}  // namespace rlslb::report
