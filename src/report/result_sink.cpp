#include "report/result_sink.hpp"

#include <chrono>
#include <ostream>

#include "util/assert.hpp"
#include "util/table.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#ifndef RLSLB_GIT_SHA
#define RLSLB_GIT_SHA "unknown"
#endif
#ifndef RLSLB_VERSION_STRING
#define RLSLB_VERSION_STRING "0.0.0"
#endif
#ifndef RLSLB_BUILD_TYPE
#define RLSLB_BUILD_TYPE "unknown"
#endif

namespace rlslb::report {

namespace {

std::string compilerString() {
#if defined(__clang__)
  return std::string("clang ") + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." + std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return std::string("gcc ") + std::to_string(__GNUC__) + "." + std::to_string(__GNUC_MINOR__) +
         "." + std::to_string(__GNUC_PATCHLEVEL__);
#elif defined(_MSC_VER)
  return std::string("msvc ") + std::to_string(_MSC_VER);
#else
  return "unknown";
#endif
}

std::string hostString() {
#if defined(__unix__) || defined(__APPLE__)
  char buf[256];
  if (gethostname(buf, sizeof(buf)) == 0) {
    buf[sizeof(buf) - 1] = '\0';
    return buf;
  }
#endif
  return "unknown";
}

}  // namespace

RunManifest makeManifest() {
  RunManifest m;
  m.version = RLSLB_VERSION_STRING;
  m.gitSha = RLSLB_GIT_SHA;
  m.compiler = compilerString();
  m.buildType = RLSLB_BUILD_TYPE;
  m.host = hostString();
  m.startedUnixMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::system_clock::now().time_since_epoch())
                        .count();
  return m;
}

Json RunManifest::toJson() const {
  Json j = Json::object();
  j.set("type", "manifest");
  j.set("tool", tool);
  j.set("version", version);
  j.set("seed", seed);
  j.set("scale", scaleName);
  j.set("scale_factor", scale);
  j.set("reps", reps);
  j.set("threads_requested", threadsRequested);
  j.set("threads_resolved", threadsResolved);
  j.set("git_sha", gitSha);
  j.set("compiler", compiler);
  j.set("build_type", buildType);
  j.set("host", host);
  j.set("started_unix_ms", startedUnixMs);
  return j;
}

Json tableToJson(const Table& table, const std::string& title) {
  Json headers = Json::array();
  for (std::size_t c = 0; c < table.numCols(); ++c) headers.push(table.header(c));
  Json rows = Json::array();
  for (std::size_t r = 0; r < table.numRows(); ++r) {
    Json row = Json::array();
    for (std::size_t c = 0; c < table.numCols(); ++c) row.push(table.at(r, c));
    rows.push(std::move(row));
  }
  Json j = Json::object();
  j.set("title", title);
  j.set("headers", std::move(headers));
  j.set("rows", std::move(rows));
  return j;
}

void ResultSink::writeLine(const Json& record) {
  RLSLB_ASSERT_MSG(record.isObject() && record.find("type") != nullptr,
                   "every JSONL record is an object with a \"type\" field");
  if (out_ == nullptr) return;
  *out_ << record.dump() << '\n';
  out_->flush();  // each line is a complete record even if the run dies
}

void ResultSink::writeManifest(const RunManifest& manifest) {
  if (out_ == nullptr) return;
  writeLine(manifest.toJson());
}

void ResultSink::beginScenario(const std::string& name, const std::string& paperRef,
                               const Json& params) {
  if (out_ == nullptr) return;
  Json j = Json::object();
  j.set("type", "scenario_start");
  j.set("scenario", name);
  j.set("paper_ref", paperRef);
  j.set("params", params);
  writeLine(j);
}

void ResultSink::writeTable(const std::string& scenario, const std::string& title,
                            const Table& table) {
  if (out_ == nullptr) return;
  Json j = tableToJson(table, title);
  Json rec = Json::object();
  rec.set("type", "table");
  rec.set("scenario", scenario);
  rec.set("title", j.at("title"));
  rec.set("headers", j.at("headers"));
  rec.set("rows", j.at("rows"));
  writeLine(rec);
}

void ResultSink::writeTimingTable(const std::string& scenario, const std::string& title,
                                  const Table& table) {
  if (out_ == nullptr) return;
  Json j = tableToJson(table, title);
  Json rec = Json::object();
  rec.set("type", "timing");
  rec.set("scenario", scenario);
  rec.set("title", j.at("title"));
  rec.set("headers", j.at("headers"));
  rec.set("rows", j.at("rows"));
  writeLine(rec);
}

void ResultSink::writeThroughput(const std::string& scenario, std::int64_t events,
                                 double eventsPerSec) {
  if (out_ == nullptr) return;
  Json j = Json::object();
  j.set("type", "throughput");
  j.set("scenario", scenario);
  j.set("events", events);
  j.set("events_per_sec", eventsPerSec);
  writeLine(j);
}

void ResultSink::writeMetrics(const std::string& scenario, const Json& snapshot) {
  if (out_ == nullptr) return;
  RLSLB_ASSERT_MSG(snapshot.isObject(), "metrics snapshot must be a JSON object");
  Json rec = Json::object();
  rec.set("type", "metrics");
  rec.set("scenario", scenario);
  for (const std::string& key : snapshot.keys()) rec.set(key, snapshot.at(key));
  writeLine(rec);
}

void ResultSink::writeAnomaly(const std::string& scenario, const Json& anomaly) {
  if (out_ == nullptr) return;
  RLSLB_ASSERT_MSG(anomaly.isObject(), "anomaly payload must be a JSON object");
  Json rec = Json::object();
  rec.set("type", "anomaly");
  rec.set("scenario", scenario);
  for (const std::string& key : anomaly.keys()) rec.set(key, anomaly.at(key));
  writeLine(rec);
}

void ResultSink::writeConformance(const std::string& scenario, const Json& summary) {
  if (out_ == nullptr) return;
  RLSLB_ASSERT_MSG(summary.isObject(), "conformance summary must be a JSON object");
  Json rec = Json::object();
  rec.set("type", "conformance");
  rec.set("scenario", scenario);
  for (const std::string& key : summary.keys()) rec.set(key, summary.at(key));
  writeLine(rec);
}

void ResultSink::writeFrontier(const std::string& scenario, const Json& cell) {
  if (out_ == nullptr) return;
  RLSLB_ASSERT_MSG(cell.isObject(), "frontier cell must be a JSON object");
  Json rec = Json::object();
  rec.set("type", "frontier");
  rec.set("scenario", scenario);
  for (const std::string& key : cell.keys()) rec.set(key, cell.at(key));
  writeLine(rec);
}

void ResultSink::endScenario(const std::string& name, double wallSeconds) {
  if (out_ == nullptr) return;
  Json j = Json::object();
  j.set("type", "scenario_end");
  j.set("scenario", name);
  j.set("wall_s", wallSeconds);
  writeLine(j);
}

void ResultSink::writeRecord(const Json& record) { writeLine(record); }

}  // namespace rlslb::report
