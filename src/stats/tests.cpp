#include "stats/tests.hpp"

#include <algorithm>
#include <cmath>

#include "stats/special.hpp"
#include "util/assert.hpp"

namespace rlslb::stats {

TestResult mannWhitneyU(const std::vector<double>& a, const std::vector<double>& b) {
  RLSLB_ASSERT(!a.empty() && !b.empty());
  const std::size_t na = a.size();
  const std::size_t nb = b.size();

  struct Tagged {
    double v;
    int who;
  };
  std::vector<Tagged> all;
  all.reserve(na + nb);
  for (double v : a) all.push_back({v, 0});
  for (double v : b) all.push_back({v, 1});
  std::sort(all.begin(), all.end(), [](const Tagged& x, const Tagged& y) { return x.v < y.v; });

  // Midranks with tie bookkeeping.
  double rankSumA = 0.0;
  double tieTerm = 0.0;  // sum over tie groups of (t^3 - t)
  std::size_t i = 0;
  while (i < all.size()) {
    std::size_t j = i;
    while (j < all.size() && all[j].v == all[i].v) ++j;
    const double t = static_cast<double>(j - i);
    const double midrank = (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k < j; ++k) {
      if (all[k].who == 0) rankSumA += midrank;
    }
    if (t > 1.0) tieTerm += t * t * t - t;
    i = j;
  }

  const double nad = static_cast<double>(na);
  const double nbd = static_cast<double>(nb);
  const double u = rankSumA - nad * (nad + 1.0) / 2.0;
  const double meanU = nad * nbd / 2.0;
  const double nTot = nad + nbd;
  const double varU =
      nad * nbd / 12.0 * ((nTot + 1.0) - tieTerm / (nTot * (nTot - 1.0)));

  TestResult res;
  res.statistic = u;
  if (varU <= 0.0) {
    // All observations tied: the samples are indistinguishable.
    res.pValue = 1.0;
    return res;
  }
  const double z = (u - meanU) / std::sqrt(varU);
  res.pValue = 2.0 * (1.0 - normalCdf(std::fabs(z)));
  if (res.pValue > 1.0) res.pValue = 1.0;
  return res;
}

TestResult ksTwoSample(const std::vector<double>& a, const std::vector<double>& b) {
  RLSLB_ASSERT(!a.empty() && !b.empty());
  std::vector<double> sa = a;
  std::vector<double> sb = b;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());

  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  double d = 0.0;
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < sa.size() && ib < sb.size()) {
    const double va = sa[ia];
    const double vb = sb[ib];
    const double v = std::min(va, vb);
    while (ia < sa.size() && sa[ia] <= v) ++ia;
    while (ib < sb.size() && sb[ib] <= v) ++ib;
    const double fa = static_cast<double>(ia) / na;
    const double fb = static_cast<double>(ib) / nb;
    d = std::max(d, std::fabs(fa - fb));
  }

  TestResult res;
  res.statistic = d;
  const double en = std::sqrt(na * nb / (na + nb));
  // Stephens' small-sample adjustment.
  res.pValue = kolmogorovSurvival((en + 0.12 + 0.11 / en) * d);
  return res;
}

TestResult ksOneSample(const std::vector<double>& samples,
                       const std::function<double(double)>& cdf) {
  RLSLB_ASSERT(!samples.empty());
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double f = cdf(sorted[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max(d, std::max(std::fabs(f - lo), std::fabs(hi - f)));
  }
  TestResult res;
  res.statistic = d;
  const double en = std::sqrt(n);
  res.pValue = kolmogorovSurvival((en + 0.12 + 0.11 / en) * d);
  return res;
}

TestResult chiSquareGof(const std::vector<std::int64_t>& observed,
                        const std::vector<double>& expected, int extraConstraints) {
  RLSLB_ASSERT(observed.size() == expected.size() && observed.size() >= 2);
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    RLSLB_ASSERT(expected[i] > 0.0);
    const double diff = static_cast<double>(observed[i]) - expected[i];
    stat += diff * diff / expected[i];
  }
  const int dof = static_cast<int>(observed.size()) - 1 - extraConstraints;
  RLSLB_ASSERT(dof >= 1);
  TestResult res;
  res.statistic = stat;
  res.pValue = chiSquareSurvival(stat, dof);
  return res;
}

}  // namespace rlslb::stats
