// Percentile bootstrap confidence intervals. Balancing-time distributions
// are heavy-tailed near phase boundaries, where the t-interval on the mean
// is optimistic; the w.h.p. experiment (E4) reports bootstrap intervals on
// tail quantiles instead.
#pragma once

#include <functional>
#include <vector>

#include "rng/xoshiro256pp.hpp"

namespace rlslb::stats {

struct BootstrapCi {
  double estimate = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};

/// Percentile bootstrap CI at the given confidence for an arbitrary statistic
/// of the sample (e.g. mean, median, p99 via a lambda).
BootstrapCi bootstrapCi(const std::vector<double>& samples,
                        const std::function<double(const std::vector<double>&)>& statistic,
                        int resamples, double confidence, rng::Xoshiro256pp& eng);

}  // namespace rlslb::stats
