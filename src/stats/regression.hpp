// Ordinary least squares on user-supplied feature rows. The Theorem-1
// experiment fits  E[T] ~ a*ln(n) + b*n^2/m + c  and inspects the
// coefficients and R^2; nothing fancier is needed, so this solves the normal
// equations directly.
#pragma once

#include <vector>

#include "stats/linalg.hpp"

namespace rlslb::stats {

struct OlsFit {
  std::vector<double> coefficients;
  double r2 = 0.0;           // coefficient of determination
  double residualRms = 0.0;  // sqrt(mean squared residual)
  bool ok = false;           // false if the normal equations were singular
};

/// rows[i] is the feature vector of observation i; y[i] its response.
/// All rows must have equal length k >= 1 (include a constant-1 feature for
/// an intercept).
OlsFit olsFit(const std::vector<std::vector<double>>& rows, const std::vector<double>& y);

}  // namespace rlslb::stats
