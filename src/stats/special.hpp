// Special functions backing the hypothesis tests and confidence intervals.
// Self-contained implementations (no external math library): normal CDF and
// quantile, regularized incomplete gamma, and the Kolmogorov distribution.
#pragma once

namespace rlslb::stats {

/// Standard normal CDF.
double normalCdf(double x);

/// Standard normal quantile (inverse CDF), Acklam's rational approximation
/// refined with one Halley step; |error| < 1e-12 on (0, 1).
double normalQuantile(double p);

/// Regularized lower incomplete gamma P(a, x); Q(a, x) = 1 - P(a, x).
/// Series for x < a + 1, continued fraction otherwise (Numerical-Recipes
/// style, to double precision).
double gammaP(double a, double x);
double gammaQ(double a, double x);

/// Kolmogorov distribution survival function
/// Q_KS(x) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 x^2); Q(0+) = 1.
double kolmogorovSurvival(double x);

/// Chi-square survival function with k degrees of freedom.
double chiSquareSurvival(double x, int dof);

/// Student-t two-sided 97.5% quantile (for 95% CIs); exact table for small
/// dof, normal limit beyond.
double tQuantile975(int dof);

}  // namespace rlslb::stats
