#include "stats/regression.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace rlslb::stats {

OlsFit olsFit(const std::vector<std::vector<double>>& rows, const std::vector<double>& y) {
  OlsFit fit;
  RLSLB_ASSERT(!rows.empty() && rows.size() == y.size());
  const std::size_t k = rows[0].size();
  RLSLB_ASSERT(k >= 1);
  for (const auto& r : rows) RLSLB_ASSERT(r.size() == k);

  // Normal equations X^T X beta = X^T y.
  Matrix xtx(k, k, 0.0);
  std::vector<double> xty(k, 0.0);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t a = 0; a < k; ++a) {
      xty[a] += rows[i][a] * y[i];
      for (std::size_t b = 0; b < k; ++b) xtx.at(a, b) += rows[i][a] * rows[i][b];
    }
  }
  if (!solveLinearSystem(std::move(xtx), std::move(xty), fit.coefficients)) {
    fit.ok = false;
    return fit;
  }
  fit.ok = true;

  double yMean = 0.0;
  for (double v : y) yMean += v;
  yMean /= static_cast<double>(y.size());
  double ssTot = 0.0;
  double ssRes = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    double pred = 0.0;
    for (std::size_t a = 0; a < k; ++a) pred += fit.coefficients[a] * rows[i][a];
    ssRes += (y[i] - pred) * (y[i] - pred);
    ssTot += (y[i] - yMean) * (y[i] - yMean);
  }
  fit.residualRms = std::sqrt(ssRes / static_cast<double>(y.size()));
  fit.r2 = ssTot > 0.0 ? 1.0 - ssRes / ssTot : 1.0;
  return fit;
}

}  // namespace rlslb::stats
