// Two-sample hypothesis tests used by the validation suite:
//  - Mann-Whitney U:  are two balancing-time samples from the same
//    distribution? (E10: RLS vs strict-RLS must NOT separate.)
//  - Kolmogorov-Smirnov: distributional equality of engine outputs (E13).
//  - Chi-square goodness of fit: uniformity of samplers.
// All return asymptotic p-values; callers use generous significance levels
// appropriate for automated regression testing.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace rlslb::stats {

struct TestResult {
  double statistic = 0.0;
  double pValue = 1.0;
};

/// Two-sided Mann-Whitney U with normal approximation and tie correction.
TestResult mannWhitneyU(const std::vector<double>& a, const std::vector<double>& b);

/// Two-sample Kolmogorov-Smirnov, asymptotic p-value.
TestResult ksTwoSample(const std::vector<double>& a, const std::vector<double>& b);

/// One-sample Kolmogorov-Smirnov against a fully specified continuous CDF,
/// asymptotic p-value. This is how the simulators are validated against the
/// exact uniformization CDF of the tiny-system chain (docs/EXPERIMENTS.md, E13).
TestResult ksOneSample(const std::vector<double>& samples,
                       const std::function<double(double)>& cdf);

/// Chi-square goodness of fit of observed counts against expected counts
/// (same length, expected > 0, dof = len - 1 - extraConstraints).
TestResult chiSquareGof(const std::vector<std::int64_t>& observed,
                        const std::vector<double>& expected, int extraConstraints = 0);

}  // namespace rlslb::stats
