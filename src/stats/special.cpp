#include "stats/special.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace rlslb::stats {

double normalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double normalQuantile(double p) {
  RLSLB_ASSERT(p > 0.0 && p < 1.0);
  // Acklam's approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double pLow = 0.02425;
  double x;
  if (p < pLow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - pLow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step using the exact CDF.
  const double e = normalCdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

namespace {

/// P(a, x) by power series, valid for x < a + 1.
double gammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * 1e-16) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Q(a, x) by Lentz continued fraction, valid for x >= a + 1.
double gammaQContinued(double a, double x) {
  constexpr double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-16) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double gammaP(double a, double x) {
  RLSLB_ASSERT(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gammaPSeries(a, x);
  return 1.0 - gammaQContinued(a, x);
}

double gammaQ(double a, double x) {
  RLSLB_ASSERT(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gammaPSeries(a, x);
  return gammaQContinued(a, x);
}

double kolmogorovSurvival(double x) {
  if (x <= 0.0) return 1.0;
  if (x >= 8.0) return 0.0;
  double sum = 0.0;
  for (int k = 1; k <= 200; ++k) {
    const double term = std::exp(-2.0 * static_cast<double>(k) * static_cast<double>(k) * x * x);
    sum += (k % 2 == 1 ? term : -term);
    if (term < 1e-18) break;
  }
  const double q = 2.0 * sum;
  if (q < 0.0) return 0.0;
  if (q > 1.0) return 1.0;
  return q;
}

double chiSquareSurvival(double x, int dof) {
  RLSLB_ASSERT(dof >= 1);
  if (x <= 0.0) return 1.0;
  return gammaQ(static_cast<double>(dof) / 2.0, x / 2.0);
}

double tQuantile975(int dof) {
  RLSLB_ASSERT(dof >= 1);
  static constexpr double table[] = {
      /* dof=1..30 */
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (dof <= 30) return table[dof - 1];
  if (dof <= 40) return 2.021;
  if (dof <= 60) return 2.000;
  if (dof <= 120) return 1.980;
  return 1.960;
}

}  // namespace rlslb::stats
