// Minimal dense linear algebra: row-major matrix, Gaussian elimination with
// partial pivoting. Backs the OLS regression and the exact absorbing-chain
// solver; systems here are small (tens to a few thousand unknowns).
#pragma once

#include <cstddef>
#include <vector>

namespace rlslb::stats {

class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

 private:
  std::size_t rows_, cols_;
  std::vector<double> data_;
};

/// Solve A x = b by Gaussian elimination with partial pivoting. A is consumed
/// as the working copy. Returns false if the system is (numerically) singular.
bool solveLinearSystem(Matrix a, std::vector<double> b, std::vector<double>& xOut);

}  // namespace rlslb::stats
