#include "stats/running_stat.hpp"

#include <algorithm>
#include <cmath>

namespace rlslb::stats {

void RunningStat::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::sem() const {
  if (count_ < 1) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

}  // namespace rlslb::stats
