#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "stats/running_stat.hpp"
#include "stats/special.hpp"
#include "util/assert.hpp"

namespace rlslb::stats {

double quantile(std::vector<double> samples, double q) {
  RLSLB_ASSERT(!samples.empty());
  RLSLB_ASSERT(q >= 0.0 && q <= 1.0);
  std::sort(samples.begin(), samples.end());
  const double h = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = static_cast<std::size_t>(std::ceil(h));
  const double frac = h - std::floor(h);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double pearsonCorrelation(const std::vector<double>& x, const std::vector<double>& y) {
  RLSLB_ASSERT(x.size() == y.size() && x.size() >= 2);
  const double n = static_cast<double>(x.size());
  double mx = 0.0;
  double my = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

Summary summarize(const std::vector<double>& samples) {
  RLSLB_ASSERT(!samples.empty());
  RunningStat rs;
  for (double x : samples) rs.add(x);

  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const auto pick = [&](double q) {
    const double h = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(h));
    const auto hi = static_cast<std::size_t>(std::ceil(h));
    const double frac = h - std::floor(h);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  };

  Summary s;
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.sem = rs.sem();
  s.ci95Half = s.count >= 2 ? tQuantile975(static_cast<int>(s.count - 1)) * s.sem : 0.0;
  s.min = sorted.front();
  s.p25 = pick(0.25);
  s.median = pick(0.5);
  s.p75 = pick(0.75);
  s.p90 = pick(0.90);
  s.p99 = pick(0.99);
  s.max = sorted.back();
  return s;
}

}  // namespace rlslb::stats
