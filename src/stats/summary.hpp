// Batch summary of a sample vector: moments, quantiles, and a Student-t
// confidence interval for the mean. Used to report every experiment cell.
#pragma once

#include <cstdint>
#include <vector>

namespace rlslb::stats {

struct Summary {
  std::int64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double sem = 0.0;
  double ci95Half = 0.0;  // half-width of the two-sided 95% CI on the mean
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Compute all fields; `samples` is copied for quantile selection.
Summary summarize(const std::vector<double>& samples);

/// Empirical quantile with linear interpolation (type-7, the numpy default).
double quantile(std::vector<double> samples, double q);

/// Pearson correlation coefficient of two equal-length samples
/// (0 if either is constant).
double pearsonCorrelation(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace rlslb::stats
