// Welford streaming moments with numerically stable parallel merge.
//
// Invariants: add() never loses precision to catastrophic cancellation (the
// m2 update is Welford's), and merge() is associative up to rounding, so the
// replication runner may combine per-thread accumulators in any fixed order
// and still satisfy the determinism contract of docs/EXPERIMENTS.md.
#pragma once

#include <cstdint>

namespace rlslb::stats {

class RunningStat {
 public:
  void add(double x);
  /// Combine with another accumulator (Chan et al. pairwise update); used to
  /// merge per-thread replication results deterministically.
  void merge(const RunningStat& other);

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Standard error of the mean.
  [[nodiscard]] double sem() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace rlslb::stats
