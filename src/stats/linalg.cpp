#include "stats/linalg.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace rlslb::stats {

bool solveLinearSystem(Matrix a, std::vector<double> b, std::vector<double>& xOut) {
  const std::size_t n = a.rows();
  RLSLB_ASSERT(a.cols() == n && b.size() == n);
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::fabs(a.at(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(a.at(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-300) return false;
    if (pivot != col) {
      for (std::size_t c = col; c < n; ++c) std::swap(a.at(col, c), a.at(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a.at(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a.at(r, col) * inv;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a.at(r, c) -= factor * a.at(col, c);
      b[r] -= factor * b[col];
    }
  }
  xOut.assign(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double v = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) v -= a.at(ri, c) * xOut[c];
    xOut[ri] = v / a.at(ri, ri);
  }
  return true;
}

}  // namespace rlslb::stats
