#include "stats/bootstrap.hpp"

#include <algorithm>

#include "rng/distributions.hpp"
#include "util/assert.hpp"

namespace rlslb::stats {

BootstrapCi bootstrapCi(const std::vector<double>& samples,
                        const std::function<double(const std::vector<double>&)>& statistic,
                        int resamples, double confidence, rng::Xoshiro256pp& eng) {
  RLSLB_ASSERT(!samples.empty());
  RLSLB_ASSERT(resamples >= 10);
  RLSLB_ASSERT(confidence > 0.0 && confidence < 1.0);

  BootstrapCi out;
  out.estimate = statistic(samples);

  std::vector<double> stats;
  stats.reserve(static_cast<std::size_t>(resamples));
  std::vector<double> resample(samples.size());
  for (int r = 0; r < resamples; ++r) {
    for (auto& v : resample) {
      v = samples[static_cast<std::size_t>(rng::uniformIndex(eng, samples.size()))];
    }
    stats.push_back(statistic(resample));
  }
  std::sort(stats.begin(), stats.end());
  const double alpha = (1.0 - confidence) / 2.0;
  const auto idx = [&](double q) {
    const double h = q * static_cast<double>(stats.size() - 1);
    return stats[static_cast<std::size_t>(h + 0.5)];
  };
  out.lo = idx(alpha);
  out.hi = idx(1.0 - alpha);
  return out;
}

}  // namespace rlslb::stats
