#include "workload/trace_io.hpp"

#include <bit>
#include <cstdlib>
#include <istream>
#include <ostream>

#include "report/json.hpp"
#include "util/assert.hpp"

namespace rlslb::workload {

const char* traceFormatName(TraceFormat format) {
  switch (format) {
    case TraceFormat::kJsonl: return "jsonl";
    case TraceFormat::kCsv: return "csv";
    case TraceFormat::kBinary: return "binary";
  }
  RLSLB_ASSERT_MSG(false, "unknown TraceFormat");
  return "?";
}

TraceFormat traceFormatFromPath(const std::string& path) {
  const auto endsWith = [&path](const char* suffix) {
    const std::string s(suffix);
    return path.size() >= s.size() && path.compare(path.size() - s.size(), s.size(), s) == 0;
  };
  if (endsWith(".csv")) return TraceFormat::kCsv;
  if (endsWith(".bin")) return TraceFormat::kBinary;
  return TraceFormat::kJsonl;
}

std::string formatTraceEvent(const Event& event) {
  std::string out = "{\"t\":";
  out += report::formatJsonNumber(event.time);
  out += ",\"kind\":\"";
  out += kindName(event.kind);
  out += "\",\"ball\":";
  out += std::to_string(event.ball);
  out += ",\"w\":";
  out += std::to_string(event.weight);
  out += "}";
  return out;
}

bool parseTraceEvent(const std::string& line, Event* out, std::string* error) {
  std::string parseError;
  const report::Json rec = report::Json::parse(line, &parseError);
  if (!parseError.empty()) {
    if (error != nullptr) *error = parseError;
    return false;
  }
  const report::Json* t = rec.find("t");
  const report::Json* kind = rec.find("kind");
  const report::Json* ball = rec.find("ball");
  const report::Json* w = rec.find("w");
  if (t == nullptr || kind == nullptr || ball == nullptr || w == nullptr) {
    if (error != nullptr) *error = "trace event missing one of t/kind/ball/w: " + line;
    return false;
  }
  EventKind kindValue{};
  if (!kindFromName(kind->asString(), &kindValue)) {
    if (error != nullptr) *error = "unknown trace event kind: " + kind->asString();
    return false;
  }
  out->time = t->asDouble();
  out->kind = kindValue;
  out->ball = ball->asInt();
  out->weight = w->asInt();
  return true;
}

std::string formatTraceEventCsv(const Event& event) {
  std::string out = report::formatJsonNumber(event.time);
  out += ',';
  out += kindName(event.kind);
  out += ',';
  out += std::to_string(event.ball);
  out += ',';
  out += std::to_string(event.weight);
  return out;
}

bool parseTraceEventCsv(const std::string& line, Event* out, std::string* error) {
  const auto fail = [&](const char* message) {
    if (error != nullptr) *error = std::string(message) + ": " + line;
    return false;
  };
  std::size_t fieldStart[4];
  std::size_t fieldEnd[4];
  std::size_t pos = 0;
  for (int f = 0; f < 4; ++f) {
    fieldStart[f] = pos;
    const std::size_t comma = line.find(',', pos);
    if (f < 3) {
      if (comma == std::string::npos) return fail("CSV trace row needs 4 fields");
      fieldEnd[f] = comma;
      pos = comma + 1;
    } else {
      if (comma != std::string::npos) return fail("CSV trace row has extra fields");
      fieldEnd[f] = line.size();
    }
  }
  const auto field = [&](int f) {
    return line.substr(fieldStart[f], fieldEnd[f] - fieldStart[f]);
  };
  const auto parseInt = [&](int f, std::int64_t* value) {
    const std::string text = field(f);
    char* end = nullptr;
    *value = std::strtoll(text.c_str(), &end, 10);
    return end != text.c_str() && *end == '\0';
  };
  {
    const std::string text = field(0);
    char* end = nullptr;
    out->time = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0') return fail("bad CSV timestamp");
  }
  if (!kindFromName(field(1), &out->kind)) return fail("unknown CSV event kind");
  if (!parseInt(2, &out->ball)) return fail("bad CSV ball id");
  if (!parseInt(3, &out->weight)) return fail("bad CSV weight");
  return true;
}

namespace {
void appendLe64(std::string* out, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) out->push_back(static_cast<char>((v >> (8 * b)) & 0xff));
}
std::uint64_t readLe64(const unsigned char* bytes) {
  std::uint64_t v = 0;
  for (int b = 0; b < 8; ++b) v |= static_cast<std::uint64_t>(bytes[b]) << (8 * b);
  return v;
}
}  // namespace

void appendTraceEventBinary(std::string* out, const Event& event) {
  appendLe64(out, std::bit_cast<std::uint64_t>(event.time));
  out->push_back(static_cast<char>(event.kind));
  appendLe64(out, static_cast<std::uint64_t>(event.ball));
  appendLe64(out, static_cast<std::uint64_t>(event.weight));
}

bool decodeTraceEventBinary(const unsigned char* bytes, Event* out, std::string* error) {
  out->time = std::bit_cast<double>(readLe64(bytes));
  const unsigned char kind = bytes[8];
  if (kind > static_cast<unsigned char>(EventKind::kResample)) {
    if (error != nullptr) *error = "bad binary trace kind byte " + std::to_string(kind);
    return false;
  }
  out->kind = static_cast<EventKind>(kind);
  out->ball = static_cast<std::int64_t>(readLe64(bytes + 9));
  out->weight = static_cast<std::int64_t>(readLe64(bytes + 17));
  return true;
}

RecordingTrace::RecordingTrace(TraceGenerator& inner, std::ostream& out,
                               TraceFormat format)
    : inner_(&inner), out_(&out), format_(format) {
  switch (format_) {
    case TraceFormat::kJsonl: break;
    case TraceFormat::kCsv: *out_ << kTraceCsvHeader << '\n'; break;
    case TraceFormat::kBinary: out_->write(kTraceBinaryMagic, 4); break;
  }
}

bool RecordingTrace::next(Event* out) {
  if (!inner_->next(out)) return false;
  switch (format_) {
    case TraceFormat::kJsonl:
      *out_ << formatTraceEvent(*out) << '\n';
      break;
    case TraceFormat::kCsv:
      *out_ << formatTraceEventCsv(*out) << '\n';
      break;
    case TraceFormat::kBinary: {
      std::string record;
      record.reserve(kTraceBinaryRecordBytes);
      appendTraceEventBinary(&record, *out);
      out_->write(record.data(), static_cast<std::streamsize>(record.size()));
      break;
    }
  }
  return true;
}

bool JsonlTraceReader::next(Event* out) {
  std::string line;
  while (std::getline(*in_, line)) {
    if (line.empty()) continue;
    std::string error;
    const bool ok = parseTraceEvent(line, out, &error);
    if (!ok) std::fprintf(stderr, "trace replay: %s\n", error.c_str());
    RLSLB_ASSERT_MSG(ok, "malformed trace line; a corrupt trace must not truncate silently");
    return true;
  }
  return false;
}

bool CsvTraceReader::next(Event* out) {
  std::string line;
  while (std::getline(*in_, line)) {
    if (!headerChecked_) {
      headerChecked_ = true;
      if (line == kTraceCsvHeader) continue;
      std::fprintf(stderr, "trace replay: missing CSV header '%s'\n", kTraceCsvHeader);
      RLSLB_ASSERT_MSG(false, "CSV trace must start with the t,kind,ball,w header");
    }
    if (line.empty()) continue;
    std::string error;
    const bool ok = parseTraceEventCsv(line, out, &error);
    if (!ok) std::fprintf(stderr, "trace replay: %s\n", error.c_str());
    RLSLB_ASSERT_MSG(ok, "malformed CSV trace row; a corrupt trace must not truncate silently");
    return true;
  }
  return false;
}

bool BinaryTraceReader::next(Event* out) {
  if (!magicChecked_) {
    magicChecked_ = true;
    char magic[4] = {};
    in_->read(magic, 4);
    const bool ok = in_->gcount() == 4 && std::string(magic, 4) == kTraceBinaryMagic;
    if (!ok) std::fprintf(stderr, "trace replay: missing RLT1 binary magic\n");
    RLSLB_ASSERT_MSG(ok, "binary trace must start with the RLT1 magic");
  }
  unsigned char record[kTraceBinaryRecordBytes];
  in_->read(reinterpret_cast<char*>(record), kTraceBinaryRecordBytes);
  if (in_->gcount() == 0) return false;
  const bool whole = in_->gcount() == static_cast<std::streamsize>(kTraceBinaryRecordBytes);
  if (!whole) std::fprintf(stderr, "trace replay: truncated binary record\n");
  RLSLB_ASSERT_MSG(whole, "truncated binary trace record");
  std::string error;
  const bool ok = decodeTraceEventBinary(record, out, &error);
  if (!ok) std::fprintf(stderr, "trace replay: %s\n", error.c_str());
  RLSLB_ASSERT_MSG(ok, "malformed binary trace record");
  return true;
}

std::unique_ptr<TraceGenerator> makeTraceReader(std::istream& in, TraceFormat format) {
  switch (format) {
    case TraceFormat::kJsonl: return std::make_unique<JsonlTraceReader>(in);
    case TraceFormat::kCsv: return std::make_unique<CsvTraceReader>(in);
    case TraceFormat::kBinary: return std::make_unique<BinaryTraceReader>(in);
  }
  RLSLB_ASSERT_MSG(false, "unknown TraceFormat");
  return nullptr;
}

std::int64_t countTraceEvents(std::istream& in, TraceFormat format) {
  const std::unique_ptr<TraceGenerator> reader = makeTraceReader(in, format);
  Event event;
  std::int64_t count = 0;
  while (reader->next(&event)) ++count;
  return count;
}

}  // namespace rlslb::workload
