#include "workload/trace_io.hpp"

#include <istream>
#include <ostream>

#include "report/json.hpp"
#include "util/assert.hpp"

namespace rlslb::workload {

std::string formatTraceEvent(const Event& event) {
  std::string out = "{\"t\":";
  out += report::formatJsonNumber(event.time);
  out += ",\"kind\":\"";
  out += kindName(event.kind);
  out += "\",\"ball\":";
  out += std::to_string(event.ball);
  out += ",\"w\":";
  out += std::to_string(event.weight);
  out += "}";
  return out;
}

bool parseTraceEvent(const std::string& line, Event* out, std::string* error) {
  std::string parseError;
  const report::Json rec = report::Json::parse(line, &parseError);
  if (!parseError.empty()) {
    if (error != nullptr) *error = parseError;
    return false;
  }
  const report::Json* t = rec.find("t");
  const report::Json* kind = rec.find("kind");
  const report::Json* ball = rec.find("ball");
  const report::Json* w = rec.find("w");
  if (t == nullptr || kind == nullptr || ball == nullptr || w == nullptr) {
    if (error != nullptr) *error = "trace event missing one of t/kind/ball/w: " + line;
    return false;
  }
  EventKind kindValue{};
  if (!kindFromName(kind->asString(), &kindValue)) {
    if (error != nullptr) *error = "unknown trace event kind: " + kind->asString();
    return false;
  }
  out->time = t->asDouble();
  out->kind = kindValue;
  out->ball = ball->asInt();
  out->weight = w->asInt();
  return true;
}

bool RecordingTrace::next(Event* out) {
  if (!inner_->next(out)) return false;
  *out_ << formatTraceEvent(*out) << '\n';
  return true;
}

bool JsonlTraceReader::next(Event* out) {
  std::string line;
  while (std::getline(*in_, line)) {
    if (line.empty()) continue;
    std::string error;
    const bool ok = parseTraceEvent(line, out, &error);
    if (!ok) std::fprintf(stderr, "trace replay: %s\n", error.c_str());
    RLSLB_ASSERT_MSG(ok, "malformed trace line; a corrupt trace must not truncate silently");
    return true;
  }
  return false;
}

}  // namespace rlslb::workload
