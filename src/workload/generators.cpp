#include "workload/generators.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "rng/distributions.hpp"
#include "rng/splitmix64.hpp"
#include "util/assert.hpp"

namespace rlslb::workload {

const char* kindName(EventKind kind) {
  switch (kind) {
    case EventKind::kArrive: return "arrive";
    case EventKind::kDepart: return "depart";
    case EventKind::kResample: return "resample";
  }
  RLSLB_ASSERT_MSG(false, "unknown EventKind");
  return "?";
}

bool kindFromName(std::string_view name, EventKind* out) {
  if (name == "arrive") {
    *out = EventKind::kArrive;
  } else if (name == "depart") {
    *out = EventKind::kDepart;
  } else if (name == "resample") {
    *out = EventKind::kResample;
  } else {
    return false;
  }
  return true;
}

OpenTrace::OpenTrace(const OpenTraceOptions& options, std::uint64_t seed)
    : options_(options), eng_(seed) {
  RLSLB_ASSERT(options_.bins >= 1);
  RLSLB_ASSERT(options_.arrivalRatePerBin >= 0.0);
  RLSLB_ASSERT(options_.departureRate >= 0.0);
  RLSLB_ASSERT(options_.resampleRate >= 0.0);
  RLSLB_ASSERT(options_.ballWeight >= 1);
}

double OpenTrace::arrivalRateAt(double) const { return options_.arrivalRatePerBin; }
double OpenTrace::arrivalRateCeiling() const { return options_.arrivalRatePerBin; }
std::int64_t OpenTrace::arrivalWeight(double) { return options_.ballWeight; }
double OpenTrace::nextBurstAfter(double) const {
  return std::numeric_limits<double>::infinity();
}
void OpenTrace::emitBurst(double) {}

void OpenTrace::queueArrival(double t, std::int64_t weight) {
  RLSLB_ASSERT(weight >= 1);
  const std::int64_t id = nextBall_++;
  live_.push_back(id);
  pending_.push_back({t, EventKind::kArrive, id, weight});
}

bool OpenTrace::next(Event* out) {
  if (emitted_ >= options_.maxEvents) return false;
  for (;;) {
    if (!pending_.empty()) {
      *out = pending_.front();
      pending_.pop_front();
      ++emitted_;
      return true;
    }

    // Superposed exponential clocks: candidate arrivals at the rate
    // ceiling (thinned to the instantaneous rate), departures and RLS
    // resamples per live ball. All rates are constant between events, so
    // the competing-exponentials draw is exact.
    const double ceiling = arrivalRateCeiling();
    const double arrivalRate = ceiling * static_cast<double>(options_.bins);
    const double balls = static_cast<double>(live_.size());
    const double departRate = options_.departureRate * balls;
    const double resampleRate = options_.resampleRate * balls;
    const double total = arrivalRate + departRate + resampleRate;
    const double burstAt = nextBurstAfter(time_);
    if (total <= 0.0) {
      // No running clocks (empty system, no stochastic arrivals): only a
      // scheduled burst can still produce events.
      if (!std::isfinite(burstAt)) return false;  // trace over
      time_ = burstAt;
      emitBurst(burstAt);
      continue;
    }

    const double candidate = time_ + rng::exponential(eng_, total);
    if (burstAt <= candidate) {
      time_ = burstAt;
      emitBurst(burstAt);
      continue;  // burst events queued; popped at the top of the loop
    }
    time_ = candidate;

    const double ticket = rng::uniformDouble(eng_) * total;
    if (ticket < arrivalRate) {
      // Thinning: accept a candidate arrival with prob rate(t)/ceiling.
      if (rng::uniformDouble(eng_) * ceiling <= arrivalRateAt(time_)) {
        queueArrival(time_, arrivalWeight(time_));
      }
      continue;
    }
    const auto pick = static_cast<std::size_t>(
        rng::uniformIndex(eng_, static_cast<std::uint64_t>(live_.size())));
    const std::int64_t ball = live_[pick];
    if (ticket < arrivalRate + departRate) {
      live_[pick] = live_.back();
      live_.pop_back();
      *out = {time_, EventKind::kDepart, ball, 0};
    } else {
      *out = {time_, EventKind::kResample, ball, 0};
    }
    ++emitted_;
    return true;
  }
}

// ------------------------------------------------------------------ bursty

BurstyTrace::BurstyTrace(const BurstyTraceOptions& options, std::uint64_t seed)
    : OpenTrace(options.base, seed),
      burstOptions_(options),
      modulatorEng_(rng::streamSeed(seed, 0x6d6d7070ULL)) {  // "mmpp"
  RLSLB_ASSERT(burstOptions_.burstRateFactor >= 1.0);
  RLSLB_ASSERT(burstOptions_.calmToBurstRate > 0.0 && burstOptions_.burstToCalmRate > 0.0);
}

bool BurstyTrace::burstingAt(double t) const {
  // Extend the modulator trajectory lazily past t. Switch k goes calm ->
  // burst for even k; the trajectory depends only on the modulator stream,
  // so arrivalRateAt stays a pure function of t.
  while (switchTimes_.empty() || switchTimes_.back() <= t) {
    const bool leavingCalm = switchTimes_.size() % 2 == 0;
    const double rate =
        leavingCalm ? burstOptions_.calmToBurstRate : burstOptions_.burstToCalmRate;
    const double last = switchTimes_.empty() ? 0.0 : switchTimes_.back();
    switchTimes_.push_back(last + rng::exponential(modulatorEng_, rate));
  }
  const auto it = std::upper_bound(switchTimes_.begin(), switchTimes_.end(), t);
  const auto flips = static_cast<std::size_t>(it - switchTimes_.begin());
  return flips % 2 == 1;
}

double BurstyTrace::arrivalRateAt(double t) const {
  const double calm = options_.arrivalRatePerBin;
  return burstingAt(t) ? calm * burstOptions_.burstRateFactor : calm;
}

double BurstyTrace::arrivalRateCeiling() const {
  return options_.arrivalRatePerBin * burstOptions_.burstRateFactor;
}

// ----------------------------------------------------------------- diurnal

DiurnalTrace::DiurnalTrace(const DiurnalTraceOptions& options, std::uint64_t seed)
    : OpenTrace(options.base, seed), diurnalOptions_(options) {
  RLSLB_ASSERT(diurnalOptions_.amplitude >= 0.0 && diurnalOptions_.amplitude < 1.0);
  RLSLB_ASSERT(diurnalOptions_.period > 0.0);
}

double DiurnalTrace::arrivalRateAt(double t) const {
  const double phase = 2.0 * 3.14159265358979323846 * t / diurnalOptions_.period;
  return options_.arrivalRatePerBin * (1.0 + diurnalOptions_.amplitude * std::sin(phase));
}

double DiurnalTrace::arrivalRateCeiling() const {
  return options_.arrivalRatePerBin * (1.0 + diurnalOptions_.amplitude);
}

// ----------------------------------------------------------------- hotspot

HotspotTrace::HotspotTrace(const HotspotTraceOptions& options, std::uint64_t seed)
    : OpenTrace(options.base, seed), hotspotOptions_(options) {
  RLSLB_ASSERT(hotspotOptions_.burstPeriod > 0.0);
  RLSLB_ASSERT(hotspotOptions_.burstSize >= 1);
  RLSLB_ASSERT(hotspotOptions_.hotWeight >= 1);
}

double HotspotTrace::nextBurstAfter(double t) const {
  const double period = hotspotOptions_.burstPeriod;
  double k = std::floor(t / period) + 1.0;
  double next = k * period;
  // Strictly after t: for non-dyadic periods k*period can round back down
  // to exactly t (e.g. period=0.7 at t=2.0999999999999996), which would
  // freeze trace time and re-emit the same burst forever.
  while (next <= t) next = ++k * period;
  return next;
}

void HotspotTrace::emitBurst(double t) {
  for (std::int64_t i = 0; i < hotspotOptions_.burstSize; ++i) {
    queueArrival(t, hotspotOptions_.hotWeight);
  }
}

}  // namespace rlslb::workload
