// Trace recording and replay in three interchangeable formats.
//
//   JSONL   one event per line, e.g. {"t":1.25,"kind":"arrive","ball":7,"w":1}
//   CSV     "t,kind,ball,w" header then one row per event — the import
//           format for externally produced workloads (spreadsheets, other
//           simulators)
//   binary  "RLT1" magic then fixed 25-byte little-endian records
//           (f64 time, u8 kind, i64 ball, i64 weight) — the compact format
//           for the big capacity-sweep traces (~3x smaller than JSONL)
//
// Every format is bit-exact: text timestamps serialize through
// report::formatJsonNumber (shortest round-trip form) and the binary format
// stores the raw f64 bits, so record -> replay reproduces the original
// stream bit-for-bit in any format and format conversions compose without
// loss (pinned by tests/test_workload_compose.cpp). RecordingTrace tees any
// generator into a stream; makeTraceReader builds the matching replay
// generator; traceFormatFromPath picks the format from a file extension.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "workload/generators.hpp"

namespace rlslb::workload {

enum class TraceFormat : std::uint8_t { kJsonl, kCsv, kBinary };

[[nodiscard]] const char* traceFormatName(TraceFormat format);

/// Format implied by a path's extension: ".csv" -> CSV, ".bin" -> binary,
/// anything else (including ".jsonl") -> JSONL.
[[nodiscard]] TraceFormat traceFormatFromPath(const std::string& path);

/// The CSV header row and the binary magic (no trailing newline on either).
inline constexpr const char* kTraceCsvHeader = "t,kind,ball,w";
inline constexpr const char* kTraceBinaryMagic = "RLT1";
inline constexpr std::size_t kTraceBinaryRecordBytes = 25;  // f64 + u8 + 2*i64

/// One event as a JSONL line (no trailing newline).
[[nodiscard]] std::string formatTraceEvent(const Event& event);

/// Parse one JSONL line. On failure returns false and, when `error` is
/// non-null, stores a message.
[[nodiscard]] bool parseTraceEvent(const std::string& line, Event* out,
                                   std::string* error = nullptr);

/// One event as a CSV row (no trailing newline).
[[nodiscard]] std::string formatTraceEventCsv(const Event& event);

/// Parse one CSV row (not the header). Same error contract as
/// parseTraceEvent.
[[nodiscard]] bool parseTraceEventCsv(const std::string& line, Event* out,
                                      std::string* error = nullptr);

/// Append one fixed-width little-endian record to `out`.
void appendTraceEventBinary(std::string* out, const Event& event);

/// Decode one record from a 25-byte buffer. Returns false on a bad kind
/// byte.
[[nodiscard]] bool decodeTraceEventBinary(const unsigned char* bytes, Event* out,
                                          std::string* error = nullptr);

/// Pass-through generator that appends every emitted event to `out` in the
/// chosen format. Writes the format prologue (CSV header / binary magic) at
/// construction; binary streams must be opened in binary mode by the
/// caller.
class RecordingTrace final : public TraceGenerator {
 public:
  RecordingTrace(TraceGenerator& inner, std::ostream& out,
                 TraceFormat format = TraceFormat::kJsonl);

  bool next(Event* out) override;
  [[nodiscard]] std::string name() const override { return inner_->name(); }

 private:
  TraceGenerator* inner_;
  std::ostream* out_;
  TraceFormat format_;
};

/// Replay generator over a JSONL stream (blank lines skipped; a malformed
/// line aborts — a corrupt trace must not silently truncate an experiment).
class JsonlTraceReader final : public TraceGenerator {
 public:
  explicit JsonlTraceReader(std::istream& in) : in_(&in) {}

  bool next(Event* out) override;
  [[nodiscard]] std::string name() const override { return "replay"; }

 private:
  std::istream* in_;
};

/// Replay generator over a CSV stream (header mandatory and verified; same
/// abort-on-corruption contract as JSONL).
class CsvTraceReader final : public TraceGenerator {
 public:
  explicit CsvTraceReader(std::istream& in) : in_(&in) {}

  bool next(Event* out) override;
  [[nodiscard]] std::string name() const override { return "replay"; }

 private:
  std::istream* in_;
  bool headerChecked_ = false;
};

/// Replay generator over a binary stream (magic mandatory and verified; a
/// truncated trailing record aborts).
class BinaryTraceReader final : public TraceGenerator {
 public:
  explicit BinaryTraceReader(std::istream& in) : in_(&in) {}

  bool next(Event* out) override;
  [[nodiscard]] std::string name() const override { return "replay"; }

 private:
  std::istream* in_;
  bool magicChecked_ = false;
};

/// Replay generator for `format` over `in` (which the factory does not
/// own).
[[nodiscard]] std::unique_ptr<TraceGenerator> makeTraceReader(std::istream& in,
                                                              TraceFormat format);

/// Count the events in a trace stream by draining a replay reader (resets
/// nothing; pass a fresh stream). Used by replay scenarios to size epochs.
[[nodiscard]] std::int64_t countTraceEvents(std::istream& in, TraceFormat format);

}  // namespace rlslb::workload
