// JSONL trace recording and replay.
//
// One event per line, e.g. {"t":1.25,"kind":"arrive","ball":7,"w":1}.
// Timestamps serialize through report::formatJsonNumber (shortest
// round-trip form), so record -> replay reproduces the original stream
// bit-for-bit: a live generator run and its replay drive the allocator to
// byte-identical results. RecordingTrace tees any generator into a stream;
// JsonlTraceReader is the replay generator.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/generators.hpp"

namespace rlslb::workload {

/// One event as a JSONL line (no trailing newline).
[[nodiscard]] std::string formatTraceEvent(const Event& event);

/// Parse one line. On failure returns false and, when `error` is non-null,
/// stores a message.
[[nodiscard]] bool parseTraceEvent(const std::string& line, Event* out,
                                   std::string* error = nullptr);

/// Pass-through generator that appends every emitted event to `out`.
class RecordingTrace final : public TraceGenerator {
 public:
  RecordingTrace(TraceGenerator& inner, std::ostream& out) : inner_(&inner), out_(&out) {}

  bool next(Event* out) override;
  [[nodiscard]] std::string name() const override { return inner_->name(); }

 private:
  TraceGenerator* inner_;
  std::ostream* out_;
};

/// Replay generator over a JSONL stream (blank lines skipped; a malformed
/// line aborts — a corrupt trace must not silently truncate an experiment).
class JsonlTraceReader final : public TraceGenerator {
 public:
  explicit JsonlTraceReader(std::istream& in) : in_(&in) {}

  bool next(Event* out) override;
  [[nodiscard]] std::string name() const override { return "replay"; }

 private:
  std::istream* in_;
};

}  // namespace rlslb::workload
