// The serving subsystem's unit of traffic: one timestamped workload event.
//
// A trace is an ordered stream of events over anonymous balls identified by
// a trace-scoped id:
//   - Arrive:   a new ball (job/shard/connection) enters with an integer
//               weight >= 1; the allocator decides its bin.
//   - Depart:   a previously-arrived ball leaves (service completion).
//   - Resample: the ball's RLS migration clock fires; the allocator samples
//               a candidate bin and migrates iff the paper's local-search
//               rule accepts.
// Generators (workload/generators.hpp) produce these streams; the online
// allocator (serve/online_allocator.hpp) consumes them. Traces can be
// recorded to and replayed from JSONL (workload/trace_io.hpp), so any live
// generator run is reproducible byte-for-byte offline.
#pragma once

#include <cstdint>
#include <string_view>

namespace rlslb::workload {

enum class EventKind : std::uint8_t { kArrive = 0, kDepart = 1, kResample = 2 };

struct Event {
  double time = 0.0;       // trace timestamp, nondecreasing
  EventKind kind = EventKind::kArrive;
  std::int64_t ball = 0;   // trace-scoped id, assigned sequentially on arrival
  std::int64_t weight = 0; // ball weight (>= 1 on Arrive, 0 otherwise)

  friend bool operator==(const Event&, const Event&) = default;
};

/// Stable wire name ("arrive" / "depart" / "resample").
[[nodiscard]] const char* kindName(EventKind kind);
/// Inverse of kindName; returns false on an unknown name.
[[nodiscard]] bool kindFromName(std::string_view name, EventKind* out);

}  // namespace rlslb::workload
