#include "workload/compose.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "report/json.hpp"
#include "rng/distributions.hpp"
#include "rng/splitmix64.hpp"
#include "util/assert.hpp"

namespace rlslb::workload {

namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr std::uint64_t kMmppSalt = 0x6d6d7070ULL;  // "mmpp" (BurstyTrace's salt)

struct FactorMeta {
  const char* name;
  ComposeFactor::Kind kind;
  int maxArgs;
  double defaults[3];
};

constexpr FactorMeta kFactorMeta[] = {
    {"poisson", ComposeFactor::Kind::kPoisson, 1, {1.0, 0.0, 0.0}},
    {"diurnal", ComposeFactor::Kind::kDiurnal, 2, {0.8, 64.0, 0.0}},
    {"bursty", ComposeFactor::Kind::kBursty, 3, {8.0, 0.05, 0.5}},
    {"hotspot", ComposeFactor::Kind::kHotspot, 3, {16.0, 32.0, 8.0}},
};

const FactorMeta* metaFor(ComposeFactor::Kind kind) {
  for (const FactorMeta& m : kFactorMeta) {
    if (m.kind == kind) return &m;
  }
  return nullptr;
}

// Semantic validation shared by the parser (user-facing message) and the
// trace constructor (assertion backstop). Returns nullptr when valid.
const char* checkFactor(const ComposeFactor& f) {
  switch (f.kind) {
    case ComposeFactor::Kind::kPoisson:
      if (!(f.a >= 0.0)) return "poisson multiplier must be >= 0";
      break;
    case ComposeFactor::Kind::kDiurnal:
      if (!(f.a >= 0.0 && f.a < 1.0)) return "diurnal amplitude must be in [0, 1)";
      if (!(f.b > 0.0)) return "diurnal period must be > 0";
      break;
    case ComposeFactor::Kind::kBursty:
      if (!(f.a >= 1.0)) return "bursty factor must be >= 1";
      if (!(f.b > 0.0 && f.c > 0.0)) return "bursty switch rates must be > 0";
      break;
    case ComposeFactor::Kind::kHotspot:
      if (!(f.a > 0.0)) return "hotspot period must be > 0";
      if (!(f.b >= 1.0 && f.b == std::floor(f.b))) {
        return "hotspot size must be an integer >= 1";
      }
      if (!(f.c >= 1.0 && f.c == std::floor(f.c))) {
        return "hotspot weight must be an integer >= 1";
      }
      break;
  }
  return nullptr;
}

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  void skipWs() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    }
  }
  bool fail(const std::string& message) {
    error = message + " at offset " + std::to_string(pos);
    return false;
  }
  bool factor(ComposeFactor* out) {
    skipWs();
    const std::size_t start = pos;
    while (pos < text.size() &&
           (std::isalpha(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '_')) {
      ++pos;
    }
    if (pos == start) return fail("expected factor name");
    const std::string name = text.substr(start, pos - start);
    const FactorMeta* meta = nullptr;
    for (const FactorMeta& m : kFactorMeta) {
      if (name == m.name) meta = &m;
    }
    if (meta == nullptr) return fail("unknown factor '" + name + "'");
    double args[3] = {meta->defaults[0], meta->defaults[1], meta->defaults[2]};
    skipWs();
    if (pos < text.size() && text[pos] == '(') {
      ++pos;
      int count = 0;
      skipWs();
      if (pos < text.size() && text[pos] == ')') {
        ++pos;  // empty arg list: all defaults
      } else {
        for (;;) {
          skipWs();
          const char* begin = text.c_str() + pos;
          char* end = nullptr;
          const double v = std::strtod(begin, &end);
          if (end == begin) return fail("expected number");
          pos += static_cast<std::size_t>(end - begin);
          if (count >= meta->maxArgs) {
            return fail(std::string(meta->name) + " takes at most " +
                        std::to_string(meta->maxArgs) + " args");
          }
          args[count++] = v;
          skipWs();
          if (pos < text.size() && text[pos] == ',') {
            ++pos;
            continue;
          }
          if (pos < text.size() && text[pos] == ')') {
            ++pos;
            break;
          }
          return fail("expected ',' or ')'");
        }
      }
    }
    out->kind = meta->kind;
    out->a = args[0];
    out->b = args[1];
    out->c = args[2];
    if (const char* message = checkFactor(*out)) return fail(message);
    return true;
  }
  bool term(std::vector<ComposeFactor>* out) {
    ComposeFactor f;
    if (!factor(&f)) return false;
    out->push_back(f);
    for (;;) {
      skipWs();
      if (pos < text.size() && text[pos] == '*') {
        ++pos;
        if (!factor(&f)) return false;
        out->push_back(f);
        continue;
      }
      return true;
    }
  }
  bool spec(ComposeSpec* out) {
    out->terms.clear();
    std::vector<ComposeFactor> t;
    if (!term(&t)) return false;
    out->terms.push_back(std::move(t));
    for (;;) {
      skipWs();
      if (pos < text.size() && text[pos] == '+') {
        ++pos;
        t.clear();
        if (!term(&t)) return false;
        out->terms.push_back(std::move(t));
        continue;
      }
      break;
    }
    skipWs();
    if (pos != text.size()) return fail("trailing input");
    return true;
  }
};

}  // namespace

std::string ComposeSpec::canonical() const {
  std::string out;
  for (std::size_t ti = 0; ti < terms.size(); ++ti) {
    if (ti > 0) out += '+';
    for (std::size_t fi = 0; fi < terms[ti].size(); ++fi) {
      if (fi > 0) out += '*';
      const ComposeFactor& f = terms[ti][fi];
      const FactorMeta* meta = metaFor(f.kind);
      RLSLB_ASSERT(meta != nullptr);
      out += meta->name;
      out += '(';
      const double args[3] = {f.a, f.b, f.c};
      for (int a = 0; a < meta->maxArgs; ++a) {
        if (a > 0) out += ',';
        out += report::formatJsonNumber(args[a]);
      }
      out += ')';
    }
  }
  return out;
}

bool parseComposeSpec(const std::string& spec, ComposeSpec* out, std::string* error) {
  Parser p{spec, 0, {}};
  if (!p.spec(out)) {
    if (error != nullptr) *error = p.error;
    return false;
  }
  return true;
}

const std::vector<TraceFactorSpec>& traceFactorRoster() {
  static const std::vector<TraceFactorSpec> roster = {
      {"poisson", "poisson(f=1)", "factor",
       "constant rate multiplier f (bare 'poisson' is the [11] baseline)"},
      {"diurnal", "diurnal(amp=0.8, period=64)", "factor",
       "sinusoid envelope 1 + amp*sin(2*pi*t/period)"},
      {"bursty", "bursty(factor=8, calm_to_burst=0.05, burst_to_calm=0.5)", "factor",
       "2-state MMPP envelope: xfactor while bursting; independent modulator stream per layer"},
      {"hotspot", "hotspot(period=16, size=32, weight=8)", "factor",
       "synchronized burst overlay: size balls of weight every period (rate-neutral)"},
      {"*", "termA*termB", "combinator",
       "modulate: multiply envelopes within a term (e.g. diurnal(0.8,64)*bursty(8,0.05,0.5))"},
      {"+", "specA+specB", "combinator",
       "superpose: sum term rates (Poisson superposition of independent streams)"},
  };
  return roster;
}

ComposedTrace::ComposedTrace(const OpenTraceOptions& options, const std::string& spec,
                             std::uint64_t seed)
    : OpenTrace(options, seed) {
  ComposeSpec parsed;
  std::string error;
  const bool ok = parseComposeSpec(spec, &parsed, &error);
  RLSLB_ASSERT_MSG(ok, "invalid compose spec");
  build(parsed, seed);
}

ComposedTrace::ComposedTrace(const OpenTraceOptions& options, ComposeSpec spec,
                             std::uint64_t seed)
    : OpenTrace(options, seed) {
  build(spec, seed);
}

void ComposedTrace::build(const ComposeSpec& spec, std::uint64_t seed) {
  RLSLB_ASSERT_MSG(!spec.terms.empty(), "compose spec must have at least one term");
  canonical_ = spec.canonical();
  ceiling_ = 0.0;
  for (const std::vector<ComposeFactor>& term : spec.terms) {
    RLSLB_ASSERT(!term.empty());
    std::vector<EnvFactor> resolved;
    double termCeiling = 1.0;
    for (const ComposeFactor& f : term) {
      RLSLB_ASSERT_MSG(checkFactor(f) == nullptr, "invalid compose factor");
      switch (f.kind) {
        case ComposeFactor::Kind::kPoisson: {
          resolved.push_back({f.kind, f.a, 0.0, 0});
          termCeiling *= f.a;
          break;
        }
        case ComposeFactor::Kind::kDiurnal: {
          resolved.push_back({f.kind, f.a, f.b, 0});
          termCeiling *= 1.0 + f.a;
          break;
        }
        case ComposeFactor::Kind::kBursty: {
          // Layer k draws its modulator from streamSeed(seed, kMmppSalt + k);
          // layer 0 is therefore the standalone BurstyTrace stream.
          BurstyLayer layer;
          layer.factor = f.a;
          layer.calmToBurst = f.b;
          layer.burstToCalm = f.c;
          layer.eng.reseed(rng::streamSeed(
              seed, kMmppSalt + static_cast<std::uint64_t>(burstyLayers_.size())));
          resolved.push_back({f.kind, 0.0, 0.0, burstyLayers_.size()});
          burstyLayers_.push_back(std::move(layer));
          termCeiling *= f.a;
          break;
        }
        case ComposeFactor::Kind::kHotspot: {
          // Rate-neutral: contributes an overlay, not an envelope. A term of
          // only hotspot factors keeps its constant multiplier 1 — exactly
          // the standalone HotspotTrace's background Poisson.
          overlays_.push_back({f.a, static_cast<std::int64_t>(f.b),
                               static_cast<std::int64_t>(f.c)});
          break;
        }
      }
    }
    terms_.push_back(std::move(resolved));
    ceiling_ += termCeiling;
  }
}

bool ComposedTrace::BurstyLayer::burstingAt(double t) const {
  // Verbatim BurstyTrace::burstingAt (generators.cpp): lazily extend the
  // switch-time trajectory from this layer's stream, then parity-count.
  while (switchTimes.empty() || switchTimes.back() <= t) {
    const bool leavingCalm = switchTimes.size() % 2 == 0;
    const double rate = leavingCalm ? calmToBurst : burstToCalm;
    const double last = switchTimes.empty() ? 0.0 : switchTimes.back();
    switchTimes.push_back(last + rng::exponential(eng, rate));
  }
  const auto it = std::upper_bound(switchTimes.begin(), switchTimes.end(), t);
  const auto flips = static_cast<std::size_t>(it - switchTimes.begin());
  return flips % 2 == 1;
}

double ComposedTrace::arrivalRateAt(double t) const {
  double sum = 0.0;
  for (const std::vector<EnvFactor>& term : terms_) {
    double env = 1.0;
    for (const EnvFactor& f : term) {
      switch (f.kind) {
        case ComposeFactor::Kind::kPoisson:
          env *= f.a;
          break;
        case ComposeFactor::Kind::kDiurnal: {
          // Same expression as DiurnalTrace::arrivalRateAt so the single-
          // factor degenerate case is bit-identical.
          const double phase = 2.0 * kPi * t / f.b;
          env *= 1.0 + f.a * std::sin(phase);
          break;
        }
        case ComposeFactor::Kind::kBursty: {
          const BurstyLayer& layer = burstyLayers_[f.burstyIndex];
          if (layer.burstingAt(t)) env *= layer.factor;
          break;
        }
        case ComposeFactor::Kind::kHotspot:
          break;  // rate-neutral (overlay handled via the burst hooks)
      }
    }
    sum += env;
  }
  return options_.arrivalRatePerBin * sum;
}

double ComposedTrace::arrivalRateCeiling() const {
  return options_.arrivalRatePerBin * ceiling_;
}

double ComposedTrace::Overlay::nextAfter(double t) const {
  // Verbatim HotspotTrace::nextBurstAfter, including the strictly-after
  // guard for non-dyadic periods.
  double k = std::floor(t / period) + 1.0;
  double next = k * period;
  while (next <= t) next = ++k * period;
  return next;
}

bool ComposedTrace::Overlay::scheduledAt(double t) const {
  // t came out of some overlay's nextAfter, i.e. it is an exact double
  // product k*period for THAT overlay; this one fires too iff t is also on
  // its own grid. Reconstruct k by rounding and accept only an exact
  // product match (neighbors guard against t/period landing a ulp off).
  const double k = std::round(t / period);
  for (double kk = k - 1.0; kk <= k + 1.0; kk += 1.0) {
    if (kk >= 1.0 && kk * period == t) return true;
  }
  return false;
}

double ComposedTrace::nextBurstAfter(double t) const {
  double next = std::numeric_limits<double>::infinity();
  for (const Overlay& overlay : overlays_) {
    next = std::min(next, overlay.nextAfter(t));
  }
  return next;
}

void ComposedTrace::emitBurst(double t) {
  // Every overlay whose grid contains t fires, in spec order, at the same
  // timestamp — coincident bursts merge into one synchronized volley.
  for (const Overlay& overlay : overlays_) {
    if (!overlay.scheduledAt(t)) continue;
    for (std::int64_t i = 0; i < overlay.size; ++i) {
      queueArrival(t, overlay.weight);
    }
  }
}

}  // namespace rlslb::workload
