// ComposedTrace: the workload algebra over the open-system generators.
//
// The fixed roster (poisson / bursty / diurnal / adversarial) emits one
// traffic shape at a time; capacity planning needs their *mixes*. A
// composed trace is described by a spec string over three combinators:
//
//   modulate (*)   multiply rate envelopes within a term:
//                    diurnal(0.8,64)*bursty(8,0.05,0.5)
//                  is a day/night sinusoid with MMPP bursts riding on it.
//   sum (+)        superpose terms (Poisson superposition: the sum of the
//                  term rates is the arrival rate):
//                    poisson(0.5)+diurnal(0.8,64)
//   overlay        hotspot(period,size,weight) factors schedule
//                  synchronized heavy bursts on top of the stochastic
//                  stream (their rate contribution is neutral):
//                    diurnal(0.8,64)+hotspot(16,32,8)
//
// Factors (args optional, right to left; defaults match the standalone
// generators):
//   poisson(f)                constant rate multiplier f (default 1)
//   diurnal(amp,period)       1 + amp*sin(2*pi*t/period) envelope
//   bursty(f,c2b,b2c)         2-state MMPP envelope: f while bursting,
//                             1 while calm; each bursty factor owns an
//                             independent modulator stream
//   hotspot(period,size,w)    synchronized burst overlay (size balls of
//                             weight w every period time units)
//
// Semantics: arrivals are an exact Lewis-Shedler-thinned sampler of
//   rate(t) = lambda * sum_terms ( c_term * prod_envelopes env(t) )
// against the ceiling lambda * sum(c * prod(max env)); departures and
// RLS resamples come from the shared OpenTrace clocks. A composed trace
// is a pure function of (options, spec, seed) — byte-stable across
// machines and thread counts like every other generator — and its
// single-factor degenerate cases reproduce the standalone generators
// bit-for-bit: "poisson" == PoissonTrace, "diurnal(a,p)" == DiurnalTrace,
// "bursty(f,a,b)" == BurstyTrace, "hotspot(p,s,w)" == HotspotTrace
// (pinned by tests/test_workload_compose.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rng/xoshiro256pp.hpp"
#include "workload/generators.hpp"

namespace rlslb::workload {

/// One parsed factor application. Parameters are positional; unset
/// trailing ones hold the documented defaults.
struct ComposeFactor {
  enum class Kind : std::uint8_t { kPoisson, kDiurnal, kBursty, kHotspot };
  Kind kind = Kind::kPoisson;
  double a = 1.0;  // poisson f / diurnal amp / bursty f / hotspot period
  double b = 0.0;  // diurnal period / bursty c2b / hotspot size
  double c = 0.0;  // bursty b2c / hotspot weight
};

/// A parsed spec: sum of products.
struct ComposeSpec {
  std::vector<std::vector<ComposeFactor>> terms;
  /// Canonical re-rendering (full args, shortest number form); equal specs
  /// normalize equally, and ComposedTrace::name() reports this.
  [[nodiscard]] std::string canonical() const;
};

/// Parse a spec string. On failure returns false and stores a message in
/// `error` when non-null.
[[nodiscard]] bool parseComposeSpec(const std::string& spec, ComposeSpec* out,
                                    std::string* error = nullptr);

/// CLI/describe metadata for one factor or combinator of the algebra.
struct TraceFactorSpec {
  std::string name;         // e.g. "diurnal"
  std::string signature;    // e.g. "diurnal(amp=0.8, period=64)"
  std::string role;         // "factor" or "combinator"
  std::string description;  // one line
};

/// The discoverable algebra roster (rlslb describe / rlslb traces).
[[nodiscard]] const std::vector<TraceFactorSpec>& traceFactorRoster();

class ComposedTrace final : public OpenTrace {
 public:
  /// `spec` must parse (asserted); validate with parseComposeSpec first
  /// when the string comes from a user.
  ComposedTrace(const OpenTraceOptions& options, const std::string& spec,
                std::uint64_t seed);
  ComposedTrace(const OpenTraceOptions& options, ComposeSpec spec, std::uint64_t seed);

  [[nodiscard]] std::string name() const override { return "composed:" + canonical_; }
  [[nodiscard]] const std::string& canonicalSpec() const { return canonical_; }

 protected:
  [[nodiscard]] double arrivalRateAt(double t) const override;
  [[nodiscard]] double arrivalRateCeiling() const override;
  [[nodiscard]] double nextBurstAfter(double t) const override;
  void emitBurst(double t) override;

 private:
  /// One MMPP envelope layer: the BurstyTrace modulator, verbatim, on its
  /// own stream (layer k seeded streamSeed(seed, kMmppSalt + k), so layer
  /// 0 matches the standalone BurstyTrace bit-for-bit).
  struct BurstyLayer {
    double factor = 8.0;
    double calmToBurst = 0.05;
    double burstToCalm = 0.5;
    mutable std::vector<double> switchTimes;
    mutable rng::Xoshiro256pp eng{0};
    [[nodiscard]] bool burstingAt(double t) const;
  };
  /// One term factor resolved for evaluation.
  struct EnvFactor {
    ComposeFactor::Kind kind = ComposeFactor::Kind::kPoisson;
    double a = 1.0;
    double b = 0.0;
    std::size_t burstyIndex = 0;  // into burstyLayers_ when kind == kBursty
  };
  struct Overlay {
    double period = 16.0;
    std::int64_t size = 32;
    std::int64_t weight = 8;
    [[nodiscard]] double nextAfter(double t) const;
    [[nodiscard]] bool scheduledAt(double t) const;
  };

  void build(const ComposeSpec& spec, std::uint64_t seed);

  std::string canonical_;
  std::vector<std::vector<EnvFactor>> terms_;
  std::vector<BurstyLayer> burstyLayers_;
  std::vector<Overlay> overlays_;
  double ceiling_ = 0.0;  // precomputed: sum of per-term envelope maxima
};

}  // namespace rlslb::workload
