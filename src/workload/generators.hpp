// Composable workload trace generators for the online serving subsystem.
//
// Every generator is an exact event-driven sampler of an open system in the
// Ganesh et al. [11] style: balls arrive as a (possibly modulated) Poisson
// process of rate lambda(t) * n, each live ball departs at rate mu
// (service) and fires its RLS migration clock at rate `resampleRate` while
// resident. The generator owns the live-ball bookkeeping (which ball
// departs / resamples is part of the *workload*, not the allocator), so a
// trace is a self-contained, replayable object.
//
// Determinism contract: a generator is a pure function of its options and
// seed — the same (options, seed) yields the same event stream on any
// machine, thread count, or consumption pattern. Seeds are derived through
// the same rng::streamSeed machinery as the replication harness.
//
// The roster:
//   PoissonTrace   constant-rate arrivals — the [11] baseline.
//   BurstyTrace    2-state MMPP (Markov-modulated Poisson): calm/burst
//                  phases switching at exponential times; the modulator
//                  trajectory is sampled lazily from its own stream and
//                  arrivals are thinned against the burst-rate ceiling.
//   DiurnalTrace   sinusoid-modulated rate lambda(t) = lambda*(1 +
//                  amp*sin(2*pi*t/period)), thinned against the ceiling.
// Both modulated traces are exact samplers by the Lewis-Shedler thinning
// argument (candidates at the ceiling rate, accepted with probability
// lambda(t)/ceiling); rejected candidates consume rng draws, so draw
// counts differ from PoissonTrace even at identical accepted rates.
//   HotspotTrace   adversarial: background Poisson plus periodic
//                  synchronized bursts of heavy balls at one timestamp —
//                  worst case for placement policies that act on a stale
//                  load snapshot.
// JSONL replay (workload/trace_io.hpp) completes the set.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "rng/xoshiro256pp.hpp"
#include "workload/event.hpp"

namespace rlslb::workload {

/// Pull interface: next(out) yields events in nondecreasing time order
/// until the trace ends (returns false).
class TraceGenerator {
 public:
  virtual ~TraceGenerator() = default;
  virtual bool next(Event* out) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Knobs shared by every stochastic generator.
struct OpenTraceOptions {
  std::int64_t bins = 256;         // n: arrival rate scales with system size
  double arrivalRatePerBin = 1.0;  // lambda: arrivals per bin per time unit
  double departureRate = 0.125;    // mu: per-ball service rate
  double resampleRate = 1.0;       // per-ball RLS clock rate (0 = no migration)
  std::int64_t ballWeight = 1;     // weight of background arrivals
  std::int64_t maxEvents = 1'000'000;  // trace length
};

/// Shared event-loop over superposed exponential clocks, with hooks for
/// rate modulation and scheduled (deterministic-time) arrivals.
class OpenTrace : public TraceGenerator {
 public:
  OpenTrace(const OpenTraceOptions& options, std::uint64_t seed);

  bool next(Event* out) final;

  [[nodiscard]] std::int64_t liveBalls() const {
    return static_cast<std::int64_t>(live_.size());
  }

 protected:
  /// Instantaneous arrival rate per bin at time t; must be <=
  /// arrivalRateCeiling() everywhere (thinning correctness).
  [[nodiscard]] virtual double arrivalRateAt(double t) const;
  [[nodiscard]] virtual double arrivalRateCeiling() const;
  /// Weight of the arrival being emitted at time t (>= 1).
  [[nodiscard]] virtual std::int64_t arrivalWeight(double t);
  /// Earliest scheduled burst strictly after t, or infinity. At that time
  /// emitBurst is invoked to queue synchronized events.
  [[nodiscard]] virtual double nextBurstAfter(double t) const;
  virtual void emitBurst(double t);

  /// Queue one arrival at time t (assigns the ball id); used by emitBurst.
  void queueArrival(double t, std::int64_t weight);

  OpenTraceOptions options_;
  rng::Xoshiro256pp eng_;

 private:
  double time_ = 0.0;
  std::int64_t nextBall_ = 0;
  std::int64_t emitted_ = 0;
  std::vector<std::int64_t> live_;  // live ball ids (swap-remove on departure)
  std::deque<Event> pending_;       // queued burst events, FIFO
};

class PoissonTrace final : public OpenTrace {
 public:
  using OpenTrace::OpenTrace;
  [[nodiscard]] std::string name() const override { return "poisson"; }
};

struct BurstyTraceOptions {
  OpenTraceOptions base;
  double burstRateFactor = 8.0;  // arrival rate multiplier in the burst state
  double calmToBurstRate = 0.05; // modulator switch rate calm -> burst
  double burstToCalmRate = 0.5;  // modulator switch rate burst -> calm
};

/// 2-state MMPP, sampled by thinning: the modulating chain's switch times
/// come from a dedicated stream (lazily extended), and arrival candidates
/// at the burst-rate ceiling are accepted with probability
/// rate(state(t))/ceiling — exact given the modulator trajectory.
class BurstyTrace final : public OpenTrace {
 public:
  BurstyTrace(const BurstyTraceOptions& options, std::uint64_t seed);
  [[nodiscard]] std::string name() const override { return "bursty"; }

 protected:
  [[nodiscard]] double arrivalRateAt(double t) const override;
  [[nodiscard]] double arrivalRateCeiling() const override;

 private:
  BurstyTraceOptions burstOptions_;
  // The modulator trajectory is precomputed lazily as switch times so that
  // arrivalRateAt stays a pure function of t (thinning hook contract).
  mutable std::vector<double> switchTimes_;  // times of state flips, ascending
  mutable rng::Xoshiro256pp modulatorEng_;
  [[nodiscard]] bool burstingAt(double t) const;
};

struct DiurnalTraceOptions {
  OpenTraceOptions base;
  double amplitude = 0.8;  // in [0, 1): peak-to-mean arrival modulation
  double period = 64.0;    // trace-time units per day
};

class DiurnalTrace final : public OpenTrace {
 public:
  DiurnalTrace(const DiurnalTraceOptions& options, std::uint64_t seed);
  [[nodiscard]] std::string name() const override { return "diurnal"; }

 protected:
  [[nodiscard]] double arrivalRateAt(double t) const override;
  [[nodiscard]] double arrivalRateCeiling() const override;

 private:
  DiurnalTraceOptions diurnalOptions_;
};

struct HotspotTraceOptions {
  OpenTraceOptions base;
  double burstPeriod = 16.0;      // deterministic spacing between hot bursts
  std::int64_t burstSize = 32;    // synchronized heavy arrivals per burst
  std::int64_t hotWeight = 8;     // weight of each hot ball
};

/// Adversarial hot-spot workload: every burstPeriod, burstSize balls of
/// weight hotWeight arrive at the *same* timestamp (one epoch sees them all
/// against one stale snapshot), on top of background Poisson traffic.
class HotspotTrace final : public OpenTrace {
 public:
  HotspotTrace(const HotspotTraceOptions& options, std::uint64_t seed);
  [[nodiscard]] std::string name() const override { return "adversarial"; }

 protected:
  [[nodiscard]] double nextBurstAfter(double t) const override;
  void emitBurst(double t) override;

 private:
  HotspotTraceOptions hotspotOptions_;
};

}  // namespace rlslb::workload
