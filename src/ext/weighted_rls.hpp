// Section 7, second future direction: weighted balls.
//
// Ball b has integer weight w_b >= 1; a bin's load is the total weight it
// carries and every ball experiences its bin's load. On activation (balls
// still carry unit-rate clocks, so the activated ball is uniform among the
// m balls regardless of weight) the ball samples a uniform bin and migrates
// iff the move does not worsen its experienced load:
// l_j + w_b <= l_i  (with unit weights this is exactly the paper's
// l_i >= l_j + 1 rule).
//
// Ball identity matters here, so the engine keeps an explicit ball -> bin
// map (memory O(m + n)). The natural fixed point is again a Nash
// equilibrium: no ball can *strictly* improve, i.e. for every ball b,
// l_bin(b) <= minLoad + w_b. Bench E11 measures time to equilibrium and the
// final weighted discrepancy across weight distributions.
#pragma once

#include <cstdint>
#include <vector>

#include "rng/xoshiro256pp.hpp"
#include "sim/balance_tracker.hpp"

namespace rlslb::ext {

class WeightedRlsEngine {
 public:
  /// `weights[b]` is ball b's weight; `startBin[b]` its initial bin.
  WeightedRlsEngine(std::int64_t numBins, std::vector<std::int64_t> weights,
                    std::vector<std::uint32_t> startBin, std::uint64_t seed);

  /// One activation; returns true if the ball moved.
  bool step();

  [[nodiscard]] double time() const { return time_; }
  [[nodiscard]] std::int64_t activations() const { return activations_; }
  [[nodiscard]] std::int64_t moves() const { return moves_; }
  [[nodiscard]] const std::vector<std::int64_t>& loads() const { return loads_; }
  [[nodiscard]] std::int64_t totalWeight() const { return totalWeight_; }
  [[nodiscard]] std::int64_t numBalls() const {
    return static_cast<std::int64_t>(weights_.size());
  }

  /// O(1) balance view in weight units (state().numBalls == totalWeight()).
  [[nodiscard]] const sim::BalanceState& state() const { return tracker_.state(); }

  /// Exact Nash test (no ball can strictly improve), O(n + m).
  [[nodiscard]] bool isEquilibrium() const;

  /// max load - min load, in weight units.
  [[nodiscard]] std::int64_t weightedSpread() const;

  struct RunResult {
    double time = 0.0;
    std::int64_t activations = 0;
    std::int64_t moves = 0;
    bool reachedEquilibrium = false;
    std::int64_t finalSpread = 0;
  };
  /// Thin wrapper over process::run via process::WeightedProcess;
  /// `checkEvery` <= 0 selects the (n + m)/4 default.
  RunResult runUntilEquilibrium(std::int64_t maxActivations, std::int64_t checkEvery = 0);

 private:
  std::vector<std::int64_t> loads_;       // total weight per bin
  sim::BalanceTracker tracker_;
  std::vector<std::int64_t> weights_;     // per ball
  std::vector<std::uint32_t> ballBin_;    // per ball
  rng::Xoshiro256pp eng_;
  std::int64_t totalWeight_ = 0;
  double time_ = 0.0;
  std::int64_t activations_ = 0;
  std::int64_t moves_ = 0;
};

}  // namespace rlslb::ext
