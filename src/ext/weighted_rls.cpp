#include "ext/weighted_rls.hpp"

#include <algorithm>

#include "process/adapters.hpp"
#include "process/process.hpp"
#include "rng/distributions.hpp"
#include "util/assert.hpp"

namespace rlslb::ext {

WeightedRlsEngine::WeightedRlsEngine(std::int64_t numBins, std::vector<std::int64_t> weights,
                                     std::vector<std::uint32_t> startBin, std::uint64_t seed)
    : loads_(static_cast<std::size_t>(numBins), 0),
      weights_(std::move(weights)),
      ballBin_(std::move(startBin)),
      eng_(seed) {
  RLSLB_ASSERT(numBins >= 1);
  RLSLB_ASSERT(weights_.size() == ballBin_.size());
  for (std::size_t b = 0; b < weights_.size(); ++b) {
    RLSLB_ASSERT_MSG(weights_[b] >= 1, "ball weights must be positive integers");
    RLSLB_ASSERT(ballBin_[b] < loads_.size());
    loads_[ballBin_[b]] += weights_[b];
    totalWeight_ += weights_[b];
  }
  tracker_.reset(loads_);
}

bool WeightedRlsEngine::step() {
  const auto m = static_cast<std::uint64_t>(weights_.size());
  RLSLB_ASSERT(m >= 1);
  time_ += rng::exponential(eng_, static_cast<double>(m));
  ++activations_;

  const auto ball = static_cast<std::size_t>(rng::uniformIndex(eng_, m));
  const std::uint32_t src = ballBin_[ball];
  const auto dst =
      static_cast<std::uint32_t>(rng::uniformIndex(eng_, static_cast<std::uint64_t>(loads_.size())));
  if (src == dst) return false;

  const std::int64_t w = weights_[ball];
  // Move iff not worsening: new experienced load l_dst + w <= current l_src.
  if (loads_[dst] + w > loads_[src]) return false;

  tracker_.onLoadChange(loads_[src], loads_[src] - w);
  loads_[src] -= w;
  tracker_.onLoadChange(loads_[dst], loads_[dst] + w);
  loads_[dst] += w;
  ballBin_[ball] = dst;
  ++moves_;
  return true;
}

bool WeightedRlsEngine::isEquilibrium() const {
  const std::int64_t minLoad = *std::min_element(loads_.begin(), loads_.end());
  for (std::size_t b = 0; b < weights_.size(); ++b) {
    // Ball b strictly improves by moving to the min bin iff
    // minLoad + w_b < l_bin(b).
    if (minLoad + weights_[b] < loads_[ballBin_[b]]) return false;
  }
  return true;
}

std::int64_t WeightedRlsEngine::weightedSpread() const {
  const auto [mn, mx] = std::minmax_element(loads_.begin(), loads_.end());
  return *mx - *mn;
}

WeightedRlsEngine::RunResult WeightedRlsEngine::runUntilEquilibrium(std::int64_t maxActivations,
                                                                    std::int64_t checkEvery) {
  process::WeightedProcess self(*this, checkEvery);
  process::RunLimits limits;
  limits.maxEvents = maxActivations - activations_;  // budget is cumulative
  const process::RunResult r =
      process::run(self, process::Target::equilibrium(), limits);
  RunResult out;
  out.time = r.time;
  out.activations = r.activations;
  out.moves = r.moves;
  out.reachedEquilibrium = r.reachedTarget;
  out.finalSpread = weightedSpread();
  return out;
}

}  // namespace rlslb::ext
