#include "ext/speed_rls.hpp"

#include "process/adapters.hpp"
#include "process/process.hpp"
#include "rng/distributions.hpp"
#include "util/assert.hpp"

namespace rlslb::ext {

SpeedRlsEngine::SpeedRlsEngine(const config::Configuration& initial,
                               std::vector<std::int64_t> speeds, std::uint64_t seed)
    : loads_(initial.loads()),
      speeds_(std::move(speeds)),
      tracker_(loads_),
      ballMass_(initial.loads()),
      eng_(seed),
      balls_(initial.numBalls()) {
  RLSLB_ASSERT(speeds_.size() == loads_.size());
  for (std::int64_t s : speeds_) RLSLB_ASSERT_MSG(s >= 1, "speeds must be positive integers");
}

bool SpeedRlsEngine::step() {
  RLSLB_ASSERT(balls_ >= 1);
  time_ += rng::exponential(eng_, static_cast<double>(balls_));
  ++activations_;

  const auto ticket =
      static_cast<std::int64_t>(rng::uniformIndex(eng_, static_cast<std::uint64_t>(balls_)));
  const std::size_t src = ballMass_.upperBound(ticket);
  const auto dst = static_cast<std::size_t>(
      rng::uniformIndex(eng_, static_cast<std::uint64_t>(loads_.size())));
  if (src == dst) return false;

  // Strict improvement: (l_dst + 1)/s_dst < l_src/s_src, exactly.
  if ((loads_[dst] + 1) * speeds_[src] >= loads_[src] * speeds_[dst]) return false;

  tracker_.onLoadChange(loads_[src], loads_[src] - 1);
  --loads_[src];
  tracker_.onLoadChange(loads_[dst], loads_[dst] + 1);
  ++loads_[dst];
  ballMass_.add(src, -1);
  ballMass_.add(dst, +1);
  ++moves_;
  return true;
}

bool SpeedRlsEngine::isEquilibrium() const {
  // max over non-empty bins of l_i/s_i vs min over bins of (l_j+1)/s_j,
  // compared exactly via cross-multiplication.
  std::size_t worst = SIZE_MAX;  // argmax l_i/s_i among non-empty bins
  for (std::size_t i = 0; i < loads_.size(); ++i) {
    if (loads_[i] == 0) continue;
    if (worst == SIZE_MAX ||
        loads_[i] * speeds_[worst] > loads_[worst] * speeds_[i]) {
      worst = i;
    }
  }
  if (worst == SIZE_MAX) return true;  // no balls
  std::size_t best = 0;  // argmin (l_j+1)/s_j
  for (std::size_t j = 1; j < loads_.size(); ++j) {
    if ((loads_[j] + 1) * speeds_[best] < (loads_[best] + 1) * speeds_[j]) best = j;
  }
  // Equilibrium iff even the most loaded ball cannot improve by moving to
  // the least (post-move) loaded bin.
  return (loads_[best] + 1) * speeds_[worst] >= loads_[worst] * speeds_[best];
}

double SpeedRlsEngine::weightedDiscrepancy() const {
  double lo = 1e300;
  double hi = -1e300;
  for (std::size_t i = 0; i < loads_.size(); ++i) {
    const double x = static_cast<double>(loads_[i]) / static_cast<double>(speeds_[i]);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  return hi - lo;
}

SpeedRlsEngine::RunResult SpeedRlsEngine::runUntilEquilibrium(std::int64_t maxActivations,
                                                              std::int64_t checkEvery) {
  process::SpeedProcess self(*this, checkEvery);
  process::RunLimits limits;
  limits.maxEvents = maxActivations - activations_;  // budget is cumulative
  const process::RunResult r =
      process::run(self, process::Target::equilibrium(), limits);
  RunResult out;
  out.time = r.time;
  out.activations = r.activations;
  out.moves = r.moves;
  out.reachedEquilibrium = r.reachedTarget;
  return out;
}

}  // namespace rlslb::ext
