// Section 7, first future direction: bins with speeds.
//
// Bin i has integer speed s_i >= 1 and a ball on it experiences load
// l_i / s_i. On activation a ball samples a uniform random bin and migrates
// iff doing so strictly improves its experienced load:
// (l_j + 1) / s_j < l_i / s_i, evaluated exactly in integers as
// (l_j + 1) * s_i < l_i * s_j.
//
// The natural fixed point is a Nash equilibrium: no ball can strictly
// improve. Equilibrium is detected exactly via the extreme bins:
// max_i over non-empty bins of l_i/s_i <= min_j (l_j + 1)/s_j.
// Bench E11 measures the time to equilibrium across speed skews.
#pragma once

#include <cstdint>
#include <vector>

#include "config/configuration.hpp"
#include "ds/fenwick.hpp"
#include "rng/xoshiro256pp.hpp"
#include "sim/balance_tracker.hpp"

namespace rlslb::ext {

class SpeedRlsEngine {
 public:
  SpeedRlsEngine(const config::Configuration& initial, std::vector<std::int64_t> speeds,
                 std::uint64_t seed);

  /// One activation; returns true if the ball moved.
  bool step();

  [[nodiscard]] double time() const { return time_; }
  [[nodiscard]] std::int64_t activations() const { return activations_; }
  [[nodiscard]] std::int64_t moves() const { return moves_; }
  [[nodiscard]] const std::vector<std::int64_t>& loads() const { return loads_; }
  [[nodiscard]] const std::vector<std::int64_t>& speeds() const { return speeds_; }

  /// O(1) balance view over the *raw* (unweighted-by-speed) loads.
  [[nodiscard]] const sim::BalanceState& state() const { return tracker_.state(); }

  /// Exact Nash test, O(n).
  [[nodiscard]] bool isEquilibrium() const;

  /// max_i l_i/s_i - min_i l_i/s_i (reporting only).
  [[nodiscard]] double weightedDiscrepancy() const;

  struct RunResult {
    double time = 0.0;
    std::int64_t activations = 0;
    std::int64_t moves = 0;
    bool reachedEquilibrium = false;
  };
  /// Run until Nash equilibrium (checked every `checkEvery` activations;
  /// <= 0 selects the n/4 default) or the activation budget runs out. Thin
  /// wrapper over process::run via process::SpeedProcess.
  RunResult runUntilEquilibrium(std::int64_t maxActivations, std::int64_t checkEvery = 0);

 private:
  std::vector<std::int64_t> loads_;
  std::vector<std::int64_t> speeds_;
  sim::BalanceTracker tracker_;
  ds::Fenwick<std::int64_t> ballMass_;
  rng::Xoshiro256pp eng_;
  std::int64_t balls_;
  double time_ = 0.0;
  std::int64_t activations_ = 0;
  std::int64_t moves_ = 0;
};

}  // namespace rlslb::ext
