#include "sim/jump_engine.hpp"

#include <bit>

#include "config/metrics.hpp"
#include "rng/distributions.hpp"
#include "util/assert.hpp"

namespace rlslb::sim {

JumpEngine::JumpEngine(const config::Configuration& initial, std::uint64_t seed)
    : JumpEngine(initial.toMultiset(), seed) {}

JumpEngine::JumpEngine(ds::LoadMultiset initial, std::uint64_t seed, double startTime,
                       std::int64_t startMoves)
    : ms_(std::move(initial)), eng_(seed), time_(startTime), moves_(startMoves) {
  RLSLB_ASSERT(ms_.numBins() >= 1);
  // Cost heuristic: the scan is ~a few ns per level, the index ~a couple
  // hundred ns per tree layer (log2 of the load domain), so the index only
  // pays off when many distinct levels stay in play. The concentrated
  // starts of the Theorem-1 experiments (all-in-one: L = 2, domain = m)
  // must keep the scan; wide staircase/uniform starts get the index.
  const auto domain =
      static_cast<std::uint64_t>(ms_.maxLoad() - ms_.minLoad() + 1);
  const auto treeDepth = static_cast<std::int64_t>(std::bit_width(domain));
  if (ds::LevelIndex::fits(ms_) &&
      static_cast<std::int64_t>(ms_.numLevels()) >= 24 * treeDepth) {
    index_ = std::make_unique<ds::LevelIndex>(ms_);
  }
  refreshState();
}

void JumpEngine::refreshState() {
  const config::Metrics m = config::computeMetrics(ms_);
  state_.numBins = ms_.numBins();
  state_.numBalls = ms_.numBalls();
  state_.minLoad = m.minLoad;
  state_.maxLoad = m.maxLoad;
  state_.overloadedBalls = m.overloadedBalls;
}

const ds::LoadMultiset& JumpEngine::multiset() const {
  if (!msFresh_) {
    ms_ = index_->toMultiset();
    msFresh_ = true;
  }
  return ms_;
}

void JumpEngine::disableLevelIndex() {
  if (!index_) return;
  static_cast<void>(multiset());  // materialize ms_ from the index before dropping it
  index_.reset();
}

void JumpEngine::enableLevelIndex() {
  if (index_) return;
  RLSLB_ASSERT_MSG(ds::LevelIndex::fits(ms_),
                   "enableLevelIndex: configuration exceeds the index bounds");
  index_ = std::make_unique<ds::LevelIndex>(ms_);
}

double JumpEngine::totalRate() const {
  if (index_) {
    return static_cast<double>(index_->totalWeight()) / static_cast<double>(state_.numBins);
  }
  const auto& levels = ms_.levels();
  double total = 0.0;
  std::size_t below = 0;       // first level index with load > v - 2
  std::int64_t cntBelow = 0;   // #bins with load <= v - 2
  for (std::size_t vi = 0; vi < levels.size(); ++vi) {
    const std::int64_t v = levels[vi].load;
    while (below < vi && levels[below].load <= v - 2) {
      cntBelow += levels[below].count;
      ++below;
    }
    total += static_cast<double>(v) * static_cast<double>(levels[vi].count) *
             static_cast<double>(cntBelow);
  }
  return total / static_cast<double>(ms_.numBins());
}

bool JumpEngine::step() { return index_ ? stepIndexed() : stepScan(); }

bool JumpEngine::stepIndexed() {
  const std::int64_t totalW = index_->totalWeight();
  if (totalW == 0) return false;  // absorbed: spread <= 1, perfectly balanced

  const std::int64_t n = state_.numBins;
  time_ += rng::exponential(eng_, static_cast<double>(totalW) / static_cast<double>(n));

  // Source level proportional to v*cnt(v)*C(v-2); the exact integer weights
  // make this a plain uniform-ticket draw.
  const auto ticket = static_cast<std::int64_t>(
      rng::uniformIndex(eng_, static_cast<std::uint64_t>(totalW)));
  const std::int64_t v = index_->sampleSource(ticket);

  // Destination among loads <= v - 2, proportional to count.
  const std::int64_t eligible = index_->countAtMost(v - 2);
  RLSLB_ASSERT(eligible >= 1);
  const auto destTicket = static_cast<std::int64_t>(
      rng::uniformIndex(eng_, static_cast<std::uint64_t>(eligible)));
  const std::int64_t u = index_->sampleDest(destTicket);

  index_->applyBallMove(v, u);
  msFresh_ = false;
  ++moves_;
  const std::int64_t ceilAvg = (state_.numBalls + n - 1) / n;
  if (v > ceilAvg) --state_.overloadedBalls;
  if (u + 1 > ceilAvg) ++state_.overloadedBalls;
  state_.minLoad = index_->minLoad();
  state_.maxLoad = index_->maxLoad();
  return true;
}

bool JumpEngine::stepScan() {
  const auto& levels = ms_.levels();
  const std::size_t numLevels = levels.size();

  // One pass: per-source-level weights w_v = v * cnt(v) * #bins(load <= v-2).
  weightScratch_.resize(numLevels);
  double total = 0.0;
  {
    std::size_t below = 0;
    std::int64_t cntBelow = 0;
    for (std::size_t vi = 0; vi < numLevels; ++vi) {
      const std::int64_t v = levels[vi].load;
      while (below < vi && levels[below].load <= v - 2) {
        cntBelow += levels[below].count;
        ++below;
      }
      weightScratch_[vi] = static_cast<double>(v) * static_cast<double>(levels[vi].count) *
                           static_cast<double>(cntBelow);
      total += weightScratch_[vi];
    }
  }
  if (total <= 0.0) return false;  // absorbed: spread <= 1, perfectly balanced

  const double rate = total / static_cast<double>(ms_.numBins());
  time_ += rng::exponential(eng_, rate);

  // Sample source level proportional to weight.
  std::size_t srcLevel = numLevels - 1;
  {
    double ticket = rng::uniformDouble(eng_) * total;
    for (std::size_t vi = 0; vi < numLevels; ++vi) {
      if (weightScratch_[vi] <= 0.0) continue;
      if (ticket < weightScratch_[vi]) {
        srcLevel = vi;
        break;
      }
      ticket -= weightScratch_[vi];
    }
    // Floating-point slack can step past the last positive weight; clamp to
    // the largest eligible level.
    while (weightScratch_[srcLevel] <= 0.0) --srcLevel;
  }
  const std::int64_t v = levels[srcLevel].load;

  // Sample destination level among loads <= v - 2, proportional to count.
  std::int64_t eligible = 0;
  for (std::size_t ui = 0; ui < srcLevel; ++ui) {
    if (levels[ui].load <= v - 2) eligible += levels[ui].count;
  }
  RLSLB_ASSERT(eligible >= 1);
  std::int64_t ticket =
      static_cast<std::int64_t>(rng::uniformIndex(eng_, static_cast<std::uint64_t>(eligible)));
  std::int64_t u = levels[0].load;
  for (std::size_t ui = 0; ui < srcLevel; ++ui) {
    if (levels[ui].load > v - 2) break;
    if (ticket < levels[ui].count) {
      u = levels[ui].load;
      break;
    }
    ticket -= levels[ui].count;
  }

  // Apply and update metrics incrementally.
  ms_.applyBallMove(v, u);
  ++moves_;
  const std::int64_t n = state_.numBins;
  const std::int64_t ceilAvg = (state_.numBalls + n - 1) / n;
  if (v > ceilAvg) --state_.overloadedBalls;
  if (u + 1 > ceilAvg) ++state_.overloadedBalls;
  state_.minLoad = ms_.minLoad();
  state_.maxLoad = ms_.maxLoad();
  return true;
}

}  // namespace rlslb::sim
