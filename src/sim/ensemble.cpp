#include "sim/ensemble.hpp"

#include <cmath>

#include "rng/splitmix64.hpp"
#include "util/assert.hpp"

namespace rlslb::sim {

EnsembleAccumulator::EnsembleAccumulator(double dt, double horizon) : dt_(dt) {
  RLSLB_ASSERT(dt > 0.0 && horizon >= 0.0);
  const auto gridSize = static_cast<std::size_t>(horizon / dt) + 1;
  discSum_.assign(gridSize, 0.0);
  logDiscSum_.assign(gridSize, 0.0);
  overloadedSum_.assign(gridSize, 0.0);
}

void EnsembleAccumulator::addRun(const std::vector<TrajectoryRecorder::Point>& trajectory) {
  RLSLB_ASSERT(!trajectory.empty());
  RLSLB_ASSERT_MSG(trajectory.front().time == 0.0, "trajectory must start at t = 0");
  std::size_t cursor = 0;
  for (std::size_t g = 0; g < discSum_.size(); ++g) {
    const double t = timeAt(g);
    while (cursor + 1 < trajectory.size() && trajectory[cursor + 1].time <= t) ++cursor;
    const auto& p = trajectory[cursor];
    discSum_[g] += p.discrepancy;
    logDiscSum_[g] += std::log1p(p.discrepancy);
    overloadedSum_[g] += static_cast<double>(p.overloadedBalls);
  }
  ++runs_;
}

double EnsembleAccumulator::meanDiscrepancy(std::size_t g) const {
  RLSLB_ASSERT(runs_ > 0 && g < discSum_.size());
  return discSum_[g] / static_cast<double>(runs_);
}

double EnsembleAccumulator::meanLogDiscrepancy(std::size_t g) const {
  RLSLB_ASSERT(runs_ > 0 && g < logDiscSum_.size());
  return logDiscSum_[g] / static_cast<double>(runs_);
}

double EnsembleAccumulator::meanOverloaded(std::size_t g) const {
  RLSLB_ASSERT(runs_ > 0 && g < overloadedSum_.size());
  return overloadedSum_[g] / static_cast<double>(runs_);
}

void EnsembleAccumulator::merge(const EnsembleAccumulator& other) {
  RLSLB_ASSERT_MSG(other.dt_ == dt_ && other.discSum_.size() == discSum_.size(),
                   "can only merge accumulators on the same grid");
  runs_ += other.runs_;
  for (std::size_t g = 0; g < discSum_.size(); ++g) {
    discSum_[g] += other.discSum_[g];
    logDiscSum_[g] += other.logDiscSum_[g];
    overloadedSum_[g] += other.overloadedSum_[g];
  }
}

EnsembleAccumulator accumulateEnsemble(double dt, double horizon, std::int64_t reps,
                                       std::uint64_t baseSeed, const TrajectoryFn& fn,
                                       runner::ThreadPool& pool) {
  RLSLB_ASSERT(reps >= 0);
  // Replications land in their own slot; the fold below runs in replication
  // order on the calling thread, so the floating-point summation order --
  // hence the result, bit for bit -- is independent of the pool size.
  std::vector<std::vector<TrajectoryRecorder::Point>> trajectories(
      static_cast<std::size_t>(reps));
  pool.parallelFor(reps, [&](std::int64_t rep) {
    trajectories[static_cast<std::size_t>(rep)] =
        fn(rep, rng::streamSeed(baseSeed, static_cast<std::uint64_t>(rep)));
  });
  EnsembleAccumulator ensemble(dt, horizon);
  for (const auto& trajectory : trajectories) ensemble.addRun(trajectory);
  return ensemble;
}

}  // namespace rlslb::sim
