#include "sim/ensemble.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace rlslb::sim {

EnsembleAccumulator::EnsembleAccumulator(double dt, double horizon) : dt_(dt) {
  RLSLB_ASSERT(dt > 0.0 && horizon >= 0.0);
  const auto gridSize = static_cast<std::size_t>(horizon / dt) + 1;
  discSum_.assign(gridSize, 0.0);
  logDiscSum_.assign(gridSize, 0.0);
  overloadedSum_.assign(gridSize, 0.0);
}

void EnsembleAccumulator::addRun(const std::vector<TrajectoryRecorder::Point>& trajectory) {
  RLSLB_ASSERT(!trajectory.empty());
  RLSLB_ASSERT_MSG(trajectory.front().time == 0.0, "trajectory must start at t = 0");
  std::size_t cursor = 0;
  for (std::size_t g = 0; g < discSum_.size(); ++g) {
    const double t = timeAt(g);
    while (cursor + 1 < trajectory.size() && trajectory[cursor + 1].time <= t) ++cursor;
    const auto& p = trajectory[cursor];
    discSum_[g] += p.discrepancy;
    logDiscSum_[g] += std::log1p(p.discrepancy);
    overloadedSum_[g] += static_cast<double>(p.overloadedBalls);
  }
  ++runs_;
}

double EnsembleAccumulator::meanDiscrepancy(std::size_t g) const {
  RLSLB_ASSERT(runs_ > 0 && g < discSum_.size());
  return discSum_[g] / static_cast<double>(runs_);
}

double EnsembleAccumulator::meanLogDiscrepancy(std::size_t g) const {
  RLSLB_ASSERT(runs_ > 0 && g < logDiscSum_.size());
  return logDiscSum_[g] / static_cast<double>(runs_);
}

double EnsembleAccumulator::meanOverloaded(std::size_t g) const {
  RLSLB_ASSERT(runs_ > 0 && g < overloadedSum_.size());
  return overloadedSum_[g] / static_cast<double>(runs_);
}

}  // namespace rlslb::sim
