// BalanceTracker: incremental maintenance of a BalanceState over arbitrary
// single-bin load changes.
//
// NaiveEngine maintains its BalanceState with an unordered histogram and a
// min/max walk, which is O(1) amortized but assumes +-1 load deltas and a
// fixed ball count. The other process families violate one or both
// assumptions: WeightedRls changes a bin's load by an arbitrary ball
// weight, and the open system changes the total ball count (so the
// overloaded-ball threshold ceil(m/n) itself moves). This tracker handles
// the general case with a *dense* per-level count array over the load
// domain [0, maxLoadSeen]:
//
//   - histogram update: two array increments, O(1);
//   - min/max: the walk from the vacated level stops at the changed bin's
//     new level or the first occupied one, so it is bounded by |delta| --
//     O(1) for unit moves, O(w) for a weight-w move;
//   - overloaded balls (sum_i max(0, l_i - ceil(m/n))): O(1) incremental
//     while the ball count's ceiling is stable; a ceiling move (open
//     systems only) re-sums the suffix above it, O(spread).
//
// Memory is O(max load seen), grown on demand -- fine for every tracked
// family (CRS, the ext engines, the open system), whose loads are a small
// multiple of the average. The sim engines keep their own bookkeeping.
// Bulk-rewrite dynamics (the synchronous round protocols rewrite Theta(m)
// loads per round) should NOT pay per-move tracking at all; they recompute
// lazily per round instead (see protocols/round_protocol.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/engine.hpp"

namespace rlslb::sim {

class BalanceTracker {
 public:
  BalanceTracker() = default;
  explicit BalanceTracker(const std::vector<std::int64_t>& loads) { reset(loads); }

  /// Rebuild from scratch, O(n + max load).
  void reset(const std::vector<std::int64_t>& loads);

  /// Account one bin's load changing from `from` to `to` (any delta; the
  /// total ball count may change). O(|to - from|) plus the ceiling re-sum
  /// above.
  void onLoadChange(std::int64_t from, std::int64_t to);

  [[nodiscard]] const BalanceState& state() const { return state_; }

  /// #bins currently at `level` (0 when absent); differential tests.
  [[nodiscard]] std::int64_t levelCount(std::int64_t level) const {
    if (level < 0 || level >= static_cast<std::int64_t>(counts_.size())) return 0;
    return counts_[static_cast<std::size_t>(level)];
  }

 private:
  std::vector<std::int32_t> counts_;  // load value -> #bins (dense)
  BalanceState state_;
  std::int64_t ceilAvg_ = 0;

  void recomputeOverloaded();
};

}  // namespace rlslb::sim
