// Probes: run observers that extract experiment data without slowing the
// engines down (each decides per event in O(1) whether to record).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/engine.hpp"

namespace rlslb::sim {

/// Records the balance state on a fixed time grid (first event at or after
/// each grid point), plus the initial point at t = 0.
class TrajectoryRecorder final : public Probe {
 public:
  struct Point {
    double time = 0.0;
    double discrepancy = 0.0;
    std::int64_t maxLoad = 0;
    std::int64_t minLoad = 0;
    std::int64_t overloadedBalls = 0;
  };

  explicit TrajectoryRecorder(double timeStep);

  void onEvent(const Engine& engine) override;
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }

 private:
  double timeStep_;
  double nextSample_ = 0.0;
  std::vector<Point> points_;
};

/// First-passage times: for each threshold x (descending), the first time the
/// configuration became x-balanced. Used by the Phase 1/2/3 experiments
/// (E5-E7) to split one run into the paper's analysis phases.
class PhaseTracker final : public Probe {
 public:
  /// Thresholds must be strictly descending, e.g. {avg/2, 8*ln n, 1, 0}.
  explicit PhaseTracker(std::vector<std::int64_t> thresholds);

  void onEvent(const Engine& engine) override;

  /// Hit time of thresholds[i], or +inf if never reached during the run.
  [[nodiscard]] double hitTime(std::size_t i) const { return hitTimes_[i]; }
  [[nodiscard]] const std::vector<double>& hitTimes() const { return hitTimes_; }
  [[nodiscard]] const std::vector<std::int64_t>& thresholds() const { return thresholds_; }

 private:
  std::vector<std::int64_t> thresholds_;
  std::vector<double> hitTimes_;
  std::size_t nextIdx_ = 0;
};

/// Records (time, overloadedBalls) every `every`-th event; drives the
/// Lemma 15 overload-decay experiment (E6).
class OverloadDecayRecorder final : public Probe {
 public:
  struct Point {
    double time;
    std::int64_t overloadedBalls;
  };
  explicit OverloadDecayRecorder(std::int64_t every = 1);
  void onEvent(const Engine& engine) override;
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }

 private:
  std::int64_t every_;
  std::int64_t counter_ = 0;
  std::vector<Point> points_;
};

}  // namespace rlslb::sim
