// Engine interface for continuous-time balls-into-bins processes.
//
// An Engine is an exact sampler of a CTMC trajectory: step() advances to the
// next *state-changing* event of that engine's granularity (an activation for
// NaiveEngine, a multiset-changing move for JumpEngine) and time() is the
// continuous simulation clock. All engines expose O(1) balance metrics so run
// loops and probes can test stopping conditions after every event.
#pragma once

#include <cstdint>
#include <limits>

#include "config/metrics.hpp"

namespace rlslb::sim {

/// O(1)-maintained view of the current balance state.
struct BalanceState {
  std::int64_t numBins = 0;
  std::int64_t numBalls = 0;
  std::int64_t minLoad = 0;
  std::int64_t maxLoad = 0;
  std::int64_t overloadedBalls = 0;  // sum_i max(0, l_i - ceil(m/n))

  [[nodiscard]] bool perfectlyBalanced() const {
    return config::isPerfectlyBalanced(minLoad, maxLoad, numBins, numBalls);
  }
  [[nodiscard]] bool xBalanced(std::int64_t x) const {
    return config::isXBalancedInt(minLoad, maxLoad, numBins, numBalls, x);
  }
  [[nodiscard]] double discrepancy() const {
    return config::discrepancy(minLoad, maxLoad, numBins, numBalls);
  }
};

/// Stopping target of a run.
struct Target {
  enum class Kind { PerfectBalance, XBalanced };
  Kind kind = Kind::PerfectBalance;
  std::int64_t x = 0;  // used by XBalanced

  static Target perfect() { return {Kind::PerfectBalance, 0}; }
  static Target xBalanced(std::int64_t x) { return {Kind::XBalanced, x}; }

  [[nodiscard]] bool reached(const BalanceState& s) const {
    return kind == Kind::PerfectBalance ? s.perfectlyBalanced() : s.xBalanced(x);
  }
};

/// Safety budgets so runaway parameter choices fail loudly instead of
/// spinning forever. `maxEvents` counts engine steps (activations for
/// NaiveEngine, multiset-changing moves for JumpEngine).
struct RunLimits {
  double maxTime = std::numeric_limits<double>::infinity();
  std::int64_t maxEvents = std::numeric_limits<std::int64_t>::max();
};

class Engine {
 public:
  virtual ~Engine() = default;

  /// Advance one event. Returns false iff the chain is absorbed (no
  /// transition has positive rate), in which case time()/state() are final.
  virtual bool step() = 0;

  /// Continuous simulation time elapsed.
  [[nodiscard]] virtual double time() const = 0;

  /// Successful (configuration-changing) ball moves so far.
  [[nodiscard]] virtual std::int64_t moves() const = 0;

  /// Ball activations so far; -1 when the engine does not simulate
  /// individual activations (JumpEngine).
  [[nodiscard]] virtual std::int64_t activations() const = 0;

  [[nodiscard]] virtual const BalanceState& state() const = 0;
};

/// Observer called after every engine event (and once before the run).
/// Implementations decimate themselves; see probes.hpp.
class Probe {
 public:
  virtual ~Probe() = default;
  virtual void onEvent(const Engine& engine) = 0;
};

struct RunResult {
  double time = 0.0;
  std::int64_t moves = 0;
  std::int64_t activations = 0;  // -1 if unavailable
  bool reachedTarget = false;
  BalanceState finalState;
};

/// Run `engine` until the target, absorption, or a limit. If `probe` is
/// non-null it sees every event.
RunResult runUntil(Engine& engine, Target target, const RunLimits& limits = {},
                   Probe* probe = nullptr);

}  // namespace rlslb::sim
