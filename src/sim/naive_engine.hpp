// NaiveEngine: the ground-truth simulator. Simulates *every* clock ring of
// the RLS protocol exactly as Section 3 of the paper describes it:
//
//   - activations form a Poisson process of rate m (superposition of the m
//     unit-rate exponential clocks), so inter-activation times are Exp(m);
//   - the activated ball is uniform among the m balls, i.e. the source bin
//     is drawn with probability load/m (balls are identical, so only the
//     bin matters) -- a Fenwick-tree weighted draw;
//   - the destination bin is uniform on [n] (possibly the source itself);
//   - the ball moves iff load(src) >= load(dst) + gap, gap = 1 for the
//     paper's RLS, gap = 2 for the strict variant of [Goldberg'04,
//     Ganesh et al.'12].
//
// Memory is O(n + #distinct loads), independent of m. Each activation costs
// O(log n). Balance metrics are maintained incrementally in O(1) amortized.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "config/configuration.hpp"
#include "ds/fenwick.hpp"
#include "rng/xoshiro256pp.hpp"
#include "sim/engine.hpp"

namespace rlslb::sim {

class NaiveEngine final : public Engine {
 public:
  NaiveEngine(const config::Configuration& initial, std::uint64_t seed, int gap = 1);

  bool step() override;

  /// Like step(), but simulates the activation even when the protocol chain
  /// alone is absorbed (spread < gap): the clock rings, time advances, the
  /// (necessarily failing) move is drawn and rejected. Returns false only
  /// when no clock can ever ring (no balls). The DML runner uses this --
  /// its composite process (protocol + adversary reacting to activations)
  /// is not absorbed just because the protocol is, since a destructive
  /// move can push the spread back above the gap.
  bool stepActivation();

  [[nodiscard]] double time() const override { return time_; }
  [[nodiscard]] std::int64_t moves() const override { return moves_; }
  [[nodiscard]] std::int64_t activations() const override { return activations_; }
  [[nodiscard]] const BalanceState& state() const override { return state_; }

  [[nodiscard]] const std::vector<std::int64_t>& loads() const { return loads_; }
  [[nodiscard]] int gap() const { return gap_; }

  /// Number of distinct load values (O(1); drives the hybrid switch).
  [[nodiscard]] std::size_t numDistinctLoads() const { return histogram_.size(); }

  /// Apply an unconditional ball move (no protocol check), updating all
  /// internal bookkeeping. This is the hook used by the DML adversary
  /// (Lemma 2) to inject destructive moves, and by tests.
  void applyForcedMove(std::size_t src, std::size_t dst);

  /// Detail of the last step(), for probes that care about move structure.
  struct LastEvent {
    bool moved = false;
    std::size_t src = 0;
    std::size_t dst = 0;
  };
  [[nodiscard]] const LastEvent& lastEvent() const { return last_; }

 private:
  std::vector<std::int64_t> loads_;
  ds::Fenwick<std::int64_t> ballMass_;
  std::unordered_map<std::int64_t, std::int64_t> histogram_;  // load -> #bins
  rng::Xoshiro256pp eng_;
  BalanceState state_;
  double time_ = 0.0;
  std::int64_t moves_ = 0;
  std::int64_t activations_ = 0;
  int gap_;
  LastEvent last_;

  void bookkeepMove(std::size_t src, std::size_t dst);
};

}  // namespace rlslb::sim
