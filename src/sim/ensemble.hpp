// Ensemble statistics over replicated trajectories: accumulate per-run
// sample-and-hold values of the balance metrics on a shared time grid, so
// benches and applications can report E[disc(t)] / E[overloaded(t)] curves
// (the figure-style view of the phase decomposition; docs/EXPERIMENTS.md,
// E15).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "runner/thread_pool.hpp"
#include "sim/probes.hpp"

namespace rlslb::sim {

class EnsembleAccumulator {
 public:
  /// Grid points at 0, dt, 2*dt, ..., horizon (inclusive of the last point
  /// <= horizon).
  EnsembleAccumulator(double dt, double horizon);

  /// Fold one run's trajectory in (sample-and-hold between points). The
  /// trajectory must start at time 0 and be time-sorted (TrajectoryRecorder
  /// guarantees both). Trajectories shorter than the horizon hold their
  /// final value.
  void addRun(const std::vector<TrajectoryRecorder::Point>& trajectory);

  /// Fold another accumulator (same dt and grid) into this one; the other
  /// is left untouched. For combining accumulators built separately (e.g.
  /// sharded sweeps across processes or machines). The in-process parallel
  /// path deliberately does NOT use this: accumulateEnsemble folds
  /// trajectories in replication order so its summation order -- hence its
  /// output, bit for bit -- is independent of the pool size, which
  /// per-worker private accumulators could not guarantee.
  void merge(const EnsembleAccumulator& other);

  [[nodiscard]] std::int64_t runs() const { return runs_; }
  [[nodiscard]] std::size_t gridSize() const { return discSum_.size(); }
  [[nodiscard]] double timeAt(std::size_t g) const { return static_cast<double>(g) * dt_; }

  [[nodiscard]] double meanDiscrepancy(std::size_t g) const;
  [[nodiscard]] double meanLogDiscrepancy(std::size_t g) const;  // E[log(1+disc)]
  [[nodiscard]] double meanOverloaded(std::size_t g) const;

 private:
  double dt_;
  std::int64_t runs_ = 0;
  std::vector<double> discSum_;
  std::vector<double> logDiscSum_;
  std::vector<double> overloadedSum_;
};

/// fn(repIndex, seed) -> one run's trajectory (TrajectoryRecorder::points()).
using TrajectoryFn =
    std::function<std::vector<TrajectoryRecorder::Point>(std::int64_t, std::uint64_t)>;

/// Run `reps` trajectory replications on `pool` -- replication r is seeded
/// with rng::streamSeed(baseSeed, r), same contract as runner::runReplications
/// -- and fold them into one accumulator. Trajectories are collected into
/// per-replication slots and folded in replication order, so the ensemble
/// means are bit-identical for any pool size.
EnsembleAccumulator accumulateEnsemble(double dt, double horizon, std::int64_t reps,
                                       std::uint64_t baseSeed, const TrajectoryFn& fn,
                                       runner::ThreadPool& pool);

}  // namespace rlslb::sim
