// Ensemble statistics over replicated trajectories: accumulate per-run
// sample-and-hold values of the balance metrics on a shared time grid, so
// benches and applications can report E[disc(t)] / E[overloaded(t)] curves
// (the figure-style view of the phase decomposition; docs/EXPERIMENTS.md,
// E15).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/probes.hpp"

namespace rlslb::sim {

class EnsembleAccumulator {
 public:
  /// Grid points at 0, dt, 2*dt, ..., horizon (inclusive of the last point
  /// <= horizon).
  EnsembleAccumulator(double dt, double horizon);

  /// Fold one run's trajectory in (sample-and-hold between points). The
  /// trajectory must start at time 0 and be time-sorted (TrajectoryRecorder
  /// guarantees both). Trajectories shorter than the horizon hold their
  /// final value.
  void addRun(const std::vector<TrajectoryRecorder::Point>& trajectory);

  [[nodiscard]] std::int64_t runs() const { return runs_; }
  [[nodiscard]] std::size_t gridSize() const { return discSum_.size(); }
  [[nodiscard]] double timeAt(std::size_t g) const { return static_cast<double>(g) * dt_; }

  [[nodiscard]] double meanDiscrepancy(std::size_t g) const;
  [[nodiscard]] double meanLogDiscrepancy(std::size_t g) const;  // E[log(1+disc)]
  [[nodiscard]] double meanOverloaded(std::size_t g) const;

 private:
  double dt_;
  std::int64_t runs_ = 0;
  std::vector<double> discSum_;
  std::vector<double> logDiscSum_;
  std::vector<double> overloadedSum_;
};

}  // namespace rlslb::sim
