#include "sim/probes.hpp"

#include "util/assert.hpp"

namespace rlslb::sim {

TrajectoryRecorder::TrajectoryRecorder(double timeStep) : timeStep_(timeStep) {
  RLSLB_ASSERT(timeStep > 0.0);
}

void TrajectoryRecorder::onEvent(const Engine& engine) {
  if (engine.time() < nextSample_ && !points_.empty()) return;
  const BalanceState& s = engine.state();
  points_.push_back({engine.time(), s.discrepancy(), s.maxLoad, s.minLoad, s.overloadedBalls});
  while (nextSample_ <= engine.time()) nextSample_ += timeStep_;
}

PhaseTracker::PhaseTracker(std::vector<std::int64_t> thresholds)
    : thresholds_(std::move(thresholds)),
      hitTimes_(thresholds_.size(), std::numeric_limits<double>::infinity()) {
  for (std::size_t i = 1; i < thresholds_.size(); ++i) {
    RLSLB_ASSERT_MSG(thresholds_[i] < thresholds_[i - 1], "thresholds must descend");
  }
}

void PhaseTracker::onEvent(const Engine& engine) {
  const BalanceState& s = engine.state();
  while (nextIdx_ < thresholds_.size() && s.xBalanced(thresholds_[nextIdx_])) {
    hitTimes_[nextIdx_] = engine.time();
    ++nextIdx_;
  }
}

OverloadDecayRecorder::OverloadDecayRecorder(std::int64_t every) : every_(every) {
  RLSLB_ASSERT(every >= 1);
}

void OverloadDecayRecorder::onEvent(const Engine& engine) {
  if (counter_++ % every_ != 0) return;
  points_.push_back({engine.time(), engine.state().overloadedBalls});
}

}  // namespace rlslb::sim
