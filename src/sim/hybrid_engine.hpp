// HybridEngine: NaiveEngine until the number of distinct load values L is
// small, then hand the multiset to JumpEngine.
//
// Cost model: a naive activation is O(log n) but most activations fail once
// the configuration is nearly balanced (Phases 2-3 waste Theta(n^2)
// activations); a jump event is O(L) but never wasted. L is bounded by
// min(n, spread + 1) and the spread is non-increasing under RLS, so once L
// falls below the threshold the jump engine's per-event cost stays small for
// the remainder of the run. Worst cases on both ends are covered: the
// all-in-one start has L = 2 (jump immediately), the staircase start has
// L = n (stay naive until the levels merge).
//
// Both stages sample the same CTMC exactly, so the hybrid trajectory is
// distributed identically to either engine alone (verified by tests).
#pragma once

#include <cstdint>
#include <memory>

#include "config/configuration.hpp"
#include "sim/jump_engine.hpp"
#include "sim/naive_engine.hpp"

namespace rlslb::sim {

class HybridEngine final : public Engine {
 public:
  /// `levelThreshold` <= 0 selects the default (96). The switch condition is
  /// re-checked every `checkInterval` events.
  HybridEngine(const config::Configuration& initial, std::uint64_t seed,
               std::int64_t levelThreshold = 0, std::int64_t checkInterval = 64);

  bool step() override;
  [[nodiscard]] double time() const override { return current().time(); }
  [[nodiscard]] std::int64_t moves() const override { return current().moves(); }
  /// Activations are only meaningful while the naive stage runs; -1 after
  /// the switch.
  [[nodiscard]] std::int64_t activations() const override {
    return jump_ ? -1 : naive_->activations();
  }
  [[nodiscard]] const BalanceState& state() const override { return current().state(); }

  [[nodiscard]] bool switched() const { return jump_ != nullptr; }
  [[nodiscard]] double switchTime() const { return switchTime_; }

 private:
  std::unique_ptr<NaiveEngine> naive_;
  std::unique_ptr<JumpEngine> jump_;
  std::uint64_t seed_;
  std::int64_t levelThreshold_;
  std::int64_t checkInterval_;
  std::int64_t sinceCheck_ = 0;
  double switchTime_ = -1.0;

  [[nodiscard]] const Engine& current() const {
    return jump_ ? static_cast<const Engine&>(*jump_) : *naive_;
  }
  void maybeSwitch();
};

}  // namespace rlslb::sim
