#include "sim/hybrid_engine.hpp"

#include "rng/splitmix64.hpp"
#include "util/assert.hpp"

namespace rlslb::sim {

HybridEngine::HybridEngine(const config::Configuration& initial, std::uint64_t seed,
                           std::int64_t levelThreshold, std::int64_t checkInterval)
    : naive_(std::make_unique<NaiveEngine>(initial, seed)),
      seed_(seed),
      levelThreshold_(levelThreshold > 0 ? levelThreshold : 96),
      checkInterval_(checkInterval) {
  RLSLB_ASSERT(checkInterval_ >= 1);
  maybeSwitch();
}

void HybridEngine::maybeSwitch() {
  if (jump_) return;
  if (static_cast<std::int64_t>(naive_->numDistinctLoads()) > levelThreshold_) return;

  jump_ = std::make_unique<JumpEngine>(ds::LoadMultiset::fromLoads(naive_->loads()),
                                       rng::streamSeed(seed_, 0x6a756d70ULL), naive_->time(),
                                       naive_->moves());
  switchTime_ = naive_->time();
  naive_.reset();
}

bool HybridEngine::step() {
  if (jump_) return jump_->step();
  const bool alive = naive_->step();
  if (++sinceCheck_ >= checkInterval_) {
    sinceCheck_ = 0;
    maybeSwitch();
  }
  return alive;
}

}  // namespace rlslb::sim
