#include "sim/engine.hpp"

namespace rlslb::sim {

RunResult runUntil(Engine& engine, Target target, const RunLimits& limits, Probe* probe) {
  RunResult result;
  if (probe != nullptr) probe->onEvent(engine);
  bool reached = target.reached(engine.state());
  std::int64_t steps = 0;
  while (!reached && engine.time() < limits.maxTime && steps < limits.maxEvents) {
    if (!engine.step()) break;  // absorbed
    ++steps;
    if (probe != nullptr) probe->onEvent(engine);
    reached = target.reached(engine.state());
  }
  result.time = engine.time();
  result.moves = engine.moves();
  result.activations = engine.activations();
  result.finalState = engine.state();
  result.reachedTarget = reached || target.reached(engine.state());
  return result;
}

}  // namespace rlslb::sim
