#include "sim/engine.hpp"

#include "process/adapters.hpp"
#include "process/process.hpp"

namespace rlslb::sim {

namespace {

/// Bridges the engine-level probe API onto the process-level one.
class EngineProbeBridge final : public process::Probe {
 public:
  explicit EngineProbeBridge(sim::Probe* inner) : inner_(inner) {}
  void onEvent(const process::Process& p) override {
    inner_->onEvent(static_cast<const process::EngineProcess&>(p).underlying());
  }

 private:
  sim::Probe* inner_;
};

}  // namespace

RunResult runUntil(Engine& engine, Target target, const RunLimits& limits, Probe* probe) {
  // Retained as the sim-level entry point; the loop itself lives in
  // process::run (process/process.hpp), shared by every process family.
  process::EngineProcess self(engine);
  EngineProbeBridge bridge(probe);
  const process::RunResult r = process::run(self, process::Target::fromSim(target), limits,
                                            probe != nullptr ? &bridge : nullptr);
  RunResult result;
  result.time = r.time;
  result.moves = r.moves;
  result.activations = r.activations;
  result.reachedTarget = r.reachedTarget;
  result.finalState = r.finalState;
  return result;
}

}  // namespace rlslb::sim
