// JumpEngine: event-skipping exact simulator of the *lumped* RLS chain.
//
// Balls and bins are identical, so the load multiset is itself a CTMC
// (lumpability). Two further exact reductions make the endgame cheap:
//
//  1. Failed activations leave the configuration unchanged; the multiset
//     process jumps only at successful moves, with inter-jump times
//     Exp(total rate). Phase 2/3 of the paper waste Theta(n^2) activations
//     per useful move; this engine skips all of them.
//  2. Neutral moves (src load = dst load + 1) permute bin labels but fix the
//     multiset: they are self-loops of the lumped chain and carry no
//     information, so they are skipped as well. A corollary (the paper's
//     Section 3 remark): the ">=" protocol and the strict ">" variant induce
//     the *same* lumped chain, hence identical balancing-time distributions.
//
// The remaining transitions move a ball from a level-v bin to a level-u bin
// with u <= v - 2 at rate v * cnt(v) * cnt(u) / n. Two per-event backends
// sample the same distribution:
//   - ds::LevelIndex, O(log D) with D = initial maxLoad - minLoad + 1:
//     incrementally maintained level weights, exact integer sampling;
//   - the O(L) scan over the sparse level list (L = distinct load values),
//     whose tiny constant wins for concentrated states.
// The constructor picks by a cost heuristic (index iff L exceeds ~24 tree
// depths); enableLevelIndex()/disableLevelIndex() force a backend for the
// micro rows and the cross-backend equivalence tests.
// The chain is absorbed exactly when max - min <= 1, i.e. perfect balance.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "config/configuration.hpp"
#include "ds/level_index.hpp"
#include "ds/load_multiset.hpp"
#include "rng/xoshiro256pp.hpp"
#include "sim/engine.hpp"

namespace rlslb::sim {

class JumpEngine final : public Engine {
 public:
  JumpEngine(const config::Configuration& initial, std::uint64_t seed);
  JumpEngine(ds::LoadMultiset initial, std::uint64_t seed, double startTime = 0.0,
             std::int64_t startMoves = 0);

  bool step() override;
  [[nodiscard]] double time() const override { return time_; }
  [[nodiscard]] std::int64_t moves() const override { return moves_; }
  [[nodiscard]] std::int64_t activations() const override { return -1; }
  [[nodiscard]] const BalanceState& state() const override { return state_; }

  /// Current lumped state. With the level index active this rebuilds the
  /// multiset on first access after a step (O(D log D)); hand-offs and
  /// tests call it, the hot loop must not.
  [[nodiscard]] const ds::LoadMultiset& multiset() const;

  /// Drop the incremental level index and simulate via the O(L) per-event
  /// scan from here on. For the before/after micro rows (micro_substrate)
  /// and the index-vs-scan equivalence tests; sampling distributions are
  /// identical either way, drawn random streams are not.
  void disableLevelIndex();

  /// Force-build the incremental index regardless of the cost heuristic
  /// (requires ds::LevelIndex::fits on the current state).
  void enableLevelIndex();

  /// True when steps go through ds::LevelIndex (the O(log D) path).
  [[nodiscard]] bool usesLevelIndex() const { return index_ != nullptr; }

  /// Total rate of multiset-changing moves in the current state
  /// (R = (1/n) * sum_{u <= v-2} v*cnt(v)*cnt(u)); 0 iff absorbed.
  [[nodiscard]] double totalRate() const;

 private:
  mutable ds::LoadMultiset ms_;
  mutable bool msFresh_ = true;  // ms_ mirrors the index state
  std::unique_ptr<ds::LevelIndex> index_;
  rng::Xoshiro256pp eng_;
  BalanceState state_;
  double time_;
  std::int64_t moves_;
  std::vector<double> weightScratch_;  // per-level source weights (scan path)

  bool stepIndexed();
  bool stepScan();
  void refreshState();
};

}  // namespace rlslb::sim
