#include "sim/naive_engine.hpp"

#include <algorithm>

#include "rng/distributions.hpp"
#include "util/assert.hpp"

namespace rlslb::sim {

NaiveEngine::NaiveEngine(const config::Configuration& initial, std::uint64_t seed, int gap)
    : loads_(initial.loads()), ballMass_(initial.loads()), eng_(seed), gap_(gap) {
  RLSLB_ASSERT(gap_ >= 1);
  RLSLB_ASSERT(initial.numBins() >= 1);
  state_.numBins = initial.numBins();
  state_.numBalls = initial.numBalls();
  const std::int64_t ceilAvg = initial.ceilAverage();
  state_.minLoad = loads_.empty() ? 0 : loads_[0];
  state_.maxLoad = state_.minLoad;
  for (std::int64_t v : loads_) {
    ++histogram_[v];
    state_.minLoad = std::min(state_.minLoad, v);
    state_.maxLoad = std::max(state_.maxLoad, v);
    if (v > ceilAvg) state_.overloadedBalls += v - ceilAvg;
  }
}

void NaiveEngine::bookkeepMove(std::size_t src, std::size_t dst) {
  const std::int64_t v = loads_[src];
  const std::int64_t u = loads_[dst];
  RLSLB_ASSERT(v >= 1);

  loads_[src] = v - 1;
  loads_[dst] = u + 1;
  ballMass_.add(src, -1);
  ballMass_.add(dst, +1);

  // Histogram and min/max maintenance. Min can only move when the last
  // min-level bin changes; ditto max. Under protocol moves min never
  // decreases and max never increases; forced (destructive) moves may push
  // either outward, so both directions are handled.
  auto drop = [&](std::int64_t level) {
    auto it = histogram_.find(level);
    RLSLB_ASSERT(it != histogram_.end() && it->second >= 1);
    if (--it->second == 0) histogram_.erase(it);
  };
  drop(v);
  ++histogram_[v - 1];
  drop(u);
  ++histogram_[u + 1];

  if (v - 1 < state_.minLoad) state_.minLoad = v - 1;
  if (u + 1 > state_.maxLoad) state_.maxLoad = u + 1;
  while (histogram_.find(state_.minLoad) == histogram_.end()) ++state_.minLoad;
  while (histogram_.find(state_.maxLoad) == histogram_.end()) --state_.maxLoad;

  const std::int64_t ceilAvg = (state_.numBalls + state_.numBins - 1) / state_.numBins;
  if (v > ceilAvg) --state_.overloadedBalls;
  if (u + 1 > ceilAvg) ++state_.overloadedBalls;

  ++moves_;
}

bool NaiveEngine::step() {
  if (state_.numBalls == 0) return false;  // no clocks ever ring
  // O(1) absorption check: a move src -> dst needs load(src) >= load(dst) +
  // gap, so once the spread drops below the gap no activation can ever
  // succeed again -- the labeled chain is absorbed even though clocks keep
  // ringing. Without this the strict (gap = 2) variant would simulate
  // failed activations forever whenever it settles at spread 1.
  if (state_.maxLoad - state_.minLoad < gap_) return false;
  return stepActivation();
}

bool NaiveEngine::stepActivation() {
  if (state_.numBalls == 0) return false;  // no clocks ever ring
  time_ += rng::exponential(eng_, static_cast<double>(state_.numBalls));
  ++activations_;

  // Activated ball is uniform among m balls <=> source bin sampled with
  // probability load/m.
  const auto ticket = static_cast<std::int64_t>(
      rng::uniformIndex(eng_, static_cast<std::uint64_t>(state_.numBalls)));
  const std::size_t src = ballMass_.upperBound(ticket);
  const auto dst = static_cast<std::size_t>(
      rng::uniformIndex(eng_, static_cast<std::uint64_t>(state_.numBins)));

  last_.src = src;
  last_.dst = dst;
  if (src != dst && loads_[src] >= loads_[dst] + gap_) {
    bookkeepMove(src, dst);
    last_.moved = true;
  } else {
    last_.moved = false;
  }
  return true;
}

void NaiveEngine::applyForcedMove(std::size_t src, std::size_t dst) {
  RLSLB_ASSERT(src < loads_.size() && dst < loads_.size() && src != dst);
  RLSLB_ASSERT_MSG(loads_[src] >= 1, "forced move from an empty bin");
  bookkeepMove(src, dst);
}

}  // namespace rlslb::sim
