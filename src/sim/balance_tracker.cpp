#include "sim/balance_tracker.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace rlslb::sim {

void BalanceTracker::reset(const std::vector<std::int64_t>& loads) {
  RLSLB_ASSERT_MSG(!loads.empty(), "BalanceTracker needs at least one bin");
  state_ = BalanceState{};
  state_.numBins = static_cast<std::int64_t>(loads.size());
  std::int64_t maxLoad = 0;
  for (const std::int64_t v : loads) {
    RLSLB_ASSERT(v >= 0);
    maxLoad = std::max(maxLoad, v);
    state_.numBalls += v;
  }
  counts_.assign(static_cast<std::size_t>(maxLoad) + 1, 0);
  state_.minLoad = maxLoad;
  state_.maxLoad = 0;
  for (const std::int64_t v : loads) {
    ++counts_[static_cast<std::size_t>(v)];
    state_.minLoad = std::min(state_.minLoad, v);
    state_.maxLoad = std::max(state_.maxLoad, v);
  }
  ceilAvg_ = (state_.numBalls + state_.numBins - 1) / state_.numBins;
  recomputeOverloaded();
}

void BalanceTracker::recomputeOverloaded() {
  state_.overloadedBalls = 0;
  for (std::int64_t v = ceilAvg_ + 1; v <= state_.maxLoad; ++v) {
    state_.overloadedBalls +=
        (v - ceilAvg_) * counts_[static_cast<std::size_t>(v)];
  }
}

void BalanceTracker::onLoadChange(std::int64_t from, std::int64_t to) {
  if (from == to) return;
  RLSLB_ASSERT(to >= 0);

  if (to >= static_cast<std::int64_t>(counts_.size())) {
    counts_.resize(std::max<std::size_t>(static_cast<std::size_t>(to) + 1,
                                         counts_.size() * 2),
                   0);
  }
  // Occupy the new level first so the min/max walks below always terminate
  // there at the latest (the walk is thus bounded by |to - from|).
  ++counts_[static_cast<std::size_t>(to)];
  if (to > state_.maxLoad) state_.maxLoad = to;
  if (to < state_.minLoad) state_.minLoad = to;

  RLSLB_ASSERT_MSG(from >= 0 && from < static_cast<std::int64_t>(counts_.size()) &&
                       counts_[static_cast<std::size_t>(from)] >= 1,
                   "load change from a level no bin occupies");
  if (--counts_[static_cast<std::size_t>(from)] == 0) {
    if (from == state_.maxLoad) {
      while (counts_[static_cast<std::size_t>(state_.maxLoad)] == 0) --state_.maxLoad;
    }
    if (from == state_.minLoad) {
      while (counts_[static_cast<std::size_t>(state_.minLoad)] == 0) ++state_.minLoad;
    }
  }

  state_.numBalls += to - from;
  const std::int64_t newCeil = (state_.numBalls + state_.numBins - 1) / state_.numBins;
  if (newCeil != ceilAvg_) {
    // The overload threshold itself moved (open systems only): re-sum the
    // suffix above the new ceiling.
    ceilAvg_ = newCeil;
    recomputeOverloaded();
    return;
  }
  if (from > ceilAvg_) state_.overloadedBalls -= from - ceilAvg_;
  if (to > ceilAvg_) state_.overloadedBalls += to - ceilAvg_;
}

}  // namespace rlslb::sim
