// OnlineAllocator: incremental ball-to-bin state for the serving subsystem,
// laid out as shard-owned partitions.
//
// The closed-system engines re-simulate a whole configuration to absorption;
// the serving layer instead maintains one long-lived allocation and applies
// the paper's RLS rule *per event* of a workload trace:
//
//   Arrive    place the ball via a d-choice over a load snapshot (d = 1 is
//             the uniform arrival of Ganesh et al. [11]; d = 2 the
//             power-of-two-choices hybrid of E14c).
//   Depart    remove the ball from its bin.
//   Resample  the ball's RLS clock: a uniformly sampled candidate bin, and
//             migration iff the local-search rule accepts — the strict
//             variant load(dst) + w < load(src), which by the paper's
//             Section 3 remark induces the same lumped balance dynamics as
//             ">=" while never paying for a neutral migration (migrations
//             are the expensive operation in a serving system).
//
// State layout (the partitioned-apply substrate; see serve/event_loop.hpp):
// bins are split into contiguous ranges by a BinPartition, and each range
// owns its own Fenwick mass tree and per-bin ball index. Global views
// (loads(), gap(), balanceState(), the load-weighted repair sample) read
// the flat load array or merge the per-shard structures — and because the
// ranges concatenate in bin order, every merged answer is bit-identical
// to the single-structure layout this replaced. configurePartitions()
// rebalances the layout at any epoch boundary; partitioning is an
// execution-layout knob with zero semantic footprint.
//
// Two ways to consume an event stream, with identical semantics:
//
//   apply(event, decision)       Fused sequential path: resolve + mutate in
//                                one pass against live loads. The
//                                single-shard hot path (~37M events/sec).
//
//   resolve(...) + applyShardOps(...)
//                                Partitioned path: resolve() walks events
//                                in trace order touching only the flat load
//                                array + the ball router (exact live-load
//                                acceptance, every semantic counter), and
//                                emits Place/Remove BinOps into per-shard-
//                                pair queues; applyShardOps(s, queues) then
//                                materializes shard s's ops — Fenwick,
//                                ball slots — in canonical
//                                (ordinal, source) order, safely in
//                                parallel with the other owners because
//                                every touched structure is owned by s.
//                                Per bin, the canonical order equals trace
//                                order restricted to that bin, so the final
//                                state is byte-identical to apply().
//
// Per-event cost is O(log n) either way; the point of the split is that
// resolve() is the *cheap* part (array reads/writes + one hash lookup) and
// the O(log n) Fenwick/slot work runs shard-parallel.
//
// Deferred accounting (the serving hot-path batching): every load change —
// fused apply() or partitioned resolve() — updates only the flat `loads_`
// array (plus totalLoad_ and the eager ball slots) and marks the bin dirty
// in its owner shard. The O(log n) Fenwick update is *deferred* to
// flush()/flushShard(), which reconcile each dirty bin ONCE per epoch from
// its net delta (loads_[bin] - binLoad[local]) and skip net-zero bins
// entirely. Rejected resamples — the steady-state common case — never touch
// a structure at all. Fenwick node values depend only on final per-bin
// loads, so the flushed state is byte-identical to the eager per-event
// updates this replaced. There is no maintained level histogram at all:
// min/max/overload queries are a per-epoch observation, so they scan the
// (always-current) flat load array on demand instead of taxing every load
// change in the hot loop. Consumers of the derived structures
// re-synchronize first: applyShardOps() flushes its shard at the end of
// the drain (so the flush work itself runs shard-parallel), repairMove()
// flushes at entry, and the accessors (minLoad/maxLoad/balanceState/
// validate) flush lazily — they are sequential-only by contract, like
// every other mutation entry point.
#pragma once

#include <cstdint>
#include <vector>

#include "ds/fenwick.hpp"
#include "ds/flat_map.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro256pp.hpp"
#include "serve/migration_queue.hpp"
#include "serve/partition.hpp"
#include "sim/engine.hpp"
#include "workload/event.hpp"

namespace rlslb::serve {

struct AllocatorOptions {
  std::int64_t bins = 256;
  int arrivalChoices = 2;  // d: snapshot-least-loaded of d sampled bins
  /// TEST HOOK: invert the local-search acceptance rule, accepting
  /// exactly the resample/repair moves the strict rule rejects. Exists
  /// so the conformance layer can be exercised against a deliberately
  /// broken dynamic (tests/test_obs_monitor.cpp); never set by shipped
  /// scenarios.
  bool invertAcceptance = false;
};

/// The precomputed random choice for one event. Arrive: the chosen bin.
/// Resample: the sampled candidate bin. Depart: unused.
struct Decision {
  std::int32_t bin = -1;
};

struct ServeCounters {
  std::int64_t events = 0;
  std::int64_t arrivals = 0;
  std::int64_t departures = 0;
  std::int64_t resamples = 0;
  std::int64_t migrations = 0;       // accepted resample moves
  std::int64_t rejectedMoves = 0;    // resamples whose rule check failed
  std::int64_t repairAttempts = 0;   // cross-shard repair activations
  std::int64_t repairMigrations = 0; // accepted repair moves
};

class OnlineAllocator {
 public:
  explicit OnlineAllocator(const AllocatorOptions& options);

  /// Re-split the bins into `shards` contiguous ownership ranges (clamped
  /// to [1, bins]; returns the actual count). Rebuilds the per-shard
  /// structures and, when `enableRouter`, the ball -> (bin, weight) router
  /// that resolve() needs. O(n + balls); call between epochs, never while
  /// applyShardOps is in flight. Purely an execution-layout change: every
  /// observable (loads, counters, per-bin ball order, repair stream) is
  /// unchanged.
  int configurePartitions(int shards, bool enableRouter);
  [[nodiscard]] int partitions() const { return partition_.numShards(); }
  [[nodiscard]] const BinPartition& partition() const { return partition_; }

  /// Pure decision phase: thread-safe with respect to *this (reads only
  /// the options) — every mutable input is an argument. Defined inline
  /// below so the event loop's per-event rng + decide sequence fuses into
  /// one loop body.
  [[nodiscard]] Decision decide(const workload::Event& event,
                                const std::vector<std::int64_t>& snapshotLoads,
                                rng::Xoshiro256pp& eng) const;

  /// Fused apply: single-threaded, validates against live state. Works for
  /// any partition count (it locates the owner per touched bin).
  void apply(const workload::Event& event, const Decision& decision);

  /// Fused apply for a whole batch in trace order: per-event semantics of
  /// apply() (which forwards here with count 1), with the counter updates
  /// accumulated in registers across the batch. Depart entries never read
  /// their `decisions` slot, so those slots may hold stale bytes.
  void applyBatch(const workload::Event* events, const Decision* decisions,
                  std::size_t count);

  /// Partitioned apply, step 1 (sequential, trace order): resolve the
  /// event against live loads exactly as apply() would — same acceptance
  /// rule, same counters, same final `loads()` — but defer the per-shard
  /// structure mutations as BinOps pushed into `queues`. `ordinal` is the
  /// epoch-local event index (the canonical order key). Requires the
  /// router (configurePartitions with enableRouter = true).
  void resolve(const workload::Event& event, const Decision& decision,
               std::int64_t ordinal, CrossShardQueues& queues);

  /// resolve() for a whole batch in trace order; event i gets ordinal
  /// baseOrdinal + i. Same register-accumulated counters as applyBatch.
  void resolveBatch(const workload::Event* events, const Decision* decisions,
                    std::int64_t baseOrdinal, std::size_t count,
                    CrossShardQueues& queues);

  /// Partitioned apply, step 2: materialize every op destined for `shard`
  /// in canonical order, then flush the shard's deferred load deltas (so
  /// the per-epoch Fenwick reconciliation itself runs
  /// shard-parallel). Touches only shard-owned state, so distinct shards
  /// may run concurrently; the epoch driver must finish all shards (and
  /// only then clear the queues) before any global accessor or the next
  /// resolve() call.
  void applyShardOps(int shard, const CrossShardQueues& queues);

  /// Reconcile every deferred load delta into the per-shard Fenwick trees
  /// and binLoad views (O(dirty bins); a no-op scan when clean).
  /// Sequential only. The event loop calls this inside its timed region so
  /// the flush cost lands in the epoch it belongs to, never in an observer.
  void flush();

  /// One RLS repair activation on live state: a load-weighted bin pick
  /// (with unit weights this is exactly "activate a uniform ball"), a
  /// uniform candidate bin, and the strict migration rule. Returns whether
  /// a ball moved. Used by the event loop's cross-shard rebalance.
  /// Sequential only (mutates arbitrary shards).
  bool repairMove(rng::Xoshiro256pp& eng);

  [[nodiscard]] std::int64_t numBins() const {
    return static_cast<std::int64_t>(loads_.size());
  }
  [[nodiscard]] const std::vector<std::int64_t>& loads() const { return loads_; }
  [[nodiscard]] std::int64_t totalLoad() const { return totalLoad_; }
  [[nodiscard]] std::int64_t liveBalls() const { return liveBalls_; }
  /// O(n) scan of the live load array (these accessors flush lazily so the
  /// derived structures reconcile too, and are therefore sequential-only,
  /// like every mutation entry point).
  [[nodiscard]] std::int64_t minLoad() const;
  [[nodiscard]] std::int64_t maxLoad() const;
  /// max - min bin load: the serving analogue of the discrepancy.
  [[nodiscard]] std::int64_t gap() const { return maxLoad() - minLoad(); }
  /// The live state as the closed-system balance view (sim::BalanceState,
  /// the same vocabulary process::Process::state() speaks): numBalls is the
  /// total carried *weight*, so discrepancy()/xBalanced() are in weight
  /// units. min/max and the overloaded-ball excess are one O(n) scan of
  /// the live load array.
  [[nodiscard]] sim::BalanceState balanceState() const;
  /// Largest single ball weight ever seen: the closed-system balance floor
  /// for weighted traffic (a gap below the heaviest ball is unreachable).
  [[nodiscard]] std::int64_t maxWeightSeen() const { return maxWeightSeen_; }
  [[nodiscard]] const ServeCounters& counters() const { return counters_; }
  /// Dirty bins settled with a net-nonzero delta since the last
  /// configurePartitions (the "real work" part of the deferred flush;
  /// net-zero dirty entries are skipped and not counted). Summed across
  /// shards in shard order -- the event loop exports per-epoch deltas as
  /// the serve.flushed_bins counter.
  [[nodiscard]] std::int64_t flushedBins() const {
    std::int64_t total = 0;
    for (const Shard& s : shards_) total += s.flushedBins;
    return total;
  }

  /// Heap bytes currently held by the allocator's state structures
  /// (capacity-based: load arrays, Fenwick trees, per-bin ball lists, ball
  /// maps, router). O(bins); sampled by the event loop at epoch boundaries
  /// for the serve.mem.* gauges — a capacity-planning observation, never
  /// part of the deterministic "table" records (vector growth policy is
  /// stdlib-dependent).
  [[nodiscard]] std::int64_t residentBytes() const;

  /// Internal-consistency scan across every shard, the global load array,
  /// and the router when enabled (O(n + m); tests only).
  [[nodiscard]] bool validate() const;

 private:
  struct BallRec {
    std::int32_t bin = 0;
    std::int64_t weight = 0;
    std::int32_t slot = 0;  // index in the owner shard's binBalls for `bin`
  };
  /// Lightweight router record: everything resolve() needs to route and
  /// re-validate an event without consulting owner-local state.
  struct RouteRec {
    std::int32_t bin = 0;
    std::int64_t weight = 0;
  };
  /// One ownership range's private state. applyShardOps(s) writes only
  /// shards_[s]; nothing here is shared across owners. `binLoad`, `mass`,
  /// and `levels` lag `loads_` by the bins listed in `dirty` until the next
  /// flushShard() (see the deferred-accounting note at the top).
  struct Shard {
    std::int64_t firstBin = 0;               // == partition_.beginBin(s)
    std::vector<std::int64_t> binLoad;       // flushed view of loads_ range
    ds::Fenwick<std::int64_t> mass{1};       // local range, local indices
    std::vector<std::vector<std::int64_t>> binBalls;   // ball ids per bin
    ds::FlatMap64<BallRec> balls;            // balls in this range
    std::vector<std::int32_t> dirty;         // global bins with deferred deltas
    // Dirty bins whose deferred delta was net-nonzero when settled --
    // kept per shard because flushShard runs owner-parallel and must not
    // touch shared counters; flushedBins() merges in shard order.
    std::int64_t flushedBins = 0;
  };

  [[nodiscard]] Shard& shardOf(std::int32_t bin) {
    // Single-shard fast path: ownerOf costs an integer division, which is
    // measurable on the fused hot loop (~37M events/sec single-thread).
    if (shards_.size() == 1) return shards_[0];
    return shards_[static_cast<std::size_t>(partition_.ownerOf(bin))];
  }

  // Fused-path helpers (sequential; update loads_/slots, defer the rest).
  void changeLoad(Shard& shard, std::int32_t bin, std::int64_t delta);
  void placeBall(std::int64_t ball, std::int64_t weight, std::int32_t bin);
  void moveBall(std::int64_t ball, Shard& srcShard, BallRec* rec, std::int32_t toBin);
  void eraseBall(Shard& shard, std::int64_t ball, const BallRec& rec);

  // Owner-local materialization (applyShardOps; must not touch globals).
  void materializePlace(Shard& shard, const BinOp& op);
  void materializeRemove(Shard& shard, const BinOp& op);

  // Deferred-accounting plumbing. markDirty is O(1) amortized (the mark
  // byte dedups list entries); flushShard writes only shard-owned state
  // plus this shard's slice of dirtyMark_, so owners may flush in parallel.
  void markDirty(Shard& shard, std::int32_t bin);
  void flushShard(Shard& shard);

  AllocatorOptions options_;
  BinPartition partition_;
  std::vector<Shard> shards_;
  std::vector<std::int64_t> loads_;  // global bin loads; resolve()'s working set
  // Ball -> (bin, weight), maintained only when the partitioned path is
  // active (configurePartitions enableRouter): resolve() cannot ask the
  // owner maps because finding the owner requires the bin it is looking up.
  ds::FlatMap64<RouteRec> router_;
  // One byte per bin: set iff the bin sits in its owner's dirty list.
  std::vector<std::uint8_t> dirtyMark_;
  bool routerEnabled_ = false;
  ServeCounters counters_;
  std::int64_t totalLoad_ = 0;
  std::int64_t liveBalls_ = 0;
  std::int64_t maxWeightSeen_ = 0;
};

inline Decision OnlineAllocator::decide(const workload::Event& event,
                                        const std::vector<std::int64_t>& snapshotLoads,
                                        rng::Xoshiro256pp& eng) const {
  const auto n = static_cast<std::uint64_t>(snapshotLoads.size());
  Decision d;
  switch (event.kind) {
    case workload::EventKind::kArrive: {
      // d-choice over the snapshot: least loaded of `arrivalChoices`
      // uniform samples (ties keep the first draw, so the choice is a
      // deterministic function of the rng stream).
      auto best = static_cast<std::int32_t>(rng::uniformIndex(eng, n));
      for (int c = 1; c < options_.arrivalChoices; ++c) {
        const auto candidate = static_cast<std::int32_t>(rng::uniformIndex(eng, n));
        if (snapshotLoads[static_cast<std::size_t>(candidate)] <
            snapshotLoads[static_cast<std::size_t>(best)]) {
          best = candidate;
        }
      }
      d.bin = best;
      break;
    }
    case workload::EventKind::kResample:
      d.bin = static_cast<std::int32_t>(rng::uniformIndex(eng, n));
      break;
    case workload::EventKind::kDepart:
      break;
  }
  return d;
}

}  // namespace rlslb::serve
