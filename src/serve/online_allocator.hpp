// OnlineAllocator: incremental ball-to-bin state for the serving subsystem,
// laid out as shard-owned partitions.
//
// The closed-system engines re-simulate a whole configuration to absorption;
// the serving layer instead maintains one long-lived allocation and applies
// the paper's RLS rule *per event* of a workload trace:
//
//   Arrive    place the ball via a d-choice over a load snapshot (d = 1 is
//             the uniform arrival of Ganesh et al. [11]; d = 2 the
//             power-of-two-choices hybrid of E14c).
//   Depart    remove the ball from its bin.
//   Resample  the ball's RLS clock: a uniformly sampled candidate bin, and
//             migration iff the local-search rule accepts — the strict
//             variant load(dst) + w < load(src), which by the paper's
//             Section 3 remark induces the same lumped balance dynamics as
//             ">=" while never paying for a neutral migration (migrations
//             are the expensive operation in a serving system).
//
// State layout (the partitioned-apply substrate; see serve/event_loop.hpp):
// bins are split into contiguous ranges by a BinPartition, and each range
// owns its own Fenwick mass tree, load-level histogram, and per-bin ball
// index. Global views (loads(), gap(), balanceState(), the load-weighted
// repair sample) merge the per-shard structures in O(shards) — and because
// the ranges concatenate in bin order, every merged answer is bit-identical
// to the single-structure layout this replaced. configurePartitions()
// rebalances the layout at any epoch boundary; partitioning is an
// execution-layout knob with zero semantic footprint.
//
// Two ways to consume an event stream, with identical semantics:
//
//   apply(event, decision)       Fused sequential path: resolve + mutate in
//                                one pass against live loads. The
//                                single-shard hot path (~25M events/sec).
//
//   resolve(...) + applyShardOps(...)
//                                Partitioned path: resolve() walks events
//                                in trace order touching only the flat load
//                                array + the ball router (exact live-load
//                                acceptance, every semantic counter), and
//                                emits Place/Remove BinOps into per-shard-
//                                pair queues; applyShardOps(s, queues) then
//                                materializes shard s's ops — Fenwick,
//                                level histogram, ball slots — in canonical
//                                (ordinal, source) order, safely in
//                                parallel with the other owners because
//                                every touched structure is owned by s.
//                                Per bin, the canonical order equals trace
//                                order restricted to that bin, so the final
//                                state is byte-identical to apply().
//
// Per-event cost is O(log n) either way; the point of the split is that
// resolve() is the *cheap* part (array reads/writes + one hash lookup) and
// the O(log n) Fenwick/histogram/slot work runs shard-parallel.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "ds/fenwick.hpp"
#include "rng/xoshiro256pp.hpp"
#include "serve/migration_queue.hpp"
#include "serve/partition.hpp"
#include "sim/engine.hpp"
#include "workload/event.hpp"

namespace rlslb::serve {

struct AllocatorOptions {
  std::int64_t bins = 256;
  int arrivalChoices = 2;  // d: snapshot-least-loaded of d sampled bins
};

/// The precomputed random choice for one event. Arrive: the chosen bin.
/// Resample: the sampled candidate bin. Depart: unused.
struct Decision {
  std::int32_t bin = -1;
};

struct ServeCounters {
  std::int64_t events = 0;
  std::int64_t arrivals = 0;
  std::int64_t departures = 0;
  std::int64_t resamples = 0;
  std::int64_t migrations = 0;       // accepted resample moves
  std::int64_t rejectedMoves = 0;    // resamples whose rule check failed
  std::int64_t repairAttempts = 0;   // cross-shard repair activations
  std::int64_t repairMigrations = 0; // accepted repair moves
};

class OnlineAllocator {
 public:
  explicit OnlineAllocator(const AllocatorOptions& options);

  /// Re-split the bins into `shards` contiguous ownership ranges (clamped
  /// to [1, bins]; returns the actual count). Rebuilds the per-shard
  /// structures and, when `enableRouter`, the ball -> (bin, weight) router
  /// that resolve() needs. O(n + balls); call between epochs, never while
  /// applyShardOps is in flight. Purely an execution-layout change: every
  /// observable (loads, counters, per-bin ball order, repair stream) is
  /// unchanged.
  int configurePartitions(int shards, bool enableRouter);
  [[nodiscard]] int partitions() const { return partition_.numShards(); }
  [[nodiscard]] const BinPartition& partition() const { return partition_; }

  /// Pure decision phase: thread-safe with respect to *this (reads only
  /// the options) — every mutable input is an argument.
  [[nodiscard]] Decision decide(const workload::Event& event,
                                const std::vector<std::int64_t>& snapshotLoads,
                                rng::Xoshiro256pp& eng) const;

  /// Fused apply: single-threaded, validates against live state. Works for
  /// any partition count (it locates the owner per touched bin).
  void apply(const workload::Event& event, const Decision& decision);

  /// Partitioned apply, step 1 (sequential, trace order): resolve the
  /// event against live loads exactly as apply() would — same acceptance
  /// rule, same counters, same final `loads()` — but defer the per-shard
  /// structure mutations as BinOps pushed into `queues`. `ordinal` is the
  /// epoch-local event index (the canonical order key). Requires the
  /// router (configurePartitions with enableRouter = true).
  void resolve(const workload::Event& event, const Decision& decision,
               std::int64_t ordinal, CrossShardQueues& queues);

  /// Partitioned apply, step 2: materialize every op destined for `shard`
  /// in canonical order. Touches only shard-owned state, so distinct
  /// shards may run concurrently; the epoch driver must finish all shards
  /// (and only then clear the queues) before any global accessor or the
  /// next resolve() call.
  void applyShardOps(int shard, const CrossShardQueues& queues);

  /// One RLS repair activation on live state: a load-weighted bin pick
  /// (with unit weights this is exactly "activate a uniform ball"), a
  /// uniform candidate bin, and the strict migration rule. Returns whether
  /// a ball moved. Used by the event loop's cross-shard rebalance.
  /// Sequential only (mutates arbitrary shards).
  bool repairMove(rng::Xoshiro256pp& eng);

  [[nodiscard]] std::int64_t numBins() const {
    return static_cast<std::int64_t>(loads_.size());
  }
  [[nodiscard]] const std::vector<std::int64_t>& loads() const { return loads_; }
  [[nodiscard]] std::int64_t totalLoad() const { return totalLoad_; }
  [[nodiscard]] std::int64_t liveBalls() const { return liveBalls_; }
  /// Merged over the per-shard level histograms; O(shards).
  [[nodiscard]] std::int64_t minLoad() const;
  [[nodiscard]] std::int64_t maxLoad() const;
  /// max - min bin load: the serving analogue of the discrepancy.
  [[nodiscard]] std::int64_t gap() const { return maxLoad() - minLoad(); }
  /// The live state as the closed-system balance view (sim::BalanceState,
  /// the same vocabulary process::Process::state() speaks): numBalls is the
  /// total carried *weight*, so discrepancy()/xBalanced() are in weight
  /// units. min/max are O(shards); overloaded balls walks each shard
  /// histogram's tail above ceil(weight/bins) -- short exactly when the
  /// allocator keeps the system balanced.
  [[nodiscard]] sim::BalanceState balanceState() const;
  /// Largest single ball weight ever seen: the closed-system balance floor
  /// for weighted traffic (a gap below the heaviest ball is unreachable).
  [[nodiscard]] std::int64_t maxWeightSeen() const { return maxWeightSeen_; }
  [[nodiscard]] const ServeCounters& counters() const { return counters_; }

  /// Internal-consistency scan across every shard, the global load array,
  /// and the router when enabled (O(n + m); tests only).
  [[nodiscard]] bool validate() const;

 private:
  struct BallRec {
    std::int32_t bin = 0;
    std::int64_t weight = 0;
    std::int32_t slot = 0;  // index in the owner shard's binBalls for `bin`
  };
  /// Lightweight router record: everything resolve() needs to route and
  /// re-validate an event without consulting owner-local state.
  struct RouteRec {
    std::int32_t bin = 0;
    std::int64_t weight = 0;
  };
  /// One ownership range's private state. applyShardOps(s) writes only
  /// shards_[s]; nothing here is shared across owners.
  struct Shard {
    std::int64_t firstBin = 0;               // == partition_.beginBin(s)
    std::vector<std::int64_t> binLoad;       // local copy driving `levels`
    ds::Fenwick<std::int64_t> mass{1};       // local range, local indices
    std::map<std::int64_t, std::int64_t> levels;       // load value -> #bins
    std::vector<std::vector<std::int64_t>> binBalls;   // ball ids per bin
    std::unordered_map<std::int64_t, BallRec> balls;   // balls in this range
  };

  [[nodiscard]] Shard& shardOf(std::int32_t bin) {
    // Single-shard fast path: ownerOf costs an integer division, which is
    // measurable on the fused hot loop (~25M events/sec single-thread).
    if (shards_.size() == 1) return shards_[0];
    return shards_[static_cast<std::size_t>(partition_.ownerOf(bin))];
  }

  // Fused-path helpers (sequential; update shard state + global mirrors).
  void changeLoad(Shard& shard, std::int32_t bin, std::int64_t delta);
  void placeBall(std::int64_t ball, std::int64_t weight, std::int32_t bin);
  void moveBall(std::int64_t ball, Shard& srcShard,
                std::unordered_map<std::int64_t, BallRec>::iterator it,
                std::int32_t toBin);
  void eraseBall(Shard& shard, std::int64_t ball, const BallRec& rec);

  // Owner-local materialization (applyShardOps; must not touch globals).
  void materializePlace(Shard& shard, const BinOp& op);
  void materializeRemove(Shard& shard, const BinOp& op);
  void localChangeLoad(Shard& shard, std::size_t local, std::int64_t delta);

  AllocatorOptions options_;
  BinPartition partition_;
  std::vector<Shard> shards_;
  std::vector<std::int64_t> loads_;  // global bin loads; resolve()'s working set
  // Ball -> (bin, weight), maintained only when the partitioned path is
  // active (configurePartitions enableRouter): resolve() cannot ask the
  // owner maps because finding the owner requires the bin it is looking up.
  std::unordered_map<std::int64_t, RouteRec> router_;
  bool routerEnabled_ = false;
  ServeCounters counters_;
  std::int64_t totalLoad_ = 0;
  std::int64_t liveBalls_ = 0;
  std::int64_t maxWeightSeen_ = 0;
};

}  // namespace rlslb::serve
