// OnlineAllocator: incremental ball-to-bin state for the serving subsystem.
//
// The closed-system engines re-simulate a whole configuration to absorption;
// the serving layer instead maintains one long-lived allocation and applies
// the paper's RLS rule *per event* of a workload trace:
//
//   Arrive    place the ball via a d-choice over a load snapshot (d = 1 is
//             the uniform arrival of Ganesh et al. [11]; d = 2 the
//             power-of-two-choices hybrid of E14c).
//   Depart    remove the ball from its bin.
//   Resample  the ball's RLS clock: a uniformly sampled candidate bin, and
//             migration iff the local-search rule accepts — the strict
//             variant load(dst) + w < load(src), which by the paper's
//             Section 3 remark induces the same lumped balance dynamics as
//             ">=" while never paying for a neutral migration (migrations
//             are the expensive operation in a serving system).
//
// Per-event cost is O(log n): bin loads live in a ds::Fenwick (O(1) total,
// O(log n) update and load-weighted sampling for the repair pass) plus a
// load-level histogram (LoadMultiset's level/count view as an ordered map:
// O(log L) update, O(1) min/max/gap).
//
// Decision/apply split: decide() is a *pure* function of (event, load
// snapshot, rng) so the sharded event loop (serve/event_loop.hpp) can fan
// decisions out across threads; apply() mutates and re-validates the RLS
// rule against live loads, so a stale snapshot can cost an extra rejected
// migration but never a balance-worsening move.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "ds/fenwick.hpp"
#include "rng/xoshiro256pp.hpp"
#include "sim/engine.hpp"
#include "workload/event.hpp"

namespace rlslb::serve {

struct AllocatorOptions {
  std::int64_t bins = 256;
  int arrivalChoices = 2;  // d: snapshot-least-loaded of d sampled bins
};

/// The precomputed random choice for one event. Arrive: the chosen bin.
/// Resample: the sampled candidate bin. Depart: unused.
struct Decision {
  std::int32_t bin = -1;
};

struct ServeCounters {
  std::int64_t events = 0;
  std::int64_t arrivals = 0;
  std::int64_t departures = 0;
  std::int64_t resamples = 0;
  std::int64_t migrations = 0;       // accepted resample moves
  std::int64_t rejectedMoves = 0;    // resamples whose rule check failed
  std::int64_t repairAttempts = 0;   // cross-shard repair activations
  std::int64_t repairMigrations = 0; // accepted repair moves
};

class OnlineAllocator {
 public:
  explicit OnlineAllocator(const AllocatorOptions& options);

  /// Pure decision phase: thread-safe with respect to *this (reads only
  /// the options) — every mutable input is an argument.
  [[nodiscard]] Decision decide(const workload::Event& event,
                                const std::vector<std::int64_t>& snapshotLoads,
                                rng::Xoshiro256pp& eng) const;

  /// Apply phase: single-threaded, validates against live state.
  void apply(const workload::Event& event, const Decision& decision);

  /// One RLS repair activation on live state: a load-weighted bin pick
  /// (with unit weights this is exactly "activate a uniform ball"), a
  /// uniform candidate bin, and the strict migration rule. Returns whether
  /// a ball moved. Used by the event loop's cross-shard rebalance.
  bool repairMove(rng::Xoshiro256pp& eng);

  [[nodiscard]] std::int64_t numBins() const {
    return static_cast<std::int64_t>(loads_.size());
  }
  [[nodiscard]] const std::vector<std::int64_t>& loads() const { return loads_; }
  [[nodiscard]] std::int64_t totalLoad() const { return mass_.total(); }
  [[nodiscard]] std::int64_t liveBalls() const {
    return static_cast<std::int64_t>(balls_.size());
  }
  [[nodiscard]] std::int64_t minLoad() const { return levels_.begin()->first; }
  [[nodiscard]] std::int64_t maxLoad() const { return levels_.rbegin()->first; }
  /// max - min bin load: the serving analogue of the discrepancy.
  [[nodiscard]] std::int64_t gap() const { return maxLoad() - minLoad(); }
  /// The live state as the closed-system balance view (sim::BalanceState,
  /// the same vocabulary process::Process::state() speaks): numBalls is the
  /// total carried *weight*, so discrepancy()/xBalanced() are in weight
  /// units. min/max are O(1); overloaded balls walks the level histogram's
  /// tail above ceil(weight/bins) -- short exactly when the allocator keeps
  /// the system balanced.
  [[nodiscard]] sim::BalanceState balanceState() const;
  /// Largest single ball weight ever seen: the closed-system balance floor
  /// for weighted traffic (a gap below the heaviest ball is unreachable).
  [[nodiscard]] std::int64_t maxWeightSeen() const { return maxWeightSeen_; }
  [[nodiscard]] const ServeCounters& counters() const { return counters_; }

  /// Internal-consistency scan (O(n + m); tests only).
  [[nodiscard]] bool validate() const;

 private:
  AllocatorOptions options_;
  std::vector<std::int64_t> loads_;
  ds::Fenwick<std::int64_t> mass_;        // bin -> load (repair sampling, total)
  std::map<std::int64_t, std::int64_t> levels_;  // load value -> #bins
  struct BallRec {
    std::int32_t bin = 0;
    std::int64_t weight = 0;
    std::int32_t slot = 0;  // index in binBalls_[bin]
  };
  std::unordered_map<std::int64_t, BallRec> balls_;
  std::vector<std::vector<std::int64_t>> binBalls_;  // live ball ids per bin
  ServeCounters counters_;
  std::int64_t maxWeightSeen_ = 0;

  void changeLoad(std::int32_t bin, std::int64_t delta);
  void placeBall(std::int64_t ball, std::int64_t weight, std::int32_t bin);
  void moveBall(std::int64_t ball, BallRec& rec, std::int32_t toBin);
  void eraseBall(std::int64_t ball, const BallRec& rec);
};

}  // namespace rlslb::serve
