#include "serve/event_loop.hpp"

#include <vector>

#include "obs/memory.hpp"
#include "rng/splitmix64.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace rlslb::serve {

namespace {
// Below this many queued ops an epoch drains inline: the parallelFor
// dispatch overhead would dominate the O(log n) materialization work.
constexpr std::int64_t kParallelDrainThreshold = 64;

// Microseconds -> integer nanoseconds for the serve.phase.*_ns counters.
std::int64_t spanNs(double beginUs, double endUs) {
  const double ns = (endUs - beginUs) * 1e3;
  return ns > 0.0 ? static_cast<std::int64_t>(ns) : 0;
}
}  // namespace

ShardedEventLoop::ShardedEventLoop(OnlineAllocator& allocator, const LoopOptions& options,
                                   runner::ThreadPool& pool)
    : allocator_(&allocator), options_(options), pool_(&pool) {
  RLSLB_ASSERT_MSG(options_.shards >= 1, "LoopOptions.shards must be >= 1");
  RLSLB_ASSERT_MSG(options_.epochEvents >= 1, "LoopOptions.epochEvents must be >= 1");
  RLSLB_ASSERT_MSG(options_.repairMovesPerEpoch >= 0,
                   "LoopOptions.repairMovesPerEpoch must be >= 0");
}

bool ShardedEventLoop::usesPartitionedApply() const {
  switch (options_.applyMode) {
    case ApplyMode::kSequential:
      return false;
    case ApplyMode::kPartitioned:
      return true;
    case ApplyMode::kAuto:
      // The partitioned machinery only pays for itself when the drain can
      // actually run concurrently; otherwise keep the fused hot path.
      return pool_->size() > 1 && options_.shards > 1;
  }
  return false;
}

void ShardedEventLoop::registerMetrics() {
  // Registration is the telemetry layer's only allocating step; doing it
  // once per loop (not once per run) keeps re-runs of a reused loop
  // allocation-free end to end (tests/test_obs.cpp pins this).
  obs::MetricsRegistry& m = *options_.metrics;
  ids_.events = m.counter("serve.events");
  ids_.epochs = m.counter("serve.epochs");
  ids_.arrivals = m.counter("serve.arrivals");
  ids_.departures = m.counter("serve.departures");
  ids_.resamples = m.counter("serve.resamples");
  ids_.migrations = m.counter("serve.migrations");
  ids_.rejectedMoves = m.counter("serve.rejected_moves");
  ids_.repairAttempts = m.counter("serve.repair_attempts");
  ids_.repairMigrations = m.counter("serve.repair_migrations");
  ids_.queuedOps = m.counter("serve.queued_ops");
  ids_.crossShardOps = m.counter("serve.cross_shard_ops");
  ids_.flushedBins = m.counter("serve.flushed_bins");
  ids_.drainedOps = m.counter("serve.drained_ops");
  ids_.decideNs = m.counter("serve.phase.decide_ns");
  ids_.resolveNs = m.counter("serve.phase.resolve_ns");
  ids_.drainNs = m.counter("serve.phase.drain_ns");
  ids_.applyNs = m.counter("serve.phase.apply_ns");
  ids_.repairNs = m.counter("serve.phase.repair_ns");
  ids_.flushNs = m.counter("serve.phase.flush_ns");
  ids_.gap = m.gauge("serve.gap");
  ids_.liveBalls = m.gauge("serve.live_balls");
  ids_.totalLoad = m.gauge("serve.total_load");
  ids_.applyShards = m.gauge("serve.apply_shards");
  ids_.queuePeak = m.gauge("serve.queue_peak");
  // Capacity-planning gauges: allocator state bytes (capacity-based
  // accounting), bytes per live ball, and the process peak RSS, sampled at
  // every epoch boundary (outside the timed region).
  ids_.memStateBytes = m.gauge("serve.mem.state_bytes");
  ids_.memBytesPerBall = m.gauge("serve.mem.bytes_per_ball");
  ids_.memPeakRss = m.gauge("serve.mem.peak_rss_bytes");
  ids_.epochGap = m.histogram("serve.epoch_gap", {0, 1, 2, 4, 8, 16, 32, 64, 128});
  ids_.epochNs = m.sketch("serve.epoch_ns");
  metricsRegistered_ = true;
}

ShardedEventLoop::RunResult ShardedEventLoop::run(
    workload::TraceGenerator& trace, const std::function<void(const EpochStats&)>& onEpoch) {
  // Multi-run contract: each run() is self-contained. A reused loop must
  // draw the same decision/repair streams a fresh loop would on the same
  // trace (allocator state, by design, carries over).
  nextOrdinal_ = 0;
  nextEpoch_ = 0;
  const std::uint64_t decisionSeed = rng::streamSeed(options_.seed, kDecisionStreamSalt);
  const std::uint64_t repairSeed = rng::streamSeed(options_.seed, kRepairStreamSalt);
  const auto shards = static_cast<std::size_t>(options_.shards);

  const bool partitioned = usesPartitionedApply();
  // Bin ownership may clamp below options_.shards when bins < shards.
  const int applyShards =
      partitioned ? allocator_->configurePartitions(options_.shards, /*enableRouter=*/true)
                  : allocator_->configurePartitions(1, /*enableRouter=*/false);
  if (partitioned) queues_.reset(applyShards);

  // Decisions only fan out when the pool can actually run shards
  // concurrently; otherwise the hash-bucketing indirection is pure
  // overhead on the hot loop. Either path draws the identical per-event
  // stream streamSeed(decisionSeed, ordinal).
  const bool fanOutDecisions = pool_->size() > 1 && options_.shards > 1;

  // Telemetry: all export happens at epoch boundaries (slab writes plus a
  // few clock samples inside the timed region when instrumented); the
  // per-event hot path never touches the registry or the writer.
  obs::MetricsRegistry* const metrics = options_.metrics;
  obs::TraceWriter* const traceOut = options_.trace;
  obs::MonitorSet* const monitors = options_.monitors;
  const bool instrumented = metrics != nullptr || traceOut != nullptr;
  ServeCounters prevCounters;
  std::int64_t prevFlushedBins = 0;
  if (metrics != nullptr) {
    if (!metricsRegistered_) registerMetrics();
    // Never shrink: another component may own slabs beyond ours.
    if (metrics->shards() < applyShards) metrics->configureShards(applyShards);
    prevCounters = allocator_->counters();
    prevFlushedBins = allocator_->flushedBins();
  }
  // While this run owns a trace, the pool's job spans carry our phase
  // labels; restore whatever the caller had configured afterwards.
  obs::TraceWriter* const prevPoolWriter = pool_->traceWriter();
  const char* const prevPoolLabel = pool_->traceLabel();
  if (traceOut != nullptr) pool_->setTraceWriter(traceOut);

  RunResult result;
  result.queue.applyShards = applyShards;
  // Epoch-scoped storage is reused across epochs: after the first epoch a
  // steady-state epoch performs no heap allocation (pinned by
  // tests/test_serve_hotpath.cpp). `decisions` grows but never zero-fills
  // per epoch; depart slots are simply never read.
  std::vector<workload::Event> batch;
  std::vector<Decision> decisions;
  std::vector<std::vector<std::size_t>> shardEvents(shards);  // batch indices
  batch.reserve(static_cast<std::size_t>(options_.epochEvents));
  // The decision phase reads the live load array: every write to it
  // happens in the apply/repair phases, strictly after the decision
  // barrier, so the bytes it sees are exactly the epoch-start snapshot the
  // loop used to copy.
  const std::vector<std::int64_t>& liveLoads = allocator_->loads();

  // Both parallelFor closures are built ONCE and reused every epoch: a
  // std::function re-wrapped per epoch heap-allocates when the capture
  // list outgrows the small-object buffer, which would break the
  // steady-state zero-allocation contract. Per-epoch state flows through
  // `batch`/`decisions`/`baseOrdinal`, captured by reference.
  std::int64_t baseOrdinal = 0;
  const std::function<void(std::int64_t)> decideShard = [&](std::int64_t shard) {
    rng::Xoshiro256pp eng;  // hoisted: one engine per shard, reseeded per event
    for (const std::size_t i : shardEvents[static_cast<std::size_t>(shard)]) {
      eng.reseed(rng::streamSeed(
          decisionSeed,
          static_cast<std::uint64_t>(baseOrdinal + static_cast<std::int64_t>(i))));
      decisions[i] = allocator_->decide(batch[i], liveLoads, eng);
    }
  };
  const std::function<void(std::int64_t)> drainShard = [&](std::int64_t shard) {
    allocator_->applyShardOps(static_cast<int>(shard), queues_);
    // Owner-exclusive slab write: shard s's drain is the only writer of
    // slab s during the parallel phase (the registry's sharding contract).
    if (metrics != nullptr) {
      metrics->addShard(static_cast<int>(shard), ids_.drainedOps,
                        queues_.pendingFor(static_cast<int>(shard)));
    }
  };

  for (;;) {
    batch.clear();
    workload::Event event;
    while (static_cast<std::int64_t>(batch.size()) < options_.epochEvents &&
           trace.next(&event)) {
      batch.push_back(event);
    }
    if (batch.empty()) break;

    // Timing contract: the timer brackets decision + apply + repair
    // (including the deferred-accounting flush) only; the batch fill above
    // and the stats/callback below are outside. Phase stamps are extra
    // reads of the same steady clock, taken only when instrumented.
    WallTimer wall;
    double tEpoch0 = 0.0;
    double tDecide1 = 0.0;
    double tResolve1 = 0.0;
    double tApply1 = 0.0;
    double tRepair1 = 0.0;
    double tFlush1 = 0.0;
    if (instrumented) tEpoch0 = obs::nowUs();
    baseOrdinal = nextOrdinal_;
    nextOrdinal_ += static_cast<std::int64_t>(batch.size());

    if (decisions.size() < batch.size()) decisions.resize(batch.size());
    if (fanOutDecisions) {
      // Hash-shard by ball id; the partition only distributes work, the
      // decisions do not depend on it (per-event rng streams). Departs use
      // no randomness, so they never enter a bucket at all.
      for (auto& list : shardEvents) list.clear();
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (batch[i].kind == workload::EventKind::kDepart) continue;
        const std::size_t shard =
            static_cast<std::size_t>(
                rng::mix64(static_cast<std::uint64_t>(batch[i].ball))) %
            shards;
        shardEvents[shard].push_back(i);
      }
      if (traceOut != nullptr) pool_->setTraceLabel("decide");
      pool_->parallelFor(static_cast<std::int64_t>(shards), decideShard);
    } else {
      rng::Xoshiro256pp eng;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const workload::Event& e = batch[i];
        if (e.kind == workload::EventKind::kDepart) continue;  // no randomness
        eng.reseed(rng::streamSeed(
            decisionSeed,
            static_cast<std::uint64_t>(baseOrdinal + static_cast<std::int64_t>(i))));
        decisions[i] = allocator_->decide(e, liveLoads, eng);
      }
    }
    if (instrumented) tDecide1 = obs::nowUs();

    // Apply phase in trace order.
    std::int64_t queuedOps = 0;
    std::int64_t crossShardOps = 0;
    std::int64_t queuePeak = 0;
    if (partitioned) {
      // Sequential resolution (trace order, live-load re-validation)...
      queues_.clear();
      allocator_->resolveBatch(batch.data(), decisions.data(), baseOrdinal,
                               batch.size(), queues_);
      queuedOps = queues_.totalPending();
      crossShardOps = queues_.crossPending();
      queuePeak = queues_.peakDepth();
      if (instrumented) tResolve1 = obs::nowUs();
      // ... then every owner materializes its column of the queue matrix.
      if (pool_->size() > 1 && queuedOps >= kParallelDrainThreshold) {
        if (traceOut != nullptr) pool_->setTraceLabel("drain");
        pool_->parallelFor(applyShards, drainShard);
      } else {
        for (int shard = 0; shard < applyShards; ++shard) {
          drainShard(shard);
        }
      }
    } else {
      allocator_->applyBatch(batch.data(), decisions.data(), batch.size());
      if (instrumented) tResolve1 = tDecide1;
    }
    if (instrumented) tApply1 = obs::nowUs();

    // Cross-shard repair budget (sequential; mutates arbitrary shards).
    rng::Xoshiro256pp repairEng(
        rng::streamSeed(repairSeed, static_cast<std::uint64_t>(nextEpoch_)));
    for (int k = 0; k < options_.repairMovesPerEpoch; ++k) allocator_->repairMove(repairEng);
    if (instrumented) tRepair1 = obs::nowUs();

    // Settle any remaining deferred Fenwick deltas inside the
    // timed region — the flush belongs to the epoch's apply cost, not to
    // whichever observer happens to read a merged view first.
    allocator_->flush();
    if (instrumented) tFlush1 = obs::nowUs();

    const double epochWall = wall.seconds();
    result.wallSeconds += epochWall;
    result.events += static_cast<std::int64_t>(batch.size());
    result.queue.queuedOps += queuedOps;
    result.queue.crossShardOps += crossShardOps;
    if (queuePeak > result.queue.queuePeak) result.queue.queuePeak = queuePeak;
    ++result.epochs;

    // Everything below is outside the timed region: stats assembly, the
    // telemetry export, and the callback.
    const bool wantBalance = static_cast<bool>(onEpoch) || metrics != nullptr ||
                             traceOut != nullptr || monitors != nullptr;
    sim::BalanceState balance;
    if (wantBalance) balance = allocator_->balanceState();
    const std::int64_t gap = balance.maxLoad - balance.minLoad;

    if (traceOut != nullptr) {
      traceOut->complete("epoch", "epoch", tEpoch0, tFlush1);
      traceOut->complete("decide", "phase", tEpoch0, tDecide1);
      if (partitioned) {
        traceOut->complete("resolve", "phase", tDecide1, tResolve1);
        traceOut->complete("drain", "phase", tResolve1, tApply1);
      } else {
        traceOut->complete("apply", "phase", tDecide1, tApply1);
      }
      traceOut->complete("repair", "phase", tApply1, tRepair1);
      traceOut->complete("flush", "phase", tRepair1, tFlush1);
      traceOut->counter("serve.gap", "gap", tFlush1, static_cast<double>(gap));
      traceOut->counter("serve.queued_ops", "ops", tFlush1,
                        static_cast<double>(queuedOps));
    }

    if (metrics != nullptr) {
      metrics->add(ids_.events, static_cast<std::int64_t>(batch.size()));
      metrics->add(ids_.epochs, 1);
      const ServeCounters& c = allocator_->counters();
      metrics->add(ids_.arrivals, c.arrivals - prevCounters.arrivals);
      metrics->add(ids_.departures, c.departures - prevCounters.departures);
      metrics->add(ids_.resamples, c.resamples - prevCounters.resamples);
      metrics->add(ids_.migrations, c.migrations - prevCounters.migrations);
      metrics->add(ids_.rejectedMoves, c.rejectedMoves - prevCounters.rejectedMoves);
      metrics->add(ids_.repairAttempts, c.repairAttempts - prevCounters.repairAttempts);
      metrics->add(ids_.repairMigrations,
                   c.repairMigrations - prevCounters.repairMigrations);
      prevCounters = c;
      metrics->add(ids_.queuedOps, queuedOps);
      metrics->add(ids_.crossShardOps, crossShardOps);
      const std::int64_t flushed = allocator_->flushedBins();
      metrics->add(ids_.flushedBins, flushed - prevFlushedBins);
      prevFlushedBins = flushed;
      metrics->add(ids_.decideNs, spanNs(tEpoch0, tDecide1));
      if (partitioned) {
        metrics->add(ids_.resolveNs, spanNs(tDecide1, tResolve1));
        metrics->add(ids_.drainNs, spanNs(tResolve1, tApply1));
      } else {
        metrics->add(ids_.applyNs, spanNs(tDecide1, tApply1));
      }
      metrics->add(ids_.repairNs, spanNs(tApply1, tRepair1));
      metrics->add(ids_.flushNs, spanNs(tRepair1, tFlush1));
      metrics->set(ids_.gap, static_cast<double>(gap));
      metrics->set(ids_.liveBalls, static_cast<double>(allocator_->liveBalls()));
      metrics->set(ids_.totalLoad, static_cast<double>(allocator_->totalLoad()));
      metrics->set(ids_.applyShards, static_cast<double>(applyShards));
      metrics->setMax(ids_.queuePeak, static_cast<double>(queuePeak));
      const auto stateBytes = static_cast<double>(allocator_->residentBytes());
      const std::int64_t live = allocator_->liveBalls();
      metrics->set(ids_.memStateBytes, stateBytes);
      metrics->set(ids_.memBytesPerBall,
                   live > 0 ? stateBytes / static_cast<double>(live) : 0.0);
      metrics->set(ids_.memPeakRss, static_cast<double>(obs::peakRssBytes()));
      metrics->observe(ids_.epochGap, gap);
      metrics->observeSketch(ids_.epochNs, spanNs(tEpoch0, tFlush1));
    }

    if (monitors != nullptr) {
      obs::CheckSample sample;
      sample.origin = obs::CheckSample::Origin::kServeEpoch;
      sample.step = nextEpoch_;
      sample.time = batch.back().time;
      sample.events = static_cast<std::int64_t>(batch.size());
      sample.wallSeconds = epochWall;
      sample.gap = gap;
      sample.liveBalls = allocator_->liveBalls();
      sample.totalLoad = allocator_->totalLoad();
      sample.maxWeight = allocator_->maxWeightSeen();
      const ServeCounters& c = allocator_->counters();
      sample.arrivals = c.arrivals;
      sample.departures = c.departures;
      sample.migrations = c.migrations + c.repairMigrations;
      sample.queuedOps = queuedOps;
      sample.crossShardOps = crossShardOps;
      sample.queuePeak = queuePeak;
      // What the drain consumed: its column sums of the queue matrix
      // (still populated until the next epoch's clear).
      if (partitioned) {
        for (int shard = 0; shard < applyShards; ++shard) {
          sample.drainedOps += queues_.pendingFor(shard);
        }
      }
      monitors->check(sample);
    }

    if (onEpoch) {
      EpochStats stats;
      stats.epoch = nextEpoch_;
      stats.traceTime = batch.back().time;
      stats.events = static_cast<std::int64_t>(batch.size());
      stats.liveBalls = allocator_->liveBalls();
      stats.totalLoad = allocator_->totalLoad();
      stats.balance = balance;
      stats.migrations =
          allocator_->counters().migrations + allocator_->counters().repairMigrations;
      stats.wallSeconds = epochWall;
      stats.queue.applyShards = applyShards;
      stats.queue.queuedOps = queuedOps;
      stats.queue.crossShardOps = crossShardOps;
      stats.queue.queuePeak = queuePeak;
      onEpoch(stats);
    }
    ++nextEpoch_;
  }

  if (traceOut != nullptr) {
    pool_->setTraceWriter(prevPoolWriter);
    pool_->setTraceLabel(prevPoolLabel);
  }
  return result;
}

}  // namespace rlslb::serve
