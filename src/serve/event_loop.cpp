#include "serve/event_loop.hpp"

#include <vector>

#include "rng/splitmix64.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace rlslb::serve {

namespace {
constexpr std::uint64_t kDecisionSalt = 0x64656373ULL;  // "decs"
constexpr std::uint64_t kRepairSalt = 0x72657061ULL;    // "repa"

// Below this many queued ops an epoch drains inline: the parallelFor
// dispatch overhead would dominate the O(log n) materialization work.
constexpr std::int64_t kParallelDrainThreshold = 64;
}  // namespace

ShardedEventLoop::ShardedEventLoop(OnlineAllocator& allocator, const LoopOptions& options,
                                   runner::ThreadPool& pool)
    : allocator_(&allocator), options_(options), pool_(&pool) {
  RLSLB_ASSERT_MSG(options_.shards >= 1, "LoopOptions.shards must be >= 1");
  RLSLB_ASSERT_MSG(options_.epochEvents >= 1, "LoopOptions.epochEvents must be >= 1");
  RLSLB_ASSERT_MSG(options_.repairMovesPerEpoch >= 0,
                   "LoopOptions.repairMovesPerEpoch must be >= 0");
}

bool ShardedEventLoop::usesPartitionedApply() const {
  switch (options_.applyMode) {
    case ApplyMode::kSequential:
      return false;
    case ApplyMode::kPartitioned:
      return true;
    case ApplyMode::kAuto:
      // The partitioned machinery only pays for itself when the drain can
      // actually run concurrently; otherwise keep the fused hot path.
      return pool_->size() > 1 && options_.shards > 1;
  }
  return false;
}

ShardedEventLoop::RunResult ShardedEventLoop::run(
    workload::TraceGenerator& trace, const std::function<void(const EpochStats&)>& onEpoch) {
  // Multi-run contract: each run() is self-contained. A reused loop must
  // draw the same decision/repair streams a fresh loop would on the same
  // trace (allocator state, by design, carries over).
  nextOrdinal_ = 0;
  nextEpoch_ = 0;
  const std::uint64_t decisionSeed = rng::streamSeed(options_.seed, kDecisionSalt);
  const std::uint64_t repairSeed = rng::streamSeed(options_.seed, kRepairSalt);
  const auto shards = static_cast<std::size_t>(options_.shards);

  const bool partitioned = usesPartitionedApply();
  // Bin ownership may clamp below options_.shards when bins < shards.
  const int applyShards =
      partitioned ? allocator_->configurePartitions(options_.shards, /*enableRouter=*/true)
                  : allocator_->configurePartitions(1, /*enableRouter=*/false);
  if (partitioned) queues_.reset(applyShards);

  // Decisions only fan out when the pool can actually run shards
  // concurrently; otherwise the hash-bucketing indirection is pure
  // overhead on the hot loop. Either path draws the identical per-event
  // stream streamSeed(decisionSeed, ordinal).
  const bool fanOutDecisions = pool_->size() > 1 && options_.shards > 1;

  RunResult result;
  // Epoch-scoped storage is reused across epochs: after the first epoch a
  // steady-state epoch performs no heap allocation (pinned by
  // tests/test_serve_hotpath.cpp). `decisions` grows but never zero-fills
  // per epoch; depart slots are simply never read.
  std::vector<workload::Event> batch;
  std::vector<Decision> decisions;
  std::vector<std::vector<std::size_t>> shardEvents(shards);  // batch indices
  batch.reserve(static_cast<std::size_t>(options_.epochEvents));
  // The decision phase reads the live load array: every write to it
  // happens in the apply/repair phases, strictly after the decision
  // barrier, so the bytes it sees are exactly the epoch-start snapshot the
  // loop used to copy.
  const std::vector<std::int64_t>& liveLoads = allocator_->loads();

  // Both parallelFor closures are built ONCE and reused every epoch: a
  // std::function re-wrapped per epoch heap-allocates when the capture
  // list outgrows the small-object buffer, which would break the
  // steady-state zero-allocation contract. Per-epoch state flows through
  // `batch`/`decisions`/`baseOrdinal`, captured by reference.
  std::int64_t baseOrdinal = 0;
  const std::function<void(std::int64_t)> decideShard = [&](std::int64_t shard) {
    rng::Xoshiro256pp eng;  // hoisted: one engine per shard, reseeded per event
    for (const std::size_t i : shardEvents[static_cast<std::size_t>(shard)]) {
      eng.reseed(rng::streamSeed(
          decisionSeed,
          static_cast<std::uint64_t>(baseOrdinal + static_cast<std::int64_t>(i))));
      decisions[i] = allocator_->decide(batch[i], liveLoads, eng);
    }
  };
  const std::function<void(std::int64_t)> drainShard = [this](std::int64_t shard) {
    allocator_->applyShardOps(static_cast<int>(shard), queues_);
  };

  for (;;) {
    batch.clear();
    workload::Event event;
    while (static_cast<std::int64_t>(batch.size()) < options_.epochEvents &&
           trace.next(&event)) {
      batch.push_back(event);
    }
    if (batch.empty()) break;

    // Timing contract: the timer brackets decision + apply + repair
    // (including the deferred-accounting flush) only; the batch fill above
    // and the stats/callback below are outside.
    WallTimer wall;
    baseOrdinal = nextOrdinal_;
    nextOrdinal_ += static_cast<std::int64_t>(batch.size());

    if (decisions.size() < batch.size()) decisions.resize(batch.size());
    if (fanOutDecisions) {
      // Hash-shard by ball id; the partition only distributes work, the
      // decisions do not depend on it (per-event rng streams). Departs use
      // no randomness, so they never enter a bucket at all.
      for (auto& list : shardEvents) list.clear();
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (batch[i].kind == workload::EventKind::kDepart) continue;
        const std::size_t shard =
            static_cast<std::size_t>(
                rng::mix64(static_cast<std::uint64_t>(batch[i].ball))) %
            shards;
        shardEvents[shard].push_back(i);
      }
      pool_->parallelFor(static_cast<std::int64_t>(shards), decideShard);
    } else {
      rng::Xoshiro256pp eng;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const workload::Event& e = batch[i];
        if (e.kind == workload::EventKind::kDepart) continue;  // no randomness
        eng.reseed(rng::streamSeed(
            decisionSeed,
            static_cast<std::uint64_t>(baseOrdinal + static_cast<std::int64_t>(i))));
        decisions[i] = allocator_->decide(e, liveLoads, eng);
      }
    }

    // Apply phase in trace order.
    std::int64_t queuedOps = 0;
    std::int64_t crossShardOps = 0;
    std::int64_t queuePeak = 0;
    if (partitioned) {
      // Sequential resolution (trace order, live-load re-validation)...
      queues_.clear();
      allocator_->resolveBatch(batch.data(), decisions.data(), baseOrdinal,
                               batch.size(), queues_);
      queuedOps = queues_.totalPending();
      crossShardOps = queues_.crossPending();
      queuePeak = queues_.peakDepth();
      // ... then every owner materializes its column of the queue matrix.
      if (pool_->size() > 1 && queuedOps >= kParallelDrainThreshold) {
        pool_->parallelFor(applyShards, drainShard);
      } else {
        for (int shard = 0; shard < applyShards; ++shard) {
          allocator_->applyShardOps(shard, queues_);
        }
      }
    } else {
      allocator_->applyBatch(batch.data(), decisions.data(), batch.size());
    }

    // Cross-shard repair budget (sequential; mutates arbitrary shards).
    rng::Xoshiro256pp repairEng(
        rng::streamSeed(repairSeed, static_cast<std::uint64_t>(nextEpoch_)));
    for (int k = 0; k < options_.repairMovesPerEpoch; ++k) allocator_->repairMove(repairEng);

    // Settle any remaining deferred Fenwick deltas inside the
    // timed region — the flush belongs to the epoch's apply cost, not to
    // whichever observer happens to read a merged view first.
    allocator_->flush();

    const double epochWall = wall.seconds();
    result.wallSeconds += epochWall;
    result.events += static_cast<std::int64_t>(batch.size());
    result.queuedOps += queuedOps;
    result.crossShardOps += crossShardOps;
    ++result.epochs;

    if (onEpoch) {
      EpochStats stats;
      stats.epoch = nextEpoch_;
      stats.traceTime = batch.back().time;
      stats.events = static_cast<std::int64_t>(batch.size());
      stats.liveBalls = allocator_->liveBalls();
      stats.totalLoad = allocator_->totalLoad();
      stats.balance = allocator_->balanceState();
      stats.migrations =
          allocator_->counters().migrations + allocator_->counters().repairMigrations;
      stats.wallSeconds = epochWall;
      stats.applyShards = applyShards;
      stats.queuedOps = queuedOps;
      stats.crossShardOps = crossShardOps;
      stats.queuePeak = queuePeak;
      onEpoch(stats);
    }
    ++nextEpoch_;
  }
  return result;
}

}  // namespace rlslb::serve
