// BinPartition: the serving layer's ownership map from bins to apply
// shards.
//
// Ownership is by contiguous ranges in ascending bin order: shard s owns
// [beginBin(s), endBin(s)), the first `bins % shards` shards holding one
// extra bin. Contiguity is load-bearing, not cosmetic: the global
// load-weighted repair sample (OnlineAllocator::repairMove) walks shard
// mass totals as prefix sums and then descends one shard-local Fenwick,
// which reproduces the single global Fenwick's upperBound() bin-for-bin
// only because the concatenation of the per-shard index ranges IS the
// global bin order. A hashed ownership map would break that byte-identity.
//
// The shard count is clamped to [1, bins] so every shard owns at least one
// bin (the merged min/max/level views assume non-empty per-shard
// histograms).
#pragma once

#include <cstdint>

#include "util/assert.hpp"

namespace rlslb::serve {

class BinPartition {
 public:
  BinPartition() = default;
  BinPartition(std::int64_t bins, int shards)
      : bins_(bins),
        shards_(shards < 1 ? 1
                           : (static_cast<std::int64_t>(shards) > bins
                                  ? static_cast<int>(bins)
                                  : shards)),
        base_(bins_ / shards_),
        extra_(bins_ % shards_) {
    RLSLB_ASSERT_MSG(bins >= 1, "BinPartition needs at least one bin");
  }

  [[nodiscard]] int numShards() const { return shards_; }
  [[nodiscard]] std::int64_t numBins() const { return bins_; }

  /// Owner shard of `bin`; O(1).
  [[nodiscard]] int ownerOf(std::int64_t bin) const {
    const std::int64_t wide = extra_ * (base_ + 1);  // bins held by fat shards
    if (bin < wide) return static_cast<int>(bin / (base_ + 1));
    return static_cast<int>(extra_ + (bin - wide) / base_);
  }

  /// First bin of `shard`'s contiguous range.
  [[nodiscard]] std::int64_t beginBin(int shard) const {
    const auto s = static_cast<std::int64_t>(shard);
    return s < extra_ ? s * (base_ + 1) : extra_ * (base_ + 1) + (s - extra_) * base_;
  }

  /// One past the last bin of `shard`'s range.
  [[nodiscard]] std::int64_t endBin(int shard) const {
    return beginBin(shard) + base_ + (shard < extra_ ? 1 : 0);
  }

 private:
  std::int64_t bins_ = 1;
  int shards_ = 1;
  std::int64_t base_ = 1;   // bins / shards
  std::int64_t extra_ = 0;  // bins % shards: the first `extra_` shards are fat
};

}  // namespace rlslb::serve
