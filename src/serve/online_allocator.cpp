#include "serve/online_allocator.hpp"

#include "rng/distributions.hpp"
#include "util/assert.hpp"

namespace rlslb::serve {

OnlineAllocator::OnlineAllocator(const AllocatorOptions& options)
    : options_(options),
      loads_(static_cast<std::size_t>(options.bins), 0),
      mass_(static_cast<std::size_t>(options.bins)),
      binBalls_(static_cast<std::size_t>(options.bins)) {
  RLSLB_ASSERT(options_.bins >= 1);
  RLSLB_ASSERT(options_.arrivalChoices >= 1);
  levels_[0] = options_.bins;
}

Decision OnlineAllocator::decide(const workload::Event& event,
                                 const std::vector<std::int64_t>& snapshotLoads,
                                 rng::Xoshiro256pp& eng) const {
  const auto n = static_cast<std::uint64_t>(snapshotLoads.size());
  Decision d;
  switch (event.kind) {
    case workload::EventKind::kArrive: {
      // d-choice over the snapshot: least loaded of `arrivalChoices`
      // uniform samples (ties keep the first draw, so the choice is a
      // deterministic function of the rng stream).
      auto best = static_cast<std::int32_t>(rng::uniformIndex(eng, n));
      for (int c = 1; c < options_.arrivalChoices; ++c) {
        const auto candidate = static_cast<std::int32_t>(rng::uniformIndex(eng, n));
        if (snapshotLoads[static_cast<std::size_t>(candidate)] <
            snapshotLoads[static_cast<std::size_t>(best)]) {
          best = candidate;
        }
      }
      d.bin = best;
      break;
    }
    case workload::EventKind::kResample:
      d.bin = static_cast<std::int32_t>(rng::uniformIndex(eng, n));
      break;
    case workload::EventKind::kDepart:
      break;
  }
  return d;
}

void OnlineAllocator::apply(const workload::Event& event, const Decision& decision) {
  ++counters_.events;
  switch (event.kind) {
    case workload::EventKind::kArrive: {
      RLSLB_ASSERT(decision.bin >= 0 && decision.bin < options_.bins);
      ++counters_.arrivals;
      placeBall(event.ball, event.weight, decision.bin);
      break;
    }
    case workload::EventKind::kDepart: {
      ++counters_.departures;
      const auto it = balls_.find(event.ball);
      RLSLB_ASSERT_MSG(it != balls_.end(), "depart event for a ball that is not live");
      const BallRec rec = it->second;
      balls_.erase(it);
      eraseBall(event.ball, rec);
      changeLoad(rec.bin, -rec.weight);
      break;
    }
    case workload::EventKind::kResample: {
      ++counters_.resamples;
      RLSLB_ASSERT(decision.bin >= 0 && decision.bin < options_.bins);
      const auto it = balls_.find(event.ball);
      RLSLB_ASSERT_MSG(it != balls_.end(), "resample event for a ball that is not live");
      BallRec& rec = it->second;
      const std::int32_t src = rec.bin;
      const std::int32_t dst = decision.bin;
      // Strict local-search rule on *live* loads: the sampled candidate
      // came from the epoch snapshot stream, but the acceptance must never
      // worsen balance, so it is re-checked here.
      if (dst != src && loads_[static_cast<std::size_t>(dst)] + rec.weight <
                            loads_[static_cast<std::size_t>(src)]) {
        ++counters_.migrations;
        moveBall(event.ball, rec, dst);
      } else {
        ++counters_.rejectedMoves;
      }
      break;
    }
  }
}

bool OnlineAllocator::repairMove(rng::Xoshiro256pp& eng) {
  const std::int64_t total = mass_.total();
  if (total == 0) return false;
  ++counters_.repairAttempts;
  // Load-weighted bin pick, then a uniform ball within the bin: with unit
  // weights this composes to a uniform pick over live balls (the RLS
  // activation); with weights it biases toward heavy bins, which is the
  // direction a repair pass wants anyway.
  const auto ticket = static_cast<std::int64_t>(
      rng::uniformIndex(eng, static_cast<std::uint64_t>(total)));
  const auto src = static_cast<std::int32_t>(mass_.upperBound(ticket));
  auto& srcBalls = binBalls_[static_cast<std::size_t>(src)];
  RLSLB_ASSERT(!srcBalls.empty());
  const auto pick = static_cast<std::size_t>(
      rng::uniformIndex(eng, static_cast<std::uint64_t>(srcBalls.size())));
  const std::int64_t ball = srcBalls[pick];
  const auto dst = static_cast<std::int32_t>(
      rng::uniformIndex(eng, static_cast<std::uint64_t>(loads_.size())));
  BallRec& rec = balls_.at(ball);
  if (dst == src || loads_[static_cast<std::size_t>(dst)] + rec.weight >=
                        loads_[static_cast<std::size_t>(src)]) {
    return false;
  }
  ++counters_.repairMigrations;
  moveBall(ball, rec, dst);
  return true;
}

void OnlineAllocator::changeLoad(std::int32_t bin, std::int64_t delta) {
  const auto i = static_cast<std::size_t>(bin);
  const std::int64_t before = loads_[i];
  const std::int64_t after = before + delta;
  RLSLB_ASSERT(after >= 0);
  loads_[i] = after;
  mass_.add(i, delta);
  const auto it = levels_.find(before);
  if (--(it->second) == 0) levels_.erase(it);
  ++levels_[after];
}

void OnlineAllocator::placeBall(std::int64_t ball, std::int64_t weight, std::int32_t bin) {
  RLSLB_ASSERT(weight >= 1);
  if (weight > maxWeightSeen_) maxWeightSeen_ = weight;
  auto& slot = binBalls_[static_cast<std::size_t>(bin)];
  const auto [it, inserted] =
      balls_.emplace(ball, BallRec{bin, weight, static_cast<std::int32_t>(slot.size())});
  RLSLB_ASSERT_MSG(inserted, "arrive event for a ball id that is already live");
  (void)it;
  slot.push_back(ball);
  changeLoad(bin, weight);
}

void OnlineAllocator::eraseBall(std::int64_t ball, const BallRec& rec) {
  auto& slot = binBalls_[static_cast<std::size_t>(rec.bin)];
  RLSLB_ASSERT(slot[static_cast<std::size_t>(rec.slot)] == ball);
  const std::int64_t moved = slot.back();
  slot[static_cast<std::size_t>(rec.slot)] = moved;
  slot.pop_back();
  if (moved != ball) balls_.at(moved).slot = rec.slot;
}

void OnlineAllocator::moveBall(std::int64_t ball, BallRec& rec, std::int32_t toBin) {
  const BallRec old = rec;
  eraseBall(ball, old);
  auto& dstSlot = binBalls_[static_cast<std::size_t>(toBin)];
  rec.bin = toBin;
  rec.slot = static_cast<std::int32_t>(dstSlot.size());
  dstSlot.push_back(ball);
  changeLoad(old.bin, -old.weight);
  changeLoad(toBin, old.weight);
}

sim::BalanceState OnlineAllocator::balanceState() const {
  sim::BalanceState state;
  state.numBins = numBins();
  state.numBalls = mass_.total();  // total carried weight
  state.minLoad = minLoad();
  state.maxLoad = maxLoad();
  const std::int64_t ceilAvg = (state.numBalls + state.numBins - 1) / state.numBins;
  for (auto it = levels_.upper_bound(ceilAvg); it != levels_.end(); ++it) {
    state.overloadedBalls += (it->first - ceilAvg) * it->second;
  }
  return state;
}

bool OnlineAllocator::validate() const {
  std::int64_t total = 0;
  std::map<std::int64_t, std::int64_t> levels;
  for (std::size_t bin = 0; bin < loads_.size(); ++bin) {
    std::int64_t binLoad = 0;
    for (std::size_t s = 0; s < binBalls_[bin].size(); ++s) {
      const auto it = balls_.find(binBalls_[bin][s]);
      if (it == balls_.end()) return false;
      if (it->second.bin != static_cast<std::int32_t>(bin)) return false;
      if (it->second.slot != static_cast<std::int32_t>(s)) return false;
      binLoad += it->second.weight;
    }
    if (binLoad != loads_[bin]) return false;
    if (mass_.get(bin) != loads_[bin]) return false;
    total += binLoad;
    ++levels[loads_[bin]];
  }
  if (total != mass_.total()) return false;
  return levels == levels_;
}

}  // namespace rlslb::serve
