#include "serve/online_allocator.hpp"

#include <utility>

#include "rng/distributions.hpp"
#include "util/assert.hpp"

namespace rlslb::serve {

OnlineAllocator::OnlineAllocator(const AllocatorOptions& options)
    : options_(options), loads_(static_cast<std::size_t>(options.bins), 0) {
  RLSLB_ASSERT_MSG(options_.bins >= 1, "AllocatorOptions.bins must be >= 1");
  RLSLB_ASSERT_MSG(options_.arrivalChoices >= 1,
                   "AllocatorOptions.arrivalChoices must be >= 1");
  configurePartitions(1, /*enableRouter=*/false);
}

int OnlineAllocator::configurePartitions(int shards, bool enableRouter) {
  // Reconcile deferred deltas before anything else (including the
  // early-return): the rebuild below drops the per-shard dirty lists, and a
  // dirtyMark_ bit without a matching list entry would make markDirty skip
  // that bin forever.
  flush();
  const BinPartition next(numBins(), shards);
  RLSLB_ASSERT_MSG(enableRouter || next.numShards() == 1,
                   "a multi-shard layout requires the ball router (resolve() and the "
                   "fused apply() both locate balls through it)");
  if (!shards_.empty() && next.numShards() == partition_.numShards() &&
      enableRouter == routerEnabled_) {
    return partition_.numShards();  // layout already in place
  }

  // Collect every live ball record; bins keep their per-bin ball order
  // (moved wholesale below), so slots — and with them the repair pick
  // stream — survive any repartition.
  std::vector<std::pair<std::int64_t, BallRec>> live;
  live.reserve(static_cast<std::size_t>(liveBalls_));
  for (const Shard& shard : shards_) {
    shard.balls.forEach(
        [&](std::int64_t ball, const BallRec& rec) { live.emplace_back(ball, rec); });
  }
  std::vector<std::vector<std::int64_t>> allBinBalls(loads_.size());
  for (Shard& shard : shards_) {
    for (std::size_t local = 0; local < shard.binBalls.size(); ++local) {
      allBinBalls[static_cast<std::size_t>(shard.firstBin) + local] =
          std::move(shard.binBalls[local]);
    }
  }

  partition_ = next;
  const int count = partition_.numShards();
  shards_.assign(static_cast<std::size_t>(count), Shard{});
  for (int s = 0; s < count; ++s) {
    Shard& shard = shards_[static_cast<std::size_t>(s)];
    shard.firstBin = partition_.beginBin(s);
    const auto begin = static_cast<std::size_t>(shard.firstBin);
    const auto end = static_cast<std::size_t>(partition_.endBin(s));
    shard.binLoad.assign(loads_.begin() + static_cast<std::ptrdiff_t>(begin),
                         loads_.begin() + static_cast<std::ptrdiff_t>(end));
    shard.mass = ds::Fenwick<std::int64_t>(shard.binLoad);
    shard.binBalls.assign(end - begin, {});
    for (std::size_t bin = begin; bin < end; ++bin) {
      shard.binBalls[bin - begin] = std::move(allBinBalls[bin]);
    }
  }
  for (const auto& [ball, rec] : live) {
    shardOf(rec.bin).balls.emplace(ball, rec);
  }
  dirtyMark_.assign(loads_.size(), 0);

  routerEnabled_ = enableRouter;
  router_.clear();
  if (routerEnabled_) {
    router_.reserve(live.size());
    for (const auto& [ball, rec] : live) {
      router_.emplace(ball, RouteRec{rec.bin, rec.weight});
    }
  }
  return count;
}

void OnlineAllocator::apply(const workload::Event& event, const Decision& decision) {
  applyBatch(&event, &decision, 1);
}

void OnlineAllocator::applyBatch(const workload::Event* events, const Decision* decisions,
                                 std::size_t count) {
  // The fused hot loop. Counters accumulate in locals so they live in
  // registers across the batch instead of bouncing through memory per
  // event; the logic per event is exactly apply()'s (which forwards here
  // with count 1). Depart slots of `decisions` are never read.
  std::int64_t arrivals = 0;
  std::int64_t departures = 0;
  std::int64_t resamples = 0;
  std::int64_t migrations = 0;
  std::int64_t rejected = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const workload::Event& event = events[i];
    switch (event.kind) {
      case workload::EventKind::kArrive: {
        const Decision& decision = decisions[i];
        RLSLB_ASSERT(decision.bin >= 0 && decision.bin < options_.bins);
        ++arrivals;
        placeBall(event.ball, event.weight, decision.bin);
        break;
      }
      case workload::EventKind::kDepart: {
        ++departures;
        Shard* shard;
        if (routerEnabled_) {
          RouteRec* route = router_.find(event.ball);
          RLSLB_ASSERT_MSG(route != nullptr, "depart event for a ball that is not live");
          shard = &shardOf(route->bin);
          router_.erase(route);
        } else {
          shard = &shards_[0];
        }
        BallRec* it = shard->balls.find(event.ball);
        RLSLB_ASSERT_MSG(it != nullptr, "depart event for a ball that is not live");
        const BallRec rec = *it;
        shard->balls.erase(it);
        eraseBall(*shard, event.ball, rec);
        changeLoad(*shard, rec.bin, -rec.weight);
        --liveBalls_;
        break;
      }
      case workload::EventKind::kResample: {
        const Decision& decision = decisions[i];
        ++resamples;
        RLSLB_ASSERT(decision.bin >= 0 && decision.bin < options_.bins);
        Shard* shard;
        if (routerEnabled_) {
          const RouteRec* route = router_.find(event.ball);
          RLSLB_ASSERT_MSG(route != nullptr, "resample event for a ball that is not live");
          shard = &shardOf(route->bin);
        } else {
          shard = &shards_[0];
        }
        BallRec* it = shard->balls.find(event.ball);
        RLSLB_ASSERT_MSG(it != nullptr, "resample event for a ball that is not live");
        const std::int32_t src = it->bin;
        const std::int32_t dst = decision.bin;
        // Strict local-search rule on *live* loads: the sampled candidate
        // came from the epoch snapshot stream, but the acceptance must never
        // worsen balance, so it is re-checked here.
        if (dst != src && ((loads_[static_cast<std::size_t>(dst)] + it->weight <
                            loads_[static_cast<std::size_t>(src)]) !=
                           options_.invertAcceptance)) {
          ++migrations;
          moveBall(event.ball, *shard, it, dst);
        } else {
          ++rejected;
        }
        break;
      }
    }
  }
  counters_.events += static_cast<std::int64_t>(count);
  counters_.arrivals += arrivals;
  counters_.departures += departures;
  counters_.resamples += resamples;
  counters_.migrations += migrations;
  counters_.rejectedMoves += rejected;
}

void OnlineAllocator::resolve(const workload::Event& event, const Decision& decision,
                              std::int64_t ordinal, CrossShardQueues& queues) {
  resolveBatch(&event, &decision, ordinal, 1, queues);
}

void OnlineAllocator::resolveBatch(const workload::Event* events,
                                   const Decision* decisions, std::int64_t baseOrdinal,
                                   std::size_t count, CrossShardQueues& queues) {
  RLSLB_ASSERT_MSG(routerEnabled_,
                   "resolve() needs the ball router; configurePartitions(shards, "
                   "/*enableRouter=*/true) first");
  // The partitioned hot loop: same local-counter treatment as applyBatch;
  // per-event logic is exactly resolve()'s (which forwards here).
  std::int64_t arrivals = 0;
  std::int64_t departures = 0;
  std::int64_t resamples = 0;
  std::int64_t migrations = 0;
  std::int64_t rejected = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const workload::Event& event = events[i];
    const std::int64_t ordinal = baseOrdinal + static_cast<std::int64_t>(i);
    switch (event.kind) {
      case workload::EventKind::kArrive: {
        const Decision& decision = decisions[i];
        RLSLB_ASSERT(decision.bin >= 0 && decision.bin < options_.bins);
        ++arrivals;
        RLSLB_ASSERT(event.weight >= 1);
        if (event.weight > maxWeightSeen_) maxWeightSeen_ = event.weight;
        const bool inserted =
            router_.emplace(event.ball, RouteRec{decision.bin, event.weight}).second;
        RLSLB_ASSERT_MSG(inserted, "arrive event for a ball id that is already live");
        loads_[static_cast<std::size_t>(decision.bin)] += event.weight;
        totalLoad_ += event.weight;
        ++liveBalls_;
        const int owner = partition_.ownerOf(decision.bin);
        markDirty(shards_[static_cast<std::size_t>(owner)], decision.bin);
        queues.push(owner, owner,
                    BinOp{ordinal, event.ball, event.weight, decision.bin,
                          BinOp::Kind::kPlace});
        break;
      }
      case workload::EventKind::kDepart: {
        ++departures;
        RouteRec* route = router_.find(event.ball);
        RLSLB_ASSERT_MSG(route != nullptr, "depart event for a ball that is not live");
        const RouteRec rec = *route;
        router_.erase(route);
        loads_[static_cast<std::size_t>(rec.bin)] -= rec.weight;
        RLSLB_ASSERT(loads_[static_cast<std::size_t>(rec.bin)] >= 0);
        totalLoad_ -= rec.weight;
        --liveBalls_;
        const int owner = partition_.ownerOf(rec.bin);
        markDirty(shards_[static_cast<std::size_t>(owner)], rec.bin);
        queues.push(owner, owner,
                    BinOp{ordinal, event.ball, rec.weight, rec.bin,
                          BinOp::Kind::kRemove});
        break;
      }
      case workload::EventKind::kResample: {
        const Decision& decision = decisions[i];
        ++resamples;
        RLSLB_ASSERT(decision.bin >= 0 && decision.bin < options_.bins);
        RouteRec* route = router_.find(event.ball);
        RLSLB_ASSERT_MSG(route != nullptr, "resample event for a ball that is not live");
        RouteRec& rec = *route;
        const std::int32_t src = rec.bin;
        const std::int32_t dst = decision.bin;
        // Exactly apply()'s live-load acceptance: loads_ has absorbed every
        // earlier event of the epoch, so the partitioned path accepts and
        // rejects the very same moves the fused path would.
        if (dst != src && ((loads_[static_cast<std::size_t>(dst)] + rec.weight <
                            loads_[static_cast<std::size_t>(src)]) !=
                           options_.invertAcceptance)) {
          ++migrations;
          loads_[static_cast<std::size_t>(src)] -= rec.weight;
          loads_[static_cast<std::size_t>(dst)] += rec.weight;
          const int from = partition_.ownerOf(src);
          const int to = partition_.ownerOf(dst);
          markDirty(shards_[static_cast<std::size_t>(from)], src);
          markDirty(shards_[static_cast<std::size_t>(to)], dst);
          // Remove before Place so a same-owner migration replays in the
          // right order out of the (from, from) queue.
          queues.push(from, from,
                      BinOp{ordinal, event.ball, rec.weight, src, BinOp::Kind::kRemove});
          queues.push(from, to,
                      BinOp{ordinal, event.ball, rec.weight, dst, BinOp::Kind::kPlace});
          rec.bin = dst;
        } else {
          ++rejected;
        }
        break;
      }
    }
  }
  counters_.events += static_cast<std::int64_t>(count);
  counters_.arrivals += arrivals;
  counters_.departures += departures;
  counters_.resamples += resamples;
  counters_.migrations += migrations;
  counters_.rejectedMoves += rejected;
}

void OnlineAllocator::applyShardOps(int shard, const CrossShardQueues& queues) {
  RLSLB_ASSERT(shard >= 0 && shard < partition_.numShards());
  Shard& s = shards_[static_cast<std::size_t>(shard)];
  queues.drainTo(shard, [&](const BinOp& op) {
    if (op.kind == BinOp::Kind::kPlace) {
      materializePlace(s, op);
    } else {
      materializeRemove(s, op);
    }
  });
  // Reconcile this shard's deferred deltas here so the per-epoch
  // Fenwick work rides the parallel drain instead of a
  // sequential sweep. Safe concurrently: flushShard writes only s-owned
  // state plus s's slice of dirtyMark_, and reads loads_ (quiescent during
  // the drain).
  flushShard(s);
}

bool OnlineAllocator::repairMove(rng::Xoshiro256pp& eng) {
  const std::int64_t total = totalLoad_;
  if (total == 0) return false;
  // The weighted walk below reads the per-shard Fenwick trees, so any
  // deferred deltas must land first. After one repair's own move, the next
  // call's flush touches at most two bins.
  flush();
  ++counters_.repairAttempts;
  // Load-weighted bin pick, then a uniform ball within the bin: with unit
  // weights this composes to a uniform pick over live balls (the RLS
  // activation); with weights it biases toward heavy bins, which is the
  // direction a repair pass wants anyway. The two-level walk (shard mass
  // prefix, then the owner's local Fenwick) lands on the same bin the old
  // single global Fenwick's upperBound did, because ownership ranges
  // concatenate in bin order.
  auto ticket = static_cast<std::int64_t>(
      rng::uniformIndex(eng, static_cast<std::uint64_t>(total)));
  std::size_t owner = 0;
  while (ticket >= shards_[owner].mass.total()) {
    ticket -= shards_[owner].mass.total();
    ++owner;
    RLSLB_ASSERT(owner < shards_.size());
  }
  Shard& srcShard = shards_[owner];
  const auto src = static_cast<std::int32_t>(
      srcShard.firstBin + static_cast<std::int64_t>(srcShard.mass.upperBound(ticket)));
  auto& srcBalls =
      srcShard.binBalls[static_cast<std::size_t>(src - srcShard.firstBin)];
  RLSLB_ASSERT(!srcBalls.empty());
  const auto pick = static_cast<std::size_t>(
      rng::uniformIndex(eng, static_cast<std::uint64_t>(srcBalls.size())));
  const std::int64_t ball = srcBalls[pick];
  const auto dst = static_cast<std::int32_t>(
      rng::uniformIndex(eng, static_cast<std::uint64_t>(loads_.size())));
  BallRec* it = srcShard.balls.find(ball);
  RLSLB_ASSERT(it != nullptr);
  if (dst == src || ((loads_[static_cast<std::size_t>(dst)] + it->weight <
                      loads_[static_cast<std::size_t>(src)]) ==
                     options_.invertAcceptance)) {
    return false;
  }
  ++counters_.repairMigrations;
  moveBall(ball, srcShard, it, dst);
  return true;
}

void OnlineAllocator::changeLoad(Shard& shard, std::int32_t bin, std::int64_t delta) {
  const auto g = static_cast<std::size_t>(bin);
  const std::int64_t after = loads_[g] + delta;
  RLSLB_ASSERT(after >= 0);
  loads_[g] = after;
  totalLoad_ += delta;
  markDirty(shard, bin);
}

void OnlineAllocator::markDirty(Shard& shard, std::int32_t bin) {
  std::uint8_t& mark = dirtyMark_[static_cast<std::size_t>(bin)];
  if (mark == 0) {
    mark = 1;
    shard.dirty.push_back(bin);
  }
}

void OnlineAllocator::flush() {
  for (Shard& shard : shards_) {
    if (!shard.dirty.empty()) flushShard(shard);
  }
}

void OnlineAllocator::flushShard(Shard& shard) {
  for (const std::int32_t bin : shard.dirty) {
    const auto local = static_cast<std::size_t>(bin - shard.firstBin);
    const std::int64_t after = loads_[static_cast<std::size_t>(bin)];
    const std::int64_t before = shard.binLoad[local];
    dirtyMark_[static_cast<std::size_t>(bin)] = 0;
    if (after == before) continue;  // net-zero over the batch: nothing to do
    shard.binLoad[local] = after;
    shard.mass.add(local, after - before);
    ++shard.flushedBins;
  }
  shard.dirty.clear();
}

void OnlineAllocator::placeBall(std::int64_t ball, std::int64_t weight, std::int32_t bin) {
  RLSLB_ASSERT(weight >= 1);
  if (weight > maxWeightSeen_) maxWeightSeen_ = weight;
  Shard& shard = shardOf(bin);
  auto& slot = shard.binBalls[static_cast<std::size_t>(bin - shard.firstBin)];
  const auto [it, inserted] = shard.balls.emplace(
      ball, BallRec{bin, weight, static_cast<std::int32_t>(slot.size())});
  RLSLB_ASSERT_MSG(inserted, "arrive event for a ball id that is already live");
  (void)it;
  if (routerEnabled_) {
    const bool routed = router_.emplace(ball, RouteRec{bin, weight}).second;
    RLSLB_ASSERT(routed);
  }
  slot.push_back(ball);
  changeLoad(shard, bin, weight);
  ++liveBalls_;
}

void OnlineAllocator::eraseBall(Shard& shard, std::int64_t ball, const BallRec& rec) {
  auto& slot = shard.binBalls[static_cast<std::size_t>(rec.bin - shard.firstBin)];
  RLSLB_ASSERT(slot[static_cast<std::size_t>(rec.slot)] == ball);
  const std::int64_t moved = slot.back();
  slot[static_cast<std::size_t>(rec.slot)] = moved;
  slot.pop_back();
  if (moved != ball) shard.balls.at(moved).slot = rec.slot;
}

void OnlineAllocator::moveBall(std::int64_t ball, Shard& srcShard, BallRec* rec,
                               std::int32_t toBin) {
  const BallRec old = *rec;
  eraseBall(srcShard, ball, old);
  Shard& dstShard = shardOf(toBin);
  auto& dstSlot = dstShard.binBalls[static_cast<std::size_t>(toBin - dstShard.firstBin)];
  const BallRec next{toBin, old.weight, static_cast<std::int32_t>(dstSlot.size())};
  if (&dstShard == &srcShard) {
    *rec = next;
  } else {
    srcShard.balls.erase(rec);
    dstShard.balls.emplace(ball, next);
  }
  dstSlot.push_back(ball);
  changeLoad(srcShard, old.bin, -old.weight);
  changeLoad(dstShard, toBin, old.weight);
  if (routerEnabled_) router_.at(ball).bin = toBin;
}

void OnlineAllocator::materializePlace(Shard& shard, const BinOp& op) {
  auto& slot = shard.binBalls[static_cast<std::size_t>(op.bin - shard.firstBin)];
  const auto [it, inserted] = shard.balls.emplace(
      op.ball, BallRec{op.bin, op.weight, static_cast<std::int32_t>(slot.size())});
  RLSLB_ASSERT_MSG(inserted, "Place op for a ball already present in the owner shard");
  (void)it;
  slot.push_back(op.ball);
  // Load accounting already happened: resolve() moved loads_ and marked the
  // bin dirty; flushShard() settles the structures after the drain.
}

void OnlineAllocator::materializeRemove(Shard& shard, const BinOp& op) {
  BallRec* it = shard.balls.find(op.ball);
  RLSLB_ASSERT_MSG(it != nullptr, "Remove op for a ball the owner never held");
  const BallRec rec = *it;
  RLSLB_ASSERT(rec.bin == op.bin);
  eraseBall(shard, op.ball, rec);
  shard.balls.erase(it);
}

std::int64_t OnlineAllocator::residentBytes() const {
  auto vecBytes = [](const auto& v) {
    return static_cast<std::int64_t>(v.capacity() * sizeof(v[0]));
  };
  std::int64_t bytes = vecBytes(loads_) + vecBytes(dirtyMark_);
  bytes += static_cast<std::int64_t>(router_.heapBytes());
  for (const Shard& shard : shards_) {
    bytes += vecBytes(shard.binLoad) + vecBytes(shard.dirty);
    // Fenwick: n + 1 nodes of the element type.
    bytes += static_cast<std::int64_t>((shard.mass.size() + 1) * sizeof(std::int64_t));
    bytes += static_cast<std::int64_t>(shard.binBalls.capacity() *
                                       sizeof(std::vector<std::int64_t>));
    for (const auto& slot : shard.binBalls) bytes += vecBytes(slot);
    bytes += static_cast<std::int64_t>(shard.balls.heapBytes());
  }
  return bytes;
}

std::int64_t OnlineAllocator::minLoad() const {
  // Accessors are sequential-only by contract (see header), so the lazy
  // flush is safe; after the event loop's in-timer flush it is a no-op.
  // The O(n) scan replaces a maintained level histogram: min/max are read
  // a handful of times per epoch (outside the timed hot path), so paying
  // for a scan here is far cheaper than paying per load change there.
  const_cast<OnlineAllocator*>(this)->flush();
  std::int64_t lo = loads_[0];
  for (const std::int64_t v : loads_) lo = std::min(lo, v);
  return lo;
}

std::int64_t OnlineAllocator::maxLoad() const {
  const_cast<OnlineAllocator*>(this)->flush();
  std::int64_t hi = loads_[0];
  for (const std::int64_t v : loads_) hi = std::max(hi, v);
  return hi;
}

sim::BalanceState OnlineAllocator::balanceState() const {
  const_cast<OnlineAllocator*>(this)->flush();
  sim::BalanceState state;
  state.numBins = numBins();
  state.numBalls = totalLoad_;  // total carried weight
  state.minLoad = minLoad();
  state.maxLoad = maxLoad();
  const std::int64_t ceilAvg = (state.numBalls + state.numBins - 1) / state.numBins;
  for (const std::int64_t v : loads_) {
    if (v > ceilAvg) state.overloadedBalls += v - ceilAvg;
  }
  return state;
}

bool OnlineAllocator::validate() const {
  const_cast<OnlineAllocator*>(this)->flush();
  std::int64_t total = 0;
  std::int64_t ballCount = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = shards_[s];
    if (shard.firstBin != partition_.beginBin(static_cast<int>(s))) return false;
    for (std::size_t local = 0; local < shard.binBalls.size(); ++local) {
      const auto bin = static_cast<std::size_t>(shard.firstBin) + local;
      std::int64_t binLoad = 0;
      for (std::size_t i = 0; i < shard.binBalls[local].size(); ++i) {
        const std::int64_t ball = shard.binBalls[local][i];
        const BallRec* it = shard.balls.find(ball);
        if (it == nullptr) return false;
        if (it->bin != static_cast<std::int32_t>(bin)) return false;
        if (it->slot != static_cast<std::int32_t>(i)) return false;
        binLoad += it->weight;
        if (routerEnabled_) {
          const RouteRec* route = router_.find(ball);
          if (route == nullptr) return false;
          if (route->bin != it->bin) return false;
          if (route->weight != it->weight) return false;
        }
      }
      if (binLoad != shard.binLoad[local]) return false;
      if (binLoad != loads_[bin]) return false;
      if (shard.mass.get(local) != binLoad) return false;
      total += binLoad;
    }
    std::int64_t shardMass = 0;
    for (const std::int64_t v : shard.binLoad) shardMass += v;
    if (shard.mass.total() != shardMass) return false;
    ballCount += static_cast<std::int64_t>(shard.balls.size());
  }
  if (total != totalLoad_) return false;
  if (ballCount != liveBalls_) return false;
  if (routerEnabled_ && static_cast<std::int64_t>(router_.size()) != liveBalls_) {
    return false;
  }
  return true;
}

}  // namespace rlslb::serve
