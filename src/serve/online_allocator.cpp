#include "serve/online_allocator.hpp"

#include <utility>

#include "rng/distributions.hpp"
#include "util/assert.hpp"

namespace rlslb::serve {

OnlineAllocator::OnlineAllocator(const AllocatorOptions& options)
    : options_(options), loads_(static_cast<std::size_t>(options.bins), 0) {
  RLSLB_ASSERT_MSG(options_.bins >= 1, "AllocatorOptions.bins must be >= 1");
  RLSLB_ASSERT_MSG(options_.arrivalChoices >= 1,
                   "AllocatorOptions.arrivalChoices must be >= 1");
  configurePartitions(1, /*enableRouter=*/false);
}

int OnlineAllocator::configurePartitions(int shards, bool enableRouter) {
  const BinPartition next(numBins(), shards);
  RLSLB_ASSERT_MSG(enableRouter || next.numShards() == 1,
                   "a multi-shard layout requires the ball router (resolve() and the "
                   "fused apply() both locate balls through it)");
  if (!shards_.empty() && next.numShards() == partition_.numShards() &&
      enableRouter == routerEnabled_) {
    return partition_.numShards();  // layout already in place
  }

  // Collect every live ball record; bins keep their per-bin ball order
  // (moved wholesale below), so slots — and with them the repair pick
  // stream — survive any repartition.
  std::vector<std::pair<std::int64_t, BallRec>> live;
  live.reserve(static_cast<std::size_t>(liveBalls_));
  for (Shard& shard : shards_) {
    for (auto& entry : shard.balls) live.push_back(entry);
  }
  std::vector<std::vector<std::int64_t>> allBinBalls(loads_.size());
  for (Shard& shard : shards_) {
    for (std::size_t local = 0; local < shard.binBalls.size(); ++local) {
      allBinBalls[static_cast<std::size_t>(shard.firstBin) + local] =
          std::move(shard.binBalls[local]);
    }
  }

  partition_ = next;
  const int count = partition_.numShards();
  shards_.assign(static_cast<std::size_t>(count), Shard{});
  for (int s = 0; s < count; ++s) {
    Shard& shard = shards_[static_cast<std::size_t>(s)];
    shard.firstBin = partition_.beginBin(s);
    const auto begin = static_cast<std::size_t>(shard.firstBin);
    const auto end = static_cast<std::size_t>(partition_.endBin(s));
    shard.binLoad.assign(loads_.begin() + static_cast<std::ptrdiff_t>(begin),
                         loads_.begin() + static_cast<std::ptrdiff_t>(end));
    shard.mass = ds::Fenwick<std::int64_t>(shard.binLoad);
    shard.levels.clear();
    for (const std::int64_t load : shard.binLoad) ++shard.levels[load];
    shard.binBalls.assign(end - begin, {});
    for (std::size_t bin = begin; bin < end; ++bin) {
      shard.binBalls[bin - begin] = std::move(allBinBalls[bin]);
    }
  }
  for (const auto& [ball, rec] : live) {
    shardOf(rec.bin).balls.emplace(ball, rec);
  }

  routerEnabled_ = enableRouter;
  router_.clear();
  if (routerEnabled_) {
    router_.reserve(live.size());
    for (const auto& [ball, rec] : live) {
      router_.emplace(ball, RouteRec{rec.bin, rec.weight});
    }
  }
  return count;
}

Decision OnlineAllocator::decide(const workload::Event& event,
                                 const std::vector<std::int64_t>& snapshotLoads,
                                 rng::Xoshiro256pp& eng) const {
  const auto n = static_cast<std::uint64_t>(snapshotLoads.size());
  Decision d;
  switch (event.kind) {
    case workload::EventKind::kArrive: {
      // d-choice over the snapshot: least loaded of `arrivalChoices`
      // uniform samples (ties keep the first draw, so the choice is a
      // deterministic function of the rng stream).
      auto best = static_cast<std::int32_t>(rng::uniformIndex(eng, n));
      for (int c = 1; c < options_.arrivalChoices; ++c) {
        const auto candidate = static_cast<std::int32_t>(rng::uniformIndex(eng, n));
        if (snapshotLoads[static_cast<std::size_t>(candidate)] <
            snapshotLoads[static_cast<std::size_t>(best)]) {
          best = candidate;
        }
      }
      d.bin = best;
      break;
    }
    case workload::EventKind::kResample:
      d.bin = static_cast<std::int32_t>(rng::uniformIndex(eng, n));
      break;
    case workload::EventKind::kDepart:
      break;
  }
  return d;
}

void OnlineAllocator::apply(const workload::Event& event, const Decision& decision) {
  ++counters_.events;
  switch (event.kind) {
    case workload::EventKind::kArrive: {
      RLSLB_ASSERT(decision.bin >= 0 && decision.bin < options_.bins);
      ++counters_.arrivals;
      placeBall(event.ball, event.weight, decision.bin);
      break;
    }
    case workload::EventKind::kDepart: {
      ++counters_.departures;
      Shard* shard;
      if (routerEnabled_) {
        const auto route = router_.find(event.ball);
        RLSLB_ASSERT_MSG(route != router_.end(), "depart event for a ball that is not live");
        shard = &shardOf(route->second.bin);
        router_.erase(route);
      } else {
        shard = &shards_[0];
      }
      const auto it = shard->balls.find(event.ball);
      RLSLB_ASSERT_MSG(it != shard->balls.end(), "depart event for a ball that is not live");
      const BallRec rec = it->second;
      shard->balls.erase(it);
      eraseBall(*shard, event.ball, rec);
      changeLoad(*shard, rec.bin, -rec.weight);
      --liveBalls_;
      break;
    }
    case workload::EventKind::kResample: {
      ++counters_.resamples;
      RLSLB_ASSERT(decision.bin >= 0 && decision.bin < options_.bins);
      Shard* shard;
      if (routerEnabled_) {
        const auto route = router_.find(event.ball);
        RLSLB_ASSERT_MSG(route != router_.end(),
                         "resample event for a ball that is not live");
        shard = &shardOf(route->second.bin);
      } else {
        shard = &shards_[0];
      }
      const auto it = shard->balls.find(event.ball);
      RLSLB_ASSERT_MSG(it != shard->balls.end(),
                       "resample event for a ball that is not live");
      const std::int32_t src = it->second.bin;
      const std::int32_t dst = decision.bin;
      // Strict local-search rule on *live* loads: the sampled candidate
      // came from the epoch snapshot stream, but the acceptance must never
      // worsen balance, so it is re-checked here.
      if (dst != src && loads_[static_cast<std::size_t>(dst)] + it->second.weight <
                            loads_[static_cast<std::size_t>(src)]) {
        ++counters_.migrations;
        moveBall(event.ball, *shard, it, dst);
      } else {
        ++counters_.rejectedMoves;
      }
      break;
    }
  }
}

void OnlineAllocator::resolve(const workload::Event& event, const Decision& decision,
                              std::int64_t ordinal, CrossShardQueues& queues) {
  RLSLB_ASSERT_MSG(routerEnabled_,
                   "resolve() needs the ball router; configurePartitions(shards, "
                   "/*enableRouter=*/true) first");
  ++counters_.events;
  switch (event.kind) {
    case workload::EventKind::kArrive: {
      RLSLB_ASSERT(decision.bin >= 0 && decision.bin < options_.bins);
      ++counters_.arrivals;
      RLSLB_ASSERT(event.weight >= 1);
      if (event.weight > maxWeightSeen_) maxWeightSeen_ = event.weight;
      const bool inserted =
          router_.emplace(event.ball, RouteRec{decision.bin, event.weight}).second;
      RLSLB_ASSERT_MSG(inserted, "arrive event for a ball id that is already live");
      loads_[static_cast<std::size_t>(decision.bin)] += event.weight;
      totalLoad_ += event.weight;
      ++liveBalls_;
      const int owner = partition_.ownerOf(decision.bin);
      queues.push(owner, owner,
                  BinOp{ordinal, event.ball, event.weight, decision.bin,
                        BinOp::Kind::kPlace});
      break;
    }
    case workload::EventKind::kDepart: {
      ++counters_.departures;
      const auto route = router_.find(event.ball);
      RLSLB_ASSERT_MSG(route != router_.end(), "depart event for a ball that is not live");
      const RouteRec rec = route->second;
      router_.erase(route);
      loads_[static_cast<std::size_t>(rec.bin)] -= rec.weight;
      RLSLB_ASSERT(loads_[static_cast<std::size_t>(rec.bin)] >= 0);
      totalLoad_ -= rec.weight;
      --liveBalls_;
      const int owner = partition_.ownerOf(rec.bin);
      queues.push(owner, owner,
                  BinOp{ordinal, event.ball, rec.weight, rec.bin, BinOp::Kind::kRemove});
      break;
    }
    case workload::EventKind::kResample: {
      ++counters_.resamples;
      RLSLB_ASSERT(decision.bin >= 0 && decision.bin < options_.bins);
      const auto route = router_.find(event.ball);
      RLSLB_ASSERT_MSG(route != router_.end(),
                       "resample event for a ball that is not live");
      RouteRec& rec = route->second;
      const std::int32_t src = rec.bin;
      const std::int32_t dst = decision.bin;
      // Exactly apply()'s live-load acceptance: loads_ has absorbed every
      // earlier event of the epoch, so the partitioned path accepts and
      // rejects the very same moves the fused path would.
      if (dst != src && loads_[static_cast<std::size_t>(dst)] + rec.weight <
                            loads_[static_cast<std::size_t>(src)]) {
        ++counters_.migrations;
        loads_[static_cast<std::size_t>(src)] -= rec.weight;
        loads_[static_cast<std::size_t>(dst)] += rec.weight;
        const int from = partition_.ownerOf(src);
        const int to = partition_.ownerOf(dst);
        // Remove before Place so a same-owner migration replays in the
        // right order out of the (from, from) queue.
        queues.push(from, from,
                    BinOp{ordinal, event.ball, rec.weight, src, BinOp::Kind::kRemove});
        queues.push(from, to,
                    BinOp{ordinal, event.ball, rec.weight, dst, BinOp::Kind::kPlace});
        rec.bin = dst;
      } else {
        ++counters_.rejectedMoves;
      }
      break;
    }
  }
}

void OnlineAllocator::applyShardOps(int shard, const CrossShardQueues& queues) {
  RLSLB_ASSERT(shard >= 0 && shard < partition_.numShards());
  Shard& s = shards_[static_cast<std::size_t>(shard)];
  queues.drainTo(shard, [&](const BinOp& op) {
    if (op.kind == BinOp::Kind::kPlace) {
      materializePlace(s, op);
    } else {
      materializeRemove(s, op);
    }
  });
}

bool OnlineAllocator::repairMove(rng::Xoshiro256pp& eng) {
  const std::int64_t total = totalLoad_;
  if (total == 0) return false;
  ++counters_.repairAttempts;
  // Load-weighted bin pick, then a uniform ball within the bin: with unit
  // weights this composes to a uniform pick over live balls (the RLS
  // activation); with weights it biases toward heavy bins, which is the
  // direction a repair pass wants anyway. The two-level walk (shard mass
  // prefix, then the owner's local Fenwick) lands on the same bin the old
  // single global Fenwick's upperBound did, because ownership ranges
  // concatenate in bin order.
  auto ticket = static_cast<std::int64_t>(
      rng::uniformIndex(eng, static_cast<std::uint64_t>(total)));
  std::size_t owner = 0;
  while (ticket >= shards_[owner].mass.total()) {
    ticket -= shards_[owner].mass.total();
    ++owner;
    RLSLB_ASSERT(owner < shards_.size());
  }
  Shard& srcShard = shards_[owner];
  const auto src = static_cast<std::int32_t>(
      srcShard.firstBin + static_cast<std::int64_t>(srcShard.mass.upperBound(ticket)));
  auto& srcBalls =
      srcShard.binBalls[static_cast<std::size_t>(src - srcShard.firstBin)];
  RLSLB_ASSERT(!srcBalls.empty());
  const auto pick = static_cast<std::size_t>(
      rng::uniformIndex(eng, static_cast<std::uint64_t>(srcBalls.size())));
  const std::int64_t ball = srcBalls[pick];
  const auto dst = static_cast<std::int32_t>(
      rng::uniformIndex(eng, static_cast<std::uint64_t>(loads_.size())));
  const auto it = srcShard.balls.find(ball);
  RLSLB_ASSERT(it != srcShard.balls.end());
  if (dst == src || loads_[static_cast<std::size_t>(dst)] + it->second.weight >=
                        loads_[static_cast<std::size_t>(src)]) {
    return false;
  }
  ++counters_.repairMigrations;
  moveBall(ball, srcShard, it, dst);
  return true;
}

void OnlineAllocator::changeLoad(Shard& shard, std::int32_t bin, std::int64_t delta) {
  const auto local = static_cast<std::size_t>(bin - shard.firstBin);
  const std::int64_t before = shard.binLoad[local];
  const std::int64_t after = before + delta;
  RLSLB_ASSERT(after >= 0);
  shard.binLoad[local] = after;
  loads_[static_cast<std::size_t>(bin)] = after;
  totalLoad_ += delta;
  shard.mass.add(local, delta);
  const auto it = shard.levels.find(before);
  if (--(it->second) == 0) shard.levels.erase(it);
  ++shard.levels[after];
}

void OnlineAllocator::placeBall(std::int64_t ball, std::int64_t weight, std::int32_t bin) {
  RLSLB_ASSERT(weight >= 1);
  if (weight > maxWeightSeen_) maxWeightSeen_ = weight;
  Shard& shard = shardOf(bin);
  auto& slot = shard.binBalls[static_cast<std::size_t>(bin - shard.firstBin)];
  const auto [it, inserted] = shard.balls.emplace(
      ball, BallRec{bin, weight, static_cast<std::int32_t>(slot.size())});
  RLSLB_ASSERT_MSG(inserted, "arrive event for a ball id that is already live");
  (void)it;
  if (routerEnabled_) {
    const bool routed = router_.emplace(ball, RouteRec{bin, weight}).second;
    RLSLB_ASSERT(routed);
  }
  slot.push_back(ball);
  changeLoad(shard, bin, weight);
  ++liveBalls_;
}

void OnlineAllocator::eraseBall(Shard& shard, std::int64_t ball, const BallRec& rec) {
  auto& slot = shard.binBalls[static_cast<std::size_t>(rec.bin - shard.firstBin)];
  RLSLB_ASSERT(slot[static_cast<std::size_t>(rec.slot)] == ball);
  const std::int64_t moved = slot.back();
  slot[static_cast<std::size_t>(rec.slot)] = moved;
  slot.pop_back();
  if (moved != ball) shard.balls.at(moved).slot = rec.slot;
}

void OnlineAllocator::moveBall(std::int64_t ball, Shard& srcShard,
                               std::unordered_map<std::int64_t, BallRec>::iterator it,
                               std::int32_t toBin) {
  const BallRec old = it->second;
  eraseBall(srcShard, ball, old);
  Shard& dstShard = shardOf(toBin);
  auto& dstSlot = dstShard.binBalls[static_cast<std::size_t>(toBin - dstShard.firstBin)];
  const BallRec next{toBin, old.weight, static_cast<std::int32_t>(dstSlot.size())};
  if (&dstShard == &srcShard) {
    it->second = next;
  } else {
    srcShard.balls.erase(it);
    dstShard.balls.emplace(ball, next);
  }
  dstSlot.push_back(ball);
  changeLoad(srcShard, old.bin, -old.weight);
  changeLoad(dstShard, toBin, old.weight);
  if (routerEnabled_) router_.find(ball)->second.bin = toBin;
}

void OnlineAllocator::materializePlace(Shard& shard, const BinOp& op) {
  auto& slot = shard.binBalls[static_cast<std::size_t>(op.bin - shard.firstBin)];
  const auto [it, inserted] = shard.balls.emplace(
      op.ball, BallRec{op.bin, op.weight, static_cast<std::int32_t>(slot.size())});
  RLSLB_ASSERT_MSG(inserted, "Place op for a ball already present in the owner shard");
  (void)it;
  slot.push_back(op.ball);
  localChangeLoad(shard, static_cast<std::size_t>(op.bin - shard.firstBin), op.weight);
}

void OnlineAllocator::materializeRemove(Shard& shard, const BinOp& op) {
  const auto it = shard.balls.find(op.ball);
  RLSLB_ASSERT_MSG(it != shard.balls.end(), "Remove op for a ball the owner never held");
  const BallRec rec = it->second;
  RLSLB_ASSERT(rec.bin == op.bin);
  eraseBall(shard, op.ball, rec);
  shard.balls.erase(it);
  localChangeLoad(shard, static_cast<std::size_t>(op.bin - shard.firstBin), -op.weight);
}

void OnlineAllocator::localChangeLoad(Shard& shard, std::size_t local,
                                      std::int64_t delta) {
  const std::int64_t before = shard.binLoad[local];
  const std::int64_t after = before + delta;
  RLSLB_ASSERT(after >= 0);
  shard.binLoad[local] = after;
  shard.mass.add(local, delta);
  const auto it = shard.levels.find(before);
  if (--(it->second) == 0) shard.levels.erase(it);
  ++shard.levels[after];
}

std::int64_t OnlineAllocator::minLoad() const {
  std::int64_t lo = shards_[0].levels.begin()->first;
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    lo = std::min(lo, shards_[s].levels.begin()->first);
  }
  return lo;
}

std::int64_t OnlineAllocator::maxLoad() const {
  std::int64_t hi = shards_[0].levels.rbegin()->first;
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    hi = std::max(hi, shards_[s].levels.rbegin()->first);
  }
  return hi;
}

sim::BalanceState OnlineAllocator::balanceState() const {
  sim::BalanceState state;
  state.numBins = numBins();
  state.numBalls = totalLoad_;  // total carried weight
  state.minLoad = minLoad();
  state.maxLoad = maxLoad();
  const std::int64_t ceilAvg = (state.numBalls + state.numBins - 1) / state.numBins;
  for (const Shard& shard : shards_) {
    for (auto it = shard.levels.upper_bound(ceilAvg); it != shard.levels.end(); ++it) {
      state.overloadedBalls += (it->first - ceilAvg) * it->second;
    }
  }
  return state;
}

bool OnlineAllocator::validate() const {
  std::int64_t total = 0;
  std::int64_t ballCount = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = shards_[s];
    if (shard.firstBin != partition_.beginBin(static_cast<int>(s))) return false;
    std::map<std::int64_t, std::int64_t> levels;
    for (std::size_t local = 0; local < shard.binBalls.size(); ++local) {
      const auto bin = static_cast<std::size_t>(shard.firstBin) + local;
      std::int64_t binLoad = 0;
      for (std::size_t i = 0; i < shard.binBalls[local].size(); ++i) {
        const std::int64_t ball = shard.binBalls[local][i];
        const auto it = shard.balls.find(ball);
        if (it == shard.balls.end()) return false;
        if (it->second.bin != static_cast<std::int32_t>(bin)) return false;
        if (it->second.slot != static_cast<std::int32_t>(i)) return false;
        binLoad += it->second.weight;
        if (routerEnabled_) {
          const auto route = router_.find(ball);
          if (route == router_.end()) return false;
          if (route->second.bin != it->second.bin) return false;
          if (route->second.weight != it->second.weight) return false;
        }
      }
      if (binLoad != shard.binLoad[local]) return false;
      if (binLoad != loads_[bin]) return false;
      if (shard.mass.get(local) != binLoad) return false;
      total += binLoad;
      ++levels[binLoad];
    }
    if (levels != shard.levels) return false;
    std::int64_t shardMass = 0;
    for (const std::int64_t v : shard.binLoad) shardMass += v;
    if (shard.mass.total() != shardMass) return false;
    ballCount += static_cast<std::int64_t>(shard.balls.size());
  }
  if (total != totalLoad_) return false;
  if (ballCount != liveBalls_) return false;
  if (routerEnabled_ && static_cast<std::int64_t>(router_.size()) != liveBalls_) {
    return false;
  }
  return true;
}

}  // namespace rlslb::serve
