// CrossShardQueues: the per-shard-pair op queues of the partitioned apply
// phase (the nfos/Vigor "partitions owned by cores, migrations move
// between them" pattern, keyed by event ordinal instead of a rebalance
// timer).
//
// During the sequential resolution pass of an epoch, every resolved event
// becomes one or two BinOps — Place (ball enters a bin) and Remove (ball
// leaves a bin) — pushed into queue (from, to), where `from` is the shard
// that initiated the op (the owner of the ball's current bin) and `to` is
// the owner of the bin the op mutates. Local work rides the diagonal; an
// accepted cross-shard migration is a Remove on the diagonal plus a Place
// in an off-diagonal queue.
//
// Drain contract (the determinism anchor, pinned by the property tests in
// tests/test_serve_partitioned.cpp):
//   - each op is delivered to exactly one owner: the `to` shard
//     (conservation — sum of per-owner drains == pushes since clear());
//   - drainTo(to) visits ops in ascending (ordinal, from) order, FIFO
//     within one (from, to) queue — a k-way merge of the per-source
//     streams, each of which resolution pushed in ascending ordinal order
//     (checked in debug builds);
//   - the merged order depends only on queue *contents*, never on the
//     interleaving in which sources completed their pushes, so the apply
//     phase is byte-deterministic for any thread schedule.
// Per-bin, the merged order equals the trace order restricted to events
// touching that bin — which is why the partitioned apply reproduces the
// sequential apply's final state exactly (see serve/event_loop.hpp).
//
// Queues grow amortized (no fixed capacity, so "overflow" is growth past
// the reserve, also pinned by tests); clear() keeps capacity so steady
// state allocates nothing.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace rlslb::serve {

/// One resolved mutation of one bin. `weight` is always the moved ball's
/// positive weight; Kind says which direction the bin's load moves.
struct BinOp {
  std::int64_t ordinal = 0;  // epoch-local event index: the canonical key
  std::int64_t ball = 0;
  std::int64_t weight = 0;
  std::int32_t bin = 0;
  enum class Kind : std::uint8_t { kPlace = 0, kRemove = 1 };
  Kind kind = Kind::kPlace;

  friend bool operator==(const BinOp&, const BinOp&) = default;
};

class CrossShardQueues {
 public:
  explicit CrossShardQueues(int shards = 1) { reset(shards); }

  /// Resize to an S x S matrix and drop all pending ops and stats.
  void reset(int shards) {
    RLSLB_ASSERT_MSG(shards >= 1, "CrossShardQueues needs at least one shard");
    shards_ = shards;
    queues_.assign(static_cast<std::size_t>(shards) * static_cast<std::size_t>(shards), {});
    peakDepth_ = 0;
    pushed_ = 0;
  }

  /// Drop pending ops and per-epoch stats but keep shape and capacity.
  void clear() {
    for (auto& q : queues_) q.clear();
    peakDepth_ = 0;
    pushed_ = 0;
  }

  [[nodiscard]] int shards() const { return shards_; }

  void push(int from, int to, const BinOp& op) {
    auto& q = at(from, to);
    RLSLB_ASSERT_MSG(q.empty() || q.back().ordinal <= op.ordinal,
                     "queue pushes must be ordinal-ascending per (from, to) pair");
    q.push_back(op);
    ++pushed_;
    if (static_cast<std::int64_t>(q.size()) > peakDepth_) {
      peakDepth_ = static_cast<std::int64_t>(q.size());
    }
  }

  /// Visit every op destined for owner `to` in canonical (ordinal, from)
  /// order. Non-destructive: the epoch driver calls clear() once every
  /// owner has drained.
  template <class Visitor>
  void drainTo(int to, Visitor&& visit) const {
    // k-way merge over the column's S source queues; S is small, so a
    // linear min scan beats a heap. Cursors live on the stack up to
    // kInlineShards so a steady-state drain allocates nothing; drainTo is
    // const and called from every owner concurrently, so the scratch
    // cannot be a member.
    std::size_t inlineCursor[kInlineShards] = {};
    std::vector<std::size_t> heapCursor;
    std::size_t* cursor = inlineCursor;
    if (shards_ > static_cast<int>(kInlineShards)) {
      heapCursor.assign(static_cast<std::size_t>(shards_), 0);
      cursor = heapCursor.data();
    }
    for (;;) {
      int best = -1;
      std::int64_t bestOrdinal = 0;
      for (int from = 0; from < shards_; ++from) {
        const auto& q = at(from, to);
        const std::size_t c = cursor[static_cast<std::size_t>(from)];
        if (c >= q.size()) continue;
        if (best < 0 || q[c].ordinal < bestOrdinal) {
          best = from;
          bestOrdinal = q[c].ordinal;
        }
      }
      if (best < 0) return;
      visit(at(best, to)[cursor[static_cast<std::size_t>(best)]++]);
    }
  }

  /// Ops queued for owner `to` (all sources).
  [[nodiscard]] std::int64_t pendingFor(int to) const {
    std::int64_t n = 0;
    for (int from = 0; from < shards_; ++from) {
      n += static_cast<std::int64_t>(at(from, to).size());
    }
    return n;
  }

  [[nodiscard]] std::int64_t totalPending() const { return pushed_; }

  /// Off-diagonal ops: balls crossing an ownership boundary.
  [[nodiscard]] std::int64_t crossPending() const {
    std::int64_t n = 0;
    for (int from = 0; from < shards_; ++from) {
      for (int to = 0; to < shards_; ++to) {
        if (from != to) n += static_cast<std::int64_t>(at(from, to).size());
      }
    }
    return n;
  }

  /// Deepest any single (from, to) queue has been since clear()/reset().
  [[nodiscard]] std::int64_t peakDepth() const { return peakDepth_; }

  [[nodiscard]] bool empty() const { return pushed_ == 0; }

 private:
  // Shard counts beyond this fall back to a heap-allocated cursor array in
  // drainTo; real deployments sit far below it.
  static constexpr std::size_t kInlineShards = 32;

  [[nodiscard]] std::vector<BinOp>& at(int from, int to) {
    return queues_[static_cast<std::size_t>(from) * static_cast<std::size_t>(shards_) +
                   static_cast<std::size_t>(to)];
  }
  [[nodiscard]] const std::vector<BinOp>& at(int from, int to) const {
    return queues_[static_cast<std::size_t>(from) * static_cast<std::size_t>(shards_) +
                   static_cast<std::size_t>(to)];
  }

  int shards_ = 1;
  std::vector<std::vector<BinOp>> queues_;  // row-major [from][to]
  std::int64_t peakDepth_ = 0;
  std::int64_t pushed_ = 0;  // ops since clear() (none are popped in place)
};

}  // namespace rlslb::serve
