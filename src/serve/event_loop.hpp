// ShardedEventLoop: the serving subsystem's execution engine.
//
// Events are consumed in fixed-size *epochs* (bulk-synchronous style):
//
//   1. Fill a batch of up to epochEvents events from the trace.
//   2. Decision phase, parallel on runner::ThreadPool: events are
//      hash-sharded by ball id (departs use no randomness and are skipped
//      at bucketing time); each shard walks its events in trace order and
//      computes the random placement/candidate decisions against the
//      *live* load array — the apply phase starts only after the decision
//      barrier, so the bytes read are exactly the epoch-start snapshot the
//      loop used to copy, without the O(bins) copy. Each event draws from
//      its own rng stream streamSeed(decisionSeed, eventOrdinal) via a
//      per-shard engine reseeded per event (byte-identical to per-event
//      construction). With a single worker or a single shard the loop
//      skips the bucketing and walks the batch directly — same streams,
//      no indirection.
//   3. Apply phase. Two executions of the same semantics:
//        Sequential (fused): walk the batch in trace order, re-validating
//        every decision against live loads and mutating in place.
//        Partitioned: a sequential *resolution* sweep over the batch does
//        the live-load re-validation and counter bookkeeping (cheap: flat
//        array + router hash) while deferring the O(log n) structure
//        mutations as Place/Remove ops in per-shard-pair migration queues;
//        then every ownership shard *materializes* its queued ops in
//        parallel — loads, ball slots, ball records — each owner
//        draining its column of the queue matrix in canonical
//        (ordinal, source) order. Per bin the canonical order equals the
//        trace order restricted to that bin, so both executions finish in
//        byte-identical states (pinned by tests/test_serve_partitioned).
//      Either way the allocator defers the O(log n) Fenwick updates per
//      bin, reconciling net deltas once per epoch (shard-parallel on the
//      partitioned drain) — rejected resamples, the steady-state common
//      case, touch no structure at all.
//   4. Cross-shard rebalance: a fixed budget of RLS repair activations on
//      live state heals whatever imbalance the stale snapshot let through
//      (the bulk-synchronous analogue of the paper's background RLS
//      clocks). A final allocator flush — still inside the epoch timer —
//      settles any deferred deltas before observers look.
//
// Determinism: decisions are per-event pure functions of (snapshot,
// ordinal-derived rng), resolution order is the trace order, the per-owner
// drain order is a pure function of queue contents, and the repair stream
// is keyed by epoch index — so the final load vector and every semantic
// counter are byte-identical across thread counts, shard counts, AND apply
// modes; shards are purely an execution-parallelism knob. Epoch length is
// a *semantic* knob (it sets snapshot staleness) and is therefore not an
// invariance axis.
//
// Timing contract (pinned by tests/test_serve_partitioned.cpp):
// EpochStats.wallSeconds covers exactly the epoch's decision phase, apply
// phase (fused apply, or resolve + queue drain), and repair budget. It
// excludes trace generation (the batch fill), EpochStats assembly, and the
// onEpoch callback. RunResult.wallSeconds is the exact sum of the per-epoch
// values — no extra terms.
#pragma once

#include <cstdint>
#include <functional>

#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "obs/trace.hpp"
#include "runner/thread_pool.hpp"
#include "serve/migration_queue.hpp"
#include "serve/online_allocator.hpp"
#include "sim/engine.hpp"
#include "workload/generators.hpp"

namespace rlslb::serve {

/// Stream salts for the loop's two rng families, derived from
/// LoopOptions.seed via rng::streamSeed. Exported (rather than file-local
/// to event_loop.cpp) so alternative executors of the same dynamic — the
/// capacity loop's compact backend (capacity/capacity_loop.hpp) — can
/// reproduce the decision and repair streams byte-for-byte.
inline constexpr std::uint64_t kDecisionStreamSalt = 0x64656373ULL;  // "decs"
inline constexpr std::uint64_t kRepairStreamSalt = 0x72657061ULL;    // "repa"

/// How the apply phase executes. Semantics are identical in all modes;
/// this only picks the execution strategy.
enum class ApplyMode : std::uint8_t {
  kAuto = 0,        // partitioned iff (pool has workers && shards > 1)
  kSequential = 1,  // always the fused single-threaded apply
  kPartitioned = 2, // always resolve + shard-parallel materialize
};

struct LoopOptions {
  int shards = 8;                   // decision partitions AND bin-ownership shards
  std::int64_t epochEvents = 1024;  // snapshot refresh granularity
  int repairMovesPerEpoch = 4;      // cross-shard repair activations
  std::uint64_t seed = 1;           // decision + repair stream base
  ApplyMode applyMode = ApplyMode::kAuto;
  /// Optional telemetry (see src/obs/). Metrics export happens at epoch
  /// boundaries only (slab writes + a handful of clock reads per epoch);
  /// the per-event hot path is untouched, so the steady-state
  /// zero-allocation and byte-determinism contracts hold with metrics
  /// attached (pinned by tests/test_obs.cpp). The trace writer records
  /// phase spans; attaching it also relabels the pool's job spans per
  /// phase for the duration of run().
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceWriter* trace = nullptr;
  /// Conformance monitors (obs/monitor.hpp): fed one CheckSample per
  /// epoch, outside the timed region, from the sequential section. Like
  /// metrics, attaching a roster preserves the steady-state
  /// zero-allocation and byte-determinism contracts (wall-clock-fed
  /// monitors excepted from the latter; pinned by
  /// tests/test_obs_monitor.cpp).
  obs::MonitorSet* monitors = nullptr;
};

/// Execution observations of the apply phase's queue machinery, shared by
/// EpochStats (per epoch) and RunResult (cumulative; queuePeak is the max
/// over epochs). With LoopOptions.metrics attached the same values are
/// exported under the serve.* counter vocabulary -- this struct is the
/// in-process view, the registry the reporting one.
struct QueueStats {
  int applyShards = 1;             // ownership shards the apply phase ran with
  std::int64_t queuedOps = 0;      // BinOps queued (0 on the fused path)
  std::int64_t crossShardOps = 0;  // queued ops that crossed an ownership boundary
  std::int64_t queuePeak = 0;      // deepest single (from, to) queue
};

/// Per-epoch observation passed to the run() callback. The fields above
/// `wallSeconds` are *semantic* — identical for every (threads, shards,
/// applyMode) execution of the same trace + seed. The fields below are
/// *execution* observations and may differ run to run.
struct EpochStats {
  std::int64_t epoch = 0;       // 0-based epoch index
  double traceTime = 0.0;       // timestamp of the epoch's last event
  std::int64_t events = 0;      // events in this epoch
  std::int64_t liveBalls = 0;
  std::int64_t totalLoad = 0;
  sim::BalanceState balance;    // allocator state in the closed-system vocabulary
  std::int64_t migrations = 0;  // cumulative accepted migrations

  double wallSeconds = 0.0;     // decision+apply+repair wall-clock (see contract)
  QueueStats queue;             // this epoch's queue machinery observations

  /// max - min bin load after the epoch (derived; single source of truth
  /// is `balance`).
  [[nodiscard]] std::int64_t gap() const { return balance.maxLoad - balance.minLoad; }
};

class ShardedEventLoop {
 public:
  ShardedEventLoop(OnlineAllocator& allocator, const LoopOptions& options,
                   runner::ThreadPool& pool);

  struct RunResult {
    std::int64_t events = 0;
    std::int64_t epochs = 0;
    double wallSeconds = 0.0;  // exact sum of per-epoch wallSeconds
    /// Cumulative queue machinery stats (queuePeak = max over epochs).
    QueueStats queue;
  };

  /// Drain the trace. `onEpoch` (may be empty) fires after each epoch.
  /// Each run() is self-contained: event ordinals and the epoch index
  /// reset, so a reused loop draws exactly the streams a freshly
  /// constructed loop would on the same trace. Allocator state carries
  /// over between runs by design (it is the long-lived allocation).
  RunResult run(workload::TraceGenerator& trace,
                const std::function<void(const EpochStats&)>& onEpoch = {});

  /// The apply strategy run() will use (resolves kAuto against the pool).
  [[nodiscard]] bool usesPartitionedApply() const;

 private:
  /// Handles into LoopOptions.metrics, registered on the first run() so a
  /// reused loop's steady-state runs perform no name lookups (and no
  /// string allocations) at all.
  struct MetricIds {
    obs::CounterId events, epochs;
    obs::CounterId arrivals, departures, resamples, migrations, rejectedMoves;
    obs::CounterId repairAttempts, repairMigrations;
    obs::CounterId queuedOps, crossShardOps, flushedBins, drainedOps;
    obs::CounterId decideNs, resolveNs, drainNs, applyNs, repairNs, flushNs;
    obs::GaugeId gap, liveBalls, totalLoad, applyShards, queuePeak;
    obs::GaugeId memStateBytes, memBytesPerBall, memPeakRss;
    obs::HistId epochGap;
    obs::SketchId epochNs;
  };
  void registerMetrics();

  OnlineAllocator* allocator_;
  LoopOptions options_;
  runner::ThreadPool* pool_;
  CrossShardQueues queues_;
  std::int64_t nextOrdinal_ = 0;  // event ordinal (decision streams); reset per run()
  std::int64_t nextEpoch_ = 0;    // repair-stream key; reset per run()
  MetricIds ids_;
  bool metricsRegistered_ = false;
};

}  // namespace rlslb::serve
