// ShardedEventLoop: the serving subsystem's execution engine.
//
// Events are consumed in fixed-size *epochs* (bulk-synchronous style):
//
//   1. Fill a batch of up to epochEvents events from the trace.
//   2. Snapshot the bin loads.
//   3. Decision phase, parallel on runner::ThreadPool: events are
//      hash-sharded by ball id; each shard walks its events in trace order
//      and computes the random placement/candidate decisions against the
//      snapshot, each event drawing from its own rng stream
//      streamSeed(decisionSeed, eventOrdinal).
//   4. Apply phase, sequential in trace order: every decision is
//      re-validated against live loads and applied (O(log n) per event).
//   5. Cross-shard rebalance: a fixed budget of RLS repair activations on
//      live state heals whatever imbalance the stale snapshot let through
//      (the bulk-synchronous analogue of the paper's background RLS
//      clocks), then the next epoch snapshots fresh loads.
//
// Determinism: decisions are per-event pure functions of (snapshot,
// ordinal-derived rng), the apply order is the trace order, and the repair
// stream is keyed by epoch index — so the final load vector and every
// counter are byte-identical across thread counts AND shard counts; shards
// are purely an execution-parallelism knob (asserted by tests/test_serve).
// Epoch length is a *semantic* knob (it sets snapshot staleness) and is
// therefore not an invariance axis.
#pragma once

#include <cstdint>
#include <functional>

#include "runner/thread_pool.hpp"
#include "serve/online_allocator.hpp"
#include "sim/engine.hpp"
#include "workload/generators.hpp"

namespace rlslb::serve {

struct LoopOptions {
  int shards = 8;                   // decision-phase partitions
  std::int64_t epochEvents = 1024;  // snapshot refresh granularity
  int repairMovesPerEpoch = 4;      // cross-shard repair activations
  std::uint64_t seed = 1;           // decision + repair stream base
};

/// Per-epoch observation passed to the run() callback.
struct EpochStats {
  std::int64_t epoch = 0;       // 0-based epoch index
  double traceTime = 0.0;       // timestamp of the epoch's last event
  std::int64_t events = 0;      // events in this epoch
  std::int64_t liveBalls = 0;
  std::int64_t totalLoad = 0;
  sim::BalanceState balance;    // allocator state in the closed-system vocabulary
  std::int64_t migrations = 0;  // cumulative accepted migrations
  double wallSeconds = 0.0;     // decision+apply+repair wall-clock (epoch)

  /// max - min bin load after the epoch (derived; single source of truth
  /// is `balance`).
  [[nodiscard]] std::int64_t gap() const { return balance.maxLoad - balance.minLoad; }
};

class ShardedEventLoop {
 public:
  ShardedEventLoop(OnlineAllocator& allocator, const LoopOptions& options,
                   runner::ThreadPool& pool);

  struct RunResult {
    std::int64_t events = 0;
    std::int64_t epochs = 0;
    double wallSeconds = 0.0;  // total across epochs (excludes trace generation)
  };

  /// Drain the trace. `onEpoch` (may be empty) fires after each epoch.
  RunResult run(workload::TraceGenerator& trace,
                const std::function<void(const EpochStats&)>& onEpoch = {});

 private:
  OnlineAllocator* allocator_;
  LoopOptions options_;
  runner::ThreadPool* pool_;
  std::int64_t nextOrdinal_ = 0;  // global event ordinal (decision streams)
  std::int64_t nextEpoch_ = 0;
};

}  // namespace rlslb::serve
