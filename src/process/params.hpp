// Process parameter layer: typed `key=value` construction knobs plus the
// declared spec that makes them discoverable.
//
// Mirrors scenario/params.hpp one layer down: a ProcessParams is the bag of
// overrides handed to ProcessRegistry::make, and every registered
// ProcessSpec *declares* its accepted keys as ParamSpec entries (name, type,
// default, one-line help). The declaration drives two things:
//   - `rlslb describe <kind>` prints the spec, so knobs are discoverable
//     without reading source;
//   - the scenario layer forwards exactly the declared keys from its own
//     `key=value` overrides into the process construction, keeping one
//     spelling of every knob across both layers.
// Keys never consumed by the make function are reported by unusedKeys();
// the registry aborts construction on them, so a typo'd knob fails loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rlslb::process {

/// One declared parameter of a process kind (or of a scenario; the scenario
/// registry reuses this type for its own `describe` output).
struct ParamSpec {
  std::string name;
  std::string type;          // "int" | "double" | "bool" | "string"
  std::string defaultValue;  // human-readable (may describe a derived value)
  std::string help;          // one line
};

class ProcessParams {
 public:
  ProcessParams() = default;

  void set(const std::string& name, const std::string& value) { values_[name] = value; }

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string getString(const std::string& name, const std::string& dflt) const;
  /// Integers accept scientific shorthand ("1e6"); aborts on malformed
  /// values (util/parse.hpp).
  [[nodiscard]] std::int64_t getInt(const std::string& name, std::int64_t dflt) const;
  [[nodiscard]] double getDouble(const std::string& name, double dflt) const;
  [[nodiscard]] bool getBool(const std::string& name, bool dflt) const;

  /// Keys no getter has consumed; ProcessRegistry::make throws when the
  /// make function left any behind.
  [[nodiscard]] std::vector<std::string> unusedKeys() const;

  /// Copy of the values with a clean usage slate. The registry validates
  /// each make() call against a fresh copy, so one ProcessParams can be
  /// reused across kinds (and across replication threads: freshCopy only
  /// reads the value map).
  [[nodiscard]] ProcessParams freshCopy() const {
    ProcessParams out;
    out.values_ = values_;
    return out;
  }

  [[nodiscard]] bool empty() const { return values_.empty(); }

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> used_;
};

}  // namespace rlslb::process
