#include "process/process.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace rlslb::process {

bool Process::reached(const Target& target) const {
  switch (target.kind) {
    case Target::Kind::PerfectBalance:
      return state().perfectlyBalanced();
    case Target::Kind::XBalanced:
      return state().xBalanced(target.x);
    case Target::Kind::None:
      return false;
    case Target::Kind::Equilibrium:
      RLSLB_ASSERT_MSG(false,
                       "this process has no equilibrium notion (check "
                       "capabilities().equilibrium before targeting it)");
      return false;
  }
  return false;
}

RunResult run(Process& process, const Target& target, const RunLimits& limits, Probe* probe) {
  if (target.kind == Target::Kind::Equilibrium) {
    RLSLB_ASSERT_MSG(process.capabilities().equilibrium,
                     "Target::equilibrium() on a process without an equilibrium notion");
  }

  RunResult result;
  if (probe != nullptr) probe->onEvent(process);
  bool reached = process.reached(target);
  const std::int64_t stride = std::max<std::int64_t>(1, process.targetCheckStride(target));
  std::int64_t sinceCheck = 0;
  std::int64_t events = 0;
  while (!reached && process.now().value < limits.maxTime && events < limits.maxEvents) {
    if (!process.advance()) break;  // absorbed
    ++events;
    if (probe != nullptr) probe->onEvent(process);
    if (++sinceCheck >= stride) {
      sinceCheck = 0;
      reached = process.reached(target);
    }
  }
  result.clock = process.now();
  result.time = result.clock.value;
  result.events = events;
  result.moves = process.moves();
  result.activations = process.activations();
  result.finalState = process.state();
  result.reachedTarget = reached || process.reached(target);
  return result;
}

}  // namespace rlslb::process
