// Adapters: every balancing dynamic in the library as a process::Process.
//
// Each adapter can wrap an existing object non-owningly (the legacy
// runUntil* entry points wrap *this on the stack) or own the underlying
// dynamic (registry-constructed processes). underlying() exposes the
// wrapped object for probes, reporting, and the equivalence tests.
//
// Event granularity per family (what one advance() means):
//   EngineProcess    one sim::Engine::step() -- an activation (naive), a
//                    multiset move (jump), whichever stage is live (hybrid),
//                    or a neighbor-restricted activation (graph)
//   RoundProcess     one synchronous round (RoundProtocol::runRound())
//   CrsProcess       one CRS pair draw (never absorbed: neutral swaps can
//                    ping-pong forever, mirroring RLS's neutral moves)
//   SpeedProcess /   one activation of the Section-7 extension engines
//   WeightedProcess  (never absorbed; the Nash test is the target)
//   OpenProcess      one open-system event (arrival/departure/migration)
#pragma once

#include <algorithm>
#include <memory>
#include <utility>

#include "dynamic/open_system.hpp"
#include "ext/speed_rls.hpp"
#include "ext/weighted_rls.hpp"
#include "process/process.hpp"
#include "protocols/crs.hpp"
#include "protocols/round_protocol.hpp"
#include "sim/engine.hpp"

namespace rlslb::process {

/// Continuous-time sim::Engine family (naive / jump / hybrid / graph).
class EngineProcess final : public Process {
 public:
  /// Non-owning; `engine` must outlive the adapter.
  explicit EngineProcess(sim::Engine& engine, Capabilities caps = defaultCaps())
      : engine_(&engine), caps_(caps) {}
  /// Owning; `extra` keeps construction-time dependencies alive (the graph
  /// kind parks its Topology there).
  EngineProcess(std::unique_ptr<sim::Engine> engine, Capabilities caps,
                std::shared_ptr<void> extra = nullptr)
      : owned_(std::move(engine)), engine_(owned_.get()), extra_(std::move(extra)),
        caps_(caps) {}

  bool advance() override { return engine_->step(); }
  [[nodiscard]] Clock now() const override {
    return {Clock::Kind::Continuous, engine_->time()};
  }
  [[nodiscard]] const sim::BalanceState& state() const override { return engine_->state(); }
  [[nodiscard]] const Capabilities& capabilities() const override { return caps_; }
  [[nodiscard]] std::int64_t moves() const override { return engine_->moves(); }
  [[nodiscard]] std::int64_t activations() const override { return engine_->activations(); }

  [[nodiscard]] sim::Engine& underlying() { return *engine_; }
  [[nodiscard]] const sim::Engine& underlying() const { return *engine_; }

  static Capabilities defaultCaps() {
    Capabilities c;
    c.continuousTime = true;
    c.countsActivations = true;
    c.gapRule = true;
    return c;
  }

 private:
  std::unique_ptr<sim::Engine> owned_;
  sim::Engine* engine_;
  std::shared_ptr<void> extra_;
  Capabilities caps_;
};

/// Synchronous round protocols (selfish / EDM / threshold / repeated).
class RoundProcess final : public Process {
 public:
  explicit RoundProcess(protocols::RoundProtocol& protocol) : protocol_(&protocol) {}
  explicit RoundProcess(std::unique_ptr<protocols::RoundProtocol> protocol)
      : owned_(std::move(protocol)), protocol_(owned_.get()) {}

  bool advance() override {
    protocol_->runRound();
    return true;  // rounds always execute (a fixed point just moves nothing)
  }
  [[nodiscard]] Clock now() const override {
    return {Clock::Kind::Rounds, static_cast<double>(protocol_->roundsTaken())};
  }
  [[nodiscard]] const sim::BalanceState& state() const override { return protocol_->state(); }
  [[nodiscard]] const Capabilities& capabilities() const override { return caps_; }
  [[nodiscard]] std::int64_t moves() const override { return protocol_->moves(); }

  [[nodiscard]] protocols::RoundProtocol& underlying() { return *protocol_; }

 private:
  std::unique_ptr<protocols::RoundProtocol> owned_;
  protocols::RoundProtocol* protocol_;
  Capabilities caps_;  // defaults: synchronous, closed, no gap knob
};

/// CRS local search [9]: sequential pair draws over per-ball candidate sets.
class CrsProcess final : public Process {
 public:
  explicit CrsProcess(protocols::CrsProtocol& crs) : crs_(&crs) { caps_.equilibrium = true; }
  explicit CrsProcess(std::unique_ptr<protocols::CrsProtocol> crs)
      : owned_(std::move(crs)), crs_(owned_.get()) {
    caps_.equilibrium = true;
  }

  bool advance() override {
    crs_->step();
    return true;
  }
  [[nodiscard]] Clock now() const override {
    return {Clock::Kind::Steps, static_cast<double>(crs_->steps())};
  }
  [[nodiscard]] const sim::BalanceState& state() const override { return crs_->state(); }
  [[nodiscard]] const Capabilities& capabilities() const override { return caps_; }
  [[nodiscard]] std::int64_t moves() const override { return crs_->moves(); }

  [[nodiscard]] bool reached(const Target& target) const override {
    if (target.kind == Target::Kind::Equilibrium) return crs_->isLocallyStable();
    return Process::reached(target);
  }
  /// Local stability is an O(m) scan; keep the family's historical n/8
  /// cadence. Balance targets are O(1) on the shared state.
  [[nodiscard]] std::int64_t targetCheckStride(const Target& target) const override {
    if (target.kind == Target::Kind::Equilibrium) {
      return std::max<std::int64_t>(1, crs_->numBins() / 8);
    }
    return 1;
  }

  [[nodiscard]] protocols::CrsProtocol& underlying() { return *crs_; }

 private:
  std::unique_ptr<protocols::CrsProtocol> owned_;
  protocols::CrsProtocol* crs_;
  Capabilities caps_;
};

/// Bins-with-speeds RLS (Section 7, first extension).
class SpeedProcess final : public Process {
 public:
  /// `checkEvery` <= 0 selects the engine's historical default (n/4).
  explicit SpeedProcess(ext::SpeedRlsEngine& engine, std::int64_t checkEvery = 0)
      : engine_(&engine), checkEvery_(checkEvery) {
    initCaps();
  }
  SpeedProcess(std::unique_ptr<ext::SpeedRlsEngine> engine, std::int64_t checkEvery = 0)
      : owned_(std::move(engine)), engine_(owned_.get()), checkEvery_(checkEvery) {
    initCaps();
  }

  bool advance() override {
    engine_->step();
    return true;
  }
  [[nodiscard]] Clock now() const override {
    return {Clock::Kind::Continuous, engine_->time()};
  }
  [[nodiscard]] const sim::BalanceState& state() const override { return engine_->state(); }
  [[nodiscard]] const Capabilities& capabilities() const override { return caps_; }
  [[nodiscard]] std::int64_t moves() const override { return engine_->moves(); }
  [[nodiscard]] std::int64_t activations() const override { return engine_->activations(); }

  [[nodiscard]] bool reached(const Target& target) const override {
    if (target.kind == Target::Kind::Equilibrium) return engine_->isEquilibrium();
    return Process::reached(target);
  }
  [[nodiscard]] std::int64_t targetCheckStride(const Target& target) const override {
    if (target.kind != Target::Kind::Equilibrium) return 1;
    if (checkEvery_ > 0) return checkEvery_;
    return std::max<std::int64_t>(
        1, static_cast<std::int64_t>(engine_->loads().size()) / 4);
  }

  [[nodiscard]] ext::SpeedRlsEngine& underlying() { return *engine_; }

 private:
  void initCaps() {
    caps_.continuousTime = true;
    caps_.countsActivations = true;
    caps_.weights = true;  // bin speeds weight the experienced load
    caps_.equilibrium = true;
  }

  std::unique_ptr<ext::SpeedRlsEngine> owned_;
  ext::SpeedRlsEngine* engine_;
  std::int64_t checkEvery_;
  Capabilities caps_;
};

/// Weighted-balls RLS (Section 7, second extension). The BalanceState is in
/// weight units (numBalls == total weight).
class WeightedProcess final : public Process {
 public:
  explicit WeightedProcess(ext::WeightedRlsEngine& engine, std::int64_t checkEvery = 0)
      : engine_(&engine), checkEvery_(checkEvery) {
    initCaps();
  }
  WeightedProcess(std::unique_ptr<ext::WeightedRlsEngine> engine, std::int64_t checkEvery = 0)
      : owned_(std::move(engine)), engine_(owned_.get()), checkEvery_(checkEvery) {
    initCaps();
  }

  bool advance() override {
    engine_->step();
    return true;
  }
  [[nodiscard]] Clock now() const override {
    return {Clock::Kind::Continuous, engine_->time()};
  }
  [[nodiscard]] const sim::BalanceState& state() const override { return engine_->state(); }
  [[nodiscard]] const Capabilities& capabilities() const override { return caps_; }
  [[nodiscard]] std::int64_t moves() const override { return engine_->moves(); }
  [[nodiscard]] std::int64_t activations() const override { return engine_->activations(); }

  [[nodiscard]] bool reached(const Target& target) const override {
    if (target.kind == Target::Kind::Equilibrium) return engine_->isEquilibrium();
    return Process::reached(target);
  }
  [[nodiscard]] std::int64_t targetCheckStride(const Target& target) const override {
    if (target.kind != Target::Kind::Equilibrium) return 1;
    if (checkEvery_ > 0) return checkEvery_;
    return std::max<std::int64_t>(
        1, (static_cast<std::int64_t>(engine_->loads().size()) + engine_->numBalls()) / 4);
  }

  [[nodiscard]] ext::WeightedRlsEngine& underlying() { return *engine_; }

 private:
  void initCaps() {
    caps_.continuousTime = true;
    caps_.countsActivations = true;
    caps_.weights = true;
    caps_.equilibrium = true;
  }

  std::unique_ptr<ext::WeightedRlsEngine> owned_;
  ext::WeightedRlsEngine* engine_;
  std::int64_t checkEvery_;
  Capabilities caps_;
};

/// Open-system RLS (Ganesh et al. [11]): arrivals, departures, migration.
class OpenProcess final : public Process {
 public:
  explicit OpenProcess(dynamic::OpenSystem& system) : system_(&system) { initCaps(); }
  explicit OpenProcess(std::unique_ptr<dynamic::OpenSystem> system)
      : owned_(std::move(system)), system_(owned_.get()) {
    initCaps();
  }

  bool advance() override { return system_->step(); }
  [[nodiscard]] Clock now() const override {
    return {Clock::Kind::Continuous, system_->time()};
  }
  [[nodiscard]] const sim::BalanceState& state() const override { return system_->state(); }
  [[nodiscard]] const Capabilities& capabilities() const override { return caps_; }
  [[nodiscard]] std::int64_t moves() const override { return system_->counters().migrations; }

  [[nodiscard]] dynamic::OpenSystem& underlying() { return *system_; }

 private:
  void initCaps() {
    caps_.continuousTime = true;
    caps_.gapRule = true;
    caps_.openSystem = true;
  }

  std::unique_ptr<dynamic::OpenSystem> owned_;
  dynamic::OpenSystem* system_;
  Capabilities caps_;
};

}  // namespace rlslb::process
