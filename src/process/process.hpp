// The unified process API: one polymorphic interface over every balancing
// dynamic in the library, one generic run loop over all of them.
//
// The repo hosts five process families -- continuous-time RLS engines
// (sim::Engine), synchronous round protocols (protocols::RoundProtocol and
// CRS), the Section-7 extensions (ext::SpeedRlsEngine /
// ext::WeightedRlsEngine), graph-restricted RLS (graph::GraphRlsEngine) and
// the open system (dynamic::OpenSystem). Each historically carried its own
// construction path and stopping-condition loop. process::Process is the
// common denominator:
//
//   advance()   one state-changing event of the dynamic's natural
//               granularity: an activation, a lumped multiset move, a
//               synchronous round, a CRS pair draw, an open-system event.
//   now()       a unified Clock spanning the granularities: continuous
//               simulation time, synchronous round count, or sequential
//               step count -- one comparable "how far along" axis (the
//               paper equates one synchronous round with one unit of
//               continuous RLS time: m expected activations).
//   state()     the O(1)-maintained BalanceState view shared with the sim
//               engines (and with serve::OnlineAllocator::balanceState()),
//               so stopping predicates and gap reports speak one
//               vocabulary.
//   capabilities()  what the dynamic supports: probes, a gap rule, weights,
//               topology restriction, open ball populations, equilibrium
//               targets.
//
// process::run(...) is THE run loop. The per-family legacy entry points
// (core::balance, sim::runUntil, RoundProtocol::runUntilBalanced, the
// CRS/ext runUntil* helpers, OpenSystem::runUntilTime) are retained as thin
// wrappers over it -- byte-identical results, pinned by
// tests/test_process.cpp against reference copies of the historical loops.
//
// Construction is data too: see registry.hpp (makeProcess(kind, ...)) for
// the string-keyed roster mirroring the scenario registry.
#pragma once

#include <cstdint>

#include "sim/engine.hpp"

namespace rlslb::process {

/// Unified clock over the three event granularities.
struct Clock {
  enum class Kind {
    Continuous,  // exact CTMC simulation time
    Rounds,      // synchronous rounds executed
    Steps,       // sequential protocol steps (CRS pair draws)
  };
  Kind kind = Kind::Continuous;
  double value = 0.0;

  /// Short unit label for tables ("time" / "rounds" / "steps").
  [[nodiscard]] const char* unit() const {
    switch (kind) {
      case Kind::Continuous: return "time";
      case Kind::Rounds: return "rounds";
      case Kind::Steps: return "steps";
    }
    return "?";
  }
};

/// What a dynamic supports; drives generic drivers (process_compare picks
/// default targets from these) and documents the roster in `rlslb describe`.
struct Capabilities {
  bool continuousTime = false;     // Clock::Kind::Continuous
  bool countsActivations = false;  // activations() >= 0
  bool probes = true;              // every advance() is a probe-visible event
  bool gapRule = false;            // accepts the RLS acceptance-gap knob
  bool weights = false;            // weighted balls or bin speeds
  bool topology = false;           // destination restricted to a graph
  bool openSystem = false;         // ball population changes over time
  bool equilibrium = false;        // supports Target::equilibrium()
};

/// Stopping target of a run. Extends sim::Target with the fixed points of
/// the non-RLS dynamics (Nash equilibrium / local stability) and an
/// explicit "no target" for horizon-limited runs (open systems).
struct Target {
  enum class Kind { PerfectBalance, XBalanced, Equilibrium, None };
  Kind kind = Kind::PerfectBalance;
  std::int64_t x = 0;  // used by XBalanced

  static Target perfect() { return {Kind::PerfectBalance, 0}; }
  static Target xBalanced(std::int64_t x) { return {Kind::XBalanced, x}; }
  static Target equilibrium() { return {Kind::Equilibrium, 0}; }
  static Target none() { return {Kind::None, 0}; }

  static Target fromSim(const sim::Target& t) {
    return t.kind == sim::Target::Kind::PerfectBalance ? perfect() : xBalanced(t.x);
  }
};

/// Safety budgets, shared with the sim layer: maxTime bounds now().value
/// (so it caps rounds/steps for synchronous clocks), maxEvents bounds
/// advance() calls within one run().
using RunLimits = sim::RunLimits;

class Process {
 public:
  virtual ~Process() = default;

  /// Advance one event. Returns false iff the process is absorbed (no
  /// transition has positive rate), in which case now()/state() are final.
  virtual bool advance() = 0;

  [[nodiscard]] virtual Clock now() const = 0;

  /// O(1) balance view (see sim::BalanceState). For weighted dynamics the
  /// loads are in weight units; for open systems numBalls tracks the live
  /// population.
  [[nodiscard]] virtual const sim::BalanceState& state() const = 0;

  [[nodiscard]] virtual const Capabilities& capabilities() const = 0;

  /// Successful (state-changing) ball relocations so far.
  [[nodiscard]] virtual std::int64_t moves() const = 0;

  /// Ball activations so far; -1 when the dynamic does not simulate
  /// individual activations.
  [[nodiscard]] virtual std::int64_t activations() const { return -1; }

  /// Target predicate. The default evaluates balance targets on state()
  /// (None is never reached); dynamics with a fixed point override it for
  /// Target::equilibrium().
  [[nodiscard]] virtual bool reached(const Target& target) const;

  /// How many events run() lets pass between target re-evaluations. 1 for
  /// O(1) predicates; adapters with O(n)-or-worse fixed-point checks return
  /// their family's historical check cadence.
  [[nodiscard]] virtual std::int64_t targetCheckStride(const Target& target) const {
    (void)target;
    return 1;
  }
};

/// Observer called once before the run and after every event.
class Probe {
 public:
  virtual ~Probe() = default;
  virtual void onEvent(const Process& process) = 0;
};

struct RunResult {
  Clock clock;                    // final clock (kind + value)
  double time = 0.0;              // == clock.value, for drop-in reporting
  std::int64_t events = 0;        // advance() calls made by this run()
  std::int64_t moves = 0;
  std::int64_t activations = -1;  // -1 if unavailable
  bool reachedTarget = false;
  sim::BalanceState finalState;
};

/// Run `process` until the target, absorption, or a limit. The one loop
/// behind every per-family runUntil* wrapper.
RunResult run(Process& process, const Target& target, const RunLimits& limits = {},
              Probe* probe = nullptr);

}  // namespace rlslb::process
