#include "process/replicate.hpp"

#include "rng/splitmix64.hpp"

namespace rlslb::process {

std::vector<RunResult> runReplicated(const std::string& kind,
                                     const config::Configuration& initial,
                                     const ProcessParams& params, const Target& target,
                                     const RunLimits& limits, std::int64_t reps,
                                     std::uint64_t baseSeed, runner::ThreadPool& pool,
                                     const ProcessRegistry& registry) {
  std::vector<RunResult> results(static_cast<std::size_t>(reps < 0 ? 0 : reps));
  if (results.empty()) return results;
  pool.parallelFor(reps, [&](std::int64_t r) {
    auto process = registry.make(kind, initial, rng::streamSeed(baseSeed, r), params);
    results[static_cast<std::size_t>(r)] = run(*process, target, limits);
  });
  return results;
}

}  // namespace rlslb::process
