// Replicated process runs: the registry-aware counterpart of
// runner::runReplications, so comparison scenarios fan ANY registered
// dynamic out across the shared thread pool with one call.
//
// Determinism contract matches the runner layer: replication r constructs
// its process with rng::streamSeed(baseSeed, r) and writes into slot r, so
// results are bit-identical for any thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "config/configuration.hpp"
#include "process/registry.hpp"
#include "runner/thread_pool.hpp"

namespace rlslb::process {

/// Run `reps` independent replications of `kind` from `initial` to `target`
/// on `pool`. Each replication builds a fresh process via the registry
/// (parameters validated once per replication against a fresh usage slate,
/// see ProcessParams::freshCopy) and runs the generic loop.
std::vector<RunResult> runReplicated(const std::string& kind,
                                     const config::Configuration& initial,
                                     const ProcessParams& params, const Target& target,
                                     const RunLimits& limits, std::int64_t reps,
                                     std::uint64_t baseSeed, runner::ThreadPool& pool,
                                     const ProcessRegistry& registry = ProcessRegistry::global());

}  // namespace rlslb::process
