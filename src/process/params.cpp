#include "process/params.hpp"

#include "util/parse.hpp"

namespace rlslb::process {

bool ProcessParams::has(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return false;
  used_[name] = true;
  return true;
}

std::string ProcessParams::getString(const std::string& name, const std::string& dflt) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  used_[name] = true;
  return it->second;
}

std::int64_t ProcessParams::getInt(const std::string& name, std::int64_t dflt) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  used_[name] = true;
  return util::parseInt64(it->second, name);
}

double ProcessParams::getDouble(const std::string& name, double dflt) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  used_[name] = true;
  return util::parseDouble(it->second, name);
}

bool ProcessParams::getBool(const std::string& name, bool dflt) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  used_[name] = true;
  return util::parseBool(it->second, name);
}

std::vector<std::string> ProcessParams::unusedKeys() const {
  std::vector<std::string> out;
  for (const auto& [k, _] : values_) {
    const auto it = used_.find(k);
    if (it == used_.end() || !it->second) out.push_back(k);
  }
  return out;
}

}  // namespace rlslb::process
