// ProcessRegistry: balancing dynamics as data, mirroring the scenario
// registry one layer down.
//
//   auto p = process::makeProcess("threshold", initial, seed, params);
//   auto r = process::run(*p, process::Target::xBalanced(8), limits);
//
// Every registered ProcessSpec names a kind (stable CLI identifier), its
// source family, a one-line description, the declared ParamSpec roster
// (printed by `rlslb describe <kind>`), and a make function. Construction
// validates parameters loudly: a key the make function never consumed
// throws std::invalid_argument, an unknown kind throws std::out_of_range
// listing the roster (matching the scenario registry's contract).
//
// Built-in kinds (registerBuiltinProcesses):
//   sim        rls (hybrid), rls_naive, rls_jump
//   protocols  selfish, edm, threshold, repeated, crs
//   ext        speed_rls, weighted_rls
//   graph      graph_rls
//   dynamic    open
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "config/configuration.hpp"
#include "process/params.hpp"
#include "process/process.hpp"

namespace rlslb::process {

struct ProcessSpec {
  std::string kind;         // stable identifier, e.g. "threshold"
  std::string family;       // "sim" | "protocols" | "ext" | "graph" | "dynamic"
  std::string description;  // one line: what dynamic this is
  std::vector<ParamSpec> params;
  /// Build a process over (a copy of the state implied by) `initial`,
  /// seeded deterministically. CRS-style dynamics that own their placement
  /// use only the shape (n, m) of `initial`; their spec says so.
  std::function<std::unique_ptr<Process>(const config::Configuration& initial,
                                         std::uint64_t seed, const ProcessParams& params)>
      make;
};

class ProcessRegistry {
 public:
  /// The process-wide registry used by drivers; fresh instances for tests.
  static ProcessRegistry& global();

  /// Throws std::invalid_argument on a duplicate kind.
  void add(ProcessSpec spec);

  [[nodiscard]] const ProcessSpec* find(const std::string& kind) const;
  /// All specs, kind-sorted.
  [[nodiscard]] std::vector<const ProcessSpec*> list() const;
  [[nodiscard]] std::size_t size() const { return byKind_.size(); }

  /// Construct. Throws std::out_of_range (with the roster) on an unknown
  /// kind and std::invalid_argument on parameter keys the kind ignored.
  [[nodiscard]] std::unique_ptr<Process> make(const std::string& kind,
                                              const config::Configuration& initial,
                                              std::uint64_t seed,
                                              const ProcessParams& params = {}) const;

 private:
  std::map<std::string, ProcessSpec> byKind_;
};

/// Register the built-in roster (idempotent on the global registry).
/// Explicit registration, not static initializers, matching the scenario
/// registry's linker-safety rationale.
void registerBuiltinProcesses(ProcessRegistry& registry = ProcessRegistry::global());

/// One-liner over the global registry (registers built-ins on first use).
std::unique_ptr<Process> makeProcess(const std::string& kind,
                                     const config::Configuration& initial, std::uint64_t seed,
                                     const ProcessParams& params = {});

}  // namespace rlslb::process
