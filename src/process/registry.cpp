#include "process/registry.hpp"

#include <cmath>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "dynamic/open_system.hpp"
#include "ext/speed_rls.hpp"
#include "ext/weighted_rls.hpp"
#include "graph/graph_engine.hpp"
#include "graph/topology.hpp"
#include "process/adapters.hpp"
#include "protocols/crs.hpp"
#include "protocols/edm.hpp"
#include "protocols/repeated.hpp"
#include "protocols/selfish.hpp"
#include "protocols/threshold.hpp"
#include "rng/distributions.hpp"
#include "rng/splitmix64.hpp"
#include "sim/hybrid_engine.hpp"
#include "sim/jump_engine.hpp"
#include "sim/naive_engine.hpp"
#include "util/assert.hpp"

namespace rlslb::process {

ProcessRegistry& ProcessRegistry::global() {
  static ProcessRegistry registry;
  return registry;
}

void ProcessRegistry::add(ProcessSpec spec) {
  RLSLB_ASSERT_MSG(!spec.kind.empty() && spec.make != nullptr,
                   "process spec needs a kind and a make function");
  const auto [it, inserted] = byKind_.emplace(spec.kind, std::move(spec));
  if (!inserted) throw std::invalid_argument("duplicate process kind: " + it->first);
}

const ProcessSpec* ProcessRegistry::find(const std::string& kind) const {
  const auto it = byKind_.find(kind);
  return it == byKind_.end() ? nullptr : &it->second;
}

std::vector<const ProcessSpec*> ProcessRegistry::list() const {
  std::vector<const ProcessSpec*> out;
  out.reserve(byKind_.size());
  for (const auto& [_, s] : byKind_) out.push_back(&s);  // map order = kind order
  return out;
}

std::unique_ptr<Process> ProcessRegistry::make(const std::string& kind,
                                               const config::Configuration& initial,
                                               std::uint64_t seed,
                                               const ProcessParams& params) const {
  const ProcessSpec* spec = find(kind);
  if (spec == nullptr) {
    std::string known;
    for (const auto& [k, _] : byKind_) {
      if (!known.empty()) known += ", ";
      known += k;
    }
    throw std::out_of_range("unknown process kind '" + kind + "' (known: " + known + ")");
  }
  // Validate against a fresh usage slate so one ProcessParams can serve
  // several kinds (and several replication threads) in turn.
  const ProcessParams local = params.freshCopy();
  std::unique_ptr<Process> process = spec->make(initial, seed, local);
  const auto unused = local.unusedKeys();
  if (!unused.empty()) {
    std::string list;
    for (const auto& k : unused) {
      if (!list.empty()) list += ", ";
      list += k;
    }
    throw std::invalid_argument("process kind '" + kind + "' does not take parameter(s): " +
                                list + " (see `rlslb describe " + kind + "`)");
  }
  return process;
}

namespace {

// ---------------------------------------------------------------- sim ---

std::unique_ptr<Process> makeRls(const config::Configuration& initial, std::uint64_t seed,
                                 const ProcessParams& params) {
  Capabilities caps = EngineProcess::defaultCaps();
  caps.gapRule = false;  // the hybrid's jump stage is gap-agnostic
  return std::make_unique<EngineProcess>(
      std::make_unique<sim::HybridEngine>(initial, seed,
                                          params.getInt("level_threshold", 0)),
      caps);
}

std::unique_ptr<Process> makeRlsNaive(const config::Configuration& initial, std::uint64_t seed,
                                      const ProcessParams& params) {
  return std::make_unique<EngineProcess>(
      std::make_unique<sim::NaiveEngine>(initial, seed,
                                         static_cast<int>(params.getInt("gap", 1))),
      EngineProcess::defaultCaps());
}

std::unique_ptr<Process> makeRlsJump(const config::Configuration& initial, std::uint64_t seed,
                                     const ProcessParams& params) {
  (void)params;
  Capabilities caps = EngineProcess::defaultCaps();
  caps.countsActivations = false;  // jumps skip failed activations entirely
  caps.gapRule = false;            // same lumped chain for >= and > rules
  return std::make_unique<EngineProcess>(std::make_unique<sim::JumpEngine>(initial, seed),
                                         caps);
}

// ---------------------------------------------------------- protocols ---

std::unique_ptr<Process> makeSelfish(const config::Configuration& initial, std::uint64_t seed,
                                     const ProcessParams& params) {
  (void)params;
  return std::make_unique<RoundProcess>(
      std::make_unique<protocols::SelfishRerouting>(initial, seed));
}

std::unique_ptr<Process> makeEdm(const config::Configuration& initial, std::uint64_t seed,
                                 const ProcessParams& params) {
  (void)params;
  return std::make_unique<RoundProcess>(
      std::make_unique<protocols::EdmGlobalRerouting>(initial, seed));
}

std::unique_ptr<Process> makeRepeated(const config::Configuration& initial, std::uint64_t seed,
                                      const ProcessParams& params) {
  (void)params;
  return std::make_unique<RoundProcess>(
      std::make_unique<protocols::RepeatedBallsIntoBins>(initial, seed));
}

std::unique_ptr<Process> makeThreshold(const config::Configuration& initial, std::uint64_t seed,
                                       const ProcessParams& params) {
  std::int64_t threshold = params.getInt("threshold", -1);
  if (threshold < 0) threshold = initial.floorAverage();
  return std::make_unique<RoundProcess>(std::make_unique<protocols::ThresholdProtocol>(
      initial, seed, threshold, params.getDouble("p", 0.5)));
}

std::unique_ptr<Process> makeCrs(const config::Configuration& initial, std::uint64_t seed,
                                 const ProcessParams& params) {
  (void)params;
  // CRS owns its placement (random candidate pairs + Greedy[2]); only the
  // shape (n, m) of the initial configuration is used.
  return std::make_unique<CrsProcess>(std::make_unique<protocols::CrsProtocol>(
      initial.numBins(), initial.numBalls(), seed));
}

// ----------------------------------------------------------------- ext ---

std::vector<std::int64_t> speedRoster(const std::string& name, std::int64_t n) {
  std::vector<std::int64_t> speeds(static_cast<std::size_t>(n), 1);
  if (name == "uniform") return speeds;
  if (name == "half2") {
    for (std::int64_t i = n / 2; i < n; ++i) speeds[static_cast<std::size_t>(i)] = 2;
    return speeds;
  }
  if (name == "thirds124") {
    for (std::int64_t i = 0; i < n; ++i) {
      speeds[static_cast<std::size_t>(i)] = i < n / 3 ? 1 : (i < 2 * n / 3 ? 2 : 4);
    }
    return speeds;
  }
  if (name == "one_fast8") {
    speeds[static_cast<std::size_t>(n - 1)] = 8;
    return speeds;
  }
  RLSLB_ASSERT_MSG(false, "speeds= must be uniform|half2|thirds124|one_fast8");
  return speeds;
}

std::unique_ptr<Process> makeSpeedRls(const config::Configuration& initial, std::uint64_t seed,
                                      const ProcessParams& params) {
  return std::make_unique<SpeedProcess>(std::make_unique<ext::SpeedRlsEngine>(
      initial, speedRoster(params.getString("speeds", "uniform"), initial.numBins()), seed));
}

std::unique_ptr<Process> makeWeightedRls(const config::Configuration& initial,
                                         std::uint64_t seed, const ProcessParams& params) {
  const std::int64_t n = initial.numBins();
  const std::int64_t m = initial.numBalls();
  RLSLB_ASSERT_MSG(m >= 1, "weighted_rls needs at least one ball");

  // Weights: unit keeps one ball per load unit; the skewed rosters keep the
  // expected total weight comparable to m with 1/4 as many balls (the E11
  // convention).
  const std::string dist = params.getString("weights", "unit");
  rng::Xoshiro256pp weightEng(seed ^ 0xfeed);
  std::vector<std::int64_t> weights;
  if (dist == "unit") {
    weights.assign(static_cast<std::size_t>(m), 1);
  } else if (dist == "uniform8") {
    weights.resize(static_cast<std::size_t>(std::max<std::int64_t>(1, m / 4)));
    for (auto& w : weights) w = 1 + static_cast<std::int64_t>(rng::uniformIndex(weightEng, 8));
  } else if (dist == "bimodal16") {
    weights.resize(static_cast<std::size_t>(std::max<std::int64_t>(1, m / 4)));
    for (auto& w : weights) w = rng::bernoulli(weightEng, 0.1) ? 16 : 1;
  } else {
    RLSLB_ASSERT_MSG(false, "weights= must be unit|uniform8|bimodal16");
  }

  // Start bins follow the configuration's shape: ball b sits where the
  // (b mod m)-th ball of `initial` sits, so allInOne puts every weighted
  // ball on bin 0 and balanced spreads them evenly.
  std::vector<std::uint32_t> flat;
  flat.reserve(static_cast<std::size_t>(m));
  for (std::int64_t bin = 0; bin < n; ++bin) {
    for (std::int64_t k = 0; k < initial.load(static_cast<std::size_t>(bin)); ++k) {
      flat.push_back(static_cast<std::uint32_t>(bin));
    }
  }
  std::vector<std::uint32_t> start(weights.size());
  for (std::size_t b = 0; b < start.size(); ++b) start[b] = flat[b % flat.size()];

  return std::make_unique<WeightedProcess>(std::make_unique<ext::WeightedRlsEngine>(
      n, std::move(weights), std::move(start), seed));
}

// --------------------------------------------------------------- graph ---

std::unique_ptr<Process> makeGraphRls(const config::Configuration& initial, std::uint64_t seed,
                                      const ProcessParams& params) {
  const std::int64_t n = initial.numBins();
  const std::string name = params.getString("topology", "complete");
  auto topology = std::make_shared<graph::Topology>([&] {
    if (name == "complete") return graph::Topology::complete(n);
    if (name == "cycle") return graph::Topology::cycle(n);
    if (name == "hypercube") {
      int dim = 0;
      while ((std::int64_t{1} << dim) < n) ++dim;
      RLSLB_ASSERT_MSG((std::int64_t{1} << dim) == n, "hypercube topology needs n = 2^d");
      return graph::Topology::hypercube(dim);
    }
    if (name == "torus") {
      const auto side = static_cast<std::int64_t>(std::llround(std::sqrt(static_cast<double>(n))));
      RLSLB_ASSERT_MSG(side * side == n, "torus topology needs square n");
      return graph::Topology::torus(side, side);
    }
    if (name == "random_regular") {
      // Topology randomness rides a dedicated stream off the process seed,
      // so the graph is deterministic per (seed, degree).
      rng::Xoshiro256pp topoEng(rng::streamSeed(seed, 0x746f706fULL));  // "topo"
      return graph::Topology::randomRegular(
          n, static_cast<int>(params.getInt("degree", 4)), topoEng);
    }
    RLSLB_ASSERT_MSG(false,
                     "topology= must be complete|cycle|hypercube|torus|random_regular");
    return graph::Topology::complete(n);
  }());

  Capabilities caps = EngineProcess::defaultCaps();
  caps.topology = true;
  auto engine = std::make_unique<graph::GraphRlsEngine>(
      initial, *topology, seed, static_cast<int>(params.getInt("gap", 1)));
  return std::make_unique<EngineProcess>(std::move(engine), caps, std::move(topology));
}

// -------------------------------------------------------------- dynamic ---

std::unique_ptr<Process> makeOpen(const config::Configuration& initial, std::uint64_t seed,
                                  const ProcessParams& params) {
  dynamic::OpenSystemOptions options;
  options.arrivalRatePerBin = params.getDouble("lambda", 0.5);
  options.departureRate = params.getDouble("mu", 1.0);
  options.arrivalChoices = static_cast<int>(params.getInt("d", 1));
  options.gap = static_cast<int>(params.getInt("gap", 1));
  return std::make_unique<OpenProcess>(std::make_unique<dynamic::OpenSystem>(
      initial.numBins(), options, seed, &initial));
}

}  // namespace

namespace {

void addBuiltinProcesses(ProcessRegistry& registry) {
  registry.add({"rls", "sim",
                "the paper's RLS via the hybrid engine (naive until few levels, then jump)",
                {{"level_threshold", "int", "0",
                  "switch to the jump engine at this many distinct loads (0 = default 96)"}},
                makeRls});
  registry.add({"rls_naive", "sim",
                "ground-truth RLS simulating every activation",
                {{"gap", "int", "1",
                  "move iff load(src) >= load(dst) + gap (1 = paper, 2 = strict variant)"}},
                makeRlsNaive});
  registry.add({"rls_jump", "sim",
                "event-skipping exact simulator of the lumped RLS chain",
                {},
                makeRlsJump});

  registry.add({"selfish", "protocols",
                "synchronous selfish rerouting [4]: damped uniform-sample migration rounds",
                {},
                makeSelfish});
  registry.add({"edm", "protocols",
                "Even-Dar--Mansour global-average rerouting [10]",
                {},
                makeEdm});
  registry.add({"threshold", "protocols",
                "fixed-threshold synchronous protocol [1]",
                {{"threshold", "int", "-1 (= floor(m/n))",
                  "balls above this load migrate"},
                 {"p", "double", "0.5", "per-ball migration probability"}},
                makeThreshold});
  registry.add({"repeated", "protocols",
                "repeated balls-into-bins [2]: every non-empty bin re-throws one ball per round",
                {},
                makeRepeated});
  registry.add({"crs", "protocols",
                "CRS local search [9] over per-ball candidate pairs (uses only the (n, m) "
                "shape of the initial configuration; placement is Greedy[2], seed-derived)",
                {},
                makeCrs});

  registry.add({"speed_rls", "ext",
                "bins with speeds: strict-improvement RLS to Nash equilibrium (Section 7)",
                {{"speeds", "string", "uniform",
                  "speed roster: uniform|half2|thirds124|one_fast8"}},
                makeSpeedRls});
  registry.add({"weighted_rls", "ext",
                "weighted balls: non-worsening RLS to Nash equilibrium (Section 7); the "
                "balance view is in weight units",
                {{"weights", "string", "unit",
                  "ball-weight distribution: unit|uniform8|bimodal16"}},
                makeWeightedRls});

  registry.add({"graph_rls", "graph",
                "RLS with destinations restricted to a topology's neighbors (Section 7)",
                {{"topology", "string", "complete",
                  "complete|cycle|hypercube|torus|random_regular"},
                 {"gap", "int", "1", "RLS acceptance gap"},
                 {"degree", "int", "4", "degree of the random_regular topology"}},
                makeGraphRls});

  registry.add({"open", "dynamic",
                "open-system RLS [11]: Poisson arrivals, per-ball departures, RLS migration",
                {{"lambda", "double", "0.5", "arrivals per bin per time unit"},
                 {"mu", "double", "1.0", "per-ball departure (service) rate"},
                 {"d", "int", "1", "arrival samples d bins, joins the least loaded"},
                 {"gap", "int", "1", "RLS acceptance gap"}},
                makeOpen});
}

}  // namespace

void registerBuiltinProcesses(ProcessRegistry& registry) {
  if (&registry == &ProcessRegistry::global()) {
    // makeProcess registers on first use and may be called from thread-pool
    // workers (process::runReplicated), so the global registration must be
    // race-free, not just idempotent.
    static std::once_flag once;
    std::call_once(once, [&registry] { addBuiltinProcesses(registry); });
    return;
  }
  if (registry.find("rls") != nullptr) return;  // idempotent for fresh registries
  addBuiltinProcesses(registry);
}

std::unique_ptr<Process> makeProcess(const std::string& kind,
                                     const config::Configuration& initial, std::uint64_t seed,
                                     const ProcessParams& params) {
  registerBuiltinProcesses();
  return ProcessRegistry::global().make(kind, initial, seed, params);
}

}  // namespace rlslb::process
