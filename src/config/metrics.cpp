#include "config/metrics.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace rlslb::config {

bool isXBalancedInt(std::int64_t minLoad, std::int64_t maxLoad, std::int64_t n, std::int64_t m,
                    std::int64_t x) {
  RLSLB_ASSERT(n >= 1);
  return n * maxLoad - m <= x * n && m - n * minLoad <= x * n;
}

bool isPerfectlyBalanced(std::int64_t minLoad, std::int64_t maxLoad, std::int64_t n,
                         std::int64_t m) {
  RLSLB_ASSERT(n >= 1);
  return n * maxLoad - m < n && m - n * minLoad < n;
}

double discrepancy(std::int64_t minLoad, std::int64_t maxLoad, std::int64_t n, std::int64_t m) {
  const double avg = static_cast<double>(m) / static_cast<double>(n);
  return std::max(static_cast<double>(maxLoad) - avg, avg - static_cast<double>(minLoad));
}

namespace {

template <typename LevelIter>
Metrics metricsFromLevels(LevelIter begin, LevelIter end, std::int64_t n, std::int64_t m) {
  RLSLB_ASSERT(begin != end);
  Metrics out;
  const std::int64_t floorAvg = m / n;
  const std::int64_t ceilAvg = (m + n - 1) / n;
  out.minLoad = begin->load;
  out.maxLoad = begin->load;
  for (auto it = begin; it != end; ++it) {
    const std::int64_t v = it->load;
    const std::int64_t c = it->count;
    out.minLoad = std::min(out.minLoad, v);
    out.maxLoad = std::max(out.maxLoad, v);
    if (v > ceilAvg) out.overloadedBalls += (v - ceilAvg) * c;
    if (n * v > m) out.overloadedBins += c;
    if (n * v < m) out.underloadedBins += c;
    if (v == floorAvg) out.binsAtFloor += c;
  }
  out.discrepancy = discrepancy(out.minLoad, out.maxLoad, n, m);
  out.perfectlyBalanced = isPerfectlyBalanced(out.minLoad, out.maxLoad, n, m);
  return out;
}

struct PlainLevel {
  std::int64_t load;
  std::int64_t count;
};

}  // namespace

Metrics computeMetrics(const Configuration& c) {
  return computeMetrics(c.loads());
}

Metrics computeMetrics(const std::vector<std::int64_t>& loads) {
  std::vector<PlainLevel> singles;
  singles.reserve(loads.size());
  std::int64_t balls = 0;
  for (std::int64_t v : loads) {
    singles.push_back({v, 1});
    balls += v;
  }
  return metricsFromLevels(singles.begin(), singles.end(),
                           static_cast<std::int64_t>(loads.size()), balls);
}

Metrics computeMetrics(const ds::LoadMultiset& ms) {
  return metricsFromLevels(ms.levels().begin(), ms.levels().end(), ms.numBins(), ms.numBalls());
}

std::int64_t overloadedBalls(const ds::LoadMultiset& ms) {
  const std::int64_t n = ms.numBins();
  const std::int64_t m = ms.numBalls();
  const std::int64_t ceilAvg = (m + n - 1) / n;
  std::int64_t total = 0;
  for (const auto& lv : ms.levels()) {
    if (lv.load > ceilAvg) total += (lv.load - ceilAvg) * lv.count;
  }
  return total;
}

std::int64_t lemma16Potential(const ds::LoadMultiset& ms) {
  const Metrics mm = computeMetrics(ms);
  return 3 * mm.overloadedBalls - mm.underloadedBins - mm.overloadedBins;
}

}  // namespace rlslb::config
