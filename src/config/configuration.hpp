// Labeled-bin configuration: the paper's vector (l_i)_{i in [n]} with
// sum l_i = m. This is the state of the *labeled* process used by the naive
// engine, the DML adversary and the baselines; the jump engine uses the
// lumped ds::LoadMultiset instead.
#pragma once

#include <cstdint>
#include <vector>

#include "ds/load_multiset.hpp"
#include "util/assert.hpp"

namespace rlslb::config {

class Configuration {
 public:
  Configuration() = default;

  explicit Configuration(std::vector<std::int64_t> loads) : loads_(std::move(loads)) {
    balls_ = 0;
    for (std::int64_t v : loads_) {
      RLSLB_ASSERT_MSG(v >= 0, "negative load");
      balls_ += v;
    }
  }

  [[nodiscard]] std::int64_t numBins() const { return static_cast<std::int64_t>(loads_.size()); }
  [[nodiscard]] std::int64_t numBalls() const { return balls_; }
  /// Average load, the paper's "avg" symbol; not necessarily an integer.
  [[nodiscard]] double averageLoad() const {
    return static_cast<double>(balls_) / static_cast<double>(numBins());
  }
  [[nodiscard]] std::int64_t floorAverage() const { return balls_ / numBins(); }
  [[nodiscard]] std::int64_t ceilAverage() const {
    return (balls_ + numBins() - 1) / numBins();
  }

  [[nodiscard]] std::int64_t load(std::size_t bin) const { return loads_[bin]; }
  [[nodiscard]] const std::vector<std::int64_t>& loads() const { return loads_; }

  /// Move one ball from `src` to `dst` (no protocol check; engines validate).
  void moveBall(std::size_t src, std::size_t dst) {
    RLSLB_ASSERT(loads_[src] >= 1);
    --loads_[src];
    ++loads_[dst];
  }

  [[nodiscard]] ds::LoadMultiset toMultiset() const { return ds::LoadMultiset::fromLoads(loads_); }

 private:
  std::vector<std::int64_t> loads_;
  std::int64_t balls_ = 0;
};

}  // namespace rlslb::config
