#include "config/generators.hpp"

#include <algorithm>
#include <cmath>

#include "rng/distributions.hpp"
#include "util/assert.hpp"

namespace rlslb::config {

Configuration allInOne(std::int64_t n, std::int64_t m) {
  RLSLB_ASSERT(n >= 1 && m >= 0);
  std::vector<std::int64_t> loads(static_cast<std::size_t>(n), 0);
  loads[0] = m;
  return Configuration(std::move(loads));
}

Configuration balanced(std::int64_t n, std::int64_t m) {
  RLSLB_ASSERT(n >= 1 && m >= 0);
  const std::int64_t floorAvg = m / n;
  const std::int64_t extra = m - floorAvg * n;
  std::vector<std::int64_t> loads(static_cast<std::size_t>(n), floorAvg);
  for (std::int64_t i = 0; i < extra; ++i) ++loads[static_cast<std::size_t>(i)];
  return Configuration(std::move(loads));
}

Configuration twoPoint(std::int64_t n, std::int64_t m) {
  RLSLB_ASSERT(n >= 2);
  RLSLB_ASSERT_MSG(m % n == 0, "twoPoint requires n | m");
  const std::int64_t avg = m / n;
  RLSLB_ASSERT_MSG(avg >= 1, "twoPoint requires avg >= 1");
  std::vector<std::int64_t> loads(static_cast<std::size_t>(n), avg);
  loads[0] = avg + 1;
  loads[1] = avg - 1;
  return Configuration(std::move(loads));
}

Configuration halfHalf(std::int64_t n, std::int64_t m, std::int64_t x) {
  RLSLB_ASSERT(n >= 2 && n % 2 == 0);
  RLSLB_ASSERT_MSG(m % n == 0, "halfHalf requires n | m");
  const std::int64_t avg = m / n;
  RLSLB_ASSERT_MSG(x >= 0 && x <= avg, "halfHalf requires 0 <= x <= avg");
  std::vector<std::int64_t> loads(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n / 2; ++i) loads[static_cast<std::size_t>(i)] = avg + x;
  for (std::int64_t i = n / 2; i < n; ++i) loads[static_cast<std::size_t>(i)] = avg - x;
  return Configuration(std::move(loads));
}

Configuration plusMinusOne(std::int64_t n, std::int64_t m, std::int64_t a) {
  RLSLB_ASSERT(n >= 2);
  RLSLB_ASSERT_MSG(m % n == 0, "plusMinusOne requires n | m");
  RLSLB_ASSERT(a >= 0 && 2 * a <= n);
  const std::int64_t avg = m / n;
  RLSLB_ASSERT_MSG(avg >= 1 || a == 0, "plusMinusOne requires avg >= 1");
  std::vector<std::int64_t> loads(static_cast<std::size_t>(n), avg);
  for (std::int64_t i = 0; i < a; ++i) {
    ++loads[static_cast<std::size_t>(i)];
    --loads[static_cast<std::size_t>(n - 1 - i)];
  }
  return Configuration(std::move(loads));
}

Configuration uniformRandom(std::int64_t n, std::int64_t m, rng::Xoshiro256pp& eng) {
  RLSLB_ASSERT(n >= 1 && m >= 0);
  std::vector<std::int64_t> loads(static_cast<std::size_t>(n), 0);
  rng::multinomialUniform(eng, m, loads);
  return Configuration(std::move(loads));
}

Configuration greedyD(std::int64_t n, std::int64_t m, int d, rng::Xoshiro256pp& eng) {
  RLSLB_ASSERT(n >= 1 && m >= 0 && d >= 1);
  std::vector<std::int64_t> loads(static_cast<std::size_t>(n), 0);
  for (std::int64_t b = 0; b < m; ++b) {
    std::size_t best = static_cast<std::size_t>(rng::uniformIndex(eng, static_cast<std::uint64_t>(n)));
    for (int k = 1; k < d; ++k) {
      const auto cand =
          static_cast<std::size_t>(rng::uniformIndex(eng, static_cast<std::uint64_t>(n)));
      if (loads[cand] < loads[best]) best = cand;
    }
    ++loads[best];
  }
  return Configuration(std::move(loads));
}

Configuration powerLaw(std::int64_t n, std::int64_t m, double alpha) {
  RLSLB_ASSERT(n >= 1 && m >= 0 && alpha >= 0.0);
  std::vector<double> weight(static_cast<std::size_t>(n));
  double total = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    weight[static_cast<std::size_t>(i)] = std::pow(static_cast<double>(i + 1), -alpha);
    total += weight[static_cast<std::size_t>(i)];
  }
  std::vector<std::int64_t> loads(static_cast<std::size_t>(n), 0);
  std::int64_t assigned = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const auto share = static_cast<std::int64_t>(
        std::floor(static_cast<double>(m) * weight[static_cast<std::size_t>(i)] / total));
    loads[static_cast<std::size_t>(i)] = share;
    assigned += share;
  }
  // Spread the rounding residue round-robin so the total is exactly m.
  std::int64_t residue = m - assigned;
  for (std::int64_t i = 0; residue > 0; i = (i + 1) % n, --residue) {
    ++loads[static_cast<std::size_t>(i)];
  }
  return Configuration(std::move(loads));
}

Configuration staircase(std::int64_t n, std::int64_t m) {
  RLSLB_ASSERT(n >= 1 && m >= 0);
  // Loads proportional to 0..n-1, then fix the residue on the last bin.
  const std::int64_t rampTotal = n * (n - 1) / 2;
  std::vector<std::int64_t> loads(static_cast<std::size_t>(n), 0);
  std::int64_t assigned = 0;
  if (rampTotal > 0) {
    for (std::int64_t i = 0; i < n; ++i) {
      const std::int64_t v = m * i / rampTotal / 2;  // about half the mass on the ramp
      loads[static_cast<std::size_t>(i)] = v;
      assigned += v;
    }
  }
  loads[static_cast<std::size_t>(n - 1)] += m - assigned;
  return Configuration(std::move(loads));
}

}  // namespace rlslb::config
