// Balance metrics from Section 3 of the paper, computed exactly with integer
// arithmetic (no floating-point average) so that threshold predicates such as
// "perfectly balanced" (disc < 1) are decided without rounding error.
#pragma once

#include <cstdint>
#include <vector>

#include "config/configuration.hpp"
#include "ds/load_multiset.hpp"

namespace rlslb::config {

struct Metrics {
  std::int64_t minLoad = 0;
  std::int64_t maxLoad = 0;
  double discrepancy = 0.0;       // max_i |l_i - m/n|
  std::int64_t overloadedBalls = 0;  // sum_i max(0, l_i - ceil(m/n)); == #holes for n | m
  std::int64_t overloadedBins = 0;   // # bins with load > ceil(m/n) - (n|m ? 0 : 1)... see docs
  std::int64_t underloadedBins = 0;
  std::int64_t binsAtFloor = 0;      // # bins with load == floor(m/n)
  bool perfectlyBalanced = false;    // disc < 1
};

/// disc(l) as an exact predicate: is max_i |l_i - m/n| <= x for integer x?
/// Uses n*max - m <= x*n and m - n*min <= x*n, all in 64-bit integers.
bool isXBalancedInt(std::int64_t minLoad, std::int64_t maxLoad, std::int64_t n, std::int64_t m,
                    std::int64_t x);

/// Perfect balance: disc < 1, i.e. n*max - m < n and m - n*min < n.
bool isPerfectlyBalanced(std::int64_t minLoad, std::int64_t maxLoad, std::int64_t n,
                         std::int64_t m);

/// Exact discrepancy as a double (for reporting; predicates above for logic).
double discrepancy(std::int64_t minLoad, std::int64_t maxLoad, std::int64_t n, std::int64_t m);

/// Full metric sweep, O(n).
Metrics computeMetrics(const Configuration& c);

/// Same, directly from a load vector (no Configuration copy).
Metrics computeMetrics(const std::vector<std::int64_t>& loads);

/// Same metrics from the lumped multiset, O(#levels).
Metrics computeMetrics(const ds::LoadMultiset& ms);

/// The paper's "number of overloaded balls" sum_i max(0, l_i - avg) for the
/// n | m case (Lemma 15); generalized with ceil(m/n) otherwise.
std::int64_t overloadedBalls(const ds::LoadMultiset& ms);

/// Lemma 16 potential 3A - k - h, where A = overloaded balls, h = #bins with
/// load > avg, k = #bins with load < avg (n | m assumed by that lemma; we use
/// ceil/floor generalization consistently with overloadedBalls()).
std::int64_t lemma16Potential(const ds::LoadMultiset& ms);

}  // namespace rlslb::config
