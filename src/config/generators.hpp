// Initial-configuration generators for the experiments.
//
// Each generator corresponds to a workload used somewhere in the paper's
// analysis or in the experiment suite (see docs/EXPERIMENTS.md):
//  - allInOne:       the Theorem-1 worst case / Omega(ln n) lower bound start
//  - twoPoint:       the Omega(n^2/m) lower bound configuration
//  - halfHalf:       the reshaped configuration of Lemma 13 / Figure 3
//  - uniformRandom:  one-choice placement (balls thrown u.a.r.), Section 2
//  - balanced / plusMinusOne: Phase-3 starts
//  - powerLaw, staircase: skewed starts for robustness experiments
#pragma once

#include <cstdint>

#include "config/configuration.hpp"
#include "rng/xoshiro256pp.hpp"

namespace rlslb::config {

/// All m balls in bin 0.
Configuration allInOne(std::int64_t n, std::int64_t m);

/// As balanced as integrally possible: m mod n bins get ceil(m/n).
Configuration balanced(std::int64_t n, std::int64_t m);

/// Requires n | m and m/n >= 1: bin 0 has avg+1, bin 1 has avg-1, rest avg.
/// Time to perfect balance is exactly Exp((avg+1)/n) (see docs/EXPERIMENTS.md).
Configuration twoPoint(std::int64_t n, std::int64_t m);

/// Requires n even: n/2 bins at avg+x, n/2 at avg-x (avg = m/n integral,
/// avg >= x). The Figure-3 shape used throughout Phase 1's analysis.
Configuration halfHalf(std::int64_t n, std::int64_t m, std::int64_t x);

/// Exactly `a` bins at avg+1 and `a` bins at avg-1 (n | m); a 1-balanced
/// Phase-3 start with a prescribed number of overloaded bins.
Configuration plusMinusOne(std::int64_t n, std::int64_t m, std::int64_t a);

/// m balls thrown independently and uniformly (one-choice placement).
Configuration uniformRandom(std::int64_t n, std::int64_t m, rng::Xoshiro256pp& eng);

/// Balls placed greedily into the lesser-loaded of d uniform candidate bins
/// (Greedy[d] / power of d choices, Mitzenmacher [17]). d >= 1; d == 1
/// degenerates to uniformRandom.
Configuration greedyD(std::int64_t n, std::int64_t m, int d, rng::Xoshiro256pp& eng);

/// Zipf-like skew: bin i receives mass proportional to (i+1)^(-alpha),
/// then residual balls are spread round-robin to conserve m exactly.
Configuration powerLaw(std::int64_t n, std::int64_t m, double alpha);

/// Loads 0, 1, 2, ... cyclically scaled so they sum to m: a many-level start
/// exercising wide level windows.
Configuration staircase(std::int64_t n, std::int64_t m);

}  // namespace rlslb::config
