// Lightweight assertion macros used across the library.
//
// RLSLB_ASSERT is active in every build type: the simulators are the
// ground truth for the experiments, so internal invariant violations must
// never be silently ignored. Use RLSLB_HEAVY_ASSERT for checks whose cost
// would change the asymptotics of the enclosing operation (full-state
// rescans); those compile away unless RLSLB_HEAVY_CHECKS is defined.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace rlslb {

[[noreturn]] inline void assertFail(const char* expr, const char* file, int line,
                                    const char* msg) {
  std::fprintf(stderr, "rlslb assertion failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg == nullptr ? "" : msg);
  std::abort();
}

}  // namespace rlslb

#define RLSLB_ASSERT(expr)                                        \
  do {                                                            \
    if (!(expr)) ::rlslb::assertFail(#expr, __FILE__, __LINE__, nullptr); \
  } while (false)

#define RLSLB_ASSERT_MSG(expr, msg)                               \
  do {                                                            \
    if (!(expr)) ::rlslb::assertFail(#expr, __FILE__, __LINE__, msg); \
  } while (false)

#ifdef RLSLB_HEAVY_CHECKS
#define RLSLB_HEAVY_ASSERT(expr) RLSLB_ASSERT(expr)
#else
#define RLSLB_HEAVY_ASSERT(expr) \
  do {                           \
  } while (false)
#endif
