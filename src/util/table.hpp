// Column-aligned table builder used by every benchmark harness to print the
// paper-style result rows, with optional CSV export alongside.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rlslb {

/// A table with named columns; cells are strings, with typed add helpers.
/// Rendering aligns every column and supports plain / markdown / CSV output;
/// the JSON bridge is report::tableToJson (report/result_sink.hpp), kept
/// out of util/ so this layer stays dependency-free.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Start a new row; subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(const std::string& v);
  Table& cell(const char* v);
  Table& cell(double v, int sig = 4);
  Table& cell(std::int64_t v);
  Table& cell(int v);
  Table& cell(std::size_t v);

  [[nodiscard]] std::size_t numRows() const { return rows_.size(); }
  [[nodiscard]] std::size_t numCols() const { return headers_.size(); }
  [[nodiscard]] const std::string& header(std::size_t c) const { return headers_.at(c); }
  [[nodiscard]] const std::string& at(std::size_t r, std::size_t c) const;

  /// Render with space padding and a header underline.
  [[nodiscard]] std::string toString() const;
  /// Render as a GitHub-flavored markdown table.
  [[nodiscard]] std::string toMarkdown() const;
  /// Render as CSV (RFC-4180 quoting for cells containing commas/quotes).
  [[nodiscard]] std::string toCsv() const;

  /// Print toString() to the stream, prefixed by an optional title line.
  void print(std::ostream& os, const std::string& title = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  [[nodiscard]] std::vector<std::size_t> columnWidths() const;
};

}  // namespace rlslb
