// Small string-formatting helpers shared by the table printer and harnesses.
#pragma once

#include <cstdint>
#include <string>

namespace rlslb {

/// Format a double with `sig` significant digits, trimming trailing zeros
/// ("3.1400" -> "3.14", "12000" stays "12000"). Uses fixed or scientific
/// notation depending on magnitude, like %g but with stable width behaviour.
std::string formatSig(double value, int sig = 4);

/// Fixed-point with `prec` digits after the decimal point.
std::string formatFixed(double value, int prec = 3);

/// Group thousands: 1234567 -> "1,234,567".
std::string formatCount(std::int64_t value);

/// "1.23k", "4.5M", "6.7G" style magnitudes for axis-like labels.
std::string formatHuman(double value);

/// Confidence-interval cell: "[lo,hi]" with `sig` significant digits each.
std::string formatCi(double lo, double hi, int sig = 3);

/// Left/right pad `s` with spaces to width `w` (no truncation).
std::string padLeft(const std::string& s, std::size_t w);
std::string padRight(const std::string& s, std::size_t w);

}  // namespace rlslb
