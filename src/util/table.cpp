#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"
#include "util/format.hpp"

namespace rlslb {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  RLSLB_ASSERT(!headers_.empty());
}

Table& Table::row() {
  if (!rows_.empty()) {
    RLSLB_ASSERT_MSG(rows_.back().size() == headers_.size(),
                     "previous row incomplete when starting a new row");
  }
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(const std::string& v) {
  RLSLB_ASSERT_MSG(!rows_.empty(), "call row() before cell()");
  RLSLB_ASSERT_MSG(rows_.back().size() < headers_.size(), "row has too many cells");
  rows_.back().push_back(v);
  return *this;
}

Table& Table::cell(const char* v) { return cell(std::string(v)); }
Table& Table::cell(double v, int sig) { return cell(formatSig(v, sig)); }
Table& Table::cell(std::int64_t v) { return cell(formatCount(v)); }
Table& Table::cell(int v) { return cell(static_cast<std::int64_t>(v)); }
Table& Table::cell(std::size_t v) { return cell(static_cast<std::int64_t>(v)); }

const std::string& Table::at(std::size_t r, std::size_t c) const {
  RLSLB_ASSERT(r < rows_.size() && c < rows_[r].size());
  return rows_[r][c];
}

std::vector<std::size_t> Table::columnWidths() const {
  std::vector<std::size_t> w(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) w[c] = headers_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) w[c] = std::max(w[c], r[c].size());
  }
  return w;
}

std::string Table::toString() const {
  const auto w = columnWidths();
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) os << "  ";
    os << padRight(headers_[c], w[c]);
  }
  os << '\n';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) os << "  ";
    os << std::string(w[c], '-');
  }
  os << '\n';
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c != 0) os << "  ";
      os << padLeft(r[c], w[c]);
    }
    os << '\n';
  }
  return os.str();
}

std::string Table::toMarkdown() const {
  const auto w = columnWidths();
  std::ostringstream os;
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) os << ' ' << padRight(headers_[c], w[c]) << " |";
  os << "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) os << ' ' << std::string(w[c], '-') << " |";
  os << '\n';
  for (const auto& r : rows_) {
    os << "|";
    for (std::size_t c = 0; c < r.size(); ++c) os << ' ' << padLeft(r[c], w[c]) << " |";
    os << '\n';
  }
  return os.str();
}

namespace {
std::string csvEscape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out.push_back(ch);
  }
  out.push_back('"');
  return out;
}
}  // namespace

std::string Table::toCsv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) os << ',';
    os << csvEscape(headers_[c]);
  }
  os << '\n';
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c != 0) os << ',';
      os << csvEscape(r[c]);
    }
    os << '\n';
  }
  return os.str();
}

void Table::print(std::ostream& os, const std::string& title) const {
  if (!title.empty()) os << title << '\n';
  os << toString();
}

}  // namespace rlslb
