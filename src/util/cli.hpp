// Minimal --key=value command-line parser for the benchmark harnesses and
// examples. No positional arguments; unknown keys are reported so a typo in
// a sweep script fails loudly instead of silently running the default.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rlslb {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  /// True if --name or --name=... was passed.
  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string getString(const std::string& name, const std::string& dflt) const;
  [[nodiscard]] std::int64_t getInt(const std::string& name, std::int64_t dflt) const;
  [[nodiscard]] double getDouble(const std::string& name, double dflt) const;
  [[nodiscard]] bool getBool(const std::string& name, bool dflt) const;

  /// The standard --threads knob consumed by runner::ThreadPool: 0 means
  /// "hardware concurrency", 1 forces the serial path, negative aborts.
  [[nodiscard]] int getThreads(int dflt = 0) const;

  /// Keys that were parsed but never queried; harnesses call this last and
  /// abort on typos.
  [[nodiscard]] std::vector<std::string> unusedKeys() const;

  [[nodiscard]] const std::string& programName() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> used_;
};

}  // namespace rlslb
