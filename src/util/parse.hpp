// Typed parsing of `key=value` parameter strings, shared by the scenario
// param layer (scenario/params.hpp) and the process param layer
// (process/params.hpp). All three parsers fail loudly (RLSLB_ASSERT) on
// malformed input -- a typo'd override must abort the run, never silently
// fall back to a default.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rlslb::util {

/// Plain decimal ("123") or exact-integral scientific shorthand ("1e6",
/// "2.5e3"). Aborts on non-integral or out-of-range values; `what` names
/// the offending parameter in the diagnostic.
std::int64_t parseInt64(const std::string& text, const std::string& what);

double parseDouble(const std::string& text, const std::string& what);

/// true/1/yes/on and false/0/no/off.
bool parseBool(const std::string& text, const std::string& what);

/// Split a comma-separated list, dropping empty tokens ("a,,b" -> {a, b}).
/// The one parser behind every `process=a,b,c`-style CLI value.
std::vector<std::string> splitCsv(const std::string& csv);

}  // namespace rlslb::util
