#include "util/cli.hpp"

#include <cstdlib>
#include <stdexcept>

#include "util/assert.hpp"

namespace rlslb {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    RLSLB_ASSERT_MSG(arg.rfind("--", 0) == 0, "arguments must be --key or --key=value");
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return false;
  used_[name] = true;
  return true;
}

std::string CliArgs::getString(const std::string& name, const std::string& dflt) const {
  auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  used_[name] = true;
  return it->second;
}

std::int64_t CliArgs::getInt(const std::string& name, std::int64_t dflt) const {
  auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  used_[name] = true;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  RLSLB_ASSERT_MSG(end != nullptr && *end == '\0', "malformed integer CLI value");
  return v;
}

double CliArgs::getDouble(const std::string& name, double dflt) const {
  auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  used_[name] = true;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  RLSLB_ASSERT_MSG(end != nullptr && *end == '\0', "malformed double CLI value");
  return v;
}

bool CliArgs::getBool(const std::string& name, bool dflt) const {
  auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  used_[name] = true;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  RLSLB_ASSERT_MSG(false, "malformed boolean CLI value");
  return dflt;
}

int CliArgs::getThreads(int dflt) const {
  const std::int64_t v = getInt("threads", dflt);
  RLSLB_ASSERT_MSG(v >= 0 && v <= 4096, "--threads must be in [0, 4096] (0 = hardware)");
  return static_cast<int>(v);
}

std::vector<std::string> CliArgs::unusedKeys() const {
  std::vector<std::string> out;
  for (const auto& [k, _] : values_) {
    auto it = used_.find(k);
    if (it == used_.end() || !it->second) out.push_back(k);
  }
  return out;
}

}  // namespace rlslb
