#include "util/format.hpp"

#include <cmath>
#include <cstdio>

namespace rlslb {

std::string formatSig(double value, int sig) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[64];
  const double a = std::fabs(value);
  // %g flips to scientific once the exponent reaches `sig`; keep moderate
  // magnitudes in plain decimal so tables stay readable.
  if (a != 0.0 && (a >= 1e15 || a < 1e-4)) {
    std::snprintf(buf, sizeof(buf), "%.*g", sig, value);
    return buf;
  }
  // Digits before the decimal point; <= 0 for values below 1 so that small
  // values keep their full significant precision (0.25 at sig=2 -> "0.25").
  const int intDigits = a == 0.0 ? 1 : static_cast<int>(std::floor(std::log10(a))) + 1;
  const int decimals = sig > intDigits ? sig - intDigits : 0;
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  std::string s = buf;
  if (s.find('.') != std::string::npos) {
    while (s.back() == '0') s.pop_back();
    if (s.back() == '.') s.pop_back();
  }
  return s;
}

std::string formatFixed(double value, int prec) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, value);
  return buf;
}

std::string formatCount(std::int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  std::string digits = buf;
  bool negative = !digits.empty() && digits[0] == '-';
  std::size_t begin = negative ? 1 : 0;
  std::string out;
  std::size_t len = digits.size() - begin;
  for (std::size_t i = 0; i < len; ++i) {
    if (i != 0 && (len - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[begin + i]);
  }
  return negative ? "-" + out : out;
}

std::string formatHuman(double value) {
  const double a = std::fabs(value);
  if (a >= 1e9) return formatSig(value / 1e9, 3) + "G";
  if (a >= 1e6) return formatSig(value / 1e6, 3) + "M";
  if (a >= 1e3) return formatSig(value / 1e3, 3) + "k";
  return formatSig(value, 3);
}

std::string formatCi(double lo, double hi, int sig) {
  std::string out;
  out.reserve(24);
  out.push_back('[');
  out.append(formatSig(lo, sig));
  out.push_back(',');
  out.append(formatSig(hi, sig));
  out.push_back(']');
  return out;
}

std::string padLeft(const std::string& s, std::size_t w) {
  if (s.size() >= w) return s;
  return std::string(w - s.size(), ' ') + s;
}

std::string padRight(const std::string& s, std::size_t w) {
  if (s.size() >= w) return s;
  return s + std::string(w - s.size(), ' ');
}

}  // namespace rlslb
