#include "util/parse.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/assert.hpp"

namespace rlslb::util {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& text, const char* why) {
  std::fprintf(stderr, "parameter %s=%s: %s\n", what.c_str(), text.c_str(), why);
  RLSLB_ASSERT_MSG(false, "malformed parameter value");
  std::abort();  // unreachable; RLSLB_ASSERT aborts
}

}  // namespace

std::int64_t parseInt64(const std::string& text, const std::string& what) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end != nullptr && *end == '\0' && !text.empty()) {
    if (errno == ERANGE) fail(what, text, "out of int64 range");
    return v;
  }
  // Scientific shorthand ("1e6", "2.5e3"): accept iff exactly integral and
  // representable.
  end = nullptr;
  const double d = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || text.empty()) fail(what, text, "not an integer");
  if (std::nearbyint(d) != d || std::fabs(d) >= 9.2e18) {
    fail(what, text, "not an exact integer");
  }
  return static_cast<std::int64_t>(d);
}

double parseDouble(const std::string& text, const std::string& what) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || text.empty()) fail(what, text, "not a number");
  return v;
}

std::vector<std::string> splitCsv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string token =
        csv.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!token.empty()) out.push_back(token);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

bool parseBool(const std::string& text, const std::string& what) {
  if (text == "true" || text == "1" || text == "yes" || text == "on") return true;
  if (text == "false" || text == "0" || text == "no" || text == "off") return false;
  fail(what, text, "not a boolean (true/1/yes/on or false/0/no/off)");
}

}  // namespace rlslb::util
