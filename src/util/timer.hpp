// Monotonic wall-clock timer for benchmark harnesses. Wraps steady_clock
// (never jumps backwards under NTP adjustments), so measured wall times are
// safe to difference; it measures real elapsed time, not CPU time.
#pragma once

#include <chrono>

namespace rlslb {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restart the timer.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rlslb
