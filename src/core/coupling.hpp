// Executable version of the Lemma 2 coupling.
//
// The proof couples process P(k) (configuration l) with P(k+1)
// (configuration l', constructed from l by one destructive move): both
// processes activate the same ball and choose the same destination *rank*,
// and the proof's case analysis shows that after the coupled step l' is
// again "close to" l (equal, or one destructive move apart) and that
// disc(l) <= disc(l') throughout.
//
// This harness executes exactly that coupling -- same ball, same destination
// rank, canonical sorted representations, canonical witness (first/last
// differing sorted position, matching the proof's iL-min / iR-max choice) --
// and exposes the closeness and discrepancy-dominance predicates so the test
// suite can verify the lemma's invariant on millions of random steps. Any
// divergence between the paper's case analysis and this implementation
// would surface as a closeness violation.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "config/configuration.hpp"
#include "rng/xoshiro256pp.hpp"

namespace rlslb::core {

class DmlCoupling {
 public:
  /// Both processes start at `initial` (sorted internally).
  DmlCoupling(const config::Configuration& initial, std::uint64_t seed);

  /// Apply one destructive move to the adversarial copy l': move a ball
  /// from sorted position `fromIdx` to position `toIdx` with
  /// load(fromIdx) <= load(toIdx) + 1. Only valid while the processes are
  /// equal (the lemma composes closeness one injected move at a time).
  /// Returns false (and does nothing) if the requested move is not
  /// destructive or the source is empty.
  bool injectDestructiveMove(std::size_t fromIdx, std::size_t toIdx);

  /// Inject a uniformly random destructive move; returns false if none
  /// exists (all bins empty -- impossible for m >= 1, n >= 2).
  bool injectRandomDestructiveMove();

  /// One coupled activation (same ball, same destination rank in both).
  void stepCoupled();

  /// Lemma 2 invariant: l' equals l, or differs in exactly two sorted
  /// positions a < b with l'_a = l_a + 1 and l'_b = l_b - 1.
  [[nodiscard]] bool isClose() const;

  /// Observation (ii) of the proof: disc(l) <= disc(l').
  [[nodiscard]] bool discDominated() const;

  [[nodiscard]] const std::vector<std::int64_t>& base() const { return base_; }
  [[nodiscard]] const std::vector<std::int64_t>& adversarial() const { return adv_; }
  [[nodiscard]] bool equal() const { return base_ == adv_; }

 private:
  std::vector<std::int64_t> base_;  // l,  sorted descending
  std::vector<std::int64_t> adv_;   // l', sorted descending
  std::int64_t balls_;
  rng::Xoshiro256pp eng_;

  struct Witness {
    std::size_t a;  // sorted index where l' has one MORE ball (proof's iL)
    std::size_t b;  // sorted index where l' has one LESS ball (proof's iR)
  };
  [[nodiscard]] std::optional<Witness> witness() const;
};

}  // namespace rlslb::core
