#include "core/predictors.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace rlslb::core {

double harmonicNumber(std::int64_t k) {
  if (k <= 0) return 0.0;
  if (k < 1000) {
    double h = 0.0;
    for (std::int64_t i = 1; i <= k; ++i) h += 1.0 / static_cast<double>(i);
    return h;
  }
  const double kd = static_cast<double>(k);
  constexpr double kEulerMascheroni = 0.5772156649015329;
  return std::log(kd) + kEulerMascheroni + 1.0 / (2.0 * kd) - 1.0 / (12.0 * kd * kd);
}

double theorem1Scale(std::int64_t n, std::int64_t m) {
  RLSLB_ASSERT(n >= 2 && m >= 1);
  return std::log(static_cast<double>(n)) +
         static_cast<double>(n) * static_cast<double>(n) / static_cast<double>(m);
}

double whpBudget(std::int64_t n, std::int64_t m) {
  RLSLB_ASSERT(n >= 2 && m >= 1);
  return std::log(static_cast<double>(n)) *
         (1.0 + static_cast<double>(n) * static_cast<double>(n) / static_cast<double>(m));
}

double lowerBoundAllInOne(std::int64_t n, std::int64_t m) {
  RLSLB_ASSERT(n >= 2 && m >= 1);
  return harmonicNumber(m) - harmonicNumber((m + n - 1) / n);
}

double twoPointExactTime(std::int64_t n, std::int64_t m) {
  RLSLB_ASSERT(n >= 2 && m % n == 0 && m / n >= 1);
  return static_cast<double>(n) / static_cast<double>(m / n + 1);
}

double lemma8Bound(std::int64_t n, std::int64_t m) {
  RLSLB_ASSERT(m >= 1 && m <= n);
  return static_cast<double>(n) * (1.0 - 1.0 / static_cast<double>(m));
}

double lemma13Target(std::int64_t n, std::int64_t x) {
  RLSLB_ASSERT(n >= 2 && x >= 0);
  return 2.0 * std::sqrt(static_cast<double>(x) * std::log(static_cast<double>(n)));
}

double lemma13StepTime(std::int64_t avg, std::int64_t x) {
  RLSLB_ASSERT(0 <= x && x < avg);
  return std::log(static_cast<double>(avg + x)) - std::log(static_cast<double>(avg - x));
}

double endgameScale(std::int64_t n, std::int64_t m) {
  RLSLB_ASSERT(n >= 1 && m >= 1);
  return static_cast<double>(n) * static_cast<double>(n) / static_cast<double>(m);
}

}  // namespace rlslb::core
