// The paper's closed-form quantities as code, so benches and tests share
// one audited implementation instead of scattering formulas.
//
// Everything here is a *prediction* about the RLS process on n bins and m
// balls; the experiment suite prints measured values next to these.
#pragma once

#include <cstdint>

namespace rlslb::core {

/// k-th harmonic number H_k (exact summation below 1000, asymptotic above;
/// absolute error < 1e-12 in the asymptotic branch).
double harmonicNumber(std::int64_t k);

/// Theorem 1 scale: ln(n) + n^2/m. E[T] is Theta of this.
double theorem1Scale(std::int64_t n, std::int64_t m);

/// Theorem 1 w.h.p. budget: ln(n) * (1 + n^2/m).
double whpBudget(std::int64_t n, std::int64_t m);

/// Omega(ln n) lower bound from the all-in-one start: activating the
/// m - avg surplus balls takes expected time >= H_m - H_avg.
double lowerBoundAllInOne(std::int64_t n, std::int64_t m);

/// Exact expected balancing time of the two-point configuration:
/// n / (avg + 1) (requires n | m; see docs/EXPERIMENTS.md for the argument).
double twoPointExactTime(std::int64_t n, std::int64_t m);

/// Lemma 8 explicit upper bound for m <= n from the all-in-one start:
/// sum_{r=2..m} n/(r(r-1)) = n * (1 - 1/m).
double lemma8Bound(std::int64_t n, std::int64_t m);

/// Lemma 13 shrink target: from an x-balanced configuration one step of
/// the doubling argument reaches 2*sqrt(x * ln n).
double lemma13Target(std::int64_t n, std::int64_t x);

/// Lemma 13 step duration: ln((avg+x)/(avg-x)) (requires x < avg).
double lemma13StepTime(std::int64_t avg, std::int64_t x);

/// Phase-2/3 scale n/avg = n^2/m (Lemmas 14-17).
double endgameScale(std::int64_t n, std::int64_t m);

}  // namespace rlslb::core
