// Public facade of the library: one-call construction of an exact RLS
// simulator and convenience wrappers for the common "measure the balancing
// time" workflow. See README.md for a tour; examples/quickstart.cpp is the
// smallest complete program, and docs/ARCHITECTURE.md maps the modules
// behind this header to the paper's concepts.
#pragma once

#include <cstdint>
#include <memory>

#include "config/configuration.hpp"
#include "sim/engine.hpp"

namespace rlslb::core {

struct SimOptions {
  enum class EngineKind {
    Naive,   // simulate every activation (ground truth; exposes activations())
    Jump,    // event-skipping lumped chain (fast endgame; O(L) per move)
    Hybrid,  // naive until few distinct loads, then jump (default)
  };
  EngineKind engine = EngineKind::Hybrid;
  std::uint64_t seed = 1;
  /// Naive engine only: move iff load(src) >= load(dst) + gap. gap = 1 is the
  /// paper's RLS; gap = 2 the strict variant of [12, 11]. The jump engine is
  /// gap-agnostic (identical lumped chain; Section 3 remark).
  int gap = 1;
  /// Hybrid: switch to jump when #distinct loads <= this (0 = default 96).
  std::int64_t levelThreshold = 0;
};

/// Build an engine over a copy of `initial`.
std::unique_ptr<sim::Engine> makeEngine(const config::Configuration& initial,
                                        const SimOptions& options);

/// Run to the target (default: perfect balance) and report.
sim::RunResult balance(const config::Configuration& initial, const SimOptions& options,
                       sim::Target target = sim::Target::perfect(),
                       const sim::RunLimits& limits = {}, sim::Probe* probe = nullptr);

/// Shorthand: the balancing time of one run (asserts the target was reached).
double balancingTime(const config::Configuration& initial, const SimOptions& options,
                     sim::Target target = sim::Target::perfect(),
                     const sim::RunLimits& limits = {});

}  // namespace rlslb::core
