#include "core/coupling.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "rng/distributions.hpp"
#include "util/assert.hpp"

namespace rlslb::core {

namespace {
void sortDesc(std::vector<std::int64_t>& v) { std::sort(v.begin(), v.end(), std::greater<>()); }

double discOf(const std::vector<std::int64_t>& loads, std::int64_t balls) {
  const double avg = static_cast<double>(balls) / static_cast<double>(loads.size());
  // Sorted descending: front is max, back is min.
  return std::max(static_cast<double>(loads.front()) - avg,
                  avg - static_cast<double>(loads.back()));
}
}  // namespace

DmlCoupling::DmlCoupling(const config::Configuration& initial, std::uint64_t seed)
    : base_(initial.loads()), adv_(initial.loads()), balls_(initial.numBalls()), eng_(seed) {
  RLSLB_ASSERT(initial.numBins() >= 2);
  RLSLB_ASSERT(balls_ >= 1);
  sortDesc(base_);
  sortDesc(adv_);
}

std::optional<DmlCoupling::Witness> DmlCoupling::witness() const {
  std::optional<std::size_t> a;
  std::optional<std::size_t> b;
  for (std::size_t i = 0; i < base_.size(); ++i) {
    if (adv_[i] == base_[i]) continue;
    if (adv_[i] == base_[i] + 1 && !a) {
      a = i;
    } else if (adv_[i] == base_[i] - 1 && !b) {
      b = i;
    } else {
      RLSLB_ASSERT_MSG(false, "coupling state not close (witness extraction)");
    }
  }
  if (!a && !b) return std::nullopt;
  RLSLB_ASSERT_MSG(a && b && *a < *b, "coupling state not close (pattern)");
  return Witness{*a, *b};
}

bool DmlCoupling::isClose() const {
  std::size_t plus = 0;
  std::size_t minus = 0;
  std::size_t plusIdx = 0;
  std::size_t minusIdx = 0;
  for (std::size_t i = 0; i < base_.size(); ++i) {
    const std::int64_t d = adv_[i] - base_[i];
    if (d == 0) continue;
    if (d == 1) {
      ++plus;
      plusIdx = i;
    } else if (d == -1) {
      ++minus;
      minusIdx = i;
    } else {
      return false;
    }
  }
  if (plus == 0 && minus == 0) return true;
  return plus == 1 && minus == 1 && plusIdx < minusIdx;
}

bool DmlCoupling::discDominated() const {
  return discOf(base_, balls_) <= discOf(adv_, balls_) + 1e-9;
}

bool DmlCoupling::injectDestructiveMove(std::size_t fromIdx, std::size_t toIdx) {
  RLSLB_ASSERT_MSG(equal(), "inject only while processes coincide");
  RLSLB_ASSERT(fromIdx < adv_.size() && toIdx < adv_.size());
  if (fromIdx == toIdx) return false;
  if (adv_[fromIdx] < 1) return false;
  if (adv_[fromIdx] > adv_[toIdx] + 1) return false;  // not destructive
  --adv_[fromIdx];
  ++adv_[toIdx];
  sortDesc(adv_);
  return true;
}

bool DmlCoupling::injectRandomDestructiveMove() {
  RLSLB_ASSERT_MSG(equal(), "inject only while processes coincide");
  const auto n = static_cast<std::uint64_t>(adv_.size());
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto i = static_cast<std::size_t>(rng::uniformIndex(eng_, n));
    const auto j = static_cast<std::size_t>(rng::uniformIndex(eng_, n));
    if (i == j) continue;
    if (adv_[i] >= 1 && adv_[i] <= adv_[j] + 1) return injectDestructiveMove(i, j);
  }
  // Deterministic fallback (sorted descending): second bin -> first bin is
  // destructive whenever the second bin is non-empty.
  if (adv_.size() >= 2 && adv_[1] >= 1) return injectDestructiveMove(1, 0);
  // Single non-empty bin: only m == 1 admits a destructive move (1 <= 0+1).
  if (adv_[0] == 1) return injectDestructiveMove(0, 1);
  return false;
}

void DmlCoupling::stepCoupled() {
  const auto wit = witness();
  const std::size_t n = base_.size();

  // Activate a uniform ball of P: source rank iS with prob load/m.
  std::int64_t ticket =
      static_cast<std::int64_t>(rng::uniformIndex(eng_, static_cast<std::uint64_t>(balls_)));
  std::size_t iS = n - 1;
  for (std::size_t i = 0; i < n; ++i) {
    if (ticket < base_[i]) {
      iS = i;
      break;
    }
    ticket -= base_[i];
  }

  // Is the activated ball the special ball m (the one bin-differing ball)?
  bool special = false;
  if (wit && iS == wit->b) {
    special = rng::uniformIndex(eng_, static_cast<std::uint64_t>(base_[wit->b])) == 0;
  }

  // Same destination rank in both processes.
  const auto iD = static_cast<std::size_t>(rng::uniformIndex(eng_, static_cast<std::uint64_t>(n)));

  // Evaluate both moves against the *pre-step* configurations.
  const bool moveBase = iS != iD && base_[iS] >= base_[iD] + 1;
  const std::size_t srcAdv = special ? wit->a : iS;
  const bool moveAdv = srcAdv != iD && adv_[srcAdv] >= adv_[iD] + 1;

  if (moveBase) {
    --base_[iS];
    ++base_[iD];
    sortDesc(base_);
  }
  if (moveAdv) {
    --adv_[srcAdv];
    ++adv_[iD];
    sortDesc(adv_);
  }
}

}  // namespace rlslb::core
