#include "core/rls.hpp"

#include "sim/hybrid_engine.hpp"
#include "sim/jump_engine.hpp"
#include "sim/naive_engine.hpp"
#include "util/assert.hpp"

namespace rlslb::core {

std::unique_ptr<sim::Engine> makeEngine(const config::Configuration& initial,
                                        const SimOptions& options) {
  switch (options.engine) {
    case SimOptions::EngineKind::Naive:
      return std::make_unique<sim::NaiveEngine>(initial, options.seed, options.gap);
    case SimOptions::EngineKind::Jump:
      return std::make_unique<sim::JumpEngine>(initial, options.seed);
    case SimOptions::EngineKind::Hybrid:
      return std::make_unique<sim::HybridEngine>(initial, options.seed, options.levelThreshold);
  }
  RLSLB_ASSERT_MSG(false, "unknown engine kind");
  return nullptr;
}

sim::RunResult balance(const config::Configuration& initial, const SimOptions& options,
                       sim::Target target, const sim::RunLimits& limits, sim::Probe* probe) {
  // Thin wrapper over the unified process API: sim::runUntil delegates to
  // process::run, the one loop every balancing dynamic shares.
  auto engine = makeEngine(initial, options);
  return sim::runUntil(*engine, target, limits, probe);
}

double balancingTime(const config::Configuration& initial, const SimOptions& options,
                     sim::Target target, const sim::RunLimits& limits) {
  const sim::RunResult r = balance(initial, options, target, limits);
  RLSLB_ASSERT_MSG(r.reachedTarget, "run hit a limit before reaching the balance target");
  return r.time;
}

}  // namespace rlslb::core
