#include "core/dml.hpp"

#include "rng/distributions.hpp"
#include "rng/splitmix64.hpp"
#include "util/assert.hpp"

namespace rlslb::core {

ReverseLastMoveAdversary::ReverseLastMoveAdversary(double probability)
    : probability_(probability) {
  RLSLB_ASSERT(probability >= 0.0 && probability <= 1.0);
}

void ReverseLastMoveAdversary::afterEvent(sim::NaiveEngine& engine, rng::Xoshiro256pp& eng) {
  const auto& last = engine.lastEvent();
  if (!last.moved) return;
  if (!rng::bernoulli(eng, probability_)) return;
  // Reversing a just-performed valid move is destructive:
  // pre-move load(src) >= load(dst) + 1 implies post-move
  // load(dst) <= load(src) + 1.
  engine.applyForcedMove(last.dst, last.src);
}

RandomPairAdversary::RandomPairAdversary(int attempts) : attempts_(attempts) {
  RLSLB_ASSERT(attempts >= 1);
}

void RandomPairAdversary::afterEvent(sim::NaiveEngine& engine, rng::Xoshiro256pp& eng) {
  const auto& loads = engine.loads();
  const auto n = static_cast<std::uint64_t>(loads.size());
  for (int k = 0; k < attempts_; ++k) {
    const auto a = static_cast<std::size_t>(rng::uniformIndex(eng, n));
    const auto b = static_cast<std::size_t>(rng::uniformIndex(eng, n));
    if (a == b) continue;
    // Move from the lower-loaded bin: load(src) <= load(dst) <= load(dst)+1,
    // destructive by definition.
    const std::size_t src = loads[a] <= loads[b] ? a : b;
    const std::size_t dst = src == a ? b : a;
    if (loads[src] == 0) continue;
    engine.applyForcedMove(src, dst);
  }
}

MinToMaxAdversary::MinToMaxAdversary(double probability) : probability_(probability) {
  RLSLB_ASSERT(probability >= 0.0 && probability <= 1.0);
}

void MinToMaxAdversary::afterEvent(sim::NaiveEngine& engine, rng::Xoshiro256pp& eng) {
  if (!rng::bernoulli(eng, probability_)) return;
  const auto& loads = engine.loads();
  std::size_t lo = 0;
  std::size_t hi = 0;
  for (std::size_t i = 1; i < loads.size(); ++i) {
    if (loads[i] < loads[lo]) lo = i;
    if (loads[i] > loads[hi]) hi = i;
  }
  if (lo == hi || loads[lo] == 0) return;
  engine.applyForcedMove(lo, hi);
}

sim::RunResult runWithAdversary(const config::Configuration& initial, std::uint64_t seed,
                                DestructiveAdversary& adversary, sim::Target target,
                                const sim::RunLimits& limits, sim::Probe* probe, int gap) {
  sim::NaiveEngine engine(initial, seed, gap);
  rng::Xoshiro256pp adversaryEng(rng::streamSeed(seed, 0xadb3e25a17ULL));

  sim::RunResult result;
  if (probe != nullptr) probe->onEvent(engine);
  bool reached = target.reached(engine.state());
  while (!reached && engine.time() < limits.maxTime && engine.activations() < limits.maxEvents) {
    // The composite process (protocol + adversary) is not absorbed just
    // because the protocol chain is: clocks keep ringing on failed
    // activations and the adversary's destructive moves can push the
    // spread back above the gap. Only a ball-less system truly stops.
    if (!engine.step() && !engine.stepActivation()) break;
    adversary.afterEvent(engine, adversaryEng);
    if (probe != nullptr) probe->onEvent(engine);
    reached = target.reached(engine.state());
  }
  result.time = engine.time();
  result.moves = engine.moves();
  result.activations = engine.activations();
  result.finalState = engine.state();
  result.reachedTarget = reached;
  return result;
}

}  // namespace rlslb::core
