// The Destructive Majorization Lemma (Lemma 2) as executable machinery.
//
// A move from bin i to bin j is *destructive* iff load(i) <= load(j) + 1,
// i.e. exactly the reversal of a valid protocol move (Figure 1). Lemma 2
// states that an adversary injecting arbitrarily many destructive moves
// after each protocol event can only slow convergence down (stochastic
// dominance of the discrepancy). The experiment E8 runs RLS under several
// adversary policies and checks the dominance empirically; the coupling
// harness (coupling.hpp) checks the proof's invariant structurally.
#pragma once

#include <cstdint>
#include <memory>

#include "config/configuration.hpp"
#include "rng/xoshiro256pp.hpp"
#include "sim/engine.hpp"
#include "sim/naive_engine.hpp"

namespace rlslb::core {

/// Policy injecting destructive moves into a NaiveEngine after each
/// activation. Implementations must only ever apply destructive moves
/// (checked in debug by the runner).
class DestructiveAdversary {
 public:
  virtual ~DestructiveAdversary() = default;
  virtual void afterEvent(sim::NaiveEngine& engine, rng::Xoshiro256pp& eng) = 0;
};

/// With probability p after each *successful* protocol move, bounce one ball
/// straight back (always destructive: the reversal of a valid move).
class ReverseLastMoveAdversary final : public DestructiveAdversary {
 public:
  explicit ReverseLastMoveAdversary(double probability);
  void afterEvent(sim::NaiveEngine& engine, rng::Xoshiro256pp& eng) override;

 private:
  double probability_;
};

/// After each activation, `attempts` times: draw an ordered random bin pair
/// and move one ball from the lower-loaded to the higher-loaded bin
/// (skipping empty sources). Such a move is destructive by definition.
class RandomPairAdversary final : public DestructiveAdversary {
 public:
  explicit RandomPairAdversary(int attempts = 1);
  void afterEvent(sim::NaiveEngine& engine, rng::Xoshiro256pp& eng) override;

 private:
  int attempts_;
};

/// With probability p after each activation, move one ball from a
/// minimum-load bin to a maximum-load bin: the most damaging single
/// destructive move. O(n) scan per injection; intended for small n.
class MinToMaxAdversary final : public DestructiveAdversary {
 public:
  explicit MinToMaxAdversary(double probability);
  void afterEvent(sim::NaiveEngine& engine, rng::Xoshiro256pp& eng) override;

 private:
  double probability_;
};

/// Run RLS under an adversary until `target` or a limit. Adversary moves do
/// not advance simulated time (Lemma 2's adversary acts instantaneously
/// between protocol events).
sim::RunResult runWithAdversary(const config::Configuration& initial, std::uint64_t seed,
                                DestructiveAdversary& adversary, sim::Target target,
                                const sim::RunLimits& limits = {}, sim::Probe* probe = nullptr,
                                int gap = 1);

}  // namespace rlslb::core
