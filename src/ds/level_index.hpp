// LevelIndex: incremental source/destination sampling for the lumped RLS
// chain, replacing the jump engine's O(L) per-event level-weight rebuild.
//
// The jump engine needs, per event, (a) the total rate of multiset-changing
// moves, (b) a source level v drawn with probability proportional to
// w(v) = v * cnt(v) * C(v-2), and (c) a destination level u <= v-2 drawn
// proportional to cnt(u), where cnt(x) is the number of bins at load x and
// C(x) = #bins with load <= x. Rebuilding the w(v) array costs O(L) per
// event; this index maintains everything incrementally in O(log D) per
// ball move, with D = maxLoad - minLoad + 1 of the *initial* configuration
// (closed-system RLS never moves a ball above the running max or below the
// running min, so the load domain is fixed at construction).
//
// Structure, over the dense domain [minLoad0, maxLoad0]:
//   - a Fenwick over bin counts: C(x) prefix sums and the u-draw;
//   - a segment tree whose leaves hold B(x) = x*cnt(x) (ball mass per
//     level) and W(x) = x*cnt(x)*C(x-2) (source weight), with a scaled
//     lazy: when cnt(x) changes by d, every level v >= x+2 gains
//     dW(v) = d*B(v), which is one range update "W += d*B" applied lazily
//     from per-node B sums.
// All sums are exact integers (total weight <= m*n, asserted to fit in 62
// bits), so the sampling distribution carries no incremental float drift:
// the indexed jump engine remains an exact sampler of the lumped chain.
#pragma once

#include <cstdint>
#include <vector>

#include "ds/fenwick.hpp"
#include "ds/load_multiset.hpp"

namespace rlslb::ds {

class LevelIndex {
 public:
  /// Build from the initial multiset (O(D + L)). Requires fits(ms).
  explicit LevelIndex(const LoadMultiset& ms);

  /// Domain/overflow guard: callers fall back to the O(L) scan when the
  /// spread is huge (dense-domain memory) or m*n would overflow the exact
  /// integer weights.
  [[nodiscard]] static bool fits(const LoadMultiset& ms,
                                 std::int64_t domainCap = kDefaultDomainCap);
  static constexpr std::int64_t kDefaultDomainCap = std::int64_t{1} << 20;

  /// Sum over levels of v*cnt(v)*C(v-2): n times the total move rate.
  /// Zero iff the chain is absorbed (spread <= 1).
  [[nodiscard]] std::int64_t totalWeight() const { return sumW_[1]; }

  [[nodiscard]] std::int64_t numBins() const { return counts_.total(); }
  /// #bins with load <= x (0 when x is below the domain).
  [[nodiscard]] std::int64_t countAtMost(std::int64_t load) const;
  [[nodiscard]] std::int64_t countAt(std::int64_t load) const;
  [[nodiscard]] std::int64_t minLoad() const;  // smallest occupied level
  [[nodiscard]] std::int64_t maxLoad() const;  // largest occupied level

  /// Source level v with P(v) = w(v)/totalWeight(); ticket uniform in
  /// [0, totalWeight()). Mutates only lazy bookkeeping.
  [[nodiscard]] std::int64_t sampleSource(std::int64_t ticket);

  /// Destination level u <= vMinus2 with P(u) = cnt(u)/C(vMinus2); ticket
  /// uniform in [0, countAtMost(vMinus2)).
  [[nodiscard]] std::int64_t sampleDest(std::int64_t ticket) const;

  /// Mirror of LoadMultiset::applyBallMove: one ball from a level-v bin to
  /// a level-u bin, u <= v-2. O(log D).
  void applyBallMove(std::int64_t v, std::int64_t u);

  /// Expand the tracked counts back into a multiset (O(D log D); for
  /// hand-offs and consistency checks, not the hot path).
  [[nodiscard]] LoadMultiset toMultiset() const;

 private:
  std::int64_t offset_ = 0;   // load value of domain position 0
  std::size_t domain_ = 0;    // D
  std::size_t leaves_ = 1;    // bit_ceil(D): leaf count of the tree
  Fenwick<std::int64_t> counts_;
  // 1-based segment tree arrays of size 2*leaves_; node i covers a power-
  // of-two span, children 2i / 2i+1. lazy_[i] != 0 means both children
  // still owe sumW += lazy_[i] * sumB (applied on push-down).
  std::vector<std::int64_t> sumW_;
  std::vector<std::int64_t> sumB_;
  std::vector<std::int64_t> lazy_;

  void pushDown(std::size_t node);
  /// cnt(load) += delta, propagating B, the point W term, and the
  /// suffix range "W += delta*B" for levels >= load+2.
  void applyCountDelta(std::int64_t load, std::int64_t delta);
  void pointUpdate(std::size_t node, std::size_t lo, std::size_t hi, std::size_t pos,
                   std::int64_t wAdd, std::int64_t bAdd);
  void rangeAddScaled(std::size_t node, std::size_t lo, std::size_t hi, std::size_t from,
                      std::int64_t lambda);
};

}  // namespace rlslb::ds
