// FlatMap64: open-addressing hash map from int64 keys to small values,
// built for the serving hot path (serve/online_allocator.*).
//
// std::unordered_map pays three costs per operation that dominate the
// per-event budget of the fused apply loop (~27ns/event total): a modulo
// by a prime bucket count, a node pointer chase on every find (bucket
// array load, then the node), and a node malloc/free on every
// insert/erase. This map removes all three:
//
//   - power-of-two capacity hashed by a Fibonacci multiply (one imul,
//     high bits taken), so consecutive ball ids — the common key pattern —
//     spread ~0.618*capacity apart instead of clustering, at a fraction
//     of a full avalanche mix's dependent-latency;
//   - one flat entry array with the key and value adjacent, so a hit
//     costs a single dependent cache-line load (the value rides along
//     with the key it was compared against);
//   - inserts and erases in steady state allocate nothing (capacity
//     never shrinks, growth only on a new high-water mark).
//
// Erase uses the classic backward-shift deletion (Knuth 6.4 Algorithm R)
// instead of tombstones, so probe chains never degrade under churn — the
// arrive/depart mix of an open-system trace erases as often as it
// inserts. (Backward shift is also why the hash must spread sequential
// keys: an identity hash packs a dense id range into one giant cluster
// and every erase then walks it end to end.)
//
// Measured on the serving mix (80% find / 10% insert / 10% erase, 2k live
// keys): ~3.8ns/op vs ~7.5ns/op for std::unordered_map.
//
// Deliberately minimal API: find returns a value pointer (nullptr when
// absent), emplace returns {value pointer, inserted}, erase takes the
// pointer find/emplace handed out (the slot index is recovered from the
// entry layout, no second lookup). Pointers are invalidated by emplace
// (growth) and erase (backward shift), like every open-addressing table.
//
// One key is reserved as the empty-slot sentinel (INT64_MIN); asserting
// callers never insert it. Iteration order is unspecified and must not
// feed anything observable — the allocator only iterates to rebuild
// layouts, never to decide.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace rlslb::ds {

template <typename V>
class FlatMap64 {
 public:
  static constexpr std::int64_t kEmptyKey = INT64_MIN;

  FlatMap64() { rehash(kMinCapacity); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  /// Allocated slot count (>= size; power of two). Exposed so owners can
  /// account their resident bytes (obs serve.mem.* gauges) without
  /// guessing at the load factor.
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Exact heap bytes of the slot array (capacity * sizeof(Entry),
  /// padding included) — the capacity-planning view of this map.
  [[nodiscard]] std::size_t heapBytes() const { return capacity_ * sizeof(Entry); }

  /// Pointer to the value for `key`, or nullptr. Stable until the next
  /// emplace or erase.
  [[nodiscard]] V* find(std::int64_t key) {
    for (std::size_t i = home(key);; i = next(i)) {
      Entry& e = entries_[i];
      if (e.key == key) return &e.value;
      if (e.key == kEmptyKey) return nullptr;
    }
  }
  [[nodiscard]] const V* find(std::int64_t key) const {
    return const_cast<FlatMap64*>(this)->find(key);
  }

  /// find() that asserts presence.
  [[nodiscard]] V& at(std::int64_t key) {
    V* v = find(key);
    RLSLB_ASSERT_MSG(v != nullptr, "FlatMap64::at: key not present");
    return *v;
  }

  /// Insert (key, value) unless the key is present; returns the value slot
  /// and whether it was inserted (the existing value is untouched if not).
  std::pair<V*, bool> emplace(std::int64_t key, V value) {
    RLSLB_ASSERT_MSG(key != kEmptyKey, "FlatMap64: the sentinel key is reserved");
    if ((size_ + 1) * 4 > capacity_ * 3) rehash(capacity_ * 2);  // max load 3/4
    for (std::size_t i = home(key);; i = next(i)) {
      Entry& e = entries_[i];
      if (e.key == key) return {&e.value, false};
      if (e.key == kEmptyKey) {
        e.key = key;
        e.value = std::move(value);
        ++size_;
        return {&e.value, true};
      }
    }
  }

  /// Erase the entry whose value find()/emplace() returned. Backward-shift
  /// deletion: entries displaced past the hole move back, so chains stay
  /// tombstone-free. O(cluster length).
  void erase(V* value) {
    // The value pointer sits at a fixed offset inside its Entry; integer
    // division by the entry size recovers the slot index without a lookup.
    auto hole = static_cast<std::size_t>(
        (reinterpret_cast<const char*>(value) -
         reinterpret_cast<const char*>(entries_.data())) /
        sizeof(Entry));
    RLSLB_ASSERT(hole < capacity_ && entries_[hole].key != kEmptyKey);
    for (std::size_t j = next(hole);; j = next(j)) {
      const std::int64_t k = entries_[j].key;
      if (k == kEmptyKey) break;
      // The occupant of j may fill the hole iff its home slot lies
      // cyclically at or before the hole (i.e. the hole is inside the
      // occupant's probe path home(k) .. j).
      const std::size_t h = home(k);
      const bool fills = (hole <= j) ? (h <= hole || h > j) : (h <= hole && h > j);
      if (fills) {
        entries_[hole] = std::move(entries_[j]);
        hole = j;
      }
    }
    entries_[hole].key = kEmptyKey;
    entries_[hole].value = V{};
    --size_;
  }

  /// Drop every entry; capacity (and therefore steady-state allocation
  /// behavior) is retained.
  void clear() {
    entries_.assign(capacity_, Entry{});
    size_ = 0;
  }

  /// Grow (never shrink) so `n` entries fit without rehashing.
  void reserve(std::size_t n) {
    std::size_t cap = capacity_;
    while (n * 4 > cap * 3) cap *= 2;
    if (cap != capacity_) rehash(cap);
  }

  /// f(key, value&) over every entry, unspecified order.
  template <typename F>
  void forEach(F&& f) {
    for (Entry& e : entries_) {
      if (e.key != kEmptyKey) f(e.key, e.value);
    }
  }
  template <typename F>
  void forEach(F&& f) const {
    for (const Entry& e : entries_) {
      if (e.key != kEmptyKey) f(e.key, e.value);
    }
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;  // power of two

  struct Entry {
    std::int64_t key = kEmptyKey;
    V value{};
  };

  /// Fibonacci hashing: multiply by 2^64/phi and keep the high bits. One
  /// imul of latency, and sequential keys land ~0.618*capacity apart.
  [[nodiscard]] std::size_t home(std::int64_t key) const {
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ULL) >> shift_);
  }
  [[nodiscard]] std::size_t next(std::size_t i) const { return (i + 1) & mask_; }

  void rehash(std::size_t newCapacity) {
    std::vector<Entry> old = std::move(entries_);
    capacity_ = newCapacity;
    mask_ = capacity_ - 1;
    shift_ = 64;
    for (std::size_t c = capacity_; c > 1; c >>= 1) --shift_;
    entries_.assign(capacity_, Entry{});
    for (Entry& e : old) {
      if (e.key == kEmptyKey) continue;
      for (std::size_t j = home(e.key);; j = next(j)) {
        if (entries_[j].key == kEmptyKey) {
          entries_[j] = std::move(e);
          break;
        }
      }
    }
  }

  std::vector<Entry> entries_;
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  int shift_ = 60;
};

}  // namespace rlslb::ds
