// Fenwick (binary indexed) tree with prefix-sum sampling.
//
// The naive RLS engine draws the activated ball by sampling a bin with
// probability proportional to its load; Fenwick gives O(log n) weighted
// sampling and O(log n) weight updates with O(n) memory, independent of the
// number of balls. The `upperBound` operation implements inverse-CDF
// sampling via binary lifting (one root-to-leaf descent, no binary search
// over prefixSum calls), and the running total is cached so the per-draw
// total() consumed by the ticket bound is O(1) instead of a root
// prefix-sum walk.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace rlslb::ds {

template <typename T>
class Fenwick {
 public:
  explicit Fenwick(std::size_t n) : n_(n), tree_(n + 1, T{0}) {}

  /// O(n) construction from initial values.
  explicit Fenwick(const std::vector<T>& values) : n_(values.size()), tree_(values.size() + 1) {
    for (std::size_t i = 1; i <= n_; ++i) {
      tree_[i] = values[i - 1];
      total_ += values[i - 1];
    }
    for (std::size_t i = 1; i <= n_; ++i) {
      const std::size_t parent = i + (i & (~i + 1));
      if (parent <= n_) tree_[parent] += tree_[i];
    }
  }

  [[nodiscard]] std::size_t size() const { return n_; }

  void add(std::size_t i, T delta) {
    RLSLB_ASSERT(i < n_);
    total_ += delta;
    for (std::size_t k = i + 1; k <= n_; k += k & (~k + 1)) tree_[k] += delta;
  }

  /// Sum of elements with index < i.
  [[nodiscard]] T prefixSum(std::size_t i) const {
    RLSLB_ASSERT(i <= n_);
    T s{0};
    for (std::size_t k = i; k > 0; k -= k & (~k + 1)) s += tree_[k];
    return s;
  }

  /// Cached running total: O(1), maintained by add(). Draw loops consume
  /// the total every activation (ticket = uniform in [0, total)), so this
  /// must not re-walk the root prefix sum (micro-costs: BM_FenwickTotal*
  /// in bench_engines, "fenwick total" rows in the micro_substrate
  /// scenario).
  [[nodiscard]] T total() const { return total_; }

  [[nodiscard]] T get(std::size_t i) const {
    RLSLB_ASSERT(i < n_);
    T s = tree_[i + 1];
    const std::size_t lca = (i + 1) - ((i + 1) & (~(i + 1) + 1));
    for (std::size_t k = i; k > lca; k -= k & (~k + 1)) s -= tree_[k];
    return s;
  }

  /// Smallest index i with prefixSum(i+1) > target. For target uniform in
  /// [0, total()) this samples index i with probability get(i)/total().
  /// Requires target < total() and all elements non-negative.
  [[nodiscard]] std::size_t upperBound(T target) const {
    std::size_t pos = 0;
    std::size_t step = n_ == 0 ? 0 : std::bit_floor(n_);
    T remaining = target;
    while (step > 0) {
      const std::size_t next = pos + step;
      if (next <= n_ && tree_[next] <= remaining) {
        pos = next;
        remaining -= tree_[next];
      }
      step >>= 1;
    }
    RLSLB_ASSERT_MSG(pos < n_, "upperBound target >= total()");
    return pos;
  }

 private:
  std::size_t n_;
  std::vector<T> tree_;
  T total_{0};
};

}  // namespace rlslb::ds
