#include "ds/load_multiset.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace rlslb::ds {

LoadMultiset LoadMultiset::fromLoads(const std::vector<std::int64_t>& loads) {
  std::vector<std::int64_t> sorted = loads;
  std::sort(sorted.begin(), sorted.end());
  LoadMultiset ms;
  for (std::int64_t v : sorted) {
    RLSLB_ASSERT_MSG(v >= 0, "negative load");
    if (!ms.levels_.empty() && ms.levels_.back().load == v) {
      ++ms.levels_.back().count;
    } else {
      ms.levels_.push_back({v, 1});
    }
    ++ms.bins_;
    ms.balls_ += v;
  }
  return ms;
}

LoadMultiset LoadMultiset::fromLevels(std::vector<Level> levels) {
  std::sort(levels.begin(), levels.end(),
            [](const Level& a, const Level& b) { return a.load < b.load; });
  LoadMultiset ms;
  for (const Level& lv : levels) {
    RLSLB_ASSERT_MSG(lv.count > 0, "non-positive level count");
    RLSLB_ASSERT_MSG(lv.load >= 0, "negative load");
    RLSLB_ASSERT_MSG(ms.levels_.empty() || ms.levels_.back().load != lv.load,
                     "duplicate level load");
    ms.levels_.push_back(lv);
    ms.bins_ += lv.count;
    ms.balls_ += lv.load * lv.count;
  }
  return ms;
}

std::int64_t LoadMultiset::minLoad() const {
  RLSLB_ASSERT(!levels_.empty());
  return levels_.front().load;
}

std::int64_t LoadMultiset::maxLoad() const {
  RLSLB_ASSERT(!levels_.empty());
  return levels_.back().load;
}

std::size_t LoadMultiset::findLevel(std::int64_t load) const {
  const auto it = std::lower_bound(
      levels_.begin(), levels_.end(), load,
      [](const Level& lv, std::int64_t v) { return lv.load < v; });
  if (it == levels_.end() || it->load != load) return levels_.size();
  return static_cast<std::size_t>(it - levels_.begin());
}

std::int64_t LoadMultiset::countAt(std::int64_t x) const {
  const std::size_t i = findLevel(x);
  return i == levels_.size() ? 0 : levels_[i].count;
}

std::int64_t LoadMultiset::countAtMost(std::int64_t x) const {
  std::int64_t total = 0;
  for (const Level& lv : levels_) {
    if (lv.load > x) break;
    total += lv.count;
  }
  return total;
}

void LoadMultiset::shiftBin(std::int64_t load, int delta) {
  RLSLB_ASSERT(delta == 1 || delta == -1);
  const std::size_t i = findLevel(load);
  RLSLB_ASSERT_MSG(i != levels_.size(), "shiftBin: no bin at this level");
  const std::int64_t target = load + delta;
  RLSLB_ASSERT_MSG(target >= 0, "shiftBin: load would become negative");

  // Remove one bin from `load`.
  if (levels_[i].count == 1) {
    levels_.erase(levels_.begin() + static_cast<std::ptrdiff_t>(i));
  } else {
    --levels_[i].count;
  }
  // Add one bin at `target`.
  const auto it = std::lower_bound(
      levels_.begin(), levels_.end(), target,
      [](const Level& lv, std::int64_t v) { return lv.load < v; });
  if (it != levels_.end() && it->load == target) {
    ++it->count;
  } else {
    levels_.insert(it, {target, 1});
  }
  balls_ += delta;
}

void LoadMultiset::applyBallMove(std::int64_t fromLoad, std::int64_t toLoad) {
  RLSLB_ASSERT_MSG(fromLoad >= toLoad + 2,
                   "applyBallMove requires a multiset-changing move (from >= to + 2)");
  shiftBin(fromLoad, -1);
  shiftBin(toLoad, +1);
}

std::vector<std::int64_t> LoadMultiset::toSortedLoads() const {
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(bins_));
  for (const Level& lv : levels_) {
    for (std::int64_t k = 0; k < lv.count; ++k) out.push_back(lv.load);
  }
  return out;
}

bool LoadMultiset::validate() const {
  std::int64_t bins = 0;
  std::int64_t balls = 0;
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i].count <= 0) return false;
    if (levels_[i].load < 0) return false;
    if (i > 0 && levels_[i - 1].load >= levels_[i].load) return false;
    bins += levels_[i].count;
    balls += levels_[i].load * levels_[i].count;
  }
  return bins == bins_ && balls == balls_;
}

}  // namespace rlslb::ds
