#include "ds/level_index.hpp"

#include <bit>

#include "util/assert.hpp"

namespace rlslb::ds {

bool LevelIndex::fits(const LoadMultiset& ms, std::int64_t domainCap) {
  if (ms.numBins() < 1 || ms.numLevels() == 0) return false;
  const std::int64_t domain = ms.maxLoad() - ms.minLoad() + 1;
  if (domain > domainCap) return false;
  // totalWeight <= sum_v v*cnt(v) * n = m*n must stay well inside int64 so
  // every intermediate sum (and the uniform ticket draw) is exact.
  const std::int64_t cap = std::int64_t{1} << 62;
  if (ms.numBalls() > 0 && ms.numBins() > cap / ms.numBalls()) return false;
  return true;
}

LevelIndex::LevelIndex(const LoadMultiset& ms)
    : offset_(ms.minLoad()),
      domain_(static_cast<std::size_t>(ms.maxLoad() - ms.minLoad() + 1)),
      leaves_(std::bit_ceil(domain_)),
      counts_(domain_) {
  RLSLB_ASSERT_MSG(fits(ms), "LevelIndex: configuration exceeds the index bounds");
  sumW_.assign(2 * leaves_, 0);
  sumB_.assign(2 * leaves_, 0);
  lazy_.assign(2 * leaves_, 0);

  // Leaves: B(x) = x*cnt(x), W(x) = x*cnt(x)*C(x-2) with C from a running
  // prefix over the (sparse) levels.
  std::vector<std::int64_t> cnt(domain_, 0);
  for (const LoadMultiset::Level& lv : ms.levels()) {
    cnt[static_cast<std::size_t>(lv.load - offset_)] = lv.count;
  }
  std::int64_t prefixLag2 = 0;  // sum of cnt[0 .. pos-2] entering iteration pos
  for (std::size_t pos = 0; pos < domain_; ++pos) {
    if (cnt[pos] != 0) counts_.add(pos, cnt[pos]);
    const std::int64_t load = offset_ + static_cast<std::int64_t>(pos);
    sumB_[leaves_ + pos] = load * cnt[pos];
    sumW_[leaves_ + pos] = load * cnt[pos] * prefixLag2;  // C(load-2)
    if (pos + 1 >= 2) prefixLag2 += cnt[pos - 1];
  }
  for (std::size_t i = leaves_ - 1; i >= 1; --i) {
    sumW_[i] = sumW_[2 * i] + sumW_[2 * i + 1];
    sumB_[i] = sumB_[2 * i] + sumB_[2 * i + 1];
  }
}

std::int64_t LevelIndex::countAtMost(std::int64_t load) const {
  if (load < offset_) return 0;
  std::size_t upto = static_cast<std::size_t>(load - offset_) + 1;
  if (upto > domain_) upto = domain_;
  return counts_.prefixSum(upto);
}

std::int64_t LevelIndex::countAt(std::int64_t load) const {
  if (load < offset_ || load >= offset_ + static_cast<std::int64_t>(domain_)) return 0;
  return counts_.get(static_cast<std::size_t>(load - offset_));
}

std::int64_t LevelIndex::minLoad() const {
  RLSLB_ASSERT(counts_.total() > 0);
  return offset_ + static_cast<std::int64_t>(counts_.upperBound(0));
}

std::int64_t LevelIndex::maxLoad() const {
  const std::int64_t total = counts_.total();
  RLSLB_ASSERT(total > 0);
  return offset_ + static_cast<std::int64_t>(counts_.upperBound(total - 1));
}

void LevelIndex::pushDown(std::size_t node) {
  const std::int64_t lambda = lazy_[node];
  if (lambda == 0) return;
  for (std::size_t child = 2 * node; child <= 2 * node + 1; ++child) {
    sumW_[child] += lambda * sumB_[child];
    if (child < leaves_) lazy_[child] += lambda;
  }
  lazy_[node] = 0;
}

std::int64_t LevelIndex::sampleSource(std::int64_t ticket) {
  RLSLB_ASSERT(ticket >= 0 && ticket < sumW_[1]);
  std::size_t node = 1;
  while (node < leaves_) {
    pushDown(node);
    const std::size_t left = 2 * node;
    if (ticket < sumW_[left]) {
      node = left;
    } else {
      ticket -= sumW_[left];
      node = left + 1;
    }
  }
  return offset_ + static_cast<std::int64_t>(node - leaves_);
}

std::int64_t LevelIndex::sampleDest(std::int64_t ticket) const {
  // counts_.upperBound performs inverse-CDF sampling over bin counts; the
  // caller bounds the ticket by countAtMost(v-2), so the result is always
  // a level <= v-2.
  return offset_ + static_cast<std::int64_t>(counts_.upperBound(ticket));
}

void LevelIndex::pointUpdate(std::size_t node, std::size_t lo, std::size_t hi, std::size_t pos,
                             std::int64_t wAdd, std::int64_t bAdd) {
  if (lo == hi) {
    sumW_[node] += wAdd;
    sumB_[node] += bAdd;
    return;
  }
  pushDown(node);
  const std::size_t mid = lo + (hi - lo) / 2;
  if (pos <= mid) {
    pointUpdate(2 * node, lo, mid, pos, wAdd, bAdd);
  } else {
    pointUpdate(2 * node + 1, mid + 1, hi, pos, wAdd, bAdd);
  }
  sumW_[node] = sumW_[2 * node] + sumW_[2 * node + 1];
  sumB_[node] = sumB_[2 * node] + sumB_[2 * node + 1];
}

void LevelIndex::rangeAddScaled(std::size_t node, std::size_t lo, std::size_t hi,
                                std::size_t from, std::int64_t lambda) {
  if (hi < from) return;
  if (from <= lo) {
    sumW_[node] += lambda * sumB_[node];
    if (node < leaves_) lazy_[node] += lambda;
    return;
  }
  pushDown(node);
  const std::size_t mid = lo + (hi - lo) / 2;
  rangeAddScaled(2 * node, lo, mid, from, lambda);
  rangeAddScaled(2 * node + 1, mid + 1, hi, from, lambda);
  sumW_[node] = sumW_[2 * node] + sumW_[2 * node + 1];
}

void LevelIndex::applyCountDelta(std::int64_t load, std::int64_t delta) {
  const std::size_t pos = static_cast<std::size_t>(load - offset_);
  RLSLB_ASSERT(pos < domain_);
  // W's own term x*cnt(x)*C(x-2) changes by delta*x*C(x-2); C(x-2) does not
  // include x itself, so it is unaffected by this count change.
  const std::int64_t wAdd = delta * load * countAtMost(load - 2);
  counts_.add(pos, delta);
  pointUpdate(1, 0, leaves_ - 1, pos, wAdd, delta * load);
  // Every level v >= load+2 sees C(v-2) change by delta: W(v) += delta*B(v).
  if (pos + 2 < domain_) rangeAddScaled(1, 0, leaves_ - 1, pos + 2, delta);
}

void LevelIndex::applyBallMove(std::int64_t v, std::int64_t u) {
  RLSLB_ASSERT_MSG(v >= u + 2, "LevelIndex::applyBallMove requires from >= to + 2");
  RLSLB_ASSERT(countAt(v) > 0 && countAt(u) > 0);
  applyCountDelta(v, -1);
  applyCountDelta(v - 1, +1);
  applyCountDelta(u, -1);
  applyCountDelta(u + 1, +1);
}

LoadMultiset LevelIndex::toMultiset() const {
  std::vector<LoadMultiset::Level> levels;
  for (std::size_t pos = 0; pos < domain_; ++pos) {
    const std::int64_t cnt = counts_.get(pos);
    if (cnt > 0) levels.push_back({offset_ + static_cast<std::int64_t>(pos), cnt});
  }
  return LoadMultiset::fromLevels(std::move(levels));
}

}  // namespace rlslb::ds
