// Sparse multiset of bin loads: the state of the *lumped* RLS chain.
//
// Balls and bins are identical, so the configuration process projected onto
// the multiset of loads is itself a CTMC (lumpability): transition rates
// depend only on how many bins carry each load value. The jump engine
// therefore never tracks bin identities; it operates on this structure,
// which stores the distinct load values ("levels") in a sorted vector with
// their bin counts. A ball move touches at most four adjacent levels, so
// updates are O(L) worst case (vector insert/erase) with L = number of
// distinct loads, and L <= min(n, maxLoad - minLoad + 1).
#pragma once

#include <cstdint>
#include <vector>

namespace rlslb::ds {

class LoadMultiset {
 public:
  struct Level {
    std::int64_t load = 0;
    std::int64_t count = 0;  // number of bins carrying exactly `load` balls
  };

  LoadMultiset() = default;

  /// Build from explicit per-bin loads (O(n log n)).
  static LoadMultiset fromLoads(const std::vector<std::int64_t>& loads);
  /// Build from (load, count) pairs; loads need not be sorted, counts > 0.
  static LoadMultiset fromLevels(std::vector<Level> levels);

  [[nodiscard]] std::int64_t numBins() const { return bins_; }
  [[nodiscard]] std::int64_t numBalls() const { return balls_; }
  [[nodiscard]] std::size_t numLevels() const { return levels_.size(); }
  [[nodiscard]] const Level& level(std::size_t i) const { return levels_[i]; }
  [[nodiscard]] const std::vector<Level>& levels() const { return levels_; }

  [[nodiscard]] std::int64_t minLoad() const;
  [[nodiscard]] std::int64_t maxLoad() const;

  /// Number of bins with load exactly `x` (0 if x is not a level).
  [[nodiscard]] std::int64_t countAt(std::int64_t x) const;
  /// Number of bins with load <= x. O(log L + L) worst case; O(L) scan.
  [[nodiscard]] std::int64_t countAtMost(std::int64_t x) const;

  /// Move one ball from a bin at level `fromLoad` to a bin at level `toLoad`:
  /// bin counts change as cnt[fromLoad]--, cnt[fromLoad-1]++, cnt[toLoad]--,
  /// cnt[toLoad+1]++. `fromLoad` and `toLoad` must be existing levels with
  /// positive counts and fromLoad >= toLoad + 2 (a multiset-changing move);
  /// fromLoad == toLoad + 1 would be a neutral move, which is a self-loop of
  /// the lumped chain and must be skipped by the caller.
  void applyBallMove(std::int64_t fromLoad, std::int64_t toLoad);

  /// Move one *bin* from level `load` to `load + delta` (delta = +-1).
  void shiftBin(std::int64_t load, int delta);

  /// Expand into one entry per bin, ascending. For tests and hand-offs.
  [[nodiscard]] std::vector<std::int64_t> toSortedLoads() const;

  /// Internal-consistency scan (sortedness, positive counts, totals).
  [[nodiscard]] bool validate() const;

 private:
  std::vector<Level> levels_;  // ascending by load, counts strictly positive
  std::int64_t bins_ = 0;
  std::int64_t balls_ = 0;

  [[nodiscard]] std::size_t findLevel(std::int64_t load) const;  // exact match or size()
};

}  // namespace rlslb::ds
