#include "runner/replication.hpp"

#include <algorithm>

#include "rng/splitmix64.hpp"
#include "util/assert.hpp"

namespace rlslb::runner {

namespace {

/// Pool size for the pool-owning overloads: never more threads than
/// replications, never less than one.
int clampedThreads(int numThreads, std::int64_t reps) {
  const auto resolved = static_cast<std::int64_t>(ThreadPool::resolveThreadCount(numThreads));
  return static_cast<int>(std::max<std::int64_t>(1, std::min(resolved, reps)));
}

}  // namespace

ReplicationResult runReplications(std::int64_t reps, std::uint64_t baseSeed,
                                  std::size_t numMetrics, const ReplicationFn& fn,
                                  ThreadPool& pool) {
  RLSLB_ASSERT(reps >= 0 && numMetrics >= 1);
  ReplicationResult result;
  result.samples.assign(numMetrics, std::vector<double>(static_cast<std::size_t>(reps)));
  pool.parallelFor(reps, [&](std::int64_t rep) {
    auto values = fn(rep, rng::streamSeed(baseSeed, static_cast<std::uint64_t>(rep)));
    RLSLB_ASSERT_MSG(values.size() == numMetrics, "replication returned wrong metric count");
    for (std::size_t metric = 0; metric < numMetrics; ++metric) {
      result.samples[metric][static_cast<std::size_t>(rep)] = values[metric];
    }
  });
  return result;
}

ReplicationResult runReplications(std::int64_t reps, std::uint64_t baseSeed,
                                  std::size_t numMetrics, const ReplicationFn& fn,
                                  int numThreads) {
  ThreadPool pool(clampedThreads(numThreads, reps));
  return runReplications(reps, baseSeed, numMetrics, fn, pool);
}

std::vector<double> runReplicationsScalar(
    std::int64_t reps, std::uint64_t baseSeed,
    const std::function<double(std::int64_t, std::uint64_t)>& fn, ThreadPool& pool) {
  RLSLB_ASSERT(reps >= 0);
  std::vector<double> samples(static_cast<std::size_t>(reps));
  pool.parallelFor(reps, [&](std::int64_t rep) {
    samples[static_cast<std::size_t>(rep)] =
        fn(rep, rng::streamSeed(baseSeed, static_cast<std::uint64_t>(rep)));
  });
  return samples;
}

std::vector<double> runReplicationsScalar(
    std::int64_t reps, std::uint64_t baseSeed,
    const std::function<double(std::int64_t, std::uint64_t)>& fn, int numThreads) {
  ThreadPool pool(clampedThreads(numThreads, reps));
  return runReplicationsScalar(reps, baseSeed, fn, pool);
}

}  // namespace rlslb::runner
