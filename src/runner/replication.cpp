#include "runner/replication.hpp"

#include <atomic>
#include <thread>

#include "rng/splitmix64.hpp"
#include "util/assert.hpp"

namespace rlslb::runner {

ReplicationResult runReplications(std::int64_t reps, std::uint64_t baseSeed,
                                  std::size_t numMetrics, const ReplicationFn& fn,
                                  int numThreads) {
  RLSLB_ASSERT(reps >= 1 && numMetrics >= 1);
  if (numThreads <= 0) {
    numThreads = static_cast<int>(std::thread::hardware_concurrency());
    if (numThreads <= 0) numThreads = 1;
  }
  numThreads = static_cast<int>(std::min<std::int64_t>(numThreads, reps));

  // rows[rep][metric], filled independently per replication.
  std::vector<std::vector<double>> rows(static_cast<std::size_t>(reps));
  std::atomic<std::int64_t> next{0};

  auto worker = [&]() {
    for (;;) {
      const std::int64_t rep = next.fetch_add(1, std::memory_order_relaxed);
      if (rep >= reps) return;
      auto values = fn(rep, rng::streamSeed(baseSeed, static_cast<std::uint64_t>(rep)));
      RLSLB_ASSERT_MSG(values.size() == numMetrics, "replication returned wrong metric count");
      rows[static_cast<std::size_t>(rep)] = std::move(values);
    }
  };

  if (numThreads == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(numThreads));
    for (int t = 0; t < numThreads; ++t) threads.emplace_back(worker);
    for (auto& th : threads) th.join();
  }

  ReplicationResult result;
  result.samples.assign(numMetrics, std::vector<double>(static_cast<std::size_t>(reps)));
  for (std::int64_t rep = 0; rep < reps; ++rep) {
    for (std::size_t metric = 0; metric < numMetrics; ++metric) {
      result.samples[metric][static_cast<std::size_t>(rep)] =
          rows[static_cast<std::size_t>(rep)][metric];
    }
  }
  return result;
}

std::vector<double> runReplicationsScalar(
    std::int64_t reps, std::uint64_t baseSeed,
    const std::function<double(std::int64_t, std::uint64_t)>& fn, int numThreads) {
  const auto result = runReplications(
      reps, baseSeed, 1,
      [&fn](std::int64_t rep, std::uint64_t seed) { return std::vector<double>{fn(rep, seed)}; },
      numThreads);
  return result.samples[0];
}

}  // namespace rlslb::runner
