#include "runner/thread_pool.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace rlslb::runner {

int ThreadPool::resolveThreadCount(int requested) {
  if (requested > 0) return requested;
  const auto hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(int numThreads) {
  const int total = resolveThreadCount(numThreads);
  workers_.reserve(static_cast<std::size_t>(total - 1));
  for (int t = 0; t + 1 < total; ++t) {
    // Workers own obs trace tracks 1..N for life (track 0 is the calling
    // thread); with tracing compiled out setCurrentTrack is a no-op stub.
    workers_.emplace_back([this, t] {
      obs::setCurrentTrack(t + 1);
      workerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  workCv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::workerLoop() {
  std::uint64_t seenGeneration = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      workCv_.wait(lock, [&] { return stop_ || generation_ != seenGeneration; });
      if (stop_) return;
      seenGeneration = generation_;
    }
    runChunks();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--activeWorkers_ == 0) doneCv_.notify_all();
    }
  }
}

void ThreadPool::runChunks() {
  // One span per thread participation when a writer is attached. Workers
  // that wake to an already-drained job record a near-zero span -- that
  // is the honest wake-up cost, not noise to hide.
  obs::TraceWriter* const tw = traceWriter_;
  if (tw == nullptr) {
    claimChunks();
    return;
  }
  const double begin = obs::nowUs();
  claimChunks();
  tw->complete(traceLabel_, "job", begin, obs::nowUs());
}

void ThreadPool::claimChunks() {
  for (;;) {
    if (abort_.load(std::memory_order_relaxed)) return;
    if (token_ != nullptr && token_->cancelled()) return;
    const std::int64_t start = next_.fetch_add(chunk_, std::memory_order_relaxed);
    if (start >= count_) return;
    const std::int64_t end = std::min(start + chunk_, count_);
    try {
      for (std::int64_t i = start; i < end; ++i) {
        if (abort_.load(std::memory_order_relaxed)) return;
        if (token_ != nullptr && token_->cancelled()) return;
        (*body_)(i);
      }
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(errorMutex_);
        if (!error_) error_ = std::current_exception();
      }
      abort_.store(true, std::memory_order_relaxed);
      return;
    }
  }
}

void ThreadPool::parallelFor(std::int64_t count, const std::function<void(std::int64_t)>& body,
                             CancellationToken* token) {
  RLSLB_ASSERT(count >= 0);
  if (count == 0) return;

  if (workers_.empty()) {
    // Serial path: run inline so exceptions propagate directly and callers
    // with thread-unsafe bodies see no concurrency at all. Traced the
    // same way as a worker participation (null writer = no-op).
    const obs::Span span(traceWriter_, traceLabel_, "job");
    for (std::int64_t i = 0; i < count; ++i) {
      if (token != nullptr && token->cancelled()) return;
      body(i);
    }
    return;
  }

  // Documented non-nestable contract: a nested or concurrent parallelFor
  // on the same pool would corrupt the single job slot and deadlock
  // silently. RLSLB_ASSERT is active in every build type, so the guard must
  // not hide behind NDEBUG: a Release build deadlocking where a Debug build
  // aborts is the worst possible split. One uncontended atomic exchange per
  // *job* (not per index) is noise next to the dispatch handshake.
  RLSLB_ASSERT_MSG(!jobInFlight_.exchange(true, std::memory_order_acq_rel),
                   "ThreadPool::parallelFor is not reentrant: a body called back into "
                   "parallelFor on the same pool (or a second thread dispatched "
                   "concurrently). Use a separate pool, or restructure to a single "
                   "flat parallelFor (see runner/thread_pool.hpp).");

  // Aim for ~8 chunks per thread so the dynamic distribution absorbs
  // replication-cost skew without contending on next_ per index.
  const auto threads = static_cast<std::int64_t>(size());
  count_ = count;
  chunk_ = std::max<std::int64_t>(1, count / (threads * 8));
  body_ = &body;
  token_ = token;
  next_.store(0, std::memory_order_relaxed);
  abort_.store(false, std::memory_order_relaxed);
  error_ = nullptr;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    activeWorkers_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  workCv_.notify_all();

  runChunks();  // the calling thread participates

  {
    std::unique_lock<std::mutex> lock(mutex_);
    doneCv_.wait(lock, [&] { return activeWorkers_ == 0; });
  }

  body_ = nullptr;
  token_ = nullptr;
  jobInFlight_.store(false, std::memory_order_release);
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;  // leave the pool reusable after a throw
    std::rethrow_exception(error);
  }
}

}  // namespace rlslb::runner
