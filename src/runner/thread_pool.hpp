// Fixed-size thread pool with chunked work distribution, used by the
// replication harness (replication.hpp) and the ensemble layer
// (sim/ensemble.hpp) to fan replications out across cores. The scenario
// layer creates ONE pool per process (ScenarioContext::pool()) and reuses
// it across every scenario of a driver run, so worker threads are spawned
// once per `rlslb all`, not once per experiment.
//
// Design constraints, in order:
//   - Determinism stays upstream: the pool hands out *index ranges*, never
//     results, so callers that write index i's output into slot i get
//     bit-identical results for any pool size (the streamSeed contract).
//   - No locks on the hot path: workers claim chunks with one relaxed
//     fetch_add; synchronization happens only at job start/end.
//   - Failures surface exactly once: the first exception thrown by any
//     chunk is captured, remaining chunks are cancelled, and the exception
//     is rethrown on the calling thread after all workers have quiesced.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace rlslb::runner {

/// Cooperative cancellation flag. Pass one to parallelFor to stop handing
/// out work early (already-started indices still finish); the pool also
/// cancels internally when a body throws.
class CancellationToken {
 public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Reusable fixed-size pool. `size()` counts the calling thread, so
/// ThreadPool(1) spawns no workers and parallelFor runs inline -- callers
/// with thread-unsafe state (or under TSan bisection) get the serial path
/// by construction.
class ThreadPool {
 public:
  /// numThreads <= 0 means hardware concurrency.
  explicit ThreadPool(int numThreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency of parallelFor, including the calling thread.
  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Run body(i) for every i in [0, count), distributing contiguous chunks
  /// across the workers and the calling thread. Blocks until all claimed
  /// work has finished. If any body throws, the first exception is
  /// rethrown here (exactly one, regardless of how many bodies threw) and
  /// unclaimed work is dropped.
  ///
  /// NOT reentrant and NOT concurrently callable: the pool has a single
  /// job slot, so a body that calls back into parallelFor on the same pool
  /// (nested parallelism), or a second thread dispatching while a job is
  /// in flight, would corrupt the slot and deadlock. Every build type
  /// detects both and aborts with a diagnostic instead — RLSLB_ASSERT does
  /// not compile away in Release, so a misuse that would deadlock a
  /// production binary fails loudly there too (see the ROADMAP note: a
  /// workload that wants nested parallelism needs a work-stealing or
  /// task-graph layer, not nested pools). The inline serial path of a
  /// 1-thread pool has no job slot and therefore no such hazard; it is
  /// exempt from the check.
  void parallelFor(std::int64_t count, const std::function<void(std::int64_t)>& body,
                   CancellationToken* token = nullptr);

  /// 0 (or negative) -> hardware concurrency, never less than 1.
  static int resolveThreadCount(int requested);

  /// Attach a trace writer: every subsequent parallelFor records one span
  /// per participating thread on that thread's track (workers own tracks
  /// 1..N; the calling thread records on its own current track). nullptr
  /// detaches. Costs one pointer test per *job* when detached; with
  /// tracing compiled out (RLSLB_TRACING=0) the recording calls are
  /// no-op stubs. Set from the dispatching thread only, between jobs.
  void setTraceWriter(obs::TraceWriter* writer) { traceWriter_ = writer; }
  [[nodiscard]] obs::TraceWriter* traceWriter() const { return traceWriter_; }

  /// Label for subsequent jobs' spans. Must point to static-storage text
  /// (a string literal); the phases of the serving loop relabel per
  /// dispatch ("decide", "drain").
  void setTraceLabel(const char* label) {
    traceLabel_ = label != nullptr ? label : "parallelFor";
  }
  [[nodiscard]] const char* traceLabel() const { return traceLabel_; }

 private:
  void workerLoop();
  void runChunks();    // claimChunks + optional per-participation span
  void claimChunks();  // the chunk-claiming loop proper

  std::vector<std::thread> workers_;

  // Job slot, valid while a parallelFor is in flight. Plain fields are
  // published to workers via the generation bump under mutex_.
  std::int64_t count_ = 0;
  std::int64_t chunk_ = 1;
  const std::function<void(std::int64_t)>* body_ = nullptr;
  CancellationToken* token_ = nullptr;
  std::atomic<std::int64_t> next_{0};
  std::atomic<bool> abort_{false};
  std::atomic<bool> jobInFlight_{false};  // reentrancy/concurrent-call detector
  std::exception_ptr error_;
  std::mutex errorMutex_;

  // Published to workers with the job slot (generation bump under mutex_).
  obs::TraceWriter* traceWriter_ = nullptr;
  const char* traceLabel_ = "parallelFor";

  std::mutex mutex_;
  std::condition_variable workCv_;
  std::condition_variable doneCv_;
  std::uint64_t generation_ = 0;
  int activeWorkers_ = 0;
  bool stop_ = false;
};

}  // namespace rlslb::runner
