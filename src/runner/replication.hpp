// Replication harness: run R independent replications of an experiment body
// and collect per-replication metric vectors.
//
// Determinism contract: replication r always receives the seed
// rng::streamSeed(baseSeed, r) and writes into the pre-sized column slot
// samples[metric][r], so results are bit-identical for a given baseSeed
// regardless of thread count or scheduling -- experiment tables in
// docs/EXPERIMENTS.md are exactly reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runner/thread_pool.hpp"
#include "stats/summary.hpp"

namespace rlslb::runner {

/// One replication returns a fixed set of named metrics.
struct MetricVector {
  std::vector<double> values;
};

/// fn(repIndex, seed) -> metric values (same length every call).
using ReplicationFn = std::function<std::vector<double>(std::int64_t, std::uint64_t)>;

struct ReplicationResult {
  /// samples[metric][rep]
  std::vector<std::vector<double>> samples;

  [[nodiscard]] stats::Summary summary(std::size_t metric) const {
    return stats::summarize(samples[metric]);
  }
};

/// Run `reps` replications on an existing pool. `numMetrics` is the length
/// of each replication's result. `reps == 0` returns well-formed empty
/// columns. If `fn` throws, the first exception propagates (once) and the
/// partial result is discarded.
ReplicationResult runReplications(std::int64_t reps, std::uint64_t baseSeed,
                                  std::size_t numMetrics, const ReplicationFn& fn,
                                  ThreadPool& pool);

/// Convenience overload owning a pool for the call (0 = hardware
/// concurrency, clamped to `reps` so tiny jobs don't spawn idle threads).
ReplicationResult runReplications(std::int64_t reps, std::uint64_t baseSeed,
                                  std::size_t numMetrics, const ReplicationFn& fn,
                                  int numThreads = 0);

/// Single-metric convenience wrappers.
std::vector<double> runReplicationsScalar(std::int64_t reps, std::uint64_t baseSeed,
                                          const std::function<double(std::int64_t, std::uint64_t)>& fn,
                                          ThreadPool& pool);
std::vector<double> runReplicationsScalar(std::int64_t reps, std::uint64_t baseSeed,
                                          const std::function<double(std::int64_t, std::uint64_t)>& fn,
                                          int numThreads = 0);

}  // namespace rlslb::runner
